package aria_test

import (
	"fmt"
	"time"

	aria "github.com/smartgrid/aria"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

// A minimal simulated grid: build an overlay, add nodes, submit a job, and
// run virtual time forward. The node the job is submitted to becomes its
// ARiA initiator; the protocol places it on the cheapest matching node.
func Example() {
	grid, err := aria.NewSimGrid(10, 42)
	if err != nil {
		fmt.Println("grid:", err)
		return
	}
	profile := aria.NodeProfile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.5,
	}
	var first *aria.Node
	for _, id := range grid.Graph().Nodes() {
		n, err := grid.AddNode(id, profile, aria.FCFS, aria.DefaultConfig(), nil, job.ARTModel{Mode: job.DriftNone})
		if err != nil {
			fmt.Println("node:", err)
			return
		}
		if first == nil {
			first = n
		}
	}
	grid.StartAll()

	p := aria.JobProfile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: aria.JobRequirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   90 * time.Minute,
		Class: job.ClassBatch,
	}
	if err := first.Submit(p); err != nil {
		fmt.Println("submit:", err)
		return
	}
	grid.Engine().Run(6 * time.Hour)

	idle := 0
	for _, n := range grid.Nodes() {
		if n.Idle() {
			idle++
		}
	}
	fmt.Printf("grid drained: %d of 10 nodes idle\n", idle)
	// The 90m job ran in 90m/1.5 = 60m on some node; everything is idle
	// again well before the 6h mark.
	// Output:
	// grid drained: 10 of 10 nodes idle
}

// Running a Table II scenario from the catalog at reduced scale.
func ExampleRunScenario() {
	res, err := aria.RunScenario("Mixed", 0.03, 0)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("completed %d of %d jobs\n", res.Completed, res.Submitted)
	// Output:
	// completed 30 of 30 jobs
}
