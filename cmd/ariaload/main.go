// Command ariaload is a closed-loop load generator for a live ARiA grid
// fronted by ariagate. It keeps a bounded number of jobs in flight
// (submitting through the gateway's batch API, honoring its 429/Retry-After
// backpressure), detects completions by tailing the daemons' event logs,
// and reports throughput plus latency percentiles as JSON.
//
// The generator is split into the three roles of a classic harness:
//
//   - scheduler: decides when the concurrency budget allows another batch
//   - executors: perform the HTTP submissions and absorb backpressure
//   - aggregator: tails event logs, matches completions to submissions,
//     and computes the latency distribution
//
// Driving a grid whose daemons write -events logs into ./logs:
//
//	ariaload -gate http://127.0.0.1:7600 -events 'logs/node0.jsonl,logs/node1.jsonl' \
//	  -jobs 500 -concurrency 32 -ert 2s -out BENCH_overload.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/stats"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ariaload:", err)
		os.Exit(1)
	}
}

// run executes one load campaign and writes the JSON report to out (and to
// -out when set). stop aborts the campaign early; whatever completed by
// then is reported.
func run(args []string, stop <-chan os.Signal, out io.Writer) error {
	fs := flag.NewFlagSet("ariaload", flag.ContinueOnError)
	var (
		gate        = fs.String("gate", "http://127.0.0.1:7600", "ariagate base URL")
		eventsStr   = fs.String("events", "", "comma-separated daemon event logs to tail for completions")
		jobs        = fs.Int("jobs", 200, "total jobs to submit")
		concurrency = fs.Int("concurrency", 16, "closed-loop bound on jobs in flight")
		batch       = fs.Int("batch", 8, "max jobs per gateway batch request")
		workers     = fs.Int("workers", 4, "executor goroutines performing submissions")
		ert         = fs.Duration("ert", 2*time.Second, "estimated running time per job")
		tenant      = fs.String("tenant", "load", "tenant name sent to the gateway")
		timeout     = fs.Duration("timeout", 2*time.Minute, "overall campaign deadline")
		outPath     = fs.String("out", "", "also write the JSON report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *eventsStr == "":
		return fmt.Errorf("missing -events (completion detection needs the daemons' event logs)")
	case *jobs <= 0:
		return fmt.Errorf("-jobs must be positive, got %d", *jobs)
	case *concurrency <= 0:
		return fmt.Errorf("-concurrency must be positive, got %d", *concurrency)
	case *batch <= 0:
		return fmt.Errorf("-batch must be positive, got %d", *batch)
	case *workers <= 0:
		return fmt.Errorf("-workers must be positive, got %d", *workers)
	case *timeout <= 0:
		return fmt.Errorf("-timeout must be positive, got %v", *timeout)
	}
	eventFiles := splitList(*eventsStr)

	g := &loadgen{
		gate:     strings.TrimRight(*gate, "/"),
		tenant:   *tenant,
		ert:      *ert,
		jobs:     *jobs,
		batch:    *batch,
		client:   &http.Client{Timeout: 30 * time.Second},
		slots:    make(chan struct{}, *concurrency),
		batches:  make(chan int),
		term:     make(chan outcome, 256),
		abort:    make(chan struct{}),
		submitAt: make(map[string]time.Time),
	}
	g.fillSlots()
	start := time.Now()
	deadline := time.NewTimer(*timeout)
	defer deadline.Stop()

	// Abort fans out to every role; close it once.
	var abortOnce sync.Once
	cancel := func() { abortOnce.Do(func() { close(g.abort) }) }
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-deadline.C:
			cancel()
		case <-g.abort:
		}
	}()

	var wg sync.WaitGroup
	// Aggregator: one tailer per event log feeding the terminal-outcome
	// channel, plus the collector that matches them to submissions.
	for _, path := range eventFiles {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			g.tailEvents(p)
		}(path)
	}
	// Executors.
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.executor()
		}()
	}
	// Scheduler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.scheduler()
	}()

	g.collect() // runs on this goroutine; returns when done or aborted
	cancel()    // release scheduler/executors/tailers
	wg.Wait()

	rep := g.report(time.Since(start))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := out.Write(data); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	if rep.Completed == 0 {
		return fmt.Errorf("no job completed (accepted %d, failed %d, submit errors %d)",
			rep.Accepted, rep.Failed, rep.SubmitErrors)
	}
	return nil
}

// outcome is one terminal job resolution: a completed/failed event observed
// in a daemon's log, or a submission the gateway never admitted (lost).
type outcome struct {
	uuid   string
	failed bool
	lost   bool
}

// loadgen is the shared state of the scheduler, executors, and aggregator.
type loadgen struct {
	gate   string
	tenant string
	ert    time.Duration
	jobs   int
	batch  int
	client *http.Client

	slots   chan struct{} // concurrency budget: one token per job in flight
	batches chan int      // scheduler -> executors: batch sizes to submit
	term    chan outcome  // tailers -> collector: terminal events
	abort   chan struct{}

	rejected429  atomic.Uint64 // gateway backpressure responses absorbed
	submitErrors atomic.Uint64 // jobs lost to submission errors

	mu        sync.Mutex
	submitAt  map[string]time.Time // accepted uuid -> submit time
	latencies []time.Duration
	accepted  int
	failed    int
}

// scheduler apportions the concurrency budget into batches: it blocks for
// one slot, opportunistically tops the batch up to the batch bound, and
// hands the size to an executor.
func (g *loadgen) scheduler() {
	defer close(g.batches)
	remaining := g.jobs
	for remaining > 0 {
		select {
		case <-g.slots:
		case <-g.abort:
			return
		}
		n := 1
	topup:
		for n < g.batch && n < remaining {
			select {
			case <-g.slots:
				n++
			default:
				break topup
			}
		}
		select {
		case g.batches <- n:
			remaining -= n
		case <-g.abort:
			return
		}
	}
}

// executor submits batches through the gateway, absorbing 429 backpressure
// by honoring Retry-After and retrying until the campaign deadline.
func (g *loadgen) executor() {
	for n := range g.batches {
		accepted := g.submitBatch(n)
		// Jobs that never entered the grid resolve as lost: the collector
		// recycles their tokens and re-checks the exit condition.
		for i := accepted; i < n; i++ {
			g.submitErrors.Add(1)
			select {
			case g.term <- outcome{lost: true}:
			case <-g.abort:
				return
			}
		}
	}
}

// release returns one concurrency token without blocking (the channel can
// never exceed its capacity because every token in flight was drawn from it).
func (g *loadgen) release() {
	select {
	case g.slots <- struct{}{}:
	default:
	}
}

// fillSlots primes the budget; called once from collect.
func (g *loadgen) fillSlots() {
	for i := 0; i < cap(g.slots); i++ {
		g.slots <- struct{}{}
	}
}

// submitBatch POSTs one batch and records accepted submissions, returning
// how many jobs the gateway admitted.
func (g *loadgen) submitBatch(n int) int {
	specs := make([]map[string]interface{}, n)
	for i := range specs {
		specs[i] = map[string]interface{}{"ert": g.ert.String()}
	}
	body, _ := json.Marshal(map[string]interface{}{"jobs": specs})
	for {
		select {
		case <-g.abort:
			return 0
		default:
		}
		req, err := http.NewRequest(http.MethodPost, g.gate+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return 0
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Aria-Tenant", g.tenant)
		resp, err := g.client.Do(req)
		if err != nil {
			// Gateway unreachable: back off briefly and retry until the
			// deadline aborts the campaign.
			g.rejected429.Add(1)
			if !g.sleep(jitterRetry(200 * time.Millisecond)) {
				return 0
			}
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
		if err != nil {
			return 0
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			g.rejected429.Add(1)
			if !g.sleep(jitterRetry(retryAfter(resp, 200*time.Millisecond))) {
				return 0
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return 0
		}
		var reply struct {
			Results []struct {
				UUID  string `json:"uuid"`
				Error string `json:"error"`
			} `json:"results"`
		}
		if err := json.Unmarshal(data, &reply); err != nil {
			return 0
		}
		now := time.Now()
		accepted := 0
		g.mu.Lock()
		for _, r := range reply.Results {
			if r.UUID != "" && r.Error == "" {
				g.submitAt[r.UUID] = now
				accepted++
			}
		}
		g.accepted += accepted
		g.mu.Unlock()
		return accepted
	}
}

// sleep waits for d unless the campaign aborts first; false means aborted.
func (g *loadgen) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-g.abort:
		return false
	}
}

// retryAfter parses the Retry-After header, falling back to def.
func retryAfter(resp *http.Response, def time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return def
}

// jitterRetry spreads retries that share a backoff hint. The gateway rounds
// Retry-After up to whole seconds, so under saturation every backed-off
// client would otherwise re-arrive in the same instant the window reopens
// and re-trip the limiter in lockstep. The hint stays a floor (never retry
// early); up to half the hint again of uniform jitter desynchronizes the
// herd.
func jitterRetry(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int64N(int64(d)/2+1))
}

// tailEvents follows one daemon event log, forwarding terminal job events.
// The file may not exist yet when the campaign starts; the tailer keeps
// trying. Partially written lines are held until their newline arrives.
func (g *loadgen) tailEvents(path string) {
	var f *os.File
	defer func() {
		if f != nil {
			_ = f.Close()
		}
	}()
	var pending []byte
	buf := make([]byte, 64*1024)
	for {
		if f == nil {
			var err error
			if f, err = os.Open(path); err != nil {
				if !g.sleep(100 * time.Millisecond) {
					return
				}
				continue
			}
		}
		n, err := f.Read(buf)
		if n > 0 {
			pending = append(pending, buf[:n]...)
			for {
				i := bytes.IndexByte(pending, '\n')
				if i < 0 {
					break
				}
				line := pending[:i]
				pending = pending[i+1:]
				g.forwardLine(line)
			}
		}
		if err != nil || n == 0 {
			// EOF (or transient error): wait for the daemon to append.
			if !g.sleep(100 * time.Millisecond) {
				return
			}
		}
		select {
		case <-g.abort:
			return
		default:
		}
	}
}

func (g *loadgen) forwardLine(line []byte) {
	if len(bytes.TrimSpace(line)) == 0 {
		return
	}
	var e eventlog.Event
	if err := json.Unmarshal(line, &e); err != nil {
		return // foreign or torn line; the log is append-only JSONL
	}
	if e.Kind != eventlog.KindCompleted && e.Kind != eventlog.KindFailed {
		return
	}
	select {
	case g.term <- outcome{uuid: string(e.UUID), failed: e.Kind == eventlog.KindFailed}:
	case <-g.abort:
	}
}

// collect matches terminal events to submissions, measuring latency and
// recycling concurrency tokens, until every job is resolved or the
// campaign aborts.
func (g *loadgen) collect() {
	seen := make(map[string]bool)
	for {
		select {
		case o := <-g.term:
			if o.lost {
				g.release()
				if g.resolved() >= g.jobs {
					return
				}
				continue
			}
			if seen[o.uuid] {
				continue // the same completion can appear in several logs
			}
			g.mu.Lock()
			at, ours := g.submitAt[o.uuid]
			if !ours {
				g.mu.Unlock()
				continue // someone else's job on a shared grid
			}
			seen[o.uuid] = true
			if o.failed {
				g.failed++
			} else {
				g.latencies = append(g.latencies, time.Since(at))
			}
			g.mu.Unlock()
			g.release()
			if g.resolved() >= g.jobs {
				return
			}
		case <-g.abort:
			return
		}
	}
}

// resolved counts jobs with a terminal outcome: completed, failed, or lost
// at submission.
func (g *loadgen) resolved() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.latencies) + g.failed + int(g.submitErrors.Load())
}

// Report is the JSON document ariaload emits.
type Report struct {
	Gate        string  `json:"gate"`
	Jobs        int     `json:"jobs"`
	Accepted    int     `json:"accepted"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	Rejected429 uint64  `json:"backpressure429"`
	ElapsedSec  float64 `json:"elapsedSec"`
	Throughput  float64 `json:"throughputJobsPerSec"`

	LatencyP50Sec  float64 `json:"latencyP50Sec"`
	LatencyP95Sec  float64 `json:"latencyP95Sec"`
	LatencyP99Sec  float64 `json:"latencyP99Sec"`
	LatencyMaxSec  float64 `json:"latencyMaxSec"`
	LatencyMeanSec float64 `json:"latencyMeanSec"`

	SubmitErrors uint64 `json:"submitErrors"`
}

func (g *loadgen) report(elapsed time.Duration) Report {
	g.mu.Lock()
	defer g.mu.Unlock()
	secs := stats.DurationsToSeconds(g.latencies)
	rep := Report{
		Gate:         g.gate,
		Jobs:         g.jobs,
		Accepted:     g.accepted,
		Completed:    len(g.latencies),
		Failed:       g.failed,
		Rejected429:  g.rejected429.Load(),
		SubmitErrors: g.submitErrors.Load(),
		ElapsedSec:   elapsed.Seconds(),

		LatencyP50Sec:  stats.Percentile(secs, 50),
		LatencyP95Sec:  stats.Percentile(secs, 95),
		LatencyP99Sec:  stats.Percentile(secs, 99),
		LatencyMaxSec:  stats.Max(secs),
		LatencyMeanSec: stats.Mean(secs),
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Completed) / elapsed.Seconds()
	}
	return rep
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
