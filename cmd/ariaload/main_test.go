package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: the harness runs
// executors, tailers, and a scheduler, all of which must drain on exit.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}

// fakeGrid is an HTTP stand-in for ariagate plus the grid behind it: it
// admits batches (after a configurable number of 429s), assigns UUIDs, and
// immediately writes terminal events to an event log, failing every fifth
// job so the aggregator's failure path is exercised.
type fakeGrid struct {
	events string

	mu       sync.Mutex
	next     int
	deny429  int // initial requests to bounce with 429
	submits  int
	rejected int
}

func (f *fakeGrid) handler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/jobs" || r.Method != http.MethodPost {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	var batch struct {
		Jobs []struct {
			ERT string `json:"ert"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil || len(batch.Jobs) == 0 {
		http.Error(w, "bad batch", http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rejected < f.deny429 {
		f.rejected++
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated", http.StatusTooManyRequests)
		return
	}
	type result struct {
		UUID string `json:"uuid"`
	}
	reply := struct {
		Accepted int      `json:"accepted"`
		Results  []result `json:"results"`
	}{}
	log, err := os.OpenFile(f.events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer func() { _ = log.Close() }()
	for range batch.Jobs {
		f.next++
		f.submits++
		uuid := fmt.Sprintf("%032x", f.next)
		reply.Results = append(reply.Results, result{UUID: uuid})
		reply.Accepted++
		kind := "completed"
		if f.next%5 == 0 {
			kind = "failed"
		}
		fmt.Fprintf(log, "{\"kind\":%q,\"atSec\":%d,\"uuid\":%q,\"node\":1,\"execSec\":0.5}\n", kind, f.next, uuid)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

// TestLoadEndToEnd runs a full campaign against the fake grid: backpressure
// absorbed, every job resolved, latency percentiles ordered, and the report
// mirrored to -out.
func TestLoadEndToEnd(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "node0.jsonl")
	grid := &fakeGrid{events: events, deny429: 2}
	srv := httptest.NewServer(http.HandlerFunc(grid.handler))
	defer srv.Close()

	outPath := filepath.Join(dir, "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-gate", srv.URL,
		"-events", events + ", ", // trailing comma noise must be tolerated
		"-jobs", "20",
		"-concurrency", "4",
		"-batch", "4",
		"-ert", "500ms",
		"-timeout", "30s",
		"-out", outPath,
	}, nil, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, buf.String())
	}

	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("parse report: %v\n%s", err, buf.String())
	}
	if rep.Accepted != 20 || rep.Completed+rep.Failed != 20 {
		t.Fatalf("report = %+v, want 20 jobs resolved", rep)
	}
	if rep.Failed != 4 {
		t.Fatalf("failed = %d, want 4 (every fifth job)", rep.Failed)
	}
	if rep.Rejected429 == 0 {
		t.Fatal("the 429s were not recorded as backpressure")
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
	if rep.LatencyP50Sec > rep.LatencyP95Sec || rep.LatencyP95Sec > rep.LatencyP99Sec ||
		rep.LatencyP99Sec > rep.LatencyMaxSec || rep.LatencyMaxSec <= 0 {
		t.Fatalf("percentiles out of order: %+v", rep)
	}
	if grid.submits != 20 {
		t.Fatalf("grid saw %d submissions, want 20", grid.submits)
	}
	fileData, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileData, buf.Bytes()) {
		t.Fatal("-out file differs from the emitted report")
	}
}

// TestLoadAbortsOnTimeout points the harness at a black-hole gateway: the
// deadline must end the campaign with a no-completions error, not a hang.
func TestLoadAbortsOnTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	events := filepath.Join(t.TempDir(), "never-written.jsonl")

	var buf bytes.Buffer
	start := time.Now()
	err := run([]string{
		"-gate", srv.URL,
		"-events", events,
		"-jobs", "5",
		"-timeout", "2s",
	}, nil, &buf)
	if err == nil {
		t.Fatal("campaign with zero completions reported success")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("abort took %v", elapsed)
	}
	var rep Report
	if jerr := json.Unmarshal(buf.Bytes(), &rep); jerr != nil {
		t.Fatalf("no report on abort: %v", jerr)
	}
	if rep.Completed != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList("a.jsonl, b.jsonl,,c.jsonl ")
	want := []string{"a.jsonl", "b.jsonl", "c.jsonl"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
}

func TestRetryAfterHeader(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	if got := retryAfter(resp, 200*time.Millisecond); got != 200*time.Millisecond {
		t.Fatalf("missing header: %v", got)
	}
	resp.Header.Set("Retry-After", "3")
	if got := retryAfter(resp, 200*time.Millisecond); got != 3*time.Second {
		t.Fatalf("retryAfter = %v, want 3s", got)
	}
	resp.Header.Set("Retry-After", "soon")
	if got := retryAfter(resp, 200*time.Millisecond); got != 200*time.Millisecond {
		t.Fatalf("unparseable header: %v", got)
	}
}

// TestJitterRetryBounds pins the jitter contract: the hint is a floor (a
// jittered wait never retries early), the spread tops out at 1.5× the hint
// (bounded added latency), and the samples actually spread (the whole point
// is breaking retry lockstep after a shared Retry-After).
func TestJitterRetryBounds(t *testing.T) {
	const d = time.Second
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		got := jitterRetry(d)
		if got < d || got > d+d/2 {
			t.Fatalf("jitterRetry(%v) = %v, want in [%v, %v]", d, got, d, d+d/2)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitterRetry produced no spread over 200 samples: %v", seen)
	}
	if got := jitterRetry(0); got != 0 {
		t.Fatalf("jitterRetry(0) = %v, want 0", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := [][]string{
		{"-nope"},
		{"-jobs", "10"}, // missing -events
		{"-events", "x.jsonl", "-jobs", "0"},
		{"-events", "x.jsonl", "-concurrency", "0"},
		{"-events", "x.jsonl", "-batch", "-1"},
		{"-events", "x.jsonl", "-workers", "0"},
		{"-events", "x.jsonl", "-timeout", "0s"},
	}
	for _, args := range tests {
		if err := run(args, nil, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
