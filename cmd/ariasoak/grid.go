package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/smartgrid/aria/internal/chaos"
)

// topology is the soak grid's static wiring plan: N daemons on fixed
// localhost ports, a ring-plus-chords overlay, and one chaos proxy per
// directed (sender, receiver) pair so each direction of each link can be
// degraded independently.
type topology struct {
	n        int
	portBase int
}

func (t topology) protoPort(i int) int { return t.portBase + i }
func (t topology) ctlPort(i int) int   { return t.portBase + 100 + i }
func (t topology) debugPort(i int) int { return t.portBase + 200 + i }
func (t topology) gatePort() int       { return t.portBase + 300 }

func (t topology) protoAddr(i int) string { return fmt.Sprintf("127.0.0.1:%d", t.protoPort(i)) }
func (t topology) ctlAddr(i int) string   { return fmt.Sprintf("127.0.0.1:%d", t.ctlPort(i)) }
func (t topology) debugAddr(i int) string { return fmt.Sprintf("127.0.0.1:%d", t.debugPort(i)) }
func (t topology) gateAddr() string       { return fmt.Sprintf("127.0.0.1:%d", t.gatePort()) }

// neighbors is the ring-plus-chords overlay: each node links to ids ±1 and
// ±2 (mod n), degree 4 — connected, sparse, and with enough redundancy
// that a single cut node never splits the grid.
func (t topology) neighbors(i int) []int {
	set := map[int]bool{}
	for _, d := range []int{1, 2, t.n - 1, t.n - 2} {
		nb := (i + d) % t.n
		if nb != i {
			set[nb] = true
		}
	}
	out := make([]int, 0, len(set))
	for nb := range set {
		out = append(out, nb)
	}
	sort.Ints(out)
	return out
}

// nodeID is daemon i's overlay address. Deliberately 1-based: overlay ID 0
// doubles as the journal's "no initiator recorded" sentinel, so a daemon
// actually named 0 would have its delegated jobs recovered as self-initiated
// — skipping the initiator re-confirmation fence that keeps exactly-one
// execution across crash recovery.
func nodeID(i int) int { return i + 1 }

// nodeIndex inverts nodeID for audit lookups keyed by daemon index; -1 for
// overlay addresses outside the grid.
func (t topology) nodeIndex(id int) int {
	if id < 1 || id > t.n {
		return -1
	}
	return id - 1
}

// neighborsArg renders -neighbors for daemon i.
func (t topology) neighborsArg(i int) string {
	parts := make([]string, 0, 4)
	for _, nb := range t.neighbors(i) {
		parts = append(parts, fmt.Sprint(nodeID(nb)))
	}
	return strings.Join(parts, ",")
}

// peersArg renders -peers for daemon i: every other node's address is that
// node's real protocol port REPLACED by the i→j proxy, so all of i's
// outbound traffic crosses the fabric.
func (t topology) peersArg(i int, fabric *chaos.Fabric) (string, error) {
	parts := make([]string, 0, t.n-1)
	for j := 0; j < t.n; j++ {
		if j == i {
			continue
		}
		link, ok := fabric.Link(i, j)
		if !ok {
			return "", fmt.Errorf("fabric missing link %d->%d", i, j)
		}
		parts = append(parts, fmt.Sprintf("%d=%s", nodeID(j), link.Addr()))
	}
	return strings.Join(parts, ","), nil
}

// buildFabric creates the full directed proxy mesh for the topology.
func buildFabric(t topology) (*chaos.Fabric, error) {
	fabric := chaos.NewFabric()
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if i == j {
				continue
			}
			if _, err := fabric.Add(i, j, t.protoAddr(j)); err != nil {
				fabric.Close()
				return nil, err
			}
		}
	}
	return fabric, nil
}

// dirTTL is the directory TTL every soak daemon runs with; the drain phase
// and the poison audit's restart cutoff are both sized against it.
const dirTTL = 20 * time.Second

// daemonState tracks one ariad process across its incarnations.
type daemonState struct {
	cmd       *exec.Cmd
	exited    chan struct{} // closed by the reaper once cmd.Wait returns
	logFile   *os.File
	restarts  int
	running   bool
	paused    bool
	lastStart time.Time
	crashes   int // unexpected exits the supervisor respawned
}

// walFaultProfile is the disk-fault injection passed down to unprotected
// daemons via ariad's -wal-*-pct flags.
type walFaultProfile struct {
	shortPct, syncPct, flipPct float64
}

func (w walFaultProfile) active() bool {
	return w.shortPct > 0 || w.syncPct > 0 || w.flipPct > 0
}

// grid owns the spawned processes of one soak run.
type grid struct {
	topo      topology
	fabric    *chaos.Fabric
	bin       string
	work      string
	seed      int64
	walFaults walFaultProfile
	protected map[int]bool // never fault-injected (the ingress/initiator node)

	mu       sync.Mutex
	daemons  []*daemonState
	stopping bool // stopAll began; refuse further spawns

	// onUnexpectedExit fires (off the reaper goroutine, lock released)
	// when a daemon dies without kill or stopAll having claimed it — a
	// crash, including the deliberate exit-3/exit-4 deaths of WAL fault
	// injection. Set before the first spawn.
	onUnexpectedExit func(node, code int)
}

func newGrid(topo topology, fabric *chaos.Fabric, bin, work string, seed int64) *grid {
	g := &grid{topo: topo, fabric: fabric, bin: bin, work: work, seed: seed}
	g.daemons = make([]*daemonState, topo.n)
	for i := range g.daemons {
		g.daemons[i] = &daemonState{}
	}
	return g
}

// eventLog is daemon i's JSONL audit log (append-mode, survives restarts).
func (g *grid) eventLog(i int) string {
	return filepath.Join(g.work, fmt.Sprintf("events-%d.jsonl", i))
}

// daemonArgs renders the full ariad argument list for daemon i at its
// current incarnation. Every hardening plane is armed: delivery (ASSIGN/ACK
// plus the NOTIFY watchdog — without these a SIGKILLed assignee orphans its
// jobs, which the first soak runs proved), membership probing, the journal,
// directed discovery, and overload bounds — the soak's point is proving
// they compose.
func (g *grid) daemonArgs(i, incarnation int) ([]string, error) {
	peers, err := g.topo.peersArg(i, g.fabric)
	if err != nil {
		return nil, err
	}
	args := []string{
		"-id", fmt.Sprint(nodeID(i)),
		"-listen", g.topo.protoAddr(i),
		"-control", g.topo.ctlAddr(i),
		"-debug", g.topo.debugAddr(i),
		"-peers", peers,
		"-neighbors", g.topo.neighborsArg(i),
		"-seed", fmt.Sprint(g.seed + int64(i)*1000 + int64(incarnation)),
		"-events", g.eventLog(i),
		"-data-dir", filepath.Join(g.work, fmt.Sprintf("data-%d", i)),
		"-incarnation", fmt.Sprint(incarnation),
		"-assign-ack",
		"-notify",
		"-probe-interval", "1s",
		"-probe-timeout", "800ms",
		"-suspect-timeout", "6s",
		"-max-degree", "6",
		"-directed-candidates", "2",
		"-directory-ttl", dirTTL.String(),
		"-max-queued", "64",
		"-max-pending", "256",
		"-retry-backoff-cap", "60s",
	}
	// Disk-fault injection rides on every unprotected daemon. The seed is
	// derived per (node, incarnation) so reruns replay the same faults but
	// a respawned daemon does not re-trip the identical short write on its
	// first post-recovery append.
	if g.walFaults.active() && !g.protected[i] {
		args = append(args,
			"-wal-short-write-pct", fmt.Sprint(g.walFaults.shortPct),
			"-wal-sync-err-pct", fmt.Sprint(g.walFaults.syncPct),
			"-wal-flip-pct", fmt.Sprint(g.walFaults.flipPct),
			"-wal-fault-seed", fmt.Sprint(g.seed+int64(i)*7919+int64(incarnation)*104729),
		)
	}
	return args, nil
}

// spawn starts daemon i at its current restart count.
func (g *grid) spawn(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spawnLocked(i)
}

func (g *grid) spawnLocked(i int) error {
	d := g.daemons[i]
	if g.stopping {
		return fmt.Errorf("daemon %d: grid is shutting down", i)
	}
	if d.running {
		return fmt.Errorf("daemon %d already running", i)
	}
	args, err := g.daemonArgs(i, d.restarts)
	if err != nil {
		return err
	}
	if d.logFile == nil {
		f, err := os.OpenFile(filepath.Join(g.work, fmt.Sprintf("ariad-%d.log", i)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		d.logFile = f
	}
	cmd := exec.Command(filepath.Join(g.bin, "ariad"), args...)
	cmd.Stdout = d.logFile
	cmd.Stderr = d.logFile
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn ariad %d: %w", i, err)
	}
	d.cmd = cmd
	d.exited = make(chan struct{})
	d.running = true
	d.paused = false
	d.lastStart = time.Now()
	// Reap in the background so a SIGKILL'd daemon never zombies. If the
	// daemon exits while still marked running — nobody killed it, stopAll
	// didn't claim it — that is a crash (including the deliberate exit-3
	// and exit-4 deaths of WAL fault injection), and the supervisor hook
	// decides what happens next.
	exited := d.exited
	go func() {
		_ = cmd.Wait()
		code := -1
		if cmd.ProcessState != nil {
			code = cmd.ProcessState.ExitCode()
		}
		g.mu.Lock()
		unexpected := d.running && d.cmd == cmd
		if unexpected {
			d.running = false
		}
		handler := g.onUnexpectedExit
		g.mu.Unlock()
		close(exited)
		if unexpected && handler != nil {
			handler(i, code)
		}
	}()
	return nil
}

// noteCrash increments and returns daemon i's unexpected-exit count, so the
// supervisor can cap crash loops.
func (g *grid) noteCrash(i int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.daemons[i].crashes++
	return g.daemons[i].crashes
}

// dataDir is daemon i's journal directory.
func (g *grid) dataDir(i int) string {
	return filepath.Join(g.work, fmt.Sprintf("data-%d", i))
}

// wipeData removes daemon i's data dir — the supervisor policy for a boot
// refused on a corrupt store (exit 4): the store is unrecoverable, so the
// respawn comes back amnesiac and the NOTIFY watchdogs re-place its jobs.
func (g *grid) wipeData(i int) error {
	return os.RemoveAll(g.dataDir(i))
}

// disarmWALFaults stops arming disk faults on subsequent (re)spawns: the
// final heal ends fault injection, so daemons that still crash on an armed
// fault during the drain come back clean and convergence can settle.
func (g *grid) disarmWALFaults() {
	g.mu.Lock()
	g.walFaults = walFaultProfile{}
	g.mu.Unlock()
}

// lastStarts reports when each daemon's current incarnation began.
func (g *grid) lastStarts() []time.Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]time.Time, len(g.daemons))
	for i, d := range g.daemons {
		out[i] = d.lastStart
	}
	return out
}

// kill SIGKILLs daemon i (fail-stop crash).
func (g *grid) kill(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.daemons[i]
	if !d.running || d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("kill daemon %d: not running", i)
	}
	err := d.cmd.Process.Kill()
	d.running = false
	return err
}

// restart respawns a killed daemon with the next incarnation number; the
// journal in its data dir makes the revenant recover rather than reboot
// amnesiac.
func (g *grid) restart(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.daemons[i]
	if d.running {
		return fmt.Errorf("restart daemon %d: still running", i)
	}
	d.restarts++
	return g.spawnLocked(i)
}

// pause SIGSTOPs daemon i — the canonical gray failure: sockets stay open
// and accepted, nothing is read.
func (g *grid) pause(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.daemons[i]
	if !d.running || d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("pause daemon %d: not running", i)
	}
	if err := d.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return err
	}
	d.paused = true
	return nil
}

// resume SIGCONTs a paused daemon.
func (g *grid) resume(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.daemons[i]
	if !d.paused || d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("resume daemon %d: not paused", i)
	}
	if err := d.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return err
	}
	d.paused = false
	return nil
}

// probeTargets lists the daemons currently able to answer control or debug
// requests (running and not paused), with their restart counts.
func (g *grid) probeTargets() map[int]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[int]int)
	for i, d := range g.daemons {
		if d.running && !d.paused {
			out[i] = d.restarts
		}
	}
	return out
}

// incarnations reports every daemon's current restart count.
func (g *grid) incarnations() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, len(g.daemons))
	for i, d := range g.daemons {
		out[i] = d.restarts
	}
	return out
}

// stopAll SIGTERMs every daemon (graceful drain-to-snapshot) and waits
// briefly before force-killing stragglers.
func (g *grid) stopAll(grace time.Duration) {
	type stopping struct {
		cmd    *exec.Cmd
		exited chan struct{}
	}
	g.mu.Lock()
	g.stopping = true
	procs := make([]stopping, 0, len(g.daemons))
	for _, d := range g.daemons {
		if d.cmd != nil && d.cmd.Process != nil && d.running {
			if d.paused {
				_ = d.cmd.Process.Signal(syscall.SIGCONT)
				d.paused = false
			}
			_ = d.cmd.Process.Signal(syscall.SIGTERM)
			procs = append(procs, stopping{d.cmd, d.exited})
		}
		d.running = false
	}
	g.mu.Unlock()

	deadline := time.Now().Add(grace)
	for _, p := range procs {
		select {
		case <-p.exited:
			continue
		case <-time.After(time.Until(deadline)):
			_ = p.cmd.Process.Kill()
			<-p.exited
		}
	}
	g.mu.Lock()
	for _, d := range g.daemons {
		if d.logFile != nil {
			_ = d.logFile.Close()
			d.logFile = nil
		}
	}
	g.mu.Unlock()
}
