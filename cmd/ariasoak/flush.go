package main

import (
	"fmt"
	"os"
	"sync"

	"github.com/smartgrid/aria/internal/soak"
)

// interruptFlusher turns the first SIGINT/SIGTERM into an immediate partial
// report on disk: a many-minute endurance run killed by an operator or a CI
// timeout still leaves evidence of everything it observed. The snapshot is
// marked Interrupted and never passes; the orderly unwind the signal also
// triggers overwrites it with a fuller one if it gets that far.
type interruptFlusher struct {
	out   string
	build func() soak.Report

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func newInterruptFlusher(out string, build func() soak.Report) *interruptFlusher {
	return &interruptFlusher{out: out, build: build, done: make(chan struct{})}
}

// watch consumes sig until stop is called; on the first signal it flushes
// the snapshot and then invokes onSignal (used to unwind the run).
func (f *interruptFlusher) watch(sig <-chan os.Signal, onSignal func()) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		select {
		case <-f.done:
			return
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "ariasoak: caught %v; flushing partial report to %s\n", s, f.out)
			rep := f.build()
			rep.Interrupted = true
			rep.Pass = false
			if err := soak.WriteReport(f.out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "ariasoak: interrupt flush: %v\n", err)
			}
			if onSignal != nil {
				onSignal()
			}
		}
	}()
}

// stop ends the watch (idempotent) and waits for any in-flight flush, so a
// report write never races the caller's teardown.
func (f *interruptFlusher) stop() {
	f.once.Do(func() { close(f.done) })
	f.wg.Wait()
}
