package main

import (
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/soak"
)

func TestTopologyNeighborsRingPlusChords(t *testing.T) {
	topo := topology{n: 8, portBase: 27400}
	if got := topo.neighbors(0); !reflect.DeepEqual(got, []int{1, 2, 6, 7}) {
		t.Fatalf("neighbors(0) = %v", got)
	}
	// The rendered argument carries 1-based overlay IDs (indices 1,2,4,5).
	if got := topo.neighborsArg(3); got != "2,3,5,6" {
		t.Fatalf("neighborsArg(3) = %q", got)
	}
	// Degree stays 4 even at the smallest supported grid.
	small := topology{n: 4}
	if got := small.neighbors(1); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("neighbors(1) on n=4 = %v", got)
	}
}

func TestTopologyPortPlanesDisjoint(t *testing.T) {
	topo := topology{n: 99, portBase: 27400}
	seen := map[int]string{}
	claim := func(p int, plane string) {
		if prev, ok := seen[p]; ok {
			t.Fatalf("port %d claimed by both %s and %s", p, prev, plane)
		}
		seen[p] = plane
	}
	for i := 0; i < topo.n; i++ {
		claim(topo.protoPort(i), "proto")
		claim(topo.ctlPort(i), "ctl")
		claim(topo.debugPort(i), "debug")
	}
	claim(topo.gatePort(), "gate")
}

func TestPoisonEntries(t *testing.T) {
	// Incarnations are indexed by daemon index; overlay IDs are 1-based,
	// so node 2 maps to incs[1], node 3 to incs[2], and so on.
	incs := []int{0, 2, 1, 0}
	dir := []ctl.DirectoryEntry{
		{NodeID: 2, Incarnation: 2}, // current
		{NodeID: 2, Incarnation: 1}, // stale: node 2 is on incarnation 2
		{NodeID: 3, Incarnation: 0}, // stale: node 3 restarted once
		{NodeID: 4, Incarnation: 0}, // never restarted
		{NodeID: 9, Incarnation: 0}, // unknown node: ignored
	}
	got := poisonEntries(dir, incs)
	if len(got) != 2 || got[0].NodeID != 2 || got[0].Incarnation != 1 || got[1].NodeID != 3 {
		t.Fatalf("poisonEntries = %+v", got)
	}
}

func TestUnsettled(t *testing.T) {
	members := []ctl.MemberEntry{
		{NodeID: 1, State: "alive"},
		{NodeID: 2, State: "suspect"},
		{NodeID: 3, State: "dead"},
		{NodeID: 4, State: "alive"},
	}
	if n := unsettled(members); n != 2 {
		t.Fatalf("unsettled = %d, want 2", n)
	}
	if n := unsettled(nil); n != 0 {
		t.Fatalf("unsettled(nil) = %d", n)
	}
}

func TestBuildLeakRules(t *testing.T) {
	cfg := soakConfig{maxGoroSlope: 0.35, maxRSSSlopeKB: 256, maxFDSlope: 0.25}
	// Long run: the verdict span caps at 60s.
	r := buildLeakRules(cfg, 10*time.Minute)
	if r.goroutines.MinSpanSec != 60 || r.rssKB.MinSpanSec != 60 || r.fds.MinSpanSec != 60 {
		t.Fatalf("long-run span: %+v", r)
	}
	if r.goroutines.MaxSlopePerSec != 0.35 || r.rssKB.MaxSlopePerSec != 256 || r.fds.MaxSlopePerSec != 0.25 {
		t.Fatalf("slope bounds: %+v", r)
	}
	// Short run: a third of the run, so smoke soaks still get verdicts.
	if r := buildLeakRules(cfg, 60*time.Second); r.goroutines.MinSpanSec != 20 {
		t.Fatalf("short-run span: %+v", r.goroutines)
	}
	// Explicit override wins.
	cfg.leakMinSpan = 45 * time.Second
	if r := buildLeakRules(cfg, 10*time.Minute); r.fds.MinSpanSec != 45 {
		t.Fatalf("override span: %+v", r.fds)
	}
}

func TestChaosRounds(t *testing.T) {
	base := soakConfig{warmup: 10 * time.Second, chaosDur: 45 * time.Second, drain: 25 * time.Second}
	if n := chaosRounds(base); n != 1 {
		t.Fatalf("no -duration: %d rounds", n)
	}
	cfg := base
	cfg.duration = 10 * time.Minute
	// (600 - 10 - 25) / 45 = 12 full rounds.
	if n := chaosRounds(cfg); n != 12 {
		t.Fatalf("10m budget: %d rounds, want 12", n)
	}
	// A budget too small for even one round still runs one.
	cfg.duration = 20 * time.Second
	if n := chaosRounds(cfg); n != 1 {
		t.Fatalf("tiny budget: %d rounds", n)
	}
}

// TestInterruptFlusherWritesPartialReport: the first signal flushes an
// Interrupted, non-passing snapshot to disk and triggers the unwind hook.
func TestInterruptFlusherWritesPartialReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "soak.json")
	f := newInterruptFlusher(out, func() soak.Report {
		return soak.Report{Tool: "ariasoak", Seed: 7, Submitted: 42, Completed: 40, Pass: true}
	})
	sig := make(chan os.Signal, 1)
	unwound := make(chan struct{})
	f.watch(sig, func() { close(unwound) })
	sig <- syscall.SIGINT
	select {
	case <-unwound:
	case <-time.After(5 * time.Second):
		t.Fatal("signal never triggered the unwind hook")
	}
	f.stop()
	rep, err := soak.ReadReport(out)
	if err != nil {
		t.Fatalf("read flushed report: %v", err)
	}
	if !rep.Interrupted || rep.Pass {
		t.Fatalf("flushed report not marked interrupted/failed: %+v", rep)
	}
	if rep.Seed != 7 || rep.Submitted != 42 || rep.Completed != 40 {
		t.Fatalf("flushed report lost state: %+v", rep)
	}
}

// TestInterruptFlusherStopWithoutSignal: a clean run stops the watcher
// without writing anything.
func TestInterruptFlusherStopWithoutSignal(t *testing.T) {
	out := filepath.Join(t.TempDir(), "soak.json")
	f := newInterruptFlusher(out, func() soak.Report { return soak.Report{} })
	f.watch(make(chan os.Signal, 1), func() { t.Error("unwind hook fired without a signal") })
	f.stop()
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("report written without a signal (stat err %v)", err)
	}
}
