package main

import (
	"reflect"
	"testing"

	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/soak"
)

func TestTopologyNeighborsRingPlusChords(t *testing.T) {
	topo := topology{n: 8, portBase: 27400}
	if got := topo.neighbors(0); !reflect.DeepEqual(got, []int{1, 2, 6, 7}) {
		t.Fatalf("neighbors(0) = %v", got)
	}
	if got := topo.neighborsArg(3); got != "1,2,4,5" {
		t.Fatalf("neighborsArg(3) = %q", got)
	}
	// Degree stays 4 even at the smallest supported grid.
	small := topology{n: 4}
	if got := small.neighbors(1); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("neighbors(1) on n=4 = %v", got)
	}
}

func TestTopologyPortPlanesDisjoint(t *testing.T) {
	topo := topology{n: 99, portBase: 27400}
	seen := map[int]string{}
	claim := func(p int, plane string) {
		if prev, ok := seen[p]; ok {
			t.Fatalf("port %d claimed by both %s and %s", p, prev, plane)
		}
		seen[p] = plane
	}
	for i := 0; i < topo.n; i++ {
		claim(topo.protoPort(i), "proto")
		claim(topo.ctlPort(i), "ctl")
		claim(topo.debugPort(i), "debug")
	}
	claim(topo.gatePort(), "gate")
}

func TestPoisonEntries(t *testing.T) {
	incs := []int{0, 2, 1, 0}
	dir := []ctl.DirectoryEntry{
		{NodeID: 1, Incarnation: 2}, // current
		{NodeID: 1, Incarnation: 1}, // stale: node 1 is on incarnation 2
		{NodeID: 2, Incarnation: 0}, // stale: node 2 restarted once
		{NodeID: 3, Incarnation: 0}, // never restarted
		{NodeID: 9, Incarnation: 0}, // unknown node: ignored
	}
	got := poisonEntries(dir, incs)
	if len(got) != 2 || got[0].NodeID != 1 || got[0].Incarnation != 1 || got[1].NodeID != 2 {
		t.Fatalf("poisonEntries = %+v", got)
	}
}

func TestUnsettled(t *testing.T) {
	members := []ctl.MemberEntry{
		{NodeID: 1, State: "alive"},
		{NodeID: 2, State: "suspect"},
		{NodeID: 3, State: "dead"},
		{NodeID: 4, State: "alive"},
	}
	if n := unsettled(members); n != 2 {
		t.Fatalf("unsettled = %d, want 2", n)
	}
	if n := unsettled(nil); n != 0 {
		t.Fatalf("unsettled(nil) = %d", n)
	}
}

func TestGrowthViolations(t *testing.T) {
	base := soak.RuntimeStats{Goroutines: 100, Incarnation: 1}
	// Within slack: clean.
	if v := growthViolations(3, base, soak.RuntimeStats{Goroutines: 150, Incarnation: 1}, 1000, 2000, 100, 4096); len(v) != 0 {
		t.Fatalf("within-slack flagged: %+v", v)
	}
	// Goroutine growth past slack.
	v := growthViolations(3, base, soak.RuntimeStats{Goroutines: 301, Incarnation: 1}, 1000, 2000, 100, 4096)
	if len(v) != 1 || v[0].Invariant != "goroutine-growth" || v[0].Node != 3 {
		t.Fatalf("goroutine growth: %+v", v)
	}
	// RSS growth past slack.
	v = growthViolations(3, base, soak.RuntimeStats{Goroutines: 100, Incarnation: 1}, 1000, 10000, 100, 4096)
	if len(v) != 1 || v[0].Invariant != "rss-growth" {
		t.Fatalf("rss growth: %+v", v)
	}
	// Incarnation changed between samples: no comparison possible.
	if v := growthViolations(3, base, soak.RuntimeStats{Goroutines: 9999, Incarnation: 2}, 1000, 99999, 100, 4096); v != nil {
		t.Fatalf("cross-incarnation compared: %+v", v)
	}
	// Missing RSS samples skip only the RSS bound.
	if v := growthViolations(3, base, soak.RuntimeStats{Goroutines: 100, Incarnation: 1}, 0, 10000, 100, 4096); len(v) != 0 {
		t.Fatalf("missing baseline RSS flagged: %+v", v)
	}
}
