package main

import (
	"fmt"

	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/soak"
)

// poisonEntries returns the directory entries that cache a digest from an
// incarnation OLDER than the node's current one. After the drain phase —
// which outlasts the directory TTL — any such survivor is a poisoned cache:
// knowledge of a dead incarnation that refresh and expiry both failed to
// purge.
func poisonEntries(dir []ctl.DirectoryEntry, incarnations []int) []ctl.DirectoryEntry {
	var out []ctl.DirectoryEntry
	for _, e := range dir {
		id := int(e.NodeID)
		if id < 0 || id >= len(incarnations) {
			continue
		}
		if e.Incarnation < uint64(incarnations[id]) {
			out = append(out, e)
		}
	}
	return out
}

// unsettled counts membership entries that are not "alive". With every
// daemon running and every link healed, any surviving suspect or dead
// verdict means the membership plane has not yet re-converged.
func unsettled(members []ctl.MemberEntry) int {
	n := 0
	for _, m := range members {
		if m.State != "alive" {
			n++
		}
	}
	return n
}

// growthViolations compares a daemon's final runtime sample against its
// baseline from the same incarnation and reports bound breaches. Baselines
// are re-taken after every restart, so a comparison never spans a process
// boundary.
func growthViolations(node int, base, final soak.RuntimeStats, baseRSS, finalRSS int64, goroutineSlack int, rssSlackKB int64) []soak.Violation {
	var out []soak.Violation
	if base.Incarnation != final.Incarnation {
		return nil
	}
	if grew := final.Goroutines - base.Goroutines; grew > goroutineSlack {
		out = append(out, soak.Violation{
			Invariant: "goroutine-growth",
			Node:      node,
			Detail: fmt.Sprintf("goroutines %d -> %d (+%d, slack %d) in incarnation %d",
				base.Goroutines, final.Goroutines, grew, goroutineSlack, base.Incarnation),
		})
	}
	if baseRSS > 0 && finalRSS > 0 {
		if grew := finalRSS - baseRSS; grew > rssSlackKB {
			out = append(out, soak.Violation{
				Invariant: "rss-growth",
				Node:      node,
				Detail: fmt.Sprintf("RSS %d KB -> %d KB (+%d KB, slack %d KB) in incarnation %d",
					baseRSS, finalRSS, grew, rssSlackKB, base.Incarnation),
			})
		}
	}
	return out
}
