package main

import (
	"time"

	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/soak"
)

// poisonEntries returns the directory entries that cache a digest from an
// incarnation OLDER than the node's current one. After the drain phase —
// which outlasts the directory TTL — any such survivor is a poisoned cache:
// knowledge of a dead incarnation that refresh and expiry both failed to
// purge. Incarnations are indexed by daemon index, overlay IDs are 1-based.
func poisonEntries(dir []ctl.DirectoryEntry, incarnations []int) []ctl.DirectoryEntry {
	var out []ctl.DirectoryEntry
	for _, e := range dir {
		idx := int(e.NodeID) - 1
		if idx < 0 || idx >= len(incarnations) {
			continue
		}
		if e.Incarnation < uint64(incarnations[idx]) {
			out = append(out, e)
		}
	}
	return out
}

// unsettled counts membership entries that are not "alive". With every
// daemon running and every link healed, any surviving suspect or dead
// verdict means the membership plane has not yet re-converged.
func unsettled(members []ctl.MemberEntry) int {
	n := 0
	for _, m := range members {
		if m.State != "alive" {
			n++
		}
	}
	return n
}

// leakRules is the per-gauge trend policy leak detection enforces: a
// qualifying per-incarnation least-squares slope above the bound is a leak.
type leakRules struct {
	goroutines soak.LeakRule
	rssKB      soak.LeakRule
	fds        soak.LeakRule
}

// buildLeakRules derives the trend policy from the configured slope bounds.
// A verdict needs enough lifetime to mean something: by default a segment
// must span min(60s, a third of the run) — short runs still get verdicts,
// and a daemon restarted moments before the end yields none rather than a
// noisy one.
func buildLeakRules(cfg soakConfig, total time.Duration) leakRules {
	span := cfg.leakMinSpan
	if span <= 0 {
		span = 60 * time.Second
		if third := total / 3; third < span {
			span = third
		}
	}
	mk := func(slope float64) soak.LeakRule {
		return soak.LeakRule{
			MaxSlopePerSec: slope,
			MinSamples:     12,
			MinSpanSec:     span.Seconds(),
			WarmupSec:      cfg.leakWarmup.Seconds(),
		}
	}
	return leakRules{
		goroutines: mk(cfg.maxGoroSlope),
		rssKB:      mk(cfg.maxRSSSlopeKB),
		fds:        mk(cfg.maxFDSlope),
	}
}
