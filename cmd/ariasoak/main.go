// Command ariasoak orchestrates a chaos soak against a real ARiA grid: it
// spawns N ariad daemons wired through a per-directed-link fault proxy
// fabric (internal/chaos), fronts the ingress node with ariagate, drives
// closed-loop traffic with ariaload, and executes a seeded fault schedule —
// SIGKILL/restart, SIGSTOP/SIGCONT, two-way and one-way partitions,
// slow-peer windows, probabilistic link degradation (loss, corruption,
// duplication, reorder), and injected WAL disk faults (torn appends, fsync
// errors, boot-time bit rot) — while continuously auditing live invariants:
//
//   - exactly-one execution and no orphaned jobs (tailed event logs),
//   - no leak trends: per-incarnation least-squares slopes over goroutine,
//     RSS, and FD samples must stay under their bounds (expvar + /proc),
//   - daemons that die on an injected disk fault die LOUDLY (exit 3) and
//     recover on respawn; corrupt stores refuse to boot (exit 4) and are
//     wiped — any other unexpected exit is a violation,
//   - no directory poisoning: after the drain outlasts the directory TTL,
//     no daemon may still cache a digest from a dead incarnation,
//   - membership re-convergence within a deadline after the final heal.
//
// With -duration the chaos phase repeats in -chaos sized rounds, each with
// a fresh seeded schedule, until the budget is filled — the endurance mode
// the nightly workflow runs. Interim reports flush every -report-every so
// long runs are observable, and SIGINT/SIGTERM flushes a partial report
// before exiting.
//
// The run ends with a machine-readable soak report (internal/soak.Report)
// and a non-zero exit if any invariant was violated. The same -seed always
// replays the same schedule, so a failing soak reproduces exactly.
//
// Usage:
//
//	go build -race -o /tmp/bin ./cmd/...
//	ariasoak -bin /tmp/bin -nodes 12 -seed 1 -out results/soak-1.json
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/smartgrid/aria/internal/chaos"
	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/leakcheck"
	"github.com/smartgrid/aria/internal/soak"
)

// ariad's die-loudly exit codes: 3 = a runtime WAL write fault, 4 = a boot
// refused on a corrupt store. The supervisor treats them as expected deaths
// with distinct recovery policies; any other unexpected exit is a violation.
const (
	ariadExitWALFault   = 3
	ariadExitWALCorrupt = 4
)

// maxCrashRespawns caps how often the supervisor revives one daemon before
// declaring a crash loop. Sized far above what the configured fault rates
// should produce, so hitting it means recovery is not converging.
const maxCrashRespawns = 25

func main() {
	code := run(os.Args[1:])
	if leaked := leakcheck.Check(); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "ariasoak: %d goroutine(s) leaked in the harness itself:\n", len(leaked))
		for _, g := range leaked {
			fmt.Fprintln(os.Stderr, g)
		}
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

type soakConfig struct {
	topo     topology
	bin      string
	work     string
	out      string
	seed     int64
	verbose  bool
	keepWork bool

	warmup, chaosDur, drain time.Duration
	duration                time.Duration
	reportEvery             time.Duration

	jobs        int
	concurrency int
	ert         time.Duration

	kills, pauses, partitions, oneway, slowdowns int
	maxOutage, slowDelay                         time.Duration

	lossPct, corruptPct, dupPct, reorderPct float64
	walShortPct, walSyncPct, walFlipPct     float64

	maxGoroSlope  float64
	maxRSSSlopeKB float64
	maxFDSlope    float64
	leakMinSpan   time.Duration
	leakWarmup    time.Duration

	converge time.Duration
}

func run(args []string) int {
	fs := flag.NewFlagSet("ariasoak", flag.ContinueOnError)
	var cfg soakConfig
	fs.IntVar(&cfg.topo.n, "nodes", 12, "grid size (daemon count)")
	fs.IntVar(&cfg.topo.portBase, "port-base", 27400, "first port; the run claims [base, base+300]")
	fs.StringVar(&cfg.bin, "bin", "", "directory holding prebuilt ariad, ariagate, and ariaload binaries (required)")
	fs.StringVar(&cfg.work, "work", "", "scratch directory for logs and journals (default: a temp dir)")
	fs.StringVar(&cfg.out, "out", "", "write the JSON soak report here (default: <work>/soak.json)")
	fs.Int64Var(&cfg.seed, "seed", 1, "schedule seed; the same seed replays the same faults")
	fs.BoolVar(&cfg.verbose, "v", false, "log each fault injection and audit milestone")
	fs.BoolVar(&cfg.keepWork, "keep-work", false, "keep the scratch directory after a passing run")

	fs.DurationVar(&cfg.warmup, "warmup", 12*time.Second, "fault-free phase before chaos (baselines sampled at its end)")
	fs.DurationVar(&cfg.chaosDur, "chaos", 45*time.Second, "fault-injection phase (or round) duration")
	fs.DurationVar(&cfg.drain, "drain", 25*time.Second, "fault-free phase after the final heal; must exceed the directory TTL (20s) for the poison audit to bite")
	fs.DurationVar(&cfg.duration, "duration", 0, "endurance mode: total wall-clock target; chaos repeats in -chaos sized rounds, each with a fresh seeded schedule, until warmup+rounds*chaos+drain fills the budget (0 = single round)")
	fs.DurationVar(&cfg.reportEvery, "report-every", time.Minute, "flush an interim JSON report to -out at this cadence so long runs are observable mid-flight (0 disables)")

	fs.IntVar(&cfg.jobs, "jobs", 120, "jobs ariaload submits over the run")
	fs.IntVar(&cfg.concurrency, "concurrency", 12, "ariaload closed-loop bound")
	fs.DurationVar(&cfg.ert, "ert", 1*time.Second, "estimated running time per job")

	fs.IntVar(&cfg.kills, "kills", 2, "SIGKILL+restart actions per chaos round")
	fs.IntVar(&cfg.pauses, "pauses", 2, "SIGSTOP/SIGCONT actions per chaos round")
	fs.IntVar(&cfg.partitions, "partitions", 1, "two-way partition actions per chaos round")
	fs.IntVar(&cfg.oneway, "oneway", 2, "one-way (deaf-node) partition actions per chaos round")
	fs.IntVar(&cfg.slowdowns, "slowdowns", 2, "slow-peer window actions per chaos round")
	fs.DurationVar(&cfg.maxOutage, "max-outage", 4*time.Second, "fault duration cap; keep under the suspect window (probe-timeout+suspect-timeout ≈ 7s) so gray failures stay recoverable")
	fs.DurationVar(&cfg.slowDelay, "slow-delay", 400*time.Millisecond, "extra one-way latency during slow-peer windows")

	fs.Float64Var(&cfg.lossPct, "loss-pct", 0, "link degradation: probability [0,1] a proxied chunk is silently dropped during chaos")
	fs.Float64Var(&cfg.corruptPct, "corrupt-pct", 0, "link degradation: probability [0,1] a proxied chunk gets 1-3 bits flipped")
	fs.Float64Var(&cfg.dupPct, "dup-pct", 0, "link degradation: probability [0,1] a proxied chunk is written twice")
	fs.Float64Var(&cfg.reorderPct, "reorder-pct", 0, "link degradation: probability [0,1] a proxied chunk is swapped with its successor")

	fs.Float64Var(&cfg.walShortPct, "wal-short-write-pct", 0, "disk faults (unprotected nodes): probability [0,1] a journal append tears; the daemon exits 3 and the supervisor respawns it to recover")
	fs.Float64Var(&cfg.walSyncPct, "wal-sync-err-pct", 0, "disk faults (unprotected nodes): probability [0,1] a journal fsync fails (exit 3)")
	fs.Float64Var(&cfg.walFlipPct, "wal-flip-pct", 0, "disk faults (unprotected nodes): probability [0,1] a boot-time store read has one bit flipped; corrupt stores exit 4 and are wiped before the respawn")

	fs.Float64Var(&cfg.maxGoroSlope, "max-goroutine-slope", 0.35, "leak bound: goroutines/sec a per-incarnation least-squares trend may climb")
	fs.Float64Var(&cfg.maxRSSSlopeKB, "max-rss-slope-kb", 256, "leak bound: RSS KiB/sec a per-incarnation trend may climb")
	fs.Float64Var(&cfg.maxFDSlope, "max-fd-slope", 0.25, "leak bound: file descriptors/sec a per-incarnation trend may climb")
	fs.DurationVar(&cfg.leakMinSpan, "leak-min-span", 0, "minimum incarnation lifetime before its trend gets a leak verdict (0 = min(60s, a third of the run))")
	fs.DurationVar(&cfg.leakWarmup, "leak-warmup", 15*time.Second, "leading window of each incarnation discarded from leak-trend fits (process ramp is not a leak)")

	fs.DurationVar(&cfg.converge, "converge-deadline", 20*time.Second, "membership must report every peer alive within this long after the final heal")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.bin == "" {
		fmt.Fprintln(os.Stderr, "ariasoak: -bin is required (directory with prebuilt ariad, ariagate, ariaload)")
		return 2
	}
	for _, tool := range []string{"ariad", "ariagate", "ariaload"} {
		if _, err := os.Stat(filepath.Join(cfg.bin, tool)); err != nil {
			fmt.Fprintf(os.Stderr, "ariasoak: %s not found in -bin %s\n", tool, cfg.bin)
			return 2
		}
	}
	if cfg.topo.n < 4 || cfg.topo.n > 99 {
		fmt.Fprintln(os.Stderr, "ariasoak: -nodes must be in [4, 99] (port plan allocates 100 ports per plane)")
		return 2
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"-loss-pct", cfg.lossPct}, {"-corrupt-pct", cfg.corruptPct},
		{"-dup-pct", cfg.dupPct}, {"-reorder-pct", cfg.reorderPct},
		{"-wal-short-write-pct", cfg.walShortPct}, {"-wal-sync-err-pct", cfg.walSyncPct},
		{"-wal-flip-pct", cfg.walFlipPct},
	} {
		if p.v < 0 || p.v > 1 {
			fmt.Fprintf(os.Stderr, "ariasoak: %s must be a probability in [0,1]\n", p.name)
			return 2
		}
	}
	if cfg.duration > 0 && cfg.chaosDur <= 0 {
		fmt.Fprintln(os.Stderr, "ariasoak: -duration needs a positive -chaos round length")
		return 2
	}
	if cfg.work == "" {
		dir, err := os.MkdirTemp("", "ariasoak-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ariasoak:", err)
			return 1
		}
		cfg.work = dir
	} else if err := os.MkdirAll(cfg.work, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "ariasoak:", err)
		return 1
	}
	if cfg.out == "" {
		cfg.out = filepath.Join(cfg.work, "soak.json")
	}

	pass, err := soakRun(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ariasoak:", err)
		return 1
	}
	if !pass {
		fmt.Fprintf(os.Stderr, "ariasoak: FAIL (seed %d); report at %s, logs under %s\n", cfg.seed, cfg.out, cfg.work)
		return 1
	}
	fmt.Printf("ariasoak: PASS (seed %d); report at %s\n", cfg.seed, cfg.out)
	if !cfg.keepWork {
		_ = os.RemoveAll(cfg.work)
	}
	return 0
}

// chaosRounds sizes the endurance loop: how many -chaos sized rounds fit in
// the -duration budget alongside warmup and drain (always at least one).
func chaosRounds(cfg soakConfig) int {
	if cfg.duration <= 0 {
		return 1
	}
	avail := cfg.duration - cfg.warmup - cfg.drain
	rounds := int(avail / cfg.chaosDur)
	if rounds < 1 {
		return 1
	}
	return rounds
}

// soakRun executes one full soak and reports whether every invariant held.
func soakRun(cfg soakConfig) (bool, error) {
	rounds := chaosRounds(cfg)
	total := cfg.warmup + time.Duration(rounds)*cfg.chaosDur + cfg.drain

	// One seeded schedule per round over disjoint windows; round 0 keeps
	// the bare -seed so single-round runs replay exactly as before.
	var schedule []soak.Action
	for r := 0; r < rounds; r++ {
		seed := cfg.seed
		if r > 0 {
			seed += int64(r) * 7919
		}
		sch, err := soak.BuildSchedule(soak.ScheduleConfig{
			Nodes:            cfg.topo.n,
			Protected:        []int{0},
			Start:            cfg.warmup + time.Duration(r)*cfg.chaosDur,
			End:              cfg.warmup + time.Duration(r+1)*cfg.chaosDur,
			Kills:            cfg.kills,
			Pauses:           cfg.pauses,
			Partitions:       cfg.partitions,
			OneWayPartitions: cfg.oneway,
			Slowdowns:        cfg.slowdowns,
			MaxOutage:        cfg.maxOutage,
			SlowExtraDelay:   cfg.slowDelay,
		}, seed)
		if err != nil {
			return false, err
		}
		schedule = append(schedule, sch...)
	}

	fabric, err := buildFabric(cfg.topo)
	if err != nil {
		return false, err
	}
	defer fabric.Close()

	g := newGrid(cfg.topo, fabric, cfg.bin, cfg.work, cfg.seed)
	g.walFaults = walFaultProfile{shortPct: cfg.walShortPct, syncPct: cfg.walSyncPct, flipPct: cfg.walFlipPct}
	g.protected = map[int]bool{0: true}
	defer g.stopAll(5 * time.Second)

	auditor := soak.NewAuditor()
	samples := newSampler(cfg, g)
	rules := buildLeakRules(cfg, total)

	// Supervisor: a daemon that dies outside a scheduled kill either died
	// loudly on an injected disk fault (the two blessed exit codes) or it
	// crashed for real (a violation). Either way it comes back — exit 3
	// recovers from its journal, exit 4 is wiped and respawns amnesiac, and
	// the NOTIFY watchdogs re-place whatever the wipe forgot.
	var walFaultCrashes, walCorruptWipes atomic.Int64
	g.onUnexpectedExit = func(node, code int) {
		crashes := g.noteCrash(node)
		switch code {
		case ariadExitWALFault:
			walFaultCrashes.Add(1)
			logf(cfg, "        daemon %d died loudly on an injected WAL fault (exit %d); respawning to recover", node, code)
		case ariadExitWALCorrupt:
			walCorruptWipes.Add(1)
			logf(cfg, "        daemon %d refused its corrupt store (exit %d); wiping for an amnesiac respawn", node, code)
			if err := g.wipeData(node); err != nil {
				auditor.AddViolation(soak.Violation{
					Invariant: "supervisor-wipe",
					Node:      node,
					Detail:    fmt.Sprintf("wiping corrupt store: %v", err),
				})
				return
			}
		default:
			auditor.AddViolation(soak.Violation{
				Invariant: "unexpected-exit",
				Node:      node,
				Detail:    fmt.Sprintf("daemon exited with code %d outside any scheduled kill", code),
			})
		}
		if crashes > maxCrashRespawns {
			auditor.AddViolation(soak.Violation{
				Invariant: "crash-loop",
				Node:      node,
				Detail:    fmt.Sprintf("%d unexpected exits; supervisor stopped respawning", crashes),
			})
			return
		}
		if err := g.restart(node); err != nil {
			// Losing a respawn race (scheduled kill, shutdown) is noise.
			fmt.Fprintf(os.Stderr, "ariasoak: supervisor respawn %d: %v\n", node, err)
			return
		}
		samples.rebaseline(node)
	}

	for i := 0; i < cfg.topo.n; i++ {
		if err := g.spawn(i); err != nil {
			return false, err
		}
	}
	for i := 0; i < cfg.topo.n; i++ {
		if err := waitPort(cfg.topo.ctlAddr(i), 10*time.Second); err != nil {
			return false, fmt.Errorf("daemon %d control plane never came up: %w", i, err)
		}
	}
	logf(cfg, "grid up: %d daemons through %d proxy links", cfg.topo.n, cfg.topo.n*(cfg.topo.n-1))

	// Gateway fronts the protected ingress node's control plane; admission
	// control armed so overload sheds at the edge instead of inside the grid.
	gate := exec.Command(filepath.Join(cfg.bin, "ariagate"),
		"-listen", cfg.topo.gateAddr(),
		"-daemon", cfg.topo.ctlAddr(0),
		"-rate", "200", "-burst", "200",
		"-admit-queue", "64", "-poll", "250ms")
	gateLog, err := os.Create(filepath.Join(cfg.work, "ariagate.log"))
	if err != nil {
		return false, err
	}
	defer func() { _ = gateLog.Close() }()
	gate.Stdout, gate.Stderr = gateLog, gateLog
	if err := gate.Start(); err != nil {
		return false, fmt.Errorf("spawn ariagate: %w", err)
	}
	gateExited := make(chan struct{})
	go func() { _ = gate.Wait(); close(gateExited) }()
	defer func() {
		_ = gate.Process.Kill() // no-op if already exited
		<-gateExited
	}()
	if err := waitPort(cfg.topo.gateAddr(), 10*time.Second); err != nil {
		return false, fmt.Errorf("gateway never came up: %w", err)
	}

	// Load generator: closed loop against the gateway, tailing every
	// daemon's event log for completions. Its campaign deadline covers the
	// whole soak so in-flight jobs ride out fault windows.
	eventLogs := make([]string, cfg.topo.n)
	for i := range eventLogs {
		eventLogs[i] = g.eventLog(i)
	}
	load := exec.Command(filepath.Join(cfg.bin, "ariaload"),
		"-gate", "http://"+cfg.topo.gateAddr(),
		"-events", strings.Join(eventLogs, ","),
		"-jobs", fmt.Sprint(cfg.jobs),
		"-concurrency", fmt.Sprint(cfg.concurrency),
		"-batch", "4", "-workers", "4",
		"-ert", cfg.ert.String(),
		"-tenant", "soak",
		"-timeout", total.String(),
		"-out", filepath.Join(cfg.work, "load.json"))
	loadLog, err := os.Create(filepath.Join(cfg.work, "ariaload.log"))
	if err != nil {
		return false, err
	}
	defer func() { _ = loadLog.Close() }()
	load.Stdout, load.Stderr = loadLog, loadLog
	if err := load.Start(); err != nil {
		return false, fmt.Errorf("spawn ariaload: %w", err)
	}
	loadDone := make(chan error, 1)
	go func() { loadDone <- load.Wait() }()

	t0 := time.Now()

	roundsCompleted := func() int {
		elapsed := time.Since(t0) - cfg.warmup
		if elapsed < 0 {
			return 0
		}
		done := int(elapsed / cfg.chaosDur)
		if done > rounds {
			done = rounds
		}
		return done
	}

	// mkReport snapshots the run's full state; safe from any goroutine (the
	// auditor, sampler, fabric counters, and crash tallies are all locked or
	// atomic), so interim and interrupt flushes reuse it.
	mkReport := func() soak.Report {
		rep := soak.Report{
			Tool:     "ariasoak",
			Seed:     cfg.seed,
			Nodes:    cfg.topo.n,
			Warmup:   cfg.warmup.String(),
			Chaos:    cfg.chaosDur.String(),
			Drain:    cfg.drain.String(),
			Schedule: schedule,
		}
		if cfg.duration > 0 {
			rep.Duration = total.String()
			rep.Rounds = roundsCompleted()
		}
		rep.Submitted, rep.Completed, rep.Failed = auditor.Counts()
		rep.Orphans = len(auditor.Orphans())
		if s := fabric.DegradeStats(); s.Total() > 0 {
			rep.Degrade = map[string]uint64{
				"dropped":    s.Dropped,
				"corrupted":  s.Corrupted,
				"duplicated": s.Duplicated,
				"reordered":  s.Reordered,
			}
		}
		rep.WireRejects, rep.WALFaults = samples.counterTotals()
		rep.WALFaultCrashes = int(walFaultCrashes.Load())
		rep.WALCorruptWipes = int(walCorruptWipes.Load())
		rep.Runtime = samples.rows(rules)
		rep.Violations = auditor.Violations()
		if rep.Violations == nil {
			rep.Violations = []soak.Violation{}
		}
		rep.Pass = len(rep.Violations) == 0
		return rep
	}

	// SIGINT/SIGTERM: flush a partial report immediately, then unwind the
	// run through stopRun so every wait below is interruptible.
	stopRun := make(chan struct{})
	var stopOnce sync.Once
	requestStop := func() { stopOnce.Do(func() { close(stopRun) }) }
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	flusher := newInterruptFlusher(cfg.out, mkReport)
	flusher.watch(sigCh, requestStop)
	defer flusher.stop()

	// Continuous audit loop: tail every event log into the ledger and
	// sample daemon runtime health.
	tailers := make([]*soak.Tailer, cfg.topo.n)
	for i := range tailers {
		tailers[i] = soak.NewTailer(eventLogs[i])
	}
	defer func() {
		for _, t := range tailers {
			_ = t.Close()
		}
	}()
	pollAll := func() {
		for _, t := range tailers {
			if _, err := t.Poll(auditor.Observe); err != nil && cfg.verbose {
				fmt.Fprintf(os.Stderr, "ariasoak: tail: %v\n", err)
			}
		}
	}
	auditStop := make(chan struct{})
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-auditStop:
				return
			case <-tick.C:
				pollAll()
				samples.observe()
			}
		}
	}()
	if cfg.reportEvery > 0 {
		auditWG.Add(1)
		go func() {
			defer auditWG.Done()
			tick := time.NewTicker(cfg.reportEvery)
			defer tick.Stop()
			for {
				select {
				case <-auditStop:
					return
				case <-tick.C:
					rep := mkReport()
					rep.Interim = true
					if err := soak.WriteReport(cfg.out, rep); err != nil {
						fmt.Fprintf(os.Stderr, "ariasoak: interim report: %v\n", err)
						continue
					}
					logf(cfg, "%7s  interim report: %d/%d completed, %d violation(s)",
						time.Since(t0).Round(time.Millisecond), rep.Completed, rep.Submitted, len(rep.Violations))
				}
			}
		}()
	}
	stopAudit := func() {
		select {
		case <-auditStop:
		default:
			close(auditStop)
		}
		auditWG.Wait()
	}
	defer stopAudit()

	// Probabilistic link degradation arms when chaos starts and stays armed
	// across every round; the final heal disarms it.
	deg := chaos.Degrade{Loss: cfg.lossPct, Corrupt: cfg.corruptPct, Dup: cfg.dupPct, Reorder: cfg.reorderPct, Seed: cfg.seed}
	degArmed := deg.Loss > 0 || deg.Corrupt > 0 || deg.Dup > 0 || deg.Reorder > 0
	interrupted := !sleepUntil(t0.Add(cfg.warmup), stopRun)
	if !interrupted && degArmed {
		fabric.DegradeAll(deg)
		logf(cfg, "%7s  link degradation armed: loss=%.3g corrupt=%.3g dup=%.3g reorder=%.3g",
			time.Since(t0).Round(time.Millisecond), deg.Loss, deg.Corrupt, deg.Dup, deg.Reorder)
	}

	// Fault timeline: fire each scheduled action at its offset from t0;
	// every action arms its own heal timer. Kill/pause failures are warned
	// and skipped, not fatal — the schedule legitimately races the
	// supervisor respawning fault-crashed daemons.
	var healWG sync.WaitGroup
	for _, act := range schedule {
		if interrupted {
			break
		}
		if !sleepUntil(t0.Add(act.At), stopRun) {
			interrupted = true
			break
		}
		a := act
		n := a.Nodes[0]
		logf(cfg, "%7s  %s node %d for %s", time.Since(t0).Round(time.Millisecond), a.Kind, n, a.OutageStr)
		heal := func(f func()) {
			healWG.Add(1)
			time.AfterFunc(a.Outage, func() { defer healWG.Done(); f() })
		}
		switch a.Kind {
		case soak.ActKill:
			if err := g.kill(n); err != nil {
				fmt.Fprintf(os.Stderr, "ariasoak: skip kill %d: %v\n", n, err)
				continue
			}
			heal(func() {
				if err := g.restart(n); err != nil {
					fmt.Fprintf(os.Stderr, "ariasoak: restart %d: %v\n", n, err)
					return
				}
				samples.rebaseline(n)
			})
		case soak.ActPause:
			if err := g.pause(n); err != nil {
				fmt.Fprintf(os.Stderr, "ariasoak: skip pause %d: %v\n", n, err)
				continue
			}
			heal(func() {
				if err := g.resume(n); err != nil {
					fmt.Fprintf(os.Stderr, "ariasoak: resume %d: %v\n", n, err)
				}
			})
		case soak.ActPartition:
			fabric.Isolate([]int{n}, chaos.ModeCut, false)
			heal(func() { fabric.Isolate([]int{n}, chaos.ModeOpen, false) })
		case soak.ActPartitionOneWay:
			// Blackhole, not cut: the deaf node's inbound traffic is
			// silently swallowed while its own sends still flow — the
			// gray half of a partition.
			fabric.Isolate([]int{n}, chaos.ModeBlackhole, true)
			heal(func() { fabric.Isolate([]int{n}, chaos.ModeOpen, false) })
		case soak.ActSlowPeer:
			fabric.SlowPeer([]int{n}, a.ExtraDelay)
			heal(func() { fabric.SlowPeer([]int{n}, 0) })
		}
	}
	healWG.Wait()
	if !interrupted && !sleepUntil(t0.Add(cfg.warmup+time.Duration(rounds)*cfg.chaosDur), stopRun) {
		interrupted = true
	}
	fabric.Heal() // also disarms degradation; its counters survive for the report
	g.disarmWALFaults()
	healedAt := time.Now()

	var convergedIn string
	if !interrupted {
		logf(cfg, "%7s  chaos over, fabric healed", time.Since(t0).Round(time.Millisecond))

		// Convergence audit: every daemon must report every tracked peer
		// alive before the deadline.
		if converged, took := awaitConvergence(cfg, g, healedAt, stopRun); converged {
			convergedIn = took.Round(100 * time.Millisecond).String()
			logf(cfg, "%7s  membership converged in %s", time.Since(t0).Round(time.Millisecond), convergedIn)
		} else if !stopped(stopRun) {
			auditor.AddViolation(soak.Violation{
				Invariant: "convergence-deadline",
				Detail:    fmt.Sprintf("suspect or dead verdicts still held %v after the final heal", cfg.converge),
			})
		}

		// Drain: wait for the load campaign to finish, then hold the healed
		// grid until the drain window fully elapses — the poison audit's
		// premise is that the directory TTL has expired, so legitimately
		// stale entries are gone and whatever remains is true poisoning.
		select {
		case <-loadDone:
		case <-stopRun:
		case <-time.After(time.Until(t0.Add(total))):
			_ = load.Process.Kill()
			<-loadDone
		}
		if !sleepUntil(t0.Add(total), stopRun) {
			interrupted = true
		}
	}
	if stopped(stopRun) {
		interrupted = true
	}

	if interrupted {
		stopAudit()
		select {
		case <-loadDone:
		default:
			_ = load.Process.Kill()
			<-loadDone
		}
		pollAll()
		rep := mkReport()
		rep.Interrupted = true
		rep.Pass = false
		rep.ConvergedIn = convergedIn
		if err := soak.WriteReport(cfg.out, rep); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "ariasoak: interrupted; partial report at %s\n", cfg.out)
		return false, nil
	}

	stopAudit()
	pollAll() // final sweep so late completions land in the ledger

	// Final audits: orphans, leak trends, directory poisoning.
	auditor.FlagOrphans()
	samples.finalize(auditor, rules)
	auditDirectoryPoison(cfg, g, auditor)

	report := mkReport()
	report.ConvergedIn = convergedIn
	if err := soak.WriteReport(cfg.out, report); err != nil {
		return false, err
	}
	fmt.Printf("ariasoak: %d submitted, %d completed, %d failed, %d orphans, %d violation(s)\n",
		report.Submitted, report.Completed, report.Failed, report.Orphans, len(report.Violations))
	if report.WALFaultCrashes > 0 || report.WALCorruptWipes > 0 {
		fmt.Printf("ariasoak: %d WAL fault crash(es) recovered, %d corrupt store(s) wiped\n",
			report.WALFaultCrashes, report.WALCorruptWipes)
	}
	for _, v := range report.Violations {
		fmt.Fprintf(os.Stderr, "ariasoak: VIOLATION %s: uuid=%q node=%d %s\n", v.Invariant, v.UUID, v.Node, v.Detail)
	}
	return report.Pass, nil
}

// sleepUntil blocks until the deadline or until stop closes; it reports
// false when stopped early.
func sleepUntil(deadline time.Time, stop <-chan struct{}) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return !stopped(stop)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// stopped reports whether the stop channel has closed, without blocking.
func stopped(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// awaitConvergence polls every live daemon's membership table until no
// non-alive verdict remains, the deadline passes, or the run is stopped.
// A daemon still dying on an armed WAL fault right around the heal gets a
// supervised clean respawn, which restarts everyone's suspicion clock — so
// the verdict deadline is measured from the LATEST daemon start, not just
// the heal, bounded by one extra converge window.
func awaitConvergence(cfg soakConfig, g *grid, healedAt time.Time, stop <-chan struct{}) (bool, time.Duration) {
	hardStop := healedAt.Add(2 * cfg.converge)
	for {
		deadline := healedAt
		for _, s := range g.lastStarts() {
			if s.After(deadline) {
				deadline = s
			}
		}
		deadline = deadline.Add(cfg.converge)
		if deadline.After(hardStop) {
			deadline = hardStop
		}
		if !time.Now().Before(deadline) {
			break
		}
		if stopped(stop) {
			return false, 0
		}
		bad := 0
		for i := 0; i < cfg.topo.n; i++ {
			resp, err := ctl.Call(cfg.topo.ctlAddr(i), ctl.Request{Op: ctl.OpMembers}, 2*time.Second)
			if err != nil {
				bad++
				continue
			}
			bad += unsettled(resp.Members)
		}
		if bad == 0 {
			return true, time.Since(healedAt)
		}
		if !sleepUntil(time.Now().Add(500*time.Millisecond), stop) {
			return false, 0
		}
	}
	return false, 0
}

// auditDirectoryPoison asks every daemon for its directory cache and flags
// entries that survived for an incarnation older than the node's current
// one. Runs after the drain, which outlasts the directory TTL — but a
// supervisor respawn late in the run resets that clock for its node, so
// entries about a recently restarted node are skipped rather than flagged:
// the TTL has not yet had time to expire them.
func auditDirectoryPoison(cfg soakConfig, g *grid, auditor *soak.Auditor) {
	incarnations := g.incarnations()
	starts := g.lastStarts()
	now := time.Now()
	for i := range g.probeTargets() {
		resp, err := ctl.Call(cfg.topo.ctlAddr(i), ctl.Request{Op: ctl.OpDirectory}, 2*time.Second)
		if err != nil {
			continue
		}
		for _, e := range poisonEntries(resp.Directory, incarnations) {
			idx := cfg.topo.nodeIndex(int(e.NodeID))
			if idx < 0 || now.Sub(starts[idx]) < dirTTL+2*time.Second {
				continue
			}
			auditor.AddViolation(soak.Violation{
				Invariant: "directory-poison",
				Node:      i,
				Detail: fmt.Sprintf("caches node %d at incarnation %d; current is %d (age %s)",
					e.NodeID, e.Incarnation, incarnations[idx], e.Age),
			})
		}
	}
}

// sampler feeds per-daemon gauge samples into per-incarnation trend series,
// so leak detection fits slopes over whole lifetimes instead of comparing
// two points, and aggregates the monotonic debug counters (wire rejects,
// injected WAL faults) across restarts.
type sampler struct {
	cfg soakConfig
	g   *grid
	t0  time.Time

	mu       sync.Mutex
	baseline map[int]soak.RuntimeStats
	baseRSS  map[int]int64
	latest   map[int]soak.RuntimeStats
	lastRSS  map[int]int64
	goro     map[int]*soak.TrendSeries
	rss      map[int]*soak.TrendSeries
	fds      map[int]*soak.TrendSeries

	// Counter snapshots keyed by (node<<32 | incarnation): each incarnation
	// resets its process-local counters, so the run-wide total is the sum
	// of every incarnation's last observed value.
	wire map[int64]map[string]uint64
	walf map[int64]map[string]uint64
}

func newSampler(cfg soakConfig, g *grid) *sampler {
	return &sampler{
		cfg:      cfg,
		g:        g,
		t0:       time.Now(),
		baseline: map[int]soak.RuntimeStats{},
		baseRSS:  map[int]int64{},
		latest:   map[int]soak.RuntimeStats{},
		lastRSS:  map[int]int64{},
		goro:     map[int]*soak.TrendSeries{},
		rss:      map[int]*soak.TrendSeries{},
		fds:      map[int]*soak.TrendSeries{},
		wire:     map[int64]map[string]uint64{},
		walf:     map[int64]map[string]uint64{},
	}
}

// observe samples every probeable daemon. Probe errors are expected during
// outage windows (a SIGSTOP'd daemon answers nothing) and simply skipped.
func (s *sampler) observe() {
	for i := range s.g.probeTargets() {
		snap, err := soak.ProbeDebug(s.cfg.topo.debugAddr(i), 2*time.Second)
		if err != nil {
			continue
		}
		stats := snap.Runtime
		rss, _ := soak.RSSKB(stats.PID)
		fds, _ := soak.FDCount(stats.PID)
		at := time.Since(s.t0).Seconds()
		s.mu.Lock()
		if base, ok := s.baseline[i]; !ok || base.Incarnation != stats.Incarnation {
			s.baseline[i] = stats
			s.baseRSS[i] = rss
		}
		s.latest[i] = stats
		s.lastRSS[i] = rss
		series(s.goro, i).Observe(stats.Incarnation, at, float64(stats.Goroutines))
		if rss > 0 {
			series(s.rss, i).Observe(stats.Incarnation, at, float64(rss))
		}
		if fds > 0 {
			series(s.fds, i).Observe(stats.Incarnation, at, float64(fds))
		}
		key := int64(i)<<32 | int64(stats.Incarnation)
		if len(snap.WireRejects) > 0 {
			s.wire[key] = snap.WireRejects
		}
		if len(snap.WALFaults) > 0 {
			s.walf[key] = snap.WALFaults
		}
		s.mu.Unlock()
	}
}

// series fetches (or starts) node i's trend series; callers hold s.mu.
func series(m map[int]*soak.TrendSeries, i int) *soak.TrendSeries {
	ts, ok := m[i]
	if !ok {
		ts = soak.NewTrendSeries(512)
		m[i] = ts
	}
	return ts
}

// rebaseline drops a daemon's point-in-time samples so its next observation
// becomes the fresh baseline. Trend series need no reset: a new incarnation
// opens its own segment.
func (s *sampler) rebaseline(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.baseline, node)
	delete(s.baseRSS, node)
	delete(s.latest, node)
	delete(s.lastRSS, node)
}

// counterTotals sums every incarnation's last-seen wire-reject and WAL-fault
// counters into run-wide totals. Increments between an incarnation's final
// scrape and its death are lost, so the totals are a floor — which is the
// right direction for "did we provably inject faults" evidence.
func (s *sampler) counterTotals() (wire, walf map[string]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sumCounters(s.wire), sumCounters(s.walf)
}

func sumCounters(per map[int64]map[string]uint64) map[string]uint64 {
	if len(per) == 0 {
		return nil
	}
	out := map[string]uint64{}
	for _, m := range per {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// rows renders the per-node runtime summary: point-in-time gauges for scale,
// plus each gauge's steepest qualifying per-incarnation trend.
func (s *sampler) rows(rules leakRules) []soak.NodeRuntime {
	restarts := s.g.incarnations()
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := make([]int, 0, len(s.baseline))
	for i := range s.baseline {
		nodes = append(nodes, i)
	}
	sort.Ints(nodes)
	out := make([]soak.NodeRuntime, 0, len(nodes))
	for _, i := range nodes {
		base, final := s.baseline[i], s.latest[i]
		out = append(out, soak.NodeRuntime{
			Node:               i,
			Incarnation:        final.Incarnation,
			Restarts:           restarts[i],
			GoroutinesBaseline: base.Goroutines,
			GoroutinesFinal:    final.Goroutines,
			RSSBaselineKB:      s.baseRSS[i],
			RSSFinalKB:         s.lastRSS[i],
			GoroutineTrend:     worstSegment(s.goro[i], rules.goroutines),
			RSSTrend:           worstSegment(s.rss[i], rules.rssKB),
			FDTrend:            worstSegment(s.fds[i], rules.fds),
		})
	}
	return out
}

func worstSegment(ts *soak.TrendSeries, rule soak.LeakRule) *soak.SegmentTrend {
	if ts == nil {
		return nil
	}
	seg, _, ok := ts.Worst(rule)
	if !ok {
		return nil
	}
	return &seg
}

// finalize takes one last sample pass and turns every leaking trend into a
// violation.
func (s *sampler) finalize(auditor *soak.Auditor, rules leakRules) {
	s.observe()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, gauge := range []struct {
		name   string
		series map[int]*soak.TrendSeries
		rule   soak.LeakRule
	}{
		{"goroutines", s.goro, rules.goroutines},
		{"rssKB", s.rss, rules.rssKB},
		{"fds", s.fds, rules.fds},
	} {
		for node, ts := range gauge.series {
			if seg, leaking, ok := ts.Worst(gauge.rule); ok && leaking {
				auditor.AddViolation(soak.LeakViolation(node, gauge.name, seg, gauge.rule))
			}
		}
	}
}

// waitPort dials addr until it accepts or the deadline passes.
func waitPort(addr string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			_ = conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func logf(cfg soakConfig, format string, args ...any) {
	if cfg.verbose {
		fmt.Printf(format+"\n", args...)
	}
}
