// Command ariasoak orchestrates a chaos soak against a real ARiA grid: it
// spawns N ariad daemons wired through a per-directed-link fault proxy
// fabric (internal/chaos), fronts the ingress node with ariagate, drives
// closed-loop traffic with ariaload, and executes a seeded fault schedule —
// SIGKILL/restart, SIGSTOP/SIGCONT, two-way and one-way partitions,
// slow-peer windows — while continuously auditing live invariants:
//
//   - exactly-one execution and no orphaned jobs (tailed event logs),
//   - bounded goroutine and RSS growth per daemon incarnation (expvar +
//     /proc), re-baselined across restarts,
//   - no directory poisoning: after the drain outlasts the directory TTL,
//     no daemon may still cache a digest from a dead incarnation,
//   - membership re-convergence within a deadline after the final heal.
//
// The run ends with a machine-readable soak report (internal/soak.Report)
// and a non-zero exit if any invariant was violated. The same -seed always
// replays the same schedule, so a failing soak reproduces exactly.
//
// Usage:
//
//	go build -race -o /tmp/bin ./cmd/...
//	ariasoak -bin /tmp/bin -nodes 12 -seed 1 -out results/soak-1.json
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/chaos"
	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/leakcheck"
	"github.com/smartgrid/aria/internal/soak"
)

func main() {
	code := run(os.Args[1:])
	if leaked := leakcheck.Check(); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "ariasoak: %d goroutine(s) leaked in the harness itself:\n", len(leaked))
		for _, g := range leaked {
			fmt.Fprintln(os.Stderr, g)
		}
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

type soakConfig struct {
	topo     topology
	bin      string
	work     string
	out      string
	seed     int64
	verbose  bool
	keepWork bool

	warmup, chaosDur, drain time.Duration

	jobs        int
	concurrency int
	ert         time.Duration

	kills, pauses, partitions, oneway, slowdowns int
	maxOutage, slowDelay                         time.Duration

	goroutineSlack int
	rssSlackKB     int64
	converge       time.Duration
}

func run(args []string) int {
	fs := flag.NewFlagSet("ariasoak", flag.ContinueOnError)
	var cfg soakConfig
	fs.IntVar(&cfg.topo.n, "nodes", 12, "grid size (daemon count)")
	fs.IntVar(&cfg.topo.portBase, "port-base", 27400, "first port; the run claims [base, base+300]")
	fs.StringVar(&cfg.bin, "bin", "", "directory holding prebuilt ariad, ariagate, and ariaload binaries (required)")
	fs.StringVar(&cfg.work, "work", "", "scratch directory for logs and journals (default: a temp dir)")
	fs.StringVar(&cfg.out, "out", "", "write the JSON soak report here (default: <work>/soak.json)")
	fs.Int64Var(&cfg.seed, "seed", 1, "schedule seed; the same seed replays the same faults")
	fs.BoolVar(&cfg.verbose, "v", false, "log each fault injection and audit milestone")
	fs.BoolVar(&cfg.keepWork, "keep-work", false, "keep the scratch directory after a passing run")

	fs.DurationVar(&cfg.warmup, "warmup", 12*time.Second, "fault-free phase before chaos (baselines sampled at its end)")
	fs.DurationVar(&cfg.chaosDur, "chaos", 45*time.Second, "fault-injection phase duration")
	fs.DurationVar(&cfg.drain, "drain", 25*time.Second, "fault-free phase after the final heal; must exceed the directory TTL (20s) for the poison audit to bite")

	fs.IntVar(&cfg.jobs, "jobs", 120, "jobs ariaload submits over the run")
	fs.IntVar(&cfg.concurrency, "concurrency", 12, "ariaload closed-loop bound")
	fs.DurationVar(&cfg.ert, "ert", 1*time.Second, "estimated running time per job")

	fs.IntVar(&cfg.kills, "kills", 2, "SIGKILL+restart actions")
	fs.IntVar(&cfg.pauses, "pauses", 2, "SIGSTOP/SIGCONT actions")
	fs.IntVar(&cfg.partitions, "partitions", 1, "two-way partition actions")
	fs.IntVar(&cfg.oneway, "oneway", 2, "one-way (deaf-node) partition actions")
	fs.IntVar(&cfg.slowdowns, "slowdowns", 2, "slow-peer window actions")
	fs.DurationVar(&cfg.maxOutage, "max-outage", 4*time.Second, "fault duration cap; keep under the suspect window (probe-timeout+suspect-timeout ≈ 7s) so gray failures stay recoverable")
	fs.DurationVar(&cfg.slowDelay, "slow-delay", 400*time.Millisecond, "extra one-way latency during slow-peer windows")

	fs.IntVar(&cfg.goroutineSlack, "goroutine-slack", 200, "allowed goroutine growth per daemon between baseline and final sample")
	fs.Int64Var(&cfg.rssSlackKB, "rss-slack-kb", 262144, "allowed RSS growth (KiB) per daemon between baseline and final sample")
	fs.DurationVar(&cfg.converge, "converge-deadline", 20*time.Second, "membership must report every peer alive within this long after the final heal")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.bin == "" {
		fmt.Fprintln(os.Stderr, "ariasoak: -bin is required (directory with prebuilt ariad, ariagate, ariaload)")
		return 2
	}
	for _, tool := range []string{"ariad", "ariagate", "ariaload"} {
		if _, err := os.Stat(filepath.Join(cfg.bin, tool)); err != nil {
			fmt.Fprintf(os.Stderr, "ariasoak: %s not found in -bin %s\n", tool, cfg.bin)
			return 2
		}
	}
	if cfg.topo.n < 4 || cfg.topo.n > 99 {
		fmt.Fprintln(os.Stderr, "ariasoak: -nodes must be in [4, 99] (port plan allocates 100 ports per plane)")
		return 2
	}
	if cfg.work == "" {
		dir, err := os.MkdirTemp("", "ariasoak-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ariasoak:", err)
			return 1
		}
		cfg.work = dir
	} else if err := os.MkdirAll(cfg.work, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "ariasoak:", err)
		return 1
	}
	if cfg.out == "" {
		cfg.out = filepath.Join(cfg.work, "soak.json")
	}

	pass, err := soakRun(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ariasoak:", err)
		return 1
	}
	if !pass {
		fmt.Fprintf(os.Stderr, "ariasoak: FAIL (seed %d); report at %s, logs under %s\n", cfg.seed, cfg.out, cfg.work)
		return 1
	}
	fmt.Printf("ariasoak: PASS (seed %d); report at %s\n", cfg.seed, cfg.out)
	if !cfg.keepWork {
		_ = os.RemoveAll(cfg.work)
	}
	return 0
}

// soakRun executes one full soak and reports whether every invariant held.
func soakRun(cfg soakConfig) (bool, error) {
	schedule, err := soak.BuildSchedule(soak.ScheduleConfig{
		Nodes:            cfg.topo.n,
		Protected:        []int{0},
		Start:            cfg.warmup,
		End:              cfg.warmup + cfg.chaosDur,
		Kills:            cfg.kills,
		Pauses:           cfg.pauses,
		Partitions:       cfg.partitions,
		OneWayPartitions: cfg.oneway,
		Slowdowns:        cfg.slowdowns,
		MaxOutage:        cfg.maxOutage,
		SlowExtraDelay:   cfg.slowDelay,
	}, cfg.seed)
	if err != nil {
		return false, err
	}

	fabric, err := buildFabric(cfg.topo)
	if err != nil {
		return false, err
	}
	defer fabric.Close()

	g := newGrid(cfg.topo, fabric, cfg.bin, cfg.work, cfg.seed)
	defer g.stopAll(5 * time.Second)
	for i := 0; i < cfg.topo.n; i++ {
		if err := g.spawn(i); err != nil {
			return false, err
		}
	}
	for i := 0; i < cfg.topo.n; i++ {
		if err := waitPort(cfg.topo.ctlAddr(i), 10*time.Second); err != nil {
			return false, fmt.Errorf("daemon %d control plane never came up: %w", i, err)
		}
	}
	logf(cfg, "grid up: %d daemons through %d proxy links", cfg.topo.n, cfg.topo.n*(cfg.topo.n-1))

	// Gateway fronts the protected ingress node's control plane; admission
	// control armed so overload sheds at the edge instead of inside the grid.
	gate := exec.Command(filepath.Join(cfg.bin, "ariagate"),
		"-listen", cfg.topo.gateAddr(),
		"-daemon", cfg.topo.ctlAddr(0),
		"-rate", "200", "-burst", "200",
		"-admit-queue", "64", "-poll", "250ms")
	gateLog, err := os.Create(filepath.Join(cfg.work, "ariagate.log"))
	if err != nil {
		return false, err
	}
	defer func() { _ = gateLog.Close() }()
	gate.Stdout, gate.Stderr = gateLog, gateLog
	if err := gate.Start(); err != nil {
		return false, fmt.Errorf("spawn ariagate: %w", err)
	}
	gateExited := make(chan struct{})
	go func() { _ = gate.Wait(); close(gateExited) }()
	defer func() {
		_ = gate.Process.Kill() // no-op if already exited
		<-gateExited
	}()
	if err := waitPort(cfg.topo.gateAddr(), 10*time.Second); err != nil {
		return false, fmt.Errorf("gateway never came up: %w", err)
	}

	// Load generator: closed loop against the gateway, tailing every
	// daemon's event log for completions. Its campaign deadline covers the
	// whole soak so in-flight jobs ride out fault windows.
	eventLogs := make([]string, cfg.topo.n)
	for i := range eventLogs {
		eventLogs[i] = g.eventLog(i)
	}
	total := cfg.warmup + cfg.chaosDur + cfg.drain
	load := exec.Command(filepath.Join(cfg.bin, "ariaload"),
		"-gate", "http://"+cfg.topo.gateAddr(),
		"-events", strings.Join(eventLogs, ","),
		"-jobs", fmt.Sprint(cfg.jobs),
		"-concurrency", fmt.Sprint(cfg.concurrency),
		"-batch", "4", "-workers", "4",
		"-ert", cfg.ert.String(),
		"-tenant", "soak",
		"-timeout", total.String(),
		"-out", filepath.Join(cfg.work, "load.json"))
	loadLog, err := os.Create(filepath.Join(cfg.work, "ariaload.log"))
	if err != nil {
		return false, err
	}
	defer func() { _ = loadLog.Close() }()
	load.Stdout, load.Stderr = loadLog, loadLog
	if err := load.Start(); err != nil {
		return false, fmt.Errorf("spawn ariaload: %w", err)
	}
	loadDone := make(chan error, 1)
	go func() { loadDone <- load.Wait() }()

	t0 := time.Now()
	auditor := soak.NewAuditor()
	samples := newSampler(cfg, g)

	// Continuous audit loop: tail every event log into the ledger and
	// sample daemon runtime health.
	tailers := make([]*soak.Tailer, cfg.topo.n)
	for i := range tailers {
		tailers[i] = soak.NewTailer(eventLogs[i])
	}
	defer func() {
		for _, t := range tailers {
			_ = t.Close()
		}
	}()
	pollAll := func() {
		for _, t := range tailers {
			if _, err := t.Poll(auditor.Observe); err != nil && cfg.verbose {
				fmt.Fprintf(os.Stderr, "ariasoak: tail: %v\n", err)
			}
		}
	}
	auditStop := make(chan struct{})
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-auditStop:
				return
			case <-tick.C:
				pollAll()
				samples.observe()
			}
		}
	}()
	stopAudit := func() {
		select {
		case <-auditStop:
		default:
			close(auditStop)
		}
		auditWG.Wait()
	}
	defer stopAudit()

	// Fault timeline: fire each scheduled action at its offset from t0;
	// every action arms its own heal timer.
	var healWG sync.WaitGroup
	for _, act := range schedule {
		time.Sleep(time.Until(t0.Add(act.At)))
		a := act
		n := a.Nodes[0]
		logf(cfg, "%7s  %s node %d for %s", time.Since(t0).Round(time.Millisecond), a.Kind, n, a.OutageStr)
		heal := func(f func()) {
			healWG.Add(1)
			time.AfterFunc(a.Outage, func() { defer healWG.Done(); f() })
		}
		switch a.Kind {
		case soak.ActKill:
			if err := g.kill(n); err != nil {
				return false, err
			}
			heal(func() {
				if err := g.restart(n); err != nil {
					fmt.Fprintf(os.Stderr, "ariasoak: restart %d: %v\n", n, err)
					return
				}
				samples.rebaseline(n)
			})
		case soak.ActPause:
			if err := g.pause(n); err != nil {
				return false, err
			}
			heal(func() {
				if err := g.resume(n); err != nil {
					fmt.Fprintf(os.Stderr, "ariasoak: resume %d: %v\n", n, err)
				}
			})
		case soak.ActPartition:
			fabric.Isolate([]int{n}, chaos.ModeCut, false)
			heal(func() { fabric.Isolate([]int{n}, chaos.ModeOpen, false) })
		case soak.ActPartitionOneWay:
			// Blackhole, not cut: the deaf node's inbound traffic is
			// silently swallowed while its own sends still flow — the
			// gray half of a partition.
			fabric.Isolate([]int{n}, chaos.ModeBlackhole, true)
			heal(func() { fabric.Isolate([]int{n}, chaos.ModeOpen, false) })
		case soak.ActSlowPeer:
			fabric.SlowPeer([]int{n}, a.ExtraDelay)
			heal(func() { fabric.SlowPeer([]int{n}, 0) })
		}
	}
	healWG.Wait()
	time.Sleep(time.Until(t0.Add(cfg.warmup + cfg.chaosDur)))
	fabric.Heal()
	healedAt := time.Now()
	logf(cfg, "%7s  chaos over, fabric healed", time.Since(t0).Round(time.Millisecond))

	// Convergence audit: every daemon must report every tracked peer alive
	// before the deadline.
	report := soak.Report{
		Tool:     "ariasoak",
		Seed:     cfg.seed,
		Nodes:    cfg.topo.n,
		Warmup:   cfg.warmup.String(),
		Chaos:    cfg.chaosDur.String(),
		Drain:    cfg.drain.String(),
		Schedule: schedule,
	}
	if converged, took := awaitConvergence(cfg, healedAt); converged {
		report.ConvergedIn = took.Round(100 * time.Millisecond).String()
		logf(cfg, "%7s  membership converged in %s", time.Since(t0).Round(time.Millisecond), report.ConvergedIn)
	} else {
		auditor.AddViolation(soak.Violation{
			Invariant: "convergence-deadline",
			Detail:    fmt.Sprintf("suspect or dead verdicts still held %v after the final heal", cfg.converge),
		})
	}

	// Drain: wait for the load campaign to finish, then hold the healed
	// grid until the drain window fully elapses — the poison audit's
	// premise is that the directory TTL (20s) has expired, so legitimately
	// stale entries are gone and whatever remains is true poisoning.
	select {
	case <-loadDone:
	case <-time.After(time.Until(t0.Add(total))):
		_ = load.Process.Kill()
		<-loadDone
	}
	time.Sleep(time.Until(t0.Add(total)))
	stopAudit()
	pollAll() // final sweep so late completions land in the ledger

	// Final audits: orphans, runtime growth, directory poisoning.
	auditor.FlagOrphans()
	report.Runtime = samples.finalize(auditor)
	auditDirectoryPoison(cfg, g, auditor)

	report.Submitted, report.Completed, report.Failed = auditor.Counts()
	report.Orphans = len(auditor.Orphans())
	report.Violations = auditor.Violations()
	if report.Violations == nil {
		report.Violations = []soak.Violation{}
	}
	report.Pass = len(report.Violations) == 0
	if err := soak.WriteReport(cfg.out, report); err != nil {
		return false, err
	}
	fmt.Printf("ariasoak: %d submitted, %d completed, %d failed, %d orphans, %d violation(s)\n",
		report.Submitted, report.Completed, report.Failed, report.Orphans, len(report.Violations))
	for _, v := range report.Violations {
		fmt.Fprintf(os.Stderr, "ariasoak: VIOLATION %s: uuid=%q node=%d %s\n", v.Invariant, v.UUID, v.Node, v.Detail)
	}
	return report.Pass, nil
}

// awaitConvergence polls every live daemon's membership table until no
// non-alive verdict remains or the deadline passes.
func awaitConvergence(cfg soakConfig, healedAt time.Time) (bool, time.Duration) {
	deadline := healedAt.Add(cfg.converge)
	for time.Now().Before(deadline) {
		bad := 0
		for i := 0; i < cfg.topo.n; i++ {
			resp, err := ctl.Call(cfg.topo.ctlAddr(i), ctl.Request{Op: ctl.OpMembers}, 2*time.Second)
			if err != nil {
				bad++
				continue
			}
			bad += unsettled(resp.Members)
		}
		if bad == 0 {
			return true, time.Since(healedAt)
		}
		time.Sleep(500 * time.Millisecond)
	}
	return false, 0
}

// auditDirectoryPoison asks every daemon for its directory cache and flags
// entries that survived for an incarnation older than the node's current
// one. Runs after the drain, which outlasts the 20s directory TTL.
func auditDirectoryPoison(cfg soakConfig, g *grid, auditor *soak.Auditor) {
	incarnations := g.incarnations()
	for i := range g.probeTargets() {
		resp, err := ctl.Call(cfg.topo.ctlAddr(i), ctl.Request{Op: ctl.OpDirectory}, 2*time.Second)
		if err != nil {
			continue
		}
		for _, e := range poisonEntries(resp.Directory, incarnations) {
			auditor.AddViolation(soak.Violation{
				Invariant: "directory-poison",
				Node:      i,
				Detail: fmt.Sprintf("caches node %d at incarnation %d; current is %d (age %s)",
					e.NodeID, e.Incarnation, incarnations[e.NodeID], e.Age),
			})
		}
	}
}

// sampler tracks per-daemon runtime baselines and finals, re-baselining
// whenever a daemon's incarnation changes so growth bounds never compare
// across a process boundary.
type sampler struct {
	cfg soakConfig
	g   *grid

	mu       sync.Mutex
	baseline map[int]soak.RuntimeStats
	baseRSS  map[int]int64
	latest   map[int]soak.RuntimeStats
	lastRSS  map[int]int64
}

func newSampler(cfg soakConfig, g *grid) *sampler {
	return &sampler{
		cfg:      cfg,
		g:        g,
		baseline: map[int]soak.RuntimeStats{},
		baseRSS:  map[int]int64{},
		latest:   map[int]soak.RuntimeStats{},
		lastRSS:  map[int]int64{},
	}
}

// observe samples every probeable daemon. Probe errors are expected during
// outage windows (a SIGSTOP'd daemon answers nothing) and simply skipped.
func (s *sampler) observe() {
	for i := range s.g.probeTargets() {
		stats, err := soak.ProbeRuntime(s.cfg.topo.debugAddr(i), 2*time.Second)
		if err != nil {
			continue
		}
		rss, _ := soak.RSSKB(stats.PID)
		s.mu.Lock()
		if base, ok := s.baseline[i]; !ok || base.Incarnation != stats.Incarnation {
			s.baseline[i] = stats
			s.baseRSS[i] = rss
		}
		s.latest[i] = stats
		s.lastRSS[i] = rss
		s.mu.Unlock()
	}
}

// rebaseline drops a daemon's samples so its next observation becomes the
// fresh baseline for the new incarnation.
func (s *sampler) rebaseline(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.baseline, node)
	delete(s.baseRSS, node)
	delete(s.latest, node)
	delete(s.lastRSS, node)
}

// finalize takes one last sample pass, emits growth violations, and
// renders the per-node runtime summary for the report.
func (s *sampler) finalize(auditor *soak.Auditor) []soak.NodeRuntime {
	s.observe()
	restarts := s.g.incarnations()
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := make([]int, 0, len(s.baseline))
	for i := range s.baseline {
		nodes = append(nodes, i)
	}
	sort.Ints(nodes)
	out := make([]soak.NodeRuntime, 0, len(nodes))
	for _, i := range nodes {
		base, final := s.baseline[i], s.latest[i]
		baseRSS, finalRSS := s.baseRSS[i], s.lastRSS[i]
		for _, v := range growthViolations(i, base, final, baseRSS, finalRSS, s.cfg.goroutineSlack, s.cfg.rssSlackKB) {
			auditor.AddViolation(v)
		}
		out = append(out, soak.NodeRuntime{
			Node:               i,
			Incarnation:        final.Incarnation,
			Restarts:           restarts[i],
			GoroutinesBaseline: base.Goroutines,
			GoroutinesFinal:    final.Goroutines,
			RSSBaselineKB:      baseRSS,
			RSSFinalKB:         finalRSS,
		})
	}
	return out
}

// waitPort dials addr until it accepts or the deadline passes.
func waitPort(addr string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			_ = conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func logf(cfg soakConfig, format string, args ...any) {
	if cfg.verbose {
		fmt.Printf(format+"\n", args...)
	}
}
