package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepInformJobs(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-param", "inform-jobs", "-values", "1,2", "-scale", "0.03"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep of inform-jobs") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header block (2 lines + blank) + one row per value.
	var rows int
	for _, line := range lines {
		if strings.HasPrefix(line, "1 ") || strings.HasPrefix(line, "2 ") {
			rows++
		}
	}
	if rows != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", rows, out)
	}
}

func TestSweepDurationParam(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-param", "threshold", "-values", "1m,30m", "-scale", "0.03"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "30m") {
		t.Fatalf("missing value row:\n%s", buf.String())
	}
}

func TestSweepParamCatalog(t *testing.T) {
	for _, p := range params() {
		if p.name == "" || p.desc == "" || p.apply == nil {
			t.Fatalf("incomplete param %+v", p)
		}
	}
	if _, err := paramByName("inform-interval"); err != nil {
		t.Fatal(err)
	}
	if _, err := paramByName("nope"); err == nil {
		t.Fatal("unknown param accepted")
	}
}

func TestSweepErrors(t *testing.T) {
	tests := [][]string{
		{"-param", "nope", "-values", "1"},
		{"-param", "inform-jobs"},                                         // no values
		{"-param", "inform-jobs", "-values", "x"},                         // unparsable
		{"-param", "inform-jobs", "-values", "1", "-scenario", "missing"}, // bad scenario
		{"-param", "inform-jobs", "-values", "1", "-scale", "9"},          // bad scale
		{"-param", "request-ttl", "-values", "0"},                         // invalid config
		{"-param", "inform-interval", "-values", "1m", "-definitely-not"}, // bad flag
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(&buf, args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
