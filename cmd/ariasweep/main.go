// Command ariasweep explores one protocol parameter's performance/overhead
// trade-off: it runs a scenario repeatedly across a range of values and
// prints the completion time, waiting time, and traffic for each — the
// generalization of the paper's Fig. 8 sensitivity analysis to every knob.
//
// Usage:
//
//	ariasweep -param inform-interval -values 1m,2m,5m,10m,30m -scale 0.1
//	ariasweep -param inform-jobs -values 1,2,4,8
//	ariasweep -param threshold -values 1m,3m,15m,30m,1h
//	ariasweep -param request-fanout -values 1,2,4,8
//	ariasweep -param accept-timeout -values 1s,3s,10s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/scenario"
	"github.com/smartgrid/aria/internal/stats"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ariasweep:", err)
		os.Exit(1)
	}
}

// param describes one sweepable protocol knob.
type param struct {
	name  string
	desc  string
	apply func(*scenario.Config, string) error
}

func params() []param {
	return []param{
		{
			name: "inform-interval", desc: "period between INFORM batches",
			apply: func(c *scenario.Config, v string) error {
				d, err := time.ParseDuration(v)
				if err != nil {
					return err
				}
				c.Protocol.InformInterval = d
				return nil
			},
		},
		{
			name: "inform-jobs", desc: "jobs advertised per INFORM batch",
			apply: func(c *scenario.Config, v string) error {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				c.Protocol.InformJobs = n
				return nil
			},
		},
		{
			name: "threshold", desc: "minimum rescheduling benefit",
			apply: func(c *scenario.Config, v string) error {
				d, err := time.ParseDuration(v)
				if err != nil {
					return err
				}
				c.Protocol.RescheduleThreshold = d
				return nil
			},
		},
		{
			name: "request-fanout", desc: "REQUEST flood fanout",
			apply: func(c *scenario.Config, v string) error {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				c.Protocol.RequestFanout = n
				return nil
			},
		},
		{
			name: "request-ttl", desc: "REQUEST flood TTL",
			apply: func(c *scenario.Config, v string) error {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				c.Protocol.RequestTTL = n
				return nil
			},
		},
		{
			name: "accept-timeout", desc: "initiator offer-collection window",
			apply: func(c *scenario.Config, v string) error {
				d, err := time.ParseDuration(v)
				if err != nil {
					return err
				}
				c.Protocol.AcceptTimeout = d
				return nil
			},
		},
	}
}

func paramByName(name string) (param, error) {
	for _, p := range params() {
		if p.name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range params() {
		names = append(names, p.name)
	}
	return param{}, fmt.Errorf("unknown parameter %q (want one of %s)", name, strings.Join(names, ", "))
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ariasweep", flag.ContinueOnError)
	var (
		scen      = fs.String("scenario", "iMixed", "catalog scenario to sweep")
		paramName = fs.String("param", "inform-interval", "parameter to sweep")
		valuesStr = fs.String("values", "", "comma-separated parameter values")
		runs      = fs.Int("runs", 1, "repetitions per value")
		scale     = fs.Float64("scale", 0.1, "scale factor for nodes/jobs")
		traced    = fs.Bool("trace", false, "audit protocol invariants at every swept value (adds a violations column)")
		shards    = fs.Int("shards", 0, "run on the sharded kernel with N timer shards (0 = legacy single-heap engine)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := paramByName(*paramName)
	if err != nil {
		return err
	}
	if *valuesStr == "" {
		return fmt.Errorf("missing -values")
	}
	values := strings.Split(*valuesStr, ",")

	base, err := scenario.ByName(*scen)
	if err != nil {
		return err
	}
	if *scale != 1.0 {
		if *scale <= 0 || *scale > 1 {
			return fmt.Errorf("scale %v outside (0, 1]", *scale)
		}
		base = base.Scaled(*scale)
	}
	if *shards < 0 {
		return fmt.Errorf("shards %d must be non-negative", *shards)
	}
	base.Shards = *shards

	fmt.Fprintf(w, "sweep of %s (%s) on %s, %d nodes, %d jobs, %d run(s) per value\n\n",
		p.name, p.desc, base.Name, base.Nodes, base.Submission.Count, *runs)
	fmt.Fprintf(w, "%-12s %-10s %-12s %-12s %-12s %-10s %-10s",
		p.name, "completed", "waiting", "completion", "reschedules", "KB/node", "bps/node")
	if *traced {
		fmt.Fprintf(w, " %-10s", "violations")
	}
	fmt.Fprintln(w)

	for _, raw := range values {
		value := strings.TrimSpace(raw)
		cfg := base
		if err := p.apply(&cfg, value); err != nil {
			return fmt.Errorf("value %q: %w", value, err)
		}
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("value %q: %w", value, err)
		}
		var (
			agg        *metrics.Aggregate
			violations int
		)
		if *traced {
			// The invariant checker audits each value against its own
			// protocol bounds (a swept TTL is checked as the configured
			// TTL), so a sweep cannot trip false flood-budget violations.
			var results []*metrics.Result
			for run := 0; run < *runs; run++ {
				res, rep, err := scenario.RunTraced(cfg, run)
				if err != nil {
					return err
				}
				results = append(results, res)
				violations += len(rep.Violations)
			}
			agg = metrics.NewAggregate(results)
		} else {
			var err error
			agg, _, err = scenario.RunN(cfg, *runs)
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "%-12s %-10.1f %-12s %-12s %-12.1f %-10.1f %-10.1f",
			value,
			agg.Completed.Mean,
			durFmt(agg.AvgWaitingSec),
			durFmt(agg.AvgCompletionSec),
			agg.Reschedules.Mean,
			agg.BytesPerNode.Mean/(1<<10),
			agg.BandwidthBPS.Mean,
		)
		if *traced {
			fmt.Fprintf(w, " %-10d", violations)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func durFmt(s stats.Summary) string {
	return stats.SecondsToDuration(s.Mean).Round(time.Second).String()
}
