package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: the gateway runs an HTTP
// server and a status poller, and both must be gone once the tests finish.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}

// fakeDaemon speaks just enough of the ctl protocol to stand in for ariad:
// programmable queue depth and submit behavior, with a submission counter.
type fakeDaemon struct {
	ln net.Listener

	queueLen   atomic.Int64
	overloaded atomic.Bool // submits answered with an overloaded error
	submits    atomic.Int64

	mu    sync.Mutex
	conns []net.Conn
}

func startFakeDaemon(t *testing.T) *fakeDaemon {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &fakeDaemon{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			d.mu.Lock()
			d.conns = append(d.conns, conn)
			d.mu.Unlock()
			go d.serve(conn)
		}
	}()
	t.Cleanup(d.stop)
	return d
}

func (d *fakeDaemon) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	var req ctl.Request
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	var resp ctl.Response
	switch req.Op {
	case ctl.OpStatus:
		resp = ctl.Response{
			OK: true, NodeID: 7, Alive: true,
			QueueLen: int(d.queueLen.Load()),
			Busy:     d.queueLen.Load() > 0,
		}
	case ctl.OpSubmit:
		if d.overloaded.Load() {
			resp = ctl.Response{Error: "node overloaded: too many submissions in flight"}
		} else {
			n := d.submits.Add(1)
			resp = ctl.Response{OK: true, UUID: fmt.Sprintf("%032x", n)}
		}
	default:
		resp = ctl.Response{Error: "unexpected op"}
	}
	_ = json.NewEncoder(conn).Encode(resp)
}

func (d *fakeDaemon) addr() string { return d.ln.Addr().String() }

func (d *fakeDaemon) stop() {
	_ = d.ln.Close()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.conns {
		_ = c.Close()
	}
	d.conns = nil
}

// startGateway boots run() with the given extra flags on a random port and
// waits for /healthz, returning the base URL.
func startGateway(t *testing.T, daemon string, extra ...string) string {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", 40000+rand.Intn(20000))
	args := append([]string{"-listen", addr, "-daemon", daemon, "-poll", "50ms"}, extra...)
	stop := make(chan os.Signal)
	done := make(chan error, 1)
	go func() { done <- run(args, stop) }()
	t.Cleanup(func() {
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("gateway exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("gateway did not shut down")
		}
	})
	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			return base
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postJobs(t *testing.T, base, tenant, body string) (*http.Response, batchReply) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Aria-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var reply batchReply
	_ = json.Unmarshal(data, &reply) // error replies are plain text; leave zero
	return resp, reply
}

// TestGatewayBatchSubmit drives a batch through to the fake daemon and
// checks the per-item UUIDs, the counters, and the polled daemon view.
func TestGatewayBatchSubmit(t *testing.T) {
	d := startFakeDaemon(t)
	d.queueLen.Store(3)
	base := startGateway(t, d.addr())

	resp, reply := postJobs(t, base, "", `{"jobs":[{"ert":"10s"},{"ert":"20s"},{"ert":"30s"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if reply.Accepted != 3 || len(reply.Results) != 3 {
		t.Fatalf("reply = %+v, want 3 accepted", reply)
	}
	for i, r := range reply.Results {
		if r.UUID == "" || r.Error != "" {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	if got := d.submits.Load(); got != 3 {
		t.Fatalf("daemon saw %d submits, want 3", got)
	}

	// The bare-object form submits a batch of one.
	resp, reply = postJobs(t, base, "", `{"ert":"5s"}`)
	if resp.StatusCode != http.StatusOK || reply.Accepted != 1 {
		t.Fatalf("single submit: status %d reply %+v", resp.StatusCode, reply)
	}

	// The poller picks up the daemon's queue depth for /v1/status.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sresp, err := http.Get(base + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		var status struct {
			QueueLen int               `json:"queueLen"`
			Alive    bool              `json:"alive"`
			Counters map[string]uint64 `json:"counters"`
		}
		err = json.NewDecoder(sresp.Body).Decode(&status)
		_ = sresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.QueueLen == 3 && status.Alive {
			if status.Counters["accepted"] != 4 {
				t.Fatalf("counters = %v, want accepted 4", status.Counters)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poller never surfaced daemon status: %+v", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGatewayRateLimit exhausts a tenant's token bucket and checks the 429
// carries a Retry-After hint, while another tenant's bucket stays full.
func TestGatewayRateLimit(t *testing.T) {
	d := startFakeDaemon(t)
	base := startGateway(t, d.addr(), "-rate", "0.5", "-burst", "2")

	resp, reply := postJobs(t, base, "alpha", `{"jobs":[{"ert":"1s"},{"ert":"1s"}]}`)
	if resp.StatusCode != http.StatusOK || reply.Accepted != 2 {
		t.Fatalf("burst submit: status %d reply %+v", resp.StatusCode, reply)
	}
	resp, _ = postJobs(t, base, "alpha", `{"ert":"1s"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Rate limits are per tenant: a different tenant is unaffected.
	resp, reply = postJobs(t, base, "beta", `{"ert":"1s"}`)
	if resp.StatusCode != http.StatusOK || reply.Accepted != 1 {
		t.Fatalf("other tenant: status %d reply %+v", resp.StatusCode, reply)
	}
}

// TestGatewayQueueAdmission saturates the fake daemon's reported queue and
// checks the gateway sheds at the front door without calling the daemon.
func TestGatewayQueueAdmission(t *testing.T) {
	d := startFakeDaemon(t)
	d.queueLen.Store(50)
	base := startGateway(t, d.addr(), "-admit-queue", "10")

	// Wait until the poller has seen the saturated queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJobs(t, base, "", `{"ert":"1s"}`)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission control never engaged (status %d)", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	before := d.submits.Load()
	resp, _ := postJobs(t, base, "", `{"ert":"1s"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := d.submits.Load(); got != before {
		t.Fatalf("shed batch still reached the daemon (%d -> %d submits)", before, got)
	}

	// Draining the queue re-opens the front door.
	d.queueLen.Store(0)
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, reply := postJobs(t, base, "", `{"ert":"1s"}`)
		if resp.StatusCode == http.StatusOK && reply.Accepted == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never re-opened (status %d)", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGatewayDaemonOverloaded maps the daemon's own admission rejection to
// backpressure: a whole batch bounced as overloaded comes back 429.
func TestGatewayDaemonOverloaded(t *testing.T) {
	d := startFakeDaemon(t)
	d.overloaded.Store(true)
	base := startGateway(t, d.addr())

	resp, reply := postJobs(t, base, "", `{"jobs":[{"ert":"1s"},{"ert":"2s"}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if reply.Accepted != 0 || len(reply.Results) != 2 {
		t.Fatalf("reply = %+v", reply)
	}
	for _, r := range reply.Results {
		if !strings.Contains(r.Error, "overloaded") {
			t.Fatalf("result error = %q", r.Error)
		}
	}
}

// TestGatewayRejectsBadBatches pins the 400/413 surface.
func TestGatewayRejectsBadBatches(t *testing.T) {
	d := startFakeDaemon(t)
	base := startGateway(t, d.addr(), "-max-batch", "2")

	resp, _ := postJobs(t, base, "", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJobs(t, base, "", `{"jobs":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJobs(t, base, "", `{"jobs":[{"ert":"1s"},{"ert":"1s"},{"ert":"1s"}]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: status %d, want 413", resp.StatusCode)
	}
	// A body past the byte cap is a 413 too — MaxBytesReader cuts it off
	// before the decoder ever sees the (truncated) JSON.
	huge := `{"jobs":[{"ert":"1s","arch":"` + strings.Repeat("x", maxBodyBytes) + `"}]}`
	resp, _ = postJobs(t, base, "", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}
	if got := d.submits.Load(); got != 0 {
		t.Fatalf("rejected batches reached the daemon (%d submits)", got)
	}
	got, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	_ = got.Body.Close()
	if got.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: status %d, want 405", got.StatusCode)
	}
}

// TestBucketsRefill exercises the limiter arithmetic with injected clocks.
func TestBucketsRefill(t *testing.T) {
	bs := newBuckets(2, 4) // 2 tokens/sec, burst 4
	t0 := time.Unix(1000, 0)

	if ok, _ := bs.take("a", 4, t0); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, wait := bs.take("a", 1, t0)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms for 1 token at 2/s", wait)
	}
	// 1 second refills 2 tokens.
	if ok, _ := bs.take("a", 2, t0.Add(time.Second)); !ok {
		t.Fatal("refill did not land")
	}
	// Refill clamps at the burst: 1h idle still yields only 4 tokens.
	if ok, _ := bs.take("a", 5, t0.Add(time.Hour)); ok {
		t.Fatal("bucket exceeded its burst capacity")
	}
	if ok, _ := bs.take("b", 4, t0); !ok {
		t.Fatal("fresh tenant did not start with a full bucket")
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := parseSpecs([]byte(`{"jobs":[{"ert":"1s"},{"ert":"2s","arch":"SPARC"}]}`))
	if err != nil || len(specs) != 2 || specs[1].Arch != "SPARC" {
		t.Fatalf("batch form: %v %+v", err, specs)
	}
	specs, err = parseSpecs([]byte(`{"ert":"1s"}`))
	if err != nil || len(specs) != 1 {
		t.Fatalf("single form: %v %+v", err, specs)
	}
	// Defaults fill unset resource fields.
	req := specs[0].request()
	if req.Arch != "AMD64" || req.OS != "LINUX" || req.MinMemoryGB != 1 || req.MinDiskGB != 1 {
		t.Fatalf("defaults: %+v", req)
	}
	if _, err := parseSpecs([]byte(`{}`)); err == nil {
		t.Fatal("accepted a job without ert")
	}
	if _, err := parseSpecs([]byte(`no`)); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := [][]string{
		{"-nope"},
		{"-rate", "0"},
		{"-burst", "-1"},
		{"-max-batch", "0"},
		{"-admit-queue", "-2"},
		{"-poll", "0s"},
	}
	for _, args := range tests {
		if err := run(args, nil); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
