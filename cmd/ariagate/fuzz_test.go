package main

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpecs hammers the submit-body decoder with arbitrary bytes: any
// input must either yield at least one spec with a non-empty ERT or an
// error — never a panic, and never an empty accepted batch (which would let
// a malformed body slip past validation as a no-op submit).
func FuzzParseSpecs(f *testing.F) {
	f.Add([]byte(`{"jobs":[{"ert":"10s"},{"ert":"30s","arch":"x86_64"}]}`))
	f.Add([]byte(`{"ert":"5s","minMemoryGB":4,"priority":2}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{"jobs":[{"ert":"10s"}`)) // truncated mid-batch
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"jobs":"surprise"}`))
	f.Add([]byte(`{"jobs":[{"ert":123}]}`))
	f.Add([]byte("{\"ert\":\"\x00\"}"))

	f.Fuzz(func(t *testing.T, body []byte) {
		specs, err := parseSpecs(body)
		if err != nil {
			if len(specs) != 0 {
				t.Fatalf("parseSpecs returned %d specs alongside error %v", len(specs), err)
			}
			return
		}
		if len(specs) == 0 {
			t.Fatalf("parseSpecs(%q) accepted an empty batch", body)
		}
		for i, s := range specs {
			if _, jerr := json.Marshal(s); jerr != nil {
				t.Fatalf("accepted spec %d not re-marshalable: %v", i, jerr)
			}
		}
	})
}
