// Command ariagate fronts one ariad control endpoint with an HTTP gateway:
// batched job submission, per-tenant token-bucket rate limits, and
// queue-depth admission control that converts grid saturation into fast
// 429s with Retry-After hints instead of ever-deeper backlogs.
//
// A gateway in front of a daemon:
//
//	ariagate -listen 127.0.0.1:7600 -daemon 127.0.0.1:7500 -rate 50 -burst 100 -admit-queue 32
//	curl -XPOST 127.0.0.1:7600/v1/jobs -d '{"jobs":[{"ert":"10s"},{"ert":"30s"}]}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/smartgrid/aria/internal/ctl"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "ariagate:", err)
		os.Exit(1)
	}
}

// run boots the gateway and blocks until stop delivers (tests close a
// channel; main wires OS signals).
func run(args []string, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("ariagate", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:7600", "HTTP listen address")
		daemon     = fs.String("daemon", "127.0.0.1:7500", "ariad control endpoint to front")
		rate       = fs.Float64("rate", 50, "per-tenant sustained submission rate (jobs/sec)")
		burst      = fs.Int("burst", 100, "per-tenant token-bucket capacity (jobs)")
		maxBatch   = fs.Int("max-batch", 64, "maximum jobs per batch request")
		admitQueue = fs.Int("admit-queue", 0, "reject submissions while the daemon's run queue is at least this deep (0 = off)")
		poll       = fs.Duration("poll", 500*time.Millisecond, "daemon status poll interval (drives queue-depth admission)")
		ctlTimeout = fs.Duration("ctl-timeout", 5*time.Second, "control-plane call timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *rate <= 0:
		return fmt.Errorf("-rate must be positive, got %v", *rate)
	case *burst <= 0:
		return fmt.Errorf("-burst must be positive, got %d", *burst)
	case *maxBatch <= 0:
		return fmt.Errorf("-max-batch must be positive, got %d", *maxBatch)
	case *admitQueue < 0:
		return fmt.Errorf("-admit-queue must be non-negative, got %d", *admitQueue)
	case *poll <= 0:
		return fmt.Errorf("-poll must be positive, got %v", *poll)
	}

	logger := log.New(os.Stdout, "ariagate ", log.Ltime|log.Lmicroseconds)
	g := &gateway{
		daemon:     *daemon,
		ctlTimeout: *ctlTimeout,
		admitQueue: *admitQueue,
		maxBatch:   *maxBatch,
		poll:       *poll,
		limiter:    newBuckets(*rate, float64(*burst)),
	}
	g.queueLen.Store(-1) // unknown until the first poll lands
	publishGateVars()
	debugGate.Store(&gatewayRef{g})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", g.handleJobs)
	mux.HandleFunc("/v1/status", g.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}

	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		g.pollLoop(pollDone)
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Printf("gateway on %s fronting daemon %s (rate %.1f/s burst %d admit-queue %d)",
		ln.Addr(), *daemon, *rate, *burst, *admitQueue)

	select {
	case <-stop:
	case err := <-serveErr:
		close(pollDone)
		pollWG.Wait()
		return fmt.Errorf("serve: %w", err)
	}
	logger.Printf("shutting down")
	close(pollDone)
	pollWG.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-serveErr // http.ErrServerClosed
	return nil
}

// gateway holds the admission state shared by the HTTP handlers and the
// status poller.
type gateway struct {
	daemon     string
	ctlTimeout time.Duration
	admitQueue int
	maxBatch   int
	poll       time.Duration
	limiter    *buckets

	// Daemon view, refreshed by pollLoop. queueLen -1 means unknown
	// (daemon unreachable or not yet polled): admission fails open so a
	// blind gateway degrades to a plain proxy instead of a total outage.
	queueLen atomic.Int64
	nodeID   atomic.Int32
	busy     atomic.Bool
	alive    atomic.Bool

	accepted      atomic.Uint64 // jobs the daemon admitted
	batches       atomic.Uint64 // batch requests processed past the gates
	rejectedRate  atomic.Uint64 // jobs bounced by the token bucket
	rejectedQueue atomic.Uint64 // jobs bounced by queue-depth admission
	rejectedBusy  atomic.Uint64 // jobs the daemon itself refused as overloaded
	rejectedBad   atomic.Uint64 // malformed submissions
	daemonErrors  atomic.Uint64 // control-plane call failures
}

func (g *gateway) pollLoop(done <-chan struct{}) {
	t := time.NewTicker(g.poll)
	defer t.Stop()
	for {
		resp, err := ctl.Call(g.daemon, ctl.Request{Op: ctl.OpStatus}, g.ctlTimeout)
		if err != nil || !resp.OK {
			g.daemonErrors.Add(1)
			g.queueLen.Store(-1)
			g.alive.Store(false)
		} else {
			g.queueLen.Store(int64(resp.QueueLen))
			g.nodeID.Store(resp.NodeID)
			g.busy.Store(resp.Busy)
			g.alive.Store(resp.Alive)
		}
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}

// jobSpec is one submission in a batch request. Zero-valued resource fields
// take grid-typical defaults so a load generator can submit `{"ert":"10s"}`.
type jobSpec struct {
	Arch        string `json:"arch,omitempty"`
	OS          string `json:"os,omitempty"`
	MinMemoryGB int    `json:"minMemoryGB,omitempty"`
	MinDiskGB   int    `json:"minDiskGB,omitempty"`
	ERT         string `json:"ert"`
	Deadline    string `json:"deadline,omitempty"`
	StartAfter  string `json:"startAfter,omitempty"`
	Priority    int    `json:"priority,omitempty"`
}

func (s jobSpec) request() ctl.Request {
	req := ctl.Request{
		Op:          ctl.OpSubmit,
		Arch:        s.Arch,
		OS:          s.OS,
		MinMemoryGB: s.MinMemoryGB,
		MinDiskGB:   s.MinDiskGB,
		ERT:         s.ERT,
		Deadline:    s.Deadline,
		StartAfter:  s.StartAfter,
		Priority:    s.Priority,
	}
	if req.Arch == "" {
		req.Arch = "AMD64"
	}
	if req.OS == "" {
		req.OS = "LINUX"
	}
	if req.MinMemoryGB == 0 {
		req.MinMemoryGB = 1
	}
	if req.MinDiskGB == 0 {
		req.MinDiskGB = 1
	}
	return req
}

// batchRequest is the POST /v1/jobs body; a bare jobSpec object is also
// accepted as a batch of one.
type batchRequest struct {
	Jobs []jobSpec `json:"jobs"`
}

// maxBodyBytes caps a submit body: far above any admissible batch
// (max-batch jobs of a few hundred bytes each), low enough that a hostile
// client cannot make the gateway buffer arbitrary memory per request.
const maxBodyBytes = 1 << 20

// itemResult is one job's outcome within a batch reply.
type itemResult struct {
	UUID  string `json:"uuid,omitempty"`
	Error string `json:"error,omitempty"`
}

// batchReply is the POST /v1/jobs response body.
type batchReply struct {
	Accepted int          `json:"accepted"`
	Results  []itemResult `json:"results"`
}

func (g *gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// MaxBytesReader (not LimitReader) so an oversized body is an explicit
	// 413 instead of silently truncated JSON masquerading as a parse error,
	// and so the server closes the connection rather than draining the rest.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		g.rejectedBad.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	specs, err := parseSpecs(body)
	if err != nil {
		g.rejectedBad.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(specs) > g.maxBatch {
		g.rejectedBad.Add(uint64(len(specs)))
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(specs), g.maxBatch), http.StatusRequestEntityTooLarge)
		return
	}

	// Gate 1: queue-depth admission. The cached depth is at most one poll
	// interval stale, so the Retry-After hint is the poll interval.
	if g.admitQueue > 0 {
		if depth := g.queueLen.Load(); depth >= int64(g.admitQueue) {
			g.rejectedQueue.Add(uint64(len(specs)))
			retryAfter(w, g.poll)
			http.Error(w, fmt.Sprintf("daemon run queue at %d (admission bound %d)", depth, g.admitQueue), http.StatusTooManyRequests)
			return
		}
	}

	// Gate 2: the tenant's token bucket, charged per job so batching does
	// not dodge the rate limit.
	tenant := r.Header.Get("X-Aria-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if ok, wait := g.limiter.take(tenant, float64(len(specs)), time.Now()); !ok {
		g.rejectedRate.Add(uint64(len(specs)))
		retryAfter(w, wait)
		http.Error(w, fmt.Sprintf("tenant %q over rate limit", tenant), http.StatusTooManyRequests)
		return
	}

	reply := batchReply{Results: make([]itemResult, len(specs))}
	busyRejects := 0
	for i, s := range specs {
		resp, err := ctl.Call(g.daemon, s.request(), g.ctlTimeout)
		switch {
		case err != nil:
			g.daemonErrors.Add(1)
			reply.Results[i].Error = "daemon unreachable: " + err.Error()
		case resp.Error != "":
			reply.Results[i].Error = resp.Error
			if strings.Contains(resp.Error, "overloaded") {
				g.rejectedBusy.Add(1)
				busyRejects++
			}
		default:
			reply.Results[i].UUID = resp.UUID
			reply.Accepted++
		}
	}
	g.batches.Add(1)
	g.accepted.Add(uint64(reply.Accepted))
	w.Header().Set("Content-Type", "application/json")
	if reply.Accepted == 0 && busyRejects == len(specs) {
		// The daemon's own admission control bounced the whole batch:
		// surface it as backpressure, not success.
		retryAfter(w, g.poll)
		w.WriteHeader(http.StatusTooManyRequests)
	}
	_ = json.NewEncoder(w).Encode(reply)
}

func (g *gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"daemon":   g.daemon,
		"nodeId":   g.nodeID.Load(),
		"queueLen": g.queueLen.Load(),
		"busy":     g.busy.Load(),
		"alive":    g.alive.Load(),
		"counters": g.snapshot(),
	})
}

func (g *gateway) snapshot() map[string]uint64 {
	return map[string]uint64{
		"accepted":      g.accepted.Load(),
		"batches":       g.batches.Load(),
		"rejectedRate":  g.rejectedRate.Load(),
		"rejectedQueue": g.rejectedQueue.Load(),
		"rejectedBusy":  g.rejectedBusy.Load(),
		"rejectedBad":   g.rejectedBad.Load(),
		"daemonErrors":  g.daemonErrors.Load(),
	}
}

// parseSpecs accepts either {"jobs":[...]} or a bare job object.
func parseSpecs(body []byte) ([]jobSpec, error) {
	var batch batchRequest
	if err := json.Unmarshal(body, &batch); err == nil && len(batch.Jobs) > 0 {
		return batch.Jobs, nil
	}
	var single jobSpec
	if err := json.Unmarshal(body, &single); err != nil {
		return nil, fmt.Errorf("parse body: %w", err)
	}
	if single.ERT == "" {
		return nil, fmt.Errorf("empty batch (want {\"jobs\":[...]} or one job object with an \"ert\")")
	}
	return []jobSpec{single}, nil
}

// retryAfter sets the Retry-After header, rounded up to a whole second (the
// header's granularity).
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
}

// buckets is a per-tenant token-bucket rate limiter, refilled lazily on
// each take.
type buckets struct {
	rate, burst float64

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBuckets(rate, burst float64) *buckets {
	return &buckets{rate: rate, burst: burst, m: make(map[string]*bucket)}
}

// take withdraws n tokens from tenant's bucket. On refusal it returns how
// long the tenant must wait for the deficit to refill.
func (bs *buckets) take(tenant string, n float64, now time.Time) (bool, time.Duration) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.m[tenant]
	if !ok {
		b = &bucket{tokens: bs.burst, last: now}
		bs.m[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * bs.rate
		if b.tokens > bs.burst {
			b.tokens = bs.burst
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	return false, time.Duration(deficit / bs.rate * float64(time.Second))
}

// debugGate points at the current gateway instance; the expvar closure reads
// through it so repeated run() calls in one process (tests) never
// double-publish.
var (
	debugGate    atomic.Value // *gatewayRef
	gateVarsOnce sync.Once
)

// gatewayRef wraps the possibly-nil pointer so atomic.Value always stores
// one concrete type.
type gatewayRef struct{ g *gateway }

func publishGateVars() {
	gateVarsOnce.Do(func() {
		expvar.Publish("ariagate.counters", expvar.Func(func() interface{} {
			if ref, _ := debugGate.Load().(*gatewayRef); ref != nil && ref.g != nil {
				return ref.g.snapshot()
			}
			return map[string]uint64{}
		}))
	})
}
