// Command ariad runs a live ARiA grid node: the protocol engine behind a
// TCP transport plus a control endpoint for job submission and status.
//
// A three-node grid on one machine:
//
//	ariad -id 0 -listen :7400 -control :7500 -peers "1=127.0.0.1:7401,2=127.0.0.1:7402" -neighbors 1,2 &
//	ariad -id 1 -listen :7401 -control :7501 -peers "0=127.0.0.1:7400,2=127.0.0.1:7402" -neighbors 0,2 &
//	ariad -id 2 -listen :7402 -control :7502 -peers "0=127.0.0.1:7400,1=127.0.0.1:7401" -neighbors 0,1 &
//	ariactl -daemon 127.0.0.1:7500 -ert 10s
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/trace"
	"github.com/smartgrid/aria/internal/transport"
	"github.com/smartgrid/aria/internal/wal"
)

// Exit codes a supervisor can dispatch on. A WAL write fault is a crash
// (restart with the same data dir: recovery cuts the torn tail); a corrupt
// store is not survivable in place (wipe the data dir before respawning, or
// the daemon will refuse to boot forever).
const (
	exitWALFault   = 3 // runtime write-ahead journal failure, died loudly
	exitWALCorrupt = 4 // boot refused: store failed corruption checks
)

// exitCodeError carries a specific process exit code out of run.
type exitCodeError struct {
	code int
	err  error
}

func (e exitCodeError) Error() string { return e.err.Error() }
func (e exitCodeError) Unwrap() error { return e.err }

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "ariad:", err)
		code := 1
		var ec exitCodeError
		if errors.As(err, &ec) {
			code = ec.code
		}
		os.Exit(code)
	}
}

// run boots the daemon and blocks until stop delivers (tests close a
// channel; main wires OS signals).
func run(args []string, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("ariad", flag.ContinueOnError)
	var (
		id        = fs.Int("id", 0, "overlay node ID")
		listen    = fs.String("listen", "127.0.0.1:7400", "protocol listen address")
		control   = fs.String("control", "127.0.0.1:7500", "control-plane listen address")
		peersStr  = fs.String("peers", "", "peer map: id=host:port,id=host:port")
		nbrsStr   = fs.String("neighbors", "", "overlay neighbor IDs: 1,2,3")
		archStr   = fs.String("arch", "AMD64", "node architecture")
		osStr     = fs.String("os", "LINUX", "node operating system")
		memGB     = fs.Int("mem", 8, "node memory (GB)")
		diskGB    = fs.Int("disk", 8, "node disk (GB)")
		perf      = fs.Float64("perf", 1.5, "performance index [1,2)")
		policyStr = fs.String("policy", "FCFS", "local policy: FCFS, SJF, EDF, Priority, LJF")
		seed      = fs.Int64("seed", time.Now().UnixNano(), "random seed")
		epsilon   = fs.Float64("epsilon", 0.1, "running-time estimate error (0 = exact)")
		events    = fs.String("events", "", "append job lifecycle events as JSON lines to this file")
		dataDir   = fs.String("data-dir", "", "durable state directory (write-ahead journal + snapshot; empty = stateless fail-stop)")
		incarn    = fs.Uint64("incarnation", 0, "this process's incarnation number (orchestrators pass the restart count so remote directory caches can order knowledge across restarts)")
		debugAddr = fs.String("debug", "", "serve expvar and pprof on this address (empty = disabled)")

		walShortPct  = fs.Float64("wal-short-write-pct", 0, "fault injection: probability a journal append persists a torn prefix and the daemon dies loudly (exit 3)")
		walSyncPct   = fs.Float64("wal-sync-err-pct", 0, "fault injection: probability a journal fsync fails (exit 3 via the sticky-error hook)")
		walSnapPct   = fs.Float64("wal-snapshot-err-pct", 0, "fault injection: probability a snapshot write fails as a unit")
		walFlipPct   = fs.Float64("wal-flip-pct", 0, "fault injection: probability a boot-time journal/snapshot read has one bit flipped (corrupt stores refuse to boot, exit 4)")
		walFaultSeed = fs.Int64("wal-fault-seed", 0, "fault injection: seed for the injected disk-fault sequence")
		traceCap     = fs.Int("trace-buffer", 4096, "retained trace-plane span events for ariactl -trace (0 = tracing off)")

		assignAck = fs.Bool("assign-ack", false, "confirm networked ASSIGNs with ACKs: retransmit unacknowledged assignments with backoff, fall back loss-safe when retries exhaust")
		notify    = fs.Bool("notify", false, "assignees notify initiators on queue/completion; initiators run a failsafe watchdog re-submitting jobs lost to assignee crashes")

		probeInterval  = fs.Duration("probe-interval", 0, "liveness probe interval (0 = membership plane off)")
		probeTimeout   = fs.Duration("probe-timeout", core.DefaultProbeTimeout, "unanswered-probe window before a neighbor turns suspect")
		suspectTimeout = fs.Duration("suspect-timeout", core.DefaultSuspectTimeout, "suspicion window before a suspect is declared dead")
		maxDegree      = fs.Int("max-degree", 0, "overlay-repair degree bound (0 = unbounded)")

		maxQueued  = fs.Int("max-queued", 0, "run-queue depth bound; past it the node sheds REQUESTs and ASSIGNs with BUSY (0 = unbounded)")
		maxPending = fs.Int("max-pending", 0, "in-flight local submissions bound; past it Submit is rejected (0 = unbounded)")
		retryCap   = fs.Duration("retry-backoff-cap", 0, "ceiling for the jittered exponential request-retry backoff (0 = fixed backoff)")

		directedCands = fs.Int("directed-candidates", 0, "directed-discovery probes per first round (0 = directory off; requires -probe-interval)")
		minDirOffers  = fs.Int("min-directed-offers", core.DefaultMinDirectedOffers, "ACCEPTs a directed round needs before the flood fallback fires")
		dirCapacity   = fs.Int("directory-capacity", core.DefaultDirectoryCapacity, "resource-directory cache entries per node")
		dirTTL        = fs.Duration("directory-ttl", core.DefaultDirectoryTTL, "staleness bound on cached profile digests")
		dirGossip     = fs.Int("directory-gossip", core.DefaultDirectoryGossip, "cached digests piggybacked per PING/PONG (plus the sender's own)")

		sharedBound   = fs.Int("shared-state", 0, "provider queue bound arming the shared-state optimistic-commit arm (0 = off; requires -probe-interval)")
		sharedRetries = fs.Int("shared-state-retries", core.DefaultSharedStateRetries, "failed optimistic commits (K) before the job falls back to the REQUEST flood")
		commitTimeout = fs.Duration("commit-timeout", core.DefaultCommitTimeout, "wait for a commit's grant or CONFLICT before treating the provider as unreachable")
		commitBackoff = fs.Duration("commit-backoff", core.DefaultCommitBackoff, "base pause before a commit retry (doubles per attempt, capped at 64x)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	peers, err := parsePeers(*peersStr)
	if err != nil {
		return err
	}
	neighbors, err := parseNeighbors(*nbrsStr)
	if err != nil {
		return err
	}
	profile, err := buildProfile(*archStr, *osStr, *memGB, *diskGB, *perf)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(*policyStr)
	if err != nil {
		return err
	}
	art := job.ARTModel{Mode: job.DriftSymmetric, Epsilon: *epsilon}
	if *epsilon == 0 {
		art = job.ARTModel{Mode: job.DriftNone}
	}

	logger := log.New(os.Stdout, fmt.Sprintf("ariad[%d] ", *id), log.Ltime|log.Lmicroseconds)
	var obs core.Observer = &logObserver{log: logger}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open event log: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				logger.Printf("close event log: %v", cerr)
			}
		}()
		ew := eventlog.NewWriter(f)
		defer func() {
			if ferr := ew.Flush(); ferr != nil {
				logger.Printf("flush event log: %v", ferr)
			}
		}()
		obs = eventlog.Tee{obs, ew}
	}

	// Bounded span retention: the ring keeps the freshest trace-plane
	// events for ariactl -trace and lifetime per-kind counters for expvar.
	var ring *trace.Ring
	if *traceCap > 0 {
		ring = trace.NewRing(*traceCap)
		obs = eventlog.Tee{obs, ring}
	}
	debugRing.Store(ring)
	debugRecovery.Store((*core.RecoveryStats)(nil)) // reset stale stats across run() calls
	debugWALFaults.Store(&faultStoreRef{nil})       // ditto for fault counters

	protoCfg := core.DefaultConfig()
	// Delivery hardening: both planes are implemented in core but default
	// off to keep the simulator's baseline figures comparable; a live grid
	// whose assignees can crash wants them on, or a lost ASSIGN (or an
	// assignee SIGKILLed with queued work) orphans the job forever.
	protoCfg.AssignAck = *assignAck
	protoCfg.NotifyInitiator = *notify
	var members *memberCounters
	if *probeInterval > 0 {
		protoCfg.ProbeInterval = *probeInterval
		protoCfg.ProbeTimeout = *probeTimeout
		protoCfg.SuspectTimeout = *suspectTimeout
		protoCfg.MaxDegree = *maxDegree
		members = &memberCounters{log: logger}
		obs = eventlog.Tee{obs, members}
	}
	debugMembers.Store(&memberCountersRef{members})

	var ovl *overloadCounters
	if *maxQueued > 0 || *maxPending > 0 || *retryCap > 0 {
		protoCfg.MaxQueuedJobs = *maxQueued
		protoCfg.MaxPendingSubmits = *maxPending
		protoCfg.RetryBackoffCap = *retryCap
		ovl = &overloadCounters{log: logger}
		obs = eventlog.Tee{obs, ovl}
	}
	debugOverload.Store(&overloadCountersRef{ovl})

	var dirCounters *directoryCounters
	if *directedCands > 0 {
		protoCfg.DirectedCandidates = *directedCands
		protoCfg.MinDirectedOffers = *minDirOffers
		protoCfg.DirectoryCapacity = *dirCapacity
		protoCfg.DirectoryTTL = *dirTTL
		protoCfg.DirectoryGossip = *dirGossip
		dirCounters = &directoryCounters{}
		obs = eventlog.Tee{obs, dirCounters}
	}
	debugDirectory.Store(&directoryCountersRef{dirCounters})

	var ssCounters *sharedStateCounters
	if *sharedBound > 0 {
		protoCfg.SharedStateBound = *sharedBound
		protoCfg.SharedStateRetries = *sharedRetries
		protoCfg.CommitTimeout = *commitTimeout
		protoCfg.CommitBackoff = *commitBackoff
		// The cluster-state view rides the directory cache, so arm it even
		// when directed probes are off (same knobs as -directed-candidates).
		protoCfg.DirectoryCapacity = *dirCapacity
		protoCfg.DirectoryTTL = *dirTTL
		protoCfg.DirectoryGossip = *dirGossip
		ssCounters = &sharedStateCounters{}
		obs = eventlog.Tee{obs, ssCounters}
	}
	debugSharedState.Store(&sharedStateCountersRef{ssCounters})

	node, err := transport.ListenTCP(transport.TCPConfig{
		ID:        overlay.NodeID(*id),
		Listen:    *listen,
		Peers:     peers,
		Neighbors: neighbors,
		Seed:      *seed,
	}, profile, policy, protoCfg, obs, art)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := node.Close(); cerr != nil {
			logger.Printf("close: %v", cerr)
		}
	}()
	// Durable state: attach the write-ahead journal and replay whatever the
	// previous process left behind before the node starts taking traffic. A
	// clean prior shutdown recovers from the snapshot alone (zero replay).
	var journal *wal.Journal
	if *dataDir != "" {
		fileStore, err := wal.OpenFileStore(*dataDir)
		if err != nil {
			return fmt.Errorf("open data dir: %w", err)
		}
		defer func() {
			if cerr := fileStore.Close(); cerr != nil {
				logger.Printf("close data dir: %v", cerr)
			}
		}()
		var store wal.Store = fileStore
		faultCfg := wal.FaultConfig{
			ShortWritePct:  *walShortPct,
			SyncErrPct:     *walSyncPct,
			SnapshotErrPct: *walSnapPct,
			FlipPct:        *walFlipPct,
			Seed:           *walFaultSeed,
		}
		if faultCfg.Active() {
			faulty := wal.NewFaultStore(fileStore, faultCfg)
			store = faulty
			debugWALFaults.Store(&faultStoreRef{faulty})
			logger.Printf("WAL fault injection armed (short %.3g, sync %.3g, snapshot %.3g, flip %.3g, seed %d)",
				*walShortPct, *walSyncPct, *walSnapPct, *walFlipPct, *walFaultSeed)
		}
		journal = wal.New(store, wal.Options{
			SyncEveryAppend: true,
			// A failed append means the log can no longer prove what this
			// process does next: die before any unjournaled transition
			// becomes observable. Recovery replays the clean prefix and
			// re-runs whatever the crash cut — a rerun, never a duplicate.
			OnError: func(err error) {
				logger.Printf("FATAL: write-ahead journal failed, dying loudly: %v", err)
				os.Exit(exitWALFault)
			},
		})
		node.Node().AttachJournal(journal)
		stats, err := node.Node().Recover()
		if err != nil {
			if errors.Is(err, wal.ErrCorrupt) {
				return exitCodeError{exitWALCorrupt, fmt.Errorf("recover from %s: %w", *dataDir, err)}
			}
			return fmt.Errorf("recover from %s: %w", *dataDir, err)
		}
		debugRecovery.Store(&stats)
		logger.Printf("recovered %d job entries from %s (%d replay records, snapshot age %v, clean=%v)",
			stats.JobsRecovered, *dataDir, stats.ReplayRecords, stats.SnapshotAge.Round(time.Millisecond), stats.Clean)
	}

	if *incarn > 0 {
		node.Node().SetIncarnation(*incarn)
	}
	debugIncarnation.Store(*incarn)

	node.Node().Start()
	logger.Printf("protocol on %s, profile %s, policy %s", node.Addr(), profile, policy)

	ctlLn, err := net.Listen("tcp", *control)
	if err != nil {
		return fmt.Errorf("control listener: %w", err)
	}
	start := time.Now()
	srv := ctl.NewServer(ctlLn, node.Node(), func() time.Duration {
		return time.Since(start)
	}, rand.New(rand.NewSource(*seed+1)))
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			logger.Printf("control close: %v", cerr)
		}
	}()
	logger.Printf("control on %s", srv.Addr())
	if ring != nil {
		srv.SetTraceSource(ring)
	}

	if *debugAddr != "" {
		publishDebugVars()
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer func() { _ = dln.Close() }()
		// The default mux carries /debug/pprof (imported above) and
		// /debug/vars (expvar's init).
		go func() { _ = http.Serve(dln, nil) }()
		logger.Printf("debug on %s (expvar, pprof)", dln.Addr())
	}

	<-stop
	logger.Printf("shutting down")
	if journal != nil {
		// Graceful drain: go quiet, then persist the final state as a
		// snapshot so the next boot replays nothing.
		node.Node().Stop()
		if err := node.Node().Checkpoint(); err != nil {
			logger.Printf("final checkpoint: %v", err)
		} else if err := journal.Sync(); err != nil {
			logger.Printf("journal sync: %v", err)
		} else {
			logger.Printf("state checkpointed to %s", *dataDir)
		}
	}
	return nil
}

// debugRing points at the current daemon instance's span ring (nil ring =
// tracing off) and debugMembers at its membership counters (nil = membership
// off); expvar closures read through them so repeated run() calls in one
// process (tests) never double-publish.
var (
	debugRing        atomic.Value // *trace.Ring
	debugMembers     atomic.Value // *memberCountersRef
	debugRecovery    atomic.Value // *core.RecoveryStats (boot-time recovery)
	debugDirectory   atomic.Value // *directoryCountersRef
	debugOverload    atomic.Value // *overloadCountersRef
	debugSharedState atomic.Value // *sharedStateCountersRef
	debugIncarnation atomic.Value // uint64
	debugWALFaults   atomic.Value // *faultStoreRef
	debugVarsOnce    sync.Once
)

// faultStoreRef wraps the possibly-nil pointer so atomic.Value always
// stores one concrete type.
type faultStoreRef struct{ s *wal.FaultStore }

// memberCountersRef wraps the possibly-nil pointer so atomic.Value always
// stores one concrete type.
type memberCountersRef struct{ c *memberCounters }

// directoryCountersRef wraps the possibly-nil pointer so atomic.Value always
// stores one concrete type.
type directoryCountersRef struct{ c *directoryCounters }

// overloadCountersRef wraps the possibly-nil pointer so atomic.Value always
// stores one concrete type.
type overloadCountersRef struct{ c *overloadCounters }

// sharedStateCountersRef wraps the possibly-nil pointer so atomic.Value
// always stores one concrete type.
type sharedStateCountersRef struct{ c *sharedStateCounters }

func publishDebugVars() {
	debugVarsOnce.Do(func() {
		expvar.Publish("aria.spanTotal", expvar.Func(func() interface{} {
			if r, _ := debugRing.Load().(*trace.Ring); r != nil {
				return r.Total()
			}
			return uint64(0)
		}))
		expvar.Publish("aria.spans", expvar.Func(func() interface{} {
			if r, _ := debugRing.Load().(*trace.Ring); r != nil {
				return r.Counts()
			}
			return map[core.SpanKind]uint64{}
		}))
		expvar.Publish("aria.membership", expvar.Func(func() interface{} {
			if ref, _ := debugMembers.Load().(*memberCountersRef); ref != nil && ref.c != nil {
				return ref.c.snapshot()
			}
			return map[string]uint64{}
		}))
		expvar.Publish("aria.directory", expvar.Func(func() interface{} {
			if ref, _ := debugDirectory.Load().(*directoryCountersRef); ref != nil && ref.c != nil {
				return ref.c.snapshot()
			}
			return map[string]uint64{}
		}))
		expvar.Publish("aria.overload", expvar.Func(func() interface{} {
			if ref, _ := debugOverload.Load().(*overloadCountersRef); ref != nil && ref.c != nil {
				return ref.c.snapshot()
			}
			return map[string]uint64{}
		}))
		expvar.Publish("aria.sharedstate", expvar.Func(func() interface{} {
			if ref, _ := debugSharedState.Load().(*sharedStateCountersRef); ref != nil && ref.c != nil {
				return ref.c.snapshot()
			}
			return map[string]uint64{}
		}))
		// aria.runtime is the soak auditor's process-health probe: the
		// live goroutine count bounds leak growth, pid locates the
		// process's /proc entry for RSS, and incarnation ties the probe
		// back to a specific restart of this overlay address.
		expvar.Publish("aria.runtime", expvar.Func(func() interface{} {
			inc, _ := debugIncarnation.Load().(uint64)
			return map[string]interface{}{
				"goroutines":  runtime.NumGoroutine(),
				"pid":         os.Getpid(),
				"incarnation": inc,
			}
		}))
		// aria.wire counts inbound protocol frames the codec refused, by
		// reason — the soak's proof that injected wire corruption was both
		// delivered and cleanly rejected.
		expvar.Publish("aria.wire", expvar.Func(func() interface{} {
			return transport.WireRejects()
		}))
		// aria.walfaults counts injected disk faults when -wal-*-pct flags
		// armed the fault store (empty map otherwise).
		expvar.Publish("aria.walfaults", expvar.Func(func() interface{} {
			if ref, _ := debugWALFaults.Load().(*faultStoreRef); ref != nil && ref.s != nil {
				c := ref.s.Counters()
				return map[string]uint64{
					"shortWrites":  c.ShortWrites,
					"syncErrs":     c.SyncErrs,
					"snapshotErrs": c.SnapshotErrs,
					"bitFlips":     c.BitFlips,
				}
			}
			return map[string]uint64{}
		}))
		expvar.Publish("aria.recovery", expvar.Func(func() interface{} {
			if s, _ := debugRecovery.Load().(*core.RecoveryStats); s != nil {
				return map[string]interface{}{
					"jobsRecovered":  s.JobsRecovered,
					"replayRecords":  s.ReplayRecords,
					"snapshotAgeSec": s.SnapshotAge.Seconds(),
					"clean":          s.Clean,
				}
			}
			return map[string]interface{}{}
		}))
	})
}

// memberCounters tallies liveness-detector activity for expvar and logs the
// state transitions operators care about.
type memberCounters struct {
	core.NopObserver

	log *log.Logger

	suspected, refuted, dead, repaired, refloods atomic.Uint64
}

var _ core.MembershipObserver = (*memberCounters)(nil)

func (m *memberCounters) PeerSuspected(_ time.Duration, _, peer overlay.NodeID) {
	m.suspected.Add(1)
	m.log.Printf("peer %v suspected", peer)
}

func (m *memberCounters) PeerRefuted(_ time.Duration, _, peer overlay.NodeID) {
	m.refuted.Add(1)
	m.log.Printf("peer %v refuted suspicion", peer)
}

func (m *memberCounters) PeerDead(_ time.Duration, _, peer overlay.NodeID) {
	m.dead.Add(1)
	m.log.Printf("peer %v confirmed dead", peer)
}

func (m *memberCounters) LinkRepaired(_ time.Duration, _, dead, replacement overlay.NodeID) {
	m.repaired.Add(1)
	m.log.Printf("overlay repaired: %v replaces dead %v", replacement, dead)
}

func (m *memberCounters) FloodEscalated(_ time.Duration, _ overlay.NodeID, uuid job.UUID, attempt, ttl int) {
	m.refloods.Add(1)
	m.log.Printf("job %s re-flood %d escalated to TTL %d", uuid.Short(), attempt, ttl)
}

func (m *memberCounters) snapshot() map[string]uint64 {
	return map[string]uint64{
		"suspected": m.suspected.Load(),
		"refuted":   m.refuted.Load(),
		"dead":      m.dead.Load(),
		"repaired":  m.repaired.Load(),
		"refloods":  m.refloods.Load(),
	}
}

// overloadCounters tallies overload-control activity for expvar and logs the
// shed decisions operators care about.
type overloadCounters struct {
	core.NopObserver

	log *log.Logger

	requestsShed, assignsShed, reflooded, reenqueued, peersBusy, submitRejects atomic.Uint64
}

var _ core.OverloadObserver = (*overloadCounters)(nil)

func (o *overloadCounters) RequestShed(_ time.Duration, _ overlay.NodeID, _ job.UUID, _ int) {
	o.requestsShed.Add(1)
}

func (o *overloadCounters) AssignShed(_ time.Duration, _ overlay.NodeID, uuid job.UUID, depth int) {
	o.assignsShed.Add(1)
	o.log.Printf("job %s ASSIGN shed with BUSY (queue depth %d)", uuid.Short(), depth)
}

func (o *overloadCounters) ShedRedispatched(_ time.Duration, _ overlay.NodeID, uuid job.UUID, reflooded bool) {
	if reflooded {
		o.reflooded.Add(1)
		o.log.Printf("job %s re-flooded after BUSY", uuid.Short())
	} else {
		o.reenqueued.Add(1)
		o.log.Printf("job %s re-enqueued after BUSY", uuid.Short())
	}
}

func (o *overloadCounters) PeerBusy(_ time.Duration, _, peer overlay.NodeID) {
	o.peersBusy.Add(1)
}

func (o *overloadCounters) SubmitRejected(_ time.Duration, _ overlay.NodeID, uuid job.UUID, pending int) {
	o.submitRejects.Add(1)
	o.log.Printf("job %s submit rejected (%d discoveries in flight)", uuid.Short(), pending)
}

func (o *overloadCounters) snapshot() map[string]uint64 {
	return map[string]uint64{
		"requestsShed":  o.requestsShed.Load(),
		"assignsShed":   o.assignsShed.Load(),
		"reflooded":     o.reflooded.Load(),
		"reenqueued":    o.reenqueued.Load(),
		"peersBusy":     o.peersBusy.Load(),
		"submitRejects": o.submitRejects.Load(),
	}
}

// directoryCounters tallies directed-discovery activity for expvar.
type directoryCounters struct {
	core.NopObserver

	hits, misses, fallbacks, probes, evictions atomic.Uint64
}

var _ core.DirectoryObserver = (*directoryCounters)(nil)

func (d *directoryCounters) DirectoryHit(_ time.Duration, _ overlay.NodeID, _ job.UUID, probes int) {
	d.hits.Add(1)
	d.probes.Add(uint64(probes))
}

func (d *directoryCounters) DirectoryMiss(time.Duration, overlay.NodeID, job.UUID) {
	d.misses.Add(1)
}

func (d *directoryCounters) DirectoryFallback(time.Duration, overlay.NodeID, job.UUID, int) {
	d.fallbacks.Add(1)
}

func (d *directoryCounters) DirectoryEvicted(time.Duration, overlay.NodeID, overlay.NodeID, string) {
	d.evictions.Add(1)
}

func (d *directoryCounters) snapshot() map[string]uint64 {
	return map[string]uint64{
		"hits":      d.hits.Load(),
		"misses":    d.misses.Load(),
		"fallbacks": d.fallbacks.Load(),
		"probes":    d.probes.Load(),
		"evictions": d.evictions.Load(),
	}
}

// sharedStateCounters tallies optimistic-commit activity for expvar.
type sharedStateCounters struct {
	core.NopObserver

	commits, conflicts, timeouts, granted, fallbacks atomic.Uint64
}

var _ core.SharedStateObserver = (*sharedStateCounters)(nil)

func (s *sharedStateCounters) CommitSent(time.Duration, overlay.NodeID, job.UUID, overlay.NodeID, int) {
	s.commits.Add(1)
}

func (s *sharedStateCounters) CommitConflict(_ time.Duration, _ overlay.NodeID, _ job.UUID, _ overlay.NodeID, reason string, _ int) {
	if reason == "timeout" {
		s.timeouts.Add(1)
	} else {
		s.conflicts.Add(1)
	}
}

func (s *sharedStateCounters) CommitGranted(time.Duration, overlay.NodeID, job.UUID, overlay.NodeID, int) {
	s.granted.Add(1)
}

func (s *sharedStateCounters) CommitFallback(time.Duration, overlay.NodeID, job.UUID, int) {
	s.fallbacks.Add(1)
}

func (s *sharedStateCounters) snapshot() map[string]uint64 {
	return map[string]uint64{
		"commits":   s.commits.Load(),
		"conflicts": s.conflicts.Load(),
		"timeouts":  s.timeouts.Load(),
		"granted":   s.granted.Load(),
		"fallbacks": s.fallbacks.Load(),
	}
}

func parsePeers(s string) (map[overlay.NodeID]string, error) {
	peers := make(map[overlay.NodeID]string)
	if s == "" {
		return nil, fmt.Errorf("missing -peers")
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		peers[overlay.NodeID(id)] = kv[1]
	}
	return peers, nil
}

func parseNeighbors(s string) ([]overlay.NodeID, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -neighbors")
	}
	var out []overlay.NodeID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad neighbor id %q: %w", part, err)
		}
		out = append(out, overlay.NodeID(id))
	}
	return out, nil
}

func buildProfile(archStr, osStr string, mem, disk int, perf float64) (resource.Profile, error) {
	arch, err := resource.ParseArchitecture(archStr)
	if err != nil {
		return resource.Profile{}, err
	}
	osKind, err := resource.ParseOS(osStr)
	if err != nil {
		return resource.Profile{}, err
	}
	p := resource.Profile{Arch: arch, OS: osKind, MemoryGB: mem, DiskGB: disk, PerfIndex: perf}
	if err := p.Validate(); err != nil {
		return resource.Profile{}, err
	}
	return p, nil
}

func parsePolicy(s string) (sched.Policy, error) {
	return sched.ParsePolicy(s)
}

// logObserver prints job lifecycle events.
type logObserver struct {
	core.NopObserver

	log *log.Logger
}

func (o *logObserver) JobSubmitted(_ time.Duration, _ overlay.NodeID, p job.Profile) {
	o.log.Printf("job %s submitted (ert %v, %s)", p.UUID.Short(), p.ERT, p.Req)
}

func (o *logObserver) JobAssigned(_ time.Duration, uuid job.UUID, from, to overlay.NodeID, cost sched.Cost, resched bool) {
	verb := "assigned"
	if resched {
		verb = "rescheduled"
	}
	o.log.Printf("job %s %s %v -> %v (cost %.1f)", uuid.Short(), verb, from, to, float64(cost))
}

func (o *logObserver) JobStarted(_ time.Duration, node overlay.NodeID, uuid job.UUID) {
	o.log.Printf("job %s started on %v", uuid.Short(), node)
}

func (o *logObserver) JobCompleted(_ time.Duration, node overlay.NodeID, j *job.Job) {
	o.log.Printf("job %s completed on %v (waited %v, ran %v)",
		j.UUID.Short(), node, j.WaitingTime().Round(time.Millisecond), j.ExecutionTime().Round(time.Millisecond))
}

func (o *logObserver) JobFailed(_ time.Duration, _ overlay.NodeID, uuid job.UUID, reason string) {
	o.log.Printf("job %s failed: %s", uuid.Short(), reason)
}
