package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/ctl"
	"testing"

	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=127.0.0.1:7401, 2=10.0.0.2:7402")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[1] != "127.0.0.1:7401" || peers[2] != "10.0.0.2:7402" {
		t.Fatalf("peers = %v", peers)
	}
	tests := []string{"", "nokey", "x=addr", "1:addr"}
	for _, give := range tests {
		if _, err := parsePeers(give); err == nil {
			t.Errorf("parsePeers(%q) succeeded", give)
		}
	}
}

func TestParseNeighbors(t *testing.T) {
	nbs, err := parseNeighbors("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []overlay.NodeID{1, 2, 3}
	if len(nbs) != len(want) {
		t.Fatalf("neighbors = %v", nbs)
	}
	for i, w := range want {
		if nbs[i] != w {
			t.Fatalf("neighbors = %v, want %v", nbs, want)
		}
	}
	for _, give := range []string{"", "a,b"} {
		if _, err := parseNeighbors(give); err == nil {
			t.Errorf("parseNeighbors(%q) succeeded", give)
		}
	}
}

func TestBuildProfile(t *testing.T) {
	p, err := buildProfile("POWER", "SOLARIS", 4, 8, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	want := resource.Profile{
		Arch: resource.ArchPOWER, OS: resource.OSSolaris,
		MemoryGB: 4, DiskGB: 8, PerfIndex: 1.2,
	}
	if p != want {
		t.Fatalf("profile = %+v, want %+v", p, want)
	}
	if _, err := buildProfile("Z80", "LINUX", 4, 8, 1.2); err == nil {
		t.Fatal("accepted bad arch")
	}
	if _, err := buildProfile("AMD64", "HAIKU", 4, 8, 1.2); err == nil {
		t.Fatal("accepted bad os")
	}
	if _, err := buildProfile("AMD64", "LINUX", 0, 8, 1.2); err == nil {
		t.Fatal("accepted zero memory")
	}
	if _, err := buildProfile("AMD64", "LINUX", 4, 8, 5); err == nil {
		t.Fatal("accepted out-of-range perf index")
	}
}

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		give string
		want sched.Policy
	}{
		{"FCFS", sched.FCFS},
		{"sjf", sched.SJF},
		{"Edf", sched.EDF},
		{"priority", sched.Priority},
		{"LJF", sched.LJF},
	}
	for _, tt := range tests {
		got, err := parsePolicy(tt.give)
		if err != nil || got != tt.want {
			t.Errorf("parsePolicy(%q) = %v, %v", tt.give, got, err)
		}
	}
	if _, err := parsePolicy("fifo"); err == nil {
		t.Fatal("accepted unknown policy")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := [][]string{
		{"-nope"},
		{"-peers", "", "-neighbors", "1"},
		{"-peers", "1=x", "-neighbors", ""},
		{"-peers", "1=x", "-neighbors", "1", "-arch", "Z80"},
		{"-peers", "1=x", "-neighbors", "1", "-policy", "fifo"},
	}
	for _, args := range tests {
		if err := run(args, nil); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestDaemonEndToEnd boots two real daemons on loopback, submits a job via
// the control plane of one, and watches it complete through the event log.
func TestDaemonEndToEnd(t *testing.T) {
	base := 40000 + rand.Intn(20000)
	addr := func(off int) string { return fmt.Sprintf("127.0.0.1:%d", base+off) }
	eventsPath := filepath.Join(t.TempDir(), "events.jsonl")

	type daemon struct {
		stop chan os.Signal
		done chan error
	}
	start := func(id int, events string) *daemon {
		d := &daemon{stop: make(chan os.Signal), done: make(chan error, 1)}
		peers := fmt.Sprintf("%d=%s", 1-id, addr(1-id))
		args := []string{
			"-id", fmt.Sprint(id),
			"-listen", addr(id),
			"-control", addr(10 + id),
			"-peers", peers,
			"-neighbors", fmt.Sprint(1 - id),
			"-perf", "1.5",
			"-epsilon", "0",
			"-seed", fmt.Sprint(100 + id),
			"-assign-ack",
			"-notify",
		}
		if events != "" {
			args = append(args, "-events", events)
		}
		go func() { d.done <- run(args, d.stop) }()
		return d
	}
	d0 := start(0, eventsPath)
	d1 := start(1, "")
	defer func() {
		close(d0.stop)
		close(d1.stop)
		for _, d := range []*daemon{d0, d1} {
			select {
			case err := <-d.done:
				if err != nil {
					t.Errorf("daemon exit: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("daemon did not shut down")
			}
		}
	}()

	// Wait for the control plane to come up.
	var resp ctl.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = ctl.Call(addr(10), ctl.Request{Op: ctl.OpStatus}, time.Second)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("control plane never came up: %v", err)
	}
	if !resp.Alive {
		t.Fatalf("status: %+v", resp)
	}

	sub, err := ctl.Call(addr(10), ctl.Request{
		Op: ctl.OpSubmit, Arch: "AMD64", OS: "LINUX",
		MinMemoryGB: 1, MinDiskGB: 1, ERT: "100ms",
	}, 5*time.Second)
	if err != nil || sub.Error != "" {
		t.Fatalf("submit: %v %+v", err, sub)
	}

	// Poll the event log for the completion.
	deadline := time.After(20 * time.Second)
	for {
		data, _ := os.ReadFile(eventsPath)
		if strings.Contains(string(data), `"kind":"completed"`) &&
			strings.Contains(string(data), sub.UUID) {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("no completion in event log; log so far:\n%s", data)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// TestDaemonRestartRecoversFromDataDir pins the daemon's fail-recover cycle:
// a node with -data-dir accepts a long job, shuts down gracefully (final
// snapshot, journal compacted to empty), and a fresh process on the same
// directory resumes the job before taking new traffic.
func TestDaemonRestartRecoversFromDataDir(t *testing.T) {
	base := 40000 + rand.Intn(20000)
	addr := func(off int) string { return fmt.Sprintf("127.0.0.1:%d", base+off) }
	dataDir := filepath.Join(t.TempDir(), "state")

	boot := func() (chan os.Signal, chan error) {
		stop := make(chan os.Signal)
		done := make(chan error, 1)
		args := []string{
			"-id", "0",
			"-listen", addr(0),
			"-control", addr(10),
			"-peers", "1=" + addr(1), // peer intentionally never started
			"-neighbors", "1",
			"-epsilon", "0",
			"-seed", "42",
			"-data-dir", dataDir,
		}
		go func() { done <- run(args, stop) }()
		return stop, done
	}
	waitCtl := func() {
		t.Helper()
		var err error
		for i := 0; i < 100; i++ {
			if _, err = ctl.Call(addr(10), ctl.Request{Op: ctl.OpStatus}, time.Second); err == nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("control plane never came up: %v", err)
	}
	shutdown := func(stop chan os.Signal, done chan error) {
		t.Helper()
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}

	stop, done := boot()
	waitCtl()
	sub, err := ctl.Call(addr(10), ctl.Request{
		Op: ctl.OpSubmit, Arch: "AMD64", OS: "LINUX",
		MinMemoryGB: 1, MinDiskGB: 1, ERT: "1h",
	}, 5*time.Second)
	if err != nil || sub.Error != "" {
		t.Fatalf("submit: %v %+v", err, sub)
	}
	// Wait for the job to land in the local queue (the only living node
	// assigns it to itself after the ACCEPT window).
	for i := 0; ; i++ {
		q, err := ctl.Call(addr(10), ctl.Request{Op: ctl.OpQueue}, time.Second)
		if err == nil && q.RunningUUID == sub.UUID {
			break
		}
		if i > 200 {
			t.Fatalf("job never started: %v %+v", err, q)
		}
		time.Sleep(50 * time.Millisecond)
	}
	shutdown(stop, done)

	// Clean shutdown = final snapshot + compacted (empty) journal.
	if fi, err := os.Stat(filepath.Join(dataDir, "journal.wal")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after clean shutdown: %v (size %d), want empty", err, fi.Size())
	}
	if fi, err := os.Stat(filepath.Join(dataDir, "snapshot.wal")); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot after clean shutdown: %v, want non-empty", err)
	}

	stop, done = boot()
	defer shutdown(stop, done)
	waitCtl()
	for i := 0; ; i++ {
		q, err := ctl.Call(addr(10), ctl.Request{Op: ctl.OpQueue}, time.Second)
		if err == nil && q.RunningUUID == sub.UUID {
			return // recovered and resumed
		}
		if i > 100 {
			t.Fatalf("restarted daemon did not resume the job: %v %+v", err, q)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
