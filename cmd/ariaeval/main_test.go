package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-fig", "4", "-runs", "1", "-scale", "0.03", "-v=false"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 4: Deadline Scheduling Performance") {
		t.Fatalf("figure title missing:\n%s", out)
	}
	for _, s := range []string{"Deadline", "iDeadline", "DeadlineH", "iDeadlineH"} {
		if !strings.Contains(out, s) {
			t.Fatalf("figure missing scenario %s", s)
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run(&buf, []string{"-fig", "5", "-runs", "1", "-scale", "0.03", "-out", dir, "-v=false"})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("artifacts = %d, want .txt and .tsv", len(entries))
	}
	var sawTxt, sawTSV bool
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "fig05_") {
			t.Fatalf("artifact name %q", name)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "iExpanding") {
			t.Fatalf("artifact %s missing scenario", name)
		}
		switch {
		case strings.HasSuffix(name, ".txt"):
			sawTxt = true
		case strings.HasSuffix(name, ".tsv"):
			sawTSV = true
		}
	}
	if !sawTxt || !sawTSV {
		t.Fatalf("missing artifact kind (txt=%v tsv=%v)", sawTxt, sawTSV)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad figure", []string{"-fig", "42"}},
		{"bad scale", []string{"-scale", "0"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tt.args); err == nil {
				t.Fatalf("run(%v) succeeded", tt.args)
			}
		})
	}
}

func TestSlug(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"Fig. 4: Deadline Scheduling Performance", "deadline_scheduling_performance"},
		{"Fig. 5: Idle Nodes (Expanding Network)", "idle_nodes__expanding_network"},
	}
	for _, tt := range tests {
		if got := slug(tt.give); got != tt.want {
			t.Errorf("slug(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestRunExtensionFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-fig", "104", "-runs", "1", "-scale", "0.03", "-v=false"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Ext. D: Advance reservations") {
		t.Fatalf("extension figure title missing:\n%s", out)
	}
	if !strings.Contains(out, "iReservations") || !strings.Contains(out, "jain index") {
		t.Fatalf("extension figure content missing:\n%s", out)
	}
}

func TestRunExtensionBaselines(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-fig", "101", "-runs", "1", "-scale", "0.03", "-v=false"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Mixed+centralized", "Mixed+random", "iMixed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("baseline figure missing %s:\n%s", want, out)
		}
	}
}
