// Command ariaeval regenerates the paper's evaluation artifacts: it runs
// every scenario each figure needs and renders Figs. 1–10 as tables and
// ASCII charts.
//
// Usage:
//
//	ariaeval                     # all figures, 3 runs each, paper scale
//	ariaeval -fig 4 -runs 10     # one figure at paper fidelity
//	ariaeval -scale 0.1 -runs 2  # quick pass
//	ariaeval -out results/       # also write per-figure text files
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/baseline"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/report"
	"github.com/smartgrid/aria/internal/scenario"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ariaeval:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ariaeval", flag.ContinueOnError)
	var (
		figID   = fs.Int("fig", 0, "figure to regenerate (0 = all; >100 = extension figures)")
		ext     = fs.Bool("ext", false, "regenerate the extension figures (baselines, overlays, churn, reservations) instead of the paper's")
		runs    = fs.Int("runs", 3, "repetitions per scenario (paper uses 10)")
		scale   = fs.Float64("scale", 1.0, "scale factor for nodes/jobs (1.0 = paper scale)")
		outDir  = fs.String("out", "", "directory for per-figure text artifacts (optional)")
		verbose = fs.Bool("v", true, "print progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale %v outside (0, 1]", *scale)
	}

	var figs []report.Figure
	switch {
	case *figID != 0:
		f, err := report.AnyFigureByID(*figID)
		if err != nil {
			return err
		}
		figs = []report.Figure{f}
	case *ext:
		figs = report.ExtFigures()
	default:
		figs = report.Figures()
	}

	var paperIDs, extIDs []int
	for _, f := range figs {
		if f.ID > 100 {
			extIDs = append(extIDs, f.ID)
		} else {
			paperIDs = append(paperIDs, f.ID)
		}
	}
	var needed []string
	if len(paperIDs) > 0 {
		needed = append(needed, report.RequiredScenarios(paperIDs...)...)
	}
	if len(extIDs) > 0 {
		needed = append(needed, report.ExtRequiredScenarios(extIDs...)...)
	}
	needed = dedupe(needed)

	aggs := make(report.Aggregates, len(needed))
	for i, name := range needed {
		start := time.Now()
		agg, err := runScenarioSet(name, *scale, *runs)
		if err != nil {
			return err
		}
		aggs[name] = agg
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %-18s %d runs in %v (completed %.0f, resched %.0f)\n",
				i+1, len(needed), name, *runs, time.Since(start).Round(time.Second),
				agg.Completed.Mean, agg.Reschedules.Mean)
		}
	}

	for _, f := range figs {
		text, err := report.RenderAny(f, aggs)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, text)
		if *outDir != "" {
			if err := writeArtifact(*outDir, f, text, ".txt"); err != nil {
				return err
			}
			tsv, err := report.TSV(f, aggs)
			if err != nil {
				return err
			}
			if err := writeArtifact(*outDir, f, tsv, ".tsv"); err != nil {
				return err
			}
		}
	}
	return nil
}

// runScenarioSet runs a catalog scenario, an extension scenario, or a
// baseline variant ("<scenario>+centralized" / "<scenario>+random").
func runScenarioSet(name string, scale float64, runs int) (*metrics.Aggregate, error) {
	base := name
	var kind baseline.Kind
	if i := strings.Index(name, "+"); i >= 0 {
		base = name[:i]
		switch name[i+1:] {
		case "centralized":
			kind = baseline.Centralized
		case "random":
			kind = baseline.Random
		default:
			return nil, fmt.Errorf("unknown baseline suffix in %q", name)
		}
	}
	cfg, err := scenario.ByName(base)
	if err != nil {
		return nil, err
	}
	if scale != 1.0 {
		cfg = cfg.Scaled(scale)
	}
	if kind != 0 {
		agg, _, err := baseline.RunN(kind, cfg, runs)
		return agg, err
	}
	agg, _, err := scenario.RunN(cfg, runs)
	return agg, err
}

func dedupe(names []string) []string {
	seen := make(map[string]bool, len(names))
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func writeArtifact(dir string, f report.Figure, text, ext string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	name := fmt.Sprintf("fig%02d_%s%s", f.ID, slug(f.Title), ext)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

func slug(title string) string {
	s := strings.ToLower(title)
	if i := strings.Index(s, ":"); i >= 0 {
		s = s[i+1:]
	}
	s = strings.TrimSpace(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '(' || r == ')':
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "_")
}
