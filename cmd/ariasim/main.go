// Command ariasim runs one evaluation scenario from the paper's Table II
// catalog (or a scaled-down version of it) and prints the measured metrics.
//
// Usage:
//
//	ariasim -list
//	ariasim -scenario iMixed -runs 3
//	ariasim -scenario Mixed -scale 0.1 -tsv
//	ariasim -scenario Mixed -baseline centralized
//	ariasim -scenario iMixed -scale 0.1 -trace
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/baseline"
	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/scenario"
	"github.com/smartgrid/aria/internal/stats"
	"github.com/smartgrid/aria/internal/swf"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ariasim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ariasim", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list the scenario catalog and exit")
		name      = fs.String("scenario", "iMixed", "scenario name from Table II")
		runs      = fs.Int("runs", 1, "number of repetitions to aggregate")
		scale     = fs.Float64("scale", 1.0, "scale factor for nodes/jobs (1.0 = paper scale)")
		seed      = fs.Int64("seed", 0, "override the base random seed (0 = catalog default)")
		tsv       = fs.Bool("tsv", false, "emit per-run results as TSV instead of text")
		baseKind  = fs.String("baseline", "", "run a baseline meta-scheduler instead of ARiA: centralized or random")
		showSerie = fs.Bool("series", false, "also print the completed/idle time series")
		swfPath   = fs.String("swf", "", "replay a Standard Workload Format trace instead of the synthetic workload")
		swfJobs   = fs.Int("swf-jobs", 0, "truncate the trace to N jobs (0 = all)")
		swfScale  = fs.Float64("swf-timescale", 1.0, "compress (<1) or stretch (>1) trace submission times")
		dotPath   = fs.String("dot", "", "write the scenario's overlay as Graphviz DOT to this file and exit")
		traced    = fs.Bool("trace", false, "arm the causal trace plane and audit protocol invariants after each run")
		shards    = fs.Int("shards", 0, "run on the sharded kernel with N timer shards (0 = legacy single-heap engine; 4 is a good default)")

		directedCands = fs.Int("directed-candidates", -1, "override DirectedCandidates (0 = directory off, -1 = scenario default)")
		minDirOffers  = fs.Int("min-directed-offers", 0, "override MinDirectedOffers (0 = scenario default)")
		dirCapacity   = fs.Int("directory-capacity", 0, "override DirectoryCapacity (0 = scenario default)")
		dirTTL        = fs.Duration("directory-ttl", 0, "override DirectoryTTL (0 = scenario default)")
		dirGossip     = fs.Int("directory-gossip", -1, "override DirectoryGossip (-1 = scenario default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return printCatalog(w)
	}

	cfg, err := scenario.ByName(*name)
	if err != nil {
		return err
	}
	if *scale != 1.0 {
		if *scale <= 0 || *scale > 1 {
			return fmt.Errorf("scale %v outside (0, 1]", *scale)
		}
		cfg = cfg.Scaled(*scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *shards < 0 {
		return fmt.Errorf("shards %d must be non-negative", *shards)
	}
	cfg.Shards = *shards
	// Directory knob overrides. Turning the directory on over a scenario
	// that lacks its prerequisites arms the membership plane and the
	// remaining directory defaults, so `-directed-candidates 3` works on
	// any catalog entry.
	if *directedCands >= 0 {
		cfg.Protocol.DirectedCandidates = *directedCands
		if *directedCands > 0 {
			if cfg.Protocol.ProbeInterval == 0 {
				cfg.Protocol.ProbeInterval = core.DefaultProbeInterval
				cfg.Protocol.ProbeTimeout = core.DefaultProbeTimeout
				cfg.Protocol.SuspectTimeout = core.DefaultSuspectTimeout
			}
			if cfg.Protocol.MinDirectedOffers == 0 {
				cfg.Protocol.MinDirectedOffers = core.DefaultMinDirectedOffers
			}
			if cfg.Protocol.DirectoryCapacity == 0 {
				cfg.Protocol.DirectoryCapacity = core.DefaultDirectoryCapacity
			}
			if cfg.Protocol.DirectoryTTL == 0 {
				cfg.Protocol.DirectoryTTL = core.DefaultDirectoryTTL
			}
			if cfg.Protocol.DirectoryGossip == 0 {
				cfg.Protocol.DirectoryGossip = core.DefaultDirectoryGossip
			}
		}
	}
	if *minDirOffers > 0 {
		cfg.Protocol.MinDirectedOffers = *minDirOffers
	}
	if *dirCapacity > 0 {
		cfg.Protocol.DirectoryCapacity = *dirCapacity
	}
	if *dirTTL > 0 {
		cfg.Protocol.DirectoryTTL = *dirTTL
	}
	if *dirGossip >= 0 {
		cfg.Protocol.DirectoryGossip = *dirGossip
	}

	if *dotPath != "" {
		d, err := scenario.Prepare(cfg, 0)
		if err != nil {
			return err
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := d.Cluster.Graph().WriteDOT(f, cfg.Name); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d-node overlay to %s\n", d.Cluster.Graph().NumNodes(), *dotPath)
		return nil
	}

	if *swfPath != "" {
		if *baseKind != "" {
			return fmt.Errorf("-swf and -baseline are mutually exclusive")
		}
		if *traced {
			return fmt.Errorf("-swf and -trace are mutually exclusive")
		}
		results, err := replayTrace(cfg, *swfPath, *swfJobs, *swfScale, *runs)
		if err != nil {
			return err
		}
		if *tsv {
			return printTSV(w, results)
		}
		for i, res := range results {
			printResult(w, i, res, *showSerie)
		}
		if len(results) > 1 {
			printAggregate(w, metrics.NewAggregate(results))
		}
		return nil
	}

	if *traced {
		if *baseKind != "" {
			return fmt.Errorf("-trace and -baseline are mutually exclusive")
		}
		return runTraced(w, cfg, *runs, *tsv, *showSerie)
	}

	var results []*metrics.Result
	switch *baseKind {
	case "":
		_, results, err = scenario.RunN(cfg, *runs)
	case "centralized":
		_, results, err = baseline.RunN(baseline.Centralized, cfg, *runs)
	case "random":
		_, results, err = baseline.RunN(baseline.Random, cfg, *runs)
	default:
		return fmt.Errorf("unknown baseline %q (want centralized or random)", *baseKind)
	}
	if err != nil {
		return err
	}

	if *tsv {
		return printTSV(w, results)
	}
	for i, res := range results {
		printResult(w, i, res, *showSerie)
	}
	if len(results) > 1 {
		printAggregate(w, metrics.NewAggregate(results))
	}
	return nil
}

// runTraced executes the scenario with the trace plane armed, printing each
// run's metrics followed by its invariant-check report (span counts per kind
// and any violations).
func runTraced(w io.Writer, cfg scenario.Config, runs int, tsv, series bool) error {
	var results []*metrics.Result
	violations := 0
	for run := 0; run < runs; run++ {
		res, rep, err := scenario.RunTraced(cfg, run)
		if err != nil {
			return err
		}
		results = append(results, res)
		violations += len(rep.Violations)
		if tsv {
			continue
		}
		printResult(w, run, res, series)
		fmt.Fprintf(w, "  %s\n", strings.ReplaceAll(rep.String(), "\n", "\n  "))
	}
	if tsv {
		return printTSV(w, results)
	}
	if len(results) > 1 {
		printAggregate(w, metrics.NewAggregate(results))
	}
	if violations > 0 {
		return fmt.Errorf("%d protocol invariant violation(s) across %d run(s)", violations, runs)
	}
	return nil
}

// replayTrace runs the scenario's grid against a recorded SWF workload
// instead of the synthetic job stream (paper future work §VI).
func replayTrace(cfg scenario.Config, path string, maxJobs int, timeScale float64, runs int) ([]*metrics.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	trace, err := swf.Parse(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}

	var results []*metrics.Result
	for run := 0; run < runs; run++ {
		d, err := scenario.Prepare(cfg, run)
		if err != nil {
			return nil, err
		}
		jobs, err := swf.Convert(trace, rand.New(rand.NewSource(d.Seed+11)), swf.ConvertOptions{
			MaxJobs:        maxJobs,
			TimeScale:      timeScale,
			SkipIncomplete: true,
			Hosts:          d.Profiles,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range jobs {
			p := p
			d.Engine.ScheduleAt(p.SubmittedAt, func() {
				target := d.RandomNode()
				if err := target.Submit(p); err != nil {
					fmt.Fprintln(os.Stderr, "ariasim: trace submit:", err)
				}
			})
		}
		// Let the trace tail drain.
		if end := jobs[len(jobs)-1].SubmittedAt + 24*time.Hour; d.Config.Horizon < end {
			d.Config.Horizon = end
		}
		res := d.Finish()
		res.Scenario = cfg.Name + "+swf"
		results = append(results, res)
	}
	return results, nil
}

func printCatalog(w io.Writer) error {
	fmt.Fprintf(w, "%-14s %-6s %s\n", "NAME", "RESCH", "DESCRIPTION")
	for _, c := range scenario.Catalog() {
		resched := "no"
		if c.Rescheduling() {
			resched = "yes"
		}
		fmt.Fprintf(w, "%-14s %-6s %s\n", c.Name, resched, c.Description)
	}
	return nil
}

func printResult(w io.Writer, run int, res *metrics.Result, series bool) {
	fmt.Fprintf(w, "scenario %s run %d (seed %d, %d nodes, horizon %v)\n",
		res.Scenario, run, res.Seed, res.Nodes, res.Horizon)
	fmt.Fprintf(w, "  jobs:        %d submitted, %d completed, %d failed\n",
		res.Submitted, res.Completed, res.Failed)
	fmt.Fprintf(w, "  assignments: %d total, %d reschedules\n", res.Assignments, res.Reschedules)
	fmt.Fprintf(w, "  times:       waiting %v, execution %v, completion %v\n",
		res.AvgWaiting.Round(time.Second), res.AvgExecution.Round(time.Second),
		res.AvgCompletion.Round(time.Second))
	fmt.Fprintf(w, "  completion:  p50 %v, p95 %v, max %v\n",
		res.CompletionP50.Round(time.Second), res.CompletionP95.Round(time.Second),
		res.CompletionMax.Round(time.Second))
	if res.DuplicateStarts > 0 {
		fmt.Fprintf(w, "  duplicates:  %d extra executions\n", res.DuplicateStarts)
	}
	fmt.Fprintf(w, "  balance:     jain index %.3f\n", res.LoadJainIndex)
	if res.Faults.Any() {
		fmt.Fprintf(w, "  faults:      %d dropped (%d by partition), %d duplicated; %d assign retries, %d recovered\n",
			res.Faults.Dropped, res.Faults.PartitionDropped, res.Faults.Duplicated,
			res.Faults.Retried, res.Faults.Recovered)
	}
	if res.Directory.Any() {
		fmt.Fprintf(w, "  directory:   %d hits (%d probes), %d misses, %d fallbacks, %d evictions\n",
			res.Directory.Hits, res.Directory.Probes, res.Directory.Misses,
			res.Directory.Fallbacks, res.Directory.EvictionTotal())
	}
	if res.DeadlineJobs > 0 {
		fmt.Fprintf(w, "  deadlines:   %d missed of %d; lateness %v, missed time %v\n",
			res.MissedDeadlines, res.DeadlineJobs,
			res.AvgLateness.Round(time.Second), res.AvgMissedTime.Round(time.Second))
	}
	if res.SharedState.Any() {
		fmt.Fprintf(w, "  sharedstate: %d commits, %d granted (%.2f attempts each), %d conflicts (%.2f rate), %d flood fallbacks\n",
			res.SharedState.Commits, res.SharedState.Granted,
			float64(res.SharedState.GrantAttempts)/math.Max(1, float64(res.SharedState.Granted)),
			res.SharedState.ConflictTotal(), res.SharedState.ConflictRate(),
			res.SharedState.Fallbacks)
	}
	for _, typ := range []core.MsgType{core.MsgRequest, core.MsgAccept, core.MsgInform, core.MsgAssign, core.MsgNotify, core.MsgCancel, core.MsgAssignAck, core.MsgCommit, core.MsgConflict} {
		t, ok := res.Traffic[typ]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  traffic:     %-7s %8d msgs %10.2f MB\n", typ, t.Count, float64(t.Bytes)/(1<<20))
	}
	fmt.Fprintf(w, "  overhead:    %.2f MB total, %.1f KB/node, %.1f bps/node\n",
		float64(res.TotalBytes)/(1<<20), res.BytesPerNode/(1<<10), res.BandwidthBPS)
	if series {
		fmt.Fprintf(w, "  completed series: %v\n", res.CompletedSeries)
		idle := make([]int, len(res.IdleSeries))
		for i, s := range res.IdleSeries {
			idle[i] = s.Idle
		}
		fmt.Fprintf(w, "  idle series: %v\n", idle)
	}
}

func printAggregate(w io.Writer, agg *metrics.Aggregate) {
	if agg == nil {
		return
	}
	dur := func(s stats.Summary) string {
		return fmt.Sprintf("%v ±%v",
			stats.SecondsToDuration(s.Mean).Round(time.Second),
			stats.SecondsToDuration(s.StdDev).Round(time.Second))
	}
	fmt.Fprintf(w, "aggregate over %d runs\n", agg.Runs)
	fmt.Fprintf(w, "  completed:   %.1f ±%.1f\n", agg.Completed.Mean, agg.Completed.StdDev)
	fmt.Fprintf(w, "  waiting:     %s\n", dur(agg.AvgWaitingSec))
	fmt.Fprintf(w, "  execution:   %s\n", dur(agg.AvgExecutionSec))
	fmt.Fprintf(w, "  completion:  %s\n", dur(agg.AvgCompletionSec))
	fmt.Fprintf(w, "  reschedules: %.1f ±%.1f\n", agg.Reschedules.Mean, agg.Reschedules.StdDev)
	if agg.MissedDeadlines.Mean > 0 || agg.AvgLatenessSec.Mean > 0 {
		fmt.Fprintf(w, "  missed deadlines: %.1f ±%.1f\n",
			agg.MissedDeadlines.Mean, agg.MissedDeadlines.StdDev)
	}
	fmt.Fprintf(w, "  bandwidth:   %.1f bps/node\n", agg.BandwidthBPS.Mean)
}

func printTSV(w io.Writer, results []*metrics.Result) error {
	fmt.Fprintln(w, "scenario\trun_seed\tnodes\tsubmitted\tcompleted\tfailed\treschedules\tavg_waiting_s\tavg_execution_s\tavg_completion_s\tmissed_deadlines\ttotal_bytes\tbps_per_node")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%d\t%d\t%.2f\n",
			r.Scenario, r.Seed, r.Nodes, r.Submitted, r.Completed, r.Failed,
			r.Reschedules, r.AvgWaiting.Seconds(), r.AvgExecution.Seconds(),
			r.AvgCompletion.Seconds(), r.MissedDeadlines, r.TotalBytes, r.BandwidthBPS)
	}
	return nil
}
