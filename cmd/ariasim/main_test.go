package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListCatalog(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"FCFS", "iMixed", "iInform30m", "iAccuracyBad"} {
		if !strings.Contains(out, name) {
			t.Fatalf("catalog listing missing %s:\n%s", name, out)
		}
	}
}

func TestRunSmallScenarioText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scenario", "Mixed", "-scale", "0.03"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scenario Mixed run 0", "jobs:", "traffic:", "overhead:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scenario", "Mixed", "-scale", "0.03", "-tsv"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("TSV lines = %d, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scenario\trun_seed") {
		t.Fatalf("TSV header wrong: %q", lines[0])
	}
	if fields := strings.Split(lines[1], "\t"); len(fields) != 13 {
		t.Fatalf("TSV row has %d fields, want 13", len(fields))
	}
}

func TestRunAggregateOverRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scenario", "Mixed", "-scale", "0.03", "-runs", "2"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aggregate over 2 runs") {
		t.Fatalf("missing aggregate block:\n%s", buf.String())
	}
}

func TestRunBaseline(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scenario", "Mixed", "-scale", "0.03", "-baseline", "centralized"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Mixed+centralized") {
		t.Fatalf("baseline label missing:\n%s", buf.String())
	}
}

func TestRunSWFReplay(t *testing.T) {
	var buf bytes.Buffer
	sample := filepath.Join("..", "..", "internal", "swf", "testdata", "sample.swf")
	if err := run(&buf, []string{"-scenario", "iMixed", "-scale", "0.03", "-swf", sample}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "iMixed+swf") {
		t.Fatalf("trace replay label missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown scenario", []string{"-scenario", "nope"}},
		{"bad scale", []string{"-scenario", "Mixed", "-scale", "7"}},
		{"bad baseline", []string{"-scenario", "Mixed", "-baseline", "oracle"}},
		{"swf plus baseline", []string{"-scenario", "Mixed", "-swf", "x.swf", "-baseline", "random"}},
		{"missing swf file", []string{"-scenario", "Mixed", "-swf", "/does/not/exist.swf"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tt.args); err == nil {
				t.Fatalf("run(%v) succeeded", tt.args)
			}
		})
	}
}

func TestRunDOTExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "overlay.dot")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scenario", "Mixed", "-scale", "0.03", "-dot", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph \"Mixed\"") || !strings.Contains(string(data), "--") {
		t.Fatalf("DOT content wrong:\n%.200s", data)
	}
}
