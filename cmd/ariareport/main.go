// Command ariareport analyzes a JSONL lifecycle event log produced by a
// live ariad node (-events) or any eventlog.Writer: per-job latency
// statistics, rescheduling activity, and failure accounting.
//
// Usage:
//
//	ariareport events.jsonl
//	ariad -events events.jsonl & ... ; ariareport events.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/stats"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ariareport:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ariareport", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: ariareport <events.jsonl>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	events, err := eventlog.Read(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return report(w, events)
}

// jobTrace accumulates one job's lifecycle from the event stream.
type jobTrace struct {
	submittedAt float64
	assigned    int
	rescheduled int
	started     int
	completed   bool
	failed      bool
	waitSec     float64
	execSec     float64
	doneAt      float64
}

func report(w io.Writer, events []eventlog.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("event log is empty")
	}
	traces := make(map[job.UUID]*jobTrace)
	get := func(uuid job.UUID) *jobTrace {
		t, ok := traces[uuid]
		if !ok {
			t = &jobTrace{submittedAt: -1}
			traces[uuid] = t
		}
		return t
	}
	// Message transmissions derived from trace spans (present when the
	// log came from a traced node): flood origins, forwards, and directed
	// probes report the copies they sent via Fanout; each offer is one
	// ACCEPT and each remote assign one ASSIGN on the wire.
	msgs := make(map[string]int)
	// Optimistic-commit accounting (present when the node ran the
	// shared-state arm): each commit span is one COMMIT on the wire, each
	// non-timeout conflict one CONFLICT reply; timeouts are initiator-side
	// verdicts with no message of their own.
	var commits, commitRetries, conflicts, commitTimeouts, commitFallbacks int
	var span float64
	for _, e := range events {
		if e.At > span {
			span = e.At
		}
		if e.Kind == eventlog.KindSpan {
			switch e.Span {
			case core.SpanFloodOrigin, core.SpanForward, core.SpanDirectedProbe:
				msgs[e.Msg] += e.Fanout
			case core.SpanOffer:
				msgs[core.MsgAccept.String()]++
			case core.SpanAssign, core.SpanReschedule:
				if e.Peer != e.Node {
					msgs[core.MsgAssign.String()]++
				}
			case core.SpanCommit:
				msgs[core.MsgCommit.String()]++
				commits++
				if e.Attempt > 1 {
					commitRetries++
				}
			case core.SpanConflict:
				if e.Reason == "timeout" {
					commitTimeouts++
				} else {
					msgs[core.MsgConflict.String()]++
					conflicts++
				}
			case core.SpanCommitFallback:
				commitFallbacks++
			}
			continue
		}
		t := get(e.UUID)
		switch e.Kind {
		case eventlog.KindSubmitted:
			t.submittedAt = e.At
		case eventlog.KindAssigned:
			t.assigned++
		case eventlog.KindRescheduled:
			t.rescheduled++
		case eventlog.KindStarted:
			t.started++
		case eventlog.KindCompleted:
			t.completed = true
			t.waitSec = e.WaitSec
			t.execSec = e.ExecSec
			t.doneAt = e.At
		case eventlog.KindFailed:
			t.failed = true
		}
	}

	var (
		completed, failed, inFlight, duplicates int
		reschedules                             int
		waits, execs, completions               []float64
	)
	for _, t := range traces {
		reschedules += t.rescheduled
		if t.started > 1 {
			duplicates += t.started - 1
		}
		switch {
		case t.completed:
			completed++
			waits = append(waits, t.waitSec)
			execs = append(execs, t.execSec)
			if t.submittedAt >= 0 {
				completions = append(completions, t.doneAt-t.submittedAt)
			}
		case t.failed:
			failed++
		default:
			inFlight++
		}
	}

	dur := func(sec float64) string {
		return stats.SecondsToDuration(sec).Round(time.Second).String()
	}
	fmt.Fprintf(w, "event log: %d events over %s, %d jobs\n",
		len(events), dur(span), len(traces))
	fmt.Fprintf(w, "jobs: %d completed, %d failed, %d in flight\n",
		completed, failed, inFlight)
	fmt.Fprintf(w, "rescheduling: %d moves, %d duplicate executions\n",
		reschedules, duplicates)
	if len(waits) > 0 {
		fmt.Fprintf(w, "waiting:    mean %s, p95 %s\n",
			dur(stats.Mean(waits)), dur(stats.Percentile(waits, 95)))
		fmt.Fprintf(w, "execution:  mean %s, p95 %s\n",
			dur(stats.Mean(execs)), dur(stats.Percentile(execs, 95)))
	}
	if len(completions) > 0 {
		fmt.Fprintf(w, "completion: mean %s, p50 %s, p95 %s, max %s\n",
			dur(stats.Mean(completions)), dur(stats.Percentile(completions, 50)),
			dur(stats.Percentile(completions, 95)), dur(stats.Max(completions)))
	}
	if len(msgs) > 0 {
		types := make([]string, 0, len(msgs))
		for typ := range msgs {
			types = append(types, typ)
		}
		sort.Strings(types)
		for _, typ := range types {
			line := fmt.Sprintf("traffic:    %-8s %7d msgs", typ, msgs[typ])
			if completed > 0 {
				line += fmt.Sprintf("  %.1f msgs/job", float64(msgs[typ])/float64(completed))
			}
			fmt.Fprintln(w, line)
		}
	}
	if commits > 0 {
		fmt.Fprintf(w, "commits:    %d sent, %d retries (%.2f retry rate), %d conflicts + %d timeouts (%.2f conflict rate), %d flood fallbacks\n",
			commits, commitRetries, float64(commitRetries)/float64(commits),
			conflicts, commitTimeouts, float64(conflicts+commitTimeouts)/float64(commits),
			commitFallbacks)
	}
	return nil
}
