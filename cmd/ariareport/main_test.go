package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

func writeSampleLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := eventlog.NewWriter(f)
	mk := func(uuid job.UUID) *job.Job {
		j := job.New(job.Profile{
			UUID: uuid,
			Req: resource.Requirements{
				Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
			},
			ERT:   time.Hour,
			Class: job.ClassBatch,
		})
		j.State = job.StateCompleted
		j.StartedAt = 30 * time.Minute
		j.CompletedAt = 90 * time.Minute
		return j
	}
	a := mk("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	b := mk("bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	w.JobSubmitted(0, 1, a.Profile)
	w.JobAssigned(time.Second, a.UUID, 1, 2, 100, false)
	w.JobAssigned(time.Minute, a.UUID, 2, 3, 50, true)
	w.JobStarted(30*time.Minute, 3, a.UUID)
	w.JobCompleted(90*time.Minute, 3, a)
	w.JobSubmitted(time.Minute, 1, b.Profile)
	w.JobFailed(2*time.Minute, 1, b.UUID, "no candidate found")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportFromLog(t *testing.T) {
	path := writeSampleLog(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 jobs",
		"1 completed, 1 failed, 0 in flight",
		"rescheduling: 1 moves, 0 duplicate executions",
		"completion:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{}); err == nil {
		t.Fatal("accepted missing path")
	}
	if err := run(&buf, []string{"/does/not/exist.jsonl"}); err == nil {
		t.Fatal("accepted missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{empty}); err == nil {
		t.Fatal("accepted empty log")
	}
}
