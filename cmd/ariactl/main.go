// Command ariactl talks to a live ariad node's control endpoint: it submits
// jobs into the grid and inspects node state.
//
// Usage:
//
//	ariactl -daemon 127.0.0.1:7500 -ert 30s -arch AMD64 -os LINUX
//	ariactl -daemon 127.0.0.1:7500 -ert 1m -deadline 5m     # deadline job
//	ariactl -daemon 127.0.0.1:7500 -status
//	ariactl -daemon 127.0.0.1:7500 -trace 8f3a...   # causal trace tree
//	ariactl -daemon 127.0.0.1:7500 -directory       # live resource directory
//	ariactl -daemon 127.0.0.1:7500 -members         # peer liveness verdicts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/smartgrid/aria/internal/ctl"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ariactl:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ariactl", flag.ContinueOnError)
	var (
		daemon   = fs.String("daemon", "127.0.0.1:7500", "control endpoint of an ariad node")
		status   = fs.Bool("status", false, "query node status instead of submitting")
		queue    = fs.Bool("queue", false, "list the node's running and queued jobs instead of submitting")
		traceID  = fs.String("trace", "", "print the causal trace tree of this job UUID instead of submitting")
		dirDump  = fs.Bool("directory", false, "dump the node's live resource directory instead of submitting")
		members  = fs.Bool("members", false, "dump the node's peer liveness verdicts instead of submitting")
		ert      = fs.String("ert", "1m", "estimated running time (Go duration)")
		archStr  = fs.String("arch", "AMD64", "required architecture")
		osStr    = fs.String("os", "LINUX", "required operating system")
		memGB    = fs.Int("mem", 1, "required memory (GB)")
		diskGB   = fs.Int("disk", 1, "required disk (GB)")
		deadline = fs.String("deadline", "", "deadline from now (empty = batch job)")
		priority = fs.Int("priority", 0, "job priority (priority policy only)")
		startAft = fs.String("start-after", "", "advance reservation: earliest start from now (empty = none)")
		count    = fs.Int("count", 1, "number of identical jobs to submit")
		timeout  = fs.Duration("timeout", 5*time.Second, "request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *status {
		resp, err := ctl.Call(*daemon, ctl.Request{Op: ctl.OpStatus}, *timeout)
		if err != nil {
			return err
		}
		if resp.Error != "" {
			return fmt.Errorf("daemon: %s", resp.Error)
		}
		fmt.Fprintf(w, "node %d: %s policy=%s queue=%d busy=%v alive=%v\n",
			resp.NodeID, resp.Profile, resp.Policy, resp.QueueLen, resp.Busy, resp.Alive)
		return nil
	}

	if *queue {
		resp, err := ctl.Call(*daemon, ctl.Request{Op: ctl.OpQueue}, *timeout)
		if err != nil {
			return err
		}
		if resp.Error != "" {
			return fmt.Errorf("daemon: %s", resp.Error)
		}
		if resp.RunningUUID != "" {
			fmt.Fprintf(w, "running: %s\n", resp.RunningUUID)
		} else {
			fmt.Fprintln(w, "running: (idle)")
		}
		for i, uuid := range resp.Queued {
			fmt.Fprintf(w, "queued[%d]: %s\n", i, uuid)
		}
		return nil
	}

	if *dirDump {
		resp, err := ctl.Call(*daemon, ctl.Request{Op: ctl.OpDirectory}, *timeout)
		if err != nil {
			return err
		}
		if resp.Error != "" {
			return fmt.Errorf("daemon: %s", resp.Error)
		}
		if len(resp.Directory) == 0 {
			fmt.Fprintf(w, "node %d: directory empty or disabled\n", resp.NodeID)
			return nil
		}
		fmt.Fprintf(w, "node %d: %d directory entr(ies)\n", resp.NodeID, len(resp.Directory))
		for _, e := range resp.Directory {
			fmt.Fprintf(w, "  node %-6d %s  inc=%d  age=%s  load=%d\n", e.NodeID, e.Profile, e.Incarnation, e.Age, e.Load)
		}
		return nil
	}

	if *members {
		resp, err := ctl.Call(*daemon, ctl.Request{Op: ctl.OpMembers}, *timeout)
		if err != nil {
			return err
		}
		if resp.Error != "" {
			return fmt.Errorf("daemon: %s", resp.Error)
		}
		if len(resp.Members) == 0 {
			fmt.Fprintf(w, "node %d: no tracked peers (membership plane off?)\n", resp.NodeID)
			return nil
		}
		fmt.Fprintf(w, "node %d: %d tracked peer(s)\n", resp.NodeID, len(resp.Members))
		for _, m := range resp.Members {
			fmt.Fprintf(w, "  node %-6d %s\n", m.NodeID, m.State)
		}
		return nil
	}

	if *traceID != "" {
		resp, err := ctl.Call(*daemon, ctl.Request{Op: ctl.OpTrace, UUID: *traceID}, *timeout)
		if err != nil {
			return err
		}
		if resp.Error != "" {
			return fmt.Errorf("daemon: %s", resp.Error)
		}
		if resp.TraceCount == 0 {
			fmt.Fprintf(w, "node %d retains no spans for job %s\n", resp.NodeID, *traceID)
			return nil
		}
		fmt.Fprintf(w, "job %s: %d span(s) retained on node %d\n", *traceID, resp.TraceCount, resp.NodeID)
		fmt.Fprint(w, resp.Tree)
		return nil
	}

	for i := 0; i < *count; i++ {
		resp, err := ctl.Call(*daemon, ctl.Request{
			Op:          ctl.OpSubmit,
			Arch:        *archStr,
			OS:          *osStr,
			MinMemoryGB: *memGB,
			MinDiskGB:   *diskGB,
			ERT:         *ert,
			Deadline:    *deadline,
			Priority:    *priority,
			StartAfter:  *startAft,
		}, *timeout)
		if err != nil {
			return err
		}
		if resp.Error != "" {
			return fmt.Errorf("daemon: %s", resp.Error)
		}
		fmt.Fprintf(w, "submitted %s\n", resp.UUID)
	}
	return nil
}
