package main

import (
	"bytes"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/ctl"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/transport"
)

// startDaemon stands up a one-node grid with a control server, returning
// the control address.
func startDaemon(t *testing.T) string {
	t.Helper()
	cluster := transport.NewInprocCluster(1, nil)
	t.Cleanup(cluster.Close)
	profile := resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.5,
	}
	cfg := core.DefaultConfig()
	cfg.AcceptTimeout = 50 * time.Millisecond
	n, err := cluster.AddNode(0, profile, sched.FCFS, cfg, nil, job.ARTModel{Mode: job.DriftNone})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	srv := ctl.NewServer(ln, n, func() time.Duration { return time.Since(start) }, rand.New(rand.NewSource(3)))
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	})
	return srv.Addr()
}

func TestSubmitViaCLI(t *testing.T) {
	addr := startDaemon(t)
	var buf bytes.Buffer
	err := run(&buf, []string{"-daemon", addr, "-ert", "50ms", "-count", "2"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("submitted %d jobs, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "submitted ") {
			t.Fatalf("unexpected line %q", line)
		}
	}
}

func TestStatusViaCLI(t *testing.T) {
	addr := startDaemon(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{"-daemon", addr, "-status"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "node 0:") || !strings.Contains(out, "policy=FCFS") {
		t.Fatalf("status output wrong: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	addr := startDaemon(t)
	tests := []struct {
		name string
		args []string
	}{
		{"unreachable daemon", []string{"-daemon", "127.0.0.1:1", "-timeout", "200ms"}},
		{"bad ert", []string{"-daemon", addr, "-ert", "soon"}},
		{"bad arch", []string{"-daemon", addr, "-arch", "Z80"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tt.args); err == nil {
				t.Fatalf("run(%v) succeeded", tt.args)
			}
		})
	}
}

func TestQueueViaCLI(t *testing.T) {
	addr := startDaemon(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{"-daemon", addr, "-queue"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "running:") {
		t.Fatalf("queue output wrong: %s", buf.String())
	}
}
