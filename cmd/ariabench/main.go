// Command ariabench measures simulation-kernel throughput on synthetic
// SWF replays and records the results in BENCH_sim.json, the regression
// reference scripts/bench_check.sh checks in CI.
//
// Each case re-execs this binary as a fresh child process so peak RSS
// (VmHWM from /proc/self/status) reflects that case alone rather than the
// high-water mark of whichever case ran first.
//
//	go run ./cmd/ariabench -out BENCH_sim.json          # full sweep
//	go run ./cmd/ariabench -check BENCH_sim.json        # CI regression gate
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/scenario"
	"github.com/smartgrid/aria/internal/sim"
)

// seedBaselineEvPerSec is the 10k-node replay throughput of the single-heap
// engine as of the commit before the sharded kernel landed, measured on the
// development container (1 CPU). It anchors the "speedup over the pre-shard
// engine" ratio; absolute numbers are machine-dependent and never gate CI.
const seedBaselineEvPerSec = 312037

type benchCase struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	Shards int    `json:"shards"`
	Nodes  int    `json:"nodes"`
	Jobs   int    `json:"jobs"`
}

var cases = []benchCase{
	{"legacy-2k", "legacy", 0, 2000, 1000},
	{"sharded4-2k", "sharded", 4, 2000, 1000},
	{"legacy-10k", "legacy", 0, 10000, 5000},
	{"sharded4-10k", "sharded", 4, 10000, 5000},
	{"sharded4-100k", "sharded", 4, 100000, 1000},
}

type caseResult struct {
	benchCase
	GoMaxProcs   int     `json:"gomaxprocs,omitempty"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	WallSeconds  float64 `json:"wall_seconds"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	Completed    int     `json:"completed"`
	Submitted    int     `json:"submitted"`
}

type report struct {
	Generated string             `json:"generated"`
	GoVersion string             `json:"go_version"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	CPUs      int                `json:"cpus"`
	Baseline  baselineInfo       `json:"baseline"`
	Cases     []caseResult       `json:"cases"`
	Ratios    map[string]float64 `json:"ratios"`
}

type baselineInfo struct {
	SeedSingleHeapEvPerSec float64 `json:"seed_single_heap_ev_per_sec"`
	Note                   string  `json:"note"`
}

func main() {
	runCase := flag.String("run-case", "", "internal: run one named case and print its JSON result")
	out := flag.String("out", "BENCH_sim.json", "output path for the benchmark report")
	check := flag.String("check", "", "compare a fresh 2k run against this report; exit 1 on >15% ratio regression")
	quick := flag.Bool("quick", false, "skip the 100k case")
	gomaxprocs := flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4) to additionally sweep the sharded kernel across; per-setting events/sec land in the report")
	flag.Parse()

	if *runCase != "" {
		for _, c := range cases {
			if c.Name == *runCase {
				res, err := execute(c)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ariabench %s: %v\n", c.Name, err)
					os.Exit(1)
				}
				json.NewEncoder(os.Stdout).Encode(res)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "ariabench: unknown case %q\n", *runCase)
		os.Exit(1)
	}

	if *check != "" {
		if err := checkRegression(*check); err != nil {
			fmt.Fprintf(os.Stderr, "ariabench check: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ariabench check: ok")
		return
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Baseline: baselineInfo{
			SeedSingleHeapEvPerSec: seedBaselineEvPerSec,
			Note: "10k replay on the pre-shard single-heap engine (1-CPU dev container); " +
				"sharded4-10k events_per_sec / this value is the kernel-efficiency speedup",
		},
		Ratios: map[string]float64{},
	}
	for _, c := range cases {
		if *quick && c.Nodes > 10000 {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%d nodes, %d jobs)...\n", c.Name, c.Nodes, c.Jobs)
		res, err := runChild(c.Name, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ariabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  %.0f ev/s, %.1fs wall, %.0f MB peak RSS\n",
			res.EventsPerSec, res.WallSeconds, float64(res.PeakRSSBytes)/(1<<20))
		rep.Cases = append(rep.Cases, res)
	}
	for _, scale := range []string{"2k", "10k"} {
		l, s := find(rep.Cases, "legacy-"+scale), find(rep.Cases, "sharded4-"+scale)
		if l != nil && s != nil && l.EventsPerSec > 0 {
			rep.Ratios["sharded4_vs_legacy_"+scale] = s.EventsPerSec / l.EventsPerSec
		}
	}
	if s := find(rep.Cases, "sharded4-10k"); s != nil {
		rep.Ratios["sharded4_10k_vs_seed_single_heap"] = s.EventsPerSec / seedBaselineEvPerSec
	}
	if *gomaxprocs != "" {
		if err := sweepGoMaxProcs(&rep, *gomaxprocs, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "ariabench: %v\n", err)
			os.Exit(1)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ariabench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ariabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cases)\n", *out, len(rep.Cases))
}

func find(rs []caseResult, name string) *caseResult {
	for i := range rs {
		if rs[i].Name == name {
			return &rs[i]
		}
	}
	return nil
}

// sweepGoMaxProcs re-runs the sharded reference case once per requested
// GOMAXPROCS setting (the 10k replay, or the 2k one under -quick) and
// appends each run as its own case plus a scaling ratio against the first
// setting in the list.
func sweepGoMaxProcs(rep *report, list string, quick bool) error {
	sweep := "sharded4-10k"
	if quick {
		sweep = "sharded4-2k"
	}
	var baseProcs int
	var baseEvPerSec float64
	for _, tok := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -gomaxprocs value %q", tok)
		}
		fmt.Fprintf(os.Stderr, "running %s at GOMAXPROCS=%d...\n", sweep, n)
		res, err := runChild(sweep, n)
		if err != nil {
			return err
		}
		res.Name = fmt.Sprintf("%s-gmp%d", sweep, n)
		fmt.Fprintf(os.Stderr, "  %.0f ev/s, %.1fs wall, %.0f MB peak RSS\n",
			res.EventsPerSec, res.WallSeconds, float64(res.PeakRSSBytes)/(1<<20))
		rep.Cases = append(rep.Cases, res)
		if baseProcs == 0 {
			baseProcs, baseEvPerSec = n, res.EventsPerSec
		} else if baseEvPerSec > 0 {
			key := fmt.Sprintf("%s_gmp%d_vs_gmp%d", strings.ReplaceAll(sweep, "-", "_"), n, baseProcs)
			rep.Ratios[key] = res.EventsPerSec / baseEvPerSec
		}
	}
	return nil
}

// runChild re-execs this binary for one case so /proc/self/status VmHWM in
// the child reflects only that case's allocations. A positive gomaxprocs
// pins the child's GOMAXPROCS via the environment (the Go runtime honors
// it at startup, before any scheduler state exists).
func runChild(name string, gomaxprocs int) (caseResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return caseResult{}, err
	}
	cmd := exec.Command(exe, "-run-case", name)
	if gomaxprocs > 0 {
		cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", gomaxprocs))
	}
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return caseResult{}, fmt.Errorf("case %s: %w", name, err)
	}
	var res caseResult
	if err := json.Unmarshal(outBuf, &res); err != nil {
		return caseResult{}, fmt.Errorf("case %s: parsing child output: %w", name, err)
	}
	return res, nil
}

// execute runs one replay in-process. Wall time covers event execution only
// (the Finish run), not overlay construction.
func execute(c benchCase) (caseResult, error) {
	cfg, err := scenario.ByName("iMixed")
	if err != nil {
		return caseResult{}, err
	}
	cfg.Nodes = c.Nodes
	cfg.Shards = c.Shards
	cfg.Horizon = 3 * time.Hour
	d, err := scenario.Prepare(cfg, 0)
	if err != nil {
		return caseResult{}, err
	}
	if _, ok := d.Engine.(*sim.Sharded); ok != (c.Shards > 0) {
		return caseResult{}, fmt.Errorf("engine/shards mismatch: sharded=%v shards=%d", ok, c.Shards)
	}
	if _, err := scenario.ReplaySWF(d, scenario.SyntheticTrace(c.Jobs, 42)); err != nil {
		return caseResult{}, err
	}
	start := time.Now()
	res := d.Finish()
	wall := time.Since(start)
	if res.Completed == 0 {
		return caseResult{}, fmt.Errorf("replay completed nothing")
	}
	events := d.Engine.Events()
	return caseResult{
		benchCase:    c,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Events:       events,
		EventsPerSec: float64(events) / wall.Seconds(),
		WallSeconds:  wall.Seconds(),
		PeakRSSBytes: peakRSS(),
		Completed:    res.Completed,
		Submitted:    res.Submitted,
	}, nil
}

// peakRSS reads VmHWM from /proc/self/status; 0 on platforms without it.
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// checkRegression replays the 2k pair and compares the sharded/legacy ratio
// against the recorded report. The ratio is machine-independent (both runs
// share the host), so CI hardware differences don't produce false alarms;
// absolute throughput in the report is informational only.
func checkRegression(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	recorded, ok := rep.Ratios["sharded4_vs_legacy_2k"]
	if !ok || recorded <= 0 {
		return fmt.Errorf("%s has no sharded4_vs_legacy_2k ratio", path)
	}
	legacy, err := runChild("legacy-2k", 0)
	if err != nil {
		return err
	}
	sharded, err := runChild("sharded4-2k", 0)
	if err != nil {
		return err
	}
	current := sharded.EventsPerSec / legacy.EventsPerSec
	fmt.Printf("sharded4/legacy 2k ratio: current %.3f, recorded %.3f\n", current, recorded)
	if current < recorded*0.85 {
		return fmt.Errorf("sharded kernel regressed >15%%: ratio %.3f < %.3f (recorded %.3f × 0.85)",
			current, recorded*0.85, recorded)
	}
	return nil
}
