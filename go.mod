module github.com/smartgrid/aria

go 1.23
