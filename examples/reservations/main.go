// Reservations: advance reservations and EASY backfill — the paper's
// future-work local policies — running on a simulated grid. A job reserved
// for a future instant blocks the head of its queue, but short jobs
// backfill the idle window in front of it without delaying the reservation.
//
//	go run ./examples/reservations
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reservations:", err)
		os.Exit(1)
	}
}

func run() error {
	// A deliberately tiny grid — one matching node — so every decision
	// is visible in the timeline below.
	engine := sim.NewEngine(1)
	graph := overlay.NewGraph()
	graph.AddNode(0)
	graph.AddNode(1)
	graph.AddLink(0, 1)
	cluster := transport.NewSimCluster(engine, graph, overlay.FixedLatency(5*time.Millisecond))
	rec := metrics.NewRecorder()

	worker := resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.0,
	}
	bystander := worker
	bystander.Arch = resource.ArchPOWER

	cfg := core.DefaultConfig()
	cfg.InformJobs = 0 // keep the schedule readable
	art := job.ARTModel{Mode: job.DriftNone}
	if _, err := cluster.AddNode(0, worker, sched.FCFS, cfg, rec, art); err != nil {
		return err
	}
	if _, err := cluster.AddNode(1, bystander, sched.FCFS, cfg, rec, art); err != nil {
		return err
	}
	cluster.StartAll()

	rng := rand.New(rand.NewSource(2))
	req := resource.Requirements{
		Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
	}
	mk := func(name string, ert, earliestStart time.Duration) (job.Profile, string) {
		return job.Profile{
			UUID: job.NewUUID(rng), Req: req, ERT: ert,
			Class: job.ClassBatch, EarliestStart: earliestStart,
		}, name
	}

	names := make(map[job.UUID]string)
	node, _ := cluster.Node(0)
	submit := func(p job.Profile, name string) error {
		names[p.UUID] = name
		return node.Submit(p)
	}

	// First a 1h job reserved to start no earlier than t=3h arrives and
	// gets assigned; it holds the queue head. Then a 4h job (too long to
	// finish before the reservation) and two 1h jobs (which fit) arrive.
	reserved, n1 := mk("reserved(1h @3h)", time.Hour, 3*time.Hour)
	if err := submit(reserved, n1); err != nil {
		return err
	}
	engine.Run(30 * time.Second) // reservation is queued before the rest
	long, n2 := mk("long(4h)", 4*time.Hour, 0)
	shortA, n3 := mk("short-a(1h)", time.Hour, 0)
	shortB, n4 := mk("short-b(1h)", time.Hour, 0)
	for _, sub := range []struct {
		p    job.Profile
		name string
	}{{long, n2}, {shortA, n3}, {shortB, n4}} {
		if err := submit(sub.p, sub.name); err != nil {
			return err
		}
	}

	engine.Run(24 * time.Hour)

	outcomes := rec.Outcomes()
	sort.Slice(outcomes, func(i, k int) bool { return outcomes[i].StartedAt < outcomes[k].StartedAt })
	fmt.Println("execution timeline on the single matching node:")
	for _, o := range outcomes {
		mark := ""
		if o.EarliestStart > 0 {
			mark = fmt.Sprintf("  (reserved for %v)", o.EarliestStart)
		}
		fmt.Printf("  %-17s start %-8v end %-8v%s\n",
			names[o.UUID], o.StartedAt, o.CompletedAt, mark)
	}
	fmt.Println()
	fmt.Println("note how the two 1h jobs backfill the window before the t=3h")
	fmt.Println("reservation, the reserved job starts exactly on time, and the 4h")
	fmt.Println("job — which would have delayed the reservation — runs after it.")
	return nil
}
