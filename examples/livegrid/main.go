// Livegrid: the ARiA protocol running in real time — eight concurrent
// nodes exchanging messages through the in-process transport (goroutines,
// wall-clock timers), with every lifecycle event logged as it happens.
// A late-joining fast node demonstrates live dynamic rescheduling.
//
//	go run ./examples/livegrid
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livegrid:", err)
		os.Exit(1)
	}
}

func run() error {
	// Wall-clock protocol timings: decisions in 150 ms, INFORM every
	// 400 ms, reschedule for any improvement above 10 ms.
	cfg := core.DefaultConfig()
	cfg.AcceptTimeout = 150 * time.Millisecond
	cfg.InformInterval = 400 * time.Millisecond
	cfg.RescheduleThreshold = 10 * time.Millisecond

	cluster := transport.NewInprocCluster(7, overlay.FixedLatency(2*time.Millisecond))
	defer cluster.Close()

	obs := &printer{start: time.Now()}
	art := job.ARTModel{Mode: job.DriftSymmetric, Epsilon: 0.1}

	// Eight slow-ish nodes in a ring with chords.
	profile := resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.1,
	}
	const n = 8
	for i := overlay.NodeID(0); i < n; i++ {
		if _, err := cluster.AddNode(i, profile, sched.FCFS, cfg, obs, art); err != nil {
			return err
		}
	}
	for i := overlay.NodeID(0); i < n; i++ {
		if err := cluster.Connect(i, (i+1)%n); err != nil {
			return err
		}
		if err := cluster.Connect(i, (i+3)%n); err != nil {
			return err
		}
	}
	cluster.StartAll()

	// Burst of 12 one-second jobs through node 0: queues build up.
	rng := rand.New(rand.NewSource(99))
	node0, _ := cluster.Node(0)
	var uuids []job.UUID
	for i := 0; i < 12; i++ {
		p := job.Profile{
			UUID: job.NewUUID(rng),
			Req: resource.Requirements{
				Arch: resource.ArchAMD64, OS: resource.OSLinux,
				MinMemoryGB: 1, MinDiskGB: 1,
			},
			ERT:   time.Second,
			Class: job.ClassBatch,
		}
		uuids = append(uuids, p.UUID)
		if err := node0.Submit(p); err != nil {
			return err
		}
	}

	// After one second a much faster node joins live; INFORM floods will
	// reschedule queued jobs onto it.
	time.Sleep(time.Second)
	fast := profile
	fast.PerfIndex = 1.9
	fmt.Println("--- fast node 8 joins the grid ---")
	late, err := cluster.AddNode(8, fast, sched.FCFS, cfg, obs, art)
	if err != nil {
		return err
	}
	for _, nb := range []overlay.NodeID{0, 3, 6} {
		if err := cluster.Connect(8, nb); err != nil {
			return err
		}
	}
	late.Start()

	// Wait for the whole burst to finish (generously bounded).
	deadline := time.After(60 * time.Second)
	for {
		if obs.completedCount() == len(uuids) {
			break
		}
		select {
		case <-deadline:
			return fmt.Errorf("jobs incomplete after 60s: %d of %d",
				obs.completedCount(), len(uuids))
		case <-time.After(50 * time.Millisecond):
		}
	}
	fmt.Printf("all %d jobs done; %d were live-rescheduled\n",
		len(uuids), obs.rescheduleCount())
	return nil
}

// printer logs protocol events with wall-clock offsets.
type printer struct {
	core.NopObserver

	start time.Time

	mu          sync.Mutex
	completed   int
	reschedules int
}

func (p *printer) stamp() string {
	return time.Since(p.start).Round(time.Millisecond).String()
}

func (p *printer) JobAssigned(_ time.Duration, uuid job.UUID, from, to overlay.NodeID, _ sched.Cost, resched bool) {
	verb := "assigned"
	if resched {
		verb = "RESCHEDULED"
		p.mu.Lock()
		p.reschedules++
		p.mu.Unlock()
	}
	fmt.Printf("[%8s] job %s %s %v -> %v\n", p.stamp(), uuid.Short(), verb, from, to)
}

func (p *printer) JobStarted(_ time.Duration, node overlay.NodeID, uuid job.UUID) {
	fmt.Printf("[%8s] job %s started on %v\n", p.stamp(), uuid.Short(), node)
}

func (p *printer) JobCompleted(_ time.Duration, node overlay.NodeID, j *job.Job) {
	p.mu.Lock()
	p.completed++
	p.mu.Unlock()
	fmt.Printf("[%8s] job %s completed on %v\n", p.stamp(), j.UUID.Short(), node)
}

func (p *printer) completedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.completed
}

func (p *printer) rescheduleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reschedules
}
