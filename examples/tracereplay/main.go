// Tracereplay: run the ARiA grid against a recorded workload in Standard
// Workload Format — the paper's future-work item of evaluating with real
// grid traces. Submit instants and requested times come from the trace and
// the recorded runtimes pin each job's actual execution length, so the
// estimate error the protocol experiences is the trace's own.
//
//	go run ./examples/tracereplay
//
// The embedded trace is a small synthetic SWF sample; point the same code
// at any Parallel Workloads Archive file for the real thing
// (cmd/ariasim -swf <file> does exactly that at scenario scale).
package main

import (
	_ "embed"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/scenario"
	"github.com/smartgrid/aria/internal/swf"
)

//go:embed sample.swf
var sampleTrace string

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay:", err)
		os.Exit(1)
	}
}

func run() error {
	trace, err := swf.Parse(strings.NewReader(sampleTrace))
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d jobs over %v (header: computer=%q)\n",
		len(trace.Jobs), trace.Span().Round(time.Minute), trace.Header["Computer"])

	// A small iMixed-style grid hosts the replay.
	cfg := scenario.Baseline().Scaled(0.06)
	cfg.Name = "tracereplay"
	d, err := scenario.Prepare(cfg, 0)
	if err != nil {
		return err
	}

	jobs, err := swf.Convert(trace, rand.New(rand.NewSource(d.Seed)), swf.ConvertOptions{
		SkipIncomplete: true,
		Hosts:          d.Profiles, // keep every trace job schedulable here
	})
	if err != nil {
		return err
	}
	for _, p := range jobs {
		p := p
		d.Engine.ScheduleAt(p.SubmittedAt, func() {
			if err := d.RandomNode().Submit(p); err != nil {
				fmt.Fprintln(os.Stderr, "submit:", err)
			}
		})
	}
	d.Config.Horizon = jobs[len(jobs)-1].SubmittedAt + 24*time.Hour
	res := d.Finish()

	fmt.Printf("replayed %d of %d trace jobs (failures/cancellations skipped)\n",
		res.Submitted, len(trace.Jobs))
	fmt.Printf("completed %d, rescheduled %d en route\n", res.Completed, res.Reschedules)
	fmt.Printf("avg waiting %v | avg execution %v | avg completion %v\n",
		res.AvgWaiting.Round(time.Second),
		res.AvgExecution.Round(time.Second),
		res.AvgCompletion.Round(time.Second))

	// Estimate accuracy the grid experienced is the trace's own: compare
	// each job's requested time (its ERT) with the recorded runtime.
	var optimistic, pessimistic int
	for _, p := range jobs {
		if p.KnownART > p.ERT {
			optimistic++ // users under-requested
		} else {
			pessimistic++
		}
	}
	fmt.Printf("trace estimate quality: %d jobs under-requested, %d over-requested\n",
		optimistic, pessimistic)
	fmt.Printf("per-node traffic: %.1f KB (%.1f bps)\n",
		res.BytesPerNode/1024, res.BandwidthBPS)
	return nil
}
