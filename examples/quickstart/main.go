// Quickstart: build a small simulated ARiA grid, submit a few jobs, and
// watch the fully distributed meta-scheduler place and execute them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/transport"
	"github.com/smartgrid/aria/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const seed = 42
	rng := rand.New(rand.NewSource(seed))

	// 1. A self-organized overlay of 50 nodes (BLATANT-S-style manager
	//    keeps the path length bounded with few links).
	builder, err := overlay.Build(50, overlay.DefaultBlatantConfig(), rng)
	if err != nil {
		return err
	}
	graph := builder.Graph()
	stats := graph.SamplePathStats(rng, 0)
	fmt.Printf("overlay: %d nodes, %d links, avg path %.2f hops\n",
		graph.NumNodes(), graph.NumLinks(), stats.AveragePathLength)

	// 2. Bind ARiA protocol nodes to a discrete-event simulation with
	//    realistic wide-area latencies. Each node gets a random hardware
	//    profile and a random local scheduling policy (FCFS or SJF).
	engine := sim.NewEngine(seed)
	cluster := transport.NewSimCluster(engine, graph, overlay.DefaultLatency(seed))
	rec := metrics.NewRecorder()
	cluster.SetTraffic(rec.OnMessage)

	sampler := resource.NewSampler(rng)
	var profiles []resource.Profile
	for _, id := range graph.Nodes() {
		profile := sampler.Profile()
		policy := sched.FCFS
		if rng.Intn(2) == 0 {
			policy = sched.SJF
		}
		if _, err := cluster.AddNode(id, profile, policy, core.DefaultConfig(), rec, job.DefaultARTModel()); err != nil {
			return err
		}
		profiles = append(profiles, profile)
	}
	cluster.StartAll()

	// 3. Submit 30 random jobs to random nodes, one every 10 seconds of
	//    virtual time. The receiving node becomes the job's initiator:
	//    it floods a REQUEST, collects ACCEPT offers, and delegates via
	//    ASSIGN — no central scheduler anywhere.
	gen, err := workload.NewJobGen(rng, job.ClassBatch)
	if err != nil {
		return err
	}
	gen.Hosts = profiles
	nodes := cluster.Nodes()
	for i := 0; i < 30; i++ {
		at := time.Duration(i) * 10 * time.Second
		target := nodes[rng.Intn(len(nodes))]
		engine.ScheduleAt(at, func() {
			if err := target.Submit(gen.Next(at)); err != nil {
				fmt.Println("submit:", err)
			}
		})
	}

	// 4. Run half a (virtual) day and report.
	engine.Run(12 * time.Hour)
	res := rec.Result("quickstart", seed, graph.NumNodes(), 12*time.Hour, 5*time.Minute)

	fmt.Printf("jobs: %d submitted, %d completed, %d rescheduled en route\n",
		res.Submitted, res.Completed, res.Reschedules)
	fmt.Printf("avg waiting %v | avg execution %v | avg completion %v\n",
		res.AvgWaiting.Round(time.Second),
		res.AvgExecution.Round(time.Second),
		res.AvgCompletion.Round(time.Second))
	for _, typ := range []core.MsgType{core.MsgRequest, core.MsgAccept, core.MsgInform, core.MsgAssign} {
		t := res.Traffic[typ]
		fmt.Printf("traffic %-7s: %5d msgs, %7.1f KB\n", typ, t.Count, float64(t.Bytes)/1024)
	}
	fmt.Printf("protocol overhead: %.1f KB per node over 12h (%.1f bps)\n",
		res.BytesPerNode/1024, res.BandwidthBPS)
	return nil
}
