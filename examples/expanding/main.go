// Expanding grid: nodes keep joining the overlay while a job burst is
// queued, and dynamic rescheduling drains waiting work onto the newcomers —
// a miniature of the paper's Fig. 5.
//
//	go run ./examples/expanding
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "expanding:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, name := range []string{"Expanding", "iExpanding"} {
		cfg, err := scenario.ByName(name)
		if err != nil {
			return err
		}
		cfg = cfg.Scaled(0.125) // ~62 nodes growing by ~25
		cfg.Horizon = scenario.DefaultHorizon
		res, err := scenario.Run(cfg, 0)
		if err != nil {
			return err
		}

		fmt.Printf("%s: %d→%d nodes, %d jobs, rescheduling %v\n",
			name, cfg.Nodes, res.Nodes, res.Submitted, cfg.Rescheduling())
		fmt.Printf("  completed %d, avg completion %v, reschedules %d\n",
			res.Completed, res.AvgCompletion.Round(time.Second), res.Reschedules)

		// Sparkline of idle nodes: a dip while the burst executes, then
		// recovery; with rescheduling on, the dip is deeper (newcomers
		// get drafted) and completion comes sooner.
		fmt.Printf("  idle nodes over time: %s\n\n", sparkline(res.IdleSeriesInts(), 60))
	}
	fmt.Println("expected shape (paper Fig. 5): iExpanding keeps fewer nodes idle")
	fmt.Println("after the expansion starts, because INFORM floods pull queued jobs")
	fmt.Println("onto the newly joined resources.")
	return nil
}

// sparkline renders an integer series with unicode block characters.
func sparkline(series []int, width int) string {
	if len(series) == 0 {
		return "(empty)"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	max := 1
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	step := len(series) / width
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for i := 0; i < len(series); i += step {
		idx := series[i] * (len(blocks) - 1) / max
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
