// Deadline scheduling: run the same deadline-constrained workload with and
// without ARiA's dynamic rescheduling and compare missed deadlines — a
// miniature of the paper's Fig. 4, where rescheduling collapses misses
// from 187 to 4.
//
//	go run ./examples/deadline
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/smartgrid/aria/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deadline:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("deadline campaign: EDF local schedulers, NAL cost function")
	fmt.Println()
	fmt.Printf("%-12s %-8s %-10s %-14s %-14s\n",
		"scenario", "resched", "missed", "avg slack", "avg overrun")

	for _, name := range []string{"Deadline", "iDeadline", "DeadlineH", "iDeadlineH"} {
		cfg, err := scenario.ByName(name)
		if err != nil {
			return err
		}
		// A 1/5-scale run keeps the example fast while preserving the
		// comparison; use `ariaeval -fig 4 -runs 10` for paper scale.
		cfg = cfg.Scaled(0.2)
		cfg.Horizon = scenario.DefaultHorizon // let every job finish
		res, err := scenario.Run(cfg, 0)
		if err != nil {
			return err
		}
		resched := "off"
		if cfg.Rescheduling() {
			resched = "on"
		}
		fmt.Printf("%-12s %-8s %3d of %-4d %-14v %-14v\n",
			name, resched, res.MissedDeadlines, res.DeadlineJobs,
			res.AvgLateness.Round(time.Second), res.AvgMissedTime.Round(time.Second))
	}

	fmt.Println()
	fmt.Println("expected shape (paper Fig. 4): under deadline pressure (the")
	fmt.Println("DeadlineH pair) rescheduling cuts the number of missed deadlines;")
	fmt.Println("the effect grows with load and is strongest at paper scale.")
	return nil
}
