GO ?= go

.PHONY: build test vet race bench bench-sim bench-check fuzz smoke directed-smoke sharedstate-smoke overload-smoke soak-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race is the full concurrency gate: vet plus every test under the race
# detector (the live transports and control plane are the concurrent paths,
# but scheduling everything keeps the gate honest).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-sim regenerates BENCH_sim.json: synthetic SWF replays at 2k/10k/
# 100k nodes on the legacy and sharded kernels, each case in a fresh child
# process for honest peak-RSS numbers.
bench-sim:
	$(GO) run ./cmd/ariabench -out BENCH_sim.json

# bench-check is the CI regression gate: the sharded/legacy throughput
# ratio on a fresh 2k replay must stay within 15% of BENCH_sim.json.
bench-check:
	./scripts/bench_check.sh

# fuzz gives the wire, journal, directory-digest, and gateway-body
# codecs a short adversarial shake (see internal/transport/codec_fuzz_test.go,
# internal/wal/codec_fuzz_test.go, internal/directory/codec_fuzz_test.go,
# and cmd/ariagate/fuzz_test.go for the seed corpora).
fuzz:
	$(GO) test ./internal/transport/ -fuzz FuzzReadMessage -fuzztime 30s
	$(GO) test ./internal/transport/ -fuzz FuzzFrameCorruption -fuzztime 30s
	$(GO) test ./internal/wal/ -fuzz FuzzDecodeRecords -fuzztime 30s
	$(GO) test ./internal/wal/ -fuzz FuzzDecodeState -fuzztime 30s
	$(GO) test ./internal/directory/ -fuzz FuzzDecodeDigests -fuzztime 30s
	$(GO) test ./cmd/ariagate/ -fuzz FuzzParseSpecs -fuzztime 30s

# smoke mirrors the CI trace smokes: one traced repetition each of the
# self-healing churn and the crash-restart recovery scenarios, with the
# causal trace checker auditing every protocol invariant.
smoke:
	$(GO) run ./cmd/ariasim -scenario iChurnHeal -scale 0.06 -runs 1 -seed 1 -trace
	$(GO) run -race ./cmd/ariasim -scenario iCrashRestart -scale 0.06 -runs 1 -seed 1 -trace

# directed-smoke exercises the gossip-fed directory under churn with the
# race detector on; the trace checker audits the directed-discovery
# invariants over the full run.
directed-smoke:
	$(GO) run -race ./cmd/ariasim -scenario iDirectedChurn -scale 0.06 -runs 1 -seed 1 -trace

# sharedstate-smoke exercises the optimistic-commit arm under churn with
# the race detector on; the trace checker audits the commit invariants
# (retry bound, causal chains, exactly-one grant) over the full run.
sharedstate-smoke:
	$(GO) run -race ./cmd/ariasim -scenario iSharedStateChurn -scale 0.06 -runs 1 -seed 1 -trace

# overload-smoke is the live end of the overload-control plane: a traced
# saturation scenario under the race detector, then a real 5-process grid
# behind ariagate sustaining an ariaload campaign (race-enabled binaries,
# bounded queues, capped backoff). Writes BENCH_overload.json.
overload-smoke:
	$(GO) run -race ./cmd/ariasim -scenario iOverload -scale 0.06 -runs 1 -seed 1 -trace
	./scripts/overload_smoke.sh

# soak-smoke is the chaos plane's CI slice: ariasoak drives a real
# 8-daemon grid behind a fault-injecting proxy fabric through a seeded
# schedule of crashes, gray failures, partitions, and slow peers at two
# seeds, auditing execution, leak, directory, and convergence invariants
# live. Writes SOAK_seed<N>.json reports (~1 min per seed).
soak-smoke:
	./scripts/soak_smoke.sh
