GO ?= go

.PHONY: build test vet race bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race is the full concurrency gate: vet plus every test under the race
# detector (the live transports and control plane are the concurrent paths,
# but scheduling everything keeps the gate honest).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# fuzz gives the wire codec a short adversarial shake (see
# internal/transport/codec_fuzz_test.go for the seed corpus).
fuzz:
	$(GO) test ./internal/transport/ -fuzz FuzzReadMessage -fuzztime 30s
