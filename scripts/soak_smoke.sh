#!/usr/bin/env bash
# soak_smoke.sh is the CI-sized chaos soak: race-enabled binaries, then
# ariasoak runs at two pinned seeds, each spawning a real 8-daemon grid
# behind a fault-injecting proxy fabric plus ariagate and ariaload
# (~20 processes per run). Each run executes a deterministic fault
# schedule — SIGKILL+restart, SIGSTOP/SIGCONT gray failures, two-way and
# one-way (deaf-node) partitions, slow-peer windows — while the auditor
# enforces exactly-one execution, no orphans, bounded goroutine/RSS
# growth, no directory poisoning, and convergence after the final heal.
#
# Two seeds keep the schedule diversity honest without blowing the CI
# budget; the phases are sized so the drain outlasts the 20s directory
# TTL (the poison audit's premise). Each seed takes about a minute of
# wall clock on a loaded runner.
#
# Tunables (environment):
#   BASE_PORT  first loopback port (default 27400; a run claims +0..+300)
#   SEEDS      space-separated schedule seeds      (default "1 2")
#   NODES      grid size                           (default 8)
#   OUT_DIR    where per-seed reports land         (default .)
set -euo pipefail

BASE=${BASE_PORT:-27400}
SEEDS=${SEEDS:-"1 2"}
NODES=${NODES:-8}
OUT_DIR=${OUT_DIR:-.}

ROOT=$(cd "$(dirname "$0")/.." && pwd)
TMP=$(mktemp -d)
BIN="$TMP/bin"

cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT

cd "$ROOT"
echo "== building race-enabled binaries"
go build -race -o "$BIN/ariad" ./cmd/ariad
go build -race -o "$BIN/ariagate" ./cmd/ariagate
go build -race -o "$BIN/ariaload" ./cmd/ariaload
go build -race -o "$BIN/ariasoak" ./cmd/ariasoak

for seed in $SEEDS; do
	out="$OUT_DIR/SOAK_seed${seed}.json"
	echo "== soak seed $seed ($NODES nodes, report $out)"
	"$BIN/ariasoak" -bin "$BIN" -nodes "$NODES" -port-base "$BASE" \
		-seed "$seed" -warmup 8s -chaos 25s -drain 25s \
		-jobs 60 -concurrency 12 -ert 500ms \
		-out "$out" -v
done
echo "== soak smoke OK: seeds $SEEDS passed"
