#!/usr/bin/env bash
# overload_smoke.sh boots a live 5-node ariad grid on loopback with the
# overload-control plane enabled (bounded run queues, bounded pending
# submissions, capped retry backoff), fronts node 0 with ariagate, and
# drives a sustained closed-loop campaign through ariaload. Every binary
# is built with -race so the smoke doubles as a data-race probe across
# the daemon, gateway, and harness.
#
# The script fails if the campaign cannot finish most of its jobs, or if
# the gateway never exerted backpressure (the generator's opening burst
# deliberately exceeds the token bucket, so at least one 429 is expected).
#
# Tunables (environment):
#   BASE_PORT   first loopback port (default 7700; uses BASE..BASE+24)
#   JOBS        campaign size                    (default 80)
#   CONCURRENCY closed-loop in-flight bound      (default 16)
#   ERT         per-job estimated running time   (default 1s)
#   TIMEOUT     campaign deadline                (default 90s)
#   OUT         report path                      (default BENCH_overload.json)
set -euo pipefail

NODES=5
BASE=${BASE_PORT:-7700}
JOBS=${JOBS:-80}
CONCURRENCY=${CONCURRENCY:-16}
ERT=${ERT:-1s}
TIMEOUT=${TIMEOUT:-90s}
OUT=${OUT:-BENCH_overload.json}

ROOT=$(cd "$(dirname "$0")/.." && pwd)
TMP=$(mktemp -d)
BIN="$TMP/bin"
pids=()

cleanup() {
	status=$?
	for pid in "${pids[@]-}"; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	if [ "$status" -ne 0 ]; then
		echo "--- daemon/gateway logs (smoke failed) ---" >&2
		tail -n 20 "$TMP"/*.log >&2 || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT

proto_addr() { echo "127.0.0.1:$((BASE + $1))"; }
ctl_addr() { echo "127.0.0.1:$((BASE + 10 + $1))"; }
GATE="127.0.0.1:$((BASE + 20))"

# wait_port polls until something accepts TCP connections on 127.0.0.1:$1.
wait_port() {
	for _ in $(seq 1 100); do
		if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
			exec 3>&- || true
			return 0
		fi
		sleep 0.2
	done
	echo "port $1 never came up" >&2
	return 1
}

# report_int extracts an integer field from the JSON report without
# assuming jq is installed.
report_int() {
	sed -n "s/.*\"$1\": *\([0-9][0-9]*\).*/\1/p" "$OUT" | head -n 1
}

cd "$ROOT"
echo "== building race-enabled binaries"
go build -race -o "$BIN/ariad" ./cmd/ariad
go build -race -o "$BIN/ariagate" ./cmd/ariagate
go build -race -o "$BIN/ariaload" ./cmd/ariaload

echo "== starting $NODES-node grid (ports $BASE..$((BASE + 10 + NODES - 1)))"
EVENTS=""
for i in $(seq 0 $((NODES - 1))); do
	# Full peer map minus self; ring overlay so floods must hop.
	peers=""
	for j in $(seq 0 $((NODES - 1))); do
		[ "$j" -eq "$i" ] && continue
		peers="${peers}${peers:+,}$j=$(proto_addr "$j")"
	done
	left=$(((i + NODES - 1) % NODES))
	right=$(((i + 1) % NODES))
	"$BIN/ariad" -id "$i" -listen "$(proto_addr "$i")" -control "$(ctl_addr "$i")" \
		-peers "$peers" -neighbors "$left,$right" \
		-seed $((1000 + i)) -epsilon 0 \
		-max-queued 4 -max-pending 32 -retry-backoff-cap 1m \
		-events "$TMP/node$i.jsonl" >"$TMP/node$i.log" 2>&1 &
	pids+=($!)
	EVENTS="${EVENTS}${EVENTS:+,}$TMP/node$i.jsonl"
done
wait_port $((BASE + 10))

echo "== starting ariagate in front of node 0"
# rate/burst are set below the generator's opening demand so admission
# control demonstrably engages; -admit-queue bounds node 0's run queue.
"$BIN/ariagate" -listen "$GATE" -daemon "$(ctl_addr 0)" \
	-rate 5 -burst 10 -admit-queue 8 -poll 100ms \
	>"$TMP/gate.log" 2>&1 &
pids+=($!)
wait_port $((BASE + 20))

echo "== driving $JOBS jobs (ert $ERT, concurrency $CONCURRENCY) through the gateway"
"$BIN/ariaload" -gate "http://$GATE" -events "$EVENTS" \
	-jobs "$JOBS" -concurrency "$CONCURRENCY" -batch 8 -ert "$ERT" \
	-timeout "$TIMEOUT" -tenant smoke -out "$OUT"

completed=$(report_int completed)
backpressure=$(report_int backpressure429)
if [ -z "$completed" ] || [ "$completed" -lt $((JOBS / 2)) ]; then
	echo "FAIL: only ${completed:-0}/$JOBS jobs completed" >&2
	exit 1
fi
if [ -z "$backpressure" ] || [ "$backpressure" -eq 0 ]; then
	echo "FAIL: gateway never pushed back (backpressure429 = 0)" >&2
	exit 1
fi
echo "== overload smoke OK: $completed/$JOBS completed, $backpressure 429s absorbed; report in $OUT"
