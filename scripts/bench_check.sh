#!/usr/bin/env bash
# bench_check.sh — CI gate against simulation-kernel performance regressions.
#
# Absolute events/sec numbers are machine-dependent, so the gate compares the
# sharded/legacy throughput RATIO on a fresh 2k-node replay against the ratio
# recorded in BENCH_sim.json: both engines run on the same host back to back,
# which cancels the hardware term. A drop of more than 15% fails the build.
# The kernel micro-benchmarks run afterwards at one iteration purely as a
# does-it-still-work smoke (their numbers are printed, not judged).
#
# Usage: scripts/bench_check.sh [path/to/BENCH_sim.json]
set -euo pipefail

cd "$(dirname "$0")/.."
REPORT="${1:-BENCH_sim.json}"

if [[ ! -f "$REPORT" ]]; then
    echo "bench_check: $REPORT not found — run 'go run ./cmd/ariabench -out $REPORT' first" >&2
    exit 1
fi

echo "== kernel regression gate (vs $REPORT) =="
go run ./cmd/ariabench -check "$REPORT"

echo
echo "== kernel micro-benchmark smoke =="
go test ./internal/sim/ -run '^$' \
    -bench 'BenchmarkLegacyTimerPushPop|BenchmarkShardedTimerPushPop|BenchmarkCrossShardDelivery' \
    -benchtime=10000x
go test ./internal/directory/ -run '^$' -bench '10k' -benchtime=20x
