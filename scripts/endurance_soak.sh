#!/usr/bin/env bash
# endurance_soak.sh is the nightly-sized endurance soak: one seeded
# ariasoak run in -duration mode, with every fault plane armed at once —
# the scheduled chaos actions (SIGKILL+restart, SIGSTOP gray failures,
# partitions, slow peers) repeating round after round, probabilistic link
# degradation (loss, corruption, duplication, reorder) on every proxy
# link, and WAL disk-fault injection (torn appends, fsync errors,
# boot-time bit flips) on every unprotected daemon. Daemons that die
# loudly on a disk fault (exit 3) or refuse a corrupt store (exit 4) are
# respawned by the supervisor; leak detection fits least-squares trends
# per incarnation instead of comparing two points, so a ten-minute run
# catches slow creep a one-minute smoke cannot.
#
# The run must end with ZERO invariant violations, and its report must
# prove the faults actually fired: corrupted-frame rejections > 0 and
# injected disk faults > 0 (checked below). Deterministic per seed.
#
# Tunables (environment):
#   BASE_PORT  first loopback port (default 27400; a run claims +0..+300)
#   SEED       schedule + fault seed               (default 1)
#   NODES      grid size                           (default 8)
#   DURATION   total wall-clock target             (default 10m)
#   OUT_DIR    where the report lands              (default .)
set -euo pipefail

BASE=${BASE_PORT:-27400}
SEED=${SEED:-1}
NODES=${NODES:-8}
DURATION=${DURATION:-10m}
OUT_DIR=${OUT_DIR:-.}

ROOT=$(cd "$(dirname "$0")/.." && pwd)
TMP=$(mktemp -d)
BIN="$TMP/bin"

cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT

cd "$ROOT"
echo "== building race-enabled binaries"
go build -race -o "$BIN/ariad" ./cmd/ariad
go build -race -o "$BIN/ariagate" ./cmd/ariagate
go build -race -o "$BIN/ariaload" ./cmd/ariaload
go build -race -o "$BIN/ariasoak" ./cmd/ariasoak

out="$OUT_DIR/ENDURANCE_seed${SEED}.json"
echo "== endurance soak seed $SEED ($NODES nodes, $DURATION, report $out)"
"$BIN/ariasoak" -bin "$BIN" -nodes "$NODES" -port-base "$BASE" \
	-seed "$SEED" -duration "$DURATION" \
	-warmup 10s -chaos 45s -drain 25s -report-every 1m \
	-jobs 600 -concurrency 12 -ert 500ms \
	-loss-pct 0.01 -corrupt-pct 0.01 -dup-pct 0.005 -reorder-pct 0.01 \
	-wal-short-write-pct 0.002 -wal-sync-err-pct 0.002 -wal-flip-pct 0.25 \
	-out "$out" -v

# The pass bit alone is not enough: a run that never injected anything
# passes vacuously. Demand evidence that each fault plane actually fired.
python3 - "$out" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
corrupted = rep.get("degrade", {}).get("corrupted", 0)
checksum = sum(rep.get("wireRejects", {}).values())
walfaults = sum(rep.get("walFaults", {}).values())
restarts = sum(n.get("restarts", 0) for n in rep.get("runtime", []))
problems = []
if not rep.get("pass"):
    problems.append("report did not pass")
if corrupted == 0:
    problems.append("no corrupted chunks were injected")
if checksum == 0:
    problems.append("no wire frames were rejected")
if walfaults == 0:
    problems.append("no WAL disk faults were injected")
if restarts < 2:
    problems.append(f"only {restarts} daemon restarts (want >= 2)")
if problems:
    sys.exit("endurance soak evidence check FAILED: " + "; ".join(problems))
print(f"evidence ok: {corrupted} corrupted chunks, {checksum} wire rejects, "
      f"{walfaults} WAL faults, {restarts} restarts, "
      f"{rep.get('walFaultCrashes', 0)} fault crashes, "
      f"{rep.get('walCorruptWipes', 0)} corrupt wipes")
EOF
echo "== endurance soak OK: seed $SEED passed"
