// Benchmarks regenerating every figure of the paper's evaluation (Figs.
// 1–10) at a reduced scale, plus ablation and micro benchmarks for the
// design decisions DESIGN.md calls out.
//
// Each figure benchmark runs its scenarios once per iteration and reports
// the figure's headline quantities as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// prints the same comparisons the paper plots (who wins and by how much),
// while `cmd/ariaeval` regenerates the figures at full fidelity.
package aria_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	aria "github.com/smartgrid/aria"
	"github.com/smartgrid/aria/internal/baseline"
	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/scenario"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/swf"
	"github.com/smartgrid/aria/internal/transport"
)

// benchScale keeps figure benchmarks to tens of milliseconds per run while
// preserving every comparison's direction.
const benchScale = 0.05

// runScenario executes one repetition per iteration and returns the last
// result for metric reporting.
func runScenario(b *testing.B, name string) *aria.Result {
	b.Helper()
	var res *aria.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = aria.RunScenario(name, benchScale, i)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func reportCompletion(b *testing.B, res *aria.Result) {
	b.ReportMetric(float64(res.Completed), "completed")
	b.ReportMetric(res.AvgWaiting.Seconds(), "wait_s")
	b.ReportMetric(res.AvgExecution.Seconds(), "exec_s")
	b.ReportMetric(res.AvgCompletion.Seconds(), "completion_s")
}

// BenchmarkFig1CompletedJobs — throughput of completed jobs under the six
// local-policy scenarios (paper Fig. 1).
func BenchmarkFig1CompletedJobs(b *testing.B) {
	for _, name := range []string{"FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			b.ReportMetric(float64(res.Completed), "completed")
			// Time to complete half the batch, in virtual minutes.
			half := res.Completed / 2
			for i, c := range res.CompletedSeries {
				if c >= half {
					b.ReportMetric(float64(i)*res.BinWidth.Minutes(), "t_half_min")
					break
				}
			}
		})
	}
}

// BenchmarkFig2CompletionTime — waiting/execution/completion breakdown
// (paper Fig. 2: rescheduling trims completion despite longer execution).
func BenchmarkFig2CompletionTime(b *testing.B) {
	for _, name := range []string{"FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"} {
		b.Run(name, func(b *testing.B) {
			reportCompletion(b, runScenario(b, name))
		})
	}
}

// BenchmarkFig3IdleNodes — load-balancing measured as idle-node counts
// (paper Fig. 3: rescheduling cuts idle nodes during the load phase).
func BenchmarkFig3IdleNodes(b *testing.B) {
	for _, name := range []string{"FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			idle := res.IdleSeriesInts()
			min := res.Nodes
			for _, v := range idle {
				if v < min {
					min = v
				}
			}
			b.ReportMetric(float64(min), "min_idle")
		})
	}
}

// BenchmarkFig4Deadline — deadline scheduling performance (paper Fig. 4:
// rescheduling collapses missed deadlines).
func BenchmarkFig4Deadline(b *testing.B) {
	for _, name := range []string{"Deadline", "iDeadline", "DeadlineH", "iDeadlineH"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			b.ReportMetric(float64(res.MissedDeadlines), "missed")
			b.ReportMetric(res.AvgLateness.Seconds(), "lateness_s")
			b.ReportMetric(res.AvgMissedTime.Seconds(), "missed_time_s")
		})
	}
}

// BenchmarkFig5Expanding — absorption of newly joined nodes (paper Fig. 5).
func BenchmarkFig5Expanding(b *testing.B) {
	for _, name := range []string{"Expanding", "iExpanding"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			b.ReportMetric(float64(res.Nodes), "final_nodes")
			b.ReportMetric(float64(res.Reschedules), "reschedules")
			reportCompletion(b, res)
		})
	}
}

// BenchmarkFig6LoadIdle — idle nodes under halved/baseline/doubled
// submission rates (paper Fig. 6).
func BenchmarkFig6LoadIdle(b *testing.B) {
	for _, name := range []string{"LowLoad", "iLowLoad", "Mixed", "iMixed", "HighLoad", "iHighLoad"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			idle := res.IdleSeriesInts()
			min := res.Nodes
			for _, v := range idle {
				if v < min {
					min = v
				}
			}
			b.ReportMetric(float64(min), "min_idle")
		})
	}
}

// BenchmarkFig7LoadCompletion — completion time under varying load (paper
// Fig. 7: iHighLoad approaches LowLoad despite 4× the submission rate).
func BenchmarkFig7LoadCompletion(b *testing.B) {
	for _, name := range []string{"LowLoad", "iLowLoad", "Mixed", "iMixed", "HighLoad", "iHighLoad"} {
		b.Run(name, func(b *testing.B) {
			reportCompletion(b, runScenario(b, name))
		})
	}
}

// BenchmarkFig8ReschedulingPolicies — sensitivity to the INFORM batch size
// and reschedule threshold (paper Fig. 8: minimal differences).
func BenchmarkFig8ReschedulingPolicies(b *testing.B) {
	for _, name := range []string{"iInform1", "iMixed", "iInform4", "iInform15m", "iInform30m"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			reportCompletion(b, res)
			b.ReportMetric(float64(res.Traffic[core.MsgInform].Bytes)/(1<<10), "inform_KB")
		})
	}
}

// BenchmarkFig9Accuracy — sensitivity to running-time estimate error
// (paper Fig. 9: flat except a mild penalty for always-optimistic).
func BenchmarkFig9Accuracy(b *testing.B) {
	for _, name := range []string{"Precise", "iPrecise", "Mixed", "iMixed", "Accuracy25", "iAccuracy25", "AccuracyBad", "iAccuracyBad"} {
		b.Run(name, func(b *testing.B) {
			reportCompletion(b, runScenario(b, name))
		})
	}
}

// BenchmarkFig10Traffic — protocol overhead by message type (paper Fig. 10).
func BenchmarkFig10Traffic(b *testing.B) {
	for _, name := range []string{"Mixed", "iMixed", "iInform1", "iInform4", "iDeadline", "iHighLoad", "iExpanding"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			b.ReportMetric(float64(res.Traffic[core.MsgRequest].Bytes)/(1<<10), "request_KB")
			b.ReportMetric(float64(res.Traffic[core.MsgInform].Bytes)/(1<<10), "inform_KB")
			b.ReportMetric(res.BytesPerNode/(1<<10), "KB_per_node")
			b.ReportMetric(res.BandwidthBPS, "bps_per_node")
		})
	}
}

// BenchmarkAblationDuplicateSuppression quantifies what flood deduplication
// saves: the same discovery round with suppression on and off.
func BenchmarkAblationDuplicateSuppression(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"on", false},
		{"off", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				cfg, err := scenario.ByName("Mixed")
				if err != nil {
					b.Fatal(err)
				}
				cfg = cfg.Scaled(benchScale)
				cfg.Protocol.DisableDuplicateSuppression = tc.disable
				res, err := scenario.Run(cfg, i)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Traffic[core.MsgRequest].Count
			}
			b.ReportMetric(float64(msgs), "request_msgs")
		})
	}
}

// BenchmarkAblationBaselines positions ARiA between the omniscient
// centralized scheduler and random placement on the same workload.
func BenchmarkAblationBaselines(b *testing.B) {
	cfg, err := scenario.ByName("Mixed")
	if err != nil {
		b.Fatal(err)
	}
	cfg = cfg.Scaled(benchScale)
	b.Run("aria", func(b *testing.B) {
		var res *aria.Result
		for i := 0; i < b.N; i++ {
			if res, err = scenario.Run(cfg, i); err != nil {
				b.Fatal(err)
			}
		}
		reportCompletion(b, res)
	})
	for _, kind := range []baseline.Kind{baseline.Centralized, baseline.Random} {
		b.Run(kind.String(), func(b *testing.B) {
			var res *aria.Result
			for i := 0; i < b.N; i++ {
				if res, err = baseline.Run(kind, cfg, i); err != nil {
					b.Fatal(err)
				}
			}
			reportCompletion(b, res)
		})
	}
}

// BenchmarkSimEngine measures raw event throughput of the DES kernel.
func BenchmarkSimEngine(b *testing.B) {
	engine := sim.NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Schedule(time.Duration(i%1000)*time.Millisecond, func() {})
		if i%1024 == 1023 {
			engine.RunAll(0)
		}
	}
	engine.RunAll(0)
}

// BenchmarkOverlayBuild measures constructing the paper's 500-node overlay.
func BenchmarkOverlayBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := overlay.Build(500, overlay.DefaultBlatantConfig(), rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQueue(b *testing.B, policy sched.Policy, deadline bool) *sched.Queue {
	b.Helper()
	q, err := sched.New(policy, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p := job.Profile{
			UUID: job.NewUUID(rng),
			Req: resource.Requirements{
				Arch: resource.ArchAMD64, OS: resource.OSLinux,
				MinMemoryGB: 1, MinDiskGB: 1,
			},
			ERT:   time.Duration(rng.Intn(180)+60) * time.Minute,
			Class: job.ClassBatch,
		}
		if deadline {
			p.Class = job.ClassDeadline
			p.Deadline = time.Duration(rng.Intn(48)+1) * time.Hour
		}
		q.Enqueue(job.New(p), 0)
	}
	return q
}

// BenchmarkETTCOffer measures the batch cost function on a 50-job queue.
func BenchmarkETTCOffer(b *testing.B) {
	q := benchQueue(b, sched.SJF, false)
	rng := rand.New(rand.NewSource(9))
	probe := job.Profile{
		UUID: job.NewUUID(rng),
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   2 * time.Hour,
		Class: job.ClassBatch,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.OfferCost(probe, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNALOffer measures the deadline cost function on a 50-job queue.
func BenchmarkNALOffer(b *testing.B) {
	q := benchQueue(b, sched.EDF, true)
	rng := rand.New(rand.NewSource(9))
	probe := job.Profile{
		UUID: job.NewUUID(rng),
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:      2 * time.Hour,
		Class:    job.ClassDeadline,
		Deadline: 24 * time.Hour,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.OfferCost(probe, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageCodec measures the TCP wire codec round trip.
func BenchmarkMessageCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := core.Message{
		Type: core.MsgRequest,
		From: 7,
		Job: job.Profile{
			UUID: job.NewUUID(rng),
			Req: resource.Requirements{
				Arch: resource.ArchAMD64, OS: resource.OSLinux,
				MinMemoryGB: 2, MinDiskGB: 2,
			},
			ERT:   2 * time.Hour,
			Class: job.ClassBatch,
		},
		TTL: 8, Fanout: 4, Seq: 1,
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := transport.WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := transport.ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoveryRound measures one full REQUEST/ACCEPT/ASSIGN round on
// a 100-node simulated grid.
func BenchmarkDiscoveryRound(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	builder, err := overlay.Build(100, overlay.DefaultBlatantConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	engine := sim.NewEngine(5)
	cluster := transport.NewSimCluster(engine, builder.Graph(), overlay.DefaultLatency(5))
	cfg := aria.DefaultConfig()
	cfg.InformJobs = 0
	sampler := resource.NewSampler(rng)
	var profiles []resource.Profile
	for _, id := range builder.Graph().Nodes() {
		p := sampler.Profile()
		profiles = append(profiles, p)
		if _, err := cluster.AddNode(id, p, sched.FCFS, cfg, nil, job.ARTModel{Mode: job.DriftNone}); err != nil {
			b.Fatal(err)
		}
	}
	cluster.StartAll()
	nodes := cluster.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := job.Profile{
			UUID: job.NewUUID(rng),
			Req: resource.Requirements{
				Arch: resource.ArchAMD64, OS: resource.OSLinux,
				MinMemoryGB: 1, MinDiskGB: 1,
			},
			ERT:   time.Hour,
			Class: job.ClassBatch,
		}
		if err := nodes[i%len(nodes)].Submit(p); err != nil {
			b.Fatal(err)
		}
		// Drain the discovery round (decision timer plus deliveries).
		engine.Run(engine.Now() + 2*cfg.AcceptTimeout + time.Second)
	}
}

// BenchmarkExtOverlayTopologies runs iMixed over the alternate overlay
// families (the paper's future-work overlay-sensitivity question).
func BenchmarkExtOverlayTopologies(b *testing.B) {
	for _, name := range []string{"iMixed", "iMixed-random", "iMixed-ring", "iMixed-smallworld", "iMixed-scalefree"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			reportCompletion(b, res)
			b.ReportMetric(res.BytesPerNode/(1<<10), "KB_per_node")
		})
	}
}

// BenchmarkExtChurn measures job survival under node crashes with and
// without the NOTIFY failsafe.
func BenchmarkExtChurn(b *testing.B) {
	for _, name := range []string{"iChurn", "iChurnFailsafe"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			b.ReportMetric(float64(res.Completed), "completed")
			b.ReportMetric(float64(res.Submitted-res.Completed), "lost")
		})
	}
}

// BenchmarkExtReservations measures the scheduling impact of advance
// reservations with EASY backfill.
func BenchmarkExtReservations(b *testing.B) {
	for _, name := range []string{"iMixed", "iReservations"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			reportCompletion(b, res)
			b.ReportMetric(res.LoadJainIndex, "jain")
		})
	}
}

// BenchmarkExtTraceReplay replays the bundled SWF sample through a small
// grid (future work: evaluation with real workload traces).
func BenchmarkExtTraceReplay(b *testing.B) {
	data, err := os.ReadFile(filepath.Join("internal", "swf", "testdata", "sample.swf"))
	if err != nil {
		b.Fatal(err)
	}
	trace, err := swf.Parse(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := scenario.Baseline().Scaled(benchScale)
		cfg.Name = "tracereplay"
		d, err := scenario.Prepare(cfg, i)
		if err != nil {
			b.Fatal(err)
		}
		jobs, err := swf.Convert(trace, rand.New(rand.NewSource(d.Seed)), swf.ConvertOptions{
			SkipIncomplete: true,
			Hosts:          d.Profiles,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range jobs {
			p := p
			d.Engine.ScheduleAt(p.SubmittedAt, func() {
				if err := d.RandomNode().Submit(p); err != nil {
					b.Error(err)
				}
			})
		}
		res := d.Finish()
		if res.Completed == 0 {
			b.Fatal("trace replay completed nothing")
		}
	}
}

// BenchmarkExtMultiReq compares ARiA against the multiple-simultaneous-
// requests model of [13]: the paper's §II critique (schedulers overloaded
// with cancelled copies) shows up as ASSIGN/CANCEL traffic.
func BenchmarkExtMultiReq(b *testing.B) {
	for _, name := range []string{"Mixed", "iMixed", "MultiReq3"} {
		b.Run(name, func(b *testing.B) {
			res := runScenario(b, name)
			reportCompletion(b, res)
			b.ReportMetric(float64(res.Traffic[core.MsgAssign].Count), "assigns")
			b.ReportMetric(float64(res.Traffic[core.MsgCancel].Count), "cancels")
		})
	}
}
