package aria_test

import (
	"testing"
	"time"

	aria "github.com/smartgrid/aria"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := aria.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.RequestTTL != 9 || cfg.RequestFanout != 4 {
		t.Fatalf("REQUEST flood params %d/%d, want paper's 9/4", cfg.RequestTTL, cfg.RequestFanout)
	}
	if cfg.InformTTL != 8 || cfg.InformFanout != 2 {
		t.Fatalf("INFORM flood params %d/%d, want paper's 8/2", cfg.InformTTL, cfg.InformFanout)
	}
	if cfg.InformJobs != 2 || cfg.InformInterval != 5*time.Minute {
		t.Fatal("INFORM rate differs from the paper baseline")
	}
	if cfg.RescheduleThreshold != 3*time.Minute {
		t.Fatal("reschedule threshold differs from the paper baseline")
	}
}

func TestScenariosCatalog(t *testing.T) {
	if got := len(aria.Scenarios()); got != 26 {
		t.Fatalf("Scenarios() = %d entries, want 26", got)
	}
}

func TestNewSimGridEndToEnd(t *testing.T) {
	grid, err := aria.NewSimGrid(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	profile := aria.NodeProfile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.5,
	}
	cfg := aria.DefaultConfig()
	var nodes []*aria.Node
	for _, id := range grid.Graph().Nodes() {
		n, err := grid.AddNode(id, profile, aria.FCFS, cfg, nil, job.DefaultARTModel())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	grid.StartAll()

	p := aria.JobProfile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: aria.JobRequirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   time.Hour,
		Class: job.ClassBatch,
	}
	if err := nodes[0].Submit(p); err != nil {
		t.Fatal(err)
	}
	grid.Engine().Run(6 * time.Hour)
	busy := 0
	for _, n := range nodes {
		if !n.Idle() {
			busy++
		}
	}
	if busy != 0 {
		t.Fatalf("%d nodes still busy after 6h for a 1h job", busy)
	}
}

func TestNewSimGridRejectsZero(t *testing.T) {
	if _, err := aria.NewSimGrid(0, 1); err == nil {
		t.Fatal("NewSimGrid(0) succeeded")
	}
}

func TestRunScenarioFacade(t *testing.T) {
	res, err := aria.RunScenario("Mixed", 0.03, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
	if _, err := aria.RunScenario("nope", 1.0, 0); err == nil {
		t.Fatal("RunScenario accepted unknown scenario")
	}
}
