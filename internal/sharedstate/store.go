// Package sharedstate implements the cluster-state view behind the
// shared-state optimistic scheduler arm (Omega/arktos-style "shared-state
// lock-free optimistic concurrent scheduling", the third architecture next
// to ARiA's fully distributed flood and the centralized oracle baseline).
//
// The view generalizes the gossip-fed directory cache into a full per-node
// queue/capability picture: each entry carries the subject's resource
// profile (capability), its queued+running depth (queue state), the
// incarnation that produced it, and its staleness — all fed by the same
// channels that feed directed discovery (digests piggybacked on PING/PONG
// gossip and on ACCEPT/INFORM traffic) and invalidated the same ways
// (staleness TTL, incarnation tombstones on dead verdicts, eviction on
// suspicion or unreachability). The directory's bounded store provides
// that substrate; this package layers the optimistic-concurrency state on
// top: in-flight commit reservations, slot-aware candidate selection, and
// conflict feedback that corrects the view faster than gossip would.
//
// The protocol flow the view serves: an initiator Picks the best provider
// whose believed free slots (bound − load − local in-flight commits) are
// positive, commits an ASSIGN optimistically, and on a typed CONFLICT
// reply refreshes the view from the reply's piggybacked digest and retries
// elsewhere with bounded backoff, falling back to the classic REQUEST
// flood after K failed commits. Like the rest of the per-node protocol
// state, a Store is not internally synchronized: the engine drives it
// under the node lock.
package sharedstate

import (
	"time"

	"github.com/smartgrid/aria/internal/directory"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
)

// Store is one node's eventually-consistent view of the cluster plus its
// own optimistic-commit bookkeeping.
type Store struct {
	cache *directory.Store
	bound int

	// inflight counts this node's own unresolved commits per provider.
	// They are reservations against the cached load hint: picking the
	// same provider for two concurrent commits when the view only shows
	// one free slot would manufacture a conflict the initiator could have
	// avoided locally.
	inflight map[overlay.NodeID]int
}

// New wraps the given view substrate (the node's gossip-fed directory
// store) with commit bookkeeping against the given provider queue bound.
func New(cache *directory.Store, bound int) *Store {
	return &Store{
		cache:    cache,
		bound:    bound,
		inflight: make(map[overlay.NodeID]int),
	}
}

// Cache exposes the underlying view substrate for feeding and maintenance
// (gossip learns, evictions, tombstones) — the same store the directory
// plane drives.
func (s *Store) Cache() *directory.Store { return s.cache }

// Bound is the provider queue bound commits are validated against.
func (s *Store) Bound() int { return s.bound }

// Pick returns the best cached provider for req believed to have a free
// slot: profile satisfies the requirements, and cached load plus this
// node's own in-flight commits stays below the bound. Candidates arrive
// from the view ranked by the directory's time-to-completion proxy
// (load-, perf-, and observed-cost-aware), so the head of the list is the
// commit target. Nodes for which excluded reports true (dead, suspect,
// already conflicted this round, the initiator itself) are skipped.
func (s *Store) Pick(req resource.Requirements, now time.Duration, excluded func(overlay.NodeID) bool) (directory.Digest, bool) {
	for _, d := range s.cache.Candidates(req, s.cache.Len(), now) {
		if excluded != nil && excluded(d.Node) {
			continue
		}
		if d.Load+s.inflight[d.Node] >= s.bound {
			continue
		}
		return d, true
	}
	return directory.Digest{}, false
}

// CommitStarted reserves one believed slot at node while a commit is in
// flight.
func (s *Store) CommitStarted(node overlay.NodeID) {
	s.inflight[node]++
}

// CommitResolved releases the reservation taken by CommitStarted, however
// the commit ended (granted, conflicted, or timed out).
func (s *Store) CommitResolved(node overlay.NodeID) {
	if c := s.inflight[node]; c > 1 {
		s.inflight[node] = c - 1
	} else {
		delete(s.inflight, node)
	}
}

// Inflight reports this node's unresolved commit count against node.
func (s *Store) Inflight(node overlay.NodeID) int { return s.inflight[node] }

// ObserveGranted folds a successful commit into the view: the provider's
// queue grew by one, and waiting for gossip to say so would herd the next
// pick at the same node.
func (s *Store) ObserveGranted(node overlay.NodeID) {
	s.cache.BumpLoad(node, 1)
}

// ObserveBusy folds a busy/lost CONFLICT into the view: the provider's
// load hint is saturated to the bound so it is not re-picked until a
// fresher digest (typically the one piggybacked on the CONFLICT itself,
// learned by the caller before this correction) proves a slot free.
func (s *Store) ObserveBusy(node overlay.NodeID) {
	s.cache.BumpLoad(node, s.bound)
}

// ObserveStale drops a provider the view had structurally wrong (restart
// incarnation mismatch, capability mismatch): the entry is evicted without
// a tombstone, and the next honest digest re-admits the node as it really
// is.
func (s *Store) ObserveStale(node overlay.NodeID) {
	s.cache.Evict(node, directory.EvictStale)
}

// ObserveUnreachable drops a provider whose commit went unanswered; the
// membership plane decides whether it is actually dead.
func (s *Store) ObserveUnreachable(node overlay.NodeID) {
	s.cache.Evict(node, directory.EvictUnreachable)
}
