package sharedstate

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/directory"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
)

func testProfile(perf float64) resource.Profile {
	return resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: perf,
	}
}

func testReq() resource.Requirements {
	return resource.Requirements{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MinMemoryGB: 1, MinDiskGB: 1,
	}
}

func newView(t *testing.T, bound int, loads map[overlay.NodeID]int) *Store {
	t.Helper()
	cache := directory.New(64, 10*time.Minute)
	for id, load := range loads {
		if !cache.Learn(directory.Digest{Node: id, Profile: testProfile(1.5), Load: load}, 0) {
			t.Fatalf("learn node %d", id)
		}
	}
	return New(cache, bound)
}

func TestPickPrefersFreestSlot(t *testing.T) {
	v := newView(t, 4, map[overlay.NodeID]int{1: 3, 2: 0, 3: 2})
	d, ok := v.Pick(testReq(), 0, nil)
	if !ok || d.Node != 2 {
		t.Fatalf("pick = %v, %v; want node 2", d.Node, ok)
	}
}

func TestPickSkipsProvidersAtBound(t *testing.T) {
	v := newView(t, 2, map[overlay.NodeID]int{1: 2, 2: 5})
	if d, ok := v.Pick(testReq(), 0, nil); ok {
		t.Fatalf("pick = %v; want none, all providers at bound", d.Node)
	}
}

func TestPickHonorsExclusion(t *testing.T) {
	v := newView(t, 4, map[overlay.NodeID]int{1: 0, 2: 1})
	d, ok := v.Pick(testReq(), 0, func(id overlay.NodeID) bool { return id == 1 })
	if !ok || d.Node != 2 {
		t.Fatalf("pick = %v, %v; want node 2 after excluding 1", d.Node, ok)
	}
}

func TestInflightReservationsConsumeSlots(t *testing.T) {
	// One provider, bound 2, cached load 0: two commits fit, a third pick
	// must go elsewhere (and here there is no elsewhere).
	v := newView(t, 2, map[overlay.NodeID]int{7: 0})
	for i := 0; i < 2; i++ {
		d, ok := v.Pick(testReq(), 0, nil)
		if !ok || d.Node != 7 {
			t.Fatalf("pick %d = %v, %v; want node 7", i, d.Node, ok)
		}
		v.CommitStarted(d.Node)
	}
	if d, ok := v.Pick(testReq(), 0, nil); ok {
		t.Fatalf("third pick = %v; want none, both slots reserved", d.Node)
	}
	v.CommitResolved(7)
	if _, ok := v.Pick(testReq(), 0, nil); !ok {
		t.Fatal("pick after resolve found nothing; reservation not released")
	}
	v.CommitResolved(7)
	if got := v.Inflight(7); got != 0 {
		t.Fatalf("inflight = %d after releasing both; want 0", got)
	}
}

func TestObserveBusySaturatesUntilFresherDigest(t *testing.T) {
	v := newView(t, 3, map[overlay.NodeID]int{5: 0})
	v.ObserveBusy(5)
	if d, ok := v.Pick(testReq(), 0, nil); ok {
		t.Fatalf("pick after busy = %v; want none", d.Node)
	}
	// A fresher digest proving a free slot re-admits the provider.
	if !v.Cache().Learn(directory.Digest{Node: 5, Profile: testProfile(1.5), Load: 1}, time.Second) {
		t.Fatal("fresher digest rejected")
	}
	d, ok := v.Pick(testReq(), time.Second, nil)
	if !ok || d.Node != 5 {
		t.Fatalf("pick after refresh = %v, %v; want node 5", d.Node, ok)
	}
}

func TestObserveStaleEvictsButReadmits(t *testing.T) {
	v := newView(t, 3, map[overlay.NodeID]int{9: 0})
	v.ObserveStale(9)
	if _, ok := v.Pick(testReq(), 0, nil); ok {
		t.Fatal("pick after stale eviction should find nothing")
	}
	// Unlike a dead tombstone, the same incarnation may return with an
	// honest digest.
	if !v.Cache().Learn(directory.Digest{Node: 9, Profile: testProfile(1.2), Load: 0}, time.Second) {
		t.Fatal("re-admission after stale eviction rejected")
	}
}

func TestTombstonedIncarnationStaysOut(t *testing.T) {
	v := newView(t, 3, nil)
	if !v.Cache().Learn(directory.Digest{Node: 4, Profile: testProfile(1.5), Incarnation: 2, Load: 0}, 0) {
		t.Fatal("initial learn rejected")
	}
	v.Cache().Invalidate(4)
	if v.Cache().Learn(directory.Digest{Node: 4, Profile: testProfile(1.5), Incarnation: 2, Load: 0}, time.Second) {
		t.Fatal("tombstoned incarnation re-admitted")
	}
	if _, ok := v.Pick(testReq(), time.Second, nil); ok {
		t.Fatal("pick found a tombstoned provider")
	}
	// A restarted instance (strictly greater incarnation) is the one
	// admissible comeback.
	if !v.Cache().Learn(directory.Digest{Node: 4, Profile: testProfile(1.5), Incarnation: 3, Load: 0}, time.Second) {
		t.Fatal("restarted incarnation rejected")
	}
}

func TestStalenessBoundExpiresView(t *testing.T) {
	cache := directory.New(64, time.Minute)
	if !cache.Learn(directory.Digest{Node: 1, Profile: testProfile(1.5), Load: 0}, 0) {
		t.Fatal("learn rejected")
	}
	v := New(cache, 4)
	if _, ok := v.Pick(testReq(), 30*time.Second, nil); !ok {
		t.Fatal("fresh entry not picked")
	}
	if d, ok := v.Pick(testReq(), 2*time.Minute, nil); ok {
		t.Fatalf("stale entry picked: %v", d.Node)
	}
}
