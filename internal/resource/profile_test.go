package resource

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func validProfile() Profile {
	return Profile{Arch: ArchAMD64, OS: OSLinux, MemoryGB: 8, DiskGB: 4, PerfIndex: 1.5}
}

func TestSatisfiesExactMatch(t *testing.T) {
	p := validProfile()
	r := Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 8, MinDiskGB: 4}
	if !p.Satisfies(r) {
		t.Fatalf("%v should satisfy %v", p, r)
	}
}

func TestSatisfiesTable(t *testing.T) {
	base := validProfile()
	tests := []struct {
		name string
		req  Requirements
		want bool
	}{
		{"smaller needs", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 1, MinDiskGB: 1}, true},
		{"wrong arch", Requirements{Arch: ArchPOWER, OS: OSLinux, MinMemoryGB: 1, MinDiskGB: 1}, false},
		{"wrong os", Requirements{Arch: ArchAMD64, OS: OSWindows, MinMemoryGB: 1, MinDiskGB: 1}, false},
		{"too much memory", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 16, MinDiskGB: 1}, false},
		{"too much disk", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 1, MinDiskGB: 16}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := base.Satisfies(tt.req); got != tt.want {
				t.Fatalf("Satisfies(%v) = %v, want %v", tt.req, got, tt.want)
			}
		})
	}
}

// Directed discovery admits candidates by Satisfies over cached digests, so
// the threshold boundaries decide real probe targets: exactly-equal capacity
// must match, one unit short must not, and zero-valued requirements (which
// Requirements.Validate rejects, but a permissive caller may still form)
// must behave as "no constraint" rather than tripping an off-by-one.
func TestSatisfiesBoundaries(t *testing.T) {
	base := validProfile() // mem=8 disk=4
	tests := []struct {
		name string
		req  Requirements
		want bool
	}{
		{"memory exactly equal", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 8, MinDiskGB: 1}, true},
		{"memory one over", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 9, MinDiskGB: 1}, false},
		{"disk exactly equal", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 1, MinDiskGB: 4}, true},
		{"disk one over", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 1, MinDiskGB: 5}, false},
		{"both exactly equal", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 8, MinDiskGB: 4}, true},
		{"zero memory requirement", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 0, MinDiskGB: 1}, true},
		{"zero disk requirement", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: 1, MinDiskGB: 0}, true},
		{"all-zero sizes", Requirements{Arch: ArchAMD64, OS: OSLinux}, true},
		{"negative requirement", Requirements{Arch: ArchAMD64, OS: OSLinux, MinMemoryGB: -1, MinDiskGB: -1}, true},
		{"zero sizes wrong arch", Requirements{Arch: ArchPOWER, OS: OSLinux}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := base.Satisfies(tt.req); got != tt.want {
				t.Fatalf("Satisfies(%v) = %v, want %v", tt.req, got, tt.want)
			}
		})
	}
}

func TestProfileValidate(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"bad arch", func(p *Profile) { p.Arch = 0 }},
		{"bad os", func(p *Profile) { p.OS = 99 }},
		{"zero memory", func(p *Profile) { p.MemoryGB = 0 }},
		{"negative disk", func(p *Profile) { p.DiskGB = -1 }},
		{"perf below 1", func(p *Profile) { p.PerfIndex = 0.99 }},
		{"perf at 2", func(p *Profile) { p.PerfIndex = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validProfile()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate accepted invalid profile %+v", p)
			}
		})
	}
}

func TestRequirementsValidate(t *testing.T) {
	r := Requirements{Arch: ArchPOWER, OS: OSUnix, MinMemoryGB: 2, MinDiskGB: 2}
	if err := r.Validate(); err != nil {
		t.Fatalf("valid requirements rejected: %v", err)
	}
	r.MinMemoryGB = 0
	if err := r.Validate(); err == nil {
		t.Fatal("Validate accepted zero memory requirement")
	}
}

func TestArchitectureStringRoundTrip(t *testing.T) {
	for _, a := range archValues {
		parsed, err := ParseArchitecture(a.String())
		if err != nil {
			t.Fatalf("ParseArchitecture(%q): %v", a.String(), err)
		}
		if parsed != a {
			t.Fatalf("round trip %v -> %q -> %v", a, a.String(), parsed)
		}
	}
	if _, err := ParseArchitecture("Z80"); err == nil {
		t.Fatal("ParseArchitecture accepted unknown name")
	}
}

func TestOSStringRoundTrip(t *testing.T) {
	for _, o := range osValues {
		parsed, err := ParseOS(o.String())
		if err != nil {
			t.Fatalf("ParseOS(%q): %v", o.String(), err)
		}
		if parsed != o {
			t.Fatalf("round trip %v -> %q -> %v", o, o.String(), parsed)
		}
	}
	if _, err := ParseOS("TEMPLEOS"); err == nil {
		t.Fatal("ParseOS accepted unknown name")
	}
}

func TestUnknownEnumStrings(t *testing.T) {
	if Architecture(42).String() != "Architecture(42)" {
		t.Fatalf("unexpected string %q", Architecture(42).String())
	}
	if OS(42).String() != "OS(42)" {
		t.Fatalf("unexpected string %q", OS(42).String())
	}
}

func TestSamplerProfilesValid(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(3)))
	for i := 0; i < 1000; i++ {
		p := s.Profile()
		if err := p.Validate(); err != nil {
			t.Fatalf("sampled invalid profile %+v: %v", p, err)
		}
		r := s.Requirements()
		if err := r.Validate(); err != nil {
			t.Fatalf("sampled invalid requirements %+v: %v", r, err)
		}
	}
}

func TestSamplerArchDistribution(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(5)))
	const n = 200000
	counts := make(map[Architecture]int)
	for i := 0; i < n; i++ {
		counts[s.Profile().Arch]++
	}
	wantFrac := map[Architecture]float64{
		ArchAMD64: 0.872, ArchPOWER: 0.11, ArchIA64: 0.012,
		ArchSPARC: 0.002, ArchMIPS: 0.002, ArchNEC: 0.002,
	}
	for a, want := range wantFrac {
		got := float64(counts[a]) / n
		if math.Abs(got-want) > 0.015 {
			t.Errorf("arch %v frequency %.4f, want %.4f (±0.015)", a, got, want)
		}
	}
}

func TestSamplerOSDistribution(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(7)))
	const n = 200000
	counts := make(map[OS]int)
	for i := 0; i < n; i++ {
		counts[s.Profile().OS]++
	}
	wantFrac := map[OS]float64{
		OSLinux: 0.886, OSSolaris: 0.058, OSUnix: 0.044, OSWindows: 0.01, OSBSD: 0.002,
	}
	for o, want := range wantFrac {
		got := float64(counts[o]) / n
		if math.Abs(got-want) > 0.015 {
			t.Errorf("os %v frequency %.4f, want %.4f (±0.015)", o, got, want)
		}
	}
}

func TestSamplerSizeDistribution(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(9)))
	const n = 100000
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[s.Profile().MemoryGB]++
	}
	for _, size := range SizesGB {
		got := float64(counts[size]) / n
		if math.Abs(got-0.2) > 0.02 {
			t.Errorf("memory size %d frequency %.4f, want 0.2 (±0.02)", size, got)
		}
	}
}

func TestSamplerDeterminism(t *testing.T) {
	a := NewSampler(rand.New(rand.NewSource(1)))
	b := NewSampler(rand.New(rand.NewSource(1)))
	for i := 0; i < 100; i++ {
		if pa, pb := a.Profile(), b.Profile(); pa != pb {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := validProfile()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip %+v -> %+v", p, back)
	}
}

// Property: a sampled profile always satisfies requirements strictly below
// it on the same arch/OS, and never satisfies requirements with a different
// architecture.
func TestPropertySatisfiesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSampler(rng)
	f := func() bool {
		p := s.Profile()
		rSame := Requirements{Arch: p.Arch, OS: p.OS, MinMemoryGB: 1, MinDiskGB: 1}
		if !p.Satisfies(rSame) {
			return false
		}
		other := ArchAMD64
		if p.Arch == ArchAMD64 {
			other = ArchPOWER
		}
		rOther := rSame
		rOther.Arch = other
		return !p.Satisfies(rOther)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(func() bool { return f() }, cfg); err != nil {
		t.Fatal(err)
	}
}
