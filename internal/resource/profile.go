// Package resource models grid node capabilities and job resource
// requirements, together with the matching logic that decides whether a node
// can host a job.
//
// The profile fields and their population distributions follow §IV-B of the
// ARiA paper: architecture and operating system frequencies from the TOP500
// list of 2010, memory and disk drawn uniformly from {1,2,4,8,16} GB, and a
// per-node performance index p ∈ [1,2) relating the node's speed to the
// grid-wide baseline used for job running-time estimates.
package resource

import (
	"fmt"
	"math/rand"
)

// Architecture identifies a node's instruction-set architecture.
type Architecture int

// Architectures in decreasing TOP500 frequency order.
const (
	ArchAMD64 Architecture = iota + 1
	ArchPOWER
	ArchIA64
	ArchSPARC
	ArchMIPS
	ArchNEC
)

var archNames = map[Architecture]string{
	ArchAMD64: "AMD64",
	ArchPOWER: "POWER",
	ArchIA64:  "IA-64",
	ArchSPARC: "SPARC",
	ArchMIPS:  "MIPS",
	ArchNEC:   "NEC",
}

// String returns the canonical architecture name.
func (a Architecture) String() string {
	if s, ok := archNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Architecture(%d)", int(a))
}

// Valid reports whether a names a known architecture.
func (a Architecture) Valid() bool {
	_, ok := archNames[a]
	return ok
}

// ParseArchitecture resolves a canonical architecture name.
func ParseArchitecture(s string) (Architecture, error) {
	for a, name := range archNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

// OS identifies a node's operating system family.
type OS int

// Operating systems in decreasing TOP500 frequency order.
const (
	OSLinux OS = iota + 1
	OSSolaris
	OSUnix
	OSWindows
	OSBSD
)

var osNames = map[OS]string{
	OSLinux:   "LINUX",
	OSSolaris: "SOLARIS",
	OSUnix:    "UNIX",
	OSWindows: "WINDOWS",
	OSBSD:     "BSD",
}

// String returns the canonical operating system name.
func (o OS) String() string {
	if s, ok := osNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OS(%d)", int(o))
}

// Valid reports whether o names a known operating system.
func (o OS) Valid() bool {
	_, ok := osNames[o]
	return ok
}

// ParseOS resolves a canonical operating system name.
func ParseOS(s string) (OS, error) {
	for o, name := range osNames {
		if name == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown operating system %q", s)
}

// SizesGB lists the admissible memory and disk sizes, in gigabytes.
var SizesGB = []int{1, 2, 4, 8, 16}

// Profile describes the hardware and software capabilities of a grid node.
type Profile struct {
	Arch     Architecture `json:"arch"`
	OS       OS           `json:"os"`
	MemoryGB int          `json:"memoryGB"`
	DiskGB   int          `json:"diskGB"`

	// PerfIndex compares the node's computing power with the grid-wide
	// baseline used for Estimated Running Times; a job with estimate ERT
	// runs in ERT/PerfIndex on this node. Always in [1, 2).
	PerfIndex float64 `json:"perfIndex"`
}

// Validate reports the first structural problem with the profile, if any.
func (p Profile) Validate() error {
	switch {
	case !p.Arch.Valid():
		return fmt.Errorf("invalid architecture %d", int(p.Arch))
	case !p.OS.Valid():
		return fmt.Errorf("invalid operating system %d", int(p.OS))
	case p.MemoryGB <= 0:
		return fmt.Errorf("non-positive memory %d GB", p.MemoryGB)
	case p.DiskGB <= 0:
		return fmt.Errorf("non-positive disk %d GB", p.DiskGB)
	case p.PerfIndex < 1 || p.PerfIndex >= 2:
		return fmt.Errorf("performance index %v outside [1,2)", p.PerfIndex)
	}
	return nil
}

// String renders the profile in a compact human-readable form.
func (p Profile) String() string {
	return fmt.Sprintf("%s/%s mem=%dGB disk=%dGB p=%.2f",
		p.Arch, p.OS, p.MemoryGB, p.DiskGB, p.PerfIndex)
}

// Requirements describes the resources a job demands from its host.
type Requirements struct {
	Arch        Architecture `json:"arch"`
	OS          OS           `json:"os"`
	MinMemoryGB int          `json:"minMemoryGB"`
	MinDiskGB   int          `json:"minDiskGB"`
}

// Validate reports the first structural problem with the requirements.
func (r Requirements) Validate() error {
	switch {
	case !r.Arch.Valid():
		return fmt.Errorf("invalid architecture %d", int(r.Arch))
	case !r.OS.Valid():
		return fmt.Errorf("invalid operating system %d", int(r.OS))
	case r.MinMemoryGB <= 0:
		return fmt.Errorf("non-positive memory requirement %d GB", r.MinMemoryGB)
	case r.MinDiskGB <= 0:
		return fmt.Errorf("non-positive disk requirement %d GB", r.MinDiskGB)
	}
	return nil
}

// String renders the requirements in a compact human-readable form.
func (r Requirements) String() string {
	return fmt.Sprintf("%s/%s mem>=%dGB disk>=%dGB",
		r.Arch, r.OS, r.MinMemoryGB, r.MinDiskGB)
}

// Satisfies reports whether a node with profile p can host a job with
// requirements r: exact architecture and OS match, and at least the
// requested memory and disk.
func (p Profile) Satisfies(r Requirements) bool {
	return p.Arch == r.Arch &&
		p.OS == r.OS &&
		p.MemoryGB >= r.MinMemoryGB &&
		p.DiskGB >= r.MinDiskGB
}

// weighted draws an index from weights (which need not be normalized) using
// rng. The final bucket absorbs floating-point slack.
func weighted(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Population frequencies from §IV-B of the paper (percent).
var (
	archWeights = []float64{87.2, 11, 1.2, 0.2, 0.2, 0.2}
	archValues  = []Architecture{ArchAMD64, ArchPOWER, ArchIA64, ArchSPARC, ArchMIPS, ArchNEC}
	osWeights   = []float64{88.6, 5.8, 4.4, 1.0, 0.2}
	osValues    = []OS{OSLinux, OSSolaris, OSUnix, OSWindows, OSBSD}
)

// Sampler draws node profiles and job requirements from the paper's
// population distributions using a caller-supplied random source.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a sampler backed by rng. The source is retained, not
// copied, so samples consume the caller's random stream deterministically.
func NewSampler(rng *rand.Rand) *Sampler {
	return &Sampler{rng: rng}
}

// Profile draws a random node profile.
func (s *Sampler) Profile() Profile {
	return Profile{
		Arch:      archValues[weighted(s.rng, archWeights)],
		OS:        osValues[weighted(s.rng, osWeights)],
		MemoryGB:  SizesGB[s.rng.Intn(len(SizesGB))],
		DiskGB:    SizesGB[s.rng.Intn(len(SizesGB))],
		PerfIndex: 1 + s.rng.Float64(),
	}
}

// Requirements draws random job requirements using the same distributions
// as node profiles, per §IV-D.
func (s *Sampler) Requirements() Requirements {
	return Requirements{
		Arch:        archValues[weighted(s.rng, archWeights)],
		OS:          osValues[weighted(s.rng, osWeights)],
		MinMemoryGB: SizesGB[s.rng.Intn(len(SizesGB))],
		MinDiskGB:   SizesGB[s.rng.Intn(len(SizesGB))],
	}
}
