package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
)

// fakeEnv is a minimal Env for white-box unit tests of pure node logic.
type fakeEnv struct {
	now time.Duration
	rng *rand.Rand
}

func (f *fakeEnv) Now() time.Duration { return f.now }
func (f *fakeEnv) Schedule(_ time.Duration, _ func()) Cancel {
	return func() bool { return true }
}
func (f *fakeEnv) Send(overlay.NodeID, Message) {}
func (f *fakeEnv) Neighbors() []overlay.NodeID  { return nil }
func (f *fakeEnv) Rand() *rand.Rand             { return f.rng }

func newTestNode(t *testing.T, cfg Config) (*Node, *fakeEnv) {
	t.Helper()
	env := &fakeEnv{rng: rand.New(rand.NewSource(1))}
	profile := resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.5,
	}
	n, err := NewNode(1, profile, sched.FCFS, env, cfg, nil, job.DefaultARTModel())
	if err != nil {
		t.Fatal(err)
	}
	return n, env
}

func watchdogConfig() Config {
	cfg := DefaultConfig()
	cfg.InformJobs = 0
	cfg.NotifyInitiator = true
	cfg.WatchdogGrace = 3
	return cfg
}

func TestWatchdogDelayUsesExpectedCompletion(t *testing.T) {
	n, _ := newTestNode(t, watchdogConfig())
	p := job.Profile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   time.Hour,
		Class: job.ClassBatch,
	}
	// Without a cost estimate, the base is the ERT.
	plain := &trackedJob{profile: p}
	if got := n.watchdogDelay(plain); got != 3*time.Hour+n.cfg.AcceptTimeout {
		t.Fatalf("plain delay = %v, want 3h + accept timeout", got)
	}
	// A 5h ETTC offer raises the base above the ERT.
	expected := &trackedJob{profile: p, expect: 5 * time.Hour}
	if got := n.watchdogDelay(expected); got != 15*time.Hour+n.cfg.AcceptTimeout {
		t.Fatalf("cost-based delay = %v, want 15h + accept timeout", got)
	}
}

func TestWatchdogDelayBacksOffExponentially(t *testing.T) {
	n, _ := newTestNode(t, watchdogConfig())
	p := job.Profile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   time.Hour,
		Class: job.ClassBatch,
	}
	base := n.watchdogDelay(&trackedJob{profile: p})
	once := n.watchdogDelay(&trackedJob{profile: p, resub: 1})
	twice := n.watchdogDelay(&trackedJob{profile: p, resub: 2})
	many := n.watchdogDelay(&trackedJob{profile: p, resub: 50})
	cap6 := n.watchdogDelay(&trackedJob{profile: p, resub: 6})
	if once <= base || twice <= once {
		t.Fatalf("no backoff: %v, %v, %v", base, once, twice)
	}
	if many != cap6 {
		t.Fatalf("backoff not capped: resub=50 gives %v, resub=6 gives %v", many, cap6)
	}
}

func TestWatchdogDelayDeadlineAndReservation(t *testing.T) {
	n, env := newTestNode(t, watchdogConfig())
	env.now = time.Hour
	p := job.Profile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:      time.Hour,
		Class:    job.ClassDeadline,
		Deadline: 10 * time.Hour,
	}
	// Deadline slack dominates: (10h − 1h) + 1h = 10h base.
	got := n.watchdogDelay(&trackedJob{profile: p})
	if want := 30*time.Hour + n.cfg.AcceptTimeout; got != want {
		t.Fatalf("deadline delay = %v, want %v", got, want)
	}
	// A future reservation extends the horizon further.
	p2 := p
	p2.Class = job.ClassBatch
	p2.Deadline = 0
	p2.EarliestStart = 4 * time.Hour // 3h past now
	got2 := n.watchdogDelay(&trackedJob{profile: p2})
	if want := time.Duration(float64(time.Hour+3*time.Hour)*3) + n.cfg.AcceptTimeout; got2 != want {
		t.Fatalf("reserved delay = %v, want %v", got2, want)
	}
}

// TestWatchdogRecoversFromNotifyLoss drives the failsafe end to end under
// message loss: every NOTIFY (completions, acks, all of it) is dropped, so
// from the initiator's viewpoint the delegated job went silent. The
// watchdog must re-flood a REQUEST within its grace bound — and the
// assignee's unacked-completion memory must refuse the re-assignment, so
// the job still executes exactly once.
func TestWatchdogRecoversFromNotifyLoss(t *testing.T) {
	net := newLossyNet(7)
	counter := newDeliveryCounter()

	cfg := ackConfig()
	cfg.NotifyInitiator = true

	initiator := net.addNode(t, 1, smallProfile(), cfg, counter)
	net.addNode(t, 2, bigProfile(), cfg, counter)
	net.connect(1, 2)

	net.drop = func(_, _ overlay.NodeID, m Message) bool {
		return m.Type == MsgNotify
	}

	if err := initiator.Submit(bigJob(testUUID)); err != nil {
		t.Fatal(err)
	}

	// The 1h job is assigned at ~AcceptTimeout and runs on node 2 (ETTC
	// offer ≈ 1h), so the watchdog deadline is grace×1h + AcceptTimeout
	// past the assignment. Up to that deadline there must be exactly the
	// original discovery flood.
	grace := time.Duration(cfg.WatchdogGrace * float64(time.Hour))
	net.engine.Run(grace)
	if got := net.requestsFrom(1); got != 1 {
		t.Fatalf("REQUEST floods before the watchdog deadline = %d, want 1", got)
	}
	if counter.completed[testUUID] != 1 {
		t.Fatalf("first execution did not complete: %d", counter.completed[testUUID])
	}

	// Within one retry slack past the deadline the initiator must have
	// resubmitted (the completion NOTIFY was dropped, so the job looks
	// lost to it).
	net.engine.Run(grace + 2*cfg.AcceptTimeout + cfg.RetryBackoff + time.Minute)
	if got := net.requestsFrom(1); got < 2 {
		t.Fatalf("initiator did not resubmit within the watchdog bound: %d floods", got)
	}

	// The re-assignment lands back on the only capable node — which
	// already completed the job and still holds the unacked completion
	// NOTIFY. It must refuse to run it again: exactly one execution even
	// though the initiator can never hear the completion.
	net.engine.Run(grace + 2*time.Hour)
	if counter.completed[testUUID] != 1 {
		t.Fatalf("completions = %d, want exactly 1 despite resubmission", counter.completed[testUUID])
	}
}

// TestCompletionNotifyRetryPreventsResubmit drops the first completion
// NOTIFY only: the assignee's ack-driven resend loop must deliver it on a
// retry, silencing the initiator's watchdog before it duplicates the job.
func TestCompletionNotifyRetryPreventsResubmit(t *testing.T) {
	net := newLossyNet(11)
	counter := newDeliveryCounter()

	cfg := ackConfig()
	cfg.NotifyInitiator = true

	initiator := net.addNode(t, 1, smallProfile(), cfg, counter)
	assignee := net.addNode(t, 2, bigProfile(), cfg, counter)
	net.connect(1, 2)

	dropped := 0
	net.drop = func(_, _ overlay.NodeID, m Message) bool {
		if m.Type == MsgNotify && m.Notify == NotifyCompleted && dropped == 0 {
			dropped++
			return true
		}
		return false
	}

	if err := initiator.Submit(bigJob(testUUID)); err != nil {
		t.Fatal(err)
	}

	// Run far past the watchdog bound: the resent NOTIFY (first retry one
	// AssignAckTimeout after completion) must have closed the tracking
	// long before the watchdog could fire.
	grace := time.Duration(cfg.WatchdogGrace * float64(time.Hour))
	net.engine.Run(2*grace + 4*time.Hour)

	if dropped != 1 {
		t.Fatalf("fault never injected: %d drops", dropped)
	}
	if got := net.requestsFrom(1); got != 1 {
		t.Fatalf("initiator resubmitted despite the retried NOTIFY: %d floods", got)
	}
	if counter.completed[testUUID] != 1 {
		t.Fatalf("completions = %d, want exactly 1", counter.completed[testUUID])
	}
	if counter.failed != 0 {
		t.Fatalf("job declared failed: %d", counter.failed)
	}
	// The ack closed the resend loop on the assignee.
	assignee.mu.Lock()
	open := len(assignee.notifyOut)
	assignee.mu.Unlock()
	if open != 0 {
		t.Fatalf("resend loop still open: %d pending notifies", open)
	}
}

// TestUntrackedCompletionNotifyAcked: an initiator with no tracking state
// for the job (watchdog gave up, or a wiped restart) must still ack, or the
// assignee would resend forever.
func TestUntrackedCompletionNotifyAcked(t *testing.T) {
	net := newLossyNet(3)
	cfg := ackConfig()
	cfg.NotifyInitiator = true
	n1 := net.addNode(t, 1, smallProfile(), cfg, newDeliveryCounter())
	net.addNode(t, 2, bigProfile(), cfg, newDeliveryCounter())
	net.connect(1, 2)

	n1.HandleMessage(Message{Type: MsgNotify, From: 2, Job: bigJob(testUUID), Notify: NotifyCompleted, Span: 9})

	acks := 0
	for _, s := range net.sent {
		if s.from == 1 && s.to == 2 && s.msg.Type == MsgNotify && s.msg.Notify == NotifyAck {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("untracked completion notify acked %d times, want 1", acks)
	}
}

func TestNextSeqMonotonic(t *testing.T) {
	n, _ := newTestNode(t, watchdogConfig())
	n.mu.Lock()
	defer n.mu.Unlock()
	a, b, c := n.nextSeq(), n.nextSeq(), n.nextSeq()
	if !(a < b && b < c) {
		t.Fatalf("sequence not monotonic: %d %d %d", a, b, c)
	}
}

// TestWatchdogDefersWhileAssignHandshakeOpen pins the stand-down rule for
// an un-acked ASSIGN: while the retransmission loop still owns the job —
// it will either land the ack or exhaust into its own loss-safe fallback —
// a firing watchdog must defer, not race it with a parallel resubmission
// flood. A live soak caught exactly that race minting a duplicate: the
// ASSIGN was delayed in flight, the watchdog re-flooded 1.5s after the
// first unanswered retry, and both copies ran.
func TestWatchdogDefersWhileAssignHandshakeOpen(t *testing.T) {
	n, _ := newTestNode(t, watchdogConfig())
	n.alive = true
	p := job.Profile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   time.Hour,
		Class: job.ClassBatch,
	}
	tj := &trackedJob{profile: p, assignee: 2}
	n.tracked[p.UUID] = tj
	n.outAssigns[p.UUID] = &outAssign{profile: p, to: 2}

	for i := 1; i <= watchdogMaxDefers; i++ {
		n.watchdogFire(p.UUID)
		if tj.defers != i || tj.resub != 0 {
			t.Fatalf("fire %d with open handshake: defers=%d resub=%d", i, tj.defers, tj.resub)
		}
	}
	// The deferral budget is bounded: with it spent, even an open
	// handshake no longer holds the failsafe back.
	n.watchdogFire(p.UUID)
	if tj.resub != 1 {
		t.Fatalf("budget spent but no resubmission: resub=%d", tj.resub)
	}

	// Fresh tracking with the handshake closed (acked and gone):
	// the first firing resubmits immediately, as before.
	tj2 := &trackedJob{profile: p, assignee: 2}
	n.tracked[p.UUID] = tj2
	delete(n.outAssigns, p.UUID)
	n.watchdogFire(p.UUID)
	if tj2.defers != 0 || tj2.resub != 1 {
		t.Fatalf("closed handshake must not defer: defers=%d resub=%d", tj2.defers, tj2.resub)
	}
}
