package core

import (
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/directory"
	"github.com/smartgrid/aria/internal/overlay"
)

// The membership plane is a SWIM-style liveness detector woven into the
// protocol engine: each node pings one rotating neighbor per ProbeInterval,
// moves unresponsive neighbors through suspect → dead, prunes dead links,
// and repairs its degree by reconnecting to a neighbor-of-neighbor learned
// from the peer lists gossiped on every PING/PONG. Like the rest of the
// engine it is callback-driven and goroutine-free, so the same code runs
// deterministically under the simulator and concurrently under the live
// transports.

// peerState is a neighbor's position in the detector's state machine.
type peerState int

const (
	stateAlive peerState = iota
	stateSuspect
	stateDead // terminal: the node never addresses the peer again
)

// String renders the state for snapshots and reports.
func (s peerState) String() string {
	switch s {
	case stateAlive:
		return "alive"
	case stateSuspect:
		return "suspect"
	case stateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// PeerStatus is one neighbor's liveness verdict in a membership snapshot.
type PeerStatus struct {
	Peer  overlay.NodeID
	State string // "alive", "suspect", or "dead"
}

// MembershipSnapshot reports the detector's current verdict for every
// tracked peer, in ascending peer order; it is empty when the membership
// plane is disabled. Safe to call from any goroutine — this is the audit
// surface convergence checkers poll after a partition heals.
func (n *Node) MembershipSnapshot() []PeerStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.peers == nil {
		return nil
	}
	out := make([]PeerStatus, 0, len(n.peers))
	for peer, ph := range n.peers {
		out = append(out, PeerStatus{Peer: peer, State: ph.state.String()})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Peer < out[k].Peer })
	return out
}

// peerHealth is the detector's bookkeeping for one neighbor.
type peerHealth struct {
	state peerState

	// awaiting marks an outstanding probe; awaitSeq is its PING sequence
	// number (any PONG or PING from the peer counts as refutation, the
	// sequence is kept for diagnostics).
	awaiting bool
	awaitSeq uint64

	// probeTimer fires the probe timeout; deadTimer closes the suspect
	// window.
	probeTimer Cancel
	deadTimer  Cancel
}

// ReportUnreachable feeds transport-level evidence into the detector: a
// dead connection (TCP write failure, failed redial) suspects the peer
// immediately instead of waiting for the next probe round. It is safe to
// call from any goroutine; with the detector disabled it is a no-op.
func (n *Node) ReportUnreachable(peer overlay.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.peers == nil || peer == n.id {
		return
	}
	// Transport-level unreachability also evicts the peer's directory
	// entry (no tombstone: a redial may succeed and gossip re-admits it) —
	// directed probes must not chase a peer the transport cannot reach.
	n.dirEvict(peer, directory.EvictUnreachable)
	ph := n.peerHealthFor(peer)
	if ph.state != stateAlive {
		return
	}
	n.suspectPeer(peer, ph)
}

// peerHealthFor returns (creating if needed) the health record for peer.
// Caller holds the lock and has checked n.peers != nil.
func (n *Node) peerHealthFor(peer overlay.NodeID) *peerHealth {
	ph := n.peers[peer]
	if ph == nil {
		ph = &peerHealth{}
		n.peers[peer] = ph
	}
	return ph
}

// peerDead reports whether the detector has confirmed peer dead. Caller
// holds the lock.
func (n *Node) peerDead(peer overlay.NodeID) bool {
	if n.peers == nil {
		return false
	}
	ph := n.peers[peer]
	return ph != nil && ph.state == stateDead
}

// peerLive reports whether the membership plane affirmatively vouches for
// peer: the detector is enabled, holds a probe record, and has not
// convicted it. Distinct from !peerDead, which is also true when
// membership is off or the peer was never probed — peerLive demands
// positive evidence. Caller holds the lock.
func (n *Node) peerLive(peer overlay.NodeID) bool {
	if n.peers == nil || peer == 0 || peer == n.id {
		return false
	}
	ph := n.peers[peer]
	return ph != nil && ph.state != stateDead
}

// peerSuspect reports whether peer is currently under suspicion. Caller
// holds the lock.
func (n *Node) peerSuspect(peer overlay.NodeID) bool {
	if n.peers == nil {
		return false
	}
	ph := n.peers[peer]
	return ph != nil && ph.state == stateSuspect
}

// livePeers returns the current neighbors not marked dead, in the
// environment's order. Caller holds the lock.
func (n *Node) livePeers() []overlay.NodeID {
	neighbors := n.env.Neighbors()
	out := neighbors[:0]
	for _, nb := range neighbors {
		if !n.peerDead(nb) {
			out = append(out, nb)
		}
	}
	return out
}

// probeTick probes the next neighbor in rotation and re-arms itself.
func (n *Node) probeTick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	if targets := n.livePeers(); len(targets) > 0 {
		n.probeIdx++
		n.probePeer(targets[n.probeIdx%len(targets)])
	}
	n.probeCancel = n.env.Schedule(n.cfg.ProbeInterval, n.probeTick)
}

// probePeer sends one PING to peer and arms its probe timeout. Caller holds
// the lock.
func (n *Node) probePeer(peer overlay.NodeID) {
	ph := n.peerHealthFor(peer)
	if ph.state == stateDead {
		return
	}
	seq := n.nextSeq()
	ph.awaiting = true
	ph.awaitSeq = seq
	if ph.probeTimer != nil {
		ph.probeTimer()
	}
	n.env.Send(peer, Message{Type: MsgPing, From: n.id, Seq: seq, Peers: n.gossipPeers(), Dir: n.dirGossipPayload()})
	ph.probeTimer = n.env.Schedule(n.cfg.ProbeTimeout, func() { n.probeTimeoutFire(peer) })
}

// gossipPeers snapshots the node's non-dead neighbor list for the Peers
// payload of a PING or PONG. Caller holds the lock.
func (n *Node) gossipPeers() []overlay.NodeID {
	live := n.livePeers()
	out := make([]overlay.NodeID, len(live))
	copy(out, live)
	return out
}

// probeTimeoutFire handles an unanswered probe: an alive peer becomes
// suspect; a suspected peer is re-probed immediately so a recovering or
// jittered link gets every chance to refute before the suspect window
// closes.
func (n *Node) probeTimeoutFire(peer overlay.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.peers == nil {
		return
	}
	ph := n.peers[peer]
	if ph == nil || !ph.awaiting {
		return // answered in time
	}
	ph.awaiting = false
	switch ph.state {
	case stateAlive:
		n.suspectPeer(peer, ph)
	case stateSuspect:
		n.probePeer(peer)
	}
}

// suspectPeer moves peer from alive to suspect: the dead timer starts and a
// fast re-probe goes out immediately. Caller holds the lock.
func (n *Node) suspectPeer(peer overlay.NodeID, ph *peerHealth) {
	ph.state = stateSuspect
	// A suspect is no directed-probe candidate: evict its digest now
	// (tombstone-free, so a refutation's next gossip re-admits it).
	n.dirEvict(peer, directory.EvictSuspect)
	n.emitSpan(TraceEvent{Kind: SpanSuspect, Peer: peer})
	if n.mobs != nil {
		n.mobs.PeerSuspected(n.env.Now(), n.id, peer)
	}
	if ph.deadTimer != nil {
		ph.deadTimer()
	}
	ph.deadTimer = n.env.Schedule(n.cfg.SuspectTimeout, func() { n.confirmDead(peer) })
	n.probePeer(peer)
}

// refutePeer records liveness evidence for peer (an inbound PING or PONG):
// outstanding probes are settled and a suspicion is lifted. Dead verdicts
// are terminal and are not refuted. Caller holds the lock.
func (n *Node) refutePeer(peer overlay.NodeID) {
	ph := n.peerHealthFor(peer)
	if ph.state == stateDead {
		return
	}
	ph.awaiting = false
	if ph.probeTimer != nil {
		ph.probeTimer()
		ph.probeTimer = nil
	}
	if ph.state == stateSuspect {
		ph.state = stateAlive
		if ph.deadTimer != nil {
			ph.deadTimer()
			ph.deadTimer = nil
		}
		if n.mobs != nil {
			n.mobs.PeerRefuted(n.env.Now(), n.id, peer)
		}
	}
}

// confirmDead closes a suspect window: the peer is declared dead (terminal),
// its link pruned, and degree repair attempted.
func (n *Node) confirmDead(peer overlay.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.peers == nil {
		return
	}
	ph := n.peers[peer]
	if ph == nil || ph.state != stateSuspect {
		return
	}
	ph.state = stateDead
	ph.awaiting = false
	if ph.probeTimer != nil {
		ph.probeTimer()
		ph.probeTimer = nil
	}
	ph.deadTimer = nil
	// The dead verdict is terminal: tombstone the directory entry so only
	// a strictly greater incarnation (a restarted instance) is re-learned.
	n.dirInvalidate(peer)
	n.emitSpan(TraceEvent{Kind: SpanPeerDead, Peer: peer})
	if n.mobs != nil {
		n.mobs.PeerDead(n.env.Now(), n.id, peer)
	}
	if n.menv != nil {
		n.menv.PruneLink(peer)
		n.repairDegree(peer)
	}
}

// repairDegree reconnects to a neighbor-of-neighbor after the link to dead
// was pruned, preserving the MaxDegree bound. Candidates come from the peer
// lists gossiped on PING/PONG — the dead node's last-known neighbors first
// (they lost a link too), then the rest of the cached lists. Caller holds
// the lock.
func (n *Node) repairDegree(dead overlay.NodeID) {
	if n.cfg.MaxDegree > 0 && len(n.livePeers()) >= n.cfg.MaxDegree {
		return
	}
	current := make(map[overlay.NodeID]bool)
	for _, nb := range n.env.Neighbors() {
		current[nb] = true
	}
	eligible := func(id overlay.NodeID) bool {
		return id != n.id && !current[id] && !n.peerDead(id) && !n.peerSuspect(id)
	}
	dedup := make(map[overlay.NodeID]bool)
	var candidates []overlay.NodeID
	gather := func(list []overlay.NodeID) []overlay.NodeID {
		// Sorted iteration keeps candidate order independent of map
		// history; the shuffle below provides the randomness.
		sorted := append([]overlay.NodeID(nil), list...)
		sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
		var out []overlay.NodeID
		for _, id := range sorted {
			if eligible(id) && !dedup[id] {
				dedup[id] = true
				out = append(out, id)
			}
		}
		return out
	}
	primary := gather(n.nbrPeers[dead])
	var rest []overlay.NodeID
	others := make([]overlay.NodeID, 0, len(n.nbrPeers))
	for id := range n.nbrPeers {
		if id != dead {
			others = append(others, id)
		}
	}
	sort.Slice(others, func(i, k int) bool { return others[i] < others[k] })
	for _, id := range others {
		rest = append(rest, gather(n.nbrPeers[id])...)
	}
	rng := n.env.Rand()
	rng.Shuffle(len(primary), func(i, k int) { primary[i], primary[k] = primary[k], primary[i] })
	rng.Shuffle(len(rest), func(i, k int) { rest[i], rest[k] = rest[k], rest[i] })
	candidates = append(primary, rest...)
	for _, cand := range candidates {
		if !n.menv.Reconnect(cand, n.cfg.MaxDegree) {
			continue
		}
		n.emitSpan(TraceEvent{
			Kind: SpanRepair, Peer: cand, Origin: dead,
			Fanout: len(n.env.Neighbors()),
		})
		if n.mobs != nil {
			n.mobs.LinkRepaired(n.env.Now(), n.id, dead, cand)
		}
		return
	}
}

// handlePing answers a liveness probe and harvests its gossip. Traffic from
// a peer already confirmed dead is ignored: the verdict is terminal, so the
// "never address a dead peer" invariant stays clean. Caller holds the lock.
func (n *Node) handlePing(m Message) {
	if n.peers == nil || n.peerDead(m.From) {
		return
	}
	n.nbrPeers[m.From] = m.Peers
	n.learnDigests(m)
	n.refutePeer(m.From)
	n.env.Send(m.From, Message{Type: MsgPong, From: n.id, Seq: m.Seq, Peers: n.gossipPeers(), Dir: n.dirGossipPayload()})
}

// handlePong settles an outstanding probe. Caller holds the lock.
func (n *Node) handlePong(m Message) {
	if n.peers == nil || n.peerDead(m.From) {
		return
	}
	n.nbrPeers[m.From] = m.Peers
	n.learnDigests(m)
	n.refutePeer(m.From)
}

// cancelMembershipTimers stops the probe loop and every per-peer timer
// (node crash or shutdown). Caller holds the lock.
func (n *Node) cancelMembershipTimers() {
	if n.probeCancel != nil {
		n.probeCancel()
		n.probeCancel = nil
	}
	for _, ph := range n.peers {
		if ph.probeTimer != nil {
			ph.probeTimer()
			ph.probeTimer = nil
		}
		if ph.deadTimer != nil {
			ph.deadTimer()
			ph.deadTimer = nil
		}
	}
}

// membershipDelayBound is a compile-time reminder that the defaults keep the
// promised detection bound: interval + probe timeout + suspect window must
// not exceed two probe intervals.
var _ = func() time.Duration {
	const bound = 2 * DefaultProbeInterval
	if DefaultProbeInterval+DefaultProbeTimeout+DefaultSuspectTimeout > bound {
		panic("membership defaults break the two-interval detection bound")
	}
	return bound
}()
