package core_test

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/transport"
)

// countingObserver counts lifecycle events per job for invariant checks.
type countingObserver struct {
	core.NopObserver

	starts      map[job.UUID]int
	completions map[job.UUID]int
	failures    map[job.UUID]int
}

func newCountingObserver() *countingObserver {
	return &countingObserver{
		starts:      make(map[job.UUID]int),
		completions: make(map[job.UUID]int),
		failures:    make(map[job.UUID]int),
	}
}

func (o *countingObserver) JobStarted(_ time.Duration, _ overlay.NodeID, uuid job.UUID) {
	o.starts[uuid]++
}

func (o *countingObserver) JobCompleted(_ time.Duration, _ overlay.NodeID, j *job.Job) {
	o.completions[j.UUID]++
}

func (o *countingObserver) JobFailed(_ time.Duration, _ overlay.NodeID, uuid job.UUID, _ string) {
	o.failures[uuid]++
}

// TestInvariantExactlyOnceExecution drives a dense random workload through
// a rescheduling-heavy grid and asserts the protocol's safety property:
// without failures, every submitted job starts exactly once and completes
// exactly once — rescheduling never duplicates or loses work.
func TestInvariantExactlyOnceExecution(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		cfg := core.DefaultConfig()
		cfg.InformInterval = 2 * time.Minute // rescheduling pressure
		cfg.RescheduleThreshold = time.Minute

		engine := sim.NewEngine(seed)
		rng := rand.New(rand.NewSource(seed))
		builder, err := overlay.Build(40, overlay.DefaultBlatantConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		cluster := transport.NewSimCluster(engine, builder.Graph(), overlay.DefaultLatency(uint64(seed)))
		obs := newCountingObserver()
		sampler := resource.NewSampler(rng)
		var profiles []resource.Profile
		for _, id := range builder.Graph().Nodes() {
			p := sampler.Profile()
			profiles = append(profiles, p)
			policy := sched.FCFS
			if rng.Intn(2) == 0 {
				policy = sched.SJF
			}
			if _, err := cluster.AddNode(id, p, policy, cfg, obs, job.DefaultARTModel()); err != nil {
				t.Fatal(err)
			}
		}
		cluster.StartAll()

		submitted := make(map[job.UUID]bool)
		nodes := cluster.Nodes()
		for i := 0; i < 120; i++ {
			req := sampler.Requirements()
			// Keep every job satisfiable so none legitimately fails.
			for {
				ok := false
				for _, p := range profiles {
					if p.Satisfies(req) {
						ok = true
						break
					}
				}
				if ok {
					break
				}
				req = sampler.Requirements()
			}
			p := job.Profile{
				UUID:  job.NewUUID(rng),
				Req:   req,
				ERT:   time.Duration(rng.Intn(180)+60) * time.Minute,
				Class: job.ClassBatch,
			}
			submitted[p.UUID] = true
			target := nodes[rng.Intn(len(nodes))]
			at := time.Duration(i) * 20 * time.Second
			engine.ScheduleAt(at, func() {
				if err := target.Submit(p); err != nil {
					t.Errorf("submit: %v", err)
				}
			})
		}
		engine.Run(72 * time.Hour)

		for uuid := range submitted {
			if got := obs.starts[uuid]; got != 1 {
				t.Fatalf("seed %d: job %s started %d times, want exactly 1", seed, uuid.Short(), got)
			}
			if got := obs.completions[uuid]; got != 1 {
				t.Fatalf("seed %d: job %s completed %d times, want exactly 1", seed, uuid.Short(), got)
			}
			if obs.failures[uuid] != 0 {
				t.Fatalf("seed %d: job %s failed despite satisfiable requirements", seed, uuid.Short())
			}
		}
	}
}

// TestNodeAccessors covers the trivial read-side API.
func TestNodeAccessors(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{{amd64Node(1.3), sched.SJF}, {amd64Node(1.0), sched.FCFS}})
	n := f.node(t, 0)
	if n.ID() != 0 {
		t.Fatalf("ID() = %v", n.ID())
	}
	if n.Policy() != sched.SJF {
		t.Fatalf("Policy() = %v", n.Policy())
	}
	if n.Profile().PerfIndex != 1.3 {
		t.Fatalf("Profile() = %v", n.Profile())
	}
}

func TestOfferAPI(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{{amd64Node(2 - 1e-9), sched.FCFS}, {powerNode(1.0), sched.FCFS}})
	p := amd64Job(f.rng, time.Hour)
	cost, ok := f.node(t, 0).Offer(p)
	if !ok {
		t.Fatal("matching node refused to offer")
	}
	want := sched.Cost(time.Hour.Seconds() / (2 - 1e-9))
	if diff := float64(cost - want); diff > 1 || diff < -1 {
		t.Fatalf("offer cost %v, want ≈%v", cost, want)
	}
	if _, ok := f.node(t, 1).Offer(p); ok {
		t.Fatal("non-matching node offered")
	}
	n := f.node(t, 0)
	n.Kill()
	if _, ok := n.Offer(p); ok {
		t.Fatal("dead node offered")
	}
}

func TestStopHaltsInforming(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	// Load node 0 with queued work so it has something to advertise.
	for i := 0; i < 4; i++ {
		if err := f.node(t, 0).Submit(amd64Job(f.rng, 2*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	informs := 0
	f.cluster.SetTraffic(func(_ time.Duration, _, _ overlay.NodeID, m *core.Message) {
		if m.Type == core.MsgInform {
			informs++
		}
	})
	f.engine.Run(10 * time.Minute)
	if informs == 0 {
		t.Fatal("no INFORM traffic before Stop")
	}
	f.node(t, 0).Stop()
	f.node(t, 1).Stop()
	before := informs
	f.engine.Run(time.Hour)
	if informs != before {
		t.Fatalf("INFORM traffic continued after Stop: %d -> %d", before, informs)
	}
}

// TestSeenTableSweep floods enough distinct waves through one node to
// trigger the dedup table sweep and checks the table stays bounded.
func TestSeenTableSweep(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.AcceptTimeout = 50 * time.Millisecond
	cfg.MaxRequestRetries = 0
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	// 5000 unmatchable jobs → 5000 REQUEST waves passing through every
	// node, exceeding the sweep threshold; waves expire after seenTTL.
	for i := 0; i < 5000; i++ {
		at := time.Duration(i) * 250 * time.Millisecond
		p := amd64Job(f.rng, time.Hour)
		f.engine.ScheduleAt(at, func() {
			_ = f.node(t, 0).Submit(p)
		})
	}
	f.engine.Run(30 * time.Minute)
	// The protocol must still work afterwards.
	if !f.node(t, 1).Idle() {
		t.Fatal("bystander node not idle")
	}
}

func TestWatchdogGivesUpAfterResubmissionLimit(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.NotifyInitiator = true
	cfg.WatchdogGrace = 2
	cfg.MaxRequestRetries = 1
	cfg.RetryBackoff = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS}, // initiator, never matches
		{amd64Node(1.0), sched.FCFS}, // only match
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(5 * time.Minute)
	// Kill the only capable node: the watchdog will retry (discovery now
	// finds nothing, retries once, pends again via watchdog), and after
	// the resubmission budget the job must fail, not loop forever.
	f.node(t, 1).Kill()
	f.engine.Run(200 * time.Hour)
	if _, ok := f.rec.completed[p.UUID]; ok {
		t.Fatal("job completed on a dead grid")
	}
	if len(f.rec.failed) == 0 {
		t.Fatal("watchdog never gave up")
	}
}
