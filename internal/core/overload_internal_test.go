package core

import (
	"errors"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
)

// overloadCounter extends the delivery counter with the overload-control
// plane's observer callbacks.
type overloadCounter struct {
	*deliveryCounter

	requestsShed  int
	assignsShed   int
	reflooded     int
	reenqueued    int
	peersBusy     int
	submitRejects int
}

var (
	_ Observer         = (*overloadCounter)(nil)
	_ OverloadObserver = (*overloadCounter)(nil)
)

func newOverloadCounter() *overloadCounter {
	return &overloadCounter{deliveryCounter: newDeliveryCounter()}
}

func (c *overloadCounter) RequestShed(time.Duration, overlay.NodeID, job.UUID, int) {
	c.requestsShed++
}

func (c *overloadCounter) AssignShed(time.Duration, overlay.NodeID, job.UUID, int) {
	c.assignsShed++
}

func (c *overloadCounter) ShedRedispatched(_ time.Duration, _ overlay.NodeID, _ job.UUID, reflooded bool) {
	if reflooded {
		c.reflooded++
	} else {
		c.reenqueued++
	}
}

func (c *overloadCounter) PeerBusy(time.Duration, overlay.NodeID, overlay.NodeID) {
	c.peersBusy++
}

func (c *overloadCounter) SubmitRejected(time.Duration, overlay.NodeID, job.UUID, int) {
	c.submitRejects++
}

// sheddingConfig arms the bounded run queue at depth 1 (one running job
// saturates a provider) with rescheduling off.
func sheddingConfig() Config {
	cfg := DefaultConfig()
	cfg.InformJobs = 0
	cfg.MaxQueuedJobs = 1
	return cfg
}

// bigJobERT is bigJob with a chosen running-time estimate.
func bigJobERT(uuid job.UUID, ert time.Duration) job.Profile {
	p := bigJob(uuid)
	p.ERT = ert
	return p
}

func TestRetryDelayFixedWithoutCap(t *testing.T) {
	net := newLossyNet(1)
	cfg := sheddingConfig()
	n := net.addNode(t, 1, smallProfile(), cfg, nil)
	for retries := 1; retries <= 10; retries++ {
		if got := n.retryDelay(retries); got != cfg.RetryBackoff {
			t.Fatalf("retryDelay(%d) = %v, want fixed %v", retries, got, cfg.RetryBackoff)
		}
	}
}

func TestRetryDelayCappedAndJittered(t *testing.T) {
	net := newLossyNet(2)
	cfg := sheddingConfig()
	cfg.RetryBackoff = 30 * time.Second
	cfg.RetryBackoffCap = 4 * time.Minute
	n := net.addNode(t, 1, smallProfile(), cfg, nil)
	for retries := 1; retries <= 80; retries++ {
		// The un-jittered ladder: base doubling per retry, clamped.
		d := cfg.RetryBackoff << uint(min(retries-1, retryBackoffShiftMax))
		if d <= 0 || d > cfg.RetryBackoffCap {
			d = cfg.RetryBackoffCap
		}
		for draw := 0; draw < 20; draw++ {
			got := n.retryDelay(retries)
			if got < d/2 || got >= d {
				t.Fatalf("retryDelay(%d) = %v, want in [%v, %v)", retries, got, d/2, d)
			}
		}
	}
	// Deep retry counts must not overflow the shift: the delay stays at
	// the cap, never collapses to zero or goes negative.
	for _, retries := range []int{100, 1000, 1 << 20} {
		got := n.retryDelay(retries)
		if got < cfg.RetryBackoffCap/2 || got >= cfg.RetryBackoffCap {
			t.Fatalf("retryDelay(%d) = %v, want in [%v, %v)", retries, got,
				cfg.RetryBackoffCap/2, cfg.RetryBackoffCap)
		}
	}
}

func TestSubmitAdmissionControl(t *testing.T) {
	net := newLossyNet(3)
	cfg := DefaultConfig()
	cfg.InformJobs = 0
	cfg.MaxPendingSubmits = 1
	counter := newOverloadCounter()
	initiator := net.addNode(t, 1, smallProfile(), cfg, counter)
	net.addNode(t, 2, bigProfile(), cfg, counter)
	net.connect(1, 2)

	if err := initiator.Submit(bigJobERT("a1a1a1a1a1a1a1a1a1a1a1a1a1a1a1a1", time.Minute)); err != nil {
		t.Fatal(err)
	}
	err := initiator.Submit(bigJobERT("a2a2a2a2a2a2a2a2a2a2a2a2a2a2a2a2", time.Minute))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second concurrent submit: err = %v, want ErrOverloaded", err)
	}
	if counter.submitRejects != 1 {
		t.Fatalf("submitRejects = %d, want 1", counter.submitRejects)
	}

	// Once the first discovery resolves, the slot frees and a new
	// submission is admitted again.
	net.engine.Run(30 * time.Minute)
	if err := initiator.Submit(bigJobERT("a3a3a3a3a3a3a3a3a3a3a3a3a3a3a3a3", time.Minute)); err != nil {
		t.Fatalf("post-drain submit rejected: %v", err)
	}
	net.engine.Run(time.Hour)
	if len(counter.completed) != 2 {
		t.Fatalf("completed %d jobs, want 2 admitted jobs done (failed=%d)", len(counter.completed), counter.failed)
	}
}

// TestShedAssignRefloodsFromInitiator drives the full shed path without the
// ack handshake: two initiators win offers from the same depth-1 provider,
// the loser's ASSIGN is shed with BUSY, and the initiator re-floods until
// capacity frees. Nothing is lost and nothing double-starts.
func TestShedAssignRefloodsFromInitiator(t *testing.T) {
	net := newLossyNet(4)
	cfg := sheddingConfig()
	counter := newOverloadCounter()
	i1 := net.addNode(t, 1, smallProfile(), cfg, counter)
	i2 := net.addNode(t, 2, smallProfile(), cfg, counter)
	net.addNode(t, 3, bigProfile(), cfg, counter)
	net.connect(1, 3)
	net.connect(2, 3)

	p1 := bigJobERT("b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1", 2*time.Minute)
	p2 := bigJobERT("b2b2b2b2b2b2b2b2b2b2b2b2b2b2b2b2", 2*time.Minute)
	if err := i1.Submit(p1); err != nil {
		t.Fatal(err)
	}
	if err := i2.Submit(p2); err != nil {
		t.Fatal(err)
	}
	net.engine.Run(time.Hour)

	for _, p := range []job.Profile{p1, p2} {
		if counter.completed[p.UUID] != 1 {
			t.Fatalf("job %s completions = %d, want 1 (failed=%d)",
				p.UUID, counter.completed[p.UUID], counter.failed)
		}
		if counter.starts[p.UUID] != 1 {
			t.Fatalf("job %s starts = %d, want exactly 1", p.UUID, counter.starts[p.UUID])
		}
	}
	if counter.assignsShed != 1 {
		t.Fatalf("assignsShed = %d, want 1", counter.assignsShed)
	}
	if counter.reflooded != 1 {
		t.Fatalf("reflooded = %d, want 1 (reenqueued=%d)", counter.reflooded, counter.reenqueued)
	}
	if counter.peersBusy == 0 {
		t.Fatal("shed BUSY never demoted the provider at the initiator")
	}
	// The shed job's re-floods hit the still-saturated provider, which
	// answers with advisory BUSY instead of an offer.
	if counter.requestsShed == 0 {
		t.Fatal("saturated provider never shed a REQUEST")
	}
	if net.countType(MsgBusy) < 2 {
		t.Fatalf("BUSY transmissions = %d, want at least one shed and one advisory", net.countType(MsgBusy))
	}
}

// TestShedAssignClosesAckHandshake runs the same contention with the ASSIGN
// handshake armed: the BUSY must close the open handshake (no retransmission
// ladder, no fallback recovery) and re-dispatch exactly once.
func TestShedAssignClosesAckHandshake(t *testing.T) {
	net := newLossyNet(5)
	cfg := sheddingConfig()
	cfg.AssignAck = true
	counter := newOverloadCounter()
	i1 := net.addNode(t, 1, smallProfile(), cfg, counter)
	i2 := net.addNode(t, 2, smallProfile(), cfg, counter)
	net.addNode(t, 3, bigProfile(), cfg, counter)
	net.connect(1, 3)
	net.connect(2, 3)

	p1 := bigJobERT("c1c1c1c1c1c1c1c1c1c1c1c1c1c1c1c1", 2*time.Minute)
	p2 := bigJobERT("c2c2c2c2c2c2c2c2c2c2c2c2c2c2c2c2", 2*time.Minute)
	if err := i1.Submit(p1); err != nil {
		t.Fatal(err)
	}
	if err := i2.Submit(p2); err != nil {
		t.Fatal(err)
	}
	net.engine.Run(time.Hour)

	for _, p := range []job.Profile{p1, p2} {
		if counter.completed[p.UUID] != 1 || counter.starts[p.UUID] != 1 {
			t.Fatalf("job %s: completions=%d starts=%d, want 1/1 (failed=%d)",
				p.UUID, counter.completed[p.UUID], counter.starts[p.UUID], counter.failed)
		}
	}
	if counter.assignsShed != 1 || counter.reflooded != 1 {
		t.Fatalf("assignsShed=%d reflooded=%d, want 1/1", counter.assignsShed, counter.reflooded)
	}
	if counter.retried != 0 {
		t.Fatalf("ASSIGN retransmissions = %d, want 0: BUSY closes the handshake", counter.retried)
	}
	if counter.recovered != 0 {
		t.Fatalf("fallback recoveries = %d, want 0: BUSY pre-empts the retry ladder", counter.recovered)
	}
}

// TestAdvisoryBusyOnRequest pins the cheap half of shedding: a saturated
// provider that satisfies a flooded REQUEST answers BUSY instead of ACCEPT,
// and the initiator's discovery succeeds on a later retry once the provider
// drains.
func TestAdvisoryBusyOnRequest(t *testing.T) {
	net := newLossyNet(6)
	cfg := sheddingConfig()
	counter := newOverloadCounter()
	initiator := net.addNode(t, 1, smallProfile(), cfg, counter)
	net.addNode(t, 2, bigProfile(), cfg, counter)
	net.connect(1, 2)

	p1 := bigJobERT("d1d1d1d1d1d1d1d1d1d1d1d1d1d1d1d1", 2*time.Minute)
	p2 := bigJobERT("d2d2d2d2d2d2d2d2d2d2d2d2d2d2d2d2", 2*time.Minute)
	if err := initiator.Submit(p1); err != nil {
		t.Fatal(err)
	}
	var submitErr error
	// Submit the second job once the first occupies the provider.
	net.engine.Schedule(30*time.Second, func() { submitErr = initiator.Submit(p2) })
	net.engine.Run(time.Hour)

	if submitErr != nil {
		t.Fatalf("delayed submit: %v", submitErr)
	}
	for _, p := range []job.Profile{p1, p2} {
		if counter.completed[p.UUID] != 1 {
			t.Fatalf("job %s completions = %d, want 1 (failed=%d)",
				p.UUID, counter.completed[p.UUID], counter.failed)
		}
	}
	if counter.requestsShed == 0 {
		t.Fatal("saturated provider never answered a REQUEST with BUSY")
	}
	if counter.peersBusy == 0 {
		t.Fatal("advisory BUSY never reached the initiator's demotion path")
	}
	if counter.assignsShed != 0 {
		t.Fatalf("assignsShed = %d, want 0: no ASSIGN was ever sent to a saturated node", counter.assignsShed)
	}
}

// TestHandleBusyReschedulePath white-boxes the Via classification: a shed
// BUSY whose Via names another node means this node was the rescheduling
// sender, so it takes the job back into its own queue.
func TestHandleBusyReschedulePath(t *testing.T) {
	net := newLossyNet(7)
	cfg := DefaultConfig()
	cfg.InformJobs = 0
	counter := newOverloadCounter()
	n := net.addNode(t, 1, bigProfile(), cfg, counter)

	p := bigJobERT("e1e1e1e1e1e1e1e1e1e1e1e1e1e1e1e1", time.Minute)
	n.HandleMessage(Message{Type: MsgBusy, From: 2, Job: p, Re: MsgAssign, Via: 9})
	if counter.reenqueued != 1 {
		t.Fatalf("reenqueued = %d, want 1 (reflooded=%d)", counter.reenqueued, counter.reflooded)
	}
	// A duplicate BUSY while the job is still held must be idempotent.
	n.HandleMessage(Message{Type: MsgBusy, From: 2, Job: p, Re: MsgAssign, Via: 9})
	if counter.reenqueued != 1 {
		t.Fatalf("duplicate BUSY re-enqueued again: reenqueued = %d", counter.reenqueued)
	}
	// An advisory BUSY only demotes; it never touches the queue.
	n.HandleMessage(Message{Type: MsgBusy, From: 3, Job: p, Re: MsgRequest})
	if counter.reenqueued != 1 || counter.reflooded != 0 {
		t.Fatal("advisory BUSY triggered a re-dispatch")
	}
	net.engine.Run(time.Hour)
	if counter.completed[p.UUID] != 1 {
		t.Fatalf("re-acquired job completions = %d, want 1", counter.completed[p.UUID])
	}
	if counter.starts[p.UUID] != 1 {
		t.Fatalf("re-acquired job starts = %d, want 1", counter.starts[p.UUID])
	}
	if counter.peersBusy < 2 {
		t.Fatalf("peersBusy = %d, want every BUSY to demote its sender", counter.peersBusy)
	}
}

func TestOverloadedNodeNeverSelfOffers(t *testing.T) {
	net := newLossyNet(8)
	cfg := sheddingConfig()
	counter := newOverloadCounter()
	// Two capable nodes: the initiator saturates itself first, so its own
	// discovery must place the second job on the neighbor.
	n1 := net.addNode(t, 1, bigProfile(), cfg, counter)
	net.addNode(t, 2, bigProfile(), cfg, counter)
	net.connect(1, 2)

	p1 := bigJobERT("f1f1f1f1f1f1f1f1f1f1f1f1f1f1f1f1", 30*time.Minute)
	p2 := bigJobERT("f2f2f2f2f2f2f2f2f2f2f2f2f2f2f2f2", 30*time.Minute)
	if err := n1.Submit(p1); err != nil {
		t.Fatal(err)
	}
	// Wait until p1 runs on one of the nodes, then submit p2 from node 1.
	var submitErr error
	net.engine.Schedule(time.Minute, func() { submitErr = n1.Submit(p2) })
	net.engine.Run(3 * time.Hour)

	if submitErr != nil {
		t.Fatalf("second submit: %v", submitErr)
	}
	if len(counter.completed) != 2 {
		t.Fatalf("completed %d, want 2 (failed=%d)", len(counter.completed), counter.failed)
	}
	// Depth bound 1 and two 30m jobs: they can never run on the same node
	// concurrently, and a saturated node never bids for the second job.
	if counter.starts[p1.UUID] != 1 || counter.starts[p2.UUID] != 1 {
		t.Fatalf("starts: p1=%d p2=%d, want 1/1", counter.starts[p1.UUID], counter.starts[p2.UUID])
	}
}
