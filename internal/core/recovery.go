package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/wal"
)

// Counter slack applied on recovery: spans and flood sequence numbers issued
// after the last journal append are not recorded, so a recovered node must
// skip past the journaled maxima by a safety margin — a reused flood key
// would be silently suppressed by every peer's dedup table, and a reused
// span ID would corrupt the causal tree.
const (
	recoverSeqSlack  = 64
	recoverSpanSlack = 4096
)

// RecoveryStats summarizes one journal recovery.
type RecoveryStats struct {
	// JobsRecovered counts distinct job-state entries restored: queued
	// jobs (including an interrupted running job, which re-enters the
	// queue), re-armed initiator watchdogs, and re-opened ASSIGN
	// handshakes.
	JobsRecovered int

	// ReplayRecords is the number of journal records folded on top of the
	// snapshot.
	ReplayRecords int

	// SnapshotAge is how far the snapshot lagged the recovery instant
	// (the node's whole pre-crash uptime when no snapshot existed).
	SnapshotAge time.Duration

	// Clean reports whether nothing had to be discarded. False means a
	// torn journal tail was cut — the expected artifact of a hard crash
	// (or short write) mid-append, degrading to clean-prefix recovery.
	// Actual corruption never reaches these stats: Recover refuses to run
	// on a corrupt store and returns an error wrapping wal.ErrCorrupt.
	Clean bool
}

// AttachJournal binds a write-ahead journal to the node. Every scheduler
// state transition is appended from then on; call before Start and before
// any traffic is delivered. A nil journal detaches (the node reverts to
// fail-stop).
func (n *Node) AttachJournal(j *wal.Journal) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.journal = j
}

// Journal returns the attached write-ahead journal, if any.
func (n *Node) Journal() *wal.Journal {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.journal
}

// Recover rebuilds the node's scheduler state from the attached journal:
// the local queue, initiator failsafe tracking (watchdogs re-armed on the
// environment clock), and unacknowledged outbound ASSIGNs (handshake
// reopened with an immediate retransmission). Recovered queued jobs notify
// their initiators and, when rescheduling is enabled, are re-announced via
// INFORM under fresh flood sequence numbers. Replayed spans parent to the
// journaled pre-crash spans, linking the recovery into the original causal
// tree.
//
// Call after AttachJournal and before Start, on a node that has taken no
// traffic. Recovery ends with a fresh snapshot (compacting the pre-crash
// journal) so a second crash replays only post-recovery records.
func (n *Node) Recover() (RecoveryStats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var stats RecoveryStats
	if n.journal == nil {
		return stats, fmt.Errorf("node %v: recover without a journal", n.id)
	}
	if !n.alive {
		return stats, fmt.Errorf("node %v: recover on a dead node", n.id)
	}
	snap, recs, info, err := n.journal.Load()
	if err != nil {
		return stats, fmt.Errorf("node %v: %w", n.id, err)
	}
	if info.Corrupt() {
		// Bit rot inside accepted frames: the store can no longer prove
		// which executions happened, so replaying it would risk double
		// execution. Refuse loudly; the operator (or supervisor) decides
		// whether to wipe and rejoin amnesiac. A torn tail, by contrast,
		// is the expected crash artifact and recovery proceeds below.
		return stats, fmt.Errorf("node %v: snapshot %v, journal %v: %w",
			n.id, info.SnapshotDamage, info.JournalDamage, wal.ErrCorrupt)
	}
	state := wal.Replay(snap, recs)
	now := n.env.Now()
	stats.ReplayRecords = len(recs)
	stats.JobsRecovered = state.Jobs()
	stats.Clean = info.Clean()
	if snap != nil {
		stats.SnapshotAge = now - snap.At
		if stats.SnapshotAge < 0 {
			// Live restarts reset the environment clock to zero, so a
			// snapshot from the previous process can carry a later stamp.
			stats.SnapshotAge = 0
		}
	} else {
		stats.SnapshotAge = now
	}

	// Skip the counters past everything the pre-crash process might have
	// issued after its last journal append.
	if state.Seq+recoverSeqSlack > n.seq {
		n.seq = state.Seq + recoverSeqSlack
	}
	if state.SpanSeq+recoverSpanSlack > n.spanSeq {
		n.spanSeq = state.SpanSeq + recoverSpanSlack
	}

	n.emitSpan(TraceEvent{Kind: SpanRestart, Fanout: stats.JobsRecovered})

	// An interrupted execution never completed: the job re-enters the
	// queue behind the journaled queued jobs and runs again from scratch.
	queued := state.Queued
	if state.Running != nil {
		queued = append(queued, wal.QueuedJob(*state.Running))
	}
	type announce struct {
		uuid job.UUID
		span uint64
	}
	var announces []announce
	for _, q := range queued {
		uuid := q.Profile.UUID
		if _, dup := n.queue.Get(uuid); dup {
			continue
		}
		if _, dup := n.held[uuid]; dup {
			continue
		}
		initiator := q.Initiator
		if initiator == 0 {
			initiator = n.id
		}
		rspan := n.emitSpan(TraceEvent{Kind: SpanRecovered, UUID: uuid, Parent: q.Span, Msg: MsgAssign, Peer: initiator})
		n.jlog(wal.Record{Type: wal.RecEnqueue, UUID: uuid, Profile: &q.Profile, Peer: initiator, Span: rspan})
		if n.cfg.NotifyInitiator && initiator != n.id {
			// A remote-initiator copy is fenced until the initiator
			// re-confirms it: during the outage its watchdog may have
			// resubmitted the job elsewhere, and re-executing both copies
			// would break exactly-one. The resurfaced query retries with
			// backoff, so a partitioned initiator delays the copy rather
			// than duplicating it. Durably the copy stays an enqueued job:
			// a re-crash replays it here and fences it again.
			h := &heldJob{profile: q.Profile, initiator: initiator, span: rspan}
			n.held[uuid] = h
			n.env.Send(initiator, Message{Type: MsgNotify, From: n.id, Job: q.Profile, Notify: NotifyResurfaced, Span: rspan})
			n.armResurfacedRetry(h)
			continue
		}
		n.initiators[uuid] = initiator
		n.queue.Enqueue(job.New(q.Profile), now)
		if n.tobs != nil {
			n.enqSpans[uuid] = rspan
		}
		announces = append(announces, announce{uuid: uuid, span: rspan})
	}

	// Initiator-side failsafe tracking: re-arm every watchdog. No job is
	// re-flooded here — if the assignee still holds the job the watchdog
	// never fires, and if it crashed too the watchdog recovers it late
	// rather than duplicating live work.
	for _, tr := range state.Tracked {
		uuid := tr.Profile.UUID
		rspan := n.emitSpan(TraceEvent{Kind: SpanRecovered, UUID: uuid, Parent: tr.Span, Msg: MsgNotify, Peer: tr.Assignee, Attempt: tr.Resub})
		t := &trackedJob{profile: tr.Profile, assignee: tr.Assignee, resub: tr.Resub, expect: tr.Expect, span: rspan}
		n.tracked[uuid] = t
		n.jlog(wal.Record{Type: wal.RecWatchdog, UUID: uuid, Profile: &tr.Profile, Peer: tr.Assignee, Resub: tr.Resub, Expect: tr.Expect, Span: rspan})
		n.armWatchdog(t)
	}

	// Unacknowledged outbound ASSIGNs: reopen the handshake and retransmit
	// immediately. Duplicate delivery is safe — the assignee re-acks
	// ASSIGNs it already queued.
	for _, oaState := range state.OutAssigns {
		uuid := oaState.Profile.UUID
		rspan := n.emitSpan(TraceEvent{Kind: SpanRecovered, UUID: uuid, Parent: oaState.Span, Msg: MsgAssignAck, Peer: oaState.To, Attempt: oaState.Attempts})
		oa := &outAssign{
			profile:    oaState.Profile,
			to:         oaState.To,
			span:       rspan,
			initiator:  oaState.Initiator,
			reschedule: oaState.Reschedule,
			attempts:   oaState.Attempts,
		}
		n.outAssigns[uuid] = oa
		n.jlog(wal.Record{Type: wal.RecAssignSent, UUID: uuid, Profile: &oaState.Profile, Peer: oa.to, Init: oa.initiator, Reschedule: oa.reschedule, Attempts: oa.attempts, Span: rspan})
		n.env.Send(oa.to, Message{Type: MsgAssign, From: oa.initiator, Job: oa.profile, Via: n.id, Span: rspan})
		n.armAssignRetry(oa)
	}

	// Completion NOTIFYs that never got their ack: resend immediately and
	// re-arm the backoff loop. Over-sending is safe (the initiator acks
	// duplicates, and unknown jobs too); under-sending would leave its
	// watchdog to rerun a job this node already completed and reported.
	for _, pnState := range state.PendingNotify {
		uuid := pnState.Profile.UUID
		rspan := n.emitSpan(TraceEvent{Kind: SpanRecovered, UUID: uuid, Parent: pnState.Span, Msg: MsgNotify, Peer: pnState.Initiator})
		pn := &pendingNotify{profile: pnState.Profile, initiator: pnState.Initiator, span: rspan}
		n.notifyOut[uuid] = pn
		n.jlog(wal.Record{Type: wal.RecNotifySent, UUID: uuid, Profile: &pnState.Profile, Peer: pn.initiator, Span: rspan})
		n.env.Send(pn.initiator, Message{Type: MsgNotify, From: n.id, Job: pn.profile, Notify: NotifyCompleted, Span: rspan})
		n.armNotifyRetry(pn)
	}

	if n.robs != nil {
		n.robs.NodeRecovered(now, n.id, stats.JobsRecovered, stats.ReplayRecords, stats.SnapshotAge)
	}

	// Compact: the recovered state becomes the new snapshot, so the
	// pre-crash journal is never replayed twice.
	if err := n.checkpointLocked(); err != nil {
		return stats, err
	}

	// Re-announce recovered queued jobs for rescheduling under fresh
	// sequence numbers (peers' dedup tables would suppress reused keys).
	if n.cfg.Rescheduling() {
		for _, a := range announces {
			n.announceRecovered(a.uuid, a.span)
		}
	}
	n.maybeStart()
	return stats, nil
}

// announceRecovered floods one INFORM advertising a recovered queued job,
// parented to its recovery span. Caller holds the lock.
func (n *Node) announceRecovered(uuid job.UUID, parent uint64) {
	j, ok := n.queue.Get(uuid)
	if !ok {
		return // started (or rescheduled) during recovery
	}
	cost, ok := n.queue.QueuedCost(uuid, n.env.Now(), n.estRemaining())
	if !ok {
		return
	}
	var span uint64
	if n.tobs != nil {
		span = n.nextSpanID()
	}
	msg := Message{
		Type:   MsgInform,
		From:   n.id,
		Job:    j.Profile,
		Cost:   cost,
		TTL:    n.cfg.InformTTL - 1,
		Fanout: n.cfg.InformFanout,
		Seq:    n.nextSeq(),
		Via:    n.id,
		Hop:    1,
		Span:   span,
	}
	n.markSeen(msg.floodFP())
	sent := n.forward(msg, n.cfg.InformFanout)
	n.emitSpan(TraceEvent{
		Kind: SpanFloodOrigin, UUID: uuid, Span: span, Parent: parent,
		Msg: MsgInform, Hop: 0, TTL: n.cfg.InformTTL, Fanout: sent,
		Seq: msg.Seq, Origin: n.id, Cost: cost,
	})
}

// Checkpoint snapshots the node's current scheduler state into the journal
// and compacts it. A clean shutdown that checkpoints recovers with zero
// replay records.
func (n *Node) Checkpoint() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.journal == nil {
		return nil
	}
	return n.checkpointLocked()
}

// checkpointLocked writes the snapshot and compacts the journal. Caller
// holds the lock.
func (n *Node) checkpointLocked() error {
	if n.journal == nil {
		return nil
	}
	return n.journal.WriteSnapshot(n.snapshotState())
}

// snapshotState captures the node's recoverable scheduler state with
// deterministic (UUID-sorted) ordering. Caller holds the lock.
func (n *Node) snapshotState() *wal.State {
	s := &wal.State{
		Node:    n.id,
		At:      n.env.Now(),
		Seq:     n.seq,
		SpanSeq: n.spanSeq,
	}
	for _, j := range n.queue.Jobs() {
		initiator, ok := n.initiators[j.UUID]
		if !ok {
			initiator = n.id
		}
		s.Queued = append(s.Queued, wal.QueuedJob{Profile: j.Profile, Initiator: initiator, Span: n.enqSpans[j.UUID]})
	}
	// Fenced recovered copies are durably still queued jobs: a restart
	// replays them and re-fences.
	for _, h := range n.held {
		s.Queued = append(s.Queued, wal.QueuedJob{Profile: h.profile, Initiator: h.initiator, Span: h.span})
	}
	sort.Slice(s.Queued, func(i, k int) bool { return s.Queued[i].Profile.UUID < s.Queued[k].Profile.UUID })
	for _, t := range n.tracked {
		s.Tracked = append(s.Tracked, wal.TrackedJob{Profile: t.profile, Assignee: t.assignee, Resub: t.resub, Expect: t.expect, Span: t.span})
	}
	sort.Slice(s.Tracked, func(i, k int) bool { return s.Tracked[i].Profile.UUID < s.Tracked[k].Profile.UUID })
	for _, oa := range n.outAssigns {
		s.OutAssigns = append(s.OutAssigns, wal.OutAssign{Profile: oa.profile, To: oa.to, Initiator: oa.initiator, Reschedule: oa.reschedule, Attempts: oa.attempts, Span: oa.span})
	}
	sort.Slice(s.OutAssigns, func(i, k int) bool { return s.OutAssigns[i].Profile.UUID < s.OutAssigns[k].Profile.UUID })
	if n.running != nil {
		s.Running = &wal.RunningJob{Profile: n.running.Profile, Initiator: n.runningInitiator, Span: n.runningSpan}
	}
	return s
}

// jlog appends one record to the attached journal (a no-op without one),
// stamping the node clock and counters, and checkpoints when the compaction
// cadence is due. Journal write errors are sticky inside the journal and
// deliberately not fatal here: a node with a failing disk degrades to
// fail-stop (amnesiac restart) instead of halting the protocol. Caller
// holds the lock.
func (n *Node) jlog(rec wal.Record) {
	if n.journal == nil {
		return
	}
	rec.At = n.env.Now()
	rec.Seq = n.seq
	rec.SpanSeq = n.spanSeq
	if err := n.journal.Append(rec); err != nil {
		return
	}
	if n.journal.ShouldSnapshot() {
		_ = n.checkpointLocked()
	}
}
