package core_test

import (
	"sync"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// trafficLog collects transmissions for protocol-level assertions.
type trafficLog struct {
	mu   sync.Mutex
	msgs []trafficEntry
}

type trafficEntry struct {
	at       time.Duration
	from, to overlay.NodeID
	msg      core.Message
}

func (l *trafficLog) hook(at time.Duration, from, to overlay.NodeID, m *core.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.msgs = append(l.msgs, trafficEntry{at: at, from: from, to: to, msg: *m})
}

func (l *trafficLog) byType(t core.MsgType) []trafficEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []trafficEntry
	for _, e := range l.msgs {
		if e.msg.Type == t {
			out = append(out, e)
		}
	}
	return out
}

func TestTTLDecrementsPerHop(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.RequestTTL = 3
	cfg.RequestFanout = 1
	cfg.MaxRequestRetries = 0
	// Line topology: 0-1-2-3-4; nobody matches, so the flood walks the
	// line decrementing TTL.
	f := newLineFixture(t, cfg, 5)
	log := &trafficLog{}
	f.cluster.SetTraffic(log.hook)
	p := amd64Job(f.rng, time.Hour) // all nodes are POWER: no match
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(time.Minute)
	reqs := log.byType(core.MsgRequest)
	if len(reqs) == 0 {
		t.Fatal("no REQUEST traffic")
	}
	// Max chain: origin sends TTL=2, next hop TTL=1, next TTL=0, stop.
	// So at most 3 transmissions along the line.
	if len(reqs) > cfg.RequestTTL {
		t.Fatalf("flood sent %d hops, TTL allows %d", len(reqs), cfg.RequestTTL)
	}
	for i, e := range reqs {
		wantTTL := cfg.RequestTTL - 1 - i
		if e.msg.TTL != wantTTL {
			t.Fatalf("hop %d carries TTL %d, want %d", i, e.msg.TTL, wantTTL)
		}
	}
}

func TestForwardExcludesSender(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.RequestTTL = 6
	cfg.RequestFanout = 4
	cfg.MaxRequestRetries = 0
	f := newLineFixture(t, cfg, 3) // 0-1-2
	log := &trafficLog{}
	f.cluster.SetTraffic(log.hook)
	if err := f.node(t, 0).Submit(amd64Job(f.rng, time.Hour)); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(time.Minute)
	for _, e := range log.byType(core.MsgRequest) {
		if e.msg.Via == e.to {
			t.Fatalf("node %v forwarded the flood back to its sender", e.from)
		}
	}
}

// newLineFixture builds nodes 0-1-...-n-1 in a line, all POWER arch (so
// AMD64 jobs never match).
func newLineFixture(t *testing.T, cfg core.Config, n int) *fixture {
	t.Helper()
	specs := make([]nodeSpec, n)
	for i := range specs {
		specs[i] = nodeSpec{powerNode(1.0), sched.FCFS}
	}
	f := newFixture(t, cfg, specs)
	// newFixture built a complete graph; rebuild as a line.
	g := f.cluster.Graph()
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			g.RemoveLink(overlay.NodeID(i), overlay.NodeID(k))
		}
	}
	for i := 0; i < n-1; i++ {
		g.AddLink(overlay.NodeID(i), overlay.NodeID(i+1))
	}
	return f
}

func TestInformAdvertisesLongestWaiting(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	cfg.InformJobs = 1
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	log := &trafficLog{}
	f.cluster.SetTraffic(log.hook)
	// Two jobs with distinct grid submission times, both queued behind a
	// running one on node 0.
	older := amd64Job(f.rng, time.Hour)
	older.SubmittedAt = 0
	newer := amd64Job(f.rng, time.Hour)
	newer.SubmittedAt = time.Minute
	blocker := amd64Job(f.rng, 5*time.Hour)
	for _, p := range []job.Profile{blocker, older, newer} {
		if err := f.node(t, 0).Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	f.engine.Run(10 * time.Minute)
	informs := log.byType(core.MsgInform)
	if len(informs) == 0 {
		t.Fatal("no INFORM traffic")
	}
	// With InformJobs=1, every advertisement must be for the oldest
	// waiting queued job.
	for _, e := range informs {
		if e.msg.Job.UUID == newer.UUID {
			t.Fatal("INFORM advertised the newer job while an older one waits")
		}
	}
}

func TestDeadlineReschedulingEndToEnd(t *testing.T) {
	// A deadline job queued behind heavy work must migrate to a newly
	// joined EDF node via the NAL cost path.
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	cfg.RescheduleThreshold = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.EDF},
		{powerNode(1.0), sched.EDF},
	})
	mk := func(ert, deadline time.Duration) job.Profile {
		p := amd64Job(f.rng, ert)
		p.Class = job.ClassDeadline
		p.Deadline = deadline
		return p
	}
	// Clog node 0.
	for i := 0; i < 4; i++ {
		if err := f.node(t, 0).Submit(mk(2*time.Hour, time.Duration(10+i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	tight := mk(time.Hour, 3*time.Hour)
	if err := f.node(t, 0).Submit(tight); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(2 * time.Minute)
	g := f.cluster.Graph()
	g.AddNode(2)
	g.AddLink(2, 0)
	g.AddLink(2, 1)
	n, err := f.cluster.AddNode(2, amd64Node(1.9), sched.EDF, cfg, f.rec, job.ARTModel{Mode: job.DriftNone})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	f.engine.Run(30 * time.Hour)
	j, ok := f.rec.completed[tight.UUID]
	if !ok {
		t.Fatal("tight deadline job never completed")
	}
	if f.rec.reschedules == 0 {
		t.Fatal("no NAL-based rescheduling happened")
	}
	if j.MissedDeadline() {
		t.Fatalf("tight job missed its deadline (completed %v, deadline %v) despite an idle fast node",
			j.CompletedAt, j.Deadline)
	}
}

func TestStaleRescheduleOfferRevalidated(t *testing.T) {
	// Craft a stale ACCEPT: by the time it arrives, the job's local cost
	// has dropped (queue drained), so the assignee must keep the job.
	cfg := core.DefaultConfig()
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(time.Minute)
	// The job is now running or queued on some node; find it.
	var host *core.Node
	for _, id := range []overlay.NodeID{0, 1} {
		if n := f.node(t, id); n.Busy() || n.QueueLen() > 0 {
			host = n
		}
	}
	if host == nil {
		t.Fatal("job not placed")
	}
	// Fabricate an ACCEPT claiming a cost that no longer clears the
	// threshold against the job's current (running → not queued) state.
	host.HandleMessage(core.Message{
		Type: core.MsgAccept,
		From: 1 - host.ID(),
		Job:  p,
		Cost: 0.001,
	})
	f.engine.Run(12 * time.Hour)
	if f.rec.reschedules != 0 {
		t.Fatal("running/stale job was rescheduled from a fabricated offer")
	}
	if _, ok := f.rec.completed[p.UUID]; !ok {
		t.Fatal("job never completed")
	}
}

func TestInformNotSentWhenQueueEmpty(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
	})
	log := &trafficLog{}
	f.cluster.SetTraffic(log.hook)
	f.engine.Run(time.Hour)
	if informs := log.byType(core.MsgInform); len(informs) != 0 {
		t.Fatalf("idle grid sent %d INFORMs", len(informs))
	}
}
