// Package core implements the ARiA protocol: fully distributed grid
// meta-scheduling over a peer-to-peer overlay (Brocco et al., ICDCS 2010).
//
// The protocol's four message types — REQUEST, ACCEPT, INFORM, ASSIGN —
// give it its name. A job submitted to any node (the initiator) is
// advertised with a REQUEST flood; nodes whose resources match reply with
// an ACCEPT carrying a cost; the initiator delegates the job via ASSIGN to
// the cheapest offer. While a job waits in its assignee's queue, periodic
// INFORM floods advertise it for dynamic rescheduling: any node that can
// beat the current cost by a configurable threshold sends an ACCEPT to the
// assignee, which moves the job with a fresh ASSIGN.
//
// The engine in this package is callback-driven and free of goroutines: it
// interacts with the world only through the Env interface (clock, random
// source, overlay neighborhood, message delivery). The same engine runs
// deterministically under the discrete-event simulator and concurrently
// under the in-process and TCP transports.
package core

import (
	"fmt"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// MsgType enumerates the ARiA message types of Table I, plus the optional
// NOTIFY tracking extension sketched in §III-D, the ASSIGN_ACK delivery
// hardening extension, and the PING/PONG membership probes of the
// SWIM-style liveness plane.
type MsgType int

// Protocol message types.
const (
	MsgRequest   MsgType = iota + 1 // initiator → flood: find candidates
	MsgAccept                       // candidate → initiator or assignee: cost offer
	MsgInform                       // assignee → flood: advertise queued job
	MsgAssign                       // initiator/assignee → new assignee: delegate job
	MsgNotify                       // assignee → initiator: tracking (extension)
	MsgCancel                       // initiator → assignee: revoke a multi-assigned copy (comparison protocol)
	MsgAssignAck                    // assignee → assigning node: confirm ASSIGN receipt (delivery hardening extension)
	MsgPing                         // node → neighbor: liveness probe (membership extension)
	MsgPong                         // neighbor → node: probe acknowledgement (membership extension)
	MsgBusy                         // saturated provider → sender: shed a REQUEST or ASSIGN (overload extension)
	MsgCommit                       // initiator → provider: optimistic assignment against the cached view (shared-state extension)
	MsgConflict                     // provider → initiator: typed rejection of an optimistic commit (shared-state extension)
)

// String names the message type as the paper writes it.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "REQUEST"
	case MsgAccept:
		return "ACCEPT"
	case MsgInform:
		return "INFORM"
	case MsgAssign:
		return "ASSIGN"
	case MsgNotify:
		return "NOTIFY"
	case MsgCancel:
		return "CANCEL"
	case MsgAssignAck:
		return "ASSIGN_ACK"
	case MsgPing:
		return "PING"
	case MsgPong:
		return "PONG"
	case MsgBusy:
		return "BUSY"
	case MsgCommit:
		return "COMMIT"
	case MsgConflict:
		return "CONFLICT"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Valid reports whether t is a known message type.
func (t MsgType) Valid() bool {
	return t >= MsgRequest && t <= MsgConflict
}

// Wire sizes from §V-E of the paper: REQUEST, INFORM, and ASSIGN carry a
// full job profile (1 KiB); ACCEPT (and the NOTIFY extension) carry only
// identifiers and a cost (128 B).
const (
	wireSizeLarge = 1024
	wireSizeSmall = 128
)

// NotifyKind refines the NOTIFY extension message.
type NotifyKind int

// Notification kinds.
const (
	NotifyQueued     NotifyKind = iota + 1 // job entered an assignee's queue
	NotifyCompleted                        // job finished execution
	NotifyStarted                          // execution began (multi-assign revocation trigger)
	NotifyAck                              // initiator acknowledged a completion notify
	NotifyResurfaced                       // assignee recovered an in-flight copy, asks to re-run
	NotifyConfirm                          // initiator confirms a resurfaced copy may execute
)

// ConflictKind refines the CONFLICT reply of the shared-state extension: why
// a provider rejected an optimistic commit.
type ConflictKind int

// Conflict kinds.
const (
	// ConflictBusy: the provider's queue is at the shared-state bound and
	// no recent commit took the last slot — the initiator's view was simply
	// stale about organically accumulated load.
	ConflictBusy ConflictKind = iota + 1

	// ConflictStale: the initiator committed against a stale identity — the
	// provider restarted since the view entry was learned (incarnation
	// mismatch) or its real profile cannot host the job at all.
	ConflictStale

	// ConflictLost: a concurrent commit beat this one to the provider's
	// last slot — the optimistic-concurrency race the shared-state
	// architecture trades its cheap reads for.
	ConflictLost
)

// String names the conflict kind for traces and reports.
func (k ConflictKind) String() string {
	switch k {
	case ConflictBusy:
		return "busy"
	case ConflictStale:
		return "stale"
	case ConflictLost:
		return "lost"
	default:
		return fmt.Sprintf("ConflictKind(%d)", int(k))
	}
}

// Message is an ARiA protocol message.
//
// Field semantics follow Table I. From is the address replies go to: the
// initiator for REQUEST and ASSIGN, the offering node for ACCEPT, and the
// current assignee for INFORM.
type Message struct {
	Type MsgType        `json:"type"`
	From overlay.NodeID `json:"from"`
	Job  job.Profile    `json:"job"`

	// Cost accompanies ACCEPT (the offer) and INFORM (the current
	// assignee's cost to beat).
	Cost sched.Cost `json:"cost,omitempty"`

	// TTL and Fanout drive flood forwarding for REQUEST and INFORM: TTL
	// is the remaining hop budget, Fanout the number of random neighbors
	// contacted per hop.
	TTL    int `json:"ttl,omitempty"`
	Fanout int `json:"fanout,omitempty"`

	// Seq distinguishes successive floods for the same job (REQUEST
	// retries, periodic INFORMs) so duplicate suppression does not eat
	// them. Assigned from a per-origin counter.
	Seq uint64 `json:"seq,omitempty"`

	// Via is the node that forwarded this copy; excluded from the next
	// hop's fanout selection. Purely a forwarding hint.
	Via overlay.NodeID `json:"via,omitempty"`

	// Notify refines MsgNotify messages.
	Notify NotifyKind `json:"notify,omitempty"`

	// Re refines MsgBusy messages: the type of the message being shed
	// (MsgRequest for an advisory "don't wait for my offer", MsgAssign
	// for a shed assignment the sender must re-dispatch).
	Re MsgType `json:"re,omitempty"`

	// Conflict refines MsgConflict messages: why the provider rejected the
	// optimistic commit (shared-state extension).
	Conflict ConflictKind `json:"conflict,omitempty"`

	// Inc rides MsgCommit messages: the provider incarnation the initiator's
	// cached view entry was learned from. A provider whose current
	// incarnation differs rejects the commit as stale — the view predates a
	// restart (shared-state extension).
	Inc uint64 `json:"inc,omitempty"`

	// Hop and Span are the causal trace context (trace plane extension).
	// Hop counts overlay hops from the message's origin: 1 on the first
	// transmission, incremented per forward, so Hop+TTL stays invariant
	// along a flood wave. Span is the sender's span identifier; the
	// receiver parents its own spans under it. Both ride every message
	// but do not affect protocol decisions.
	Hop  int    `json:"hop,omitempty"`
	Span uint64 `json:"span,omitempty"`

	// Peers carries the sender's current (non-dead) neighbor list on PING
	// and PONG messages: the gossip that teaches each node its
	// neighbors-of-neighbors, from which overlay repair draws
	// reconnection candidates.
	Peers []overlay.NodeID `json:"peers,omitempty"`

	// Dir carries compact resource-profile digests (internal/directory
	// codec) for the gossip-fed directory extension: the sender's own
	// digest plus cache samples on PING/PONG, the sender's digest alone on
	// ACCEPT and INFORM. Opaque to nodes without the directory enabled.
	Dir []byte `json:"dir,omitempty"`
}

// WireSize returns the message's modelled size in bytes, per §V-E. Directory
// digests are modelled at their real encoded length on top of the base size.
func (m Message) WireSize() int {
	base := wireSizeLarge
	switch m.Type {
	case MsgAccept, MsgNotify, MsgCancel, MsgAssignAck, MsgPing, MsgPong, MsgBusy, MsgConflict:
		base = wireSizeSmall
	}
	return base + len(m.Dir)
}

// Validate reports the first structural problem with the message.
func (m Message) Validate() error {
	if !m.Type.Valid() {
		return fmt.Errorf("invalid message type %d", int(m.Type))
	}
	// Membership probes carry no job; every protocol message does.
	if m.Type != MsgPing && m.Type != MsgPong {
		if err := m.Job.Validate(); err != nil {
			return fmt.Errorf("%s message: %w", m.Type, err)
		}
	}
	if m.Hop < 0 {
		return fmt.Errorf("%s message with negative hop count %d", m.Type, m.Hop)
	}
	switch m.Type {
	case MsgRequest, MsgInform:
		if m.TTL < 0 || m.Fanout < 1 {
			return fmt.Errorf("%s message with ttl %d fanout %d", m.Type, m.TTL, m.Fanout)
		}
	case MsgNotify:
		if m.Notify < NotifyQueued || m.Notify > NotifyConfirm {
			return fmt.Errorf("NOTIFY message with kind %d", int(m.Notify))
		}
	case MsgBusy:
		if m.Re != MsgRequest && m.Re != MsgAssign {
			return fmt.Errorf("BUSY message re %d must name a REQUEST or ASSIGN", int(m.Re))
		}
	case MsgConflict:
		if m.Conflict < ConflictBusy || m.Conflict > ConflictLost {
			return fmt.Errorf("CONFLICT message with kind %d", int(m.Conflict))
		}
	}
	return nil
}

// floodKey identifies one flood wave for duplicate suppression.
type floodKey struct {
	uuid   job.UUID
	typ    MsgType
	origin overlay.NodeID
	seq    uint64
}

func (m Message) floodKey() floodKey {
	return floodKey{uuid: m.Job.UUID, typ: m.Type, origin: m.From, seq: m.Seq}
}

// floodFP collapses the flood key to a 64-bit fingerprint for the seenSet
// dedup store: FNV-1a over the UUID, then the scalar fields folded in
// through the SplitMix64 mixer. Deterministic across runs (unlike Go map
// hashing) and never zero — zero is the set's empty-slot sentinel.
func (m Message) floodFP() uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(m.Job.UUID); i++ {
		h ^= uint64(m.Job.UUID[i])
		h *= 1099511628211
	}
	h = mixFP(h ^ uint64(uint32(m.From)) ^ uint64(m.Type)<<32)
	h = mixFP(h ^ m.Seq)
	if h == 0 {
		h = 1
	}
	return h
}
