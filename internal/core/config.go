package core

import (
	"fmt"
	"time"

	"github.com/smartgrid/aria/internal/sched"
)

// Config holds the protocol parameters. The defaults reproduce the paper's
// baseline evaluation settings (§IV-E).
type Config struct {
	// RequestTTL and RequestFanout drive REQUEST flooding: at most
	// RequestTTL hops, contacting up to RequestFanout random neighbors
	// per hop (paper: 9 and 4).
	RequestTTL    int
	RequestFanout int

	// InformTTL and InformFanout drive the more lightweight INFORM
	// flooding (paper: 8 and 2).
	InformTTL    int
	InformFanout int

	// InformJobs is the number of queued jobs each node advertises per
	// inform interval; zero disables dynamic rescheduling entirely
	// (the paper's non-"i" scenarios). Paper baseline: 2.
	InformJobs int

	// InformInterval is the period between INFORM batches (paper: 5 min).
	InformInterval time.Duration

	// RescheduleThreshold is the minimum cost improvement a candidate
	// must offer before proposing to take a job over (paper baseline:
	// 3 min; the iInform15m/iInform30m scenarios raise it).
	RescheduleThreshold time.Duration

	// InformSelection picks which queued jobs INFORM advertises; the
	// zero value is the paper's §III-D rule, the others ablate it.
	InformSelection sched.CandidateSelection

	// AcceptTimeout is how long an initiator collects ACCEPT offers
	// before deciding. It must comfortably exceed one flood round trip.
	AcceptTimeout time.Duration

	// MaxRequestRetries bounds how many times an initiator re-floods a
	// REQUEST that gathered no offers; the job fails afterwards. The
	// paper leaves this unspecified; retrying is the natural completion.
	MaxRequestRetries int

	// RetryBackoff is the pause before a REQUEST re-flood.
	RetryBackoff time.Duration

	// AssignAck enables the ASSIGN acknowledgement handshake (delivery
	// hardening extension): every networked ASSIGN is confirmed with an
	// ASSIGN_ACK, the sender retransmits unacknowledged assignments with
	// exponential backoff, and when retries are exhausted it falls back —
	// an initiator re-floods a fresh REQUEST, a rescheduling assignee
	// puts the job back in its own queue (the job never leaves the old
	// assignee's responsibility until the new assignee has acknowledged).
	// Off by default: the paper's evaluation network never loses
	// messages, and the baseline traffic figures must stay comparable.
	AssignAck bool

	// AssignAckTimeout is the wait before the first ASSIGN
	// retransmission; every further retry doubles it. It should
	// comfortably exceed one network round trip. Only used with
	// AssignAck.
	AssignAckTimeout time.Duration

	// AssignMaxRetries bounds ASSIGN retransmissions before the fallback
	// path runs. Only used with AssignAck.
	AssignMaxRetries int

	// NotifyInitiator enables the §III-D tracking extension: assignees
	// notify the initiator when a job is queued (including after a
	// reschedule) and when it completes, letting the initiator run a
	// failsafe watchdog that re-submits jobs lost to assignee crashes.
	NotifyInitiator bool

	// WatchdogGrace scales the failsafe watchdog: a tracked job is
	// declared lost when no notification arrives within
	// expected-completion × WatchdogGrace. Only used with
	// NotifyInitiator. Values <= 1 are rejected.
	WatchdogGrace float64

	// MultiAssign switches the initiator to the multiple-simultaneous-
	// requests model of Subramani et al. (the paper's related work [13]):
	// the job is assigned to the MultiAssign cheapest offers at once, and
	// when one copy starts executing the initiator revokes the others
	// with CANCEL messages. Values 0 and 1 mean standard ARiA assignment.
	// This comparison protocol exists to reproduce the paper's §II
	// critique (schedulers overloaded with cancelled jobs) and is
	// mutually exclusive with dynamic rescheduling.
	MultiAssign int

	// DisableDuplicateSuppression turns off per-wave flood deduplication.
	// Floods still terminate (TTL-bounded) but revisit nodes, multiplying
	// traffic. This exists only for the ablation benchmarks quantifying
	// what suppression saves; never enable it in real deployments.
	DisableDuplicateSuppression bool

	// ProbeInterval enables the SWIM-style membership plane when positive:
	// each node pings one rotating neighbor per interval and moves
	// unresponsive neighbors through suspect → dead. Zero (the default)
	// disables the detector entirely — the paper's evaluation network has
	// no membership traffic.
	ProbeInterval time.Duration

	// ProbeTimeout is how long a probe waits for its PONG before the
	// target is suspected. It must cover one network round trip; under
	// the fault plane's jitter a late PONG still refutes the suspicion.
	// Only used with ProbeInterval.
	ProbeTimeout time.Duration

	// SuspectTimeout is how long a suspected neighbor has to refute (any
	// PING or PONG counts) before it is declared dead, its link pruned,
	// and repair attempted. The dead verdict is terminal. Only used with
	// ProbeInterval.
	SuspectTimeout time.Duration

	// MaxDegree bounds overlay repair: a node never reconnects to a
	// neighbor-of-neighbor when either endpoint already has this many
	// links, preserving the topology generators' degree envelope. Zero
	// means unbounded. Only used with ProbeInterval.
	MaxDegree int

	// ReFloodTTLStep escalates discovery re-floods: a REQUEST round that
	// closed with zero offers is re-flooded with its TTL raised by this
	// many hops per retry (still bounded by MaxRequestRetries), so a
	// degraded overlay is searched progressively deeper. Zero keeps the
	// paper's fixed-TTL retries.
	ReFloodTTLStep int

	// DirectedCandidates enables the gossip-fed resource directory when
	// positive: an initiator's first discovery round sends TTL-0 targeted
	// REQUESTs to up to this many cached nodes whose profile digest
	// satisfies the job, and only falls back to the classic flood when the
	// directory is empty or the directed round starves. Zero (the default)
	// keeps the paper's flood-only discovery. Requires the membership
	// plane (digests ride PING/PONG gossip) and is mutually exclusive with
	// multi-assign.
	DirectedCandidates int

	// MinDirectedOffers is the number of remote ACCEPTs a directed round
	// must collect by the decision timer; fewer triggers the flood
	// fallback, so completion semantics never depend on cache quality.
	// Only used with DirectedCandidates.
	MinDirectedOffers int

	// DirectoryCapacity bounds the per-node digest cache; at capacity the
	// stalest entry is displaced. Only used with DirectedCandidates.
	DirectoryCapacity int

	// DirectoryTTL expires cached digests: an entry older than this (as
	// measured at the original observer, ages accumulate across gossip
	// hops) is swept lazily and never probed. Only used with
	// DirectedCandidates.
	DirectoryTTL time.Duration

	// DirectoryGossip is the number of cached digests piggybacked on each
	// PING and PONG beside the sender's own; it trades probe size for how
	// fast profile knowledge diffuses. Only used with DirectedCandidates.
	DirectoryGossip int

	// MaxQueuedJobs bounds the provider run queue (overload-control
	// extension): a node whose queued + running job count has reached this
	// bound stops offering on REQUESTs and sheds incoming ASSIGNs with a
	// BUSY reply instead of accepting unbounded work. Zero (the default)
	// keeps the paper's unbounded queues.
	MaxQueuedJobs int

	// MaxPendingSubmits bounds concurrent discoveries per initiator: a
	// Submit beyond this many in-flight discoveries is rejected with
	// ErrOverloaded so the front door can push back (admission control)
	// instead of flooding the overlay with requests it cannot absorb.
	// Zero (the default) admits unconditionally.
	MaxPendingSubmits int

	// SharedStateBound enables the shared-state optimistic scheduler arm
	// when positive: initiators pick the best provider from the
	// eventually-consistent cached cluster view (the gossip-fed directory
	// generalized by internal/sharedstate) and commit an ASSIGN
	// optimistically with a COMMIT message; a provider whose queued+running
	// depth has reached this bound — or whose identity the view got wrong —
	// rejects the commit with a typed CONFLICT reply instead of queueing it.
	// Zero (the default) keeps discovery flood- or directory-driven.
	// Requires the membership plane and the directory store knobs (the view
	// is fed by digest gossip on PING/PONG and ACCEPT/INFORM traffic —
	// DirectedCandidates itself may stay off) and is mutually exclusive
	// with multi-assign.
	SharedStateBound int

	// SharedStateRetries is K, the number of failed optimistic commits
	// (CONFLICT replies or commit timeouts) an initiator tolerates before
	// abandoning the cached view and falling back to the classic ARiA
	// REQUEST flood. Only used with SharedStateBound.
	SharedStateRetries int

	// CommitTimeout is how long an initiator waits for a commit's grant or
	// CONFLICT before treating the provider as unreachable (a failed
	// attempt). Only used with SharedStateBound.
	CommitTimeout time.Duration

	// CommitBackoff is the pause before commit retry k (counting from 1),
	// doubling per attempt, so concurrently conflicting initiators spread
	// out instead of re-colliding on the next-best provider in lockstep.
	// Only used with SharedStateBound.
	CommitBackoff time.Duration

	// RetryBackoffCap, when positive, replaces the fixed RetryBackoff
	// re-flood schedule with jittered exponential backoff: retry k waits
	// a uniformly random duration in [d/2, d) where d doubles from
	// RetryBackoff up to this cap. Damps the synchronized retry storms
	// that fixed-cadence retries amplify under overload. Zero (the
	// default) keeps the paper's fixed schedule.
	RetryBackoffCap time.Duration
}

// Membership plane defaults. A probe interval of 10 s with a 3 s probe
// timeout and a 6 s suspect window detects a genuinely dead single neighbor
// within interval + probe + suspect = 19 s ≤ two probe intervals, while the
// fault plane's worst-case round trip under 2 s jitter (≈ 4.2 s) still
// refutes a suspicion well inside the 6 s window — no false dead verdicts.
const (
	DefaultProbeInterval  = 10 * time.Second
	DefaultProbeTimeout   = 3 * time.Second
	DefaultSuspectTimeout = 6 * time.Second
)

// Directory plane defaults, used by scenarios and daemon flags when the
// directed-discovery extension is switched on (DefaultConfig leaves it off
// so baseline traffic figures stay comparable with the paper).
const (
	DefaultDirectedCandidates = 3
	DefaultMinDirectedOffers  = 1
	DefaultDirectoryCapacity  = 256
	DefaultDirectoryTTL       = 15 * time.Minute
	DefaultDirectoryGossip    = 3
)

// Overload-control defaults, used by scenarios and daemon flags when the
// extension is armed (DefaultConfig leaves it off — the paper's queues are
// unbounded). A depth bound of 4 caps each provider at one running job plus
// roughly one mean-ERT job of queued work per policy lane; 8 concurrent
// discoveries per initiator is generous for the paper's submission rates
// while still bounding front-door fan-in; the 8-minute backoff cap keeps
// starved initiators probing a saturated grid a few times per cap period
// instead of hammering it on a fixed cadence.
const (
	DefaultMaxQueuedJobs     = 4
	DefaultMaxPendingSubmits = 8
	DefaultRetryBackoffCap   = 8 * time.Minute
)

// Shared-state plane defaults, used by scenarios and tooling when the
// optimistic-commit arm is switched on (DefaultConfig leaves it off). A
// bound of 4 matches the overload plane's provider depth; K=3 failed
// commits before the flood fallback keeps the worst-case pre-flood delay
// (3 × timeout + backoff ladder) under ten seconds; the 500 ms backoff
// base desynchronizes initiators that conflicted on the same provider.
const (
	DefaultSharedStateBound   = 4
	DefaultSharedStateRetries = 3
	DefaultCommitTimeout      = 2 * time.Second
	DefaultCommitBackoff      = 500 * time.Millisecond
)

// DefaultConfig returns the paper's baseline parameters.
func DefaultConfig() Config {
	return Config{
		RequestTTL:          9,
		RequestFanout:       4,
		InformTTL:           8,
		InformFanout:        2,
		InformJobs:          2,
		InformInterval:      5 * time.Minute,
		RescheduleThreshold: 3 * time.Minute,
		AcceptTimeout:       3 * time.Second,
		MaxRequestRetries:   8,
		RetryBackoff:        30 * time.Second,
		AssignAckTimeout:    3 * time.Second,
		AssignMaxRetries:    4,
		WatchdogGrace:       3,
	}
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.RequestTTL < 1:
		return fmt.Errorf("request TTL %d must be positive", c.RequestTTL)
	case c.RequestFanout < 1:
		return fmt.Errorf("request fanout %d must be positive", c.RequestFanout)
	case c.InformTTL < 1:
		return fmt.Errorf("inform TTL %d must be positive", c.InformTTL)
	case c.InformFanout < 1:
		return fmt.Errorf("inform fanout %d must be positive", c.InformFanout)
	case c.InformJobs < 0:
		return fmt.Errorf("inform jobs %d must be non-negative", c.InformJobs)
	case c.InformJobs > 0 && c.InformInterval <= 0:
		return fmt.Errorf("inform interval %v must be positive when rescheduling is on", c.InformInterval)
	case c.RescheduleThreshold < 0:
		return fmt.Errorf("reschedule threshold %v must be non-negative", c.RescheduleThreshold)
	case c.AcceptTimeout <= 0:
		return fmt.Errorf("accept timeout %v must be positive", c.AcceptTimeout)
	case c.MaxRequestRetries < 0:
		return fmt.Errorf("max request retries %d must be non-negative", c.MaxRequestRetries)
	case c.MaxRequestRetries > 0 && c.RetryBackoff <= 0:
		return fmt.Errorf("retry backoff %v must be positive when retries are on", c.RetryBackoff)
	case c.AssignAck && c.AssignAckTimeout <= 0:
		return fmt.Errorf("assign ack timeout %v must be positive when the handshake is on", c.AssignAckTimeout)
	case c.AssignAck && c.AssignMaxRetries < 1:
		return fmt.Errorf("assign max retries %d must be positive when the handshake is on", c.AssignMaxRetries)
	case c.AssignAck && c.MultiAssign > 1:
		return fmt.Errorf("assign ack handshake and multi-assign are mutually exclusive")
	case c.NotifyInitiator && c.WatchdogGrace <= 1:
		return fmt.Errorf("watchdog grace %v must exceed 1", c.WatchdogGrace)
	case !c.InformSelection.Valid():
		return fmt.Errorf("invalid inform selection %d", int(c.InformSelection))
	case c.MultiAssign < 0:
		return fmt.Errorf("multi-assign %d must be non-negative", c.MultiAssign)
	case c.MultiAssign > 1 && c.InformJobs > 0:
		return fmt.Errorf("multi-assign and dynamic rescheduling are mutually exclusive")
	case c.ProbeInterval < 0:
		return fmt.Errorf("probe interval %v must be non-negative", c.ProbeInterval)
	case c.ProbeInterval > 0 && c.ProbeTimeout <= 0:
		return fmt.Errorf("probe timeout %v must be positive when the detector is on", c.ProbeTimeout)
	case c.ProbeInterval > 0 && c.SuspectTimeout <= 0:
		return fmt.Errorf("suspect timeout %v must be positive when the detector is on", c.SuspectTimeout)
	case c.ProbeInterval > 0 && c.ProbeTimeout >= c.ProbeInterval:
		return fmt.Errorf("probe timeout %v must be below the probe interval %v", c.ProbeTimeout, c.ProbeInterval)
	case c.MaxDegree < 0:
		return fmt.Errorf("max degree %d must be non-negative", c.MaxDegree)
	case c.ReFloodTTLStep < 0:
		return fmt.Errorf("re-flood TTL step %d must be non-negative", c.ReFloodTTLStep)
	case c.DirectedCandidates < 0:
		return fmt.Errorf("directed candidates %d must be non-negative", c.DirectedCandidates)
	case c.DirectedCandidates > 0 && c.MinDirectedOffers < 1:
		return fmt.Errorf("min directed offers %d must be positive when the directory is on", c.MinDirectedOffers)
	case c.DirectedCandidates > 0 && c.DirectoryCapacity < 1:
		return fmt.Errorf("directory capacity %d must be positive when the directory is on", c.DirectoryCapacity)
	case c.DirectedCandidates > 0 && c.DirectoryTTL <= 0:
		return fmt.Errorf("directory TTL %v must be positive when the directory is on", c.DirectoryTTL)
	case c.DirectedCandidates > 0 && c.DirectoryGossip < 0:
		return fmt.Errorf("directory gossip %d must be non-negative", c.DirectoryGossip)
	case c.DirectedCandidates > 0 && c.ProbeInterval <= 0:
		return fmt.Errorf("the directory requires the membership plane (digests ride PING/PONG gossip)")
	case c.DirectedCandidates > 0 && c.MultiAssign > 1:
		return fmt.Errorf("directed discovery and multi-assign are mutually exclusive")
	case c.MaxQueuedJobs < 0:
		return fmt.Errorf("max queued jobs %d must be non-negative", c.MaxQueuedJobs)
	case c.MaxPendingSubmits < 0:
		return fmt.Errorf("max pending submits %d must be non-negative", c.MaxPendingSubmits)
	case c.RetryBackoffCap < 0:
		return fmt.Errorf("retry backoff cap %v must be non-negative", c.RetryBackoffCap)
	case c.RetryBackoffCap > 0 && c.RetryBackoffCap < c.RetryBackoff:
		return fmt.Errorf("retry backoff cap %v must be at least the base backoff %v", c.RetryBackoffCap, c.RetryBackoff)
	case c.MaxQueuedJobs > 0 && c.MultiAssign > 1:
		return fmt.Errorf("load shedding and multi-assign are mutually exclusive")
	case c.SharedStateBound < 0:
		return fmt.Errorf("shared-state bound %d must be non-negative", c.SharedStateBound)
	case c.SharedStateBound > 0 && c.ProbeInterval <= 0:
		return fmt.Errorf("the shared-state arm requires the membership plane (the cached view is gossip-fed)")
	case c.SharedStateBound > 0 && c.DirectoryCapacity < 1:
		return fmt.Errorf("directory capacity %d must be positive when the shared-state arm is on", c.DirectoryCapacity)
	case c.SharedStateBound > 0 && c.DirectoryTTL <= 0:
		return fmt.Errorf("directory TTL %v must be positive when the shared-state arm is on", c.DirectoryTTL)
	case c.SharedStateBound > 0 && c.DirectoryGossip < 0:
		return fmt.Errorf("directory gossip %d must be non-negative when the shared-state arm is on", c.DirectoryGossip)
	case c.SharedStateBound > 0 && c.SharedStateRetries < 1:
		return fmt.Errorf("shared-state retries %d must be positive when the arm is on", c.SharedStateRetries)
	case c.SharedStateBound > 0 && c.CommitTimeout <= 0:
		return fmt.Errorf("commit timeout %v must be positive when the shared-state arm is on", c.CommitTimeout)
	case c.SharedStateBound > 0 && c.CommitBackoff <= 0:
		return fmt.Errorf("commit backoff %v must be positive when the shared-state arm is on", c.CommitBackoff)
	case c.SharedStateBound > 0 && c.MultiAssign > 1:
		return fmt.Errorf("the shared-state arm and multi-assign are mutually exclusive")
	}
	return nil
}

// Rescheduling reports whether dynamic rescheduling is enabled.
func (c Config) Rescheduling() bool {
	return c.InformJobs > 0
}

// Membership reports whether the SWIM-style liveness detector is enabled.
func (c Config) Membership() bool {
	return c.ProbeInterval > 0
}

// Directory reports whether the gossip-fed resource directory (directed
// discovery) is enabled.
func (c Config) Directory() bool {
	return c.DirectedCandidates > 0
}

// Overload reports whether provider-side load shedding (bounded run
// queues with BUSY replies) is enabled.
func (c Config) Overload() bool {
	return c.MaxQueuedJobs > 0
}

// SharedState reports whether the shared-state optimistic scheduler arm
// (cached-view commits with CONFLICT retry) is enabled.
func (c Config) SharedState() bool {
	return c.SharedStateBound > 0
}
