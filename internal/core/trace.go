package core

import (
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// SpanKind names one step of a job's causal trace. Every protocol action a
// node takes on behalf of a job emits one span event; span/parent links
// across events reconstruct the causal tree of the job's journey through
// the grid (flood fan-out, offer collection, assignment, rescheduling
// handoffs, retries, and recovery).
type SpanKind string

// Span kinds.
const (
	// SpanSubmit is the root span of a job: an initiator accepted it.
	SpanSubmit SpanKind = "submit"

	// SpanFloodOrigin marks the launch of one flood wave (a REQUEST
	// discovery round or one INFORM advertisement). Fanout is the number
	// of neighbors actually contacted; Hop is 0 and TTL the full budget.
	SpanFloodOrigin SpanKind = "flood_origin"

	// SpanForward marks a node relaying a flood one more hop. Fanout is
	// the number of neighbors actually contacted; Hop and TTL are the
	// received message's values. A node forwards a given wave at most
	// once: suppressed duplicates emit SpanDuplicate, never SpanForward.
	SpanForward SpanKind = "forward"

	// SpanDuplicate marks a flood copy suppressed by deduplication. It is
	// bookkeeping, not a forward; redundancy ratios are computed from it.
	SpanDuplicate SpanKind = "duplicate"

	// SpanOffer marks a candidate answering a flood with an ACCEPT
	// (Cost carries the bid).
	SpanOffer SpanKind = "offer"

	// SpanOfferRecv marks an initiator or assignee collecting an ACCEPT.
	SpanOfferRecv SpanKind = "offer_recv"

	// SpanAssign marks an initiator closing a discovery round by
	// delegating the job (Peer is the chosen assignee, Cost the winning
	// offer).
	SpanAssign SpanKind = "assign"

	// SpanReschedule marks an assignee handing a queued job to a cheaper
	// node: OldCost is the job's current local cost, Cost the accepted
	// remote offer, Peer the new assignee.
	SpanReschedule SpanKind = "reschedule"

	// SpanEnqueue marks a job entering a node's local queue.
	SpanEnqueue SpanKind = "enqueue"

	// SpanStart marks execution beginning.
	SpanStart SpanKind = "start"

	// SpanComplete marks execution finishing.
	SpanComplete SpanKind = "complete"

	// SpanRetry marks an ASSIGN retransmission (AssignAck handshake);
	// Attempt counts from 1.
	SpanRetry SpanKind = "assign_retry"

	// SpanFallback marks the loss-recovery path after ASSIGN retries were
	// exhausted: a re-flood (initiator) or a local re-enqueue (assignee).
	SpanFallback SpanKind = "assign_fallback"

	// SpanResubmit marks the failsafe watchdog re-submitting a job that
	// went silent; Attempt is the resubmission count.
	SpanResubmit SpanKind = "resubmit"

	// SpanCancel marks a multi-assigned copy being revoked.
	SpanCancel SpanKind = "cancel"

	// SpanLost marks job state destroyed by a node crash: a queued or
	// running job, an in-flight discovery round, or an unacknowledged
	// outbound ASSIGN.
	SpanLost SpanKind = "lost"

	// SpanFail marks an initiator abandoning a job.
	SpanFail SpanKind = "fail"

	// SpanSuspect marks the liveness detector moving a neighbor (Peer)
	// from alive to suspect after an unanswered probe. Membership events
	// carry no job UUID.
	SpanSuspect SpanKind = "suspect"

	// SpanPeerDead marks the terminal dead verdict on a neighbor (Peer):
	// the suspect window closed without refutation. After this event the
	// emitting node never addresses Peer again.
	SpanPeerDead SpanKind = "peer_dead"

	// SpanRepair marks overlay repair replacing a pruned dead link:
	// Peer is the new neighbor, Origin the dead one it replaces, and
	// Fanout the node's degree after the repair (audited against the
	// configured MaxDegree).
	SpanRepair SpanKind = "repair"

	// SpanRestart marks a journaled node rebooting and replaying its
	// durable scheduler state. It carries no job UUID; Fanout is the
	// number of job-state entries recovered.
	SpanRestart SpanKind = "restart"

	// SpanDirectedProbe marks the launch of one directed discovery round
	// (directory extension): TTL-0 targeted REQUESTs to cached candidates
	// instead of a flood. Like SpanFloodOrigin, Hop is 0 and TTL the wave
	// budget (always 1: probes do not propagate), Fanout the number of
	// candidates actually probed, and Seq/Origin name the wave.
	SpanDirectedProbe SpanKind = "directed_probe"

	// SpanDirectoryFallback marks a starved directed round escalating to
	// the classic flood: fewer than MinDirectedOffers remote ACCEPTs
	// arrived by the decision timer. Parent is the directed-probe span;
	// the fallback flood's origin parents here. Attempt carries the
	// number of remote offers that did arrive.
	SpanDirectoryFallback SpanKind = "directory_fallback"

	// SpanBusy marks a saturated provider shedding load (overload
	// extension): Msg discriminates what was shed — MsgRequest for a
	// declined offer opportunity (advisory), MsgAssign for a refused
	// assignment the sender must re-dispatch. Parent is the span of the
	// message being shed; Peer is the node being answered; Fanout carries
	// the provider's queued+running count at the moment of shedding.
	SpanBusy SpanKind = "busy"

	// SpanShed marks the sender of a shed ASSIGN reacting to the BUSY
	// reply: the handshake is closed and the job re-dispatched — an
	// initiator re-floods a fresh REQUEST, a rescheduling assignee
	// re-enqueues locally. Parent is the provider's busy span; Peer the
	// busy provider. The checker's shed-ASSIGN invariant requires every
	// shed span to have a child (the re-dispatch).
	SpanShed SpanKind = "shed"

	// SpanCommit marks an initiator committing a job optimistically
	// against its cached cluster view (shared-state extension): Peer is
	// the chosen provider, Cost the view's believed load at pick time, and
	// Attempt the commit attempt counting from 1. Children decide the
	// outcome: an enqueue (at the provider) for a granted commit, a
	// conflict for a rejected one.
	SpanCommit SpanKind = "commit"

	// SpanConflict marks a failed optimistic commit: a provider rejecting
	// it (Reason busy/stale/lost, Parent the commit span, Peer the
	// initiator being answered) or the initiator timing out a commit whose
	// provider never answered (Reason timeout, Peer the silent provider).
	// Attempt mirrors the commit's. The initiator's retry commit — or the
	// flood fallback — parents here, chaining the round causally.
	SpanConflict SpanKind = "conflict"

	// SpanCommitFallback marks an initiator abandoning the cached view
	// after K failed commits and escalating to the classic REQUEST flood.
	// Parent is the final conflict span; Attempt carries the failed-commit
	// count (always exactly K). The fallback flood's origin parents here.
	SpanCommitFallback SpanKind = "commit_fallback"

	// SpanRecovered marks one job-state entry rebuilt from the journal
	// after a restart. Parent is the pre-crash span under which the state
	// was journaled, linking the replayed subtree into the original causal
	// tree. Msg discriminates the entry kind: MsgAssign for a re-enqueued
	// queued (or interrupted running) job, MsgNotify for a re-armed
	// initiator watchdog (Peer = tracked assignee), MsgAssignAck for a
	// re-opened unacknowledged ASSIGN handshake (Peer = assignee).
	SpanRecovered SpanKind = "recovered"
)

// TraceEvent is one structured span event of the causal trace plane.
//
// Span is the event's own identifier (unique within a run: the emitting
// node's ID in the high bits, a per-node counter in the low bits); Parent
// is the span that caused it — the sending event's span for events
// triggered by a received message, an earlier local span otherwise, or
// zero for roots.
type TraceEvent struct {
	At   time.Duration
	Node overlay.NodeID
	Kind SpanKind
	UUID job.UUID

	Span   uint64
	Parent uint64

	// Msg is the message type for flood and delivery events.
	Msg MsgType

	// Hop and TTL snapshot the flood trace context: Hop counts overlay
	// hops from the wave origin (0 at the origin), TTL is the remaining
	// hop budget. Their sum is invariant along a wave.
	Hop int
	TTL int

	// Fanout is the number of neighbors actually contacted by a flood
	// origin or forward event.
	Fanout int

	// Seq identifies the flood wave (per-origin counter) for flood events.
	Seq uint64

	// Origin is the flood wave's originating node for flood events
	// (origin, forward, duplicate, offer); together with UUID, Msg, and
	// Seq it names one wave, exactly like the dedup key.
	Origin overlay.NodeID

	// Peer is the counterpart node, where one exists (assignment target,
	// offer destination, forward origin).
	Peer overlay.NodeID

	// Cost and OldCost carry offer economics: Cost is the offered or
	// winning cost; OldCost is the incumbent cost a reschedule improved on.
	Cost    sched.Cost
	OldCost sched.Cost

	// Attempt counts retries and resubmissions, from 1.
	Attempt int

	// Reason discriminates conflict events (shared-state extension): a
	// ConflictKind string (busy, stale, lost) for provider rejections,
	// "timeout" for commits the initiator gave up waiting on.
	Reason string
}

// TraceObserver is an optional extension of Observer receiving span events.
// Like the other observer callbacks, TraceSpan runs on the node's execution
// context while the node lock is held and must not call back into the node.
// The node detects support once at construction with a type assertion.
type TraceObserver interface {
	TraceSpan(ev TraceEvent)
}
