package core

import (
	"errors"
	"time"

	"github.com/smartgrid/aria/internal/directory"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/wal"
)

// ErrOverloaded is returned by Submit when admission control rejects a job:
// the node already has MaxPendingSubmits discovery rounds in flight. Callers
// (the gateway, the scenario harness) match it with errors.Is and either
// redraw another portal or push back on the client.
var ErrOverloaded = errors.New("node overloaded")

// retryBackoffShiftMax bounds the exponential retry ladder so the shift
// cannot overflow before the cap clamps it.
const retryBackoffShiftMax = 16

// loadDepth is the node's queued + running job count — the quantity the
// MaxQueuedJobs bound is measured against. Caller holds the lock.
func (n *Node) loadDepth() int {
	d := n.queue.Len()
	if n.running != nil {
		d++
	}
	return d
}

// overloaded reports whether the provider-side shedding bound is active and
// reached. Caller holds the lock.
func (n *Node) overloaded() bool {
	return n.cfg.MaxQueuedJobs > 0 && n.loadDepth() >= n.cfg.MaxQueuedJobs
}

// retryDelay is the pause before REQUEST re-flood number retries (counting
// from 1). With no cap configured it is the paper's fixed RetryBackoff; with
// RetryBackoffCap set it doubles per retry up to the cap and is jittered to
// a uniform draw from [d/2, d), so synchronized initiators spread out
// instead of re-flooding in lockstep. The jitter draw only happens on the
// capped path, keeping baseline runs bit-identical. Caller holds the lock.
func (n *Node) retryDelay(retries int) time.Duration {
	d := n.cfg.RetryBackoff
	if n.cfg.RetryBackoffCap <= 0 {
		return d
	}
	if retries > 1 {
		d <<= uint(min(retries-1, retryBackoffShiftMax))
	}
	if d <= 0 || d > n.cfg.RetryBackoffCap {
		d = n.cfg.RetryBackoffCap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(n.env.Rand().Int63n(int64(half)))
}

// dirBusyDemote reacts to any BUSY reply from peer: the directory entry is
// demoted (re-learnable — the next gossiped digest re-admits the peer with
// its new load) so directed probes route around the hot node. Caller holds
// the lock.
func (n *Node) dirBusyDemote(peer overlay.NodeID) {
	if n.oobs != nil {
		n.oobs.PeerBusy(n.env.Now(), n.id, peer)
	}
	if n.dir != nil {
		n.dir.Evict(peer, directory.EvictBusy)
	}
}

// shedAssign refuses an incoming ASSIGN at a saturated provider: a BUSY
// reply (Re=ASSIGN) goes back to the actual sender. No AssignAck is sent —
// the sender's handshake stays open, so a lost BUSY is still covered by the
// ASSIGN retry ladder and eventually the fallback. The BUSY carries the
// ASSIGN's initiator address in Via so a handshake-less sender can classify
// the re-dispatch without per-assignment state. Caller holds the lock.
func (n *Node) shedAssign(m Message) {
	depth := n.loadDepth()
	if n.oobs != nil {
		n.oobs.AssignShed(n.env.Now(), n.id, m.Job.UUID, depth)
	}
	bspan := n.emitSpan(TraceEvent{
		Kind: SpanBusy, UUID: m.Job.UUID, Parent: m.Span,
		Msg: MsgAssign, Peer: m.Via, Fanout: depth,
	})
	n.env.Send(m.Via, Message{Type: MsgBusy, From: n.id, Job: m.Job, Re: MsgAssign, Via: m.From, Span: bspan})
}

// handleBusy reacts to a BUSY reply. An advisory BUSY (Re=REQUEST) only
// demotes the hot peer in the directory: the discovery round simply decides
// without that node's offer. A shed BUSY (Re=ASSIGN) additionally closes
// the open handshake and re-dispatches the job — an initiator re-floods a
// fresh REQUEST, a rescheduling assignee takes the job back into its own
// queue — inside the same critical section, so the traced shed span always
// has a re-dispatch child (the checker's shed-ASSIGN invariant). Caller
// holds the lock.
func (n *Node) handleBusy(m Message) {
	n.dirBusyDemote(m.From)
	if m.Re != MsgAssign {
		return
	}
	uuid := m.Job.UUID
	profile, initiator, reschedule := m.Job, m.Via, m.Via != n.id
	if oa, ok := n.outAssigns[uuid]; ok {
		if m.From != oa.to {
			return // stale BUSY from a node no longer holding the handshake
		}
		if oa.timer != nil {
			oa.timer()
		}
		delete(n.outAssigns, uuid)
		n.jlog(wal.Record{Type: wal.RecAssignClosed, UUID: uuid})
		profile, initiator, reschedule = oa.profile, oa.initiator, oa.reschedule
	} else if n.cfg.AssignAck {
		return // handshake already closed (ack raced the BUSY, or a duplicate)
	}
	if reschedule {
		if _, queued := n.queue.Get(uuid); queued {
			return // already re-acquired
		}
		if n.running != nil && n.running.UUID == uuid {
			return
		}
		if n.oobs != nil {
			n.oobs.ShedRedispatched(n.env.Now(), n.id, uuid, false)
		}
		sh := n.emitSpan(TraceEvent{Kind: SpanShed, UUID: uuid, Parent: m.Span, Peer: m.From})
		n.enqueueLocal(profile, initiator, sh)
		return
	}
	if n.discoveryOpen(uuid) {
		return // a re-discovery for this job is already running
	}
	if n.oobs != nil {
		n.oobs.ShedRedispatched(n.env.Now(), n.id, uuid, true)
	}
	sh := n.emitSpan(TraceEvent{Kind: SpanShed, UUID: uuid, Parent: m.Span, Peer: m.From})
	n.startDiscovery(profile, 0, sh)
}
