package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/directory"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sharedstate"
	"github.com/smartgrid/aria/internal/wal"
)

// seenTTL bounds how long flood-deduplication entries are retained; it only
// needs to exceed the lifetime of one flood wave (TTL × max hop latency).
const seenTTL = 5 * time.Minute

// Node is one ARiA protocol participant: it accepts job submissions as an
// initiator, answers REQUEST/INFORM floods with cost offers, queues and
// executes assigned jobs under its local scheduling policy, and advertises
// its queued jobs for dynamic rescheduling.
//
// All state is guarded by one mutex; the engine never blocks and spawns no
// goroutines, so it runs identically under the deterministic simulator and
// under concurrent live transports. Observer callbacks and Env calls are
// made while the lock is held and must not call back into the node.
type Node struct {
	id      overlay.NodeID
	profile resource.Profile
	env     Env
	cfg     Config
	obs     Observer
	dobs    DeliveryObserver    // obs's optional delivery extension, nil otherwise
	tobs    TraceObserver       // obs's optional trace extension, nil otherwise
	mobs    MembershipObserver  // obs's optional membership extension, nil otherwise
	robs    RecoveryObserver    // obs's optional recovery extension, nil otherwise
	dirObs  DirectoryObserver   // obs's optional directory extension, nil otherwise
	oobs    OverloadObserver    // obs's optional overload extension, nil otherwise
	ssObs   SharedStateObserver // obs's optional shared-state extension, nil otherwise
	menv    MembershipEnv       // env's optional overlay-surgery extension, nil otherwise
	art     job.ARTModel

	// journal is the optional write-ahead log of scheduler state
	// transitions (fail-recover extension); nil leaves the node fail-stop.
	// It outlives the node: a restarted replacement node replays it.
	journal *wal.Journal

	mu    sync.Mutex
	alive bool
	queue *sched.Queue

	// Execution slot (one job at a time, §III-A).
	running          *job.Job
	runningInitiator overlay.NodeID
	runningEstEnd    time.Duration
	runningTimer     Cancel

	// Initiator-side discovery state.
	pending map[job.UUID]*pendingJob

	// Initiator-side failsafe tracking (NotifyInitiator extension).
	tracked map[job.UUID]*trackedJob

	// Initiator-side multi-assign state (comparison protocol): the
	// assignees holding copies of a job, awaiting first-start revocation.
	multi map[job.UUID][]overlay.NodeID

	// Assignee-side record of each queued job's initiator address,
	// needed to stamp ASSIGN messages during rescheduling.
	initiators map[job.UUID]overlay.NodeID

	// Sender-side ASSIGN/ACK handshake state (AssignAck extension): one
	// entry per networked ASSIGN awaiting acknowledgement.
	outAssigns map[job.UUID]*outAssign

	// Assignee-side completion NOTIFYs awaiting the initiator's ack
	// (NotifyInitiator extension): resent with backoff, journaled so
	// recovery resends them across a crash.
	notifyOut map[job.UUID]*pendingNotify

	// Assignee-side recovered copies fenced behind the initiator's
	// re-confirmation (NotifyInitiator extension): a crash-recovered
	// in-flight job must not re-execute until the initiator confirms it
	// still wants this copy — its watchdog may have resubmitted the job
	// elsewhere during the outage, and blindly re-running would race the
	// replacement to a duplicate execution.
	held map[job.UUID]*heldJob

	// Flood duplicate suppression, generational: lookups consult both
	// generations, inserts go to the current one, and every seenTTL the
	// previous generation is discarded wholesale. This gives O(1) inserts
	// with bounded memory — the old per-entry-expiry map re-scanned all
	// ~4k entries on every insert once full, which dominated whole-run
	// profiles at 10k nodes. An entry now suppresses duplicates for
	// between one and two TTLs (instead of exactly one), indistinguishable
	// in practice: waves live for seconds and retries bump Seq. Keys are
	// 64-bit flood fingerprints in an open-addressed set (see seenSet).
	seenCur, seenPrev seenSet
	seenRotateAt      time.Duration

	// Membership plane state (nil maps when the detector is disabled):
	// per-neighbor health records and the neighbor-of-neighbor lists
	// gossiped on PING/PONG, from which overlay repair draws candidates.
	peers       map[overlay.NodeID]*peerHealth
	nbrPeers    map[overlay.NodeID][]overlay.NodeID
	probeIdx    int
	probeCancel Cancel

	// Directory plane state (nil when directed discovery is disabled): the
	// gossip-fed profile cache and the restart counter stamped into the
	// node's own digest (encoded fresh per send, so the load hint is live).
	dir         *directory.Store
	incarnation uint64

	// Shared-state plane state (nil when the optimistic-commit arm is
	// disabled): the cluster view layered on the directory store, the open
	// commit rounds, and — provider side — the instant of the last granted
	// commit, which classifies a bound-hit conflict as lost-the-race versus
	// plain stale.
	view            *sharedstate.Store
	commits         map[job.UUID]*pendingCommit
	lastCommitGrant time.Duration

	// Trace plane bookkeeping (only maintained with a TraceObserver):
	// the span under which each queued job was enqueued, and the span of
	// the running job, so starts, completions, and crash losses parent
	// correctly in the causal tree.
	enqSpans    map[job.UUID]uint64
	runningSpan uint64

	seq          uint64
	spanSeq      uint64
	informCancel Cancel
	started      bool
}

// pendingJob is an initiator's bookkeeping for one discovery round.
type pendingJob struct {
	profile  job.Profile
	retries  int
	best     overlay.NodeID
	bestCost sched.Cost
	hasBest  bool
	timer    Cancel

	// span is the round's flood-origin (or directed-probe) span; decision
	// events parent to it.
	span uint64

	// offers collects every distinct offer when multi-assign is on.
	offers []offer

	// directed marks a directory-driven round of TTL-0 targeted probes;
	// directedOffers counts the remote ACCEPTs it collected, gating the
	// flood fallback against MinDirectedOffers.
	directed       bool
	directedOffers int
}

// offer is one candidate's bid.
type offer struct {
	node overlay.NodeID
	cost sched.Cost
}

// outAssign tracks one unacknowledged ASSIGN (AssignAck extension).
type outAssign struct {
	profile job.Profile
	to      overlay.NodeID
	// span is the assignment span retries and the fallback parent to.
	span uint64
	// initiator is the address stamped as the ASSIGN's From: this node
	// for a first assignment, the original initiator for a rescheduling
	// handoff.
	initiator overlay.NodeID
	// reschedule marks a rescheduling handoff; its fallback re-enqueues
	// the job locally instead of re-flooding a REQUEST.
	reschedule bool
	attempts   int
	timer      Cancel
}

// pendingNotify tracks one completion NOTIFY awaiting the initiator's ack
// (NotifyInitiator extension). Unlike outAssign there is no retry cap and
// no fallback: the entry is journaled and resent until the initiator acks
// (an amnesiac restart acks unknown jobs too) or is confirmed dead —
// giving up any earlier would leave the initiator's watchdog to rerun a
// job whose completion was already observable.
type pendingNotify struct {
	profile   job.Profile
	initiator overlay.NodeID
	span      uint64
	attempts  int
	timer     Cancel
}

// heldJob is a crash-recovered copy of a delegated job fenced behind the
// initiator's re-confirmation. The resurfaced query is resent with backoff
// until the initiator answers: CONFIRM releases the copy into the queue,
// CANCEL (or a retransmitted ASSIGN, an implicit confirm) resolves it the
// other way. A confirmed-dead initiator releases the copy too — a dead
// watchdog cannot have resubmitted, so running is duplicate-safe, while
// holding forever would lose the job outright.
type heldJob struct {
	profile   job.Profile
	initiator overlay.NodeID
	// span is the recovery span the copy resurfaced under; the eventual
	// start (or cancel) parents to it.
	span     uint64
	attempts int
	timer    Cancel
}

// watchdogMaxDefers bounds how many times a firing watchdog stands down
// because the failure detector still vouches for the assignee. The bound
// keeps the failsafe live under a permanently asymmetric link (assignee
// provably up, its NOTIFYs never arriving): after it, the watchdog reverts
// to at-least-once resubmission.
const watchdogMaxDefers = 3

// trackedJob is an initiator's failsafe record of a delegated job.
type trackedJob struct {
	profile  job.Profile
	assignee overlay.NodeID
	resub    int
	// defers counts watchdog firings stood down on the failure detector's
	// word; transient — a recovered watchdog starts the budget afresh.
	defers int
	// expect is the assignment-time estimate of the job's completion
	// horizon (the winning ETTC offer for batch jobs); the watchdog
	// waits a grace multiple of it.
	expect   time.Duration
	watchdog Cancel
	// span is the assignment (or recovery) span the tracking was created
	// under; journaled so a post-restart watchdog firing links back to
	// the pre-crash causal tree.
	span uint64
}

// NewNode constructs a protocol node with the given identity, resources,
// local scheduling policy, and environment binding. A nil observer is
// replaced with NopObserver. The node is inert until Start is called.
func NewNode(
	id overlay.NodeID,
	profile resource.Profile,
	policy sched.Policy,
	env Env,
	cfg Config,
	obs Observer,
	art job.ARTModel,
) (*Node, error) {
	if err := profile.Validate(); err != nil {
		return nil, fmt.Errorf("node %v profile: %w", id, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("node %v config: %w", id, err)
	}
	if err := art.Validate(); err != nil {
		return nil, fmt.Errorf("node %v art model: %w", id, err)
	}
	if env == nil {
		return nil, fmt.Errorf("node %v: nil environment", id)
	}
	queue, err := sched.New(policy, profile.PerfIndex)
	if err != nil {
		return nil, fmt.Errorf("node %v scheduler: %w", id, err)
	}
	if obs == nil {
		obs = NopObserver{}
	}
	dobs, _ := obs.(DeliveryObserver)
	tobs, _ := obs.(TraceObserver)
	mobs, _ := obs.(MembershipObserver)
	robs, _ := obs.(RecoveryObserver)
	dirObs, _ := obs.(DirectoryObserver)
	oobs, _ := obs.(OverloadObserver)
	ssObs, _ := obs.(SharedStateObserver)
	menv, _ := env.(MembershipEnv)
	n := &Node{
		id:         id,
		profile:    profile,
		env:        env,
		cfg:        cfg,
		obs:        obs,
		dobs:       dobs,
		tobs:       tobs,
		mobs:       mobs,
		robs:       robs,
		dirObs:     dirObs,
		oobs:       oobs,
		ssObs:      ssObs,
		menv:       menv,
		art:        art,
		alive:      true,
		queue:      queue,
		pending:    make(map[job.UUID]*pendingJob),
		tracked:    make(map[job.UUID]*trackedJob),
		multi:      make(map[job.UUID][]overlay.NodeID),
		initiators: make(map[job.UUID]overlay.NodeID),
		outAssigns: make(map[job.UUID]*outAssign),
		notifyOut:  make(map[job.UUID]*pendingNotify),
		held:       make(map[job.UUID]*heldJob),
		enqSpans:   make(map[job.UUID]uint64),
	}
	if cfg.Membership() {
		// A non-nil peers map is the engine-wide membership gate.
		n.peers = make(map[overlay.NodeID]*peerHealth)
		n.nbrPeers = make(map[overlay.NodeID][]overlay.NodeID)
	}
	if cfg.Directory() || cfg.SharedState() {
		// A non-nil dir gates digest gossip and learning; directed probing
		// additionally requires cfg.Directory(). The shared-state arm runs
		// its cluster view on the same substrate even with directed
		// discovery off.
		n.dir = directory.New(cfg.DirectoryCapacity, cfg.DirectoryTTL)
		if dirObs != nil {
			n.dir.OnEvict = func(subject overlay.NodeID, reason string) {
				n.dirObs.DirectoryEvicted(n.env.Now(), n.id, subject, reason)
			}
		}
	}
	if cfg.SharedState() {
		// A non-nil view is the engine-wide optimistic-commit gate.
		n.view = sharedstate.New(n.dir, cfg.SharedStateBound)
		n.commits = make(map[job.UUID]*pendingCommit)
		n.lastCommitGrant = -1
	}
	return n, nil
}

// ID returns the node's overlay address.
func (n *Node) ID() overlay.NodeID { return n.id }

// Profile returns the node's resource profile.
func (n *Node) Profile() resource.Profile { return n.profile }

// Policy returns the local scheduling policy.
func (n *Node) Policy() sched.Policy { return n.queue.Policy() }

// Start arms the periodic INFORM advertiser (when rescheduling is enabled)
// and the membership probe loop (when the detector is enabled). Both fire
// first after a random phase within one interval so that node activity is
// staggered.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started || !n.alive {
		n.started = true
		return
	}
	n.started = true
	if n.cfg.Rescheduling() {
		phase := time.Duration(n.env.Rand().Int63n(int64(n.cfg.InformInterval)))
		n.informCancel = n.env.Schedule(phase+n.cfg.InformInterval, n.informTick)
	}
	if n.cfg.Membership() {
		phase := time.Duration(n.env.Rand().Int63n(int64(n.cfg.ProbeInterval)))
		n.probeCancel = n.env.Schedule(phase, n.probeTick)
	}
}

// Stop cancels the INFORM advertiser and the membership probe loop; queued
// and running work continues.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.informCancel != nil {
		n.informCancel()
		n.informCancel = nil
	}
	n.cancelMembershipTimers()
}

// Kill simulates a node crash: all timers are cancelled, queued and running
// jobs are lost, and the node ignores every subsequent message.
func (n *Node) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
	if n.runningTimer != nil {
		n.runningTimer()
	}
	if n.informCancel != nil {
		n.informCancel()
	}
	// Discovery rounds die with their initiator; the sorted walk keeps the
	// emitted span order deterministic.
	pendUUIDs := make([]job.UUID, 0, len(n.pending))
	for uuid := range n.pending {
		pendUUIDs = append(pendUUIDs, uuid)
	}
	sort.Slice(pendUUIDs, func(i, k int) bool { return pendUUIDs[i] < pendUUIDs[k] })
	for _, uuid := range pendUUIDs {
		p := n.pending[uuid]
		if p.timer != nil {
			p.timer()
		}
		n.emitSpan(TraceEvent{Kind: SpanLost, UUID: uuid, Parent: p.span})
	}
	// Open optimistic-commit rounds die with their initiator too.
	commitUUIDs := make([]job.UUID, 0, len(n.commits))
	for uuid := range n.commits {
		commitUUIDs = append(commitUUIDs, uuid)
	}
	sort.Slice(commitUUIDs, func(i, k int) bool { return commitUUIDs[i] < commitUUIDs[k] })
	for _, uuid := range commitUUIDs {
		pc := n.commits[uuid]
		if pc.timer != nil {
			pc.timer()
		}
		n.emitSpan(TraceEvent{Kind: SpanLost, UUID: uuid, Parent: pc.span, Peer: pc.target})
	}
	for _, t := range n.tracked {
		if t.watchdog != nil {
			t.watchdog()
		}
	}
	for _, oa := range n.outAssigns {
		if oa.timer != nil {
			oa.timer()
		}
		// The crash abandons the handshake: without this event the
		// assignment span would dangle with no observable consequence.
		n.emitSpan(TraceEvent{Kind: SpanLost, UUID: oa.profile.UUID, Parent: oa.span, Peer: oa.to})
	}
	n.cancelMembershipTimers()
	if n.running != nil {
		n.emitSpan(TraceEvent{Kind: SpanLost, UUID: n.running.UUID, Parent: n.runningSpan})
	}
	n.running = nil
	n.runningSpan = 0
	heldUUIDs := make([]job.UUID, 0, len(n.held))
	for uuid := range n.held {
		heldUUIDs = append(heldUUIDs, uuid)
	}
	sort.Slice(heldUUIDs, func(i, k int) bool { return heldUUIDs[i] < heldUUIDs[k] })
	for _, uuid := range heldUUIDs {
		h := n.held[uuid]
		if h.timer != nil {
			h.timer()
		}
		n.emitSpan(TraceEvent{Kind: SpanLost, UUID: uuid, Parent: h.span})
	}
	n.pending = make(map[job.UUID]*pendingJob)
	if n.commits != nil {
		n.commits = make(map[job.UUID]*pendingCommit)
	}
	n.tracked = make(map[job.UUID]*trackedJob)
	n.outAssigns = make(map[job.UUID]*outAssign)
	n.notifyOut = make(map[job.UUID]*pendingNotify)
	n.held = make(map[job.UUID]*heldJob)
	// A crash loses the local queue; the initiators' failsafe watchdogs
	// (when armed) are what recovers these jobs.
	for _, j := range n.queue.Jobs() {
		n.emitSpan(TraceEvent{Kind: SpanLost, UUID: j.UUID, Parent: n.enqSpans[j.UUID]})
		n.queue.Remove(j.UUID)
	}
	n.initiators = make(map[job.UUID]overlay.NodeID)
	n.enqSpans = make(map[job.UUID]uint64)
}

// Alive reports whether the node has not been killed.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// QueueLen reports the number of jobs waiting in the local queue.
func (n *Node) QueueLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queue.Len()
}

// Busy reports whether a job is currently executing.
func (n *Node) Busy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.running != nil
}

// Idle reports whether the node has neither running nor queued jobs — the
// paper's definition of an idle node (§V-A).
func (n *Node) Idle() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.running == nil && n.queue.Len() == 0
}

// QueuedJobs lists the UUIDs of waiting jobs in scheduled (policy) order.
func (n *Node) QueuedJobs() []job.UUID {
	n.mu.Lock()
	defer n.mu.Unlock()
	jobs := n.queue.Jobs()
	out := make([]job.UUID, len(jobs))
	for i, j := range jobs {
		out[i] = j.UUID
	}
	return out
}

// Running reports the UUID of the executing job, if any.
func (n *Node) Running() (job.UUID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running == nil {
		return "", false
	}
	return n.running.UUID, true
}

// Offer evaluates the node's current cost for hosting p, reporting false
// when the node cannot host it (resource mismatch, class mismatch, or
// dead). This is the same evaluation the node performs on an incoming
// REQUEST; it is exposed for omniscient baseline schedulers and tooling.
func (n *Node) Offer(p job.Profile) (sched.Cost, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return 0, false
	}
	return n.selfOffer(p)
}

// Submit makes this node the initiator for job p: it floods a REQUEST
// across the overlay, collects ACCEPT offers for the configured timelapse,
// and delegates the job to the best offer.
func (n *Node) Submit(p job.Profile) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return fmt.Errorf("submit: node %v is dead", n.id)
	}
	if n.discoveryOpen(p.UUID) {
		return fmt.Errorf("submit: job %s already pending", p.UUID.Short())
	}
	// Admission control: past the pending bound the submission is bounced
	// before it counts as submitted, so the caller can redraw another
	// portal or push back on the client. Open commit rounds count — they
	// are discoveries in flight like any other.
	if inflight := len(n.pending) + len(n.commits); n.cfg.MaxPendingSubmits > 0 && inflight >= n.cfg.MaxPendingSubmits {
		if n.oobs != nil {
			n.oobs.SubmitRejected(n.env.Now(), n.id, p.UUID, inflight)
		}
		return fmt.Errorf("submit: node %v: %w", n.id, ErrOverloaded)
	}
	n.obs.JobSubmitted(n.env.Now(), n.id, p)
	root := n.emitSpan(TraceEvent{Kind: SpanSubmit, UUID: p.UUID})
	n.startDiscovery(p, 0, root)
	return nil
}

// startDiscovery opens a discovery round for p, trying the cheapest stage
// that can work: an optimistic commit against the cached cluster view
// (shared-state extension), then directed probes (directory extension),
// then the classic REQUEST flood. The cheap stages run on fresh rounds
// only — retries have already proven the cached knowledge insufficient for
// this job. Caller holds the lock.
func (n *Node) startDiscovery(p job.Profile, retries int, parent uint64) {
	if retries == 0 && n.view != nil && n.startCommit(p, parent) {
		return
	}
	if retries == 0 && n.cfg.Directory() && n.dir != nil && n.startDirected(p, parent) {
		return
	}
	n.startFlood(p, retries, parent)
}

// startFlood floods a REQUEST round for p and arms the decision timer.
// The round's flood-origin span parents to the given span (the submission,
// a retry, a watchdog resubmission, an assignment fallback, or a starved
// directed round's fallback). Caller holds the lock.
func (n *Node) startFlood(p job.Profile, retries int, parent uint64) {
	pend := &pendingJob{profile: p, retries: retries}
	// The initiator is itself a candidate when its resources match.
	if cost, ok := n.selfOffer(p); ok {
		pend.best, pend.bestCost, pend.hasBest = n.id, cost, true
		pend.offers = append(pend.offers, offer{node: n.id, cost: cost})
	}
	n.pending[p.UUID] = pend
	// Flood recovery: a retried round searches a degraded overlay
	// progressively deeper by escalating the TTL per attempt.
	ttl := n.cfg.RequestTTL
	if retries > 0 && n.cfg.ReFloodTTLStep > 0 {
		ttl += retries * n.cfg.ReFloodTTLStep
		if n.mobs != nil {
			n.mobs.FloodEscalated(n.env.Now(), n.id, p.UUID, retries, ttl)
		}
	}
	// The span rides the wire before the fan-out is known, so allocate it
	// up front and emit the origin event after sending.
	if n.tobs != nil {
		pend.span = n.nextSpanID()
	}
	msg := Message{
		Type:   MsgRequest,
		From:   n.id,
		Job:    p,
		Cost:   0,
		TTL:    ttl - 1,
		Fanout: n.cfg.RequestFanout,
		Seq:    n.nextSeq(),
		Via:    n.id,
		Hop:    1,
		Span:   pend.span,
	}
	n.markSeen(msg.floodFP())
	sent := n.forward(msg, n.cfg.RequestFanout)
	n.emitSpan(TraceEvent{
		Kind: SpanFloodOrigin, UUID: p.UUID, Span: pend.span, Parent: parent,
		Msg: MsgRequest, Hop: 0, TTL: ttl, Fanout: sent,
		Seq: msg.Seq, Origin: n.id, Attempt: retries,
	})
	uuid := p.UUID
	pend.timer = n.env.Schedule(n.cfg.AcceptTimeout, func() { n.decide(uuid) })
}

// selfOffer evaluates the node's own cost for p. A saturated node never
// offers — on REQUESTs, on INFORMs, or as its own discovery candidate — so
// load shedding starts at the bidding stage, not only at assignment time.
// Caller holds the lock.
func (n *Node) selfOffer(p job.Profile) (sched.Cost, bool) {
	if !n.profile.Satisfies(p.Req) {
		return 0, false
	}
	if n.overloaded() {
		return 0, false
	}
	cost, err := n.queue.OfferCost(p, n.env.Now(), n.estRemaining())
	if err != nil {
		return 0, false
	}
	return cost, true
}

// decide closes a discovery round: assign to the best offer, or retry.
func (n *Node) decide(uuid job.UUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	pend, ok := n.pending[uuid]
	if !ok {
		return
	}
	delete(n.pending, uuid)
	// A starved directed round escalates to the flood before any
	// assignment is considered: directed discovery must never narrow the
	// candidate pool a flood would have reached.
	if pend.directed && pend.directedOffers < n.cfg.MinDirectedOffers {
		n.directedFallback(pend)
		return
	}
	best, bestCost, hasBest := pend.best, pend.bestCost, pend.hasBest
	if hasBest && n.peerDead(best) {
		// The winner was confirmed dead during the collect window: re-scan
		// the surviving offers in arrival order (strict < preserves the
		// original first-wins tie-breaking).
		hasBest = false
		for _, o := range pend.offers {
			if o.node != n.id && n.peerDead(o.node) {
				continue
			}
			if !hasBest || o.cost < bestCost {
				best, bestCost, hasBest = o.node, o.cost, true
			}
		}
	}
	if !hasBest {
		if pend.retries < n.cfg.MaxRequestRetries {
			p, retries, parent := pend.profile, pend.retries+1, pend.span
			n.env.Schedule(n.retryDelay(retries), func() {
				n.mu.Lock()
				defer n.mu.Unlock()
				if !n.alive {
					return
				}
				if n.discoveryOpen(p.UUID) {
					return
				}
				n.startDiscovery(p, retries, parent)
			})
			return
		}
		n.emitSpan(TraceEvent{Kind: SpanFail, UUID: uuid, Parent: pend.span, Attempt: pend.retries})
		n.obs.JobFailed(n.env.Now(), n.id, uuid, "no candidate found")
		return
	}
	if n.cfg.MultiAssign > 1 {
		n.multiAssign(pend)
		return
	}
	n.obs.JobAssigned(n.env.Now(), uuid, n.id, best, bestCost, false)
	aspan := n.emitSpan(TraceEvent{
		Kind: SpanAssign, UUID: uuid, Parent: pend.span,
		Peer: best, Cost: bestCost,
	})
	n.trackAssignment(pend.profile, best, bestCost, aspan)
	if best == n.id {
		n.enqueueLocal(pend.profile, n.id, aspan)
		return
	}
	n.sendAssign(best, pend.profile, n.id, false, aspan)
}

// sendAssign dispatches an ASSIGN to a remote node and, when the AssignAck
// handshake is enabled, tracks it for retransmission until acknowledged.
// The Via field carries the actual sender so the assignee can address the
// acknowledgement (From is the initiator, which differs from the sender on
// a rescheduling handoff). Caller holds the lock.
func (n *Node) sendAssign(to overlay.NodeID, p job.Profile, initiator overlay.NodeID, reschedule bool, span uint64) {
	if n.dir != nil {
		// Optimistically bump the assignee's cached load hint: its queue
		// just grew, and waiting for gossip to say so would herd the next
		// directed round at the same node.
		n.dir.BumpLoad(to, 1)
	}
	n.env.Send(to, Message{Type: MsgAssign, From: initiator, Job: p, Via: n.id, Span: span})
	if !n.cfg.AssignAck {
		return
	}
	if prev, ok := n.outAssigns[p.UUID]; ok && prev.timer != nil {
		prev.timer()
	}
	oa := &outAssign{profile: p, to: to, initiator: initiator, reschedule: reschedule, span: span}
	n.outAssigns[p.UUID] = oa
	n.jlog(wal.Record{Type: wal.RecAssignSent, UUID: p.UUID, Profile: &p, Peer: to, Init: initiator, Reschedule: reschedule, Span: span})
	n.armAssignRetry(oa)
}

// armAssignRetry schedules the next retransmission check for oa, doubling
// the wait on every attempt (same backoff discipline as REQUEST re-floods).
// Caller holds the lock.
func (n *Node) armAssignRetry(oa *outAssign) {
	uuid := oa.profile.UUID
	delay := n.cfg.AssignAckTimeout << uint(min(oa.attempts, 6))
	oa.timer = n.env.Schedule(delay, func() { n.assignRetryFire(uuid) })
}

// assignRetryFire retransmits an unacknowledged ASSIGN or, once retries are
// exhausted, runs the fallback path.
func (n *Node) assignRetryFire(uuid job.UUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	oa, ok := n.outAssigns[uuid]
	if !ok {
		return
	}
	// Once the target is confirmed dead, retransmitting is pointless: run
	// the fallback immediately instead of waiting out the backoff ladder.
	if oa.attempts >= n.cfg.AssignMaxRetries || n.peerDead(oa.to) {
		delete(n.outAssigns, uuid)
		n.jlog(wal.Record{Type: wal.RecAssignClosed, UUID: uuid})
		n.assignFallback(oa)
		return
	}
	oa.attempts++
	if n.dobs != nil {
		n.dobs.AssignRetried(n.env.Now(), n.id, uuid, oa.attempts)
	}
	n.jlog(wal.Record{Type: wal.RecAssignSent, UUID: uuid, Profile: &oa.profile, Peer: oa.to, Init: oa.initiator, Reschedule: oa.reschedule, Attempts: oa.attempts, Span: oa.span})
	n.emitSpan(TraceEvent{Kind: SpanRetry, UUID: uuid, Parent: oa.span, Peer: oa.to, Attempt: oa.attempts})
	n.env.Send(oa.to, Message{Type: MsgAssign, From: oa.initiator, Job: oa.profile, Via: n.id, Span: oa.span})
	n.armAssignRetry(oa)
}

// assignFallback recovers an assignment whose every retransmission went
// unanswered: an initiator runs a fresh discovery round; a rescheduling
// assignee takes the job back into its own queue — the loss-safe handoff
// guarantee that a dropped ASSIGN never orphans a queued job. Caller holds
// the lock.
func (n *Node) assignFallback(oa *outAssign) {
	uuid := oa.profile.UUID
	if oa.reschedule {
		if _, queued := n.queue.Get(uuid); queued {
			return // already re-acquired (e.g. a duplicate ASSIGN loop)
		}
		if n.running != nil && n.running.UUID == uuid {
			return
		}
		fb := n.emitSpan(TraceEvent{Kind: SpanFallback, UUID: uuid, Parent: oa.span, Peer: oa.to})
		n.enqueueLocal(oa.profile, oa.initiator, fb)
		if n.dobs != nil {
			n.dobs.AssignRecovered(n.env.Now(), n.id, uuid)
		}
		return
	}
	if n.discoveryOpen(uuid) {
		return
	}
	if n.dobs != nil {
		n.dobs.AssignRecovered(n.env.Now(), n.id, uuid)
	}
	fb := n.emitSpan(TraceEvent{Kind: SpanFallback, UUID: uuid, Parent: oa.span, Peer: oa.to})
	n.startDiscovery(oa.profile, 0, fb)
}

// multiAssign implements the multiple-simultaneous-requests comparison
// protocol: the K cheapest distinct offers each receive a copy of the job;
// the first copy to start executing triggers revocation of the rest.
// Caller holds the lock.
func (n *Node) multiAssign(pend *pendingJob) {
	sort.SliceStable(pend.offers, func(i, k int) bool {
		return pend.offers[i].cost < pend.offers[k].cost
	})
	var targets []offer
	seen := make(map[overlay.NodeID]bool, n.cfg.MultiAssign)
	for _, o := range pend.offers {
		if seen[o.node] {
			continue
		}
		seen[o.node] = true
		targets = append(targets, o)
		if len(targets) == n.cfg.MultiAssign {
			break
		}
	}
	uuid := pend.profile.UUID
	assignees := make([]overlay.NodeID, 0, len(targets))
	for _, o := range targets {
		assignees = append(assignees, o.node)
	}
	n.multi[uuid] = assignees
	selfCopy := false
	var selfSpan uint64
	for i, o := range targets {
		// Only the first (cheapest) assignment is reported as the
		// job's placement; the rest are protocol overhead.
		if i == 0 {
			n.obs.JobAssigned(n.env.Now(), uuid, n.id, o.node, o.cost, false)
		}
		cspan := n.emitSpan(TraceEvent{
			Kind: SpanAssign, UUID: uuid, Parent: pend.span,
			Peer: o.node, Cost: o.cost,
		})
		if o.node == n.id {
			// Deferred below: a local copy can start (and trigger
			// revocation) synchronously, so every remote ASSIGN must
			// already be on the wire ahead of the CANCELs.
			selfCopy = true
			selfSpan = cspan
			continue
		}
		n.env.Send(o.node, Message{Type: MsgAssign, From: n.id, Job: pend.profile, Via: n.id, Span: cspan})
	}
	if selfCopy {
		n.enqueueLocal(pend.profile, n.id, selfSpan)
	}
}

// cancelCopies revokes every multi-assigned copy except the winner's.
// Caller holds the lock.
func (n *Node) cancelCopies(uuid job.UUID, p job.Profile, winner overlay.NodeID, parent uint64) {
	assignees, ok := n.multi[uuid]
	if !ok {
		return
	}
	delete(n.multi, uuid)
	for _, a := range assignees {
		if a == winner {
			continue
		}
		cspan := n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: uuid, Parent: parent, Peer: a})
		if a == n.id {
			// Local copy: drop it from our own queue.
			if n.queue.Remove(uuid) {
				n.jlog(wal.Record{Type: wal.RecDequeue, UUID: uuid})
			}
			delete(n.initiators, uuid)
			delete(n.enqSpans, uuid)
			continue
		}
		n.env.Send(a, Message{Type: MsgCancel, From: n.id, Job: p, Span: cspan})
	}
}

// trackAssignment arms the failsafe watchdog for a delegated job. Caller
// holds the lock. Self-assignments are not tracked: a crash of this node
// loses the tracking state anyway.
func (n *Node) trackAssignment(p job.Profile, assignee overlay.NodeID, cost sched.Cost, span uint64) {
	if !n.cfg.NotifyInitiator || assignee == n.id {
		return
	}
	if prev, ok := n.tracked[p.UUID]; ok && prev.watchdog != nil {
		prev.watchdog()
	}
	t := &trackedJob{profile: p, assignee: assignee, span: span}
	if p.Class == job.ClassBatch && cost > 0 {
		// The winning ETTC offer is the expected relative completion.
		t.expect = time.Duration(float64(cost) * float64(time.Second))
	}
	if prev, ok := n.tracked[p.UUID]; ok {
		t.resub = prev.resub
		if prev.expect > t.expect {
			t.expect = prev.expect
		}
	}
	n.tracked[p.UUID] = t
	n.jlog(wal.Record{Type: wal.RecWatchdog, UUID: p.UUID, Profile: &p, Peer: assignee, Resub: t.resub, Expect: t.expect, Span: span})
	n.armWatchdog(t)
}

// armWatchdog (re)schedules the lost-job check for t. Caller holds the lock.
func (n *Node) armWatchdog(t *trackedJob) {
	uuid := t.profile.UUID
	t.watchdog = n.env.Schedule(n.watchdogDelay(t), func() { n.watchdogFire(uuid) })
}

// watchdogDelay estimates how long to wait before declaring a tracked job
// lost: a grace multiple of the job's expected completion horizon, doubled
// for every resubmission already performed. Premature firings are costly —
// they duplicate live work — so the delay errs long; an actually crashed
// assignee just means a late (not lost) recovery.
func (n *Node) watchdogDelay(t *trackedJob) time.Duration {
	p := t.profile
	base := p.ERT
	if t.expect > base {
		base = t.expect
	}
	if p.Class == job.ClassDeadline {
		if d := p.Deadline - n.env.Now() + p.ERT; d > base {
			base = d
		}
	}
	if p.EarliestStart > n.env.Now() {
		base += p.EarliestStart - n.env.Now()
	}
	backoff := float64(uint64(1) << uint(min(t.resub, 6)))
	return time.Duration(float64(base)*n.cfg.WatchdogGrace*backoff) + n.cfg.AcceptTimeout
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// watchdogFire re-submits a tracked job that went silent.
func (n *Node) watchdogFire(uuid job.UUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	t, ok := n.tracked[uuid]
	if !ok {
		return
	}
	if t.resub >= n.cfg.MaxRequestRetries {
		delete(n.tracked, uuid)
		n.jlog(wal.Record{Type: wal.RecTrackDone, UUID: uuid})
		n.emitSpan(TraceEvent{Kind: SpanFail, UUID: uuid, Attempt: t.resub})
		n.obs.JobFailed(n.env.Now(), n.id, uuid, "lost after resubmission limit")
		return
	}
	_, handshakeOpen := n.outAssigns[uuid]
	if t.defers < watchdogMaxDefers && (handshakeOpen || n.peerLive(t.assignee)) {
		// Stand down while another recovery mechanism still owns the job.
		// An open ASSIGN handshake means the retransmission loop is live:
		// it will either get the ack through or exhaust into its own
		// loss-safe fallback, and a parallel resubmission flood just races
		// it into a duplicate. Likewise when the failure detector still
		// vouches for the assignee: the silence is a partitioned or
		// delayed NOTIFY path, not a crash, and the assignee may well have
		// completed the job already — hold fire until the detector
		// convicts the peer or the deferral budget runs out, whichever is
		// first. A still-live NOTIFY retry loop gets that long to land.
		t.defers++
		n.armWatchdog(t)
		return
	}
	t.resub++
	t.watchdog = nil
	n.jlog(wal.Record{Type: wal.RecWatchdog, UUID: uuid, Profile: &t.profile, Peer: t.assignee, Resub: t.resub, Expect: t.expect, Span: t.span})
	if !n.discoveryOpen(uuid) {
		rs := n.emitSpan(TraceEvent{Kind: SpanResubmit, UUID: uuid, Peer: t.assignee, Attempt: t.resub})
		n.startDiscovery(t.profile, 0, rs)
	}
}

// HandleMessage is the transport entry point for inbound protocol traffic.
func (n *Node) HandleMessage(m Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	switch m.Type {
	case MsgRequest:
		n.handleRequest(m)
	case MsgAccept:
		n.handleAccept(m)
	case MsgInform:
		n.handleInform(m)
	case MsgAssign:
		n.handleAssign(m)
	case MsgNotify:
		n.handleNotify(m)
	case MsgCancel:
		n.handleCancel(m)
	case MsgAssignAck:
		n.handleAssignAck(m)
	case MsgPing:
		n.handlePing(m)
	case MsgPong:
		n.handlePong(m)
	case MsgBusy:
		n.handleBusy(m)
	case MsgCommit:
		n.handleCommit(m)
	case MsgConflict:
		n.handleConflict(m)
	}
}

// handleAssignAck closes the handshake for an outstanding ASSIGN — or, on
// the shared-state arm, a commit grant: the provider's ASSIGN_ACK for an
// open commit round is the grant itself. Caller holds the lock.
func (n *Node) handleAssignAck(m Message) {
	if pc, ok := n.commits[m.Job.UUID]; ok && m.From == pc.target {
		n.commitGranted(pc, m)
		return
	}
	oa, ok := n.outAssigns[m.Job.UUID]
	if !ok || m.From != oa.to {
		return // no open handshake, or an ack from a stale assignee
	}
	if oa.timer != nil {
		oa.timer()
	}
	delete(n.outAssigns, m.Job.UUID)
	n.jlog(wal.Record{Type: wal.RecAssignClosed, UUID: m.Job.UUID})
	if oa.attempts > 0 && n.dobs != nil {
		n.dobs.AssignRecovered(n.env.Now(), n.id, m.Job.UUID)
	}
}

// handleCancel revokes a copy of a multi-assigned or resubmitted job:
// fenced (awaiting re-confirmation), queued, or running. Caller holds the
// lock.
func (n *Node) handleCancel(m Message) {
	if n.dropHeld(m.Job.UUID, m.Span, m.From) {
		return
	}
	n.dropLocalCopy(m.Job.UUID, m.Span, m.From)
}

// dropLocalCopy removes this node's own queued or running copy of a job
// that has been revoked or completed elsewhere, reporting whether one was
// found. Caller holds the lock.
func (n *Node) dropLocalCopy(uuid job.UUID, parent uint64, peer overlay.NodeID) bool {
	if n.queue.Remove(uuid) {
		delete(n.initiators, uuid)
		n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: uuid, Parent: parent, Peer: peer})
		delete(n.enqSpans, uuid)
		n.jlog(wal.Record{Type: wal.RecDequeue, UUID: uuid})
		return true
	}
	if n.running != nil && n.running.UUID == uuid {
		// A revoked execution in flight — a stale copy that lost a
		// completion race, or a recovered copy the initiator already
		// replaced. Abort it before it emits a duplicate completion;
		// RecDequeue tells replay the slot is clear again.
		if n.runningTimer != nil {
			n.runningTimer()
			n.runningTimer = nil
		}
		n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: uuid, Parent: parent, Peer: peer})
		n.jlog(wal.Record{Type: wal.RecDequeue, UUID: uuid})
		n.running = nil
		n.runningSpan = 0
		delete(n.initiators, uuid)
		n.maybeStart()
		return true
	}
	return false
}

// handleRequest answers matching REQUESTs with an ACCEPT offer and forwards
// the flood otherwise (§III-C). Caller holds the lock.
func (n *Node) handleRequest(m Message) {
	if n.isDuplicate(m) {
		// A suppressed duplicate is bookkeeping, never a forward: it must
		// not inflate the wave's forward count (redundancy accounting).
		n.emitSpan(TraceEvent{
			Kind: SpanDuplicate, UUID: m.Job.UUID, Parent: m.Span,
			Msg: m.Type, Hop: m.Hop, TTL: m.TTL, Seq: m.Seq,
			Origin: m.From, Peer: m.Via,
		})
		return
	}
	// An initiator this node has confirmed dead gets no offer (it will
	// never collect it); the flood is still useful to relay.
	if !n.peerDead(m.From) {
		if n.overloaded() && n.profile.Satisfies(m.Job.Req) {
			// Saturated but matching: an advisory BUSY tells the initiator
			// not to count on this node (and to demote it in its directory)
			// while the flood still relays toward unsaturated candidates.
			depth := n.loadDepth()
			if n.oobs != nil {
				n.oobs.RequestShed(n.env.Now(), n.id, m.Job.UUID, depth)
			}
			bspan := n.emitSpan(TraceEvent{
				Kind: SpanBusy, UUID: m.Job.UUID, Parent: m.Span,
				Msg: MsgRequest, Peer: m.From, Fanout: depth,
			})
			n.env.Send(m.From, Message{Type: MsgBusy, From: n.id, Job: m.Job, Re: MsgRequest, Span: bspan})
			n.forwardFlood(m)
			return
		}
		if cost, ok := n.selfOffer(m.Job); ok {
			ospan := n.emitSpan(TraceEvent{
				Kind: SpanOffer, UUID: m.Job.UUID, Parent: m.Span,
				Msg: m.Type, Hop: m.Hop, TTL: m.TTL, Seq: m.Seq,
				Origin: m.From, Peer: m.From, Cost: cost,
			})
			n.env.Send(m.From, Message{Type: MsgAccept, From: n.id, Job: m.Job, Cost: cost, Span: ospan, Dir: n.selfDirPayload()})
			return
		}
	}
	n.forwardFlood(m)
}

// handleInform evaluates a rescheduling advertisement: a matching node
// replies to the current assignee only when it beats the advertised cost by
// the configured threshold; non-matching nodes forward the flood (§III-D).
// Caller holds the lock.
func (n *Node) handleInform(m Message) {
	if m.From == n.id {
		return // own advertisement looped back
	}
	if n.isDuplicate(m) {
		n.emitSpan(TraceEvent{
			Kind: SpanDuplicate, UUID: m.Job.UUID, Parent: m.Span,
			Msg: m.Type, Hop: m.Hop, TTL: m.TTL, Seq: m.Seq,
			Origin: m.From, Peer: m.Via,
		})
		return
	}
	// The INFORM's origin digest (carried through every forwarded copy)
	// teaches the flood's whole reach the assignee's profile.
	n.learnDigests(m)
	cost, ok := n.selfOffer(m.Job)
	if !ok || n.peerDead(m.From) {
		// Non-matching, or the advertising assignee is confirmed dead
		// (never reply to a dead peer): relay only.
		n.forwardFlood(m)
		return
	}
	threshold := sched.Cost(n.cfg.RescheduleThreshold.Seconds())
	// Strict: §III-D reschedules only when the improvement exceeds the
	// threshold; an improvement of exactly the threshold stays put.
	if cost < m.Cost-threshold {
		ospan := n.emitSpan(TraceEvent{
			Kind: SpanOffer, UUID: m.Job.UUID, Parent: m.Span,
			Msg: m.Type, Hop: m.Hop, TTL: m.TTL, Seq: m.Seq,
			Origin: m.From, Peer: m.From, Cost: cost,
		})
		n.env.Send(m.From, Message{Type: MsgAccept, From: n.id, Job: m.Job, Cost: cost, Span: ospan, Dir: n.selfDirPayload()})
	}
}

// handleAccept routes an ACCEPT to the right context: a discovery reply
// when this node is the job's initiator with an open round, otherwise a
// rescheduling offer for a job queued here. Caller holds the lock.
func (n *Node) handleAccept(m Message) {
	if n.peerDead(m.From) {
		return // stale offer from a confirmed-dead peer
	}
	// An ACCEPT proves its sender's willingness to host: the digest it
	// carries is the freshest profile knowledge the directory can get, and
	// its offered cost feeds the per-peer cost EWMA that demotes slow peers
	// in candidate ranking.
	n.learnDigests(m)
	if n.dir != nil {
		n.dir.ObserveCost(m.From, float64(m.Cost))
	}
	uuid := m.Job.UUID
	if pend, ok := n.pending[uuid]; ok {
		n.emitSpan(TraceEvent{
			Kind: SpanOfferRecv, UUID: uuid, Parent: m.Span,
			Peer: m.From, Cost: m.Cost,
		})
		if pend.directed {
			pend.directedOffers++
		}
		if !pend.hasBest || m.Cost < pend.bestCost {
			pend.best, pend.bestCost, pend.hasBest = m.From, m.Cost, true
		}
		pend.offers = append(pend.offers, offer{node: m.From, cost: m.Cost})
		return
	}
	n.handleRescheduleOffer(m)
}

// handleRescheduleOffer moves a queued job to a cheaper node (§III-D).
// The offer is re-validated against the job's current local cost, since the
// queue may have changed since the INFORM was sent. Caller holds the lock.
func (n *Node) handleRescheduleOffer(m Message) {
	uuid := m.Job.UUID
	if m.From == n.id {
		return
	}
	if _, queued := n.queue.Get(uuid); !queued {
		return // started, completed, or already rescheduled
	}
	current, ok := n.queue.QueuedCost(uuid, n.env.Now(), n.estRemaining())
	if !ok {
		return
	}
	threshold := sched.Cost(n.cfg.RescheduleThreshold.Seconds())
	// Strict, matching the INFORM-side check: the move must improve the
	// cost by MORE than the threshold, not by exactly the threshold.
	if m.Cost >= current-threshold {
		return // benefit no longer justifies the move
	}
	initiator, ok := n.initiators[uuid]
	if !ok {
		initiator = n.id
	}
	n.queue.Remove(uuid)
	delete(n.initiators, uuid)
	delete(n.enqSpans, uuid)
	n.jlog(wal.Record{Type: wal.RecDequeue, UUID: uuid})
	n.obs.JobAssigned(n.env.Now(), uuid, n.id, m.From, m.Cost, true)
	rspan := n.emitSpan(TraceEvent{
		Kind: SpanReschedule, UUID: uuid, Parent: m.Span,
		Peer: m.From, Cost: m.Cost, OldCost: current,
	})
	// With the handshake on, the job stays this node's responsibility
	// (tracked in outAssigns) until the new assignee acknowledges; if the
	// ASSIGN is lost, the fallback re-enqueues it here.
	n.sendAssign(m.From, m.Job, initiator, true, rspan)
}

// handleAssign queues a delegated job. Accepted jobs may not be declined
// (§III-A). The profile is validated here because ASSIGN is the one
// message that creates durable node state; the TCP transport additionally
// validates every inbound frame. With the AssignAck handshake on, every
// delivery — including duplicates, whose earlier acknowledgement may have
// been lost — is re-acknowledged to the sending node (carried in Via).
// Caller holds the lock.
func (n *Node) handleAssign(m Message) {
	if m.Job.Validate() != nil {
		return
	}
	if pn, done := n.notifyOut[m.Job.UUID]; done {
		// This node already completed the job and the initiator has not
		// acked the completion yet: a retransmitted ASSIGN (its earlier ack
		// was lost) must not re-run it. Re-ack the handshake and push the
		// completion NOTIFY again instead.
		if n.cfg.AssignAck {
			n.env.Send(m.Via, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
		}
		n.emitSpan(TraceEvent{Kind: SpanDuplicate, UUID: m.Job.UUID, Parent: m.Span, Peer: m.From, Msg: MsgAssign})
		n.env.Send(pn.initiator, Message{Type: MsgNotify, From: n.id, Job: pn.profile, Notify: NotifyCompleted, Span: pn.span})
		return
	}
	if _, fenced := n.held[m.Job.UUID]; fenced {
		// A retransmitted ASSIGN for a fenced recovered copy is an implicit
		// confirmation: the initiator still wants this node to run it.
		if n.cfg.AssignAck {
			n.env.Send(m.Via, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
		}
		n.emitSpan(TraceEvent{Kind: SpanDuplicate, UUID: m.Job.UUID, Parent: m.Span, Peer: m.From, Msg: MsgAssign})
		n.releaseHeld(m.Job.UUID)
		return
	}
	_, queued := n.queue.Get(m.Job.UUID)
	if queued || (n.running != nil && n.running.UUID == m.Job.UUID) {
		// Duplicate delivery (lossy links, or a failsafe resubmission that
		// re-chose the node already holding the job). Re-acknowledged —
		// the earlier ack may have been lost — and traced so the
		// assignment span keeps an observable consequence.
		if n.cfg.AssignAck {
			n.env.Send(m.Via, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
		}
		n.emitSpan(TraceEvent{Kind: SpanDuplicate, UUID: m.Job.UUID, Parent: m.Span, Peer: m.From, Msg: MsgAssign})
		return
	}
	// A saturated provider refuses the job instead of queueing unbounded
	// work. Deliberately unacknowledged: the sender's handshake stays open
	// until the BUSY lands, so a lost BUSY is covered by ASSIGN retries.
	if n.overloaded() {
		n.shedAssign(m)
		return
	}
	if n.cfg.AssignAck {
		n.env.Send(m.Via, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
	}
	n.enqueueLocal(m.Job, m.From, m.Span)
}

// enqueueLocal places a job in the local queue and starts it when the
// execution slot is free. The enqueue span parents to the span that caused
// it (the incoming ASSIGN's, a local assignment decision's, or a fallback's)
// and is remembered so the eventual start or loss parents to it. Caller
// holds the lock.
func (n *Node) enqueueLocal(p job.Profile, initiator overlay.NodeID, parent uint64) {
	j := job.New(p)
	n.initiators[p.UUID] = initiator
	n.queue.Enqueue(j, n.env.Now())
	espan := n.emitSpan(TraceEvent{Kind: SpanEnqueue, UUID: p.UUID, Parent: parent, Peer: initiator})
	if n.tobs != nil {
		n.enqSpans[p.UUID] = espan
	}
	n.jlog(wal.Record{Type: wal.RecEnqueue, UUID: p.UUID, Profile: &p, Peer: initiator, Span: espan})
	if n.cfg.NotifyInitiator && initiator != n.id {
		n.env.Send(initiator, Message{Type: MsgNotify, From: n.id, Job: p, Notify: NotifyQueued, Span: espan})
	}
	n.maybeStart()
}

// handleNotify updates the initiator's failsafe tracking state and drives
// multi-assign revocation. Caller holds the lock.
func (n *Node) handleNotify(m Message) {
	switch m.Notify {
	case NotifyStarted:
		n.cancelCopies(m.Job.UUID, m.Job, m.From, m.Span)
		return
	case NotifyAck:
		n.closeNotifyOut(m.Job.UUID)
		return
	case NotifyResurfaced:
		n.handleResurfaced(m)
		return
	case NotifyConfirm:
		n.releaseHeld(m.Job.UUID)
		return
	case NotifyCompleted:
		// Acknowledge unconditionally, tracked or not: the assignee resends
		// until acked, and even an initiator that lost its tracking state
		// (a watchdog give-up, or a wiped restart) must silence the loop.
		n.env.Send(m.From, Message{Type: MsgNotify, From: n.id, Job: m.Job, Notify: NotifyAck, Span: m.Span})
		// The completion supersedes any ASSIGN handshake still open for the
		// job: retransmitting it could re-run the job at an assignee that no
		// longer remembers it.
		n.closeAssignOnComplete(m.Job.UUID)
		// Likewise any still-open optimistic-commit round: a grant racing
		// this completion would place (and re-run) a copy of a finished job.
		n.closeCommitOnComplete(m.Job.UUID)
		// It also supersedes any copy of the job this node still holds
		// itself — a watchdog resubmission that self-assigned races the
		// original assignee's recovery exactly like a remote replacement.
		n.dropLocalCopy(m.Job.UUID, m.Span, m.From)
	}
	if m.Notify == NotifyQueued {
		if pc, copen := n.commits[m.Job.UUID]; copen && pc.target == m.From {
			// The enqueue NOTIFY from the commit target outran (or replaced
			// a lost) grant ASSIGN_ACK: the enqueue is proof the commit was
			// granted. Close the round before the tracked-state update below
			// so the retry timer cannot place a second copy.
			n.commitGranted(pc, m)
		}
	}
	t, ok := n.tracked[m.Job.UUID]
	if !ok {
		return
	}
	switch m.Notify {
	case NotifyQueued:
		if t.resub > 0 {
			if pend, open := n.pending[m.Job.UUID]; open {
				// A pre-resubmission copy resurfaced (typically a crashed
				// assignee whose recovery re-enqueued the job) while the
				// replacement round is still collecting offers: keep the
				// live copy, abandon the round — letting it assign would
				// create a second live copy.
				if pend.timer != nil {
					pend.timer()
				}
				delete(n.pending, m.Job.UUID)
			} else if pc, copen := n.commits[m.Job.UUID]; copen && pc.target != m.From {
				// Same race on the shared-state arm: a replacement commit is
				// in flight while the pre-resubmission copy resurfaces. Keep
				// the live copy; abandon the round and chase the
				// possibly-granted commit with a CANCEL.
				n.closeCommitOnComplete(m.Job.UUID)
			} else if n.redundantCopy(m.Job.UUID, m.From) {
				// The replacement copy is already live elsewhere: revoke
				// this stale one before it runs.
				cspan := n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: m.Job.UUID, Parent: m.Span, Peer: m.From})
				n.env.Send(m.From, Message{Type: MsgCancel, From: n.id, Job: m.Job, Span: cspan})
				return
			}
		}
		t.assignee = m.From
		if t.watchdog != nil {
			t.watchdog()
		}
		n.jlog(wal.Record{Type: wal.RecNotify, UUID: m.Job.UUID, Peer: m.From})
		n.armWatchdog(t)
	case NotifyCompleted:
		if t.watchdog != nil {
			t.watchdog()
		}
		delete(n.tracked, m.Job.UUID)
		n.jlog(wal.Record{Type: wal.RecTrackDone, UUID: m.Job.UUID})
		// A completion racing a watchdog resubmission: abandon the
		// still-open rediscovery round and revoke the stale copy before it
		// can run a second time.
		if pend, live := n.pending[m.Job.UUID]; live {
			if pend.timer != nil {
				pend.timer()
			}
			delete(n.pending, m.Job.UUID)
		}
		if t.resub > 0 && t.assignee != 0 && t.assignee != n.id && t.assignee != m.From {
			cspan := n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: m.Job.UUID, Parent: m.Span, Peer: t.assignee})
			n.env.Send(t.assignee, Message{Type: MsgCancel, From: n.id, Job: m.Job, Span: cspan})
		}
	}
}

// redundantCopy reports whether a NOTIFY(queued) from 'from' concerns a
// stale copy of a resubmitted job — the initiator already placed (or is
// running) a replacement. trackAssignment updates the tracked assignee the
// moment the replacement ASSIGN goes out, so comparing against it is safe
// even before the replacement's own NOTIFY(queued) arrives. Caller holds
// the lock.
func (n *Node) redundantCopy(uuid job.UUID, from overlay.NodeID) bool {
	if oa, ok := n.outAssigns[uuid]; ok && oa.to == from {
		return false // the replacement copy itself, confirming
	}
	if _, ok := n.queue.Get(uuid); ok {
		return true // replacement queued locally
	}
	if n.running != nil && n.running.UUID == uuid {
		return true // replacement running locally
	}
	t, ok := n.tracked[uuid]
	return ok && t.assignee != 0 && t.assignee != from
}

// closeAssignOnComplete closes an open ASSIGN handshake for a job this node
// learned is complete. Without this, a lost ACK would keep the
// retransmission loop alive, and a later duplicate ASSIGN could re-run the
// job at an assignee that no longer remembers it. Caller holds the lock.
func (n *Node) closeAssignOnComplete(uuid job.UUID) {
	oa, ok := n.outAssigns[uuid]
	if !ok {
		return
	}
	if oa.timer != nil {
		oa.timer()
	}
	delete(n.outAssigns, uuid)
	n.jlog(wal.Record{Type: wal.RecAssignClosed, UUID: uuid})
}

// armNotifyRetry schedules the next completion-NOTIFY retransmission on
// the shared ack-retry cadence. Caller holds the lock.
func (n *Node) armNotifyRetry(pn *pendingNotify) {
	uuid := pn.profile.UUID
	pn.timer = n.env.Schedule(n.ackRetryDelay(pn.attempts), func() { n.notifyRetryFire(uuid) })
}

// ackRetryDelay is the resend cadence for ack-gated NOTIFY loops
// (completion notifies, resurfaced queries): flat at AssignAckTimeout for
// the first attempts, then doubling (capped). The flat head is
// load-bearing for exactly-one execution — a transient one-way outage
// swallows the early sends, and the signal must land within one timeout of
// the heal, before the initiator's watchdog places a replacement copy.
// Early exponential growth would leave exactly that window silent. Caller
// holds the lock.
func (n *Node) ackRetryDelay(attempts int) time.Duration {
	return n.cfg.AssignAckTimeout << uint(min(max(attempts-3, 0), 6))
}

// notifyRetryFire retransmits an unacknowledged completion NOTIFY. The
// resend is span-silent and not re-journaled: attempts carry no recovery
// semantics, and the receiving side is idempotent (duplicate completion
// notifies only re-ack).
func (n *Node) notifyRetryFire(uuid job.UUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	pn, ok := n.notifyOut[uuid]
	if !ok {
		return
	}
	if n.peerDead(pn.initiator) {
		// A dead initiator can never ack; whoever takes over the job next
		// either learns of it fresh (a wiped restart) or recovers its own
		// tracking and re-asks. Close the loop.
		delete(n.notifyOut, uuid)
		n.jlog(wal.Record{Type: wal.RecNotifyAck, UUID: uuid})
		return
	}
	pn.attempts++
	n.env.Send(pn.initiator, Message{Type: MsgNotify, From: n.id, Job: pn.profile, Notify: NotifyCompleted, Span: pn.span})
	n.armNotifyRetry(pn)
}

// closeNotifyOut closes the completion-NOTIFY resend loop once the
// initiator's ack arrives. Caller holds the lock.
func (n *Node) closeNotifyOut(uuid job.UUID) {
	pn, ok := n.notifyOut[uuid]
	if !ok {
		return
	}
	if pn.timer != nil {
		pn.timer()
	}
	delete(n.notifyOut, uuid)
	n.jlog(wal.Record{Type: wal.RecNotifyAck, UUID: uuid})
}

// handleResurfaced answers an assignee's post-recovery query about a
// crash-recovered copy. The initiator is the only party that knows whether
// that copy is still wanted: if the job is no longer tracked (it already
// completed, or this initiator restarted amnesiac and can never collect
// it) or a replacement copy is live elsewhere, the resurfaced copy is
// revoked; otherwise it is confirmed and the watchdog re-arms around it.
// Caller holds the lock.
func (n *Node) handleResurfaced(m Message) {
	uuid := m.Job.UUID
	t, tracked := n.tracked[uuid]
	if pend, open := n.pending[uuid]; tracked && open {
		// The watchdog's replacement round is still collecting offers:
		// keep the resurfaced copy, abandon the round.
		if pend.timer != nil {
			pend.timer()
		}
		delete(n.pending, uuid)
	} else if pc, copen := n.commits[uuid]; tracked && copen && pc.target != m.From {
		// A replacement commit round is in flight: keep the resurfaced
		// copy, abandon the round, and chase the possibly-granted commit
		// with a CANCEL.
		n.closeCommitOnComplete(uuid)
	} else if !tracked || n.redundantCopy(uuid, m.From) {
		cspan := n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: uuid, Parent: m.Span, Peer: m.From})
		n.env.Send(m.From, Message{Type: MsgCancel, From: n.id, Job: m.Job, Span: cspan})
		return
	}
	t.assignee = m.From
	if t.watchdog != nil {
		t.watchdog()
	}
	n.jlog(wal.Record{Type: wal.RecNotify, UUID: uuid, Peer: m.From})
	n.armWatchdog(t)
	n.env.Send(m.From, Message{Type: MsgNotify, From: n.id, Job: m.Job, Notify: NotifyConfirm, Span: m.Span})
}

// releaseHeld moves a fenced recovered copy into the run queue — the
// initiator confirmed it (explicitly, implicitly via a retransmitted
// ASSIGN, or by being confirmed dead, in which case no watchdog can have
// placed a replacement). A no-op when nothing is fenced for the job.
// Caller holds the lock.
func (n *Node) releaseHeld(uuid job.UUID) {
	h, ok := n.held[uuid]
	if !ok {
		return
	}
	if h.timer != nil {
		h.timer()
	}
	delete(n.held, uuid)
	n.initiators[uuid] = h.initiator
	n.queue.Enqueue(job.New(h.profile), n.env.Now())
	if n.tobs != nil {
		n.enqSpans[uuid] = h.span
	}
	n.maybeStart()
}

// dropHeld revokes a fenced recovered copy, reporting whether one was
// found. The copy was journaled as enqueued at recovery, so the revocation
// journals the matching dequeue. Caller holds the lock.
func (n *Node) dropHeld(uuid job.UUID, parent uint64, peer overlay.NodeID) bool {
	h, ok := n.held[uuid]
	if !ok {
		return false
	}
	if h.timer != nil {
		h.timer()
	}
	delete(n.held, uuid)
	n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: uuid, Parent: parent, Peer: peer})
	n.jlog(wal.Record{Type: wal.RecDequeue, UUID: uuid})
	return true
}

// armResurfacedRetry schedules the next resurfaced-query retransmission on
// the shared ack-retry cadence. Caller holds the lock.
func (n *Node) armResurfacedRetry(h *heldJob) {
	uuid := h.profile.UUID
	h.timer = n.env.Schedule(n.ackRetryDelay(h.attempts), func() { n.resurfacedRetryFire(uuid) })
}

// resurfacedRetryFire re-asks the initiator about a fenced recovered copy.
// There is no retry cap: an unreachable initiator keeps the copy fenced
// (delayed, never duplicated) until the partition heals. A confirmed-dead
// initiator releases the copy instead — its watchdog died with it, so no
// replacement can race the execution, while holding on would lose the job.
func (n *Node) resurfacedRetryFire(uuid job.UUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	h, ok := n.held[uuid]
	if !ok {
		return
	}
	if n.peerDead(h.initiator) {
		n.releaseHeld(uuid)
		return
	}
	h.attempts++
	n.env.Send(h.initiator, Message{Type: MsgNotify, From: n.id, Job: h.profile, Notify: NotifyResurfaced, Span: h.span})
	n.armResurfacedRetry(h)
}

// maybeStart begins executing the next queued job when the execution slot
// is free. When every queued job is blocked behind an advance reservation,
// it arms a wake-up for the first eligibility instant. Caller holds the
// lock.
func (n *Node) maybeStart() {
	if n.running != nil || n.queue.Len() == 0 {
		return
	}
	now := n.env.Now()
	j := n.queue.Pop(now)
	if j == nil {
		if at, ok := n.queue.NextEligibleAt(now); ok {
			n.env.Schedule(at-now, func() {
				n.mu.Lock()
				defer n.mu.Unlock()
				if n.alive {
					n.maybeStart()
				}
			})
		}
		return
	}
	initiator, ok := n.initiators[j.UUID]
	if !ok {
		initiator = n.id
	}
	delete(n.initiators, j.UUID)
	j.State = job.StateRunning
	j.StartedAt = now
	n.running = j
	n.runningInitiator = initiator
	ertp := j.ERTOn(n.profile.PerfIndex)
	n.runningEstEnd = now + ertp
	sspan := n.emitSpan(TraceEvent{Kind: SpanStart, UUID: j.UUID, Parent: n.enqSpans[j.UUID]})
	delete(n.enqSpans, j.UUID)
	n.runningSpan = sspan
	// Write-ahead: journal the start before announcing it. If the append
	// fails and the journal's owner dies loudly, no observer saw a start
	// the log cannot prove.
	n.jlog(wal.Record{Type: wal.RecStart, UUID: j.UUID, Profile: &j.Profile, Peer: initiator, Span: sspan})
	n.obs.JobStarted(now, n.id, j.UUID)
	if n.cfg.MultiAssign > 1 {
		if initiator == n.id {
			// This node is the initiator and its own copy won.
			n.cancelCopies(j.UUID, j.Profile, n.id, sspan)
		} else {
			n.env.Send(initiator, Message{
				Type: MsgNotify, From: n.id, Job: j.Profile, Notify: NotifyStarted, Span: sspan,
			})
		}
	}
	actual := n.art.ART(j.ERT, ertp, n.env.Rand())
	if j.KnownART > 0 {
		// Trace replay: the recorded runtime, scaled to this node.
		actual = time.Duration(float64(j.KnownART) / n.profile.PerfIndex)
	}
	n.runningTimer = n.env.Schedule(actual, n.completeRunning)
}

// completeRunning finishes the running job and pulls the next one.
func (n *Node) completeRunning() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive || n.running == nil {
		return
	}
	j := n.running
	now := n.env.Now()
	j.State = job.StateCompleted
	j.CompletedAt = now
	n.running = nil
	n.runningTimer = nil
	cspan := n.emitSpan(TraceEvent{Kind: SpanComplete, UUID: j.UUID, Parent: n.runningSpan})
	n.runningSpan = 0
	// Write-ahead: journal the completion before emitting the observable
	// event. A crash between the two replays the job from scratch — a rerun,
	// which exactly-one tolerates; the reverse order could emit a completion
	// the journal never learned of and then run the job again after
	// recovery — a duplicate, which it does not.
	initiator := n.runningInitiator
	n.jlog(wal.Record{Type: wal.RecComplete, UUID: j.UUID, Span: cspan})
	if n.cfg.NotifyInitiator && initiator != n.id {
		// Same discipline for the completion notify: once the event is
		// observable, a crash must still resend the NOTIFY until acked, or
		// the initiator's watchdog would rerun an already-reported job.
		n.jlog(wal.Record{Type: wal.RecNotifySent, UUID: j.UUID, Profile: &j.Profile, Peer: initiator, Span: cspan})
	}
	n.obs.JobCompleted(now, n.id, j)
	// Any ASSIGN handshake still open for this job (a resubmission that
	// self-assigned while the original ASSIGN awaits its ack) closes now.
	n.closeAssignOnComplete(j.UUID)
	if n.cfg.NotifyInitiator {
		if initiator == n.id {
			// Local initiator: clear tracking directly.
			if t, ok := n.tracked[j.UUID]; ok {
				if t.watchdog != nil {
					t.watchdog()
				}
				delete(n.tracked, j.UUID)
				n.jlog(wal.Record{Type: wal.RecTrackDone, UUID: j.UUID})
			}
		} else {
			pn := &pendingNotify{profile: j.Profile, initiator: initiator, span: cspan}
			n.notifyOut[j.UUID] = pn
			n.env.Send(initiator, Message{
				Type: MsgNotify, From: n.id, Job: j.Profile, Notify: NotifyCompleted, Span: cspan,
			})
			n.armNotifyRetry(pn)
		}
	}
	n.maybeStart()
}

// informTick advertises reschedulable jobs and re-arms itself.
func (n *Node) informTick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	now := n.env.Now()
	remaining := n.estRemaining()
	for _, cand := range n.queue.RescheduleCandidatesBy(n.cfg.InformSelection, n.cfg.InformJobs, now, remaining) {
		cost, ok := n.queue.QueuedCost(cand.UUID, now, remaining)
		if !ok {
			continue
		}
		var span uint64
		if n.tobs != nil {
			span = n.nextSpanID()
		}
		msg := Message{
			Type:   MsgInform,
			From:   n.id,
			Job:    cand.Profile,
			Cost:   cost,
			TTL:    n.cfg.InformTTL - 1,
			Fanout: n.cfg.InformFanout,
			Seq:    n.nextSeq(),
			Via:    n.id,
			Hop:    1,
			Span:   span,
			Dir:    n.selfDirPayload(),
		}
		n.markSeen(msg.floodFP())
		sent := n.forward(msg, n.cfg.InformFanout)
		n.emitSpan(TraceEvent{
			Kind: SpanFloodOrigin, UUID: cand.UUID, Span: span,
			Parent: n.enqSpans[cand.UUID], Msg: MsgInform,
			Hop: 0, TTL: n.cfg.InformTTL, Fanout: sent,
			Seq: msg.Seq, Origin: n.id, Cost: cost,
		})
	}
	n.informCancel = n.env.Schedule(n.cfg.InformInterval, n.informTick)
}

// forwardFlood relays a flood message one more hop if its TTL allows. The
// relayed copy decrements TTL, increments Hop (keeping their sum invariant
// along the wave), and carries a fresh span so downstream receipts parent
// under this relay. A forward event is emitted only when at least one copy
// actually went out — and a node reaches here at most once per wave, since
// duplicates are suppressed before forwarding. Caller holds the lock.
func (n *Node) forwardFlood(m Message) {
	if m.TTL <= 0 {
		return
	}
	next := m
	next.TTL--
	next.Hop++
	prev := m.Via
	next.Via = n.id
	if n.tobs != nil {
		next.Span = n.nextSpanID()
	}
	sent := n.forwardExcluding(next, m.Fanout, prev)
	if sent > 0 {
		n.emitSpan(TraceEvent{
			Kind: SpanForward, UUID: m.Job.UUID, Span: next.Span, Parent: m.Span,
			Msg: m.Type, Hop: m.Hop, TTL: m.TTL, Fanout: sent,
			Seq: m.Seq, Origin: m.From, Peer: m.Via,
		})
	}
}

// forward sends m to up to fanout random neighbors, returning the number of
// copies actually sent. Caller holds the lock.
func (n *Node) forward(m Message, fanout int) int {
	return n.forwardExcluding(m, fanout, n.id)
}

func (n *Node) forwardExcluding(m Message, fanout int, exclude overlay.NodeID) int {
	neighbors := n.env.Neighbors()
	if len(neighbors) == 0 || fanout <= 0 {
		return 0
	}
	candidates := neighbors[:0]
	for _, nb := range neighbors {
		if nb == exclude || nb == n.id || nb == m.From {
			continue
		}
		if n.peers != nil {
			// Never address a confirmed-dead neighbor; INFORMs (purely
			// advisory) additionally skip suspects rather than waste
			// rescheduling offers on a likely-dead assistant.
			if n.peerDead(nb) {
				continue
			}
			if m.Type == MsgInform && n.peerSuspect(nb) {
				continue
			}
		}
		candidates = append(candidates, nb)
	}
	if len(candidates) == 0 {
		return 0
	}
	rng := n.env.Rand()
	rng.Shuffle(len(candidates), func(i, k int) {
		candidates[i], candidates[k] = candidates[k], candidates[i]
	})
	if fanout > len(candidates) {
		fanout = len(candidates)
	}
	for _, to := range candidates[:fanout] {
		n.env.Send(to, m)
	}
	return fanout
}

// estRemaining is the node's belief about the running job's remaining time,
// based on the estimate (ERTp), not the hidden actual running time. Caller
// holds the lock.
func (n *Node) estRemaining() time.Duration {
	if n.running == nil {
		return 0
	}
	if rem := n.runningEstEnd - n.env.Now(); rem > 0 {
		return rem
	}
	return 0
}

// isDuplicate checks and marks flood deduplication state. Caller holds the
// lock.
func (n *Node) isDuplicate(m Message) bool {
	if n.cfg.DisableDuplicateSuppression {
		return false
	}
	fp := m.floodFP()
	n.rotateSeen(n.env.Now())
	if n.seenCur.contains(fp) || n.seenPrev.contains(fp) {
		return true
	}
	n.seenCur.insert(fp)
	return false
}

// markSeen records a flood fingerprint this node originated. Caller holds
// the lock.
func (n *Node) markSeen(fp uint64) {
	n.rotateSeen(n.env.Now())
	n.seenCur.insert(fp)
}

// rotateSeen ages the dedup generations: once per seenTTL the previous
// generation is dropped and the current one takes its place.
func (n *Node) rotateSeen(now time.Duration) {
	if now < n.seenRotateAt {
		return
	}
	if n.seenRotateAt == 0 {
		n.seenRotateAt = now + seenTTL
		return
	}
	n.seenPrev = n.seenCur
	n.seenCur = seenSet{}
	n.seenRotateAt = now + seenTTL
}

// nextSeq issues a fresh flood sequence number. Caller holds the lock.
func (n *Node) nextSeq() uint64 {
	n.seq++
	return n.seq
}

// nextSpanID issues a fresh span identifier: the node's address in the high
// 32 bits, a per-node counter in the low 32, so spans are unique across a
// run without coordination. Caller holds the lock.
func (n *Node) nextSpanID() uint64 {
	n.spanSeq++
	return uint64(uint32(n.id))<<32 | (n.spanSeq & 0xffffffff)
}

// emitSpan stamps and delivers one trace event, returning its span ID (zero
// when tracing is off). A pre-assigned ev.Span is respected so flood
// origins can put the span on the wire before the fan-out is known. Caller
// holds the lock.
func (n *Node) emitSpan(ev TraceEvent) uint64 {
	if n.tobs == nil {
		return 0
	}
	if ev.Span == 0 {
		ev.Span = n.nextSpanID()
	}
	ev.At = n.env.Now()
	ev.Node = n.id
	n.tobs.TraceSpan(ev)
	return ev.Span
}
