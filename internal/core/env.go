package core

import (
	"math/rand"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// Cancel revokes a scheduled callback; it reports whether the revocation
// took effect (false when the callback already ran or was cancelled).
type Cancel func() bool

// Env is a node's binding to the outside world — virtual or real time,
// message delivery, the overlay neighborhood, and randomness. The
// discrete-event simulator and the live transports provide different
// implementations; the protocol engine is agnostic.
//
// Implementations must deliver Send asynchronously (never calling back into
// the sending node synchronously) and may drop messages to dead nodes.
type Env interface {
	// Now is the current time, measured from deployment start.
	Now() time.Duration

	// Schedule runs fn after delay on the node's execution context.
	Schedule(delay time.Duration, fn func()) Cancel

	// Send delivers m to the given node asynchronously.
	Send(to overlay.NodeID, m Message)

	// Neighbors lists the node's current overlay neighbors.
	Neighbors() []overlay.NodeID

	// Rand is the node's random source. Under the simulator this is the
	// shared deterministic engine source.
	Rand() *rand.Rand
}

// Observer receives job lifecycle events for metrics collection. All
// callbacks run on the node's execution context and must not block or call
// back into the node. A nil Observer is replaced by NopObserver.
type Observer interface {
	// JobSubmitted fires when an initiator accepts a job submission.
	JobSubmitted(at time.Duration, initiator overlay.NodeID, p job.Profile)

	// JobAssigned fires when a node delegates a job: on first assignment
	// (rescheduled false, from = initiator) and on every reschedule
	// (rescheduled true, from = previous assignee).
	JobAssigned(at time.Duration, uuid job.UUID, from, to overlay.NodeID, cost sched.Cost, rescheduled bool)

	// JobStarted fires when the assignee begins executing the job.
	JobStarted(at time.Duration, node overlay.NodeID, uuid job.UUID)

	// JobCompleted fires when execution finishes; j carries the final
	// lifecycle timestamps.
	JobCompleted(at time.Duration, node overlay.NodeID, j *job.Job)

	// JobFailed fires when an initiator abandons a job (discovery
	// exhausted its retries, or the failsafe watchdog gave up).
	JobFailed(at time.Duration, initiator overlay.NodeID, uuid job.UUID, reason string)
}

// DeliveryObserver is an optional extension of Observer reporting delivery
// hardening events (the AssignAck handshake). Observers that do not
// implement it simply miss these events; the node detects support once at
// construction with a type assertion.
type DeliveryObserver interface {
	// AssignRetried fires when a node retransmits an ASSIGN whose
	// acknowledgement did not arrive in time; attempt counts from 1.
	AssignRetried(at time.Duration, node overlay.NodeID, uuid job.UUID, attempt int)

	// AssignRecovered fires when an assignment survived message loss:
	// the acknowledgement arrived after at least one retransmission, or
	// the fallback path re-homed the job (re-flood or local re-enqueue).
	AssignRecovered(at time.Duration, node overlay.NodeID, uuid job.UUID)
}

// NopObserver ignores every event.
type NopObserver struct{}

var _ Observer = NopObserver{}

// JobSubmitted implements Observer.
func (NopObserver) JobSubmitted(time.Duration, overlay.NodeID, job.Profile) {}

// JobAssigned implements Observer.
func (NopObserver) JobAssigned(time.Duration, job.UUID, overlay.NodeID, overlay.NodeID, sched.Cost, bool) {
}

// JobStarted implements Observer.
func (NopObserver) JobStarted(time.Duration, overlay.NodeID, job.UUID) {}

// JobCompleted implements Observer.
func (NopObserver) JobCompleted(time.Duration, overlay.NodeID, *job.Job) {}

// JobFailed implements Observer.
func (NopObserver) JobFailed(time.Duration, overlay.NodeID, job.UUID, string) {}
