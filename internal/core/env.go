package core

import (
	"math/rand"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// Cancel revokes a scheduled callback; it reports whether the revocation
// took effect (false when the callback already ran or was cancelled).
type Cancel func() bool

// Env is a node's binding to the outside world — virtual or real time,
// message delivery, the overlay neighborhood, and randomness. The
// discrete-event simulator and the live transports provide different
// implementations; the protocol engine is agnostic.
//
// Implementations must deliver Send asynchronously (never calling back into
// the sending node synchronously) and may drop messages to dead nodes.
type Env interface {
	// Now is the current time, measured from deployment start.
	Now() time.Duration

	// Schedule runs fn after delay on the node's execution context.
	Schedule(delay time.Duration, fn func()) Cancel

	// Send delivers m to the given node asynchronously.
	Send(to overlay.NodeID, m Message)

	// Neighbors lists the node's current overlay neighbors.
	Neighbors() []overlay.NodeID

	// Rand is the node's random source. Under the simulator this is the
	// shared deterministic engine source.
	Rand() *rand.Rand
}

// Observer receives job lifecycle events for metrics collection. All
// callbacks run on the node's execution context and must not block or call
// back into the node. A nil Observer is replaced by NopObserver.
type Observer interface {
	// JobSubmitted fires when an initiator accepts a job submission.
	JobSubmitted(at time.Duration, initiator overlay.NodeID, p job.Profile)

	// JobAssigned fires when a node delegates a job: on first assignment
	// (rescheduled false, from = initiator) and on every reschedule
	// (rescheduled true, from = previous assignee).
	JobAssigned(at time.Duration, uuid job.UUID, from, to overlay.NodeID, cost sched.Cost, rescheduled bool)

	// JobStarted fires when the assignee begins executing the job.
	JobStarted(at time.Duration, node overlay.NodeID, uuid job.UUID)

	// JobCompleted fires when execution finishes; j carries the final
	// lifecycle timestamps.
	JobCompleted(at time.Duration, node overlay.NodeID, j *job.Job)

	// JobFailed fires when an initiator abandons a job (discovery
	// exhausted its retries, or the failsafe watchdog gave up).
	JobFailed(at time.Duration, initiator overlay.NodeID, uuid job.UUID, reason string)
}

// MembershipEnv is an optional extension of Env giving the membership plane
// write access to the node's overlay neighborhood: pruning the link to a
// confirmed-dead neighbor and reconnecting to a neighbor-of-neighbor to
// repair degree. Environments that do not implement it still run the
// detector (suspect/dead verdicts and flood recovery work everywhere) but
// perform no topology surgery. The node detects support once at
// construction with a type assertion.
type MembershipEnv interface {
	// PruneLink removes the overlay link to a confirmed-dead peer.
	PruneLink(peer overlay.NodeID)

	// Reconnect adds an overlay link to the given peer, refusing when
	// either endpoint already has maxDegree links (0 = unbounded) or the
	// peer is unreachable. It reports whether a link was created.
	Reconnect(peer overlay.NodeID, maxDegree int) bool
}

// MembershipObserver is an optional extension of Observer reporting
// liveness-detector and overlay-repair events. Observers that do not
// implement it simply miss these events; the node detects support once at
// construction with a type assertion.
type MembershipObserver interface {
	// PeerSuspected fires when a probe of peer timed out and node moved
	// it from alive to suspect.
	PeerSuspected(at time.Duration, node, peer overlay.NodeID)

	// PeerRefuted fires when a suspected peer proved alive in time (a
	// PING or PONG arrived inside the suspect window).
	PeerRefuted(at time.Duration, node, peer overlay.NodeID)

	// PeerDead fires when the suspect window closed without refutation;
	// the verdict is terminal.
	PeerDead(at time.Duration, node, peer overlay.NodeID)

	// LinkRepaired fires when node replaced its pruned link to dead with
	// a new link to replacement.
	LinkRepaired(at time.Duration, node, dead, replacement overlay.NodeID)

	// FloodEscalated fires when a zero-offer discovery round is
	// re-flooded with an escalated TTL; attempt counts from 1.
	FloodEscalated(at time.Duration, node overlay.NodeID, uuid job.UUID, attempt, ttl int)
}

// RecoveryObserver is an optional extension of Observer reporting journal
// recovery events (the fail-recover extension). Observers that do not
// implement it simply miss these events; the node detects support once at
// construction with a type assertion.
type RecoveryObserver interface {
	// NodeRecovered fires once per Recover call, after the node rebuilt
	// its scheduler state from the journal: jobsRecovered counts the
	// distinct job-state entries restored (queued + tracked + open
	// handshakes), replayRecords the journal records folded on top of the
	// snapshot, and snapshotAge how far behind the crash instant the
	// snapshot was (the whole uptime when no snapshot existed).
	NodeRecovered(at time.Duration, node overlay.NodeID, jobsRecovered, replayRecords int, snapshotAge time.Duration)
}

// DirectoryObserver is an optional extension of Observer reporting
// gossip-fed directory activity (the directed-discovery extension).
// Observers that do not implement it simply miss these events; the node
// detects support once at construction with a type assertion.
type DirectoryObserver interface {
	// DirectoryHit fires when a discovery round goes directed: probes is
	// the number of TTL-0 targeted REQUESTs sent (each one message on the
	// wire, versus a flood's fan-out cascade).
	DirectoryHit(at time.Duration, node overlay.NodeID, uuid job.UUID, probes int)

	// DirectoryMiss fires when the directory held no satisfying candidate
	// and discovery fell straight through to the classic flood.
	DirectoryMiss(at time.Duration, node overlay.NodeID, uuid job.UUID)

	// DirectoryFallback fires when a directed round starved (offers remote
	// ACCEPTs arrived, below MinDirectedOffers) and the flood fallback ran.
	DirectoryFallback(at time.Duration, node overlay.NodeID, uuid job.UUID, offers int)

	// DirectoryEvicted fires when a cached digest for subject is dropped;
	// reason is one of the directory.Evict* constants (capacity, stale,
	// suspect, dead, unreachable).
	DirectoryEvicted(at time.Duration, node, subject overlay.NodeID, reason string)
}

// OverloadObserver is an optional extension of Observer reporting load
// shedding and admission-control events (the overload-control extension).
// Observers that do not implement it simply miss these events; the node
// detects support once at construction with a type assertion.
type OverloadObserver interface {
	// RequestShed fires when a saturated provider declines to offer on a
	// REQUEST it could otherwise satisfy; depth is its queued+running
	// count at that moment.
	RequestShed(at time.Duration, node overlay.NodeID, uuid job.UUID, depth int)

	// AssignShed fires when a saturated provider refuses an incoming
	// ASSIGN with a BUSY reply; depth is its queued+running count.
	AssignShed(at time.Duration, node overlay.NodeID, uuid job.UUID, depth int)

	// ShedRedispatched fires when the sender of a shed ASSIGN re-homes
	// the job: reflooded true for an initiator re-flooding a fresh
	// REQUEST, false for an assignee re-enqueueing locally.
	ShedRedispatched(at time.Duration, node overlay.NodeID, uuid job.UUID, reflooded bool)

	// PeerBusy fires when a node learns a peer is saturated from any BUSY
	// reply (advisory or shed) and demotes it in its directory.
	PeerBusy(at time.Duration, node, peer overlay.NodeID)

	// SubmitRejected fires when admission control bounces a local Submit
	// (MaxPendingSubmits exceeded); pending is the in-flight discovery
	// count at that moment.
	SubmitRejected(at time.Duration, node overlay.NodeID, uuid job.UUID, pending int)
}

// SharedStateObserver is an optional extension of Observer reporting
// optimistic-commit activity (the shared-state scheduler arm). Observers
// that do not implement it simply miss these events; the node detects
// support once at construction with a type assertion.
type SharedStateObserver interface {
	// CommitSent fires when an initiator commits a job optimistically
	// against its cached view; attempt counts from 1.
	CommitSent(at time.Duration, node overlay.NodeID, uuid job.UUID, target overlay.NodeID, attempt int)

	// CommitConflict fires when a commit attempt failed: reason is a
	// ConflictKind string (busy, stale, lost) for a provider's typed
	// rejection, or "timeout" when the provider never answered.
	CommitConflict(at time.Duration, node overlay.NodeID, uuid job.UUID, target overlay.NodeID, reason string, attempt int)

	// CommitGranted fires when the provider accepted the commit; attempts
	// is the total commits this round took (1 = first try).
	CommitGranted(at time.Duration, node overlay.NodeID, uuid job.UUID, target overlay.NodeID, attempts int)

	// CommitFallback fires when K failed commits exhausted the cached view
	// and the initiator escalated to the classic REQUEST flood.
	CommitFallback(at time.Duration, node overlay.NodeID, uuid job.UUID, attempts int)
}

// DeliveryObserver is an optional extension of Observer reporting delivery
// hardening events (the AssignAck handshake). Observers that do not
// implement it simply miss these events; the node detects support once at
// construction with a type assertion.
type DeliveryObserver interface {
	// AssignRetried fires when a node retransmits an ASSIGN whose
	// acknowledgement did not arrive in time; attempt counts from 1.
	AssignRetried(at time.Duration, node overlay.NodeID, uuid job.UUID, attempt int)

	// AssignRecovered fires when an assignment survived message loss:
	// the acknowledgement arrived after at least one retransmission, or
	// the fallback path re-homed the job (re-flood or local re-enqueue).
	AssignRecovered(at time.Duration, node overlay.NodeID, uuid job.UUID)
}

// NopObserver ignores every event.
type NopObserver struct{}

var _ Observer = NopObserver{}

// JobSubmitted implements Observer.
func (NopObserver) JobSubmitted(time.Duration, overlay.NodeID, job.Profile) {}

// JobAssigned implements Observer.
func (NopObserver) JobAssigned(time.Duration, job.UUID, overlay.NodeID, overlay.NodeID, sched.Cost, bool) {
}

// JobStarted implements Observer.
func (NopObserver) JobStarted(time.Duration, overlay.NodeID, job.UUID) {}

// JobCompleted implements Observer.
func (NopObserver) JobCompleted(time.Duration, overlay.NodeID, *job.Job) {}

// JobFailed implements Observer.
func (NopObserver) JobFailed(time.Duration, overlay.NodeID, job.UUID, string) {}
