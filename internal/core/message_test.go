package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

func testProfile(rng *rand.Rand) job.Profile {
	return job.Profile{
		UUID: job.NewUUID(rng),
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   2 * time.Hour,
		Class: job.ClassBatch,
	}
}

func TestMsgTypeStrings(t *testing.T) {
	tests := []struct {
		give MsgType
		want string
	}{
		{MsgRequest, "REQUEST"},
		{MsgAccept, "ACCEPT"},
		{MsgInform, "INFORM"},
		{MsgAssign, "ASSIGN"},
		{MsgNotify, "NOTIFY"},
		{MsgCancel, "CANCEL"},
		{MsgAssignAck, "ASSIGN_ACK"},
		{MsgPing, "PING"},
		{MsgPong, "PONG"},
		{MsgBusy, "BUSY"},
		{MsgCommit, "COMMIT"},
		{MsgConflict, "CONFLICT"},
		{MsgType(42), "MsgType(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if MsgType(0).Valid() || MsgType(13).Valid() {
		t.Fatal("Valid() accepted out-of-range type")
	}
}

func TestWireSizesMatchPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := testProfile(rng)
	tests := []struct {
		typ  MsgType
		want int
	}{
		{MsgRequest, 1024},
		{MsgInform, 1024},
		{MsgAssign, 1024},
		{MsgAccept, 128},
		{MsgNotify, 128},
		{MsgCancel, 128},
		{MsgAssignAck, 128},
	}
	for _, tt := range tests {
		m := Message{Type: tt.typ, Job: p}
		if got := m.WireSize(); got != tt.want {
			t.Errorf("%v WireSize() = %d, want %d", tt.typ, got, tt.want)
		}
	}
}

func TestMessageValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := testProfile(rng)
	valid := Message{Type: MsgRequest, From: 1, Job: p, TTL: 8, Fanout: 4}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	for _, re := range []MsgType{MsgRequest, MsgAssign} {
		busy := Message{Type: MsgBusy, From: 1, Job: p, Re: re}
		if err := busy.Validate(); err != nil {
			t.Fatalf("valid BUSY (re=%v) rejected: %v", re, err)
		}
	}
	tests := []struct {
		name string
		give Message
	}{
		{"bad type", Message{Type: 0, Job: p}},
		{"bad job", Message{Type: MsgAssign, Job: job.Profile{}}},
		{"flood without fanout", Message{Type: MsgInform, Job: p, TTL: 3, Fanout: 0}},
		{"negative ttl", Message{Type: MsgRequest, Job: p, TTL: -1, Fanout: 2}},
		{"notify without kind", Message{Type: MsgNotify, Job: p}},
		{"busy without re", Message{Type: MsgBusy, Job: p}},
		{"busy re non-sheddable type", Message{Type: MsgBusy, Job: p, Re: MsgInform}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", tt.give)
			}
		})
	}
}

func TestMessageJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Message{
		Type: MsgInform, From: 7, Job: testProfile(rng),
		Cost: 123.5, TTL: 8, Fanout: 2, Seq: 9, Via: 3,
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Message
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Fatalf("round trip\n give %+v\n got  %+v", m, back)
	}
}

func TestFloodKeyDistinguishesWaves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := testProfile(rng)
	a := Message{Type: MsgInform, From: 1, Job: p, Seq: 1}
	b := Message{Type: MsgInform, From: 1, Job: p, Seq: 2}
	c := Message{Type: MsgRequest, From: 1, Job: p, Seq: 1}
	if a.floodKey() == b.floodKey() {
		t.Fatal("different sequences share flood key")
	}
	if a.floodKey() == c.floodKey() {
		t.Fatal("different types share flood key")
	}
	if a.floodKey() != (Message{Type: MsgInform, From: 1, Job: p, Seq: 1, Via: 9}).floodKey() {
		t.Fatal("Via should not affect flood key")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero request ttl", func(c *Config) { c.RequestTTL = 0 }},
		{"zero request fanout", func(c *Config) { c.RequestFanout = 0 }},
		{"zero inform ttl", func(c *Config) { c.InformTTL = 0 }},
		{"zero inform fanout", func(c *Config) { c.InformFanout = 0 }},
		{"negative inform jobs", func(c *Config) { c.InformJobs = -1 }},
		{"rescheduling without interval", func(c *Config) { c.InformInterval = 0 }},
		{"negative threshold", func(c *Config) { c.RescheduleThreshold = -time.Second }},
		{"zero accept timeout", func(c *Config) { c.AcceptTimeout = 0 }},
		{"negative retries", func(c *Config) { c.MaxRequestRetries = -1 }},
		{"retries without backoff", func(c *Config) { c.RetryBackoff = 0 }},
		{"notify with bad grace", func(c *Config) { c.NotifyInitiator = true; c.WatchdogGrace = 1 }},
		{"ack without timeout", func(c *Config) { c.AssignAck = true; c.AssignAckTimeout = 0 }},
		{"ack without retries", func(c *Config) { c.AssignAck = true; c.AssignMaxRetries = 0 }},
		{"ack with multi-assign", func(c *Config) {
			c.AssignAck = true
			c.InformJobs = 0
			c.MultiAssign = 3
		}},
		{"negative queue bound", func(c *Config) { c.MaxQueuedJobs = -1 }},
		{"negative pending bound", func(c *Config) { c.MaxPendingSubmits = -1 }},
		{"negative backoff cap", func(c *Config) { c.RetryBackoffCap = -time.Second }},
		{"backoff cap below base", func(c *Config) { c.RetryBackoffCap = c.RetryBackoff / 2 }},
		{"shedding with multi-assign", func(c *Config) {
			c.InformJobs = 0
			c.MultiAssign = 3
			c.MaxQueuedJobs = 4
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", cfg)
			}
		})
	}
}

func TestConfigRescheduling(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.Rescheduling() {
		t.Fatal("default config should have rescheduling on")
	}
	cfg.InformJobs = 0
	if cfg.Rescheduling() {
		t.Fatal("InformJobs=0 should disable rescheduling")
	}
}
