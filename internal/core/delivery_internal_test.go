package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
)

// lossyNet is a white-box two-plus-node cluster on the simulation engine
// with a programmable message filter, for testing delivery hardening.
type lossyNet struct {
	engine *sim.Engine
	nodes  map[overlay.NodeID]*Node
	links  map[overlay.NodeID][]overlay.NodeID

	// drop, when non-nil, decides whether a transmission is lost.
	drop func(from, to overlay.NodeID, m Message) bool
	// sent logs every attempted transmission (dropped ones included).
	sent []sentMsg
}

type sentMsg struct {
	from, to overlay.NodeID
	msg      Message
}

func newLossyNet(seed int64) *lossyNet {
	return &lossyNet{
		engine: sim.NewEngine(seed),
		nodes:  make(map[overlay.NodeID]*Node),
		links:  make(map[overlay.NodeID][]overlay.NodeID),
	}
}

func (ln *lossyNet) addNode(t *testing.T, id overlay.NodeID, profile resource.Profile, cfg Config, obs Observer) *Node {
	t.Helper()
	n, err := NewNode(id, profile, sched.FCFS, &lossyEnv{net: ln, id: id}, cfg, obs, job.ARTModel{Mode: job.DriftNone})
	if err != nil {
		t.Fatal(err)
	}
	ln.nodes[id] = n
	n.Start()
	return n
}

func (ln *lossyNet) connect(a, b overlay.NodeID) {
	ln.links[a] = append(ln.links[a], b)
	ln.links[b] = append(ln.links[b], a)
}

// requestsFrom counts REQUEST transmissions originated by the given node.
func (ln *lossyNet) requestsFrom(id overlay.NodeID) int {
	count := 0
	for _, s := range ln.sent {
		if s.from == id && s.msg.Type == MsgRequest && s.msg.From == id {
			count++
		}
	}
	return count
}

// countType counts transmissions of one message type.
func (ln *lossyNet) countType(typ MsgType) int {
	count := 0
	for _, s := range ln.sent {
		if s.msg.Type == typ {
			count++
		}
	}
	return count
}

type lossyEnv struct {
	net *lossyNet
	id  overlay.NodeID
}

var _ Env = (*lossyEnv)(nil)

func (e *lossyEnv) Now() time.Duration { return e.net.engine.Now() }

func (e *lossyEnv) Schedule(delay time.Duration, fn func()) Cancel {
	return e.net.engine.Schedule(delay, fn).Cancel
}

func (e *lossyEnv) Send(to overlay.NodeID, m Message) {
	e.net.sent = append(e.net.sent, sentMsg{from: e.id, to: to, msg: m})
	if e.net.drop != nil && e.net.drop(e.id, to, m) {
		return
	}
	e.net.engine.Schedule(10*time.Millisecond, func() {
		if dest, ok := e.net.nodes[to]; ok {
			dest.HandleMessage(m)
		}
	})
}

func (e *lossyEnv) Neighbors() []overlay.NodeID { return e.net.links[e.id] }

func (e *lossyEnv) Rand() *rand.Rand { return e.net.engine.Rand() }

// deliveryCounter records lifecycle and delivery-hardening events.
type deliveryCounter struct {
	NopObserver

	starts    map[job.UUID]int
	completed map[job.UUID]int
	failed    int
	retried   int
	recovered int
}

var (
	_ Observer         = (*deliveryCounter)(nil)
	_ DeliveryObserver = (*deliveryCounter)(nil)
)

func newDeliveryCounter() *deliveryCounter {
	return &deliveryCounter{
		starts:    make(map[job.UUID]int),
		completed: make(map[job.UUID]int),
	}
}

func (c *deliveryCounter) JobStarted(_ time.Duration, _ overlay.NodeID, uuid job.UUID) {
	c.starts[uuid]++
}

func (c *deliveryCounter) JobCompleted(_ time.Duration, _ overlay.NodeID, j *job.Job) {
	c.completed[j.UUID]++
}

func (c *deliveryCounter) JobFailed(time.Duration, overlay.NodeID, job.UUID, string) {
	c.failed++
}

func (c *deliveryCounter) AssignRetried(time.Duration, overlay.NodeID, job.UUID, int) {
	c.retried++
}

func (c *deliveryCounter) AssignRecovered(time.Duration, overlay.NodeID, job.UUID) {
	c.recovered++
}

// ackConfig is the handshake-enabled protocol config used by these tests.
func ackConfig() Config {
	cfg := DefaultConfig()
	cfg.InformJobs = 0
	cfg.AssignAck = true
	return cfg
}

func smallProfile() resource.Profile {
	return resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1,
	}
}

func bigProfile() resource.Profile {
	return resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 32, DiskGB: 32, PerfIndex: 1,
	}
}

// bigJob can only run on bigProfile nodes.
func bigJob(uuid job.UUID) job.Profile {
	return job.Profile{
		UUID: uuid,
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 16, MinDiskGB: 1,
		},
		ERT:   time.Hour,
		Class: job.ClassBatch,
	}
}

const testUUID = job.UUID("0123456789abcdef0123456789abcdef")

func TestAssignAckRetransmitsLostAssign(t *testing.T) {
	net := newLossyNet(1)
	counter := newDeliveryCounter()
	initiator := net.addNode(t, 1, smallProfile(), ackConfig(), counter)
	net.addNode(t, 2, bigProfile(), ackConfig(), counter)
	net.connect(1, 2)

	// Lose exactly the first ASSIGN; the retransmission gets through.
	dropped := 0
	net.drop = func(_, _ overlay.NodeID, m Message) bool {
		if m.Type == MsgAssign && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	if err := initiator.Submit(bigJob(testUUID)); err != nil {
		t.Fatal(err)
	}
	net.engine.Run(12 * time.Hour)

	if counter.completed[testUUID] != 1 {
		t.Fatalf("completions = %d, want 1", counter.completed[testUUID])
	}
	if counter.starts[testUUID] != 1 {
		t.Fatalf("starts = %d, want exactly 1 (no duplicate execution)", counter.starts[testUUID])
	}
	if counter.retried != 1 {
		t.Fatalf("retransmissions = %d, want 1", counter.retried)
	}
	if counter.recovered != 1 {
		t.Fatalf("recoveries = %d, want 1", counter.recovered)
	}
	if counter.failed != 0 {
		t.Fatalf("job failed under a single recoverable loss")
	}
}

func TestAssignAckLostAckDoesNotDuplicateExecution(t *testing.T) {
	net := newLossyNet(2)
	counter := newDeliveryCounter()
	initiator := net.addNode(t, 1, smallProfile(), ackConfig(), counter)
	net.addNode(t, 2, bigProfile(), ackConfig(), counter)
	net.connect(1, 2)

	// Lose the first acknowledgement: the assignee keeps the job, the
	// sender retransmits, the duplicate ASSIGN is absorbed and re-acked.
	dropped := 0
	net.drop = func(_, _ overlay.NodeID, m Message) bool {
		if m.Type == MsgAssignAck && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	if err := initiator.Submit(bigJob(testUUID)); err != nil {
		t.Fatal(err)
	}
	net.engine.Run(12 * time.Hour)

	if counter.completed[testUUID] != 1 || counter.starts[testUUID] != 1 {
		t.Fatalf("starts/completions = %d/%d, want 1/1",
			counter.starts[testUUID], counter.completed[testUUID])
	}
	if net.countType(MsgAssign) < 2 {
		t.Fatalf("ASSIGN transmissions = %d, want a retransmission", net.countType(MsgAssign))
	}
	if counter.recovered != 1 {
		t.Fatalf("recoveries = %d, want 1", counter.recovered)
	}
}

func TestAssignAckExhaustedRetriesRefloods(t *testing.T) {
	net := newLossyNet(3)
	counter := newDeliveryCounter()
	cfg := ackConfig()
	cfg.AssignMaxRetries = 2
	initiator := net.addNode(t, 1, smallProfile(), cfg, counter)
	net.addNode(t, 2, bigProfile(), cfg, counter)
	net.connect(1, 2)

	// A black hole swallows every ASSIGN of the first discovery round;
	// after the retries run dry, the fallback re-flood finds the worker
	// over a now-healthy network.
	assigns := 0
	net.drop = func(_, _ overlay.NodeID, m Message) bool {
		if m.Type == MsgAssign && assigns <= cfg.AssignMaxRetries {
			assigns++
			return true
		}
		return false
	}
	if err := initiator.Submit(bigJob(testUUID)); err != nil {
		t.Fatal(err)
	}
	net.engine.Run(24 * time.Hour)

	if counter.completed[testUUID] != 1 {
		t.Fatalf("completions = %d, want 1 via the re-flood fallback", counter.completed[testUUID])
	}
	if got := net.requestsFrom(1); got < 2 {
		t.Fatalf("REQUEST floods = %d, want a second (fallback) round", got)
	}
	if counter.retried != cfg.AssignMaxRetries {
		t.Fatalf("retransmissions = %d, want %d", counter.retried, cfg.AssignMaxRetries)
	}
}

func TestRescheduleHandoffLossSafe(t *testing.T) {
	net := newLossyNet(4)
	counter := newDeliveryCounter()
	cfg := ackConfig()
	cfg.AssignMaxRetries = 2
	cfg.RescheduleThreshold = time.Second
	assignee := net.addNode(t, 1, bigProfile(), cfg, counter)
	net.connect(1, 2) // node 2 does not exist: a perfect black hole

	// Stage a busy assignee with one queued job.
	running := bigJob("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	queued := bigJob(testUUID)
	assignee.HandleMessage(Message{Type: MsgAssign, From: 1, Job: running, Via: 1})
	net.engine.Run(20 * time.Millisecond)
	assignee.HandleMessage(Message{Type: MsgAssign, From: 1, Job: queued, Via: 1})
	net.engine.Run(40 * time.Millisecond)
	if !assignee.Busy() || assignee.QueueLen() != 1 {
		t.Fatalf("staging failed: busy=%v queue=%d", assignee.Busy(), assignee.QueueLen())
	}

	// A (phantom) cheaper node claims the queued job; the ASSIGN handoff
	// can never be acknowledged.
	assignee.HandleMessage(Message{Type: MsgAccept, From: 2, Job: queued, Cost: 0})
	net.engine.Run(60 * time.Millisecond)
	if assignee.QueueLen() != 0 {
		t.Fatal("job not handed off")
	}

	// After the retries exhaust, the job must come home.
	net.engine.Run(48 * time.Hour)
	if counter.completed[testUUID] != 1 {
		t.Fatalf("handed-off job never completed: completions=%d", counter.completed[testUUID])
	}
	if counter.recovered == 0 {
		t.Fatal("no recovery recorded for the restored handoff")
	}
	if counter.failed != 0 {
		t.Fatal("job reported failed despite loss-safe handoff")
	}
}

func TestAssignAckDisabledSendsNoAcks(t *testing.T) {
	net := newLossyNet(5)
	counter := newDeliveryCounter()
	cfg := DefaultConfig()
	cfg.InformJobs = 0
	initiator := net.addNode(t, 1, smallProfile(), cfg, counter)
	net.addNode(t, 2, bigProfile(), cfg, counter)
	net.connect(1, 2)

	if err := initiator.Submit(bigJob(testUUID)); err != nil {
		t.Fatal(err)
	}
	net.engine.Run(12 * time.Hour)
	if counter.completed[testUUID] != 1 {
		t.Fatalf("completions = %d, want 1", counter.completed[testUUID])
	}
	if got := net.countType(MsgAssignAck); got != 0 {
		t.Fatalf("ASSIGN_ACK transmissions = %d with the handshake off", got)
	}
}
