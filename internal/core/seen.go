package core

// seenSet is the flood-dedup generation store: an open-addressed,
// power-of-two hash set of 64-bit flood fingerprints with linear probing,
// grown at 50% load so probe chains stay short.
// Compared to map[floodKey]struct{} it probes 8-byte slots instead of
// 40-byte entries and skips string hashing on every lookup, which matters
// because every flooded message does one dedup check — the single hottest
// map in whole-run profiles at 10k nodes.
//
// Keys are fingerprints, not full keys: two distinct flood waves colliding
// on 64 bits would wrongly suppress one delivery at one node. With per-node
// sets of at most ~10^5 live entries the expected number of collisions over
// an entire run is far below one, and a suppressed wave is re-floodable by
// the retry path (retries bump Seq, changing the fingerprint).
//
// The zero value is an empty set; the zero fingerprint is reserved as the
// empty-slot sentinel (floodFP never returns it).
type seenSet struct {
	slots []uint64
	used  int
}

func (s *seenSet) contains(fp uint64) bool {
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	i := fp & mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == fp {
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *seenSet) insert(fp uint64) {
	if len(s.slots) == 0 {
		s.slots = make([]uint64, 64)
	}
	if s.place(fp) && s.used*2 >= len(s.slots) {
		old := s.slots
		s.slots = make([]uint64, len(old)*2)
		s.used = 0
		for _, v := range old {
			if v != 0 {
				s.place(v)
			}
		}
	}
}

// place inserts fp without growing, reporting whether it was absent.
func (s *seenSet) place(fp uint64) bool {
	mask := uint64(len(s.slots) - 1)
	i := fp & mask
	for {
		v := s.slots[i]
		if v == fp {
			return false
		}
		if v == 0 {
			s.slots[i] = fp
			s.used++
			return true
		}
		i = (i + 1) & mask
	}
}

// mixFP is the SplitMix64 finalizer: a cheap, deterministic bijective
// mixer for fingerprint construction.
func mixFP(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
