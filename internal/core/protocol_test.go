package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/transport"
)

// recorder captures job lifecycle events for assertions.
type recorder struct {
	mu          sync.Mutex
	submitted   map[job.UUID]time.Duration
	assigned    map[job.UUID][]overlay.NodeID
	reschedules int
	started     map[job.UUID]overlay.NodeID
	completed   map[job.UUID]*job.Job
	completedOn map[job.UUID]overlay.NodeID
	failed      map[job.UUID]string
}

var _ core.Observer = (*recorder)(nil)

func newRecorder() *recorder {
	return &recorder{
		submitted:   make(map[job.UUID]time.Duration),
		assigned:    make(map[job.UUID][]overlay.NodeID),
		started:     make(map[job.UUID]overlay.NodeID),
		completed:   make(map[job.UUID]*job.Job),
		completedOn: make(map[job.UUID]overlay.NodeID),
		failed:      make(map[job.UUID]string),
	}
}

func (r *recorder) JobSubmitted(at time.Duration, _ overlay.NodeID, p job.Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submitted[p.UUID] = at
}

func (r *recorder) JobAssigned(_ time.Duration, uuid job.UUID, _, to overlay.NodeID, _ sched.Cost, resched bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assigned[uuid] = append(r.assigned[uuid], to)
	if resched {
		r.reschedules++
	}
}

func (r *recorder) JobStarted(_ time.Duration, node overlay.NodeID, uuid job.UUID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started[uuid] = node
}

func (r *recorder) JobCompleted(_ time.Duration, node overlay.NodeID, j *job.Job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.completed[j.UUID] = j
	r.completedOn[j.UUID] = node
}

func (r *recorder) JobFailed(_ time.Duration, _ overlay.NodeID, uuid job.UUID, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failed[uuid] = reason
}

// fixture assembles a fully connected cluster of nodes with chosen profiles.
type fixture struct {
	engine  *sim.Engine
	cluster *transport.SimCluster
	rec     *recorder
	rng     *rand.Rand
}

type nodeSpec struct {
	profile resource.Profile
	policy  sched.Policy
}

func amd64Node(perf float64) resource.Profile {
	return resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 16, DiskGB: 16, PerfIndex: perf,
	}
}

func powerNode(perf float64) resource.Profile {
	return resource.Profile{
		Arch: resource.ArchPOWER, OS: resource.OSLinux,
		MemoryGB: 16, DiskGB: 16, PerfIndex: perf,
	}
}

func amd64Job(rng *rand.Rand, ert time.Duration) job.Profile {
	return job.Profile{
		UUID: job.NewUUID(rng),
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   ert,
		Class: job.ClassBatch,
	}
}

func newFixture(t *testing.T, cfg core.Config, specs []nodeSpec) *fixture {
	t.Helper()
	engine := sim.NewEngine(7)
	graph := overlay.NewGraph()
	for i := range specs {
		graph.AddNode(overlay.NodeID(i))
	}
	// Fully connected: floods reach everyone within one hop.
	for i := 0; i < len(specs); i++ {
		for k := i + 1; k < len(specs); k++ {
			graph.AddLink(overlay.NodeID(i), overlay.NodeID(k))
		}
	}
	cluster := transport.NewSimCluster(engine, graph, overlay.FixedLatency(10*time.Millisecond))
	rec := newRecorder()
	for i, spec := range specs {
		art := job.ARTModel{Mode: job.DriftNone}
		if _, err := cluster.AddNode(overlay.NodeID(i), spec.profile, spec.policy, cfg, rec, art); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	cluster.StartAll()
	return &fixture{engine: engine, cluster: cluster, rec: rec, rng: rand.New(rand.NewSource(42))}
}

func (f *fixture) node(t *testing.T, id overlay.NodeID) *core.Node {
	t.Helper()
	n, ok := f.cluster.Node(id)
	if !ok {
		t.Fatalf("node %v missing", id)
	}
	return n
}

func noRescheduling(cfg core.Config) core.Config {
	cfg.InformJobs = 0
	return cfg
}

func TestSubmitAssignsAndCompletes(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{amd64Node(1.5), sched.FCFS},
		{amd64Node(1.2), sched.FCFS},
	})
	p := amd64Job(f.rng, 2*time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(6 * time.Hour)
	j, ok := f.rec.completed[p.UUID]
	if !ok {
		t.Fatalf("job never completed; failed=%v", f.rec.failed)
	}
	if j.State != job.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// Fastest node (perf 1.5, id 1) has the lowest ETTC on empty queues.
	if got := f.rec.completedOn[p.UUID]; got != 1 {
		t.Fatalf("job ran on %v, want fastest node 1", got)
	}
	// Execution took ERT/1.5 = 80 minutes exactly (DriftNone).
	if j.ExecutionTime() != 80*time.Minute {
		t.Fatalf("execution time %v, want 80m", j.ExecutionTime())
	}
}

func TestSubmitRejectsInvalidProfile(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{{amd64Node(1.0), sched.FCFS}})
	if err := f.node(t, 0).Submit(job.Profile{}); err == nil {
		t.Fatal("Submit accepted invalid profile")
	}
}

func TestSubmitDuplicatePending(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{{amd64Node(1.0), sched.FCFS}, {amd64Node(1.0), sched.FCFS}})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	if err := f.node(t, 0).Submit(p); err == nil {
		t.Fatal("duplicate pending submission accepted")
	}
}

func TestOnlyMatchingNodesHost(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.9), sched.FCFS}, // fast but wrong arch
		{powerNode(1.9), sched.FCFS},
		{amd64Node(1.0), sched.FCFS}, // slow but the only match
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(6 * time.Hour)
	if got := f.rec.completedOn[p.UUID]; got != 2 {
		t.Fatalf("job ran on %v, want the only matching node 2", got)
	}
}

func TestNoCandidateRetriesThenFails(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.MaxRequestRetries = 2
	cfg.RetryBackoff = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	p := amd64Job(f.rng, time.Hour) // nobody matches
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(time.Hour)
	if _, ok := f.rec.completed[p.UUID]; ok {
		t.Fatal("unmatchable job completed")
	}
	if reason, ok := f.rec.failed[p.UUID]; !ok || reason != "no candidate found" {
		t.Fatalf("failed=%v, want no-candidate failure", f.rec.failed)
	}
}

func TestLoadSpreadsAcrossNodes(t *testing.T) {
	// Ten identical jobs over three identical nodes: ETTC assignment must
	// spread them (queue growth raises a node's offers).
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
	})
	hosts := make(map[overlay.NodeID]int)
	for i := 0; i < 9; i++ {
		p := amd64Job(f.rng, time.Hour)
		if err := f.node(t, 0).Submit(p); err != nil {
			t.Fatal(err)
		}
		// Space submissions so each decision sees updated queues.
		f.engine.Run(f.engine.Now() + 10*time.Second)
	}
	f.engine.Run(24 * time.Hour)
	if len(f.rec.completed) != 9 {
		t.Fatalf("completed %d jobs, want 9", len(f.rec.completed))
	}
	for _, node := range f.rec.completedOn {
		hosts[node]++
	}
	for id, count := range hosts {
		if count != 3 {
			t.Fatalf("node %v hosted %d jobs, want 3 each (hosts=%v)", id, count, hosts)
		}
	}
}

func TestReschedulingMovesJobToNewNode(t *testing.T) {
	// One overloaded node; a fresh node joins later and INFORM floods
	// must migrate queued jobs to it.
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	cfg.RescheduleThreshold = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS}, // non-matching bystander keeps floods alive
	})
	// Five 2h jobs, all forced onto node 0 (only match).
	uuids := make([]job.UUID, 5)
	for i := range uuids {
		p := amd64Job(f.rng, 2*time.Hour)
		uuids[i] = p.UUID
		if err := f.node(t, 0).Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	f.engine.Run(time.Minute)
	// A new matching node joins the overlay at t=1m.
	g := f.cluster.Graph()
	newID := overlay.NodeID(2)
	g.AddNode(newID)
	g.AddLink(newID, 0)
	g.AddLink(newID, 1)
	n, err := f.cluster.AddNode(newID, amd64Node(1.0), sched.FCFS, cfg, f.rec, job.ARTModel{Mode: job.DriftNone})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	f.engine.Run(24 * time.Hour)
	if f.rec.reschedules == 0 {
		t.Fatal("no rescheduling happened despite a new idle node")
	}
	completedOnNew := 0
	for _, uuid := range uuids {
		if _, ok := f.rec.completed[uuid]; !ok {
			t.Fatalf("job %s never completed", uuid.Short())
		}
		if f.rec.completedOn[uuid] == newID {
			completedOnNew++
		}
	}
	if completedOnNew == 0 {
		t.Fatal("new node executed nothing after rescheduling")
	}
}

func TestHighThresholdBlocksRescheduling(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	cfg.RescheduleThreshold = 100 * time.Hour // nothing can beat this
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	for i := 0; i < 5; i++ {
		if err := f.node(t, 0).Submit(amd64Job(f.rng, 2*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	f.engine.Run(time.Minute)
	g := f.cluster.Graph()
	g.AddNode(2)
	g.AddLink(2, 0)
	g.AddLink(2, 1)
	n, err := f.cluster.AddNode(2, amd64Node(1.9), sched.FCFS, cfg, f.rec, job.ARTModel{Mode: job.DriftNone})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	f.engine.Run(24 * time.Hour)
	if f.rec.reschedules != 0 {
		t.Fatalf("reschedules = %d, want 0 under an unbeatable threshold", f.rec.reschedules)
	}
}

func TestDeadlineSchedulingEndToEnd(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.EDF},
		{amd64Node(1.0), sched.EDF},
	})
	mk := func(ert, deadline time.Duration) job.Profile {
		p := amd64Job(f.rng, ert)
		p.Class = job.ClassDeadline
		p.Deadline = deadline
		return p
	}
	tight := mk(time.Hour, 2*time.Hour+5*time.Minute)
	loose := mk(time.Hour, 20*time.Hour)
	if err := f.node(t, 0).Submit(loose); err != nil {
		t.Fatal(err)
	}
	if err := f.node(t, 0).Submit(tight); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(24 * time.Hour)
	for _, p := range []job.Profile{tight, loose} {
		j, ok := f.rec.completed[p.UUID]
		if !ok {
			t.Fatalf("deadline job %s never completed", p.UUID.Short())
		}
		if j.MissedDeadline() {
			t.Fatalf("job %s missed its deadline (completed %v, deadline %v)",
				p.UUID.Short(), j.CompletedAt, j.Deadline)
		}
	}
}

func TestBatchJobNeverLandsOnDeadlineNode(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.MaxRequestRetries = 1
	cfg.RetryBackoff = time.Second
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.9), sched.EDF}, // matching resources, wrong class
		{amd64Node(1.0), sched.FCFS},
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(6 * time.Hour)
	if got := f.rec.completedOn[p.UUID]; got != 1 {
		t.Fatalf("batch job ran on %v, want batch node 1", got)
	}
}

func TestKillStopsExecution(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	p := amd64Job(f.rng, 2*time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(30 * time.Minute) // job is running on node 0
	n := f.node(t, 0)
	if !n.Busy() {
		t.Fatal("node 0 should be executing")
	}
	n.Kill()
	if n.Alive() {
		t.Fatal("killed node reports alive")
	}
	f.engine.Run(24 * time.Hour)
	if _, ok := f.rec.completed[p.UUID]; ok {
		t.Fatal("job completed on a killed node")
	}
}

func TestFailsafeResubmitsAfterAssigneeCrash(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.NotifyInitiator = true
	cfg.WatchdogGrace = 2
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS}, // initiator, never matches
		{amd64Node(1.5), sched.FCFS}, // first assignee (fastest)
		{amd64Node(1.0), sched.FCFS}, // backup
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(10 * time.Minute)
	if got := f.rec.started[p.UUID]; got != 1 {
		t.Fatalf("job started on %v, want fastest node 1", got)
	}
	f.node(t, 1).Kill()
	f.engine.Run(48 * time.Hour)
	j, ok := f.rec.completed[p.UUID]
	if !ok {
		t.Fatalf("failsafe never recovered the job; failed=%v", f.rec.failed)
	}
	if got := f.rec.completedOn[p.UUID]; got != 2 {
		t.Fatalf("recovered job ran on %v, want backup node 2", got)
	}
	if j.State != job.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
}

func TestIdleBusyAccounting(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	if f.cluster.IdleCount() != 2 {
		t.Fatalf("IdleCount = %d at start, want 2", f.cluster.IdleCount())
	}
	if err := f.node(t, 0).Submit(amd64Job(f.rng, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := f.node(t, 0).Submit(amd64Job(f.rng, time.Hour)); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(10 * time.Minute)
	n := f.node(t, 0)
	if n.Idle() {
		t.Fatal("node 0 idle while executing")
	}
	if !n.Busy() {
		t.Fatal("node 0 not busy with two jobs assigned")
	}
	if n.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1 (one running, one queued)", n.QueueLen())
	}
	f.engine.Run(24 * time.Hour)
	if !n.Idle() {
		t.Fatal("node 0 not idle after completing everything")
	}
}

func TestFloodTerminatesAndIsBounded(t *testing.T) {
	// On a ring, a REQUEST flood must stop within TTL hops and duplicate
	// suppression must bound total transmissions.
	cfg := noRescheduling(core.DefaultConfig())
	cfg.RequestTTL = 4
	cfg.RequestFanout = 2
	cfg.MaxRequestRetries = 0
	engine := sim.NewEngine(11)
	graph := overlay.NewGraph()
	const n = 30
	for i := 0; i < n; i++ {
		graph.AddNode(overlay.NodeID(i))
	}
	for i := 0; i < n; i++ {
		graph.AddLink(overlay.NodeID(i), overlay.NodeID((i+1)%n))
	}
	cluster := transport.NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	rec := newRecorder()
	requests := 0
	cluster.SetTraffic(func(_ time.Duration, _, _ overlay.NodeID, m *core.Message) {
		if m.Type == core.MsgRequest {
			requests++
		}
	})
	for i := 0; i < n; i++ {
		// Nobody matches: the flood crosses the whole TTL range.
		if _, err := cluster.AddNode(overlay.NodeID(i), powerNode(1.0), sched.FCFS, cfg, rec, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	cluster.StartAll()
	rng := rand.New(rand.NewSource(1))
	node, _ := cluster.Node(0)
	if err := node.Submit(amd64Job(rng, time.Hour)); err != nil {
		t.Fatal(err)
	}
	engine.Run(time.Hour)
	if requests == 0 {
		t.Fatal("no REQUEST traffic observed")
	}
	// Hard bound: every node forwards one wave at most once, with at most
	// fanout transmissions.
	if max := n * cfg.RequestFanout; requests > max {
		t.Fatalf("requests = %d, exceeds dedup bound %d", requests, max)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int) {
		cfg := core.DefaultConfig()
		cfg.InformInterval = time.Minute
		engine := sim.NewEngine(5)
		graph := overlay.NewGraph()
		const n = 12
		for i := 0; i < n; i++ {
			graph.AddNode(overlay.NodeID(i))
		}
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				graph.AddLink(overlay.NodeID(i), overlay.NodeID(k))
			}
		}
		cluster := transport.NewSimCluster(engine, graph, overlay.DefaultLatency(3))
		rec := newRecorder()
		profRng := rand.New(rand.NewSource(21))
		sampler := resource.NewSampler(profRng)
		for i := 0; i < n; i++ {
			policy := sched.FCFS
			if i%2 == 0 {
				policy = sched.SJF
			}
			if _, err := cluster.AddNode(overlay.NodeID(i), sampler.Profile(), policy, cfg, rec, job.DefaultARTModel()); err != nil {
				return -1, -1
			}
		}
		cluster.StartAll()
		jobRng := rand.New(rand.NewSource(22))
		for i := 0; i < 20; i++ {
			node, _ := cluster.Node(overlay.NodeID(i % n))
			p := amd64Job(jobRng, time.Duration(jobRng.Intn(120)+60)*time.Minute)
			engine.Schedule(time.Duration(i)*10*time.Second, func() { _ = node.Submit(p) })
		}
		engine.Run(48 * time.Hour)
		var last time.Duration
		for _, j := range rec.completed {
			if j.CompletedAt > last {
				last = j.CompletedAt
			}
		}
		return last, len(rec.completed)
	}
	last1, n1 := run()
	last2, n2 := run()
	if last1 != last2 || n1 != n2 {
		t.Fatalf("runs diverged: (%v, %d) vs (%v, %d)", last1, n1, last2, n2)
	}
	if n1 == 0 {
		t.Fatal("no jobs completed in determinism run")
	}
}

func TestNewNodeValidation(t *testing.T) {
	engine := sim.NewEngine(1)
	graph := overlay.NewGraph()
	graph.AddNode(0)
	cluster := transport.NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	okProfile := amd64Node(1.0)
	cfg := core.DefaultConfig()
	art := job.DefaultARTModel()

	if _, err := cluster.AddNode(0, resource.Profile{}, sched.FCFS, cfg, nil, art); err == nil {
		t.Fatal("accepted invalid profile")
	}
	if _, err := cluster.AddNode(0, okProfile, sched.Policy(0), cfg, nil, art); err == nil {
		t.Fatal("accepted invalid policy")
	}
	bad := cfg
	bad.RequestTTL = 0
	if _, err := cluster.AddNode(0, okProfile, sched.FCFS, bad, nil, art); err == nil {
		t.Fatal("accepted invalid config")
	}
	if _, err := cluster.AddNode(0, okProfile, sched.FCFS, cfg, nil, job.ARTModel{}); err == nil {
		t.Fatal("accepted invalid art model")
	}
	if _, err := cluster.AddNode(1, okProfile, sched.FCFS, cfg, nil, art); err == nil {
		t.Fatal("accepted node missing from graph")
	}
	if _, err := cluster.AddNode(0, okProfile, sched.FCFS, cfg, nil, art); err != nil {
		t.Fatalf("valid node rejected: %v", err)
	}
	if _, err := cluster.AddNode(0, okProfile, sched.FCFS, cfg, nil, art); err == nil {
		t.Fatal("accepted duplicate registration")
	}
}

func TestSubmitOnDeadNode(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{{amd64Node(1.0), sched.FCFS}, {amd64Node(1.0), sched.FCFS}})
	n := f.node(t, 0)
	n.Kill()
	if err := n.Submit(amd64Job(f.rng, time.Hour)); err == nil {
		t.Fatal("dead node accepted a submission")
	}
}

func TestSelfAssignmentWhenInitiatorIsBest(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.9), sched.FCFS}, // initiator is the fastest match
		{amd64Node(1.0), sched.FCFS},
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(6 * time.Hour)
	if got := f.rec.completedOn[p.UUID]; got != 0 {
		t.Fatalf("job ran on %v, want initiator 0", got)
	}
}
