package core_test

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// TestMessageStormRobustness throws thousands of random — frequently
// nonsensical — protocol messages at a node: unknown jobs, stale offers,
// absurd costs, broken TTLs, unknown types. The node must never panic and
// must keep executing its legitimate work.
func TestMessageStormRobustness(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{amd64Node(1.2), sched.FCFS},
	})
	legit := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(legit); err != nil {
		t.Fatal(err)
	}

	storm := rand.New(rand.NewSource(1234))
	randomMessage := func() core.Message {
		m := core.Message{
			Type:   core.MsgType(storm.Intn(8)), // includes invalid types
			From:   overlay.NodeID(storm.Intn(5) - 1),
			Cost:   sched.Cost(storm.NormFloat64() * 1e6),
			TTL:    storm.Intn(20) - 5,
			Fanout: storm.Intn(6) - 1,
			Seq:    storm.Uint64(),
			Via:    overlay.NodeID(storm.Intn(5) - 1),
			Notify: core.NotifyKind(storm.Intn(4)),
		}
		switch storm.Intn(3) {
		case 0:
			m.Job = amd64Job(f.rng, time.Duration(storm.Intn(300)+1)*time.Minute)
		case 1:
			m.Job = legit // poke at the real job from fake senders
		case 2:
			// Zero-value job profile (structurally invalid).
		}
		return m
	}
	target := f.node(t, 0)
	for i := 0; i < 5000; i++ {
		at := time.Duration(storm.Intn(3600)) * time.Second
		m := randomMessage()
		f.engine.ScheduleAt(at, func() { target.HandleMessage(m) })
	}
	f.engine.Run(24 * time.Hour)

	if _, ok := f.rec.completed[legit.UUID]; !ok {
		t.Fatal("legitimate job lost in the message storm")
	}
	if !target.Alive() {
		t.Fatal("node died")
	}
	// Fabricated ASSIGNs can enqueue junk jobs; they must at least drain.
	f.engine.Run(f.engine.Now() + 400*time.Hour)
	if target.Busy() {
		t.Fatal("node stuck busy after storm drained")
	}
}

// TestHandleMessageInvalidJobProfiles feeds structurally broken profiles
// through every message type.
func TestHandleMessageInvalidJobProfiles(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{{amd64Node(1.0), sched.FCFS}, {amd64Node(1.0), sched.FCFS}})
	n := f.node(t, 0)
	broken := job.Profile{} // no UUID, no ERT, no class
	for _, typ := range []core.MsgType{core.MsgRequest, core.MsgAccept, core.MsgInform, core.MsgAssign, core.MsgNotify} {
		n.HandleMessage(core.Message{Type: typ, From: 1, Job: broken, TTL: 3, Fanout: 2})
	}
	f.engine.Run(time.Hour)
	if !n.Alive() {
		t.Fatal("node died on invalid profiles")
	}
}
