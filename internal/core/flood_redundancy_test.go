package core_test

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/trace"
	"github.com/smartgrid/aria/internal/transport"
)

// TestFloodRedundancyAccounting audits a REQUEST wave's redundancy on a
// complete graph, where duplicate receipts are unavoidable. The trace plane
// must classify every receipt correctly: a node forwards a wave at most
// once (a suppressed re-receipt is a SpanDuplicate, never a SpanForward),
// so total transmissions stay within the per-node fanout budget even
// though the wire carries redundant copies.
func TestFloodRedundancyAccounting(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.RequestTTL = 3
	cfg.RequestFanout = 3
	cfg.MaxRequestRetries = 0 // a single wave, so per-wave == per-run

	const n = 6
	engine := sim.NewEngine(7)
	graph := overlay.NewGraph()
	for i := 0; i < n; i++ {
		graph.AddNode(overlay.NodeID(i))
	}
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			graph.AddLink(overlay.NodeID(i), overlay.NodeID(k))
		}
	}
	cluster := transport.NewSimCluster(engine, graph, overlay.FixedLatency(10*time.Millisecond))
	rec := newRecorder()
	collector := trace.NewCollector()
	obs := eventlog.Tee{rec, collector}
	for i := 0; i < n; i++ {
		// All POWER: the AMD64 job matches nobody, so every receipt either
		// forwards or is suppressed — pure flood mechanics.
		if _, err := cluster.AddNode(overlay.NodeID(i), powerNode(1.0), sched.FCFS, cfg, obs, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	cluster.StartAll()
	log := &trafficLog{}
	cluster.SetTraffic(log.hook)

	n0, ok := cluster.Node(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	if err := n0.Submit(amd64Job(rand.New(rand.NewSource(42)), time.Hour)); err != nil {
		t.Fatal(err)
	}
	engine.Run(time.Minute)

	reqs := log.byType(core.MsgRequest)
	if len(reqs) == 0 {
		t.Fatal("no REQUEST traffic")
	}
	deliveries := make(map[overlay.NodeID]int)
	for _, e := range reqs {
		deliveries[e.to]++
	}

	forwards := make(map[overlay.NodeID]int)
	duplicates := make(map[overlay.NodeID]int)
	totalDup := 0
	for _, ev := range collector.Events() {
		if ev.Msg != core.MsgRequest {
			continue
		}
		switch ev.Kind {
		case core.SpanForward:
			forwards[ev.Node]++
			if ev.Fanout < 1 || ev.Fanout > cfg.RequestFanout {
				t.Fatalf("node %v forwarded %d copies, budget is [1, %d]", ev.Node, ev.Fanout, cfg.RequestFanout)
			}
		case core.SpanDuplicate:
			duplicates[ev.Node]++
			totalDup++
		}
	}

	// On a complete graph the wave must actually produce redundant copies,
	// or the accounting assertions below are vacuous.
	if totalDup == 0 {
		t.Fatal("no duplicate receipts on a complete graph; redundancy untested")
	}

	for id, d := range deliveries {
		// The fixed invariant: one forward per node per wave, no matter
		// how many copies it received.
		if forwards[id] > 1 {
			t.Errorf("node %v forwarded the wave %d times", id, forwards[id])
		}
		// Every receipt beyond a node's first is a suppressed duplicate
		// (the origin's first receipt is suppressed too: its own send
		// already marked the wave as seen).
		if dup := duplicates[id]; dup < d-1 || dup > d {
			t.Errorf("node %v: %d deliveries but %d duplicate spans, want %d or %d", id, d, dup, d-1, d)
		}
	}

	// Redundancy ratio: transmissions per reached node. Bounded by the
	// fanout budget because each participant (receivers plus the origin)
	// transmits at most RequestFanout copies exactly once.
	reached := len(deliveries)
	ratio := float64(len(reqs)) / float64(reached)
	if maxRatio := float64((reached + 1) * cfg.RequestFanout) / float64(reached); ratio > maxRatio {
		t.Fatalf("redundancy ratio %.2f exceeds the structural bound %.2f (%d transmissions, %d nodes reached)",
			ratio, maxRatio, len(reqs), reached)
	}
	if ratio <= 1 {
		t.Fatalf("redundancy ratio %.2f on a complete graph; expected redundant transmissions", ratio)
	}
}
