package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/transport"
)

// dirRecorder extends the lifecycle recorder with trace-span and directory
// observer capture, so tests can assert on the shape of discovery rounds.
type dirRecorder struct {
	*recorder

	dmu       sync.Mutex
	spans     []core.TraceEvent
	hits      int
	probes    int
	misses    int
	fallbacks int
	evictions map[string]int
}

var (
	_ core.TraceObserver     = (*dirRecorder)(nil)
	_ core.DirectoryObserver = (*dirRecorder)(nil)
)

func newDirRecorder() *dirRecorder {
	return &dirRecorder{recorder: newRecorder(), evictions: make(map[string]int)}
}

func (r *dirRecorder) TraceSpan(ev core.TraceEvent) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	r.spans = append(r.spans, ev)
}

func (r *dirRecorder) DirectoryHit(_ time.Duration, _ overlay.NodeID, _ job.UUID, probes int) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	r.hits++
	r.probes += probes
}

func (r *dirRecorder) DirectoryMiss(_ time.Duration, _ overlay.NodeID, _ job.UUID) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	r.misses++
}

func (r *dirRecorder) DirectoryFallback(_ time.Duration, _ overlay.NodeID, _ job.UUID, _ int) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	r.fallbacks++
}

func (r *dirRecorder) DirectoryEvicted(_ time.Duration, _, _ overlay.NodeID, reason string) {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	r.evictions[reason]++
}

// jobSpans returns the recorded spans of the given kind for one job.
func (r *dirRecorder) jobSpans(uuid job.UUID, kind core.SpanKind) []core.TraceEvent {
	r.dmu.Lock()
	defer r.dmu.Unlock()
	var out []core.TraceEvent
	for _, ev := range r.spans {
		if ev.UUID == uuid && ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// directedConfig arms membership (gossip carrier) and the directory plane
// with tight timers suited to a small fully connected test cluster.
func directedConfig() core.Config {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.ProbeInterval = time.Second
	cfg.ProbeTimeout = 500 * time.Millisecond
	cfg.SuspectTimeout = time.Second
	cfg.DirectedCandidates = 2
	cfg.MinDirectedOffers = 1
	cfg.DirectoryCapacity = core.DefaultDirectoryCapacity
	cfg.DirectoryTTL = core.DefaultDirectoryTTL
	cfg.DirectoryGossip = core.DefaultDirectoryGossip
	return cfg
}

// newDirectedFixture mirrors newFixture but wires the trace- and
// directory-aware recorder into every node.
func newDirectedFixture(t *testing.T, cfg core.Config, specs []nodeSpec) (*fixture, *dirRecorder) {
	t.Helper()
	engine := sim.NewEngine(7)
	graph := overlay.NewGraph()
	for i := range specs {
		graph.AddNode(overlay.NodeID(i))
	}
	for i := 0; i < len(specs); i++ {
		for k := i + 1; k < len(specs); k++ {
			graph.AddLink(overlay.NodeID(i), overlay.NodeID(k))
		}
	}
	cluster := transport.NewSimCluster(engine, graph, overlay.FixedLatency(10*time.Millisecond))
	rec := newDirRecorder()
	for i, spec := range specs {
		art := job.ARTModel{Mode: job.DriftNone}
		if _, err := cluster.AddNode(overlay.NodeID(i), spec.profile, spec.policy, cfg, rec, art); err != nil {
			t.Fatalf("AddNode(%d): %v", i, err)
		}
	}
	cluster.StartAll()
	f := &fixture{engine: engine, cluster: cluster, rec: rec.recorder, rng: rand.New(rand.NewSource(42))}
	return f, rec
}

// After gossip has spread profiles, a fresh submission goes directed: TTL-0
// probes within the candidate budget, an assignment to an offering node, and
// no REQUEST flood at all.
func TestDirectedRoundSkipsFlood(t *testing.T) {
	cfg := directedConfig()
	f, rec := newDirectedFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS}, // initiator: cannot host its own job
		{amd64Node(1.5), sched.FCFS},
		{amd64Node(1.2), sched.FCFS},
		{amd64Node(1.1), sched.FCFS},
	})
	const warmup = 30 * time.Second
	f.engine.Run(warmup)
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(warmup + 6*time.Hour)

	if _, ok := f.rec.completed[p.UUID]; !ok {
		t.Fatalf("job never completed; failed=%v", f.rec.failed)
	}
	probes := rec.jobSpans(p.UUID, core.SpanDirectedProbe)
	if len(probes) != 1 {
		t.Fatalf("directed probe spans = %d, want 1", len(probes))
	}
	if got := probes[0].Fanout; got < 1 || got > cfg.DirectedCandidates {
		t.Fatalf("directed round probed %d nodes, want 1..%d", got, cfg.DirectedCandidates)
	}
	if floods := rec.jobSpans(p.UUID, core.SpanFloodOrigin); len(floods) != 0 {
		t.Fatalf("directed round still flooded: %d flood origins", len(floods))
	}
	if fallbacks := rec.jobSpans(p.UUID, core.SpanDirectoryFallback); len(fallbacks) != 0 {
		t.Fatalf("satisfied directed round fell back %d times", len(fallbacks))
	}
	rec.dmu.Lock()
	hits, misses := rec.hits, rec.misses
	rec.dmu.Unlock()
	if hits != 1 || misses != 0 {
		t.Fatalf("directory hits=%d misses=%d, want 1/0", hits, misses)
	}
}

// Cached digests carry no scheduler class, so a directed round can probe
// nodes that will never answer; the round must starve into the classic flood
// (budget untouched) and the job must still land on the real candidate.
func TestDirectedStarvationFallsBackToFlood(t *testing.T) {
	cfg := directedConfig()
	f, rec := newDirectedFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS}, // initiator: hosts its own job after the fallback
		{amd64Node(1.9), sched.EDF},  // satisfies the digest, ignores batch jobs
		{amd64Node(1.8), sched.EDF},  // satisfies the digest, ignores batch jobs
		{powerNode(1.5), sched.FCFS}, // never cached as a candidate: wrong arch
	})
	const warmup = 30 * time.Second
	f.engine.Run(warmup)
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(warmup + 6*time.Hour)

	if _, ok := f.rec.completed[p.UUID]; !ok {
		t.Fatalf("job never completed; failed=%v", f.rec.failed)
	}
	// A self offer never satisfies MinDirectedOffers (it proves nothing
	// about the cache), so both probes went to the silent EDF nodes, the
	// round starved, and the flood's self-assignment won.
	if got := f.rec.completedOn[p.UUID]; got != 0 {
		t.Fatalf("job ran on %v, want the initiator 0", got)
	}
	probes := rec.jobSpans(p.UUID, core.SpanDirectedProbe)
	if len(probes) != 1 || probes[0].Fanout != cfg.DirectedCandidates {
		t.Fatalf("probe spans %+v, want one probing %d nodes", probes, cfg.DirectedCandidates)
	}
	fallbacks := rec.jobSpans(p.UUID, core.SpanDirectoryFallback)
	if len(fallbacks) != 1 {
		t.Fatalf("fallback spans = %d, want 1", len(fallbacks))
	}
	if fallbacks[0].Parent != probes[0].Span {
		t.Fatalf("fallback parented to span %d, want the probe span %d", fallbacks[0].Parent, probes[0].Span)
	}
	if floods := rec.jobSpans(p.UUID, core.SpanFloodOrigin); len(floods) == 0 {
		t.Fatal("starved directed round never flooded")
	}
	rec.dmu.Lock()
	fb := rec.fallbacks
	rec.dmu.Unlock()
	if fb != 1 {
		t.Fatalf("fallback observer count = %d, want 1", fb)
	}
}

// A peer confirmed dead is invalidated from the directory, so a later
// submission whose only cached match was the corpse records a miss and goes
// straight to the flood — a directed probe at a corpse would be a wasted
// AcceptTimeout.
func TestDeadCandidateIsNeverProbed(t *testing.T) {
	cfg := directedConfig()
	cfg.MaxRequestRetries = 1
	cfg.RetryBackoff = time.Minute
	f, rec := newDirectedFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS}, // initiator: cannot host its own job
		{amd64Node(1.5), sched.FCFS}, // the only match — about to die
		{powerNode(1.2), sched.FCFS},
	})
	const warmup = 30 * time.Second
	f.engine.Run(warmup)
	f.node(t, 1).Kill()
	// Probe interval 1 s + timeouts 0.5 s/1 s: the dead verdict lands well
	// within a few intervals.
	f.engine.Run(warmup + 15*time.Second)

	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(warmup + 15*time.Second + time.Hour)

	if _, ok := f.rec.completed[p.UUID]; ok {
		t.Fatal("job completed with its only candidate dead")
	}
	if probes := rec.jobSpans(p.UUID, core.SpanDirectedProbe); len(probes) != 0 {
		t.Fatalf("probed a dead candidate: %+v", probes)
	}
	if floods := rec.jobSpans(p.UUID, core.SpanFloodOrigin); len(floods) == 0 {
		t.Fatal("discovery never flooded after the directory miss")
	}
	rec.dmu.Lock()
	misses, dead := rec.misses, rec.evictions["dead"]
	rec.dmu.Unlock()
	if misses == 0 {
		t.Fatal("no directory miss recorded")
	}
	if dead == 0 {
		t.Fatal("dead verdict never evicted the corpse's digest")
	}
}
