package core_test

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/transport"
)

// These tests pin the exact RescheduleThreshold boundary on both §III-D
// gates: an improvement of EXACTLY the threshold must not move a job.
//
// The construction makes the advertised improvement time-invariant and the
// float64 comparisons exact. A reserved job (EarliestStart far in the
// future) queued on an idle perf-1.0 node has QueuedCost (es-now) + E; an
// idle perf-1.5 candidate offers (es-now) + 2E/3. Both decay 1 s/s, so with
// one-hop latency L:
//
//	INFORM-gate improvement = E/3 + L   (the offer is computed L later)
//	offer-gate improvement  = E/3 - L   (the ACCEPT arrives another L later)
//
// With L = 1 s, threshold 180 s, and E divisible by 3 (so E/1.5 is exact):
//
//	E = 537 s -> INFORM gate sees exactly 180 s: no offer at all
//	E = 543 s -> INFORM gate sees 182 s, offer gate exactly 180 s: refused
//	E = 546 s -> 183 s and 181 s: the job moves
//
// All costs are whole seconds plus one shared sub-second INFORM-phase
// fraction, and every compared pair lands in the same float64 binade, so
// the comparisons reduce to exact integer arithmetic.
func runThresholdCase(t *testing.T, ert, horizon time.Duration) (job.UUID, *recorder, *trafficLog) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	cfg.RescheduleThreshold = 3 * time.Minute // the paper's default, pinned

	engine := sim.NewEngine(7)
	graph := overlay.NewGraph()
	graph.AddNode(0)
	graph.AddNode(1)
	graph.AddLink(0, 1)
	cluster := transport.NewSimCluster(engine, graph, overlay.FixedLatency(time.Second))
	rec := newRecorder()
	art := job.ARTModel{Mode: job.DriftNone}
	if _, err := cluster.AddNode(0, amd64Node(1.0), sched.FCFS, cfg, rec, art); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.AddNode(1, powerNode(1.0), sched.FCFS, cfg, rec, art); err != nil {
		t.Fatal(err)
	}
	cluster.StartAll()
	log := &trafficLog{}
	cluster.SetTraffic(log.hook)

	p := amd64Job(rand.New(rand.NewSource(42)), ert)
	p.EarliestStart = 20 * time.Hour // keeps the job queued, cost decaying 1 s/s
	n0, ok := cluster.Node(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	if err := n0.Submit(p); err != nil {
		t.Fatal(err)
	}
	engine.Run(30 * time.Second)

	// A faster matching node joins: the only possible rescheduling target.
	g := cluster.Graph()
	g.AddNode(2)
	g.AddLink(2, 0)
	g.AddLink(2, 1)
	n2, err := cluster.AddNode(2, amd64Node(1.5), sched.FCFS, cfg, rec, art)
	if err != nil {
		t.Fatal(err)
	}
	n2.Start()
	engine.Run(horizon)
	return p.UUID, rec, log
}

// rescheduleAccepts counts ACCEPT traffic after the fast node joined.
// Discovery never puts an ACCEPT on the wire here (node 1 cannot match, and
// the initiator's own offer is local), so these are rescheduling offers.
func rescheduleAccepts(log *trafficLog) int {
	count := 0
	for _, e := range log.byType(core.MsgAccept) {
		if e.at > 30*time.Second {
			count++
		}
	}
	return count
}

// TestThresholdBoundaryExactImprovementStaysPut: E = 537 s makes the
// INFORM-side improvement exactly the 3-minute threshold, so the faster
// node must not even offer.
func TestThresholdBoundaryExactImprovementStaysPut(t *testing.T) {
	_, rec, log := runThresholdCase(t, 537*time.Second, 10*time.Minute)
	if rec.reschedules != 0 {
		t.Fatalf("exactly-threshold improvement rescheduled %d time(s)", rec.reschedules)
	}
	if n := rescheduleAccepts(log); n != 0 {
		t.Fatalf("INFORM gate let %d offer(s) through at exactly the threshold", n)
	}
}

// TestThresholdBoundaryOfferGateRevalidates: E = 543 s passes the INFORM
// side (182 s), but by the time the ACCEPT arrives the benefit has decayed
// to exactly 180 s, so the assignee must re-validate and decline the move.
func TestThresholdBoundaryOfferGateRevalidates(t *testing.T) {
	_, rec, log := runThresholdCase(t, 543*time.Second, 10*time.Minute)
	if n := rescheduleAccepts(log); n == 0 {
		t.Fatal("no rescheduling offers despite an above-threshold INFORM-side improvement")
	}
	if rec.reschedules != 0 {
		t.Fatalf("offer gate accepted an exactly-threshold move %d time(s)", rec.reschedules)
	}
}

// TestThresholdBoundaryJustAboveMoves is the positive control: E = 546 s
// clears both gates (183 s and 181 s) and the job must migrate to the
// faster node and complete there.
func TestThresholdBoundaryJustAboveMoves(t *testing.T) {
	uuid, rec, _ := runThresholdCase(t, 546*time.Second, 25*time.Hour)
	if rec.reschedules == 0 {
		t.Fatal("above-threshold improvement never rescheduled")
	}
	if _, ok := rec.completed[uuid]; !ok {
		t.Fatal("job never completed")
	}
	if on := rec.completedOn[uuid]; on != 2 {
		t.Fatalf("job completed on node %v, want the faster node 2", on)
	}
}
