package core

import (
	"time"

	"github.com/smartgrid/aria/internal/directory"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// The shared-state plane is the optimistic-commit scheduler arm: instead of
// discovering providers per job (flood or directed probes), an initiator
// picks the best provider from its eventually-consistent cached cluster
// view (internal/sharedstate, layered on the gossip-fed directory store)
// and commits the assignment optimistically with a single COMMIT message.
// The provider validates the commit against reality — queue below the
// shared-state bound, incarnation matching the view's, profile actually
// satisfying the job — and either grants it (the ASSIGN_ACK doubles as the
// grant, and the job is enqueued exactly like an ASSIGN) or rejects it
// with a typed CONFLICT reply carrying its honest digest. The initiator
// folds the correction into its view and retries the next-best candidate
// after a bounded backoff; after K failed commits (conflicts or timeouts)
// it abandons the view and escalates to the classic ARiA REQUEST flood, so
// completion semantics never depend on view quality.

// pendingCommit is an initiator's bookkeeping for one optimistic-commit
// round.
type pendingCommit struct {
	profile job.Profile
	target  overlay.NodeID
	// attempts counts commits sent this round, from 1; the round falls
	// back to the flood when it reaches SharedStateRetries failures.
	attempts int
	// excluded lists providers already tried this round: a conflicted or
	// silent provider is not re-picked even if the view still likes it.
	excluded map[overlay.NodeID]bool
	// span is the current commit span; conflicts and the grant parent to
	// it. timer is the in-flight commit timeout or, between attempts, the
	// retry backoff.
	span  uint64
	timer Cancel
	// inflight is true while a COMMIT is outstanding and unresolved. A
	// commit timeout resolves the attempt unilaterally, so a late CONFLICT
	// from the abandoned target must not resolve it a second time — but a
	// late grant still closes the round (the provider really holds the
	// job), which is why the round outlives the attempt.
	inflight bool
}

// resolveCommitView releases the view's in-flight reservation for the
// current commit attempt, exactly once per attempt. Caller holds the lock.
func (n *Node) resolveCommitView(pc *pendingCommit) {
	if pc.inflight {
		pc.inflight = false
		n.view.CommitResolved(pc.target)
	}
}

// discoveryOpen reports whether any discovery round — flood, directed, or
// optimistic commit — is in flight for uuid. Round-opening paths consult it
// so two concurrent rounds can never place two live copies. Caller holds
// the lock.
func (n *Node) discoveryOpen(uuid job.UUID) bool {
	if _, ok := n.pending[uuid]; ok {
		return true
	}
	_, ok := n.commits[uuid]
	return ok
}

// pickCommitTarget selects the best viewed provider for p that is not
// excluded, not this node, and not suspected or confirmed dead. Caller
// holds the lock.
func (n *Node) pickCommitTarget(p job.Profile, excluded map[overlay.NodeID]bool) (directory.Digest, bool) {
	return n.view.Pick(p.Req, n.env.Now(), func(id overlay.NodeID) bool {
		return id == n.id || excluded[id] || n.peerDead(id) || n.peerSuspect(id)
	})
}

// startCommit attempts the optimistic-commit stage of discovery, reporting
// false when the view holds no committable candidate — a cold or saturated
// view falls through to directed discovery or the flood, whose ACCEPT
// traffic warms it. Caller holds the lock.
func (n *Node) startCommit(p job.Profile, parent uint64) bool {
	if _, dup := n.commits[p.UUID]; dup {
		return true // round already open; never start a second
	}
	d, ok := n.pickCommitTarget(p, nil)
	if !ok {
		return false
	}
	pc := &pendingCommit{profile: p, excluded: make(map[overlay.NodeID]bool)}
	n.commits[p.UUID] = pc
	n.dispatchCommit(pc, d, parent)
	return true
}

// dispatchCommit sends one COMMIT to the picked provider and arms the
// commit timeout. The view reserves the believed slot until the commit
// resolves. Caller holds the lock.
func (n *Node) dispatchCommit(pc *pendingCommit, d directory.Digest, parent uint64) {
	pc.attempts++
	pc.target = d.Node
	pc.excluded[d.Node] = true
	pc.inflight = true
	n.view.CommitStarted(d.Node)
	uuid := pc.profile.UUID
	pc.span = n.emitSpan(TraceEvent{
		Kind: SpanCommit, UUID: uuid, Parent: parent,
		Peer: d.Node, Cost: sched.Cost(d.Load), Attempt: pc.attempts,
	})
	if n.ssObs != nil {
		n.ssObs.CommitSent(n.env.Now(), n.id, uuid, d.Node, pc.attempts)
	}
	n.env.Send(d.Node, Message{
		Type: MsgCommit, From: n.id, Job: pc.profile,
		Inc: d.Incarnation, Span: pc.span,
	})
	pc.timer = n.env.Schedule(n.cfg.CommitTimeout, func() { n.commitTimeoutFire(uuid) })
}

// handleCommit validates an optimistic commit against this provider's
// actual state: grant it (the ASSIGN_ACK doubles as the grant, and the job
// is enqueued exactly like an ASSIGN) or reject it with a typed CONFLICT
// carrying this node's honest digest so the initiator's next pick works
// from truth. Caller holds the lock.
func (n *Node) handleCommit(m Message) {
	if m.Job.Validate() != nil {
		return
	}
	uuid := m.Job.UUID
	if pn, done := n.notifyOut[uuid]; done {
		// Already completed here and the completion NOTIFY is still
		// unacked: a re-commit (a watchdog resubmission that re-picked this
		// node) must not re-run the job. Re-grant and push the completion
		// again, mirroring the duplicate-ASSIGN path.
		n.env.Send(m.From, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
		n.emitSpan(TraceEvent{Kind: SpanDuplicate, UUID: uuid, Parent: m.Span, Peer: m.From, Msg: MsgCommit})
		n.env.Send(pn.initiator, Message{Type: MsgNotify, From: n.id, Job: pn.profile, Notify: NotifyCompleted, Span: pn.span})
		return
	}
	if _, fenced := n.held[uuid]; fenced {
		// A re-commit for a fenced recovered copy is an implicit
		// confirmation that the initiator still wants it here.
		n.env.Send(m.From, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
		n.emitSpan(TraceEvent{Kind: SpanDuplicate, UUID: uuid, Parent: m.Span, Peer: m.From, Msg: MsgCommit})
		n.releaseHeld(uuid)
		return
	}
	if _, queued := n.queue.Get(uuid); queued || (n.running != nil && n.running.UUID == uuid) {
		n.env.Send(m.From, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
		n.emitSpan(TraceEvent{Kind: SpanDuplicate, UUID: uuid, Parent: m.Span, Peer: m.From, Msg: MsgCommit})
		return
	}
	now := n.env.Now()
	var kind ConflictKind
	switch {
	case m.Inc != n.incarnation:
		// The view predates a restart of this node: its queue state and
		// journal lineage are about a different instance.
		kind = ConflictStale
	case !n.profile.Satisfies(m.Job.Req):
		// The view's capability picture is structurally wrong.
		kind = ConflictStale
	case n.loadDepth() >= n.cfg.SharedStateBound || n.overloaded():
		// At the bound. If another commit landed within the last commit
		// round trip, a concurrent committer won the race for the final
		// slot; otherwise the initiator's view was simply stale about
		// organically accumulated load.
		if n.lastCommitGrant >= 0 && now-n.lastCommitGrant <= n.cfg.CommitTimeout {
			kind = ConflictLost
		} else {
			kind = ConflictBusy
		}
	default:
		if _, err := n.queue.OfferCost(m.Job, now, n.estRemaining()); err != nil {
			// Feasibility (deadline, reservation) says no right now.
			kind = ConflictBusy
		}
	}
	if kind != 0 {
		cspan := n.emitSpan(TraceEvent{
			Kind: SpanConflict, UUID: uuid, Parent: m.Span,
			Peer: m.From, Reason: kind.String(), Fanout: n.loadDepth(),
		})
		n.env.Send(m.From, Message{
			Type: MsgConflict, From: n.id, Job: m.Job,
			Conflict: kind, Span: cspan, Dir: n.selfDirPayload(),
		})
		return
	}
	n.lastCommitGrant = now
	n.env.Send(m.From, Message{Type: MsgAssignAck, From: n.id, Job: m.Job, Span: m.Span})
	n.enqueueLocal(m.Job, m.From, m.Span)
}

// handleConflict reacts to a provider's typed commit rejection: fold the
// correction into the view (the CONFLICT carries the provider's honest
// digest) and retry or fall back. Caller holds the lock.
func (n *Node) handleConflict(m Message) {
	pc, ok := n.commits[m.Job.UUID]
	if !ok || !pc.inflight || m.From != pc.target {
		// No open round, a late conflict from a superseded target, or a
		// conflict for an attempt the timeout already resolved.
		return
	}
	if pc.timer != nil {
		pc.timer()
		pc.timer = nil
	}
	n.resolveCommitView(pc)
	switch m.Conflict {
	case ConflictStale:
		// Structurally wrong entry: evict it, then admit the honest digest
		// the reply carries (the restarted incarnation, the real profile).
		n.view.ObserveStale(m.From)
		n.learnDigests(m)
	default:
		// Busy or lost: the digest shows the real (saturated) load; the
		// explicit saturation covers digests the codec aged past admission.
		n.learnDigests(m)
		n.view.ObserveBusy(m.From)
	}
	n.failCommit(pc, m.Conflict.String(), m.Span)
}

// commitTimeoutFire treats a silent provider as a failed commit attempt:
// the entry is dropped from the view as unreachable and the round retries
// or falls back. The conflict span it emits is initiator-side — there is
// no reply to parent one under.
func (n *Node) commitTimeoutFire(uuid job.UUID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	pc, ok := n.commits[uuid]
	if !ok {
		return
	}
	pc.timer = nil
	n.resolveCommitView(pc)
	n.view.ObserveUnreachable(pc.target)
	cspan := n.emitSpan(TraceEvent{
		Kind: SpanConflict, UUID: uuid, Parent: pc.span,
		Peer: pc.target, Reason: "timeout", Attempt: pc.attempts,
	})
	n.failCommit(pc, "timeout", cspan)
}

// failCommit closes one failed commit attempt: retry against the refreshed
// view after a bounded backoff, or — at K failures — abandon the view and
// escalate to the classic flood. Caller holds the lock.
func (n *Node) failCommit(pc *pendingCommit, reason string, conflictSpan uint64) {
	uuid := pc.profile.UUID
	if n.ssObs != nil {
		n.ssObs.CommitConflict(n.env.Now(), n.id, uuid, pc.target, reason, pc.attempts)
	}
	if pc.attempts >= n.cfg.SharedStateRetries {
		n.commitFallback(pc, conflictSpan)
		return
	}
	pc.timer = n.env.Schedule(n.commitBackoff(pc.attempts), func() { n.commitRetryFire(uuid, conflictSpan) })
}

// commitRetryFire re-picks from the refreshed view and dispatches the next
// commit, or falls back immediately when no alternative provider is viewed
// committable — waiting out more conflicts against an exhausted view would
// only delay the flood.
func (n *Node) commitRetryFire(uuid job.UUID, parent uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	pc, ok := n.commits[uuid]
	if !ok {
		return
	}
	pc.timer = nil
	d, found := n.pickCommitTarget(pc.profile, pc.excluded)
	if !found {
		n.commitFallback(pc, parent)
		return
	}
	n.dispatchCommit(pc, d, parent)
}

// commitFallback abandons the optimistic round and escalates to the
// classic REQUEST flood with a fresh retry budget — the flood is the
// discovery the commits tried to avoid, not a retry of one. Caller holds
// the lock.
func (n *Node) commitFallback(pc *pendingCommit, parent uint64) {
	uuid := pc.profile.UUID
	delete(n.commits, uuid)
	fb := n.emitSpan(TraceEvent{
		Kind: SpanCommitFallback, UUID: uuid, Parent: parent, Attempt: pc.attempts,
	})
	if n.ssObs != nil {
		n.ssObs.CommitFallback(n.env.Now(), n.id, uuid, pc.attempts)
	}
	n.startFlood(pc.profile, 0, fb)
}

// commitGranted closes a granted commit: the ASSIGN_ACK from the target is
// the grant. The job is now the provider's, tracked exactly like a
// flood-arm assignment (watchdog, NOTIFY lifecycle). A late grant — one
// arriving after the commit timeout, while the round backs off — still
// closes the round: the provider holds the job either way. Caller holds
// the lock.
func (n *Node) commitGranted(pc *pendingCommit, m Message) {
	uuid := m.Job.UUID
	if pc.timer != nil {
		pc.timer()
	}
	delete(n.commits, uuid)
	n.resolveCommitView(pc)
	n.view.ObserveGranted(pc.target)
	if n.ssObs != nil {
		n.ssObs.CommitGranted(n.env.Now(), n.id, uuid, pc.target, pc.attempts)
	}
	n.obs.JobAssigned(n.env.Now(), uuid, n.id, pc.target, 0, false)
	n.trackAssignment(pc.profile, pc.target, 0, pc.span)
}

// closeCommitOnComplete revokes an in-flight commit round for a job this
// node learned is complete: without it, a grant racing the completion
// NOTIFY would track (and eventually re-run) a copy of a finished job. A
// CANCEL chases the possibly-placed copy; a provider that never enqueued
// it ignores the CANCEL. The cancel span parents to the commit span so
// every commit attempt's outcome stays in its causal tree. Caller holds
// the lock.
func (n *Node) closeCommitOnComplete(uuid job.UUID) {
	pc, ok := n.commits[uuid]
	if !ok {
		return
	}
	if pc.timer != nil {
		pc.timer()
	}
	delete(n.commits, uuid)
	n.resolveCommitView(pc)
	cspan := n.emitSpan(TraceEvent{Kind: SpanCancel, UUID: uuid, Parent: pc.span, Peer: pc.target})
	n.env.Send(pc.target, Message{Type: MsgCancel, From: n.id, Job: pc.profile, Span: cspan})
}

// commitBackoff is the pause before commit attempt attempts+1: the
// configured base doubled per failure (bounded), desynchronizing
// initiators that conflicted on the same provider.
func (n *Node) commitBackoff(attempts int) time.Duration {
	return n.cfg.CommitBackoff << uint(min(attempts-1, 6))
}
