package core

import (
	"log"
	"os"

	"github.com/smartgrid/aria/internal/directory"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
)

// The directory plane is the directed-discovery extension: each node keeps a
// bounded, staleness-aware cache of remote resource-profile digests
// (internal/directory), fed by digests piggybacked on membership PING/PONG
// gossip and on ACCEPT/INFORM traffic, and invalidated by the liveness
// detector (suspect evicts, dead tombstones) and by transport unreachability.
// An initiator's first discovery round probes up to DirectedCandidates
// cached matches with TTL-0 targeted REQUESTs; the classic flood remains the
// fallback whenever the cache is empty or the directed round starves, so
// completion semantics never depend on cache quality.

// SetIncarnation stamps the node's restart counter, carried in its own
// profile digest so remote caches can order knowledge across restarts (a
// tombstoned dead node re-admits only with a strictly greater incarnation).
// Transports call it before Start on a restarted node.
func (n *Node) SetIncarnation(inc uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.incarnation = inc
}

// DirectorySnapshot dumps the node's live directory for operator debugging
// (ariactl's directory Op); nil when the directory is disabled.
func (n *Node) DirectorySnapshot() []directory.Digest {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dir == nil {
		return nil
	}
	return n.dir.Snapshot(n.env.Now())
}

// selfDigest is the node's own directory digest: zero age, current
// incarnation, live load. Caller holds the lock.
func (n *Node) selfDigest() directory.Digest {
	load := n.queue.Len()
	if n.running != nil {
		load++
	}
	return directory.Digest{Node: n.id, Profile: n.profile, Incarnation: n.incarnation, Load: load}
}

// selfDirPayload encodes the node's own digest for piggybacking on an
// ACCEPT or INFORM — encoded per send, because the load hint must be live.
// Nil when the directory is disabled. Caller holds the lock.
func (n *Node) selfDirPayload() []byte {
	if n.dir == nil {
		return nil
	}
	return directory.Encode([]directory.Digest{n.selfDigest()})
}

// dirGossipPayload builds the digest payload for a PING or PONG: the node's
// own digest first (the freshest fact it has), then DirectoryGossip cache
// samples rotated across calls. Caller holds the lock.
func (n *Node) dirGossipPayload() []byte {
	if n.dir == nil {
		return nil
	}
	ds := make([]directory.Digest, 0, 1+n.cfg.DirectoryGossip)
	ds = append(ds, n.selfDigest())
	ds = append(ds, n.dir.Gossip(n.cfg.DirectoryGossip, n.env.Now())...)
	return directory.Encode(ds)
}

// learnDigests folds a message's digest payload into the cache. Undecodable
// payloads are dropped whole; digests about this node itself or about peers
// already confirmed dead are skipped. Caller holds the lock.
func (n *Node) learnDigests(m Message) {
	if n.dir == nil || len(m.Dir) == 0 {
		return
	}
	ds, err := directory.Decode(m.Dir)
	if err != nil {
		return
	}
	now := n.env.Now()
	for _, d := range ds {
		if d.Node == n.id || n.peerDead(d.Node) {
			continue
		}
		admitted := n.dir.Learn(d, now)
		if dirDebug {
			log.Printf("dirdebug: now=%v admitted=%v subject=%d inc=%d age=%v load=%d via=%v from=%d",
				now, admitted, d.Node, d.Incarnation, d.Age, d.Load, m.Type, m.From)
		}
	}
}

// dirDebug gates digest-learn tracing for soak debugging.
var dirDebug = os.Getenv("ARIA_DIR_DEBUG") != ""

// dirEvict drops a peer's cached digest without a tombstone (suspicion,
// transport unreachability): the peer may be alive and fresh gossip
// re-admits it. Caller holds the lock.
func (n *Node) dirEvict(peer overlay.NodeID, reason string) {
	if n.dir != nil {
		n.dir.Evict(peer, reason)
	}
}

// dirInvalidate tombstones a peer confirmed dead: only a strictly greater
// incarnation (a restarted instance) is ever cached again. Caller holds the
// lock.
func (n *Node) dirInvalidate(peer overlay.NodeID) {
	if n.dir != nil {
		n.dir.Invalidate(peer)
	}
}

// startDirected attempts the directed stage of discovery: TTL-0 targeted
// REQUESTs to up to DirectedCandidates cached nodes whose digest satisfies
// the job. It reports false (and emits a directory miss) when no usable
// candidate is cached, in which case the caller floods instead. Caller holds
// the lock.
func (n *Node) startDirected(p job.Profile, parent uint64) bool {
	now := n.env.Now()
	cands := n.dir.Candidates(p.Req, n.dir.Len(), now)
	usable := cands[:0]
	for _, d := range cands {
		if d.Node == n.id || n.peerDead(d.Node) || n.peerSuspect(d.Node) {
			continue
		}
		usable = append(usable, d)
	}
	if len(usable) < n.cfg.DirectedCandidates {
		// Not enough knowledge to fill the probe budget: a cold or sparse
		// cache would aim the whole round at its few entries and herd load
		// onto them. Flood instead — every ACCEPT it draws carries the
		// sender's digest, so the miss itself warms the cache.
		if n.dirObs != nil {
			n.dirObs.DirectoryMiss(now, n.id, p.UUID)
		}
		return false
	}
	// usable arrives least-loaded first (join-shortest-known-queue), so the
	// head of the list spreads load the way a flood's global cost view
	// would; the hint only picks who gets probed — live ACCEPT costs still
	// decide the assignment.
	targets := usable
	if budget := n.cfg.DirectedCandidates; len(usable) > budget {
		targets = usable[:budget]
	}
	pend := &pendingJob{profile: p, directed: true}
	if cost, ok := n.selfOffer(p); ok {
		pend.best, pend.bestCost, pend.hasBest = n.id, cost, true
		pend.offers = append(pend.offers, offer{node: n.id, cost: cost})
	}
	n.pending[p.UUID] = pend
	if n.tobs != nil {
		pend.span = n.nextSpanID()
	}
	// One wave, many unicasts: every probe shares the sequence number and
	// span, exactly like flood copies of one wave. Wire TTL 0 means a
	// receiver that cannot host the job has nothing to forward — the probe
	// dies silently instead of cascading.
	msg := Message{
		Type:   MsgRequest,
		From:   n.id,
		Job:    p,
		TTL:    0,
		Fanout: 1,
		Seq:    n.nextSeq(),
		Via:    n.id,
		Hop:    1,
		Span:   pend.span,
	}
	n.markSeen(msg.floodFP())
	for _, d := range targets {
		n.env.Send(d.Node, msg)
	}
	n.emitSpan(TraceEvent{
		Kind: SpanDirectedProbe, UUID: p.UUID, Span: pend.span, Parent: parent,
		Msg: MsgRequest, Hop: 0, TTL: 1, Fanout: len(targets),
		Seq: msg.Seq, Origin: n.id,
	})
	if n.dirObs != nil {
		n.dirObs.DirectoryHit(now, n.id, p.UUID, len(targets))
	}
	uuid := p.UUID
	pend.timer = n.env.Schedule(n.cfg.AcceptTimeout, func() { n.decide(uuid) })
	return true
}

// directedFallback closes a starved directed round by escalating to the
// classic flood: the fallback span links the flood under the directed probe
// in the causal tree, and the retry budget is untouched (the flood is the
// round the directed stage tried to avoid, not a retry of one). Caller
// holds the lock.
func (n *Node) directedFallback(pend *pendingJob) {
	uuid := pend.profile.UUID
	fb := n.emitSpan(TraceEvent{
		Kind: SpanDirectoryFallback, UUID: uuid, Parent: pend.span,
		Attempt: pend.directedOffers,
	})
	if n.dirObs != nil {
		n.dirObs.DirectoryFallback(n.env.Now(), n.id, uuid, pend.directedOffers)
	}
	n.startFlood(pend.profile, pend.retries, fb)
}
