package core_test

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

func multiConfig(k int) core.Config {
	cfg := noRescheduling(core.DefaultConfig())
	cfg.MultiAssign = k
	return cfg
}

func TestMultiAssignValidation(t *testing.T) {
	bad := core.DefaultConfig() // rescheduling on
	bad.MultiAssign = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("multi-assign with rescheduling accepted")
	}
	bad2 := noRescheduling(core.DefaultConfig())
	bad2.MultiAssign = -1
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative multi-assign accepted")
	}
	if err := multiConfig(3).Validate(); err != nil {
		t.Fatalf("valid multi-assign config rejected: %v", err)
	}
}

func TestMultiAssignSpreadsCopiesAndRevokes(t *testing.T) {
	cfg := multiConfig(3)
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS}, // initiator, never hosts
		{amd64Node(1.5), sched.FCFS},
		{amd64Node(1.2), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
	})
	// Keep every candidate busy so the copies queue: revocation can only
	// remove copies that have not yet started. The fastest node (1)
	// drains its blocker first and wins the race.
	for _, id := range []overlay.NodeID{1, 2, 3} {
		blocker := amd64Job(f.rng, 2*time.Hour)
		f.node(t, id).HandleMessage(core.Message{Type: core.MsgAssign, From: id, Job: blocker})
	}
	log := &trafficLog{}
	f.cluster.SetTraffic(log.hook)
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(12 * time.Hour)

	// Three ASSIGNs went out, the fastest node won, and two CANCELs
	// revoked the still-queued copies.
	if got := len(log.byType(core.MsgAssign)); got != 3 {
		t.Fatalf("ASSIGN count = %d, want 3 copies", got)
	}
	if got := len(log.byType(core.MsgCancel)); got != 2 {
		t.Fatalf("CANCEL count = %d, want 2 revocations", got)
	}
	if got := f.rec.completedOn[p.UUID]; got != 1 {
		t.Fatalf("job ran on %v, want fastest node 1", got)
	}
	if got := f.rec.started[p.UUID]; got != 1 {
		t.Fatalf("job started on %v, want only node 1", got)
	}
	// Losers must end idle with the revoked copies gone.
	f.engine.Run(24 * time.Hour)
	for _, id := range []overlay.NodeID{2, 3} {
		if !f.node(t, id).Idle() {
			t.Fatalf("loser node %v still holds a revoked copy", id)
		}
	}
}

func TestMultiAssignDuplicateExecutionWhenCopiesRaceIdleNodes(t *testing.T) {
	// All candidates idle: every copy starts before any CANCEL can land.
	// This is exactly the §II critique of the model — duplicated work.
	cfg := multiConfig(2)
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS},
		{amd64Node(1.5), sched.FCFS},
		{amd64Node(1.4), sched.FCFS},
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(12 * time.Hour)
	if _, ok := f.rec.completed[p.UUID]; !ok {
		t.Fatal("job never completed")
	}
	// Both copies started (idle nodes start instantly on ASSIGN); the
	// recorder's started map only keeps the last, so count via assigned
	// copies having executed: both nodes must have been busy at some
	// point — assert at least that the winner completed and the grid
	// drained without stuck state.
	f.engine.Run(24 * time.Hour)
	for _, id := range []overlay.NodeID{1, 2} {
		if !f.node(t, id).Idle() {
			t.Fatalf("node %v stuck after multi-assign race", id)
		}
	}
}

func TestMultiAssignSelfCopyWins(t *testing.T) {
	// The initiator itself is the fastest candidate: its local copy wins
	// and remote copies are revoked.
	cfg := multiConfig(2)
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.9), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
	})
	// The remote candidate is busy, so its copy queues and is revocable.
	blocker := amd64Job(f.rng, 2*time.Hour)
	f.node(t, 1).HandleMessage(core.Message{Type: core.MsgAssign, From: 1, Job: blocker})
	log := &trafficLog{}
	f.cluster.SetTraffic(log.hook)
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(12 * time.Hour)
	if got := f.rec.completedOn[p.UUID]; got != 0 {
		t.Fatalf("job ran on %v, want initiator 0", got)
	}
	if got := len(log.byType(core.MsgCancel)); got != 1 {
		t.Fatalf("CANCEL count = %d, want 1", got)
	}
	f.engine.Run(24 * time.Hour)
	if !f.node(t, 1).Idle() {
		t.Fatal("remote copy not revoked")
	}
}

func TestMultiAssignFewerOffersThanK(t *testing.T) {
	cfg := multiConfig(5) // only one matching node exists
	f := newFixture(t, cfg, []nodeSpec{
		{powerNode(1.0), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
	})
	p := amd64Job(f.rng, time.Hour)
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(12 * time.Hour)
	if _, ok := f.rec.completed[p.UUID]; !ok {
		t.Fatal("job never completed with fewer offers than K")
	}
}
