package core_test

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/sched"
)

func TestReservedJobWaitsForItsStart(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{amd64Node(1.0), sched.FCFS},
	})
	p := amd64Job(f.rng, time.Hour)
	p.EarliestStart = 6 * time.Hour
	if err := f.node(t, 0).Submit(p); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(5 * time.Hour)
	if _, started := f.rec.started[p.UUID]; started {
		t.Fatal("reserved job started before its reservation")
	}
	f.engine.Run(12 * time.Hour)
	j, ok := f.rec.completed[p.UUID]
	if !ok {
		t.Fatal("reserved job never completed")
	}
	if j.StartedAt < 6*time.Hour {
		t.Fatalf("reserved job started at %v, before its 6h reservation", j.StartedAt)
	}
	// The executor wakes exactly at the reservation (no polling).
	if j.StartedAt > 6*time.Hour+time.Minute {
		t.Fatalf("reserved job started late at %v", j.StartedAt)
	}
}

func TestBackfillKeepsNodeBusyDuringReservation(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	reserved := amd64Job(f.rng, time.Hour)
	reserved.EarliestStart = 5 * time.Hour
	filler := amd64Job(f.rng, 2*time.Hour)
	if err := f.node(t, 0).Submit(reserved); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(time.Minute)
	if err := f.node(t, 0).Submit(filler); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(24 * time.Hour)
	fj, ok := f.rec.completed[filler.UUID]
	if !ok {
		t.Fatal("filler never completed")
	}
	rj, ok := f.rec.completed[reserved.UUID]
	if !ok {
		t.Fatal("reserved job never completed")
	}
	// The 2h filler fits entirely before the 5h reservation and must run
	// first; the reserved job starts on time.
	if fj.StartedAt >= rj.StartedAt {
		t.Fatalf("filler (start %v) did not backfill before reserved (start %v)",
			fj.StartedAt, rj.StartedAt)
	}
	if rj.StartedAt < 5*time.Hour {
		t.Fatalf("reserved job started at %v despite backfill", rj.StartedAt)
	}
}

func TestReservationRaisesOfferCost(t *testing.T) {
	cfg := noRescheduling(core.DefaultConfig())
	f := newFixture(t, cfg, []nodeSpec{{amd64Node(1.0), sched.FCFS}, {amd64Node(1.0), sched.FCFS}})
	plain := amd64Job(f.rng, time.Hour)
	reserved := amd64Job(f.rng, time.Hour)
	reserved.EarliestStart = 10 * time.Hour
	n := f.node(t, 0)
	cheap, ok := n.Offer(plain)
	if !ok {
		t.Fatal("no offer for plain job")
	}
	dear, ok := n.Offer(reserved)
	if !ok {
		t.Fatal("no offer for reserved job")
	}
	if dear <= cheap {
		t.Fatalf("reservation did not raise cost: %v vs %v", dear, cheap)
	}
}

func TestReservedJobStillReschedulable(t *testing.T) {
	// A reserved job sitting in a queue can still move to a cheaper node
	// before its start.
	cfg := core.DefaultConfig()
	cfg.InformInterval = time.Minute
	cfg.RescheduleThreshold = time.Minute
	f := newFixture(t, cfg, []nodeSpec{
		{amd64Node(1.0), sched.FCFS},
		{powerNode(1.0), sched.FCFS},
	})
	// Clog node 0 with plain work, then submit a reserved job.
	for i := 0; i < 3; i++ {
		if err := f.node(t, 0).Submit(amd64Job(f.rng, 2*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	reserved := amd64Job(f.rng, time.Hour)
	reserved.EarliestStart = 2 * time.Hour
	if err := f.node(t, 0).Submit(reserved); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(time.Minute)
	// A fast empty node joins; the reserved job should migrate there and
	// still honor its reservation.
	g := f.cluster.Graph()
	g.AddNode(2)
	g.AddLink(2, 0)
	g.AddLink(2, 1)
	n, err := f.cluster.AddNode(2, amd64Node(1.9), sched.FCFS, cfg, f.rec, job.ARTModel{Mode: job.DriftNone})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	f.engine.Run(30 * time.Hour)
	j, ok := f.rec.completed[reserved.UUID]
	if !ok {
		t.Fatal("reserved job never completed")
	}
	if j.StartedAt < 2*time.Hour {
		t.Fatalf("reservation violated after rescheduling: started %v", j.StartedAt)
	}
}
