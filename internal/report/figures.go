package report

import (
	"fmt"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/stats"
)

// Figure identifies one reproducible paper artifact.
type Figure struct {
	ID        int
	Title     string
	Scenarios []string
	// Series is true for time-series figures (chart + sampled table),
	// false for summary tables.
	Series bool
}

// Figures lists the paper's evaluation figures and the scenarios each one
// consumes.
func Figures() []Figure {
	policy := []string{"FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"}
	load := []string{"LowLoad", "iLowLoad", "Mixed", "iMixed", "HighLoad", "iHighLoad"}
	return []Figure{
		{ID: 1, Title: "Fig. 1: Completed Jobs", Scenarios: policy, Series: true},
		{ID: 2, Title: "Fig. 2: Job Completion Time", Scenarios: policy},
		{ID: 3, Title: "Fig. 3: Idle Nodes", Scenarios: policy, Series: true},
		{ID: 4, Title: "Fig. 4: Deadline Scheduling Performance",
			Scenarios: []string{"Deadline", "iDeadline", "DeadlineH", "iDeadlineH"}},
		{ID: 5, Title: "Fig. 5: Idle Nodes (Expanding Network)",
			Scenarios: []string{"Expanding", "iExpanding"}, Series: true},
		{ID: 6, Title: "Fig. 6: Idle Nodes (Load)", Scenarios: load, Series: true},
		{ID: 7, Title: "Fig. 7: Job Completion Time (Load)", Scenarios: load},
		{ID: 8, Title: "Fig. 8: Job Completion Time (Rescheduling Policies)",
			Scenarios: []string{"iInform1", "iMixed", "iInform4", "iInform15m", "iInform30m"}},
		{ID: 9, Title: "Fig. 9: Sensitivity to ERT",
			Scenarios: []string{"Precise", "iPrecise", "Mixed", "iMixed", "Accuracy25", "iAccuracy25", "AccuracyBad", "iAccuracyBad"}},
		{ID: 10, Title: "Fig. 10: Network Overhead Comparison",
			Scenarios: []string{"Mixed", "iMixed", "iInform1", "iInform4", "iDeadline", "iHighLoad", "iExpanding"}},
	}
}

// FigureByID finds a figure definition.
func FigureByID(id int) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("unknown figure %d", id)
}

// RequiredScenarios returns the union of scenarios any of the given figures
// need (all figures when ids is empty), sorted.
func RequiredScenarios(ids ...int) []string {
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	set := make(map[string]bool)
	for _, f := range Figures() {
		if len(ids) > 0 && !want[f.ID] {
			continue
		}
		for _, s := range f.Scenarios {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Aggregates maps scenario names to their multi-run aggregates.
type Aggregates map[string]*metrics.Aggregate

func (a Aggregates) pick(names []string) ([]*metrics.Aggregate, error) {
	out := make([]*metrics.Aggregate, len(names))
	for i, name := range names {
		agg, ok := a[name]
		if !ok || agg == nil {
			return nil, fmt.Errorf("missing results for scenario %s", name)
		}
		out[i] = agg
	}
	return out, nil
}

func fmtDur(sec float64) string {
	return stats.SecondsToDuration(sec).Round(time.Second).String()
}

func fmtMeanStd(s stats.Summary) string {
	return fmt.Sprintf("%.1f ±%.1f", s.Mean, s.StdDev)
}

// Render produces the full text artifact (table and, for series figures,
// chart) for the given figure.
func Render(f Figure, aggs Aggregates) (string, error) {
	switch f.ID {
	case 1:
		return renderSeriesFigure(f, aggs, seriesCompleted)
	case 2, 7, 8, 9:
		return renderCompletionTable(f, aggs)
	case 3, 5, 6:
		return renderSeriesFigure(f, aggs, seriesIdle)
	case 4:
		return renderDeadlineTable(f, aggs)
	case 10:
		return renderTrafficTable(f, aggs)
	default:
		return "", fmt.Errorf("figure %d has no renderer", f.ID)
	}
}

type seriesKind int

const (
	seriesCompleted seriesKind = iota + 1
	seriesIdle
)

// gatherSeries collects each scenario's series and the common bin width.
func gatherSeries(f Figure, aggs Aggregates, kind seriesKind) (map[string][]float64, time.Duration, int, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return nil, 0, 0, err
	}
	series := make(map[string][]float64, len(picked))
	binWidth := time.Duration(0)
	maxLen := 0
	for i, agg := range picked {
		s := agg.CompletedSeries
		if kind == seriesIdle {
			s = agg.IdleSeries
		}
		series[f.Scenarios[i]] = s
		if agg.BinWidth > 0 {
			binWidth = agg.BinWidth
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if binWidth == 0 {
		binWidth = 5 * time.Minute
	}
	return series, binWidth, maxLen, nil
}

// buildSeriesTable tabulates the series every step bins (step 1 = full
// resolution, as exported to TSV).
func buildSeriesTable(f Figure, series map[string][]float64, binWidth time.Duration, maxLen, step int) Table {
	table := Table{Title: f.Title, Header: append([]string{"t"}, f.Scenarios...)}
	if step < 1 {
		step = 1
	}
	for idx := 0; idx < maxLen; idx += step {
		row := []string{(time.Duration(idx) * binWidth).Round(time.Minute).String()}
		for _, name := range f.Scenarios {
			s := series[name]
			switch {
			case len(s) == 0:
				row = append(row, "-")
			case idx < len(s):
				row = append(row, fmt.Sprintf("%.1f", s[idx]))
			default:
				row = append(row, fmt.Sprintf("%.1f", s[len(s)-1]))
			}
		}
		table.AddRow(row...)
	}
	return table
}

// renderSeriesFigure renders time-series figures (1, 3, 5, 6): an ASCII
// chart plus a table sampled at regular instants.
func renderSeriesFigure(f Figure, aggs Aggregates, kind seriesKind) (string, error) {
	series, binWidth, maxLen, err := gatherSeries(f, aggs, kind)
	if err != nil {
		return "", err
	}
	const samplePoints = 24
	table := buildSeriesTable(f, series, binWidth, maxLen, maxLen/samplePoints)
	return Chart(f.Title, binWidth, series, 72, 18) + "\n" + table.Render(), nil
}

// TSV renders the figure's underlying data at full resolution as
// tab-separated values, suitable for external plotting tools.
func TSV(f Figure, aggs Aggregates) (string, error) {
	var (
		table Table
		err   error
	)
	switch {
	case f.ID > 100:
		table, err = buildExtensionTable(f, aggs)
	case f.ID == 1:
		var series map[string][]float64
		var binWidth time.Duration
		var maxLen int
		series, binWidth, maxLen, err = gatherSeries(f, aggs, seriesCompleted)
		if err == nil {
			table = buildSeriesTable(f, series, binWidth, maxLen, 1)
		}
	case f.ID == 3 || f.ID == 5 || f.ID == 6:
		var series map[string][]float64
		var binWidth time.Duration
		var maxLen int
		series, binWidth, maxLen, err = gatherSeries(f, aggs, seriesIdle)
		if err == nil {
			table = buildSeriesTable(f, series, binWidth, maxLen, 1)
		}
	case f.ID == 4:
		table, err = buildDeadlineTable(f, aggs)
	case f.ID == 10:
		table, err = buildTrafficTable(f, aggs)
	default:
		table, err = buildCompletionTable(f, aggs)
	}
	if err != nil {
		return "", err
	}
	return table.TSV(), nil
}

// renderCompletionTable renders the waiting/execution/completion breakdown
// figures (2, 7, 8, 9).
func renderCompletionTable(f Figure, aggs Aggregates) (string, error) {
	table, err := buildCompletionTable(f, aggs)
	if err != nil {
		return "", err
	}
	return table.Render(), nil
}

func buildCompletionTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "completed", "avg waiting", "avg execution", "avg completion", "reschedules",
		},
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.Completed),
			fmtDur(agg.AvgWaitingSec.Mean),
			fmtDur(agg.AvgExecutionSec.Mean),
			fmtDur(agg.AvgCompletionSec.Mean),
			fmtMeanStd(agg.Reschedules),
		)
	}
	return table, nil
}

// renderDeadlineTable renders Fig. 4.
func renderDeadlineTable(f Figure, aggs Aggregates) (string, error) {
	table, err := buildDeadlineTable(f, aggs)
	if err != nil {
		return "", err
	}
	return table.Render(), nil
}

func buildDeadlineTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "missed deadlines", "avg lateness (met)", "avg missed time",
		},
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.MissedDeadlines),
			fmtDur(agg.AvgLatenessSec.Mean),
			fmtDur(agg.AvgMissedSec.Mean),
		)
	}
	return table, nil
}

// renderTrafficTable renders Fig. 10.
func renderTrafficTable(f Figure, aggs Aggregates) (string, error) {
	table, err := buildTrafficTable(f, aggs)
	if err != nil {
		return "", err
	}
	return table.Render(), nil
}

func buildTrafficTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "REQUEST MB", "ACCEPT MB", "INFORM MB", "ASSIGN MB",
			"total MB", "KB/node", "bps/node", "REQ msgs/job", "ACC msgs/job",
		},
	}
	mb := func(agg *metrics.Aggregate, typ core.MsgType) string {
		s, ok := agg.TrafficBytes[typ]
		if !ok {
			return "0.00"
		}
		return fmt.Sprintf("%.2f", s.Mean/(1<<20))
	}
	// Per-completed-job message counts normalize traffic across scenarios
	// of different workload sizes: a 10k-job run and a 500-job run become
	// directly comparable per column.
	perJob := func(agg *metrics.Aggregate, typ core.MsgType) string {
		s, ok := agg.TrafficMsgsPerJob[typ]
		if !ok {
			return "0.0"
		}
		return fmt.Sprintf("%.1f", s.Mean)
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			mb(agg, core.MsgRequest),
			mb(agg, core.MsgAccept),
			mb(agg, core.MsgInform),
			mb(agg, core.MsgAssign),
			fmt.Sprintf("%.2f", agg.TotalBytes.Mean/(1<<20)),
			fmt.Sprintf("%.1f", agg.BytesPerNode.Mean/(1<<10)),
			fmt.Sprintf("%.1f", agg.BandwidthBPS.Mean),
			perJob(agg, core.MsgRequest),
			perJob(agg, core.MsgAccept),
		)
	}
	return table, nil
}
