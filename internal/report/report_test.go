package report

import (
	"strings"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/stats"
)

func fakeAggregate(name string) *metrics.Aggregate {
	return &metrics.Aggregate{
		Scenario:         name,
		Runs:             2,
		BinWidth:         5 * time.Minute,
		Completed:        stats.Summarize([]float64{100, 100}),
		Failed:           stats.Summarize([]float64{0, 0}),
		Reschedules:      stats.Summarize([]float64{10, 12}),
		AvgWaitingSec:    stats.Summarize([]float64{1000, 1100}),
		AvgExecutionSec:  stats.Summarize([]float64{5000, 5200}),
		AvgCompletionSec: stats.Summarize([]float64{6000, 6300}),
		MissedDeadlines:  stats.Summarize([]float64{4, 6}),
		AvgLatenessSec:   stats.Summarize([]float64{3600, 3700}),
		AvgMissedSec:     stats.Summarize([]float64{600, 700}),
		TotalBytes:       stats.Summarize([]float64{1 << 20, 2 << 20}),
		BytesPerNode:     stats.Summarize([]float64{2048, 4096}),
		BandwidthBPS:     stats.Summarize([]float64{100, 150}),
		TrafficBytes: map[core.MsgType]stats.Summary{
			core.MsgRequest: stats.Summarize([]float64{1 << 19}),
			core.MsgAccept:  stats.Summarize([]float64{1 << 10}),
			core.MsgInform:  stats.Summarize([]float64{1 << 19}),
			core.MsgAssign:  stats.Summarize([]float64{1 << 10}),
		},
		CompletedSeries: []float64{0, 20, 60, 100, 100},
		IdleSeries:      []float64{50, 30, 10, 20, 50},
	}
}

func allAggregates() Aggregates {
	aggs := make(Aggregates)
	for _, name := range RequiredScenarios() {
		aggs[name] = fakeAggregate(name)
	}
	return aggs
}

func TestFiguresCoverPaper(t *testing.T) {
	figs := Figures()
	if len(figs) != 10 {
		t.Fatalf("figures = %d, paper has 10", len(figs))
	}
	for i, f := range figs {
		if f.ID != i+1 {
			t.Fatalf("figure at %d has ID %d", i, f.ID)
		}
		if len(f.Scenarios) == 0 {
			t.Fatalf("figure %d has no scenarios", f.ID)
		}
	}
}

func TestFigureByID(t *testing.T) {
	f, err := FigureByID(4)
	if err != nil || f.ID != 4 {
		t.Fatalf("FigureByID(4) = %+v, %v", f, err)
	}
	if _, err := FigureByID(99); err == nil {
		t.Fatal("FigureByID accepted unknown id")
	}
}

func TestRequiredScenarios(t *testing.T) {
	all := RequiredScenarios()
	if len(all) < 15 {
		t.Fatalf("all figures need %d scenarios, expected more", len(all))
	}
	only4 := RequiredScenarios(4)
	want := map[string]bool{"Deadline": true, "iDeadline": true, "DeadlineH": true, "iDeadlineH": true}
	if len(only4) != len(want) {
		t.Fatalf("fig4 scenarios = %v", only4)
	}
	for _, s := range only4 {
		if !want[s] {
			t.Fatalf("unexpected scenario %s for fig 4", s)
		}
	}
}

func TestRenderAllFigures(t *testing.T) {
	aggs := allAggregates()
	for _, f := range Figures() {
		out, err := Render(f, aggs)
		if err != nil {
			t.Fatalf("Render(fig %d): %v", f.ID, err)
		}
		if !strings.Contains(out, f.Title) {
			t.Fatalf("fig %d output missing title", f.ID)
		}
		for _, s := range f.Scenarios {
			if !strings.Contains(out, s) {
				t.Fatalf("fig %d output missing scenario %s", f.ID, s)
			}
		}
	}
}

func TestRenderMissingScenario(t *testing.T) {
	aggs := Aggregates{"Mixed": fakeAggregate("Mixed")}
	f, err := FigureByID(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Render(f, aggs); err == nil {
		t.Fatal("Render succeeded with missing scenarios")
	}
}

func TestTableRenderAndTSV(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	text := tbl.Render()
	if !strings.Contains(text, "T\n=") {
		t.Fatalf("missing title underline:\n%s", text)
	}
	if !strings.Contains(text, "333") {
		t.Fatal("missing row data")
	}
	tsv := tbl.TSV()
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) != 3 || lines[0] != "a\tbb" || lines[1] != "1\t2" {
		t.Fatalf("TSV = %q", tsv)
	}
}

func TestChartBasics(t *testing.T) {
	out := Chart("demo", time.Minute, map[string][]float64{
		"up":   {0, 1, 2, 3, 4},
		"down": {4, 3, 2, 1, 0},
	}, 40, 8)
	if !strings.Contains(out, "demo") {
		t.Fatal("missing chart title")
	}
	if !strings.Contains(out, "* down") || !strings.Contains(out, "+ up") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "+---") {
		t.Fatal("missing x axis")
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", time.Minute, nil, 40, 8)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestChartFlatSeries(t *testing.T) {
	out := Chart("flat", time.Minute, map[string][]float64{"z": {0, 0, 0}}, 20, 5)
	if !strings.Contains(out, "z") {
		t.Fatal("flat series missing from legend")
	}
}

func TestExtFiguresRender(t *testing.T) {
	aggs := make(Aggregates)
	for _, name := range ExtRequiredScenarios() {
		aggs[name] = fakeAggregate(name)
	}
	for _, f := range ExtFigures() {
		out, err := RenderAny(f, aggs)
		if err != nil {
			t.Fatalf("RenderAny(ext %d): %v", f.ID, err)
		}
		if !strings.Contains(out, f.Title) {
			t.Fatalf("ext figure %d output missing title", f.ID)
		}
	}
	if _, err := AnyFigureByID(101); err != nil {
		t.Fatal(err)
	}
	if _, err := AnyFigureByID(999); err == nil {
		t.Fatal("AnyFigureByID accepted unknown extension")
	}
	if _, err := AnyFigureByID(3); err != nil {
		t.Fatal("AnyFigureByID rejected paper figure")
	}
}

func TestRenderAnyPaperFigure(t *testing.T) {
	aggs := allAggregates()
	f, err := FigureByID(2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderAny(f, aggs)
	if err != nil || !strings.Contains(out, "Fig. 2") {
		t.Fatalf("RenderAny paper path broken: %v", err)
	}
}

func TestTSVForEveryFigure(t *testing.T) {
	aggs := allAggregates()
	for _, name := range ExtRequiredScenarios() {
		aggs[name] = fakeAggregate(name)
	}
	all := append(Figures(), ExtFigures()...)
	for _, f := range all {
		out, err := TSV(f, aggs)
		if err != nil {
			t.Fatalf("TSV(fig %d): %v", f.ID, err)
		}
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) < 2 {
			t.Fatalf("fig %d TSV has no data rows", f.ID)
		}
		cols := len(strings.Split(lines[0], "\t"))
		for i, line := range lines {
			if got := len(strings.Split(line, "\t")); got != cols {
				t.Fatalf("fig %d TSV line %d has %d columns, header has %d", f.ID, i, got, cols)
			}
		}
	}
	// Series figures export at full resolution: one row per bin.
	f1, err := FigureByID(1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := TSV(f1, aggs)
	if err != nil {
		t.Fatal(err)
	}
	rows := len(strings.Split(strings.TrimSpace(out), "\n")) - 1
	if rows != len(fakeAggregate("x").CompletedSeries) {
		t.Fatalf("fig 1 TSV rows = %d, want full series length", rows)
	}
}

func TestTSVMissingScenario(t *testing.T) {
	f, err := FigureByID(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TSV(f, Aggregates{}); err == nil {
		t.Fatal("TSV succeeded with no data")
	}
}
