package report

import (
	"fmt"
	"sort"

	"github.com/smartgrid/aria/internal/core"
)

// Extension figure IDs (beyond the paper's Figs. 1–10).
const (
	ExtBaselines    = 101 // ARiA vs centralized vs random meta-scheduling
	ExtOverlays     = 102 // overlay topology sensitivity (future work §VI)
	ExtChurn        = 103 // node churn with and without the failsafe
	ExtReservations = 104 // advance reservations + backfill impact
	ExtFaults       = 105 // injected link faults + delivery hardening
	ExtMembership   = 106 // liveness detection + overlay self-repair under churn
	ExtRecovery     = 107 // durable journal + crash-restart recovery (fail-recover)
	ExtDirectory    = 108 // gossip-fed resource directory + directed discovery
	ExtSharedState  = 109 // shared-state optimistic commits vs flood/directed/centralized
)

// ExtFigures lists the experiments this reproduction adds beyond the
// paper: the related-work baselines and the future-work items.
func ExtFigures() []Figure {
	return []Figure{
		{ID: ExtBaselines, Title: "Ext. A: Meta-scheduler comparison",
			Scenarios: []string{"Mixed", "iMixed", "Mixed+centralized", "Mixed+random", "MultiReq3"}},
		{ID: ExtOverlays, Title: "Ext. B: Overlay topology sensitivity",
			Scenarios: []string{"iMixed", "iMixed-random", "iMixed-ring", "iMixed-smallworld", "iMixed-scalefree"}},
		{ID: ExtChurn, Title: "Ext. C: Node churn and failsafe recovery",
			Scenarios: []string{"iMixed", "iChurn", "iChurnFailsafe"}},
		{ID: ExtReservations, Title: "Ext. D: Advance reservations",
			Scenarios: []string{"iMixed", "iReservations"}},
		{ID: ExtFaults, Title: "Ext. E: Link faults and delivery hardening",
			Scenarios: []string{"iMixed", "iLossy", "iPartition", "iLossyChurn"}},
		{ID: ExtMembership, Title: "Ext. F: Liveness detection and overlay self-repair",
			Scenarios: []string{"iMixed", "iChurn", "iChurnHeal", "iLossyChurnHeal"}},
		{ID: ExtRecovery, Title: "Ext. G: Durable journal and crash-restart recovery",
			Scenarios: []string{"iMixed", "iChurnHeal", "iCrashRestart-amnesiac", "iCrashRestart", "iLossyCrashRestart"}},
		{ID: ExtDirectory, Title: "Ext. H: Gossip-fed directory and directed discovery",
			Scenarios: []string{"iMixed", "iDirected", "iDirectedChurn"}},
		{ID: ExtSharedState, Title: "Ext. I: Shared-state optimistic scheduling",
			Scenarios: []string{
				"iSharedState", "iMixed", "iDirected",
				"iMixed+centralized", "iMixed+random", "iSharedStateChurn",
			}},
	}
}

// renderExtension renders an extension figure: the completion breakdown
// plus reliability (failed) and load-fairness columns that the extension
// experiments are about.
func renderExtension(f Figure, aggs Aggregates) (string, error) {
	build := buildExtensionTable
	switch f.ID {
	case ExtFaults:
		build = buildFaultTable
	case ExtMembership:
		build = buildMembershipTable
	case ExtRecovery:
		build = buildRecoveryTable
	case ExtDirectory:
		build = buildDirectoryTable
	case ExtSharedState:
		build = buildSharedStateTable
	}
	table, err := build(f, aggs)
	if err != nil {
		return "", err
	}
	return table.Render(), nil
}

// buildFaultTable renders the fault-injection figure: how much network
// abuse each scenario injected, and how the delivery hardening absorbed it.
func buildFaultTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "completed", "failed", "dropped", "duplicated",
			"assign retries", "recovered", "dup starts", "avg completion",
		},
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.Completed),
			fmtMeanStd(agg.Failed),
			fmtMeanStd(agg.FaultsDropped),
			fmtMeanStd(agg.FaultsDuplicated),
			fmtMeanStd(agg.AssignRetries),
			fmtMeanStd(agg.AssignRecoveries),
			fmtMeanStd(agg.DuplicateStarts),
			fmtDur(agg.AvgCompletionSec.Mean),
		)
	}
	return table, nil
}

// buildMembershipTable renders the liveness figure: how much the detector
// worked (suspicions, dead verdicts, repairs, escalated re-floods), what the
// churn cost (lost submissions), and what survived (completions).
func buildMembershipTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "completed", "failed", "lost submits", "suspected",
			"confirmed dead", "links repaired", "re-floods", "avg completion",
		},
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.Completed),
			fmtMeanStd(agg.Failed),
			fmtMeanStd(agg.SubmissionsLost),
			fmtMeanStd(agg.PeersSuspected),
			fmtMeanStd(agg.PeersDead),
			fmtMeanStd(agg.LinksRepaired),
			fmtMeanStd(agg.ReFloods),
			fmtDur(agg.AvgCompletionSec.Mean),
		)
	}
	return table, nil
}

// buildRecoveryTable renders the fail-recover figure: how often nodes came
// back (restarts), how much state the journal restored (jobs recovered,
// replay records), what churn still cost (lost submissions), and how the
// journaled arm compares with the amnesiac control on completions.
func buildRecoveryTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "completed", "failed", "lost submits", "restarts",
			"jobs recovered", "replay records", "avg completion",
		},
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.Completed),
			fmtMeanStd(agg.Failed),
			fmtMeanStd(agg.SubmissionsLost),
			fmtMeanStd(agg.Restarts),
			fmtMeanStd(agg.JobsRecovered),
			fmtMeanStd(agg.ReplayRecords),
			fmtDur(agg.AvgCompletionSec.Mean),
		)
	}
	return table, nil
}

// buildDirectoryTable renders the directed-discovery figure: how the
// gossip-fed cache split discovery between directed probes and floods, how
// often the fallback backstopped it, and what that did to REQUEST traffic
// per completed job (the headline economy of the extension).
func buildDirectoryTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "completed", "failed", "dir hits", "dir misses",
			"fallbacks", "probes", "evictions", "REQ msgs/job", "avg completion",
		},
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.Completed),
			fmtMeanStd(agg.Failed),
			fmtMeanStd(agg.DirectoryHits),
			fmtMeanStd(agg.DirectoryMisses),
			fmtMeanStd(agg.DirectoryFallbacks),
			fmtMeanStd(agg.DirectedProbes),
			fmtMeanStd(agg.DirectoryEvictions),
			fmt.Sprintf("%.1f", agg.TrafficMsgsPerJob[core.MsgRequest].Mean),
			fmtDur(agg.AvgCompletionSec.Mean),
		)
	}
	return table, nil
}

// buildSharedStateTable renders the architecture-comparison figure: the
// optimistic-commit arm against the flood, the directed-discovery cache,
// and the centralized/random related-work baselines — discovery messages
// per completed job (REQUEST floods plus COMMIT/CONFLICT unicasts), the
// commit arm's conflict economy, and completion time side by side.
func buildSharedStateTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "completed", "failed", "commits", "granted",
			"conflicts", "conflict rate", "fallbacks", "disc msgs/job", "avg completion",
		},
	}
	for i, agg := range picked {
		disc := agg.TrafficMsgsPerJob[core.MsgRequest].Mean +
			agg.TrafficMsgsPerJob[core.MsgCommit].Mean +
			agg.TrafficMsgsPerJob[core.MsgConflict].Mean
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.Completed),
			fmtMeanStd(agg.Failed),
			fmtMeanStd(agg.CommitsSent),
			fmtMeanStd(agg.CommitsGranted),
			fmtMeanStd(agg.CommitConflicts),
			fmt.Sprintf("%.2f", agg.ConflictRate.Mean),
			fmtMeanStd(agg.CommitFallbacks),
			fmt.Sprintf("%.1f", disc),
			fmtDur(agg.AvgCompletionSec.Mean),
		)
	}
	return table, nil
}

func buildExtensionTable(f Figure, aggs Aggregates) (Table, error) {
	picked, err := aggs.pick(f.Scenarios)
	if err != nil {
		return Table{}, err
	}
	table := Table{
		Title: f.Title,
		Header: []string{
			"scenario", "completed", "failed", "avg waiting", "avg completion",
			"reschedules", "dup starts", "jain index", "KB/node",
		},
	}
	for i, agg := range picked {
		table.AddRow(
			f.Scenarios[i],
			fmtMeanStd(agg.Completed),
			fmtMeanStd(agg.Failed),
			fmtDur(agg.AvgWaitingSec.Mean),
			fmtDur(agg.AvgCompletionSec.Mean),
			fmtMeanStd(agg.Reschedules),
			fmtMeanStd(agg.DuplicateStarts),
			fmt.Sprintf("%.3f", agg.LoadJainIndex.Mean),
			fmt.Sprintf("%.1f", agg.BytesPerNode.Mean/(1<<10)),
		)
	}
	return table, nil
}

// RenderAny renders a paper figure or an extension figure.
func RenderAny(f Figure, aggs Aggregates) (string, error) {
	if f.ID > 100 {
		return renderExtension(f, aggs)
	}
	return Render(f, aggs)
}

// AnyFigureByID finds a paper or extension figure definition.
func AnyFigureByID(id int) (Figure, error) {
	if id > 100 {
		for _, f := range ExtFigures() {
			if f.ID == id {
				return f, nil
			}
		}
		return Figure{}, fmt.Errorf("unknown extension figure %d", id)
	}
	return FigureByID(id)
}

// ExtRequiredScenarios returns the scenario set the extension figures
// need, sorted (baseline-suffixed names included).
func ExtRequiredScenarios(ids ...int) []string {
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	set := make(map[string]bool)
	for _, f := range ExtFigures() {
		if len(ids) > 0 && !want[f.ID] {
			continue
		}
		for _, s := range f.Scenarios {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
