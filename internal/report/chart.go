package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/stats"
)

// chartSymbols mark distinct series in ASCII charts.
var chartSymbols = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders several equally-binned series as an ASCII line chart with a
// legend. binWidth converts bin indices to time labels. width and height
// are the plot area dimensions in characters.
func Chart(title string, binWidth time.Duration, series map[string][]float64, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	names := make([]string, 0, len(series))
	maxLen := 0
	var maxVal float64
	for name, s := range series {
		names = append(names, name)
		if len(s) > maxLen {
			maxLen = len(s)
		}
		if m := stats.Max(s); m > maxVal {
			maxVal = m
		}
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if maxLen == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxVal == 0 {
		maxVal = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		sym := chartSymbols[si%len(chartSymbols)]
		s := series[name]
		for col := 0; col < width; col++ {
			idx := col * (maxLen - 1) / max(width-1, 1)
			if idx >= len(s) {
				continue
			}
			row := height - 1 - int(s[idx]/maxVal*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = sym
		}
	}

	yLabelW := len(fmt.Sprintf("%.0f", maxVal))
	for r, line := range grid {
		val := maxVal * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%*.0f |%s\n", yLabelW, val, string(line))
	}
	b.WriteString(strings.Repeat(" ", yLabelW+1))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	span := time.Duration(maxLen-1) * binWidth
	fmt.Fprintf(&b, "%*s 0%shorizon %s\n", yLabelW, "", strings.Repeat(" ", max(width-18, 1)), span.Round(time.Minute))
	for si, name := range names {
		fmt.Fprintf(&b, "  %c %s\n", chartSymbols[si%len(chartSymbols)], name)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
