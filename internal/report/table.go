// Package report renders the evaluation results as the tables and series
// the paper's figures plot: one generator per figure (Fig. 1–10), emitting
// aligned text, TSV, and ASCII charts.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// TSV renders the table as tab-separated values (header first).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render renders the table as aligned monospace text with its title.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
