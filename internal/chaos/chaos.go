// Package chaos provides fault-injecting TCP proxies for soaking a live
// grid. Each Link fronts one directed peer relationship: it listens on an
// ephemeral port, forwards every accepted connection to a fixed upstream
// address, and degrades the stream on command — hard cuts, blackholes
// (accepted but unread, so small writes keep "succeeding" until the kernel
// buffers fill: the gray failure), added latency, and bandwidth throttling.
//
// Because a proxy sits on exactly one direction of one link, a Fabric of
// per-directed-link proxies can express asymmetric partitions that the
// peers themselves cannot detect symmetrically — A's frames to B vanish
// while B's frames to A flow — without any cooperation from the processes
// under test.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a link's current failure state.
type Mode int

const (
	// ModeOpen forwards traffic (subject to delay/rate shaping).
	ModeOpen Mode = iota

	// ModeCut severs the link hard: existing connections are closed and
	// new ones are accepted then immediately closed, so senders see
	// explicit failures (the fail-stop partition).
	ModeCut

	// ModeBlackhole accepts and keeps connections but stops reading
	// them. Peers' small writes succeed into kernel buffers; only once
	// those fill do write deadlines start firing. This is the gray
	// partition — the failure mode that takes longest to detect.
	ModeBlackhole
)

// String implements fmt.Stringer for reports and logs.
func (m Mode) String() string {
	switch m {
	case ModeOpen:
		return "open"
	case ModeCut:
		return "cut"
	case ModeBlackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// pollInterval is how often pumps re-check the link state while idle or
// blackholed; it bounds how stale a mode change can be.
const pollInterval = 25 * time.Millisecond

// writeDeadline bounds a pump's forward write so one stuck downstream
// cannot pin the pump goroutine past Close.
const writeDeadline = 5 * time.Second

// holdMax bounds how long a reorder-held chunk waits for a successor to
// overtake it before the idle flush releases it anyway.
const holdMax = 10 * pollInterval

// Link is one directed fault-injecting proxy. All methods are safe for
// concurrent use.
type Link struct {
	name     string
	target   string
	from, to int // endpoints, set when the link belongs to a Fabric
	ln       net.Listener
	done     chan struct{}
	wg       sync.WaitGroup

	mu          sync.Mutex
	mode        Mode
	extraDelay  time.Duration
	bytesPerSec int
	deg         Degrade
	degRNG      *rand.Rand
	conns       map[net.Conn]struct{}
	closed      bool

	dropped, corrupted, duplicated, reordered atomic.Uint64
}

// NewLink starts a proxy on an ephemeral localhost port forwarding to
// target. The name labels the link in reports (conventionally "A->B").
func NewLink(name, target string) (*Link, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos link %s: %w", name, err)
	}
	l := &Link{
		name:   name,
		target: target,
		ln:     ln,
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Name reports the link's label.
func (l *Link) Name() string { return l.name }

// Addr reports the proxy's dialable address — the address the sending
// peer should be configured with instead of the real upstream.
func (l *Link) Addr() string { return l.ln.Addr().String() }

// Mode reports the link's current failure state.
func (l *Link) Mode() Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode
}

// SetMode switches the link's failure state. Entering ModeCut closes every
// established connection so both endpoints see the break immediately;
// leaving a blackhole lets buffered bytes drain in order.
func (l *Link) SetMode(m Mode) {
	l.mu.Lock()
	l.mode = m
	var victims []net.Conn
	if m == ModeCut {
		for c := range l.conns {
			victims = append(victims, c)
		}
		l.conns = make(map[net.Conn]struct{})
	}
	l.mu.Unlock()
	for _, c := range victims {
		_ = c.Close()
	}
}

// SetDelay adds a fixed latency to every forwarded chunk (the slow-peer
// window); zero restores native speed.
func (l *Link) SetDelay(d time.Duration) {
	l.mu.Lock()
	l.extraDelay = d
	l.mu.Unlock()
}

// SetRate throttles forwarding to roughly bytesPerSec (0 = unlimited).
func (l *Link) SetRate(bytesPerSec int) {
	l.mu.Lock()
	l.bytesPerSec = bytesPerSec
	l.mu.Unlock()
}

// Close stops the proxy: the listener and every proxied connection are
// closed and all pump goroutines joined.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	var victims []net.Conn
	for c := range l.conns {
		victims = append(victims, c)
	}
	l.conns = nil
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range victims {
		_ = c.Close()
	}
	l.wg.Wait()
	return err
}

// track registers a live proxied connection; it reports false when the
// link is already cut or closed (the caller must close the conn itself).
func (l *Link) track(c net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.mode == ModeCut {
		return false
	}
	l.conns[c] = struct{}{}
	return true
}

func (l *Link) untrack(c net.Conn) {
	l.mu.Lock()
	if l.conns != nil {
		delete(l.conns, c)
	}
	l.mu.Unlock()
}

// shaping snapshots the forwarding parameters.
func (l *Link) shaping() (Mode, time.Duration, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode, l.extraDelay, l.bytesPerSec
}

// sleep pauses for d unless the link closes first; it reports whether the
// link is still open.
func (l *Link) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-l.done:
		return false
	}
}

func (l *Link) acceptLoop() {
	defer l.wg.Done()
	for {
		client, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		mode := l.Mode()
		if mode == ModeCut {
			// Accept-then-close: the dialer's connect succeeds but the
			// first write fails — a crisp, detectable break.
			_ = client.Close()
			continue
		}
		upstream, err := net.DialTimeout("tcp", l.target, writeDeadline)
		if err != nil {
			_ = client.Close()
			continue
		}
		if !l.track(client) || !l.track(upstream) {
			_ = client.Close()
			_ = upstream.Close()
			continue
		}
		l.wg.Add(2)
		go l.pump(upstream, client)
		go l.pump(client, upstream)
	}
}

// pump forwards src → dst under the link's live shaping parameters. While
// blackholed it simply stops reading src, so the sender's kernel buffer —
// not the proxy — absorbs the backpressure. Probabilistic degradation is
// applied per forwarded chunk; a chunk held back for reordering is flushed
// on the next chunk (after it — the swap) or on an idle poll, so a hold
// never becomes an open-ended stall.
func (l *Link) pump(dst, src net.Conn) {
	defer l.wg.Done()
	defer l.untrack(src)
	defer l.untrack(dst)
	// Closing both sides on exit tears the whole proxied connection down
	// when either direction dies, mirroring a real TCP reset.
	defer func() { _ = src.Close(); _ = dst.Close() }()
	buf := make([]byte, 32<<10)
	var held []byte // chunk deferred by a reorder decision
	var heldAt time.Time
	forward := func(chunks ...[]byte) bool {
		for _, c := range chunks {
			_ = dst.SetWriteDeadline(time.Now().Add(writeDeadline))
			if _, werr := dst.Write(c); werr != nil {
				return false
			}
		}
		return true
	}
	for {
		mode, delay, rate := l.shaping()
		switch mode {
		case ModeCut:
			return
		case ModeBlackhole:
			if !l.sleep(pollInterval) {
				return
			}
			continue
		}
		_ = src.SetReadDeadline(time.Now().Add(pollInterval))
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			drop, dup, hold := l.degrade(chunk)
			if drop {
				chunk = nil
			}
			if chunk != nil {
				if delay > 0 && !l.sleep(delay) {
					return
				}
				// Pacing happens before the write so the receiver observes
				// the throttle, not just the sender's next chunk.
				if rate > 0 {
					pause := time.Duration(n) * time.Second / time.Duration(rate)
					if !l.sleep(pause) {
						return
					}
				}
				switch {
				case hold && held == nil:
					// Defer this chunk; the next one overtakes it.
					held = append([]byte(nil), chunk...)
					heldAt = time.Now()
				default:
					writes := [][]byte{chunk}
					if dup {
						writes = append(writes, chunk)
					}
					if held != nil {
						writes = append(writes, held)
						held = nil
					}
					if !forward(writes...) {
						return
					}
				}
			}
		}
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				// Idle flush: a held chunk waits through a few polls for a
				// successor to overtake it, then is released so a reorder
				// decision on the last chunk of a burst cannot stall the
				// stream indefinitely.
				if held != nil && time.Since(heldAt) >= holdMax {
					if !forward(held) {
						return
					}
					held = nil
				}
				continue // re-check mode and keep reading
			}
			return
		}
	}
}

// Fabric owns the full mesh of directed links for a grid: one proxy per
// (from, to) pair. It is how an orchestrator addresses "everything into
// node 3" or "everything between group A and group B".
type Fabric struct {
	mu    sync.Mutex
	links map[string]*Link // keyed "from->to"
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{links: make(map[string]*Link)}
}

func fabricKey(from, to int) string { return fmt.Sprintf("%d->%d", from, to) }

// Add creates the directed link from → to fronting target and returns it.
func (f *Fabric) Add(from, to int, target string) (*Link, error) {
	key := fabricKey(from, to)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.links[key]; dup {
		return nil, fmt.Errorf("chaos fabric: duplicate link %s", key)
	}
	l, err := NewLink(key, target)
	if err != nil {
		return nil, err
	}
	l.from, l.to = from, to
	f.links[key] = l
	return l, nil
}

// Link returns the directed link from → to, if present.
func (f *Fabric) Link(from, to int) (*Link, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l, ok := f.links[fabricKey(from, to)]
	return l, ok
}

// Isolate applies mode to every link INTO each listed node (traffic toward
// it), and — when oneWay is false — to every link out of it as well. With
// oneWay true the node goes deaf but keeps transmitting: the asymmetric
// partition.
func (f *Fabric) Isolate(nodes []int, mode Mode, oneWay bool) {
	in := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	for _, l := range f.snapshot() {
		// Links inside the isolated set stay open: the set is cut off
		// from the rest, not from itself.
		if in[l.from] && in[l.to] {
			continue
		}
		if in[l.to] || (!oneWay && in[l.from]) {
			l.SetMode(mode)
		}
	}
}

// Heal reopens every link and removes all delay/rate shaping and
// probabilistic degradation. Degradation counters are preserved for the
// run's report.
func (f *Fabric) Heal() {
	for _, l := range f.snapshot() {
		l.SetMode(ModeOpen)
		l.SetDelay(0)
		l.SetRate(0)
		l.SetDegrade(Degrade{})
	}
}

// SlowPeer adds latency to every link touching each listed node in either
// direction (the slow-peer window); d = 0 removes it.
func (f *Fabric) SlowPeer(nodes []int, d time.Duration) {
	in := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	for _, l := range f.snapshot() {
		if in[l.from] || in[l.to] {
			l.SetDelay(d)
		}
	}
}

// Close tears down every link.
func (f *Fabric) Close() {
	for _, l := range f.snapshot() {
		_ = l.Close()
	}
}

func (f *Fabric) snapshot() []*Link {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Link, 0, len(f.links))
	for _, l := range f.links {
		out = append(out, l)
	}
	return out
}
