package chaos

import (
	"hash/fnv"
	"math/rand"
)

// Degrade is a link's probabilistic degradation profile — the netem-style
// counterpart to the deterministic cut/blackhole/slow modes, and composable
// with them. Each probability is evaluated independently per forwarded
// chunk, so the rates compose: a chunk can be both corrupted and
// duplicated. Because the proxy sits on a TCP byte stream rather than a
// packet boundary, a dropped, duplicated, or swapped chunk scrambles the
// receiver's frame alignment exactly like wire damage would — which is the
// point: the protocol's framing layer must reject the garbage cleanly and
// resynchronize on a fresh connection.
type Degrade struct {
	// Loss is the probability a forwarded chunk is silently dropped.
	Loss float64

	// Corrupt is the probability 1–3 bytes of the chunk are bit-flipped.
	Corrupt float64

	// Dup is the probability the chunk is written twice back-to-back.
	Dup float64

	// Reorder is the probability the chunk is held back and emitted after
	// the next one (a two-chunk swap). A held chunk is flushed on idle so
	// reordering never turns into an unbounded stall.
	Reorder float64

	// Seed makes the fault sequence reproducible; SetDegrade derives the
	// link's RNG from it.
	Seed int64
}

// active reports whether any degradation probability is armed.
func (d Degrade) active() bool {
	return d.Loss > 0 || d.Corrupt > 0 || d.Dup > 0 || d.Reorder > 0
}

// DegradeStats counts injected degradations, per link or fabric-wide. Every
// counter is a fault the run provably exercised — soak reports surface them
// so "zero corrupted-frame rejections" can be told apart from "corruption
// was never injected".
type DegradeStats struct {
	Dropped    uint64 `json:"dropped"`
	Corrupted  uint64 `json:"corrupted"`
	Duplicated uint64 `json:"duplicated"`
	Reordered  uint64 `json:"reordered"`
}

// Total sums every injected degradation.
func (s DegradeStats) Total() uint64 {
	return s.Dropped + s.Corrupted + s.Duplicated + s.Reordered
}

// add merges o into s.
func (s *DegradeStats) add(o DegradeStats) {
	s.Dropped += o.Dropped
	s.Corrupted += o.Corrupted
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
}

// SetDegrade arms (or, with a zero profile, disarms) probabilistic
// degradation on the link. The fault sequence is derived from d.Seed, so
// the same seed yields the same decision stream against the same traffic.
func (l *Link) SetDegrade(d Degrade) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deg = d
	if d.active() {
		l.degRNG = rand.New(rand.NewSource(d.Seed))
	} else {
		l.degRNG = nil
	}
}

// Stats snapshots the link's injected-degradation counters.
func (l *Link) Stats() DegradeStats {
	return DegradeStats{
		Dropped:    l.dropped.Load(),
		Corrupted:  l.corrupted.Load(),
		Duplicated: l.duplicated.Load(),
		Reordered:  l.reordered.Load(),
	}
}

// degrade decides one forwarded chunk's fate under the link's current
// profile. It may corrupt chunk in place and reports whether to drop it,
// write it twice, or hold it back for a swap with the next chunk.
func (l *Link) degrade(chunk []byte) (drop, dup, hold bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rng := l.degRNG
	if rng == nil {
		return false, false, false
	}
	d := l.deg
	if d.Loss > 0 && rng.Float64() < d.Loss {
		l.dropped.Add(1)
		return true, false, false
	}
	if d.Corrupt > 0 && rng.Float64() < d.Corrupt {
		flips := 1 + rng.Intn(3)
		for i := 0; i < flips && len(chunk) > 0; i++ {
			chunk[rng.Intn(len(chunk))] ^= byte(1 << rng.Intn(8))
		}
		l.corrupted.Add(1)
	}
	if d.Dup > 0 && rng.Float64() < d.Dup {
		l.duplicated.Add(1)
		dup = true
	}
	if d.Reorder > 0 && rng.Float64() < d.Reorder {
		l.reordered.Add(1)
		hold = true
	}
	return false, dup, hold
}

// DegradeAll applies one degradation profile to every link in the fabric,
// deriving a distinct per-link seed from d.Seed and the link's name so no
// two links replay the same fault sequence. A zero profile disarms every
// link. Counters are not reset: they accumulate for the run's report.
func (f *Fabric) DegradeAll(d Degrade) {
	for _, l := range f.snapshot() {
		ld := d
		if ld.active() {
			h := fnv.New64a()
			_, _ = h.Write([]byte(l.name))
			ld.Seed = d.Seed ^ int64(h.Sum64())
		}
		l.SetDegrade(ld)
	}
}

// DegradeStats sums injected-degradation counters across every link.
func (f *Fabric) DegradeStats() DegradeStats {
	var out DegradeStats
	for _, l := range f.snapshot() {
		s := l.Stats()
		out.add(s)
	}
	return out
}
