package chaos

import (
	"os"
	"testing"

	"github.com/smartgrid/aria/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: every proxy spins up an
// accept loop and two pumps per connection, and all of them must be joined
// by Close.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
