package chaos

import (
	"net"
	"testing"
	"time"
)

// sink starts an upstream TCP server pushing every received chunk onto the
// returned channel. It is torn down via t.Cleanup.
func sink(t *testing.T) (addr string, got <-chan []byte) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan []byte, 64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						chunk := make([]byte, n)
						copy(chunk, buf[:n])
						ch <- chunk
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String(), ch
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func waitChunk(t *testing.T, ch <-chan []byte, within time.Duration) []byte {
	t.Helper()
	select {
	case chunk := <-ch:
		return chunk
	case <-time.After(within):
		t.Fatal("no chunk arrived in time")
		return nil
	}
}

func TestOpenForwards(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn := dialT(t, l.Addr())
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if string(waitChunk(t, got, 2*time.Second)) != "hello" {
		t.Fatal("forwarded bytes corrupted")
	}
}

func TestCutSeversEstablishedAndNew(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn := dialT(t, l.Addr())
	if _, err := conn.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	waitChunk(t, got, 2*time.Second)

	l.SetMode(ModeCut)
	// The established connection dies: reads hit EOF/reset promptly.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on a cut link succeeded")
	}
	// A new connection is accepted then dropped — nothing reaches the sink.
	fresh := dialT(t, l.Addr())
	_, _ = fresh.Write([]byte("lost"))
	select {
	case chunk := <-got:
		t.Fatalf("cut link forwarded %q", chunk)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestBlackholeHoldsThenDrains(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn := dialT(t, l.Addr())
	if _, err := conn.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	waitChunk(t, got, 2*time.Second)

	l.SetMode(ModeBlackhole)
	// Give the pump a beat to observe the mode switch before writing.
	time.Sleep(2 * pollInterval)
	if _, err := conn.Write([]byte("held")); err != nil {
		t.Fatalf("small write into a blackhole failed: %v", err)
	}
	select {
	case chunk := <-got:
		t.Fatalf("blackholed link forwarded %q", chunk)
	case <-time.After(300 * time.Millisecond):
	}
	// Reopening drains the kernel-buffered bytes in order.
	l.SetMode(ModeOpen)
	if string(waitChunk(t, got, 2*time.Second)) != "held" {
		t.Fatal("buffered bytes lost or corrupted after heal")
	}
}

func TestDelayShapesLatency(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const delay = 150 * time.Millisecond
	l.SetDelay(delay)
	conn := dialT(t, l.Addr())
	start := time.Now()
	if _, err := conn.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	waitChunk(t, got, 5*time.Second)
	if took := time.Since(start); took < delay {
		t.Fatalf("delivery took %v, want at least %v", took, delay)
	}
}

func TestRateThrottles(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetRate(16 << 10) // 16 KiB/s
	conn := dialT(t, l.Addr())
	payload := make([]byte, 8<<10) // 8 KiB ⇒ ≥ ~500ms at 16 KiB/s
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	received := 0
	for received < len(payload) {
		received += len(waitChunk(t, got, 10*time.Second))
	}
	if took := time.Since(start); took < 250*time.Millisecond {
		t.Fatalf("8KiB crossed a 16KiB/s link in %v", took)
	}
}

func TestFabricOneWayIsolation(t *testing.T) {
	addr0, got0 := sink(t)
	addr1, got1 := sink(t)
	f := NewFabric()
	defer f.Close()
	l01, err := f.Add(0, 1, addr1)
	if err != nil {
		t.Fatal(err)
	}
	l10, err := f.Add(1, 0, addr0)
	if err != nil {
		t.Fatal(err)
	}

	// Node 1 goes deaf: traffic toward it is cut, its own sends flow.
	f.Isolate([]int{1}, ModeCut, true)
	if l01.Mode() != ModeCut {
		t.Fatal("link into the isolated node not cut")
	}
	if l10.Mode() != ModeOpen {
		t.Fatal("link out of the one-way-isolated node was cut")
	}
	out := dialT(t, l10.Addr())
	if _, err := out.Write([]byte("outbound")); err != nil {
		t.Fatal(err)
	}
	if string(waitChunk(t, got0, 2*time.Second)) != "outbound" {
		t.Fatal("outbound traffic from deaf node lost")
	}
	in := dialT(t, l01.Addr())
	_, _ = in.Write([]byte("inbound"))
	select {
	case chunk := <-got1:
		t.Fatalf("deaf node received %q", chunk)
	case <-time.After(300 * time.Millisecond):
	}

	// Two-way isolation cuts both directions.
	f.Heal()
	f.Isolate([]int{1}, ModeCut, false)
	if l01.Mode() != ModeCut || l10.Mode() != ModeCut {
		t.Fatal("two-way isolation left a direction open")
	}

	// Heal reopens everything.
	f.Heal()
	if l01.Mode() != ModeOpen || l10.Mode() != ModeOpen {
		t.Fatal("heal left a link cut")
	}
	healed := dialT(t, l01.Addr())
	if _, err := healed.Write([]byte("post-heal")); err != nil {
		t.Fatal(err)
	}
	if string(waitChunk(t, got1, 2*time.Second)) != "post-heal" {
		t.Fatal("healed link does not forward")
	}
}

func TestFabricSlowPeer(t *testing.T) {
	addr1, _ := sink(t)
	f := NewFabric()
	defer f.Close()
	l01, err := f.Add(0, 1, addr1)
	if err != nil {
		t.Fatal(err)
	}
	f.SlowPeer([]int{1}, 100*time.Millisecond)
	if _, d, _ := l01.shaping(); d != 100*time.Millisecond {
		t.Fatalf("slow-peer delay %v, want 100ms", d)
	}
	f.Heal()
	if _, d, _ := l01.shaping(); d != 0 {
		t.Fatalf("heal left delay %v", d)
	}
}

func TestDuplicateLinkRejected(t *testing.T) {
	addr, _ := sink(t)
	f := NewFabric()
	defer f.Close()
	if _, err := f.Add(0, 1, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(0, 1, addr); err == nil {
		t.Fatal("duplicate directed link accepted")
	}
}

func TestDegradeLossDropsEverything(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetDegrade(Degrade{Loss: 1, Seed: 7})
	conn := dialT(t, l.Addr())
	for i := 0; i < 5; i++ {
		if _, err := conn.Write([]byte("doomed")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * pollInterval)
	}
	select {
	case chunk := <-got:
		t.Fatalf("lossy link forwarded %q", chunk)
	case <-time.After(300 * time.Millisecond):
	}
	if s := l.Stats(); s.Dropped == 0 {
		t.Fatalf("no drops counted: %+v", s)
	}
}

func TestDegradeCorruptFlipsBytes(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetDegrade(Degrade{Corrupt: 1, Seed: 7})
	conn := dialT(t, l.Addr())
	sent := []byte("pristine-payload-pristine-payload")
	if _, err := conn.Write(sent); err != nil {
		t.Fatal(err)
	}
	received := waitChunk(t, got, 2*time.Second)
	if string(received) == string(sent) {
		t.Fatal("corrupting link forwarded pristine bytes")
	}
	if len(received) != len(sent) {
		t.Fatalf("corruption changed length: %d != %d", len(received), len(sent))
	}
	if s := l.Stats(); s.Corrupted == 0 {
		t.Fatalf("no corruptions counted: %+v", s)
	}
}

func TestDegradeDupDoublesBytes(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetDegrade(Degrade{Dup: 1, Seed: 7})
	conn := dialT(t, l.Addr())
	sent := []byte("twice")
	if _, err := conn.Write(sent); err != nil {
		t.Fatal(err)
	}
	received := 0
	deadline := time.After(2 * time.Second)
	for received < 2*len(sent) {
		select {
		case chunk := <-got:
			received += len(chunk)
		case <-deadline:
			t.Fatalf("received %d bytes, want %d (duplicated)", received, 2*len(sent))
		}
	}
	if s := l.Stats(); s.Duplicated == 0 {
		t.Fatalf("no duplications counted: %+v", s)
	}
}

func TestDegradeReorderSwapsChunks(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetDegrade(Degrade{Reorder: 1, Seed: 7})
	conn := dialT(t, l.Addr())
	// Two distinct chunks separated by a pause so the pump reads them as
	// separate reads: with Reorder=1 the first is held and the second
	// overtakes it.
	if _, err := conn.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * pollInterval)
	if _, err := conn.Write([]byte("second")); err != nil {
		t.Fatal(err)
	}
	var all []byte
	deadline := time.After(2 * time.Second)
	for len(all) < len("first")+len("second") {
		select {
		case chunk := <-got:
			all = append(all, chunk...)
		case <-deadline:
			t.Fatalf("received only %q", all)
		}
	}
	if string(all) == "firstsecond" {
		t.Fatal("reordering link preserved chunk order")
	}
	if string(all) != "secondfirst" {
		t.Fatalf("unexpected byte stream %q", all)
	}
	if s := l.Stats(); s.Reordered == 0 {
		t.Fatalf("no reorders counted: %+v", s)
	}
}

func TestDegradeIdleFlushReleasesHeldChunk(t *testing.T) {
	addr, got := sink(t)
	l, err := NewLink("a->b", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetDegrade(Degrade{Reorder: 1, Seed: 7})
	conn := dialT(t, l.Addr())
	// A lone chunk is held by the reorder decision but must still arrive
	// via the idle flush — a reorder must never become a stall.
	if _, err := conn.Write([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	if string(waitChunk(t, got, 2*time.Second)) != "lonely" {
		t.Fatal("held chunk never flushed on idle")
	}
}

func TestFabricDegradeAllAndHeal(t *testing.T) {
	addr0, _ := sink(t)
	addr1, got1 := sink(t)
	f := NewFabric()
	defer f.Close()
	if _, err := f.Add(0, 1, addr1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(1, 0, addr0); err != nil {
		t.Fatal(err)
	}
	f.DegradeAll(Degrade{Loss: 1, Seed: 42})
	l01, _ := f.Link(0, 1)
	conn := dialT(t, l01.Addr())
	if _, err := conn.Write([]byte("swallowed")); err != nil {
		t.Fatal(err)
	}
	select {
	case chunk := <-got1:
		t.Fatalf("degraded fabric forwarded %q", chunk)
	case <-time.After(300 * time.Millisecond):
	}
	if s := f.DegradeStats(); s.Dropped == 0 {
		t.Fatalf("fabric counted no drops: %+v", s)
	}

	// Heal disarms degradation but keeps the counters.
	f.Heal()
	healed := dialT(t, l01.Addr())
	if _, err := healed.Write([]byte("through")); err != nil {
		t.Fatal(err)
	}
	if string(waitChunk(t, got1, 2*time.Second)) != "through" {
		t.Fatal("healed fabric does not forward cleanly")
	}
	if s := f.DegradeStats(); s.Dropped == 0 {
		t.Fatal("heal reset the degradation counters")
	}
}
