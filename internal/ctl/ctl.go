// Package ctl is the control-plane API of a live grid node: a tiny
// JSON-over-TCP request/response protocol that lets operators submit jobs
// to a node (making it the ARiA initiator) and inspect its state. It is
// what cmd/ariactl speaks to cmd/ariad.
package ctl

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/trace"
)

// Op selects a control operation.
type Op string

// Control operations.
const (
	OpSubmit    Op = "submit"
	OpStatus    Op = "status"
	OpQueue     Op = "queue"
	OpTrace     Op = "trace"
	OpDirectory Op = "directory"
	OpMembers   Op = "members"
)

// Request is one control-plane request.
type Request struct {
	Op Op `json:"op"`

	// Submit fields.
	Arch        string `json:"arch,omitempty"`
	OS          string `json:"os,omitempty"`
	MinMemoryGB int    `json:"minMemoryGB,omitempty"`
	MinDiskGB   int    `json:"minDiskGB,omitempty"`
	// ERT is a Go duration string ("2h30m").
	ERT string `json:"ert,omitempty"`
	// Deadline, when non-empty, is a duration from now ("10h") and makes
	// the job deadline-class.
	Deadline string `json:"deadline,omitempty"`
	Priority int    `json:"priority,omitempty"`

	// StartAfter, when non-empty, is an advance reservation: a duration
	// from now before which the job may not start ("30m").
	StartAfter string `json:"startAfter,omitempty"`

	// UUID selects the job for trace queries.
	UUID string `json:"uuid,omitempty"`
}

// Response is one control-plane reply.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Submit reply.
	UUID string `json:"uuid,omitempty"`

	// Status reply.
	NodeID   int32  `json:"nodeId,omitempty"`
	Profile  string `json:"profile,omitempty"`
	Policy   string `json:"policy,omitempty"`
	QueueLen int    `json:"queueLen,omitempty"`
	Busy     bool   `json:"busy,omitempty"`
	Alive    bool   `json:"alive,omitempty"`

	// Queue reply: the running job (if any) and the queued job UUIDs in
	// scheduled order.
	RunningUUID string   `json:"runningUUID,omitempty"`
	Queued      []string `json:"queued,omitempty"`

	// Trace reply: the number of span events this node retains for the
	// job and their causal tree, rendered one span per line.
	TraceCount int    `json:"traceCount,omitempty"`
	Tree       string `json:"tree,omitempty"`

	// Directory reply: the node's live resource-directory entries in
	// ascending node-ID order.
	Directory []DirectoryEntry `json:"directory,omitempty"`

	// Members reply: the node's liveness verdict for every tracked peer
	// in ascending node-ID order (empty when the membership plane is
	// off). Soak auditors poll this for convergence after a heal.
	Members []MemberEntry `json:"members,omitempty"`
}

// MemberEntry is one peer's liveness verdict in a members reply.
type MemberEntry struct {
	NodeID int32  `json:"nodeId"`
	State  string `json:"state"` // "alive", "suspect", or "dead"
}

// DirectoryEntry is one cached remote profile in a directory reply.
type DirectoryEntry struct {
	NodeID      int32  `json:"nodeId"`
	Profile     string `json:"profile"`
	Incarnation uint64 `json:"incarnation"`
	// Age is how stale the entry is (duration string, e.g. "42s").
	Age string `json:"age"`
	// Load is the cached running+queued job hint, as stale as Age says.
	Load int `json:"load"`
}

// TraceSource serves retained trace-plane events for trace queries; a
// *trace.Ring or *trace.Collector satisfies it.
type TraceSource interface {
	ByUUID(uuid job.UUID) []core.TraceEvent
}

// Server answers control requests for one protocol node.
type Server struct {
	node  *core.Node
	clock func() time.Duration
	ln    net.Listener
	wg    sync.WaitGroup

	mu    sync.Mutex
	rng   *rand.Rand
	trace TraceSource
}

// NewServer starts serving control requests on ln for node. clock supplies
// the node's notion of now (submission timestamps); rng feeds job UUIDs.
func NewServer(ln net.Listener, node *core.Node, clock func() time.Duration, rng *rand.Rand) *Server {
	s := &Server{node: node, clock: clock, ln: ln, rng: rng}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr reports the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetTraceSource arms trace queries with the node's retained span events.
// Without a source, OpTrace reports that tracing is disabled.
func (s *Server) SetTraceSource(ts TraceSource) {
	s.mu.Lock()
	s.trace = ts
	s.mu.Unlock()
}

// Close stops the listener and waits for in-flight requests.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { _ = conn.Close() }()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var req Request
	if err := dec.Decode(&req); err != nil {
		_ = enc.Encode(Response{Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	_ = enc.Encode(s.Handle(req))
}

// Handle executes one control request.
func (s *Server) Handle(req Request) Response {
	switch req.Op {
	case OpSubmit:
		return s.handleSubmit(req)
	case OpStatus:
		return Response{
			OK:       true,
			NodeID:   int32(s.node.ID()),
			Profile:  s.node.Profile().String(),
			Policy:   s.node.Policy().String(),
			QueueLen: s.node.QueueLen(),
			Busy:     s.node.Busy(),
			Alive:    s.node.Alive(),
		}
	case OpQueue:
		resp := Response{OK: true, NodeID: int32(s.node.ID())}
		if uuid, ok := s.node.Running(); ok {
			resp.RunningUUID = string(uuid)
		}
		for _, uuid := range s.node.QueuedJobs() {
			resp.Queued = append(resp.Queued, string(uuid))
		}
		return resp
	case OpTrace:
		return s.handleTrace(req)
	case OpDirectory:
		resp := Response{OK: true, NodeID: int32(s.node.ID())}
		for _, d := range s.node.DirectorySnapshot() {
			resp.Directory = append(resp.Directory, DirectoryEntry{
				NodeID:      int32(d.Node),
				Profile:     d.Profile.String(),
				Incarnation: d.Incarnation,
				Age:         d.Age.String(),
				Load:        d.Load,
			})
		}
		return resp
	case OpMembers:
		resp := Response{OK: true, NodeID: int32(s.node.ID())}
		for _, p := range s.node.MembershipSnapshot() {
			resp.Members = append(resp.Members, MemberEntry{
				NodeID: int32(p.Peer),
				State:  p.State,
			})
		}
		return resp
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) handleTrace(req Request) Response {
	s.mu.Lock()
	ts := s.trace
	s.mu.Unlock()
	if ts == nil {
		return Response{Error: "tracing not enabled on this node"}
	}
	if req.UUID == "" {
		return Response{Error: "trace query without uuid"}
	}
	uuid := job.UUID(req.UUID)
	events := ts.ByUUID(uuid)
	return Response{
		OK:         true,
		NodeID:     int32(s.node.ID()),
		UUID:       req.UUID,
		TraceCount: len(events),
		Tree:       trace.FormatJob(events, uuid),
	}
}

func (s *Server) handleSubmit(req Request) Response {
	p, err := s.buildProfile(req)
	if err != nil {
		return Response{Error: err.Error()}
	}
	if err := s.node.Submit(p); err != nil {
		return Response{Error: err.Error()}
	}
	return Response{OK: true, UUID: string(p.UUID)}
}

func (s *Server) buildProfile(req Request) (job.Profile, error) {
	arch, err := resource.ParseArchitecture(req.Arch)
	if err != nil {
		return job.Profile{}, err
	}
	osKind, err := resource.ParseOS(req.OS)
	if err != nil {
		return job.Profile{}, err
	}
	ert, err := time.ParseDuration(req.ERT)
	if err != nil {
		return job.Profile{}, fmt.Errorf("parse ert: %w", err)
	}
	now := s.clock()
	p := job.Profile{
		UUID: s.newUUID(),
		Req: resource.Requirements{
			Arch: arch, OS: osKind,
			MinMemoryGB: req.MinMemoryGB, MinDiskGB: req.MinDiskGB,
		},
		ERT:         ert,
		Class:       job.ClassBatch,
		SubmittedAt: now,
		Priority:    req.Priority,
	}
	if req.Deadline != "" {
		slack, err := time.ParseDuration(req.Deadline)
		if err != nil {
			return job.Profile{}, fmt.Errorf("parse deadline: %w", err)
		}
		p.Class = job.ClassDeadline
		p.Deadline = now + slack
	}
	if req.StartAfter != "" {
		wait, err := time.ParseDuration(req.StartAfter)
		if err != nil {
			return job.Profile{}, fmt.Errorf("parse startAfter: %w", err)
		}
		p.EarliestStart = now + wait
	}
	if err := p.Validate(); err != nil {
		return job.Profile{}, err
	}
	return p, nil
}

func (s *Server) newUUID() job.UUID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return job.NewUUID(s.rng)
}

// Call dials a control endpoint and performs one request.
func Call(addr string, req Request, timeout time.Duration) (Response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Response{}, err
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return Response{}, err
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, fmt.Errorf("send request: %w", err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("read response: %w", err)
	}
	return resp, nil
}
