package ctl

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/transport"
)

// testServer stands up a 2-node inproc grid with a control server on node 0.
func testServer(t *testing.T) (*Server, *transport.InprocCluster) {
	t.Helper()
	cluster := transport.NewInprocCluster(1, nil)
	t.Cleanup(cluster.Close)
	profile := resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.5,
	}
	cfg := core.DefaultConfig()
	cfg.AcceptTimeout = 100 * time.Millisecond
	art := job.ARTModel{Mode: job.DriftNone}
	n0, err := cluster.AddNode(0, profile, sched.FCFS, cfg, nil, art)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.AddNode(1, profile, sched.FCFS, cfg, nil, art); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	cluster.StartAll()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	srv := NewServer(ln, n0, func() time.Duration { return time.Since(start) }, rand.New(rand.NewSource(7)))
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, cluster
}

func TestSubmitOverControlPlane(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := Call(srv.Addr(), Request{
		Op: OpSubmit, Arch: "AMD64", OS: "LINUX",
		MinMemoryGB: 1, MinDiskGB: 1, ERT: "50ms",
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || !resp.OK {
		t.Fatalf("submit failed: %+v", resp)
	}
	if !job.UUID(resp.UUID).Valid() {
		t.Fatalf("invalid uuid %q", resp.UUID)
	}
}

func TestSubmitDeadlineJob(t *testing.T) {
	srv, _ := testServer(t)
	// The test grid has batch schedulers, but submission itself must
	// accept the deadline job (the initiator need not match).
	resp, err := Call(srv.Addr(), Request{
		Op: OpSubmit, Arch: "AMD64", OS: "LINUX",
		MinMemoryGB: 1, MinDiskGB: 1, ERT: "50ms", Deadline: "10s",
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("deadline submit failed: %+v", resp)
	}
}

func TestStatusOverControlPlane(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := Call(srv.Addr(), Request{Op: OpStatus}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Alive {
		t.Fatalf("status: %+v", resp)
	}
	if resp.Policy != "FCFS" || resp.NodeID != 0 {
		t.Fatalf("status fields wrong: %+v", resp)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, _ := testServer(t)
	tests := []struct {
		name string
		req  Request
	}{
		{"bad arch", Request{Op: OpSubmit, Arch: "Z80", OS: "LINUX", MinMemoryGB: 1, MinDiskGB: 1, ERT: "1m"}},
		{"bad os", Request{Op: OpSubmit, Arch: "AMD64", OS: "HAIKU", MinMemoryGB: 1, MinDiskGB: 1, ERT: "1m"}},
		{"bad ert", Request{Op: OpSubmit, Arch: "AMD64", OS: "LINUX", MinMemoryGB: 1, MinDiskGB: 1, ERT: "soon"}},
		{"zero memory", Request{Op: OpSubmit, Arch: "AMD64", OS: "LINUX", MinDiskGB: 1, ERT: "1m"}},
		{"bad deadline", Request{Op: OpSubmit, Arch: "AMD64", OS: "LINUX", MinMemoryGB: 1, MinDiskGB: 1, ERT: "1m", Deadline: "eventually"}},
		{"unknown op", Request{Op: "frobnicate"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := Call(srv.Addr(), tt.req, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Error == "" {
				t.Fatalf("request %+v accepted", tt.req)
			}
		})
	}
}

func TestSubmittedJobCompletesOnGrid(t *testing.T) {
	cluster := transport.NewInprocCluster(2, nil)
	defer cluster.Close()
	done := make(chan overlay.NodeID, 1)
	obs := &completionObs{done: done}
	profile := resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: 1.5,
	}
	cfg := core.DefaultConfig()
	cfg.AcceptTimeout = 100 * time.Millisecond
	art := job.ARTModel{Mode: job.DriftNone}
	n0, err := cluster.AddNode(0, profile, sched.FCFS, cfg, obs, art)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.AddNode(1, profile, sched.FCFS, cfg, obs, art); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	cluster.StartAll()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	srv := NewServer(ln, n0, func() time.Duration { return time.Since(start) }, rand.New(rand.NewSource(7)))
	defer func() { _ = srv.Close() }()

	resp, err := Call(srv.Addr(), Request{
		Op: OpSubmit, Arch: "AMD64", OS: "LINUX",
		MinMemoryGB: 1, MinDiskGB: 1, ERT: "30ms",
	}, 5*time.Second)
	if err != nil || resp.Error != "" {
		t.Fatalf("submit: %v %+v", err, resp)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("control-plane job never completed on the grid")
	}
}

type completionObs struct {
	core.NopObserver

	done chan overlay.NodeID
}

func (o *completionObs) JobCompleted(_ time.Duration, node overlay.NodeID, _ *job.Job) {
	select {
	case o.done <- node:
	default:
	}
}

func TestSubmitWithReservation(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := Call(srv.Addr(), Request{
		Op: OpSubmit, Arch: "AMD64", OS: "LINUX",
		MinMemoryGB: 1, MinDiskGB: 1, ERT: "1h", StartAfter: "30m",
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || !resp.OK {
		t.Fatalf("reserved submit failed: %+v", resp)
	}
	bad, err := Call(srv.Addr(), Request{
		Op: OpSubmit, Arch: "AMD64", OS: "LINUX",
		MinMemoryGB: 1, MinDiskGB: 1, ERT: "1h", StartAfter: "whenever",
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Error == "" {
		t.Fatal("bad startAfter accepted")
	}
}

func TestQueueOverControlPlane(t *testing.T) {
	srv, _ := testServer(t)
	// Fill the queue through the control plane with slow jobs.
	for i := 0; i < 3; i++ {
		resp, err := Call(srv.Addr(), Request{
			Op: OpSubmit, Arch: "AMD64", OS: "LINUX",
			MinMemoryGB: 1, MinDiskGB: 1, ERT: "1h",
		}, 5*time.Second)
		if err != nil || resp.Error != "" {
			t.Fatalf("submit: %v %+v", err, resp)
		}
	}
	// Give discovery time to settle.
	time.Sleep(500 * time.Millisecond)
	resp, err := Call(srv.Addr(), Request{Op: OpQueue}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("queue op failed: %+v", resp)
	}
	total := len(resp.Queued)
	if resp.RunningUUID != "" {
		total++
	}
	if total == 0 {
		t.Fatal("no jobs visible on either test node's queue endpoint (placement may vary, but node 0 submitted everything)")
	}
}
