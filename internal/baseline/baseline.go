// Package baseline implements the comparison meta-schedulers the paper's
// related-work section positions ARiA against: a centralized omniscient
// scheduler with a global view of every node's state (the traditional grid
// model, e.g. Globus/UNICORE-style), and a random-assignment scheduler as a
// lower bound. Both reuse the same nodes, overlay, workload, and metrics as
// the ARiA scenarios — only the assignment decision differs, so the
// comparison isolates the meta-scheduling policy.
package baseline

import (
	"fmt"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/scenario"
	"github.com/smartgrid/aria/internal/sched"
)

// Kind selects a baseline meta-scheduler.
type Kind int

// Baseline meta-schedulers.
const (
	// Centralized assigns each job to the globally cheapest node, with a
	// perfectly fresh view of every queue — an upper bound no distributed
	// protocol can see past.
	Centralized Kind = iota + 1

	// Random assigns each job to a uniformly random matching node — the
	// lower bound a discovery protocol must beat.
	Random
)

// String names the baseline.
func (k Kind) String() string {
	switch k {
	case Centralized:
		return "centralized"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k names a known baseline.
func (k Kind) Valid() bool {
	return k == Centralized || k == Random
}

// assignmentLatency models the client→scheduler→node delivery of a
// centralized deployment (one wide-area round trip).
const assignmentLatency = 100 * time.Millisecond

// Run executes one repetition of the scenario with the given baseline
// meta-scheduler instead of the ARiA protocol. Dynamic rescheduling does
// not exist in either baseline, so the scenario's INFORM knobs are ignored
// by forcing them off.
func Run(k Kind, c scenario.Config, run int) (*metrics.Result, error) {
	if !k.Valid() {
		return nil, fmt.Errorf("invalid baseline kind %d", int(k))
	}
	c.Name = c.Name + "+" + k.String()
	c.Protocol.InformJobs = 0 // no protocol-level rescheduling
	d, err := scenario.Prepare(c, run)
	if err != nil {
		return nil, err
	}
	d.ScheduleSubmissions(func(d *scenario.Deployment, at time.Duration, p job.Profile) {
		submit(k, d, at, p)
	})
	return d.Finish(), nil
}

// RunN executes runs repetitions on parallel workers and aggregates them.
func RunN(k Kind, c scenario.Config, runs int) (*metrics.Aggregate, []*metrics.Result, error) {
	results, err := metrics.ParallelRuns(runs, func(run int) (*metrics.Result, error) {
		return Run(k, c, run)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("baseline %v: %w", k, err)
	}
	return metrics.NewAggregate(results), results, nil
}

// submit performs one baseline assignment: choose a node with global
// knowledge and deliver the job directly.
func submit(k Kind, d *scenario.Deployment, at time.Duration, p job.Profile) {
	rec := d.Recorder
	rec.JobSubmitted(at, -1, p)
	var target *core.Node
	var cost sched.Cost
	switch k {
	case Centralized:
		target, cost = cheapest(d, p)
	case Random:
		target, cost = randomMatch(d, p)
	}
	if target == nil {
		rec.JobFailed(at, -1, p.UUID, "no candidate found")
		return
	}
	rec.JobAssigned(at, p.UUID, -1, target.ID(), cost, false)
	// Deliver the ASSIGN after one scheduler round trip; the node's own
	// queueing and execution machinery take over from there.
	d.Engine.Schedule(assignmentLatency, func() {
		target.HandleMessage(core.Message{Type: core.MsgAssign, From: target.ID(), Job: p})
	})
}

// cheapest scans every node with a perfectly fresh global view.
func cheapest(d *scenario.Deployment, p job.Profile) (*core.Node, sched.Cost) {
	var best *core.Node
	var bestCost sched.Cost
	for _, n := range d.Cluster.Nodes() {
		cost, ok := n.Offer(p)
		if !ok {
			continue
		}
		if best == nil || cost < bestCost {
			best, bestCost = n, cost
		}
	}
	return best, bestCost
}

// randomMatch picks a uniformly random node able to host the job.
func randomMatch(d *scenario.Deployment, p job.Profile) (*core.Node, sched.Cost) {
	var matches []*core.Node
	var costs []sched.Cost
	for _, n := range d.Cluster.Nodes() {
		if cost, ok := n.Offer(p); ok {
			matches = append(matches, n)
			costs = append(costs, cost)
		}
	}
	if len(matches) == 0 {
		return nil, 0
	}
	// Reuse the deployment's submission stream for determinism by drawing
	// through RandomNode's generator is not possible here; use the engine
	// source, which is equally deterministic under the simulator.
	i := d.Engine.Rand().Intn(len(matches))
	return matches[i], costs[i]
}
