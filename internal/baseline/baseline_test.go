package baseline

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/scenario"
)

func smallMixed(t *testing.T) scenario.Config {
	t.Helper()
	c, err := scenario.ByName("Mixed")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.06)
	sc.Submission.Interval = 5 * time.Second
	sc.Horizon = sc.Submission.End() + 30*time.Hour
	return sc
}

func TestKindStrings(t *testing.T) {
	if Centralized.String() != "centralized" || Random.String() != "random" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).Valid() || Kind(9).String() != "Kind(9)" {
		t.Fatal("invalid kind handling wrong")
	}
}

func TestRunRejectsInvalidKind(t *testing.T) {
	if _, err := Run(Kind(0), smallMixed(t), 0); err == nil {
		t.Fatal("Run accepted invalid kind")
	}
}

func TestCentralizedCompletesEverything(t *testing.T) {
	res, err := Run(Centralized, smallMixed(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d (failed %d)", res.Completed, res.Submitted, res.Failed)
	}
	if res.Scenario != "Mixed+centralized" {
		t.Fatalf("scenario label %q", res.Scenario)
	}
	// A centralized scheduler moves no protocol traffic at all.
	if res.Traffic[core.MsgRequest].Count != 0 || res.Traffic[core.MsgInform].Count != 0 {
		t.Fatalf("baseline generated protocol floods: %+v", res.Traffic)
	}
	if res.Reschedules != 0 {
		t.Fatal("baseline rescheduled jobs")
	}
}

func TestRandomCompletesEverything(t *testing.T) {
	res, err := Run(Random, smallMixed(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
}

func TestCentralizedBeatsRandom(t *testing.T) {
	c := smallMixed(t)
	central, err := Run(Centralized, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(Random, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if central.AvgCompletion >= random.AvgCompletion {
		t.Fatalf("centralized (%v) should beat random (%v) on completion time",
			central.AvgCompletion, random.AvgCompletion)
	}
}

func TestARiATracksCentralized(t *testing.T) {
	// ARiA's distributed discovery should land within a factor of the
	// omniscient centralized scheduler and clearly beat random placement.
	c := smallMixed(t)
	aria, err := scenario.Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	central, err := Run(Centralized, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(Random, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aria.AvgCompletion > random.AvgCompletion {
		t.Fatalf("ARiA (%v) worse than random placement (%v)",
			aria.AvgCompletion, random.AvgCompletion)
	}
	if aria.AvgCompletion > central.AvgCompletion*3 {
		t.Fatalf("ARiA (%v) more than 3x the centralized bound (%v)",
			aria.AvgCompletion, central.AvgCompletion)
	}
}

func TestRunNAggregates(t *testing.T) {
	agg, results, err := RunN(Centralized, smallMixed(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 2 || len(results) != 2 {
		t.Fatalf("runs %d/%d", agg.Runs, len(results))
	}
	if _, _, err := RunN(Centralized, smallMixed(t), 0); err == nil {
		t.Fatal("RunN accepted zero runs")
	}
}

func TestBaselineDeterminism(t *testing.T) {
	c := smallMixed(t)
	a, err := Run(Centralized, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Centralized, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgCompletion != b.AvgCompletion || a.Completed != b.Completed {
		t.Fatal("centralized baseline runs diverged")
	}
}
