package soak

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/smartgrid/aria/internal/eventlog"
)

// Tailer incrementally reads a JSONL event log that another process is
// appending to. Poll drains every complete line written since the last
// call; a partial trailing line (the writer mid-append, or mid-crash) is
// held back until its newline arrives. A file that does not exist yet is
// not an error — the daemon may still be booting.
type Tailer struct {
	path    string
	f       *os.File
	offset  int64
	pending []byte
}

// NewTailer tails path. The file need not exist yet.
func NewTailer(path string) *Tailer {
	return &Tailer{path: path}
}

// Close releases the underlying file.
func (t *Tailer) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// Poll parses every newly completed line and hands each event to fn,
// returning the number of events delivered. Malformed lines are an error:
// the event log is an audit surface, so a corrupt record must surface, not
// be skipped.
func (t *Tailer) Poll(fn func(eventlog.Event)) (int, error) {
	if t.f == nil {
		f, err := os.Open(t.path)
		if err != nil {
			if os.IsNotExist(err) {
				return 0, nil
			}
			return 0, err
		}
		t.f = f
	}
	chunk, err := t.readNew()
	if err != nil {
		return 0, err
	}
	if len(chunk) == 0 {
		return 0, nil
	}
	t.pending = append(t.pending, chunk...)
	delivered := 0
	for {
		nl := bytes.IndexByte(t.pending, '\n')
		if nl < 0 {
			return delivered, nil
		}
		line := t.pending[:nl]
		t.pending = t.pending[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e eventlog.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return delivered, fmt.Errorf("tail %s: bad event line: %w", t.path, err)
		}
		fn(e)
		delivered++
	}
}

// readNew returns the bytes appended since the previous call.
func (t *Tailer) readNew() ([]byte, error) {
	fi, err := t.f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= t.offset {
		return nil, nil
	}
	buf := make([]byte, size-t.offset)
	n, err := t.f.ReadAt(buf, t.offset)
	t.offset += int64(n)
	if err != nil && err != io.EOF {
		return buf[:n], err
	}
	return buf[:n], nil
}
