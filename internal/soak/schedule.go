package soak

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// ActionKind enumerates the fault injections a soak schedule can order.
type ActionKind string

// Fault kinds. Outage semantics per kind: kill = SIGKILL now, restart
// after Outage; pause = SIGSTOP now, SIGCONT after Outage; partitions =
// cut now, heal after Outage; slow = add ExtraDelay to the node's links
// now, remove after Outage.
const (
	ActKill            ActionKind = "kill"
	ActPause           ActionKind = "pause"
	ActPartition       ActionKind = "partition"
	ActPartitionOneWay ActionKind = "partition-oneway"
	ActSlowPeer        ActionKind = "slow"
)

// Action is one scheduled fault.
type Action struct {
	At         time.Duration `json:"-"`
	Kind       ActionKind    `json:"kind"`
	Nodes      []int         `json:"nodes"`
	Outage     time.Duration `json:"-"`
	ExtraDelay time.Duration `json:"-"`

	// Rendered mirrors of the durations, for the JSON report.
	AtStr     string `json:"at"`
	OutageStr string `json:"outage"`
	DelayStr  string `json:"extraDelay,omitempty"`
}

// render fills the string mirrors from the durations.
func (a *Action) render() {
	a.AtStr = a.At.Round(time.Millisecond).String()
	a.OutageStr = a.Outage.Round(time.Millisecond).String()
	if a.ExtraDelay > 0 {
		a.DelayStr = a.ExtraDelay.Round(time.Millisecond).String()
	}
}

// ScheduleConfig parameterizes a seeded fault schedule over daemons
// numbered 0..Nodes-1.
type ScheduleConfig struct {
	// Nodes is the grid size.
	Nodes int

	// Protected lists daemons never targeted by any fault — typically
	// the ingress node the gateway submits through, whose event log
	// anchors the audit.
	Protected []int

	// Start and End bound the chaos window: every action fires inside
	// [Start, End-MaxOutage] so its outage also ends inside the window.
	Start, End time.Duration

	// Per-kind action counts.
	Kills, Pauses, Partitions, OneWayPartitions, Slowdowns int

	// MaxOutage caps every fault's duration. Keep it under the
	// membership plane's suspect window (probe timeout + suspect
	// timeout): a SWIM dead verdict is terminal per incarnation, so a
	// pause longer than the window turns a gray failure into a permanent
	// eviction and the convergence audit fails by design.
	MaxOutage time.Duration

	// MinOutage floors fault durations (default MaxOutage/4).
	MinOutage time.Duration

	// SlowExtraDelay is the latency added during slow-peer windows
	// (default 500ms).
	SlowExtraDelay time.Duration
}

// Validate reports the first structural problem.
func (c ScheduleConfig) Validate() error {
	total := c.Kills + c.Pauses + c.Partitions + c.OneWayPartitions + c.Slowdowns
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("schedule needs at least 2 nodes, have %d", c.Nodes)
	case len(c.Protected) >= c.Nodes:
		return fmt.Errorf("all %d nodes protected, nothing to target", c.Nodes)
	case c.Start < 0:
		return fmt.Errorf("chaos window start %v must be non-negative", c.Start)
	case c.MaxOutage <= 0:
		return fmt.Errorf("max outage %v must be positive", c.MaxOutage)
	case c.End-c.MaxOutage <= c.Start:
		return fmt.Errorf("chaos window [%v, %v) cannot fit a %v outage", c.Start, c.End, c.MaxOutage)
	case total == 0:
		return fmt.Errorf("schedule orders no actions")
	case c.MinOutage < 0 || c.MinOutage > c.MaxOutage:
		return fmt.Errorf("min outage %v outside [0, %v]", c.MinOutage, c.MaxOutage)
	}
	for _, p := range c.Protected {
		if p < 0 || p >= c.Nodes {
			return fmt.Errorf("protected node %d outside grid [0, %d)", p, c.Nodes)
		}
	}
	return nil
}

// BuildSchedule derives a deterministic fault schedule from the seed: the
// same (config, seed) pair always yields the same actions, so a failing
// soak reproduces exactly. Actions are returned in firing order and never
// target a protected node.
func BuildSchedule(cfg ScheduleConfig, seed int64) ([]Action, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	minOut := cfg.MinOutage
	if minOut == 0 {
		minOut = cfg.MaxOutage / 4
	}
	slowDelay := cfg.SlowExtraDelay
	if slowDelay == 0 {
		slowDelay = 500 * time.Millisecond
	}
	protected := make(map[int]bool, len(cfg.Protected))
	for _, p := range cfg.Protected {
		protected[p] = true
	}
	var targets []int
	for i := 0; i < cfg.Nodes; i++ {
		if !protected[i] {
			targets = append(targets, i)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	span := cfg.End - cfg.MaxOutage - cfg.Start
	outage := func() time.Duration {
		if minOut >= cfg.MaxOutage {
			return cfg.MaxOutage
		}
		return minOut + time.Duration(rng.Int63n(int64(cfg.MaxOutage-minOut)))
	}
	pick := func() int { return targets[rng.Intn(len(targets))] }

	var out []Action
	add := func(kind ActionKind, count int, delay time.Duration) {
		for i := 0; i < count; i++ {
			a := Action{
				At:         cfg.Start + time.Duration(rng.Int63n(int64(span))),
				Kind:       kind,
				Nodes:      []int{pick()},
				Outage:     outage(),
				ExtraDelay: delay,
			}
			a.render()
			out = append(out, a)
		}
	}
	add(ActKill, cfg.Kills, 0)
	add(ActPause, cfg.Pauses, 0)
	add(ActPartition, cfg.Partitions, 0)
	add(ActPartitionOneWay, cfg.OneWayPartitions, 0)
	add(ActSlowPeer, cfg.Slowdowns, slowDelay)

	sort.SliceStable(out, func(i, k int) bool { return out[i].At < out[k].At })
	return out, nil
}
