package soak

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// RuntimeStats is one sample of a daemon's process health, read from its
// aria.runtime expvar (cmd/ariad -debug).
type RuntimeStats struct {
	Goroutines  int    `json:"goroutines"`
	PID         int    `json:"pid"`
	Incarnation uint64 `json:"incarnation"`
}

// DebugSnapshot is one scrape of a daemon's debug plane: process health
// plus the endurance counters (wire-frame rejections, injected WAL faults)
// a soak report aggregates.
type DebugSnapshot struct {
	Runtime RuntimeStats

	// WireRejects is aria.wire: rejected inbound frames by reason. Nil
	// when the daemon predates the counter.
	WireRejects map[string]uint64

	// WALFaults is aria.walfaults: injected disk faults by class. Nil
	// unless the daemon was started with fault injection armed.
	WALFaults map[string]uint64
}

// ProbeRuntime fetches aria.runtime from a daemon's debug endpoint.
func ProbeRuntime(debugAddr string, timeout time.Duration) (RuntimeStats, error) {
	snap, err := ProbeDebug(debugAddr, timeout)
	return snap.Runtime, err
}

// ProbeDebug fetches one DebugSnapshot from a daemon's debug endpoint.
func ProbeDebug(debugAddr string, timeout time.Duration) (DebugSnapshot, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		return DebugSnapshot{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return DebugSnapshot{}, fmt.Errorf("debug vars: status %s", resp.Status)
	}
	var vars struct {
		Runtime   RuntimeStats      `json:"aria.runtime"`
		Wire      map[string]uint64 `json:"aria.wire"`
		WALFaults map[string]uint64 `json:"aria.walfaults"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return DebugSnapshot{}, fmt.Errorf("decode debug vars: %w", err)
	}
	if vars.Runtime.PID == 0 {
		return DebugSnapshot{}, fmt.Errorf("debug vars: aria.runtime missing (old daemon?)")
	}
	return DebugSnapshot{Runtime: vars.Runtime, WireRejects: vars.Wire, WALFaults: vars.WALFaults}, nil
}

// FDCount counts a process's open file descriptors via /proc. Linux-only,
// like the rest of the harness.
func FDCount(pid int) (int, error) {
	ents, err := os.ReadDir(fmt.Sprintf("/proc/%d/fd", pid))
	if err != nil {
		return 0, err
	}
	return len(ents), nil
}

// RSSKB reads a process's resident set size in KiB from /proc. It is
// Linux-specific, like the soak harness itself.
func RSSKB(pid int) (int64, error) {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parse VmRSS %q: %w", line, err)
		}
		return kb, nil
	}
	return 0, fmt.Errorf("no VmRSS in /proc/%d/status", pid)
}
