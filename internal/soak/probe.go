package soak

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// RuntimeStats is one sample of a daemon's process health, read from its
// aria.runtime expvar (cmd/ariad -debug).
type RuntimeStats struct {
	Goroutines  int    `json:"goroutines"`
	PID         int    `json:"pid"`
	Incarnation uint64 `json:"incarnation"`
}

// ProbeRuntime fetches aria.runtime from a daemon's debug endpoint.
func ProbeRuntime(debugAddr string, timeout time.Duration) (RuntimeStats, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		return RuntimeStats{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return RuntimeStats{}, fmt.Errorf("debug vars: status %s", resp.Status)
	}
	var vars struct {
		Runtime RuntimeStats `json:"aria.runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return RuntimeStats{}, fmt.Errorf("decode debug vars: %w", err)
	}
	if vars.Runtime.PID == 0 {
		return RuntimeStats{}, fmt.Errorf("debug vars: aria.runtime missing (old daemon?)")
	}
	return vars.Runtime, nil
}

// RSSKB reads a process's resident set size in KiB from /proc. It is
// Linux-specific, like the soak harness itself.
func RSSKB(pid int) (int64, error) {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parse VmRSS %q: %w", line, err)
		}
		return kb, nil
	}
	return 0, fmt.Errorf("no VmRSS in /proc/%d/status", pid)
}
