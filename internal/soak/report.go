package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// NodeRuntime is one daemon's process-health summary across the soak.
type NodeRuntime struct {
	Node        int    `json:"node"`
	Incarnation uint64 `json:"incarnation"`
	Restarts    int    `json:"restarts"`

	// Goroutine counts at the post-warmup baseline and the final sample,
	// kept for eyeballing scale alongside the trend verdicts.
	GoroutinesBaseline int `json:"goroutinesBaseline"`
	GoroutinesFinal    int `json:"goroutinesFinal"`

	// Resident set size (KiB) at the same two points.
	RSSBaselineKB int64 `json:"rssBaselineKB"`
	RSSFinalKB    int64 `json:"rssFinalKB"`

	// Worst qualifying per-incarnation trend for each gauge (nil when no
	// segment lived long enough for a verdict). The leak bound is
	// enforced on these slopes, not the two-point deltas above.
	GoroutineTrend *SegmentTrend `json:"goroutineTrend,omitempty"`
	RSSTrend       *SegmentTrend `json:"rssTrend,omitempty"`
	FDTrend        *SegmentTrend `json:"fdTrend,omitempty"`
}

// Report is the machine-readable outcome of one soak run.
type Report struct {
	Tool  string `json:"tool"` // "ariasoak"
	Seed  int64  `json:"seed"`
	Nodes int    `json:"nodes"`

	// Phase durations as Go duration strings.
	Warmup string `json:"warmup"`
	Chaos  string `json:"chaos"`
	Drain  string `json:"drain"`

	Schedule []Action `json:"schedule"`

	// Ledger totals at the end of the drain.
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Orphans   int `json:"orphans"`

	// ConvergedIn is how long after the final heal the membership plane
	// needed before no live daemon held a suspect verdict.
	ConvergedIn string `json:"convergedIn,omitempty"`

	// Endurance-mode metadata: total wall-clock budget and how many chaos
	// rounds completed within it. Zero/empty for single-round runs.
	Duration string `json:"duration,omitempty"`
	Rounds   int    `json:"rounds,omitempty"`

	// Interim marks a mid-run progress flush; Interrupted marks a report
	// flushed on SIGINT/SIGTERM. Either way the run was not judged to its
	// planned end, so Pass speaks only for what had happened so far.
	Interim     bool `json:"interim,omitempty"`
	Interrupted bool `json:"interrupted,omitempty"`

	// Fault evidence: proof the run exercised what it claims to survive.
	// Degrade counts injected link degradations by kind (dropped,
	// corrupted, duplicated, reordered); WireRejects sums each daemon's
	// rejected-frame counters; WALFaults sums injected disk faults.
	Degrade     map[string]uint64 `json:"degrade,omitempty"`
	WireRejects map[string]uint64 `json:"wireRejects,omitempty"`
	WALFaults   map[string]uint64 `json:"walFaults,omitempty"`

	// WALFaultCrashes counts daemons that died loudly on an injected
	// write fault (exit 3); WALCorruptWipes counts boots refused on a
	// corrupt store (exit 4) whose data dirs the supervisor wiped before
	// the amnesiac respawn.
	WALFaultCrashes int `json:"walFaultCrashes,omitempty"`
	WALCorruptWipes int `json:"walCorruptWipes,omitempty"`

	Runtime    []NodeRuntime `json:"runtime,omitempty"`
	Violations []Violation   `json:"violations"`

	// Pass is the single bit CI gates on: no violations of any kind.
	Pass bool `json:"pass"`
}

// WriteReport renders the report as indented JSON and writes it atomically
// (temp file + rename), so a watcher never reads a half-written report.
func WriteReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal soak report: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".soak-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadReport parses a report written by WriteReport.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("parse soak report %s: %w", path, err)
	}
	return r, nil
}
