package soak

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/eventlog"
)

func TestAuditorExactlyOneExecution(t *testing.T) {
	a := NewAuditor()
	a.Observe(eventlog.Event{Kind: eventlog.KindSubmitted, UUID: "j1", Node: 0})
	a.Observe(eventlog.Event{Kind: eventlog.KindCompleted, UUID: "j1", Node: 3})
	if v := a.Violations(); len(v) != 0 {
		t.Fatalf("single completion flagged: %+v", v)
	}
	// The duplicate — a revenant finishing a job its successor also ran.
	a.Observe(eventlog.Event{Kind: eventlog.KindCompleted, UUID: "j1", Node: 5})
	v := a.Violations()
	if len(v) != 1 || v[0].Invariant != "exactly-one-execution" || v[0].UUID != "j1" {
		t.Fatalf("duplicate completion not flagged correctly: %+v", v)
	}
	// A third completion does not re-report the same job.
	a.Observe(eventlog.Event{Kind: eventlog.KindCompleted, UUID: "j1", Node: 6})
	if v := a.Violations(); len(v) != 1 {
		t.Fatalf("triple completion double-reported: %+v", v)
	}
}

func TestAuditorOrphans(t *testing.T) {
	a := NewAuditor()
	a.Observe(eventlog.Event{Kind: eventlog.KindSubmitted, UUID: "done"})
	a.Observe(eventlog.Event{Kind: eventlog.KindCompleted, UUID: "done"})
	a.Observe(eventlog.Event{Kind: eventlog.KindSubmitted, UUID: "lost"})
	a.Observe(eventlog.Event{Kind: eventlog.KindSubmitted, UUID: "broken"})
	a.Observe(eventlog.Event{Kind: eventlog.KindFailed, UUID: "broken", Reason: "no offers"})
	// Started-but-unfinished still counts as an orphan.
	a.Observe(eventlog.Event{Kind: eventlog.KindSubmitted, UUID: "stuck"})
	a.Observe(eventlog.Event{Kind: eventlog.KindStarted, UUID: "stuck"})

	orphans := a.Orphans()
	if len(orphans) != 2 || orphans[0] != "lost" || orphans[1] != "stuck" {
		t.Fatalf("orphans = %v, want [lost stuck]", orphans)
	}
	if n := a.FlagOrphans(); n != 2 {
		t.Fatalf("FlagOrphans = %d, want 2", n)
	}
	if v := a.Violations(); len(v) != 2 || v[0].Invariant != "orphaned-job" {
		t.Fatalf("orphan violations %+v", v)
	}
	sub, comp, fail := a.Counts()
	if sub != 4 || comp != 1 || fail != 1 {
		t.Fatalf("counts = (%d, %d, %d), want (4, 1, 1)", sub, comp, fail)
	}
}

func TestTailerIncrementalWithPartialLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	tail := NewTailer(path)
	defer func() { _ = tail.Close() }()

	// File absent: no events, no error.
	if n, err := tail.Poll(func(eventlog.Event) {}); n != 0 || err != nil {
		t.Fatalf("poll before file exists: n=%d err=%v", n, err)
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()

	var got []eventlog.Event
	collect := func(e eventlog.Event) { got = append(got, e) }

	// One complete line plus the torn prefix of the next.
	if _, err := f.WriteString(`{"kind":"submitted","atSec":1,"uuid":"a"}` + "\n" + `{"kind":"comp`); err != nil {
		t.Fatal(err)
	}
	if n, err := tail.Poll(collect); err != nil || n != 1 {
		t.Fatalf("first poll: n=%d err=%v", n, err)
	}
	if len(got) != 1 || got[0].UUID != "a" {
		t.Fatalf("events %+v", got)
	}

	// Completing the torn line delivers exactly the second event.
	if _, err := f.WriteString(`leted","atSec":2,"uuid":"a"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	if n, err := tail.Poll(collect); err != nil || n != 1 {
		t.Fatalf("second poll: n=%d err=%v", n, err)
	}
	if len(got) != 2 || got[1].Kind != eventlog.KindCompleted {
		t.Fatalf("events %+v", got)
	}

	// Nothing new: nothing delivered.
	if n, err := tail.Poll(collect); err != nil || n != 0 {
		t.Fatalf("idle poll: n=%d err=%v", n, err)
	}
}

func TestBuildScheduleDeterministicAndBounded(t *testing.T) {
	cfg := ScheduleConfig{
		Nodes:            8,
		Protected:        []int{0},
		Start:            5 * time.Second,
		End:              60 * time.Second,
		Kills:            3,
		Pauses:           2,
		Partitions:       1,
		OneWayPartitions: 2,
		Slowdowns:        2,
		MaxOutage:        4 * time.Second,
	}
	a, err := BuildSchedule(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("schedule lengths %d, %d, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind || a[i].Nodes[0] != b[i].Nodes[0] || a[i].Outage != b[i].Outage {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	other, err := BuildSchedule(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].At != other[i].At || a[i].Nodes[0] != other[i].Nodes[0] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}

	var prev time.Duration
	for _, act := range a {
		if act.At < prev {
			t.Fatalf("schedule out of order: %v after %v", act.At, prev)
		}
		prev = act.At
		if act.At < cfg.Start || act.At+act.Outage > cfg.End {
			t.Fatalf("action %+v escapes the chaos window", act)
		}
		if act.Outage <= 0 || act.Outage > cfg.MaxOutage {
			t.Fatalf("action outage %v outside (0, %v]", act.Outage, cfg.MaxOutage)
		}
		for _, n := range act.Nodes {
			if n == 0 {
				t.Fatalf("action %+v targets the protected ingress node", act)
			}
			if n < 0 || n >= cfg.Nodes {
				t.Fatalf("action %+v targets a node outside the grid", act)
			}
		}
		if act.Kind == ActSlowPeer && act.ExtraDelay <= 0 {
			t.Fatalf("slow-peer action without extra delay: %+v", act)
		}
	}
}

func TestBuildScheduleRejects(t *testing.T) {
	good := ScheduleConfig{
		Nodes: 4, Start: 0, End: 30 * time.Second,
		Kills: 1, MaxOutage: 2 * time.Second,
	}
	if _, err := BuildSchedule(good, 1); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*ScheduleConfig){
		"tiny grid":        func(c *ScheduleConfig) { c.Nodes = 1 },
		"all protected":    func(c *ScheduleConfig) { c.Protected = []int{0, 1, 2, 3} },
		"window too small": func(c *ScheduleConfig) { c.End = time.Second },
		"no actions":       func(c *ScheduleConfig) { c.Kills = 0 },
		"zero outage":      func(c *ScheduleConfig) { c.MaxOutage = 0 },
		"bad protected":    func(c *ScheduleConfig) { c.Protected = []int{9} },
	} {
		bad := good
		mutate(&bad)
		if _, err := BuildSchedule(bad, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "soak.json")
	r := Report{
		Tool: "ariasoak", Seed: 7, Nodes: 16,
		Warmup: "10s", Chaos: "60s", Drain: "20s",
		Submitted: 120, Completed: 118, Failed: 2,
		Violations: []Violation{},
		Pass:       true,
	}
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 7 || back.Nodes != 16 || !back.Pass || back.Completed != 118 {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

func TestRSSKBSelf(t *testing.T) {
	kb, err := RSSKB(os.Getpid())
	if err != nil {
		t.Skipf("no /proc on this platform: %v", err)
	}
	if kb <= 0 {
		t.Fatalf("own RSS %d KB", kb)
	}
}
