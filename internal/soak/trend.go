package soak

import "fmt"

// TrendPoint is one sample of a process-health gauge (goroutines, RSS, open
// FDs) at a moment in the run.
type TrendPoint struct {
	AtSec float64 `json:"atSec"` // seconds since the series began
	Value float64 `json:"value"`
}

// Trend is the least-squares line fitted through a sample series. Slope is
// the leak detector's verdict input: a goroutine or byte count that climbs
// steadily has a positive slope no matter how noisy the individual samples,
// where a two-point bound sees only whether the last sample happened to
// land high.
type Trend struct {
	// SlopePerSec is the fitted rate of change, in gauge units per second.
	SlopePerSec float64 `json:"slopePerSec"`

	// Samples is how many points the fit saw.
	Samples int `json:"samples"`

	// SpanSec is the time between the first and last point.
	SpanSec float64 `json:"spanSec"`

	// Mean is the series average, for scale when reading the slope.
	Mean float64 `json:"mean"`
}

// FitTrend computes the ordinary least-squares line through pts. Fewer than
// two points (or a zero time span) yields a zero trend: no evidence, no
// slope.
func FitTrend(pts []TrendPoint) Trend {
	tr := Trend{Samples: len(pts)}
	if len(pts) < 2 {
		for _, p := range pts {
			tr.Mean = p.Value
		}
		return tr
	}
	var sumT, sumV float64
	for _, p := range pts {
		sumT += p.AtSec
		sumV += p.Value
	}
	n := float64(len(pts))
	meanT, meanV := sumT/n, sumV/n
	var covTV, varT float64
	for _, p := range pts {
		covTV += (p.AtSec - meanT) * (p.Value - meanV)
		varT += (p.AtSec - meanT) * (p.AtSec - meanT)
	}
	tr.Mean = meanV
	tr.SpanSec = pts[len(pts)-1].AtSec - pts[0].AtSec
	if varT > 0 {
		tr.SlopePerSec = covTV / varT
	}
	return tr
}

// LeakRule is the detection boundary for one gauge: a fitted slope above
// MaxSlopePerSec, sustained over at least MinSamples points spanning
// MinSpanSec, is a leak. Short or sparse segments return no verdict rather
// than a noisy one — a daemon restarted moments before the run ended has
// not had time to prove anything.
type LeakRule struct {
	MaxSlopePerSec float64
	MinSamples     int
	MinSpanSec     float64

	// WarmupSec discards each segment's leading samples before the
	// verdict fit: a fresh process ramps — allocator growth, cache fill,
	// connection dialing — and on a short segment that ramp fits as a
	// steep "leak". A daemon restarted mid-run rejoining a busy grid is
	// the worst case: its whole early RSS curve is ramp. The qualifying
	// span and sample counts are measured after the discard.
	WarmupSec float64
}

// Qualifies reports whether tr carries enough evidence for a verdict.
func (r LeakRule) Qualifies(tr Trend) bool {
	return tr.Samples >= r.MinSamples && tr.SpanSec >= r.MinSpanSec
}

// Violated reports whether tr is a qualifying leak.
func (r LeakRule) Violated(tr Trend) bool {
	return r.Qualifies(tr) && tr.SlopePerSec > r.MaxSlopePerSec
}

// trendRing holds a bounded sample series that preserves its full time span
// under memory pressure: when the buffer fills, resolution is halved (every
// other point dropped, subsequent samples decimated to match) instead of
// evicting the oldest points. A multi-hour run keeps its earliest samples —
// exactly the ones a slope fit needs for leverage.
type trendRing struct {
	cap    int
	pts    []TrendPoint
	stride int // keep every stride-th offered sample
	offset int // offered samples since the last kept one
}

func newTrendRing(capacity int) *trendRing {
	if capacity < 4 {
		capacity = 4
	}
	return &trendRing{cap: capacity, stride: 1}
}

// add offers one sample to the ring.
func (r *trendRing) add(p TrendPoint) {
	r.offset++
	if r.offset < r.stride {
		return
	}
	r.offset = 0
	r.pts = append(r.pts, p)
	if len(r.pts) >= r.cap {
		kept := r.pts[:0]
		for i := 0; i < len(r.pts); i += 2 {
			kept = append(kept, r.pts[i])
		}
		r.pts = kept
		r.stride *= 2
	}
}

// SegmentTrend is one incarnation's fitted trend.
type SegmentTrend struct {
	Incarnation uint64 `json:"incarnation"`
	Trend
}

// TrendSeries collects one gauge's samples for one daemon, segmented by
// incarnation. A restart resets goroutine and RSS gauges to their boot
// values; fitting a single line across the sawtooth would read each reset
// as a cliff and average a real leak away. Each incarnation is fitted
// alone, and the leak verdict is the worst qualifying segment.
type TrendSeries struct {
	capacity int
	segs     []*trendSegment
}

type trendSegment struct {
	incarnation uint64
	ring        *trendRing
}

// NewTrendSeries creates a series keeping at most capacity points per
// incarnation segment (decimated, never truncated, beyond that).
func NewTrendSeries(capacity int) *TrendSeries {
	return &TrendSeries{capacity: capacity}
}

// Observe appends one sample. A new incarnation value opens a new segment;
// out-of-order incarnations are treated as new segments too (the daemon
// restarted faster than the sampler polled).
func (s *TrendSeries) Observe(incarnation uint64, atSec, value float64) {
	var seg *trendSegment
	if n := len(s.segs); n > 0 && s.segs[n-1].incarnation == incarnation {
		seg = s.segs[n-1]
	} else {
		seg = &trendSegment{incarnation: incarnation, ring: newTrendRing(s.capacity)}
		s.segs = append(s.segs, seg)
	}
	seg.ring.add(TrendPoint{AtSec: atSec, Value: value})
}

// Segments returns every incarnation's fitted trend, in observation order.
func (s *TrendSeries) Segments() []SegmentTrend {
	out := make([]SegmentTrend, 0, len(s.segs))
	for _, seg := range s.segs {
		out = append(out, SegmentTrend{Incarnation: seg.incarnation, Trend: FitTrend(seg.ring.pts)})
	}
	return out
}

// fitAfter fits the segment's points with the leading warmup window —
// measured from the segment's first sample — discarded.
func (seg *trendSegment) fitAfter(warmupSec float64) Trend {
	pts := seg.ring.pts
	if warmupSec > 0 && len(pts) > 0 {
		cut := pts[0].AtSec + warmupSec
		i := 0
		for i < len(pts) && pts[i].AtSec < cut {
			i++
		}
		pts = pts[i:]
	}
	return FitTrend(pts)
}

// Worst returns the qualifying segment with the steepest positive slope,
// and whether any segment violates the rule. Verdict fits discard each
// segment's WarmupSec prefix. With no qualifying segment it returns false
// in ok: the series holds no verdict-grade evidence.
func (s *TrendSeries) Worst(rule LeakRule) (worst SegmentTrend, leaking, ok bool) {
	for _, raw := range s.segs {
		seg := SegmentTrend{Incarnation: raw.incarnation, Trend: raw.fitAfter(rule.WarmupSec)}
		if !rule.Qualifies(seg.Trend) {
			continue
		}
		if !ok || seg.SlopePerSec > worst.SlopePerSec {
			worst = seg
			ok = true
		}
	}
	return worst, ok && rule.Violated(worst.Trend), ok
}

// LeakViolation renders a trend verdict as an auditor violation.
func LeakViolation(node int, gauge string, seg SegmentTrend, rule LeakRule) Violation {
	return Violation{
		Invariant: "no-leak-trend",
		Node:      node,
		Detail: fmt.Sprintf("%s slope %.4f/s over %.0fs (%d samples, incarnation %d) exceeds %.4f/s",
			gauge, seg.SlopePerSec, seg.SpanSec, seg.Samples, seg.Incarnation, rule.MaxSlopePerSec),
	}
}
