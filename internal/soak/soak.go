// Package soak is the auditing brain of the chaos soak plane: it tails
// live event logs, enforces the grid's safety invariants while faults are
// being injected, probes daemon health over expvar and /proc, builds
// deterministic seeded fault schedules, and renders the machine-readable
// soak report. cmd/ariasoak wires it to real processes; the package itself
// never spawns anything, which keeps every piece unit-testable.
package soak

import (
	"fmt"
	"sort"
	"sync"

	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/job"
)

// Violation is one observed breach of a safety invariant.
type Violation struct {
	// Invariant names the rule: "exactly-one-execution", "orphaned-job",
	// "goroutine-growth", "rss-growth", "directory-poison",
	// "convergence-deadline".
	Invariant string `json:"invariant"`

	// UUID identifies the job for job-scoped invariants.
	UUID string `json:"uuid,omitempty"`

	// Node identifies the daemon for process-scoped invariants.
	Node int `json:"node,omitempty"`

	// Detail is a human-readable explanation.
	Detail string `json:"detail"`
}

// Auditor folds lifecycle events from every node's tailed log into one
// global ledger and enforces the execution-safety invariants live: a job
// must complete at most once grid-wide, and every submitted job must reach
// a terminal state by the drain deadline. It is safe for concurrent use.
type Auditor struct {
	mu         sync.Mutex
	jobs       map[job.UUID]*jobRecord
	violations []Violation
}

type jobRecord struct {
	submitted int
	completed int
	failed    int
}

// NewAuditor returns an empty ledger.
func NewAuditor() *Auditor {
	return &Auditor{jobs: make(map[job.UUID]*jobRecord)}
}

// Observe folds one event in. A second completion of the same UUID is
// recorded as an exactly-one-execution violation the moment it is seen.
func (a *Auditor) Observe(e eventlog.Event) {
	if e.UUID == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rec := a.jobs[e.UUID]
	if rec == nil {
		rec = &jobRecord{}
		a.jobs[e.UUID] = rec
	}
	switch e.Kind {
	case eventlog.KindSubmitted:
		rec.submitted++
	case eventlog.KindCompleted:
		rec.completed++
		if rec.completed == 2 {
			// Report once per job, on the first duplicate.
			a.violations = append(a.violations, Violation{
				Invariant: "exactly-one-execution",
				UUID:      string(e.UUID),
				Node:      int(e.Node),
				Detail:    fmt.Sprintf("job %s completed more than once (duplicate on node %d)", e.UUID, e.Node),
			})
		}
	case eventlog.KindFailed:
		rec.failed++
	}
}

// Orphans returns the UUIDs of jobs submitted but still non-terminal, in
// sorted order — call it only after the drain deadline, when every live
// job has had time to finish.
func (a *Auditor) Orphans() []job.UUID {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []job.UUID
	for uuid, rec := range a.jobs {
		if rec.submitted > 0 && rec.completed == 0 && rec.failed == 0 {
			out = append(out, uuid)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// FlagOrphans converts the current orphan set into recorded violations
// (the drain deadline has passed) and returns how many there were.
func (a *Auditor) FlagOrphans() int {
	orphans := a.Orphans()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, uuid := range orphans {
		a.violations = append(a.violations, Violation{
			Invariant: "orphaned-job",
			UUID:      string(uuid),
			Detail:    fmt.Sprintf("job %s never reached a terminal state by the drain deadline", uuid),
		})
	}
	return len(orphans)
}

// AddViolation records an externally detected breach (runtime growth,
// directory poisoning, convergence misses).
func (a *Auditor) AddViolation(v Violation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.violations = append(a.violations, v)
}

// Violations returns everything recorded so far.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Counts reports the ledger totals: distinct jobs submitted, completed,
// and failed.
func (a *Auditor) Counts() (submitted, completed, failed int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, rec := range a.jobs {
		if rec.submitted > 0 {
			submitted++
		}
		if rec.completed > 0 {
			completed++
		}
		if rec.failed > 0 && rec.completed == 0 {
			failed++
		}
	}
	return submitted, completed, failed
}
