package soak

import (
	"math"
	"math/rand"
	"testing"
)

// defaultRule mirrors the harness defaults: a leak verdict needs ten
// samples over a minute, climbing faster than half a unit per second.
var defaultRule = LeakRule{MaxSlopePerSec: 0.5, MinSamples: 10, MinSpanSec: 60}

// TestFitTrendFlat: a noisy but stationary gauge fits to ~zero slope.
func TestFitTrendFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []TrendPoint
	for i := 0; i < 120; i++ {
		pts = append(pts, TrendPoint{AtSec: float64(i * 5), Value: 200 + rng.Float64()*8 - 4})
	}
	tr := FitTrend(pts)
	if math.Abs(tr.SlopePerSec) > 0.05 {
		t.Fatalf("flat series fitted slope %.4f/s, want ~0", tr.SlopePerSec)
	}
	if defaultRule.Violated(tr) {
		t.Fatal("flat series flagged as a leak")
	}
}

// TestFitTrendLinearLeak: a steady climb fits to its true rate even under
// noise bigger than the per-sample increment, and violates the rule.
func TestFitTrendLinearLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pts []TrendPoint
	for i := 0; i < 120; i++ {
		at := float64(i * 5)
		pts = append(pts, TrendPoint{AtSec: at, Value: 100 + 2*at + rng.Float64()*40 - 20})
	}
	tr := FitTrend(pts)
	if tr.SlopePerSec < 1.8 || tr.SlopePerSec > 2.2 {
		t.Fatalf("leaking series fitted slope %.3f/s, want ~2", tr.SlopePerSec)
	}
	if !defaultRule.Violated(tr) {
		t.Fatal("linear leak not flagged")
	}
}

// TestFitTrendBoundary: slopes straddling MaxSlopePerSec land on the right
// sides of the detection boundary.
func TestFitTrendBoundary(t *testing.T) {
	mk := func(slope float64) Trend {
		var pts []TrendPoint
		for i := 0; i < 30; i++ {
			at := float64(i * 5)
			pts = append(pts, TrendPoint{AtSec: at, Value: 50 + slope*at})
		}
		return FitTrend(pts)
	}
	if defaultRule.Violated(mk(0.4)) {
		t.Fatal("slope below the bound flagged")
	}
	if !defaultRule.Violated(mk(0.6)) {
		t.Fatal("slope above the bound not flagged")
	}
}

// TestFitTrendDegenerate: zero or one sample, or a zero time span, yields a
// zero slope and never qualifies for a verdict.
func TestFitTrendDegenerate(t *testing.T) {
	for _, pts := range [][]TrendPoint{
		nil,
		{{AtSec: 10, Value: 100}},
		{{AtSec: 10, Value: 100}, {AtSec: 10, Value: 900}},
	} {
		tr := FitTrend(pts)
		if tr.SlopePerSec != 0 {
			t.Fatalf("degenerate series %v fitted slope %v", pts, tr.SlopePerSec)
		}
		if defaultRule.Qualifies(tr) {
			t.Fatalf("degenerate series %v qualified for a verdict", pts)
		}
	}
}

// TestTrendSeriesSawtoothWithRestarts: a gauge that climbs within each
// incarnation but resets on restart. Fitted per segment, each incarnation
// shows its true in-life slope; the sawtooth as a whole must not hide the
// leak (per-segment fit) nor must healthy restarts fake one (flat segments
// stay clean).
func TestTrendSeriesSawtoothWithRestarts(t *testing.T) {
	leaky := NewTrendSeries(512)
	healthy := NewTrendSeries(512)
	for inc := uint64(0); inc < 3; inc++ {
		for i := 0; i < 40; i++ {
			at := float64(inc)*200 + float64(i*5)
			// Leaky: climbs 2/s within each life, resets at restart.
			leaky.Observe(inc, at, 100+2*float64(i*5))
			// Healthy: boot transient then flat.
			v := 220.0
			if i < 3 {
				v = 180 + float64(i)*13
			}
			healthy.Observe(inc, at, v)
		}
	}
	worst, leaking, ok := leaky.Worst(defaultRule)
	if !ok || !leaking {
		t.Fatalf("sawtooth leak not flagged (ok=%v leaking=%v %+v)", ok, leaking, worst)
	}
	if worst.SlopePerSec < 1.8 || worst.SlopePerSec > 2.2 {
		t.Fatalf("sawtooth worst slope %.3f/s, want ~2", worst.SlopePerSec)
	}
	if len(leaky.Segments()) != 3 {
		t.Fatalf("expected 3 segments, got %d", len(leaky.Segments()))
	}
	if _, leaking, ok := healthy.Worst(defaultRule); !ok || leaking {
		t.Fatalf("healthy sawtooth flagged (ok=%v leaking=%v)", ok, leaking)
	}
}

// TestTrendSeriesShortSegmentNoVerdict: an incarnation that lived for a few
// samples (restarted just before the run ended) yields no verdict rather
// than a noisy one.
func TestTrendSeriesShortSegmentNoVerdict(t *testing.T) {
	s := NewTrendSeries(512)
	s.Observe(0, 0, 100)
	s.Observe(0, 5, 400) // wild two-point "slope" of 60/s
	if _, leaking, ok := s.Worst(defaultRule); ok || leaking {
		t.Fatalf("short segment produced a verdict (ok=%v leaking=%v)", ok, leaking)
	}
}

// TestTrendRingDecimationPreservesSpan: overflowing the ring halves its
// resolution but keeps the full time span — the earliest samples survive,
// and a long-run fit still sees the whole window.
func TestTrendRingDecimationPreservesSpan(t *testing.T) {
	s := NewTrendSeries(64)
	const n = 10_000
	for i := 0; i < n; i++ {
		s.Observe(0, float64(i), 100+0.25*float64(i))
	}
	segs := s.Segments()
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	tr := segs[0].Trend
	if tr.Samples >= 64 {
		t.Fatalf("ring did not decimate: %d samples retained", tr.Samples)
	}
	if tr.SpanSec < 0.8*n {
		t.Fatalf("decimation lost the early span: %.0fs of %d", tr.SpanSec, n)
	}
	if tr.SlopePerSec < 0.24 || tr.SlopePerSec > 0.26 {
		t.Fatalf("decimated fit slope %.4f/s, want ~0.25", tr.SlopePerSec)
	}
}

// TestTrendSeriesWarmupDiscard: a fresh incarnation's ramp — steep growth
// in its first seconds, flat after — must not fit as a leak once the rule
// discards the warmup window, while a genuine leak that persists past the
// warmup still must. This is the restarted-daemon-rejoining-a-busy-grid
// shape that tripped a false RSS verdict in a live soak.
func TestTrendSeriesWarmupDiscard(t *testing.T) {
	rule := defaultRule
	rule.WarmupSec = 15

	ramp := NewTrendSeries(512)
	leak := NewTrendSeries(512)
	for i := 0; i < 80; i++ {
		at := float64(i) // 1 Hz samples, 80s segment
		// Ramp: +400/s for 15s, then flat.
		v := 6000.0
		if at < 15 {
			v = 0 + 400*at
		}
		ramp.Observe(1, at, v)
		// Leak: the same ramp, then a steady climb past the warmup.
		lv := 6000 + 40*(at-15)
		if at < 15 {
			lv = 400 * at
		}
		leak.Observe(1, at, lv)
	}
	if worst, leaking, ok := ramp.Worst(rule); !ok || leaking {
		t.Fatalf("pure ramp flagged as leak (ok=%v leaking=%v slope=%.2f)", ok, leaking, worst.SlopePerSec)
	}
	// Without the warmup discard the ramp's fit is well above 10/s —
	// prove the discard is what saves it.
	if _, leaking, _ := ramp.Worst(defaultRule); !leaking {
		t.Fatal("ramp did not even trip the undiscarded rule; test shape is too weak")
	}
	worst, leaking, ok := leak.Worst(rule)
	if !ok || !leaking {
		t.Fatalf("post-warmup leak missed (ok=%v leaking=%v %+v)", ok, leaking, worst)
	}
	if worst.SlopePerSec < 35 || worst.SlopePerSec > 45 {
		t.Fatalf("leak slope %.2f/s, want ~40 (warmup ramp excluded from fit)", worst.SlopePerSec)
	}
}

// TestTrendSeriesWarmupEatsWholeSegment: a segment shorter than the warmup
// window yields no verdict at all — qualification is measured after the
// discard.
func TestTrendSeriesWarmupEatsWholeSegment(t *testing.T) {
	rule := defaultRule
	rule.WarmupSec = 100
	s := NewTrendSeries(512)
	for i := 0; i < 50; i++ {
		s.Observe(0, float64(i), 60*float64(i)) // violent 60/s growth, all inside warmup
	}
	if _, leaking, ok := s.Worst(rule); ok || leaking {
		t.Fatalf("warmup-only segment produced a verdict (ok=%v leaking=%v)", ok, leaking)
	}
}
