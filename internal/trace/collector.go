// Package trace reconstructs per-job causal trees from the span events the
// protocol engine emits (core.TraceEvent) and audits protocol invariants
// against them: flood TTL/fanout budgets, exactly-one execution, orphaned
// assignments, reschedule economics, and retry bounds. The trace plane is
// what turns endpoint aggregates (makespan, queue time) into mechanically
// checkable protocol behaviour.
package trace

import (
	"sync"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
)

// Collector accumulates every span event of a run. It embeds NopObserver so
// it can stand alone as a node observer, but in scenarios it normally rides
// an eventlog.Tee next to the metrics recorder. Safe for concurrent use.
type Collector struct {
	core.NopObserver

	mu     sync.Mutex
	events []core.TraceEvent
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// TraceSpan implements core.TraceObserver.
func (c *Collector) TraceSpan(ev core.TraceEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Len reports the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Events returns a copy of every collected event in emission order.
func (c *Collector) Events() []core.TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.TraceEvent, len(c.events))
	copy(out, c.events)
	return out
}

// ByUUID returns the events of one job in emission order.
func (c *Collector) ByUUID(uuid job.UUID) []core.TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []core.TraceEvent
	for _, ev := range c.events {
		if ev.UUID == uuid {
			out = append(out, ev)
		}
	}
	return out
}

// Ring is a bounded collector for long-running daemons: it keeps the most
// recent capacity events, overwriting the oldest, and counts totals per span
// kind forever. Safe for concurrent use.
type Ring struct {
	core.NopObserver

	mu     sync.Mutex
	buf    []core.TraceEvent
	next   int
	filled bool
	total  uint64
	byKind map[core.SpanKind]uint64
}

// NewRing returns a ring collector holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		buf:    make([]core.TraceEvent, capacity),
		byKind: make(map[core.SpanKind]uint64),
	}
}

// TraceSpan implements core.TraceObserver.
func (r *Ring) TraceSpan(ev core.TraceEvent) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next, r.filled = 0, true
	}
	r.total++
	r.byKind[ev.Kind]++
	r.mu.Unlock()
}

// Total reports the number of events ever observed (not just retained).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Counts returns a copy of the per-kind lifetime counters.
func (r *Ring) Counts() map[core.SpanKind]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[core.SpanKind]uint64, len(r.byKind))
	for k, v := range r.byKind {
		out[k] = v
	}
	return out
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []core.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]core.TraceEvent, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]core.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// ByUUID returns the retained events of one job, oldest first.
func (r *Ring) ByUUID(uuid job.UUID) []core.TraceEvent {
	var out []core.TraceEvent
	for _, ev := range r.Events() {
		if ev.UUID == uuid {
			out = append(out, ev)
		}
	}
	return out
}
