package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
)

const testUUID = job.UUID("aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeee")

// cleanTrace fabricates the events of one uneventful job: submitted at node
// 1, discovered over a two-hop REQUEST flood, assigned to node 3, executed
// there. All invariants hold against the default protocol config.
func cleanTrace() []core.TraceEvent {
	cfg := core.DefaultConfig()
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	return []core.TraceEvent{
		{At: at(0), Node: 1, Kind: core.SpanSubmit, UUID: testUUID, Span: 0x101},
		{At: at(1), Node: 1, Kind: core.SpanFloodOrigin, UUID: testUUID, Span: 0x102, Parent: 0x101,
			Msg: core.MsgRequest, Hop: 0, TTL: cfg.RequestTTL, Fanout: 2, Seq: 1, Origin: 1},
		{At: at(2), Node: 2, Kind: core.SpanForward, UUID: testUUID, Span: 0x201, Parent: 0x102,
			Msg: core.MsgRequest, Hop: 1, TTL: cfg.RequestTTL - 1, Fanout: 2, Seq: 1, Origin: 1, Peer: 1},
		{At: at(3), Node: 3, Kind: core.SpanOffer, UUID: testUUID, Span: 0x301, Parent: 0x201,
			Msg: core.MsgRequest, Hop: 2, TTL: cfg.RequestTTL - 2, Seq: 1, Origin: 1, Peer: 1, Cost: 10},
		{At: at(4), Node: 2, Kind: core.SpanDuplicate, UUID: testUUID, Parent: 0x102,
			Msg: core.MsgRequest, Hop: 1, TTL: cfg.RequestTTL - 1, Seq: 1, Origin: 1, Peer: 1},
		{At: at(5), Node: 1, Kind: core.SpanOfferRecv, UUID: testUUID, Span: 0x103, Parent: 0x301, Peer: 3, Cost: 10},
		{At: at(6), Node: 1, Kind: core.SpanAssign, UUID: testUUID, Span: 0x104, Parent: 0x102, Peer: 3, Cost: 10},
		{At: at(7), Node: 3, Kind: core.SpanEnqueue, UUID: testUUID, Span: 0x302, Parent: 0x104, Peer: 1},
		{At: at(8), Node: 3, Kind: core.SpanStart, UUID: testUUID, Span: 0x303, Parent: 0x302},
		{At: at(9), Node: 3, Kind: core.SpanComplete, UUID: testUUID, Span: 0x304, Parent: 0x303},
	}
}

func TestCheckCleanTrace(t *testing.T) {
	rep := Check(cleanTrace(), Opts{Protocol: core.DefaultConfig()})
	if !rep.OK() {
		t.Fatalf("clean trace reported violations:\n%s", rep)
	}
	if rep.Jobs != 1 || rep.Events != 10 {
		t.Fatalf("got %d jobs %d events, want 1 and 10", rep.Jobs, rep.Events)
	}
	if rep.ByKind[core.SpanForward] != 1 || rep.ByKind[core.SpanDuplicate] != 1 {
		t.Fatalf("kind counts wrong: %v", rep.ByKind)
	}
}

// TestCheckCatchesViolations corrupts the clean trace in each of the ways a
// broken protocol build would, and asserts the checker names the breach.
// This is the guarantee that e.g. an engine that ignores the reschedule
// threshold cannot pass the invariant suite.
func TestCheckCatchesViolations(t *testing.T) {
	cfg := core.DefaultConfig()
	cases := []struct {
		name      string
		invariant string
		opts      Opts
		mutate    func(evs []core.TraceEvent) []core.TraceEvent
	}{
		{
			name: "ttl over budget", invariant: "flood-ttl",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				evs[2].TTL = cfg.RequestTTL + 1
				evs[2].Hop = -1
				return evs
			},
		},
		{
			name: "hop conservation broken", invariant: "hop-conservation",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				evs[2].Hop = 3 // should be 1 at ttl 8
				return evs
			},
		},
		{
			name: "fanout over budget", invariant: "flood-fanout",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				evs[1].Fanout = cfg.RequestFanout + 1
				return evs
			},
		},
		{
			name: "duplicate re-forwarded", invariant: "double-forward",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				// The old bug: a node's own re-receipt counted as a forward.
				dup := evs[2]
				dup.Span = 0x202
				return append(evs, dup)
			},
		},
		{
			name: "reschedule at exactly the threshold", invariant: "reschedule-threshold",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return append(evs, core.TraceEvent{
					Node: 3, Kind: core.SpanReschedule, UUID: testUUID, Span: 0x305,
					Parent: 0x302, Peer: 2, OldCost: 1000, Cost: 1000 - 180,
				}, core.TraceEvent{
					Node: 2, Kind: core.SpanEnqueue, UUID: testUUID, Span: 0x203, Parent: 0x305,
				})
			},
		},
		{
			name: "assign retries exhausted budget", invariant: "retry-bound",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return append(evs, core.TraceEvent{
					Node: 1, Kind: core.SpanRetry, UUID: testUUID, Span: 0x105,
					Parent: 0x104, Peer: 3, Attempt: cfg.AssignMaxRetries + 1,
				})
			},
		},
		{
			name: "assign without consequence", invariant: "orphaned-assign",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				evs[7].Parent = 0x302 // detach the enqueue from the assign
				return evs
			},
		},
		{
			name: "double execution", invariant: "exactly-one-start",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return append(evs, core.TraceEvent{
					Node: 2, Kind: core.SpanStart, UUID: testUUID, Span: 0x204, Parent: 0x302,
				})
			},
		},
		{
			name: "job silently dropped", invariant: "exactly-one-start",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return evs[:8] // cut start and complete
			},
		},
		{
			name: "parent never emitted", invariant: "dangling-parent",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				evs[8].Parent = 0xdead
				return evs
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Protocol = cfg
			rep := Check(tc.mutate(cleanTrace()), tc.opts)
			if rep.OK() {
				t.Fatalf("checker missed the %q breach", tc.invariant)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Invariant == tc.invariant {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a %q violation, got:\n%s", tc.invariant, rep)
			}
		})
	}
}

func TestCheckRelaxations(t *testing.T) {
	cfg := core.DefaultConfig()
	// An incomplete job passes only with AllowIncomplete.
	cut := cleanTrace()[:8]
	if rep := Check(cut, Opts{Protocol: cfg}); rep.OK() {
		t.Fatal("incomplete job passed a strict check")
	}
	if rep := Check(cut, Opts{Protocol: cfg, AllowIncomplete: true}); !rep.OK() {
		t.Fatalf("AllowIncomplete still failed:\n%s", rep)
	}
	// A duplicate start passes only with AllowDuplicateStarts.
	dup := append(cleanTrace(), core.TraceEvent{
		Node: 2, Kind: core.SpanStart, UUID: testUUID, Span: 0x204, Parent: 0x302,
	}, core.TraceEvent{
		Node: 2, Kind: core.SpanComplete, UUID: testUUID, Span: 0x205, Parent: 0x204,
	})
	if rep := Check(dup, Opts{Protocol: cfg}); rep.OK() {
		t.Fatal("duplicate start passed a strict check")
	}
	if rep := Check(dup, Opts{Protocol: cfg, AllowDuplicateStarts: true}); !rep.OK() {
		t.Fatalf("AllowDuplicateStarts still failed:\n%s", rep)
	}
}

func TestForestShape(t *testing.T) {
	forest := Forest(cleanTrace())
	roots := forest[testUUID]
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1 (the submit span)", len(roots))
	}
	if roots[0].Event.Kind != core.SpanSubmit {
		t.Fatalf("root is %s, want submit", roots[0].Event.Kind)
	}
	// submit -> flood_origin -> {forward -> offer, duplicate, offer_recv?...}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Event.Kind != core.SpanFloodOrigin {
		t.Fatalf("submit's child is not the flood origin")
	}
	out := FormatJob(cleanTrace(), testUUID)
	for _, want := range []string{"submit", "flood_origin", "forward", "offer", "assign", "enqueue", "start", "complete"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted tree missing %q:\n%s", want, out)
		}
	}
	// Depth increases with causality: the forward is indented under the origin.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10:\n%s", len(lines), out)
	}
	if FormatJob(cleanTrace(), "no-such-uuid") != "" {
		t.Fatal("unknown uuid should format to empty")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	for _, ev := range cleanTrace() {
		c.TraceSpan(ev)
	}
	if c.Len() != 10 {
		t.Fatalf("len %d, want 10", c.Len())
	}
	if got := len(c.ByUUID(testUUID)); got != 10 {
		t.Fatalf("ByUUID returned %d events, want 10", got)
	}
	if got := len(c.ByUUID("other")); got != 0 {
		t.Fatalf("ByUUID for unknown job returned %d events", got)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(4)
	evs := cleanTrace()
	for _, ev := range evs {
		r.TraceSpan(ev)
	}
	if r.Total() != 10 {
		t.Fatalf("total %d, want 10", r.Total())
	}
	kept := r.Events()
	if len(kept) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(kept))
	}
	// Oldest-first: the last four emitted events in order.
	for i, ev := range kept {
		if ev.Span != evs[6+i].Span {
			t.Fatalf("ring order wrong at %d: got span %#x want %#x", i, ev.Span, evs[6+i].Span)
		}
	}
	if r.Counts()[core.SpanSubmit] != 1 {
		t.Fatalf("lifetime counts lost evicted events: %v", r.Counts())
	}
}

// TestCheckMembershipInvariants exercises the three invariants the
// membership plane added: escalated re-floods stay within their TTL grant,
// nobody addresses a peer it has itself declared dead, and overlay repair
// respects the degree bound.
func TestCheckMembershipInvariants(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ReFloodTTLStep = 2
	cfg.MaxDegree = 4
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

	// A clean trace with membership activity layered on: a suspicion that
	// is later confirmed dead, a legal repair, and a legally escalated
	// re-flood whose forwards exceed the base RequestTTL budget.
	clean := func() []core.TraceEvent {
		evs := cleanTrace()
		extra := []core.TraceEvent{
			{At: at(20), Node: 2, Kind: core.SpanSuspect, Span: 0x210, Peer: 5},
			{At: at(21), Node: 2, Kind: core.SpanPeerDead, Span: 0x211, Parent: 0x210, Peer: 5},
			{At: at(22), Node: 2, Kind: core.SpanRepair, Span: 0x212, Parent: 0x211,
				Peer: 6, Origin: 5, Fanout: 3},
			// Re-flood attempt 1: TTL escalated to RequestTTL+2, forwarded
			// one hop. Hop conservation must use the escalated budget.
			{At: at(30), Node: 1, Kind: core.SpanFloodOrigin, UUID: testUUID, Span: 0x110, Parent: 0x101,
				Msg: core.MsgRequest, Hop: 0, TTL: cfg.RequestTTL + 2, Fanout: 2, Seq: 2, Origin: 1, Attempt: 1},
			{At: at(31), Node: 2, Kind: core.SpanForward, UUID: testUUID, Span: 0x213, Parent: 0x110,
				Msg: core.MsgRequest, Hop: 1, TTL: cfg.RequestTTL + 1, Fanout: 2, Seq: 2, Origin: 1, Peer: 1},
		}
		return append(evs, extra...)
	}

	if rep := Check(clean(), Opts{Protocol: cfg}); !rep.OK() {
		t.Fatalf("clean membership trace reported violations:\n%s", rep)
	}

	cases := []struct {
		name      string
		invariant string
		mutate    func(evs []core.TraceEvent) []core.TraceEvent
	}{
		{
			name: "re-flood exceeds escalation grant", invariant: "reflood-ttl",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return append(evs, core.TraceEvent{
					At: at(40), Node: 1, Kind: core.SpanFloodOrigin, UUID: testUUID, Span: 0x111,
					Parent: 0x101, Msg: core.MsgRequest, Hop: 0,
					TTL: cfg.RequestTTL + 2*cfg.ReFloodTTLStep + 1,
					Fanout: 2, Seq: 3, Origin: 1, Attempt: 2,
				})
			},
		},
		{
			name: "assign targets a dead peer", invariant: "dead-peer-send",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return append(evs,
					core.TraceEvent{At: at(40), Node: 1, Kind: core.SpanPeerDead, Span: 0x112, Peer: 3},
					core.TraceEvent{At: at(41), Node: 1, Kind: core.SpanAssign, UUID: testUUID,
						Span: 0x113, Parent: 0x102, Peer: 3, Cost: 10},
					core.TraceEvent{At: at(42), Node: 3, Kind: core.SpanEnqueue, UUID: testUUID,
						Span: 0x310, Parent: 0x113, Peer: 1})
			},
		},
		{
			name: "repair reconnects a dead peer", invariant: "dead-peer-send",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return append(evs, core.TraceEvent{
					At: at(40), Node: 2, Kind: core.SpanRepair, Span: 0x214, Parent: 0x211,
					Peer: 5, Origin: 5, Fanout: 3,
				})
			},
		},
		{
			name: "repair exceeds degree bound", invariant: "repair-degree",
			mutate: func(evs []core.TraceEvent) []core.TraceEvent {
				return append(evs, core.TraceEvent{
					At: at(40), Node: 2, Kind: core.SpanRepair, Span: 0x215, Parent: 0x211,
					Peer: 7, Origin: 5, Fanout: cfg.MaxDegree + 1,
				})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Check(tc.mutate(clean()), Opts{Protocol: cfg})
			if rep.OK() {
				t.Fatalf("checker missed the %q breach", tc.invariant)
			}
			found := false
			for _, v := range rep.Violations {
				if v.Invariant == tc.invariant {
					found = true
				} else {
					t.Errorf("collateral violation: %v", v)
				}
			}
			if !found {
				t.Fatalf("want a %q violation, got:\n%s", tc.invariant, rep)
			}
		})
	}
}
