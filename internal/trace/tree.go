package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
)

// SpanNode is one node of a job's reconstructed causal tree.
type SpanNode struct {
	Event    core.TraceEvent
	Children []*SpanNode
}

// Forest groups events by job and links each event under its causal parent.
// Events whose parent span is unknown (true roots, or events parented to a
// span emitted for another job or evicted from a ring buffer) become roots.
// Roots and children are ordered by time, then span, so the layout is
// deterministic for a deterministic run.
func Forest(events []core.TraceEvent) map[job.UUID][]*SpanNode {
	byJob := make(map[job.UUID][]core.TraceEvent)
	for _, ev := range events {
		byJob[ev.UUID] = append(byJob[ev.UUID], ev)
	}
	out := make(map[job.UUID][]*SpanNode, len(byJob))
	for uuid, evs := range byJob {
		out[uuid] = buildTree(evs)
	}
	return out
}

func buildTree(events []core.TraceEvent) []*SpanNode {
	nodes := make([]*SpanNode, len(events))
	bySpan := make(map[uint64]*SpanNode, len(events))
	for i, ev := range events {
		nodes[i] = &SpanNode{Event: ev}
		if ev.Span != 0 {
			bySpan[ev.Span] = nodes[i]
		}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		parent := bySpan[n.Event.Parent]
		if n.Event.Parent == 0 || parent == nil || parent == n {
			roots = append(roots, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	order := func(a, b *SpanNode) bool {
		if a.Event.At != b.Event.At {
			return a.Event.At < b.Event.At
		}
		return a.Event.Span < b.Event.Span
	}
	sort.SliceStable(roots, func(i, k int) bool { return order(roots[i], roots[k]) })
	for _, n := range nodes {
		c := n.Children
		sort.SliceStable(c, func(i, k int) bool { return order(c[i], c[k]) })
	}
	return roots
}

// FormatForest renders one job's causal tree as an indented text outline,
// one event per line.
func FormatForest(roots []*SpanNode) string {
	var b strings.Builder
	for _, r := range roots {
		formatNode(&b, r, 0)
	}
	return b.String()
}

func formatNode(b *strings.Builder, n *SpanNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(formatEvent(n.Event))
	b.WriteByte('\n')
	for _, c := range n.Children {
		formatNode(b, c, depth+1)
	}
}

// formatEvent renders one event as a single line: time, node, kind, and the
// fields that matter for its kind.
func formatEvent(ev core.TraceEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s node=%-4d %s", ev.At, ev.Node, ev.Kind)
	switch ev.Kind {
	case core.SpanFloodOrigin, core.SpanForward:
		fmt.Fprintf(&b, " msg=%s hop=%d ttl=%d fanout=%d seq=%d", ev.Msg, ev.Hop, ev.TTL, ev.Fanout, ev.Seq)
	case core.SpanDuplicate:
		fmt.Fprintf(&b, " msg=%s hop=%d ttl=%d via=%d", ev.Msg, ev.Hop, ev.TTL, ev.Peer)
	case core.SpanOffer:
		fmt.Fprintf(&b, " msg=%s hop=%d cost=%.3f to=%d", ev.Msg, ev.Hop, float64(ev.Cost), ev.Peer)
	case core.SpanOfferRecv:
		fmt.Fprintf(&b, " cost=%.3f from=%d", float64(ev.Cost), ev.Peer)
	case core.SpanAssign:
		fmt.Fprintf(&b, " to=%d cost=%.3f", ev.Peer, float64(ev.Cost))
	case core.SpanReschedule:
		fmt.Fprintf(&b, " to=%d cost=%.3f old=%.3f", ev.Peer, float64(ev.Cost), float64(ev.OldCost))
	case core.SpanRetry, core.SpanResubmit:
		fmt.Fprintf(&b, " attempt=%d peer=%d", ev.Attempt, ev.Peer)
	case core.SpanFallback, core.SpanCancel:
		fmt.Fprintf(&b, " peer=%d", ev.Peer)
	}
	return b.String()
}

// FormatJob reconstructs and renders the causal tree of one job from a raw
// event stream: the convenience entry point for `ariactl trace` and tests.
func FormatJob(events []core.TraceEvent, uuid job.UUID) string {
	var evs []core.TraceEvent
	for _, ev := range events {
		if ev.UUID == uuid {
			evs = append(evs, ev)
		}
	}
	if len(evs) == 0 {
		return ""
	}
	return FormatForest(buildTree(evs))
}
