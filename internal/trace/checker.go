package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// Opts configures an invariant check. Protocol carries the configuration
// the traced deployment ran with; the bound invariants (TTL, fanout,
// threshold, retry budgets) come from it, so a sweep that raises RequestTTL
// is checked against its own limits, not the paper defaults.
type Opts struct {
	Protocol core.Config

	// AllowDuplicateStarts tolerates more than one start (and complete)
	// per job: legitimate under multi-assign racing and under failsafe
	// resubmission, where a presumed-dead assignee may still finish.
	AllowDuplicateStarts bool

	// AllowIncomplete tolerates jobs that never reach a terminal state
	// within the trace: crash/churn scenarios lose work on purpose, and
	// live traces are cut off mid-flight.
	AllowIncomplete bool

	// AllowLoss tolerates assignment spans with no observable follow-up:
	// without the AssignAck handshake a lossy link can swallow an ASSIGN
	// leaving no child event. With the handshake on, leave this false even
	// for lossy runs — retries and fallbacks are traced, so every assign
	// still has a consequence.
	AllowLoss bool
}

// Violation is one invariant breach, anchored to the event exposing it.
type Violation struct {
	Invariant string         // short code, e.g. "flood-ttl"
	UUID      job.UUID       // affected job
	Node      overlay.NodeID // node whose event exposed the breach (0 if job-level)
	Span      uint64         // offending span (0 if job-level)
	Detail    string         // human-readable specifics
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] job %s", v.Invariant, v.UUID.Short())
	if v.Span != 0 {
		fmt.Fprintf(&b, " node %d span %#x", v.Node, v.Span)
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	return b.String()
}

// Report is the result of one invariant check.
type Report struct {
	Events     int
	Jobs       int
	ByKind     map[core.SpanKind]int
	Violations []Violation
}

// OK reports whether no invariant was violated.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// String summarizes the report; violations are listed one per line.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %d jobs, %d violations", r.Events, r.Jobs, len(r.Violations))
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "\n  %-14s %d", k, r.ByKind[core.SpanKind(k)])
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  VIOLATION %s", v)
	}
	return b.String()
}

// waveKey names one flood wave, mirroring the engine's dedup key.
type waveKey struct {
	uuid   job.UUID
	msg    core.MsgType
	origin overlay.NodeID
	seq    uint64
}

// nodeWave names one node's participation in one wave.
type nodeWave struct {
	wave waveKey
	node overlay.NodeID
}

// Check audits a run's span events against the protocol invariants:
//
//   - flood-ttl / flood-fanout: REQUEST floods respect RequestTTL and
//     RequestFanout, INFORM floods InformTTL and InformFanout.
//   - hop-conservation: Hop+TTL is invariant along a wave (equal to the
//     configured TTL budget), so hop counts are trustworthy.
//   - double-forward: a node forwards a given wave at most once; duplicate
//     receipts are suppressed, not re-forwarded.
//   - reschedule-threshold: every reschedule improves the job's cost by
//     strictly more than RescheduleThreshold.
//   - retry-bound: ASSIGN retransmissions stay within AssignMaxRetries and
//     watchdog resubmissions within MaxRequestRetries.
//   - orphaned-assign: every assignment or reschedule handoff has an
//     observable consequence — an enqueue at the target, a retry, or a
//     fallback (relaxed by AllowLoss).
//   - exactly-one-start / exactly-one-complete: each submitted job starts
//     and completes exactly once (relaxed by AllowDuplicateStarts /
//     AllowIncomplete).
//   - dangling-parent: every parent reference resolves to an emitted span.
//   - reflood-ttl: watchdog re-floods may escalate the TTL, but never beyond
//     RequestTTL + attempt·ReFloodTTLStep.
//   - dead-peer-send: once a node declares a peer dead (terminal), none of
//     its later protocol steps target that peer. Restarts relax this on
//     both sides: a rebooted observer forgets its verdicts (the journal
//     holds scheduler state only), and a verdict against a peer that ever
//     reboots is incarnation-ambiguous — spans carry no incarnation number,
//     so reconnecting to the revenant is re-admission, not a breach.
//   - repair-degree: overlay repair never pushes a node past MaxDegree.
//   - recovered-parent: every replayed span links into the pre-crash causal
//     tree (a recovery that cannot name what it recovered replayed garbage).
//   - recovery-reflood: a recovered tracked job or in-flight handshake must
//     not originate a fresh REQUEST flood while its pre-crash ASSIGN is
//     still live — only a traced watchdog resubmission or delivery fallback
//     may re-flood it.
//   - recovery-double-exec: a start caused by journal replay must not
//     re-execute a job the same node already ran (started without a crash,
//     or completed). This stays armed even under AllowDuplicateStarts:
//     failsafe races may double-start across nodes, but replay re-running
//     finished local work means the journal lied.
//   - directed-budget: a directed discovery round probes at most
//     DirectedCandidates nodes, and no directed wave collects more offers
//     than it sent probes (a probe never propagates beyond its target).
//   - directed-fallback: the flood fallback fires exactly when a directed
//     round starves — a round with fewer than MinDirectedOffers remote
//     offers must close with the fallback (or a crash loss), and a round
//     with enough offers must never fall back.
//   - directed-assign-match: a directed round's assignment targets the
//     initiator itself or a node that actually offered during the round —
//     an offer is the proof the target's live profile satisfies the job,
//     so no directed ASSIGN ever lands on a non-satisfying (or corpse)
//     profile the cache merely remembered.
//   - shed-assign: a shed ASSIGN is never orphaned. The provider's BUSY
//     reply must be answered by a shed re-dispatch at the sender (relaxed
//     by AllowLoss and AllowIncomplete: a lost BUSY falls back to the
//     retry ladder, and a crashed sender loses the handshake), and every
//     shed span must have a re-dispatch child — the engine re-homes the
//     job in the same step, so a childless shed means it dropped the job.
//   - commit-retry-bound: optimistic-commit attempts stay within
//     SharedStateRetries — on every commit span, every timeout verdict,
//     and the fallback escalation.
//   - commit-chain: a retry commit (attempt ≥ 2) and the flood fallback
//     each parent to a conflict span — the view is re-consulted only as
//     the consequence of a typed CONFLICT (or a timeout verdict), never
//     speculatively.
//   - commit-conflict-once: each commit attempt resolves at most once per
//     side — at most one provider CONFLICT reply and at most one
//     initiator timeout verdict per commit span.
//   - orphaned-commit: every commit span has an observable consequence —
//     a conflict, a grant's enqueue at the provider, a duplicate
//     re-grant, a revoking cancel, or a crash loss (relaxed by AllowLoss
//     and AllowIncomplete).
//   - commit-exactly-one: concurrent optimistic commits place at most one
//     live copy — per job, granted commit spans (an enqueue child, no
//     revoking cancel) never exceed one plus the traced resubmissions.
func Check(events []core.TraceEvent, opts Opts) Report {
	rep := Report{
		Events: len(events),
		ByKind: make(map[core.SpanKind]int),
	}
	add := func(inv string, ev core.TraceEvent, format string, args ...interface{}) {
		rep.Violations = append(rep.Violations, Violation{
			Invariant: inv, UUID: ev.UUID, Node: ev.Node, Span: ev.Span,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	cfg := opts.Protocol
	spans := make(map[uint64]bool, len(events))
	jobs := make(map[job.UUID]*jobState)
	forwards := make(map[nodeWave]int)
	js := func(u job.UUID) *jobState {
		s := jobs[u]
		if s == nil {
			s = &jobState{}
			jobs[u] = s
		}
		return s
	}

	// TTL-budget prepass: escalated re-floods legitimately carry a larger
	// hop budget than cfg.RequestTTL, so hop conservation must be checked
	// against each wave's own budget, read off its origin event (hop 0).
	// Directed probe waves carry a budget of 1 (one unicast hop, nothing to
	// forward), so their receivers' offer events share the same audit.
	waveBudget := make(map[waveKey]int)
	directedWaves := make(map[waveKey]int) // probe count per directed wave
	kindOf := make(map[uint64]core.SpanKind, len(events))
	for _, ev := range events {
		if ev.Kind == core.SpanFloodOrigin || ev.Kind == core.SpanDirectedProbe {
			k := waveKey{uuid: ev.UUID, msg: ev.Msg, origin: ev.Origin, seq: ev.Seq}
			waveBudget[k] = ev.Hop + ev.TTL
			if ev.Kind == core.SpanDirectedProbe {
				directedWaves[k] = ev.Fanout
			}
		}
		if ev.Span != 0 {
			kindOf[ev.Span] = ev.Kind
		}
	}
	waveOffers := make(map[waveKey]int)

	// Optimistic-commit state: conflict replies and timeout verdicts per
	// commit span, for the at-most-once resolution audit.
	provConflicts := make(map[uint64]int)
	timeoutConflicts := make(map[uint64]int)

	// dead-peer-send state: pairs (observer, peer) with a terminal dead
	// verdict. Events arrive in emission order, so a plain forward scan
	// respects each node's local causality.
	type nodePeer struct{ node, peer overlay.NodeID }
	dead := make(map[nodePeer]bool)

	// Restart prepass: dead verdicts against a node that reboots at any
	// point are incarnation-ambiguous and exempt from dead-peer-send.
	restarted := make(map[overlay.NodeID]bool)
	for _, ev := range events {
		if ev.Kind == core.SpanRestart {
			restarted[ev.Node] = true
		}
	}

	// Recovery-plane state. recoveredSpans lets a later start prove it was
	// caused by replay (its parent is a SpanRecovered span); liveAssign marks
	// (node, job) pairs whose recovered ASSIGN is still outstanding and so
	// must not re-flood; started/completed track each node's own execution
	// history for the replay double-run audit.
	type nodeJob struct {
		node overlay.NodeID
		uuid job.UUID
	}
	recoveredSpans := make(map[uint64]bool)
	liveAssign := make(map[nodeJob]bool)
	started := make(map[nodeJob]bool)
	completed := make(map[nodeJob]bool)

	// Directed-discovery state: at most one round is open per (initiator,
	// job) — the engine keys pending rounds the same way — so offer_recv
	// events at the initiator while its round is open are exactly the
	// offers the engine's fallback gate counted (including stale ACCEPTs
	// from slow candidates, which the gate counts too). The round closes
	// at the first child of the probe span: fallback, assign, retry
	// re-flood, fail, or a crash loss.
	type directedRound struct {
		open   core.TraceEvent // the directed-probe event
		offers int
		peers  map[overlay.NodeID]bool
	}
	openDirected := make(map[nodeJob]*directedRound)

	for _, ev := range events {
		rep.ByKind[ev.Kind]++
		if ev.Span != 0 {
			spans[ev.Span] = true
		}

		// Membership events carry no job; keep them out of the per-job
		// lifecycle audit.
		switch ev.Kind {
		case core.SpanSuspect:
			continue
		case core.SpanPeerDead:
			if !restarted[ev.Peer] {
				dead[nodePeer{ev.Node, ev.Peer}] = true
			}
			continue
		case core.SpanRepair:
			if dead[nodePeer{ev.Node, ev.Peer}] {
				add("dead-peer-send", ev, "repair reconnected to peer %d already declared dead", ev.Peer)
			}
			if cfg.MaxDegree > 0 && ev.Fanout > cfg.MaxDegree {
				add("repair-degree", ev, "repair left node at degree %d, bound %d", ev.Fanout, cfg.MaxDegree)
			}
			continue
		case core.SpanRestart:
			// Node-level recovery marker; carries no job. The journal holds
			// scheduler state only, so a restarted node comes back with no
			// memory of its membership verdicts: wipe the ones this
			// incarnation never made.
			for np := range dead {
				if np.node == ev.Node {
					delete(dead, np)
				}
			}
			continue
		case core.SpanRecovered:
			if ev.Parent == 0 {
				add("recovered-parent", ev, "replayed %s span has no pre-crash parent", ev.Msg)
			}
			recoveredSpans[ev.Span] = true
			if ev.Msg == core.MsgNotify || ev.Msg == core.MsgAssignAck {
				// A re-armed watchdog or re-opened handshake: the pre-crash
				// ASSIGN for this job is still live at this node.
				liveAssign[nodeJob{ev.Node, ev.UUID}] = true
			}
			continue
		case core.SpanOffer, core.SpanRetry, core.SpanAssign, core.SpanReschedule, core.SpanCommit:
			if dead[nodePeer{ev.Node, ev.Peer}] {
				add("dead-peer-send", ev, "%s targets peer %d already declared dead", ev.Kind, ev.Peer)
			}
		}
		s := js(ev.UUID)
		nk := nodeJob{ev.Node, ev.UUID}

		switch ev.Kind {
		case core.SpanSubmit:
			s.submits++
		case core.SpanStart:
			s.starts++
			if recoveredSpans[ev.Parent] && (started[nk] || completed[nk]) {
				add("recovery-double-exec", ev, "journal replay re-ran a job this node already executed")
			}
			started[nk] = true
		case core.SpanComplete:
			s.completes++
			completed[nk] = true
		case core.SpanFail:
			s.fails++
			delete(liveAssign, nk)
		case core.SpanLost:
			s.losses++
			// A crash wipes the node's execution; a post-recovery re-run of
			// the in-flight job is the protocol working as designed.
			delete(started, nk)
			delete(liveAssign, nk)
		case core.SpanFallback, core.SpanCancel:
			delete(liveAssign, nk)
		case core.SpanShed:
			// The shed re-dispatch (a re-flood or local re-enqueue) is the
			// legitimate continuation of a recovered handshake.
			delete(liveAssign, nk)
			s.sheds = append(s.sheds, ev)
		case core.SpanBusy:
			if ev.Msg == core.MsgAssign {
				s.busyAssigns = append(s.busyAssigns, ev)
			}
		case core.SpanResubmit:
			s.resubmits++
			delete(liveAssign, nk)
			if ev.Attempt > cfg.MaxRequestRetries {
				add("retry-bound", ev, "resubmission %d exceeds MaxRequestRetries %d", ev.Attempt, cfg.MaxRequestRetries)
			}
		case core.SpanRetry:
			if ev.Attempt > cfg.AssignMaxRetries {
				add("retry-bound", ev, "ASSIGN retry %d exceeds AssignMaxRetries %d", ev.Attempt, cfg.AssignMaxRetries)
			}
		case core.SpanAssign, core.SpanReschedule:
			s.assigns = append(s.assigns, ev)
		case core.SpanFloodOrigin:
			if ev.Attempt > cfg.MaxRequestRetries {
				add("retry-bound", ev, "REQUEST re-flood %d exceeds MaxRequestRetries %d", ev.Attempt, cfg.MaxRequestRetries)
			}
			if ev.Msg == core.MsgRequest && liveAssign[nk] {
				add("recovery-reflood", ev, "fresh REQUEST flood while the recovered ASSIGN for this job is still live")
			}
			if ev.Msg == core.MsgRequest {
				bound := cfg.RequestTTL + ev.Attempt*cfg.ReFloodTTLStep
				if ev.TTL > bound {
					add("reflood-ttl", ev, "re-flood %d carries TTL %d, bound %d (RequestTTL %d + %d·ReFloodTTLStep %d)",
						ev.Attempt, ev.TTL, bound, cfg.RequestTTL, ev.Attempt, cfg.ReFloodTTLStep)
				}
			}
		case core.SpanCommit:
			s.commits = append(s.commits, ev)
			if cfg.SharedStateRetries > 0 && ev.Attempt > cfg.SharedStateRetries {
				add("commit-retry-bound", ev, "commit attempt %d exceeds SharedStateRetries %d", ev.Attempt, cfg.SharedStateRetries)
			}
			if ev.Attempt > 1 && kindOf[ev.Parent] != core.SpanConflict {
				add("commit-chain", ev, "retry commit (attempt %d) parents a %s span, not the conflict that justified it", ev.Attempt, kindOf[ev.Parent])
			}
		case core.SpanConflict:
			if ev.Reason == "timeout" {
				// Initiator-side verdict: a silent provider, charged against
				// the same retry budget as a typed reply.
				if cfg.SharedStateRetries > 0 && ev.Attempt > cfg.SharedStateRetries {
					add("commit-retry-bound", ev, "timeout verdict %d exceeds SharedStateRetries %d", ev.Attempt, cfg.SharedStateRetries)
				}
				timeoutConflicts[ev.Parent]++
				if timeoutConflicts[ev.Parent] == 2 {
					add("commit-conflict-once", ev, "commit span %#x timed out twice", ev.Parent)
				}
			} else {
				provConflicts[ev.Parent]++
				if provConflicts[ev.Parent] == 2 {
					add("commit-conflict-once", ev, "commit span %#x drew a second CONFLICT reply", ev.Parent)
				}
			}
		case core.SpanCommitFallback:
			if ev.Attempt < 1 || (cfg.SharedStateRetries > 0 && ev.Attempt > cfg.SharedStateRetries) {
				add("commit-retry-bound", ev, "flood fallback after %d commit attempts, budget %d", ev.Attempt, cfg.SharedStateRetries)
			}
			if kindOf[ev.Parent] != core.SpanConflict {
				add("commit-chain", ev, "flood fallback parents a %s span, not the conflict that exhausted the round", kindOf[ev.Parent])
			}
		}

		// Directed-round lifecycle. The opening probe is budget-checked
		// against DirectedCandidates; every later event at the same
		// (node, job) either feeds the round (offer_recv) or closes it,
		// and a closer's kind must agree with the starvation verdict:
		// the fallback fires iff fewer than MinDirectedOffers arrived.
		switch ev.Kind {
		case core.SpanDirectedProbe:
			if cfg.DirectedCandidates > 0 && ev.Fanout > cfg.DirectedCandidates {
				add("directed-budget", ev, "directed round probed %d nodes, bound %d", ev.Fanout, cfg.DirectedCandidates)
			}
			openDirected[nk] = &directedRound{open: ev, peers: make(map[overlay.NodeID]bool)}
		default:
			if r := openDirected[nk]; r != nil {
				switch {
				case ev.Kind == core.SpanOfferRecv:
					r.offers++
					r.peers[ev.Peer] = true
				case ev.Parent != r.open.Span:
					// A child of some other span; not this round's closer.
				case ev.Kind == core.SpanLost:
					delete(openDirected, nk) // crash loses the round; no verdict
				case ev.Kind == core.SpanDirectoryFallback:
					if cfg.MinDirectedOffers > 0 && r.offers >= cfg.MinDirectedOffers {
						add("directed-fallback", ev, "flood fallback fired although %d offers arrived, min %d", r.offers, cfg.MinDirectedOffers)
					}
					delete(openDirected, nk)
				case ev.Kind == core.SpanAssign || ev.Kind == core.SpanFloodOrigin || ev.Kind == core.SpanFail:
					if cfg.MinDirectedOffers > 0 && r.offers < cfg.MinDirectedOffers {
						add("directed-fallback", ev, "%s closed a directed round with %d offers, min %d — the flood fallback never fired", ev.Kind, r.offers, cfg.MinDirectedOffers)
					}
					if ev.Kind == core.SpanAssign && ev.Peer != ev.Node && !r.peers[ev.Peer] {
						add("directed-assign-match", ev, "directed ASSIGN targets node %d, which never offered in the round", ev.Peer)
					}
					delete(openDirected, nk)
				}
			}
		}

		// Directed waves collect at most one offer per probe: a TTL-0
		// probe dies at its target, so more offers than probes means a
		// probe propagated.
		if ev.Kind == core.SpanOffer {
			k := waveKey{uuid: ev.UUID, msg: ev.Msg, origin: ev.Origin, seq: ev.Seq}
			if probes, ok := directedWaves[k]; ok {
				waveOffers[k]++
				if waveOffers[k] > probes {
					add("directed-budget", ev, "directed wave (origin %d seq %d) yielded %d offers from %d probes", ev.Origin, ev.Seq, waveOffers[k], probes)
				}
			}
		}

		// Flood-shape invariants, against the wave's own budget (escalated
		// re-floods carry a larger one than the configured default). The
		// message-type guard keeps non-flood duplicates (e.g. a suppressed
		// duplicate ASSIGN) out of the hop accounting.
		if isFloodEvent(ev.Kind) && (ev.Msg == core.MsgRequest || ev.Msg == core.MsgInform) {
			budgetTTL, budgetFan := cfg.RequestTTL, cfg.RequestFanout
			if ev.Msg == core.MsgInform {
				budgetTTL, budgetFan = cfg.InformTTL, cfg.InformFanout
			}
			if b, ok := waveBudget[waveKey{uuid: ev.UUID, msg: ev.Msg, origin: ev.Origin, seq: ev.Seq}]; ok {
				budgetTTL = b
			}
			if ev.Hop < 0 || ev.Hop > budgetTTL || ev.TTL < 0 || ev.TTL > budgetTTL {
				add("flood-ttl", ev, "%s %s hop %d ttl %d outside budget %d", ev.Msg, ev.Kind, ev.Hop, ev.TTL, budgetTTL)
			} else if ev.Hop+ev.TTL != budgetTTL {
				add("hop-conservation", ev, "%s %s hop %d + ttl %d != budget %d", ev.Msg, ev.Kind, ev.Hop, ev.TTL, budgetTTL)
			}
			if (ev.Kind == core.SpanFloodOrigin || ev.Kind == core.SpanForward) && ev.Fanout > budgetFan {
				add("flood-fanout", ev, "%s %s contacted %d neighbors, budget %d", ev.Msg, ev.Kind, ev.Fanout, budgetFan)
			}
			if ev.Kind == core.SpanForward && !cfg.DisableDuplicateSuppression {
				k := nodeWave{
					wave: waveKey{uuid: ev.UUID, msg: ev.Msg, origin: ev.Origin, seq: ev.Seq},
					node: ev.Node,
				}
				forwards[k]++
				if forwards[k] == 2 {
					add("double-forward", ev, "node forwarded wave (origin %d seq %d) more than once", ev.Origin, ev.Seq)
				}
			}
		}

		// Reschedule economics: the improvement must be strictly greater
		// than the threshold. The comparison replicates the engine's own
		// (identical float arithmetic), so exact comparison is sound.
		if ev.Kind == core.SpanReschedule {
			threshold := sched.Cost(cfg.RescheduleThreshold.Seconds())
			if ev.Cost >= ev.OldCost-threshold {
				add("reschedule-threshold", ev,
					"reschedule to node %d improves cost %.3f -> %.3f, not more than threshold %.3f",
					ev.Peer, float64(ev.OldCost), float64(ev.Cost), float64(threshold))
			}
		}
	}
	rep.Jobs = len(jobs)

	// Every directed round must reach a verdict within the trace: a round
	// left open means the decision timer's consequence (assign, fallback,
	// retry, fail) was never traced. Live traces cut off mid-flight relax
	// this the same way they relax job completion.
	if !opts.AllowIncomplete {
		open := make([]nodeJob, 0, len(openDirected))
		for nk := range openDirected {
			open = append(open, nk)
		}
		sort.Slice(open, func(i, k int) bool {
			if open[i].uuid != open[k].uuid {
				return open[i].uuid < open[k].uuid
			}
			return open[i].node < open[k].node
		})
		for _, nk := range open {
			r := openDirected[nk]
			rep.Violations = append(rep.Violations, Violation{
				Invariant: "directed-fallback", UUID: nk.uuid, Node: nk.node, Span: r.open.Span,
				Detail: fmt.Sprintf("directed round collected %d offers but never closed (no assign, fallback, retry, or loss)", r.offers),
			})
		}
	}

	// Parent references must resolve. Parent spans are emitted at the
	// sender before the message they ride can be received, so this holds
	// even under loss, duplication, and partitions.
	for _, ev := range events {
		if ev.Parent != 0 && !spans[ev.Parent] {
			add("dangling-parent", ev, "parent span %#x was never emitted", ev.Parent)
		}
	}

	// Children per span, for the orphaned-assign and commit audits. A
	// commit span's enqueue child is the provider's grant; a cancel child
	// is the initiator revoking a possibly-granted copy.
	children := make(map[uint64]int, len(events))
	enqKids := make(map[uint64]bool)
	cancelKids := make(map[uint64]bool)
	for _, ev := range events {
		if ev.Parent != 0 {
			children[ev.Parent]++
			switch ev.Kind {
			case core.SpanEnqueue:
				enqKids[ev.Parent] = true
			case core.SpanCancel:
				cancelKids[ev.Parent] = true
			}
		}
	}

	uuids := make([]job.UUID, 0, len(jobs))
	for u := range jobs {
		uuids = append(uuids, u)
	}
	sort.Slice(uuids, func(i, k int) bool { return uuids[i] < uuids[k] })
	for _, u := range uuids {
		s := jobs[u]
		jv := func(inv, format string, args ...interface{}) {
			rep.Violations = append(rep.Violations, Violation{
				Invariant: inv, UUID: u, Detail: fmt.Sprintf(format, args...),
			})
		}

		// Every assignment must have a consequence: the target enqueued
		// under it, a retry went out, or the fallback re-homed the job.
		if !opts.AllowLoss {
			for _, a := range s.assigns {
				if children[a.Span] == 0 {
					rep.Violations = append(rep.Violations, Violation{
						Invariant: "orphaned-assign", UUID: u, Node: a.Node, Span: a.Span,
						Detail: fmt.Sprintf("%s to node %d has no enqueue, retry, or fallback", a.Kind, a.Peer),
					})
				}
			}
		}

		// A shed ASSIGN must be re-dispatched, never orphaned. The BUSY-
		// answered half needs both relaxations off: AllowLoss covers a
		// swallowed BUSY, AllowIncomplete a sender crashing with the
		// handshake open. The shed-child half stays armed unconditionally:
		// the engine re-dispatches in the same critical section it emits
		// the shed span, so a childless shed means the job was dropped.
		if !opts.AllowLoss && !opts.AllowIncomplete {
			for _, b := range s.busyAssigns {
				if children[b.Span] == 0 {
					rep.Violations = append(rep.Violations, Violation{
						Invariant: "shed-assign", UUID: u, Node: b.Node, Span: b.Span,
						Detail: fmt.Sprintf("BUSY shedding an ASSIGN from node %d was never answered with a re-dispatch", b.Peer),
					})
				}
			}
		}
		for _, sh := range s.sheds {
			if children[sh.Span] == 0 {
				rep.Violations = append(rep.Violations, Violation{
					Invariant: "shed-assign", UUID: u, Node: sh.Node, Span: sh.Span,
					Detail: fmt.Sprintf("shed of the ASSIGN refused by node %d has no re-flood or re-enqueue child", sh.Peer),
				})
			}
		}

		// Every optimistic commit must resolve observably — a conflict, a
		// grant's enqueue, a duplicate re-grant, a revoking cancel, or a
		// crash loss — and the granted ones must place at most one live
		// copy beyond what traced resubmissions justify.
		if !opts.AllowLoss && !opts.AllowIncomplete {
			for _, c := range s.commits {
				if children[c.Span] == 0 {
					rep.Violations = append(rep.Violations, Violation{
						Invariant: "orphaned-commit", UUID: u, Node: c.Node, Span: c.Span,
						Detail: fmt.Sprintf("commit to node %d has no conflict, grant, cancel, or loss", c.Peer),
					})
				}
			}
		}
		liveGrants := 0
		for _, c := range s.commits {
			if enqKids[c.Span] && !cancelKids[c.Span] {
				liveGrants++
			}
		}
		if liveGrants > 1+s.resubmits {
			jv("commit-exactly-one", "%d live commit-granted copies, only %d resubmissions to justify them", liveGrants, s.resubmits)
		}

		// Execution counting. A job observed only mid-trace (no submit)
		// still must not start twice.
		if !opts.AllowDuplicateStarts {
			if s.starts > 1 {
				jv("exactly-one-start", "started %d times", s.starts)
			}
			if s.completes > 1 {
				jv("exactly-one-complete", "completed %d times", s.completes)
			}
		}
		if s.completes > 0 && s.starts == 0 {
			jv("exactly-one-start", "completed without a traced start")
		}
		if !opts.AllowIncomplete && s.submits > 0 {
			if s.starts == 0 && s.fails == 0 {
				jv("exactly-one-start", "submitted but never started or failed")
			}
			if s.starts > 0 && s.completes == 0 {
				jv("exactly-one-complete", "started but never completed")
			}
		}
	}
	return rep
}

// jobState accumulates one job's lifecycle counters during a check.
type jobState struct {
	submits     int
	starts      int
	completes   int
	fails       int
	losses      int
	resubmits   int
	assigns     []core.TraceEvent
	busyAssigns []core.TraceEvent
	sheds       []core.TraceEvent
	commits     []core.TraceEvent
}

func isFloodEvent(k core.SpanKind) bool {
	switch k {
	case core.SpanFloodOrigin, core.SpanForward, core.SpanDuplicate, core.SpanOffer:
		return true
	}
	return false
}
