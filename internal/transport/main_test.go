package transport

import (
	"os"
	"testing"

	"github.com/smartgrid/aria/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: the transport spins up
// real accept loops, connection servers, and sender goroutines, and every
// one of them must be gone once the tests finish.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
