package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"unicode/utf8"

	"github.com/smartgrid/aria/internal/core"
)

// maxWireMessage bounds inbound frames; real ARiA messages are ~1 KiB, so
// this is generous while still refusing hostile frames.
const maxWireMessage = 1 << 20

// WriteMessage frames m as a 4-byte big-endian length followed by its JSON
// encoding.
func WriteMessage(w io.Writer, m core.Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("encode message: %w", err)
	}
	if len(payload) > maxWireMessage {
		return fmt.Errorf("message of %d bytes exceeds frame limit", len(payload))
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame payload: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message and validates it structurally.
func ReadMessage(r io.Reader) (core.Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return core.Message{}, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(header[:])
	if size == 0 || size > maxWireMessage {
		return core.Message{}, fmt.Errorf("frame of %d bytes outside limits", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return core.Message{}, fmt.Errorf("read frame payload: %w", err)
	}
	// json.Unmarshal silently accepts invalid UTF-8 (replacing bad bytes),
	// which would let a corrupted frame decode into a mangled message
	// instead of erroring; reject it at the frame boundary.
	if !utf8.Valid(payload) {
		return core.Message{}, fmt.Errorf("frame payload is not valid UTF-8")
	}
	var m core.Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return core.Message{}, fmt.Errorf("decode message: %w", err)
	}
	if err := m.Validate(); err != nil {
		return core.Message{}, fmt.Errorf("invalid message: %w", err)
	}
	return m, nil
}
