package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"github.com/smartgrid/aria/internal/core"
)

// maxWireMessage bounds inbound frames; real ARiA messages are ~1 KiB, so
// this is generous while still refusing hostile frames.
const maxWireMessage = 1 << 20

// wireHeaderSize is the frame header: a 4-byte big-endian payload length
// followed by a 4-byte big-endian CRC-32 (IEEE) of the payload. The CRC is
// what lets a receiver reject wire corruption deterministically instead of
// feeding mangled bytes to the JSON decoder and hoping it chokes.
const wireHeaderSize = 8

// frameReadTimeout bounds how long the remainder of a frame may trail its
// first byte. Senders write a frame in one piece, so on a healthy link the
// gap is microseconds; after wire damage the gap is the failure itself — a
// corrupted length prefix that stays under the size bound leaves the reader
// blocked mid-payload, silently swallowing every later frame on the
// connection into the phantom read. On a low-traffic link that is an
// unbounded one-way blackhole (observed live: ~10 s of lost NOTIFYs minted
// duplicate executions). The deadline turns the stall into a closed
// connection, which the sender's redial-and-retransmit layers recover from
// in milliseconds. Var, not const, so tests can shorten it.
var frameReadTimeout = 5 * time.Second

// readDeadliner is the optional deadline hook on the reader (net.Conn
// implements it); plain readers — buffers, files, fuzz inputs — read
// without one.
type readDeadliner interface{ SetReadDeadline(time.Time) error }

// Typed frame-rejection errors. Callers (and tests) can distinguish a
// hostile or corrupted length prefix from payload damage with errors.Is.
var (
	// ErrFrameOversize means the length prefix exceeds maxWireMessage (or
	// is zero). It is returned before any payload allocation, so a
	// corrupted or hostile prefix can never trigger a huge make().
	ErrFrameOversize = errors.New("frame length outside limits")

	// ErrFrameChecksum means the payload did not match the header CRC —
	// bytes were corrupted in flight.
	ErrFrameChecksum = errors.New("frame checksum mismatch")

	// ErrFrameEncoding means the payload passed the CRC but is not valid
	// UTF-8 JSON for a message (corruption injected before the sender
	// framed it, or a protocol bug).
	ErrFrameEncoding = errors.New("frame payload not decodable")

	// ErrFrameInvalid means the payload decoded but fails structural
	// message validation.
	ErrFrameInvalid = errors.New("frame message invalid")
)

// wireRejects counts rejected inbound frames by reason, process-wide. The
// daemon surfaces them via expvar (aria.wire) so a soak can prove corrupted
// frames were both injected and cleanly refused.
var wireRejects struct {
	oversize atomic.Uint64
	checksum atomic.Uint64
	encoding atomic.Uint64
	invalid  atomic.Uint64
}

// WireRejects snapshots the process-wide frame-rejection counters.
func WireRejects() map[string]uint64 {
	return map[string]uint64{
		"oversize": wireRejects.oversize.Load(),
		"checksum": wireRejects.checksum.Load(),
		"encoding": wireRejects.encoding.Load(),
		"invalid":  wireRejects.invalid.Load(),
	}
}

// WriteMessage frames m as a 4-byte big-endian length, a 4-byte CRC-32
// (IEEE) of the payload, then its JSON encoding.
func WriteMessage(w io.Writer, m core.Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("encode message: %w", err)
	}
	if len(payload) > maxWireMessage {
		return fmt.Errorf("message of %d bytes exceeds frame limit", len(payload))
	}
	var header [wireHeaderSize]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame payload: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message, verifies its checksum, and
// validates it structurally. Every rejection returns a typed error (see
// ErrFrame*) and bumps the matching WireRejects counter; the length bound
// is enforced before the payload buffer is allocated, so a corrupted
// length prefix costs nothing.
func ReadMessage(r io.Reader) (core.Message, error) {
	var header [wireHeaderSize]byte
	// Block without a deadline only while the link is idle: the first
	// header byte marks a frame in flight, and from there the rest must
	// arrive within frameReadTimeout or the stream is presumed desynced.
	if _, err := io.ReadFull(r, header[:1]); err != nil {
		return core.Message{}, err // io.EOF passes through for clean shutdown
	}
	if dl, ok := r.(readDeadliner); ok {
		_ = dl.SetReadDeadline(time.Now().Add(frameReadTimeout))
		defer func() { _ = dl.SetReadDeadline(time.Time{}) }()
	}
	if _, err := io.ReadFull(r, header[1:]); err != nil {
		return core.Message{}, fmt.Errorf("read frame header: %w", err)
	}
	size := binary.BigEndian.Uint32(header[0:4])
	sum := binary.BigEndian.Uint32(header[4:8])
	if size == 0 || size > maxWireMessage {
		wireRejects.oversize.Add(1)
		return core.Message{}, fmt.Errorf("frame of %d bytes: %w", size, ErrFrameOversize)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return core.Message{}, fmt.Errorf("read frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		wireRejects.checksum.Add(1)
		return core.Message{}, ErrFrameChecksum
	}
	// json.Unmarshal silently accepts invalid UTF-8 (replacing bad bytes),
	// which would let a corrupted frame decode into a mangled message
	// instead of erroring; reject it at the frame boundary.
	if !utf8.Valid(payload) {
		wireRejects.encoding.Add(1)
		return core.Message{}, fmt.Errorf("%w: payload is not valid UTF-8", ErrFrameEncoding)
	}
	var m core.Message
	if err := json.Unmarshal(payload, &m); err != nil {
		wireRejects.encoding.Add(1)
		return core.Message{}, fmt.Errorf("%w: %v", ErrFrameEncoding, err)
	}
	if err := m.Validate(); err != nil {
		wireRejects.invalid.Add(1)
		return core.Message{}, fmt.Errorf("%w: %v", ErrFrameInvalid, err)
	}
	return m, nil
}
