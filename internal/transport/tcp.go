package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
)

// TCPConfig describes one live grid node's network identity.
type TCPConfig struct {
	// ID is the node's overlay address.
	ID overlay.NodeID

	// Listen is the TCP address to bind (e.g. "127.0.0.1:7401").
	Listen string

	// Peers maps every known node ID (at least the neighbors plus any
	// node that may address this one) to its dialable address.
	Peers map[overlay.NodeID]string

	// Neighbors lists the node's overlay neighbors; floods fan out to a
	// random subset of these.
	Neighbors []overlay.NodeID

	// Seed drives the node's local randomness.
	Seed int64
}

// Validate reports the first structural problem.
func (c TCPConfig) Validate() error {
	switch {
	case c.Listen == "":
		return fmt.Errorf("tcp node %v: empty listen address", c.ID)
	case len(c.Peers) == 0:
		return fmt.Errorf("tcp node %v: no peers", c.ID)
	case len(c.Neighbors) == 0:
		return fmt.Errorf("tcp node %v: no neighbors", c.ID)
	}
	for _, nb := range c.Neighbors {
		if _, ok := c.Peers[nb]; !ok {
			return fmt.Errorf("tcp node %v: neighbor %v has no peer address", c.ID, nb)
		}
	}
	return nil
}

// Wire hardening parameters. Dials retry with doubling, jittered backoff
// (clamped to tcpDialBackoffCap) so a peer restarting on the same address is
// reached without losing the message; writes carry a deadline so one stalled
// peer cannot pin sender goroutines forever. After tcpBreakerThreshold
// consecutive send failures a peer's circuit breaker opens and sends to it
// fast-fail for tcpBreakerCooldown before a probe is let through.
const (
	tcpDialTimeout      = 2 * time.Second
	tcpDialAttempts     = 3
	tcpDialBackoff      = 50 * time.Millisecond
	tcpDialBackoffCap   = 2 * time.Second
	tcpWriteDeadline    = 2 * time.Second
	tcpBreakerThreshold = 3
	tcpBreakerCooldown  = 5 * time.Second
)

// TCPNode hosts one protocol node behind a TCP listener, dialing peers on
// demand with a small connection cache. Messages are length-prefixed JSON.
type TCPNode struct {
	node *core.Node
	ln   net.Listener
	env  *tcpEnv

	mu      sync.Mutex
	closed  bool
	inbound map[net.Conn]struct{}
	wg      sync.WaitGroup
}

// ListenTCP binds the listener and constructs the protocol node. The node
// is inert until Start.
func ListenTCP(
	cfg TCPConfig,
	profile resource.Profile,
	policy sched.Policy,
	protoCfg core.Config,
	obs core.Observer,
	art job.ARTModel,
) (*TCPNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcp node %v: %w", cfg.ID, err)
	}
	env := &tcpEnv{
		start:     time.Now(),
		id:        cfg.ID,
		peers:     cfg.Peers,
		neighbors: append([]overlay.NodeID(nil), cfg.Neighbors...),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		jrng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5dee7)),
		conns:     make(map[overlay.NodeID]*peerConn),
		breakers:  make(map[overlay.NodeID]*breaker),
	}
	n, err := core.NewNode(cfg.ID, profile, policy, env, protoCfg, obs, art)
	if err != nil {
		if cerr := ln.Close(); cerr != nil {
			return nil, fmt.Errorf("%w (also closing listener: %v)", err, cerr)
		}
		return nil, err
	}
	// Wire transport-level failure evidence into the liveness detector
	// (a no-op when the membership plane is disabled).
	env.mu.Lock()
	env.onUnreachable = n.ReportUnreachable
	env.mu.Unlock()
	t := &TCPNode{node: n, ln: ln, env: env, inbound: make(map[net.Conn]struct{})}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Node exposes the protocol node (for Submit, Start, metrics).
func (t *TCPNode) Node() *core.Node { return t.node }

// SetFaults installs a link fault model consulted on every outbound
// transmission, lifting the simulator's fault semantics (drop, duplication,
// jitter, partitions, slow-peer and stall windows) onto real sockets; nil
// restores clean delivery. Injected drops are silent — they model network
// loss, so they feed neither the circuit breaker nor the liveness detector
// (exactly like a lost UDP datagram gives the sender no evidence). The
// model's clock is this node's process clock (time since ListenTCP), so
// fault windows are phrased relative to node start.
func (t *TCPNode) SetFaults(lm *faults.LinkModel) {
	t.env.mu.Lock()
	t.env.faults = lm
	t.env.mu.Unlock()
}

// Addr reports the bound listen address.
func (t *TCPNode) Addr() string { return t.ln.Addr().String() }

// Close stops the listener, kills the node, and waits for the accept loop.
func (t *TCPNode) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.node.Kill()
	t.env.closeConns()
	t.mu.Lock()
	for conn := range t.inbound {
		_ = conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

func (t *TCPNode) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *TCPNode) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return // EOF or protocol violation: drop the connection
		}
		t.node.HandleMessage(m)
	}
}

// tcpEnv adapts the wire transport to core.Env.
type tcpEnv struct {
	start time.Time
	id    overlay.NodeID
	peers map[overlay.NodeID]string
	rng   *rand.Rand // only touched under the owning node's lock

	// nmu guards the neighbor list, which the membership plane edits at
	// runtime (PruneLink, Reconnect).
	nmu       sync.Mutex
	neighbors []overlay.NodeID

	jmu  sync.Mutex
	jrng *rand.Rand // backoff jitter source, shared by sender goroutines

	mu    sync.Mutex
	conns map[overlay.NodeID]*peerConn
	// breakers holds one circuit breaker per peer this node has sent to.
	breakers map[overlay.NodeID]*breaker
	// faults, when non-nil, decides the fate of every outbound
	// transmission before it touches the socket.
	faults *faults.LinkModel
	// onUnreachable (set once at node construction, read by sender
	// goroutines) feeds transport-level delivery failures to the liveness
	// detector.
	onUnreachable func(overlay.NodeID)
}

// peerConn serializes frame writes on one outbound connection.
type peerConn struct {
	writeMu sync.Mutex
	conn    net.Conn
}

var _ core.Env = (*tcpEnv)(nil)

func (e *tcpEnv) Now() time.Duration {
	return time.Since(e.start)
}

func (e *tcpEnv) Schedule(delay time.Duration, fn func()) core.Cancel {
	t := time.AfterFunc(delay, fn)
	return t.Stop
}

// Send delivers asynchronously. A cached connection that turns out to be
// broken (peer restarted, half-open socket) is evicted and the send retried
// once on a fresh dial; errors beyond that drop the message, which the
// protocol tolerates (timeouts and retries cover losses). The peer's circuit
// breaker wraps the whole exchange: once it opens, sends fast-fail without
// paying the dial-retry ladder until a cooldown probe succeeds.
func (e *tcpEnv) Send(to overlay.NodeID, m core.Message) {
	e.mu.Lock()
	lm := e.faults
	e.mu.Unlock()
	if lm == nil {
		go e.transmit(to, m)
		return
	}
	// Fault plane armed: one transmit goroutine per surviving copy (zero
	// copies = injected drop, silent by design — see SetFaults).
	out := lm.Plan(e.Now(), e.id, to)
	for _, extra := range out.ExtraDelays {
		if extra > 0 {
			time.AfterFunc(extra, func() { e.transmit(to, m) })
			continue
		}
		go e.transmit(to, m)
	}
}

// transmit pushes one frame at the peer on the caller's goroutine, with
// cached-connection retry, breaker accounting, and liveness reporting.
func (e *tcpEnv) transmit(to overlay.NodeID, m core.Message) {
	br := e.breakerFor(to)
	if !br.Allow(e.Now()) {
		return // circuit open: the liveness detector already knows
	}
	for attempt := 0; attempt < 2; attempt++ {
		pc, err := e.conn(to)
		if err != nil {
			br.Failure(e.Now())
			e.reportUnreachable(to)
			return
		}
		pc.writeMu.Lock()
		_ = pc.conn.SetWriteDeadline(time.Now().Add(tcpWriteDeadline))
		err = WriteMessage(pc.conn, m)
		pc.writeMu.Unlock()
		if err == nil {
			br.Success()
			return
		}
		e.dropConn(to, pc)
	}
	br.Failure(e.Now())
	e.reportUnreachable(to)
}

// breakerFor returns the peer's circuit breaker, creating it on first use.
func (e *tcpEnv) breakerFor(to overlay.NodeID) *breaker {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.breakers == nil {
		e.breakers = make(map[overlay.NodeID]*breaker)
	}
	b, ok := e.breakers[to]
	if !ok {
		b = newBreaker(tcpBreakerThreshold, tcpBreakerCooldown)
		e.breakers[to] = b
	}
	return b
}

// reportUnreachable forwards a delivery failure to the liveness detector.
// It runs on a sender goroutine, never under the node lock, so calling back
// into the node is safe.
func (e *tcpEnv) reportUnreachable(to overlay.NodeID) {
	e.mu.Lock()
	fn := e.onUnreachable
	e.mu.Unlock()
	if fn != nil {
		fn(to)
	}
}

// jitter returns a uniformly random duration in [0, d).
func (e *tcpEnv) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	e.jmu.Lock()
	defer e.jmu.Unlock()
	return time.Duration(e.jrng.Int63n(int64(d)))
}

func (e *tcpEnv) conn(to overlay.NodeID) (*peerConn, error) {
	e.mu.Lock()
	if pc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return pc, nil
	}
	addr, ok := e.peers[to]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no address for node %v", to)
	}
	conn, err := e.dial(addr)
	if err != nil {
		return nil, err
	}
	pc := &peerConn{conn: conn}
	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.conns[to]; ok {
		// Lost the dial race: use the established connection.
		_ = conn.Close()
		return existing, nil
	}
	e.conns[to] = pc
	return pc, nil
}

// dial attempts the peer address a few times with doubling, jittered
// backoff, riding out momentary outages such as a peer restart.
func (e *tcpEnv) dial(addr string) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < tcpDialAttempts; attempt++ {
		if attempt > 0 {
			d := dialBackoff(attempt)
			time.Sleep(d + e.jitter(d))
		}
		conn, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// dialBackoff returns the pause before dial attempt n (1-based): doubling
// from tcpDialBackoff, clamped to tcpDialBackoffCap. The clamp (and the
// shift guard) means raising tcpDialAttempts can never produce minute-long
// stalls or a negative duration from shift overflow.
func dialBackoff(attempt int) time.Duration {
	const shiftMax = 16
	s := attempt - 1
	if s < 0 {
		s = 0
	} else if s > shiftMax {
		s = shiftMax
	}
	d := tcpDialBackoff << uint(s)
	if d <= 0 || d > tcpDialBackoffCap {
		return tcpDialBackoffCap
	}
	return d
}

func (e *tcpEnv) dropConn(to overlay.NodeID, pc *peerConn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.conns[to]; ok && cur == pc {
		delete(e.conns, to)
	}
	_ = pc.conn.Close()
}

func (e *tcpEnv) closeConns() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, pc := range e.conns {
		_ = pc.conn.Close()
		delete(e.conns, id)
	}
}

func (e *tcpEnv) Neighbors() []overlay.NodeID {
	e.nmu.Lock()
	defer e.nmu.Unlock()
	out := make([]overlay.NodeID, len(e.neighbors))
	copy(out, e.neighbors)
	return out
}

func (e *tcpEnv) Rand() *rand.Rand {
	return e.rng
}

var _ core.MembershipEnv = (*tcpEnv)(nil)

// PruneLink implements core.MembershipEnv: the dead peer leaves this node's
// neighbor list (each endpoint prunes its own side — there is no shared
// graph on the wire transport).
func (e *tcpEnv) PruneLink(peer overlay.NodeID) {
	e.nmu.Lock()
	defer e.nmu.Unlock()
	for i, nb := range e.neighbors {
		if nb == peer {
			e.neighbors = append(e.neighbors[:i], e.neighbors[i+1:]...)
			return
		}
	}
}

// Reconnect implements core.MembershipEnv: a gossiped neighbor-of-neighbor
// with a known dialable address becomes a new neighbor, bounded by
// maxDegree. Only this side's list is updated; the peer learns of the link
// through the probe traffic that follows.
func (e *tcpEnv) Reconnect(peer overlay.NodeID, maxDegree int) bool {
	if _, known := e.peers[peer]; !known || peer == e.id {
		return false
	}
	e.nmu.Lock()
	defer e.nmu.Unlock()
	if maxDegree > 0 && len(e.neighbors) >= maxDegree {
		return false
	}
	for _, nb := range e.neighbors {
		if nb == peer {
			return false
		}
	}
	e.neighbors = append(e.neighbors, peer)
	return true
}
