package transport

import (
	"sync"
	"time"
)

// breakerState enumerates the classic three circuit-breaker states.
type breakerState int

const (
	// breakerClosed passes every send; consecutive failures are counted.
	breakerClosed breakerState = iota
	// breakerOpen fast-fails every send until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen lets exactly one probe send through; its outcome
	// decides between closing the circuit and re-opening it.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-peer circuit breaker for the wire transport. A dead peer
// costs each send the full dial-retry ladder (attempts x timeout) before the
// loss is acknowledged; once `threshold` consecutive sends have failed, the
// breaker opens and later sends to that peer drop immediately instead. After
// `cooldown` one probe send is admitted (half-open): success closes the
// circuit, failure re-opens it for another cooldown. Dropping is safe — the
// protocol's retry and watchdog machinery treats a fast-failed send exactly
// like a lost datagram, and the liveness detector was already informed by
// the failures that opened the circuit.
//
// Time is passed in by the caller (the env's monotonic clock) so the state
// machine is deterministic under test.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int           // consecutive failures while closed
	openedAt time.Duration // when the circuit last opened
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a send may proceed now. In the open state the first
// call at or past the cooldown deadline transitions to half-open and is
// admitted as the probe; concurrent calls during the probe are still
// fast-failed.
func (b *breaker) Allow(now time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now-b.openedAt < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		return true
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a delivered send, closing the circuit and clearing the
// consecutive-failure count.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
}

// Failure records a failed send. While closed it counts toward the trip
// threshold; a failed half-open probe re-opens immediately.
func (b *breaker) Failure(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
		}
	}
}

// State reports the current state (for expvar/status surfaces and tests).
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
