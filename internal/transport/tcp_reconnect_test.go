package transport

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/overlay"
)

// rawPeer is a bare framed-message receiver standing in for a remote node,
// restartable on a fixed address.
type rawPeer struct {
	ln   net.Listener
	recv chan core.Message

	mu    sync.Mutex
	conns []net.Conn
}

func startRawPeer(t *testing.T, addr string, recv chan core.Message) *rawPeer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := &rawPeer{ln: ln, recv: recv}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			p.conns = append(p.conns, conn)
			p.mu.Unlock()
			go func(c net.Conn) {
				for {
					m, err := ReadMessage(c)
					if err != nil {
						return
					}
					recv <- m
				}
			}(conn)
		}
	}()
	return p
}

func (p *rawPeer) stop() {
	_ = p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		_ = c.Close()
	}
	p.conns = nil
}

// TestTCPSendRecoversAfterPeerRestart kills a peer holding a cached
// connection and restarts it on the same address: the sender must notice
// the dead socket, evict it, and reach the reincarnated peer.
func TestTCPSendRecoversAfterPeerRestart(t *testing.T) {
	recv := make(chan core.Message, 64)
	peer := startRawPeer(t, "127.0.0.1:0", recv)
	addr := peer.ln.Addr().String()

	env := &tcpEnv{
		start:     time.Now(),
		id:        1,
		peers:     map[overlay.NodeID]string{2: addr},
		neighbors: []overlay.NodeID{2},
		rng:       rand.New(rand.NewSource(1)),
		jrng:      rand.New(rand.NewSource(2)),
		conns:     make(map[overlay.NodeID]*peerConn),
	}
	defer env.closeConns()

	rng := rand.New(rand.NewSource(3))
	msg := core.Message{
		Type: core.MsgNotify, From: 1,
		Job: liveJob(rng, time.Minute), Notify: core.NotifyQueued,
	}

	// Prime the connection cache.
	env.Send(2, msg)
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery to the original peer")
	}

	// Restart the peer on the same address; the cached connection is now
	// a stale socket to a dead process.
	peer.stop()
	peer = startRawPeer(t, addr, recv)
	defer peer.stop()

	// The first write into the dead socket may appear to succeed (it sits
	// in kernel buffers until the RST lands), so keep sending: eviction
	// plus redial must get a message through without outside help.
	deadline := time.After(10 * time.Second)
	for {
		env.Send(2, msg)
		select {
		case <-recv:
			return
		case <-time.After(100 * time.Millisecond):
		case <-deadline:
			t.Fatal("sender never reconnected to the restarted peer")
		}
	}
}

// TestTCPDialRetriesTransientOutage delays the peer's bind past the first
// dial attempt: the backoff loop must absorb the outage.
func TestTCPDialRetriesTransientOutage(t *testing.T) {
	// Reserve an address, then free it so the port stays unbound briefly.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	recv := make(chan core.Message, 16)
	env := &tcpEnv{
		start:     time.Now(),
		id:        1,
		peers:     map[overlay.NodeID]string{2: addr},
		neighbors: []overlay.NodeID{2},
		rng:       rand.New(rand.NewSource(4)),
		jrng:      rand.New(rand.NewSource(5)),
		conns:     make(map[overlay.NodeID]*peerConn),
	}
	defer env.closeConns()

	rng := rand.New(rand.NewSource(6))
	msg := core.Message{
		Type: core.MsgNotify, From: 1,
		Job: liveJob(rng, time.Minute), Notify: core.NotifyCompleted,
	}
	env.Send(2, msg) // first dial attempt fails; retries pending

	// Bind the peer inside the retry window (first backoff >= 50ms).
	time.Sleep(20 * time.Millisecond)
	peer := startRawPeer(t, addr, recv)
	defer peer.stop()

	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("dial retries never reached the late-binding peer")
	}
}
