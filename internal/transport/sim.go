// Package transport binds the ARiA protocol engine to concrete execution
// environments: the deterministic discrete-event simulator, an in-process
// goroutine cluster, and a TCP wire transport.
package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/wal"
)

// TrafficFunc observes every message transmission (one call per hop). Under
// a sharded kernel it may be invoked from several shard workers at once and
// must be internally synchronized (the metrics recorder is).
type TrafficFunc func(at time.Duration, from, to overlay.NodeID, m *core.Message)

// SimCluster runs a set of protocol nodes on a discrete-event simulation
// kernel over an overlay graph with a latency model. It is the evaluation
// substrate for every scenario in the paper.
//
// Each node maps to its own kernel lane (lane id = node id), so the cluster
// works unchanged on the legacy single-threaded engine and on the sharded
// engine: sends become cross-lane events, node-local timers stay on the
// node's lane, and the kernel's barrier discipline keeps the merged order a
// pure function of the seed.
type SimCluster struct {
	engine  sim.Kernel
	sharded *sim.Sharded // non-nil when engine is a sharded kernel
	graph   *overlay.Graph
	latency overlay.LatencyModel
	nodes   map[overlay.NodeID]*core.Node
	traffic TrafficFunc
	faults  *faults.LinkModel

	// graphMu guards overlay surgery and neighbor reads issued from node
	// callbacks: under the sharded kernel those may run on concurrent
	// shard workers. Coordinator-context mutation (churn, expansion) runs
	// with every shard quiesced, but takes the lock anyway for uniformity.
	graphMu sync.RWMutex

	// nodesSorted caches Nodes() — at 10k+ nodes re-sorting per submission
	// draw dominates profiles. Callers must treat the slice as read-only.
	nodesSorted []*core.Node
	nodesDirty  bool

	// specs remembers each node's construction parameters so Restart can
	// rebuild it; journals holds each node's durable store (the "disk"
	// that survives a crash) once journaling is enabled; restarts counts
	// reboots per node, stamped on the replacement as its incarnation so
	// remote directory caches can order knowledge across restarts.
	specs    map[overlay.NodeID]nodeSpec
	journals map[overlay.NodeID]*wal.Journal
	restarts map[overlay.NodeID]uint64
}

// nodeSpec is everything needed to reconstruct a node after a crash.
type nodeSpec struct {
	profile resource.Profile
	policy  sched.Policy
	cfg     core.Config
	obs     core.Observer
	art     job.ARTModel
}

// NewSimCluster creates an empty cluster over the given kernel, graph, and
// latency model. Both *sim.Engine and *sim.Sharded are accepted.
func NewSimCluster(engine sim.Kernel, graph *overlay.Graph, latency overlay.LatencyModel) *SimCluster {
	sh, _ := engine.(*sim.Sharded)
	return &SimCluster{
		engine:   engine,
		sharded:  sh,
		graph:    graph,
		latency:  latency,
		nodes:    make(map[overlay.NodeID]*core.Node),
		specs:    make(map[overlay.NodeID]nodeSpec),
		restarts: make(map[overlay.NodeID]uint64),
	}
}

// EnableJournaling attaches an in-memory write-ahead journal to every node
// added from now on, making crashes recoverable via Restart. The journals
// live in the cluster — the simulated "disk" that survives a node crash.
func (c *SimCluster) EnableJournaling() {
	if c.journals == nil {
		c.journals = make(map[overlay.NodeID]*wal.Journal)
	}
}

// Journaling reports whether EnableJournaling was called.
func (c *SimCluster) Journaling() bool { return c.journals != nil }

// SetTraffic installs a hook observing every transmitted message.
func (c *SimCluster) SetTraffic(fn TrafficFunc) {
	c.traffic = fn
}

// SetFaults installs a link fault model consulted on every transmission;
// nil restores perfect delivery. Under the legacy engine the model draws
// from its shared sequential source; under a sharded kernel the cluster
// switches to keyed draws (PlanKeyed) so the outcome of each transmission
// is independent of cross-lane execution order — call
// (*faults.LinkModel).SetKeySeed first for a reproducible keyed stream.
func (c *SimCluster) SetFaults(lm *faults.LinkModel) {
	c.faults = lm
}

// Engine exposes the underlying simulation kernel.
func (c *SimCluster) Engine() sim.Kernel { return c.engine }

// Graph exposes the overlay graph.
func (c *SimCluster) Graph() *overlay.Graph { return c.graph }

// AddNode constructs a protocol node bound to this cluster and registers
// it. The node's overlay ID must already exist in the graph.
func (c *SimCluster) AddNode(
	id overlay.NodeID,
	profile resource.Profile,
	policy sched.Policy,
	cfg core.Config,
	obs core.Observer,
	art job.ARTModel,
) (*core.Node, error) {
	if !c.graph.HasNode(id) {
		return nil, fmt.Errorf("add node: %v not in overlay graph", id)
	}
	if _, dup := c.nodes[id]; dup {
		return nil, fmt.Errorf("add node: %v already registered", id)
	}
	env := &simEnv{cluster: c, id: id, lane: sim.Lane(id)}
	n, err := core.NewNode(id, profile, policy, env, cfg, obs, art)
	if err != nil {
		return nil, err
	}
	if c.journals != nil {
		j := wal.New(&wal.MemStore{}, wal.Options{})
		c.journals[id] = j
		n.AttachJournal(j)
	}
	c.nodes[id] = n
	c.nodesDirty = true
	c.specs[id] = nodeSpec{profile: profile, policy: policy, cfg: cfg, obs: obs, art: art}
	return n, nil
}

// Restart replaces a killed node with a fresh process on the same overlay
// address. With journaling enabled the replacement replays its journal —
// recovering queue, tracking tables, and open handshakes — before starting;
// without, it comes back amnesiac (the fail-stop baseline). The replacement
// receives all traffic addressed to the ID from the moment it is registered.
func (c *SimCluster) Restart(id overlay.NodeID) (*core.Node, error) {
	spec, ok := c.specs[id]
	if !ok {
		return nil, fmt.Errorf("restart: %v was never added", id)
	}
	if !c.graph.HasNode(id) {
		return nil, fmt.Errorf("restart: %v no longer in overlay graph", id)
	}
	if old, ok := c.nodes[id]; ok && old.Alive() {
		return nil, fmt.Errorf("restart: %v is still alive", id)
	}
	c.restarts[id]++
	env := &simEnv{
		cluster: c, id: id, lane: sim.Lane(id),
		// A fresh incarnation keys a fresh fault-draw stream.
		sendSeq: c.restarts[id] << 40,
	}
	n, err := core.NewNode(id, spec.profile, spec.policy, env, spec.cfg, spec.obs, spec.art)
	if err != nil {
		return nil, err
	}
	n.SetIncarnation(c.restarts[id])
	if j, ok := c.journals[id]; ok {
		n.AttachJournal(j)
		if _, err := n.Recover(); err != nil {
			return nil, err
		}
	}
	c.nodes[id] = n
	c.nodesDirty = true
	n.Start()
	return n, nil
}

// Node returns the registered node with the given ID, if any.
func (c *SimCluster) Node(id overlay.NodeID) (*core.Node, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// Nodes returns all registered nodes in ascending ID order. The returned
// slice is shared and must not be mutated; it stays valid until the next
// AddNode or Restart.
func (c *SimCluster) Nodes() []*core.Node {
	if !c.nodesDirty && c.nodesSorted != nil {
		return c.nodesSorted
	}
	ids := make([]overlay.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	out := make([]*core.Node, len(ids))
	for i, id := range ids {
		out[i] = c.nodes[id]
	}
	c.nodesSorted, c.nodesDirty = out, false
	return out
}

// StartAll starts every registered node in ID order (deterministic).
func (c *SimCluster) StartAll() {
	for _, n := range c.Nodes() {
		n.Start()
	}
}

// IdleCount reports how many registered nodes are currently idle.
func (c *SimCluster) IdleCount() int {
	idle := 0
	for _, n := range c.nodes {
		if n.Idle() {
			idle++
		}
	}
	return idle
}

// simEnv adapts the cluster to core.Env for one node. The node's lane is
// its overlay ID, making the lane partition stable across shard counts.
type simEnv struct {
	cluster *SimCluster
	id      overlay.NodeID
	lane    sim.Lane

	// sendSeq counts this node-incarnation's transmissions; it keys fault
	// draws under sharded kernels. Only the owning lane mutates it.
	sendSeq uint64
}

var _ core.Env = (*simEnv)(nil)

func (e *simEnv) Now() time.Duration {
	// Direct dispatch on the concrete kernel when sharded: Now is called
	// on every protocol action and the devirtualized call inlines.
	if sh := e.cluster.sharded; sh != nil {
		return sh.LaneNow(e.lane)
	}
	return e.cluster.engine.LaneNow(e.lane)
}

func (e *simEnv) Schedule(delay time.Duration, fn func()) core.Cancel {
	t, _ := e.cluster.engine.ScheduleFrom(e.lane, e.lane, delay, fn)
	return t.Cancel
}

func (e *simEnv) Send(to overlay.NodeID, m core.Message) {
	c := e.cluster
	now := e.Now()
	if c.traffic != nil {
		c.traffic(now, e.id, to, &m)
	}
	delay := c.latency.Delay(e.id, to)
	// One heap copy of the message, shared by every delivery closure;
	// HandleMessage takes its own stack copy at the call boundary.
	mp := &m
	deliver := func() {
		if dest, ok := c.nodes[to]; ok {
			dest.HandleMessage(*mp)
		}
	}
	if c.faults == nil {
		c.engine.ScheduleFrom(e.lane, sim.Lane(to), delay, deliver)
		return
	}
	// One scheduled delivery per surviving copy (zero copies = dropped).
	// Keyed draws under sharded kernels make each transmission's fate a
	// function of (link, transmission index), not of cross-lane order.
	var out faults.Outcome
	if c.sharded != nil {
		e.sendSeq++
		out = c.faults.PlanKeyed(now, e.id, to, e.sendSeq)
	} else {
		out = c.faults.Plan(now, e.id, to)
	}
	for _, extra := range out.ExtraDelays {
		c.engine.ScheduleFrom(e.lane, sim.Lane(to), delay+extra, deliver)
	}
}

func (e *simEnv) Neighbors() []overlay.NodeID {
	c := e.cluster
	c.graphMu.RLock()
	nbs := c.graph.Neighbors(e.id)
	c.graphMu.RUnlock()
	return nbs
}

func (e *simEnv) Rand() *rand.Rand {
	return e.cluster.engine.LaneRand(e.lane)
}

var _ core.MembershipEnv = (*simEnv)(nil)

// PruneLink implements core.MembershipEnv: the membership plane severs the
// overlay link to a confirmed-dead neighbor. The dead node itself stays in
// the graph (the harness, not the protocol, knows when a corpse is gone).
func (e *simEnv) PruneLink(peer overlay.NodeID) {
	c := e.cluster
	c.graphMu.Lock()
	c.graph.RemoveLink(e.id, peer)
	c.graphMu.Unlock()
}

// Reconnect implements core.MembershipEnv: overlay repair adds a link to a
// neighbor-of-neighbor, bounded by maxDegree on both endpoints.
func (e *simEnv) Reconnect(peer overlay.NodeID, maxDegree int) bool {
	c := e.cluster
	c.graphMu.Lock()
	ok := c.graph.AddLinkCapped(e.id, peer, maxDegree)
	c.graphMu.Unlock()
	return ok
}
