// Package transport binds the ARiA protocol engine to concrete execution
// environments: the deterministic discrete-event simulator, an in-process
// goroutine cluster, and a TCP wire transport.
package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/wal"
)

// TrafficFunc observes every message transmission (one call per hop).
type TrafficFunc func(at time.Duration, from, to overlay.NodeID, m core.Message)

// SimCluster runs a set of protocol nodes on a discrete-event simulation
// engine over an overlay graph with a latency model. It is the evaluation
// substrate for every scenario in the paper.
//
// SimCluster is single-threaded, like the engine that drives it.
type SimCluster struct {
	engine  *sim.Engine
	graph   *overlay.Graph
	latency overlay.LatencyModel
	nodes   map[overlay.NodeID]*core.Node
	traffic TrafficFunc
	faults  *faults.LinkModel

	// specs remembers each node's construction parameters so Restart can
	// rebuild it; journals holds each node's durable store (the "disk"
	// that survives a crash) once journaling is enabled; restarts counts
	// reboots per node, stamped on the replacement as its incarnation so
	// remote directory caches can order knowledge across restarts.
	specs    map[overlay.NodeID]nodeSpec
	journals map[overlay.NodeID]*wal.Journal
	restarts map[overlay.NodeID]uint64
}

// nodeSpec is everything needed to reconstruct a node after a crash.
type nodeSpec struct {
	profile resource.Profile
	policy  sched.Policy
	cfg     core.Config
	obs     core.Observer
	art     job.ARTModel
}

// NewSimCluster creates an empty cluster over the given engine, graph, and
// latency model.
func NewSimCluster(engine *sim.Engine, graph *overlay.Graph, latency overlay.LatencyModel) *SimCluster {
	return &SimCluster{
		engine:  engine,
		graph:   graph,
		latency: latency,
		nodes:    make(map[overlay.NodeID]*core.Node),
		specs:    make(map[overlay.NodeID]nodeSpec),
		restarts: make(map[overlay.NodeID]uint64),
	}
}

// EnableJournaling attaches an in-memory write-ahead journal to every node
// added from now on, making crashes recoverable via Restart. The journals
// live in the cluster — the simulated "disk" that survives a node crash.
func (c *SimCluster) EnableJournaling() {
	if c.journals == nil {
		c.journals = make(map[overlay.NodeID]*wal.Journal)
	}
}

// Journaling reports whether EnableJournaling was called.
func (c *SimCluster) Journaling() bool { return c.journals != nil }

// SetTraffic installs a hook observing every transmitted message.
func (c *SimCluster) SetTraffic(fn TrafficFunc) {
	c.traffic = fn
}

// SetFaults installs a link fault model consulted on every transmission;
// nil restores perfect delivery. The model must draw its randomness from a
// deterministic source for runs to stay reproducible.
func (c *SimCluster) SetFaults(lm *faults.LinkModel) {
	c.faults = lm
}

// Engine exposes the underlying simulation engine.
func (c *SimCluster) Engine() *sim.Engine { return c.engine }

// Graph exposes the overlay graph.
func (c *SimCluster) Graph() *overlay.Graph { return c.graph }

// AddNode constructs a protocol node bound to this cluster and registers
// it. The node's overlay ID must already exist in the graph.
func (c *SimCluster) AddNode(
	id overlay.NodeID,
	profile resource.Profile,
	policy sched.Policy,
	cfg core.Config,
	obs core.Observer,
	art job.ARTModel,
) (*core.Node, error) {
	if !c.graph.HasNode(id) {
		return nil, fmt.Errorf("add node: %v not in overlay graph", id)
	}
	if _, dup := c.nodes[id]; dup {
		return nil, fmt.Errorf("add node: %v already registered", id)
	}
	env := &simEnv{cluster: c, id: id}
	n, err := core.NewNode(id, profile, policy, env, cfg, obs, art)
	if err != nil {
		return nil, err
	}
	if c.journals != nil {
		j := wal.New(&wal.MemStore{}, wal.Options{})
		c.journals[id] = j
		n.AttachJournal(j)
	}
	c.nodes[id] = n
	c.specs[id] = nodeSpec{profile: profile, policy: policy, cfg: cfg, obs: obs, art: art}
	return n, nil
}

// Restart replaces a killed node with a fresh process on the same overlay
// address. With journaling enabled the replacement replays its journal —
// recovering queue, tracking tables, and open handshakes — before starting;
// without, it comes back amnesiac (the fail-stop baseline). The replacement
// receives all traffic addressed to the ID from the moment it is registered.
func (c *SimCluster) Restart(id overlay.NodeID) (*core.Node, error) {
	spec, ok := c.specs[id]
	if !ok {
		return nil, fmt.Errorf("restart: %v was never added", id)
	}
	if !c.graph.HasNode(id) {
		return nil, fmt.Errorf("restart: %v no longer in overlay graph", id)
	}
	if old, ok := c.nodes[id]; ok && old.Alive() {
		return nil, fmt.Errorf("restart: %v is still alive", id)
	}
	env := &simEnv{cluster: c, id: id}
	n, err := core.NewNode(id, spec.profile, spec.policy, env, spec.cfg, spec.obs, spec.art)
	if err != nil {
		return nil, err
	}
	c.restarts[id]++
	n.SetIncarnation(c.restarts[id])
	if j, ok := c.journals[id]; ok {
		n.AttachJournal(j)
		if _, err := n.Recover(); err != nil {
			return nil, err
		}
	}
	c.nodes[id] = n
	n.Start()
	return n, nil
}

// Node returns the registered node with the given ID, if any.
func (c *SimCluster) Node(id overlay.NodeID) (*core.Node, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// Nodes returns all registered nodes in ascending ID order.
func (c *SimCluster) Nodes() []*core.Node {
	ids := make([]overlay.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	out := make([]*core.Node, len(ids))
	for i, id := range ids {
		out[i] = c.nodes[id]
	}
	return out
}

// StartAll starts every registered node in ID order (deterministic).
func (c *SimCluster) StartAll() {
	for _, n := range c.Nodes() {
		n.Start()
	}
}

// IdleCount reports how many registered nodes are currently idle.
func (c *SimCluster) IdleCount() int {
	idle := 0
	for _, n := range c.nodes {
		if n.Idle() {
			idle++
		}
	}
	return idle
}

// simEnv adapts the cluster to core.Env for one node.
type simEnv struct {
	cluster *SimCluster
	id      overlay.NodeID
}

var _ core.Env = (*simEnv)(nil)

func (e *simEnv) Now() time.Duration {
	return e.cluster.engine.Now()
}

func (e *simEnv) Schedule(delay time.Duration, fn func()) core.Cancel {
	t := e.cluster.engine.Schedule(delay, fn)
	return t.Cancel
}

func (e *simEnv) Send(to overlay.NodeID, m core.Message) {
	c := e.cluster
	if c.traffic != nil {
		c.traffic(c.engine.Now(), e.id, to, m)
	}
	delay := c.latency.Delay(e.id, to)
	deliver := func() {
		if dest, ok := c.nodes[to]; ok {
			dest.HandleMessage(m)
		}
	}
	if c.faults == nil {
		c.engine.Schedule(delay, deliver)
		return
	}
	// One scheduled delivery per surviving copy (zero copies = dropped).
	out := c.faults.Plan(c.engine.Now(), e.id, to)
	for _, extra := range out.ExtraDelays {
		c.engine.Schedule(delay+extra, deliver)
	}
}

func (e *simEnv) Neighbors() []overlay.NodeID {
	return e.cluster.graph.Neighbors(e.id)
}

func (e *simEnv) Rand() *rand.Rand {
	return e.cluster.engine.Rand()
}

var _ core.MembershipEnv = (*simEnv)(nil)

// PruneLink implements core.MembershipEnv: the membership plane severs the
// overlay link to a confirmed-dead neighbor. The dead node itself stays in
// the graph (the harness, not the protocol, knows when a corpse is gone).
func (e *simEnv) PruneLink(peer overlay.NodeID) {
	e.cluster.graph.RemoveLink(e.id, peer)
}

// Reconnect implements core.MembershipEnv: overlay repair adds a link to a
// neighbor-of-neighbor, bounded by maxDegree on both endpoints.
func (e *simEnv) Reconnect(peer overlay.NodeID, maxDegree int) bool {
	return e.cluster.graph.AddLinkCapped(e.id, peer, maxDegree)
}
