package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
)

// frame wraps payload in the codec's length + CRC-32 header.
func frame(payload []byte) []byte {
	var header [wireHeaderSize]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	return append(header[:], payload...)
}

// FuzzReadMessage drives the wire codec with arbitrary frames: whatever the
// bytes, ReadMessage must either return a structurally valid message or an
// error — never a half-decoded message, a panic, or an unbounded allocation.
func FuzzReadMessage(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	valid := core.Message{
		Type: core.MsgAssign,
		From: 7,
		Job:  liveJob(rng, 1000),
		Via:  3,
	}
	var good bytes.Buffer
	if err := WriteMessage(&good, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// Truncated frame: the header promises more bytes than follow.
	f.Add(good.Bytes()[:good.Len()-5])
	// Oversized length prefix beyond maxWireMessage.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, '{', '}'})
	// Zero-length frame.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	// Correct length, wrong checksum.
	f.Add(append([]byte{0, 0, 0, 2, 0xde, 0xad, 0xbe, 0xef}, '{', '}'))
	// Valid JSON framing but invalid UTF-8 payload bytes.
	f.Add(frame([]byte("{\"type\":4,\"from\":\xff\xfe}")))
	// Valid JSON that fails message validation.
	f.Add(frame([]byte(`{"type":99}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Success implies structural validity and a round-trippable value.
		if verr := m.Validate(); verr != nil {
			t.Fatalf("ReadMessage returned invalid message %+v: %v", m, verr)
		}
		var buf bytes.Buffer
		if werr := WriteMessage(&buf, m); werr != nil {
			t.Fatalf("decoded message does not re-encode: %v", werr)
		}
	})
}

// TestReadMessageRejectsInvalidUTF8 pins the explicit frame-boundary check:
// json.Unmarshal alone would silently mangle the bytes instead of erroring.
func TestReadMessageRejectsInvalidUTF8(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	valid := core.Message{Type: core.MsgAssign, From: 1, Job: liveJob(rng, 1000)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, valid); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[wireHeaderSize:]
	// Corrupt a byte inside a JSON string into an invalid UTF-8 sequence;
	// re-framing recomputes the CRC so the damage reaches the UTF-8 check.
	idx := bytes.IndexByte(payload, '"')
	if idx < 0 {
		t.Fatal("no string in encoded message")
	}
	corrupted := append([]byte(nil), payload...)
	corrupted[idx+1] = 0xff
	if _, err := ReadMessage(bytes.NewReader(frame(corrupted))); err == nil {
		t.Fatal("ReadMessage accepted a frame with invalid UTF-8")
	}
}

// TestReadMessageTruncatedFrame pins the short-read error path.
func TestReadMessageTruncatedFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	valid := core.Message{Type: core.MsgAssign, From: 1, Job: liveJob(rng, 1000)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, valid); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 8; cut++ {
		short := buf.Bytes()[:buf.Len()-cut]
		if _, err := ReadMessage(bytes.NewReader(short)); err == nil {
			t.Fatalf("ReadMessage accepted a frame truncated by %d bytes", cut)
		}
	}
}

// TestReadMessageHostileLengthPrefix pins the bounded-decode guarantee: a
// corrupted or hostile length prefix must return ErrFrameOversize before
// any payload allocation is attempted.
func TestReadMessageHostileLengthPrefix(t *testing.T) {
	hostile := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // 4 GiB claim
		{0x00, 0x10, 0x00, 0x01, 0, 0, 0, 0}, // just past the 1 MiB cap
		{0x00, 0x00, 0x00, 0x00, 0, 0, 0, 0}, // zero-length frame
	}
	for _, h := range hostile {
		before := WireRejects()["oversize"]
		_, err := ReadMessage(bytes.NewReader(h))
		if !errors.Is(err, ErrFrameOversize) {
			t.Fatalf("prefix %x: got %v, want ErrFrameOversize", h[:4], err)
		}
		if after := WireRejects()["oversize"]; after != before+1 {
			t.Fatalf("prefix %x: oversize counter %d -> %d, want +1", h[:4], before, after)
		}
	}
}

// TestReadMessageChecksumMismatch pins the CRC rejection path and its
// counter: flipping any payload byte must surface ErrFrameChecksum rather
// than reaching the JSON decoder.
func TestReadMessageChecksumMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	valid := core.Message{Type: core.MsgAssign, From: 1, Job: liveJob(rng, 1000)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, valid); err != nil {
		t.Fatal(err)
	}
	for pos := wireHeaderSize; pos < buf.Len(); pos += 7 {
		mut := append([]byte(nil), buf.Bytes()...)
		mut[pos] ^= 0x01
		before := WireRejects()["checksum"]
		_, err := ReadMessage(bytes.NewReader(mut))
		if !errors.Is(err, ErrFrameChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrFrameChecksum", pos, err)
		}
		if after := WireRejects()["checksum"]; after != before+1 {
			t.Fatalf("flip at %d: checksum counter did not advance", pos)
		}
	}
}

// FuzzFrameCorruption mutates single bytes of a valid frame — the exact
// damage the chaos fabric's Corrupt mode injects — and asserts the decoder
// never accepts it: a flip in the payload or CRC is always caught by the
// checksum (a one-byte error is within CRC-32's guaranteed burst
// detection), and a flip in the length prefix must error without a huge
// allocation or panic.
func FuzzFrameCorruption(f *testing.F) {
	rng := rand.New(rand.NewSource(46))
	valid := core.Message{Type: core.MsgRequest, From: 2, Job: liveJob(rng, 1000), Via: 1}
	var good bytes.Buffer
	if err := WriteMessage(&good, valid); err != nil {
		f.Fatal(err)
	}
	goodBytes := good.Bytes()
	f.Add(uint32(0), byte(0x01))
	f.Add(uint32(4), byte(0xff))
	f.Add(uint32(wireHeaderSize), byte(0x80))
	f.Add(uint32(len(goodBytes)-1), byte(0x20))

	f.Fuzz(func(t *testing.T, pos uint32, xor byte) {
		if xor == 0 {
			return // identity mutation: the frame stays valid by design
		}
		mut := append([]byte(nil), goodBytes...)
		idx := int(pos) % len(mut)
		mut[idx] ^= xor
		m, err := ReadMessage(bytes.NewReader(mut))
		if idx >= 4 && err == nil {
			// Any damage past the length prefix is CRC-covered (or, for
			// the CRC field itself, self-evident): decode must fail.
			t.Fatalf("single-byte corruption at %d decoded to %+v", idx, m)
		}
		if err == nil {
			// A length-prefix mutation that still decodes would need a
			// CRC-32 prefix collision; treat success as suspicious enough
			// to re-validate.
			if verr := m.Validate(); verr != nil {
				t.Fatalf("corrupted frame decoded into invalid message: %v", verr)
			}
		}
	})
}

// TestReadMessagePartialFrameTimesOut pins the desync bound: a header whose
// length promises a payload that never arrives — the shape wire damage
// takes when a corrupted length prefix stays under the size bound — must
// error out within frameReadTimeout instead of blocking forever. Without
// the deadline the phantom read silently swallows every later frame on the
// connection, a one-way blackhole that live soaks caught minting duplicate
// executions.
func TestReadMessagePartialFrameTimesOut(t *testing.T) {
	old := frameReadTimeout
	frameReadTimeout = 200 * time.Millisecond
	defer func() { frameReadTimeout = old }()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		var hdr [wireHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], 512)
		binary.BigEndian.PutUint32(hdr[4:8], 0xdeadbeef)
		_, _ = client.Write(hdr[:]) // header only; the 512-byte payload never comes
	}()
	done := make(chan error, 1)
	go func() {
		_, err := ReadMessage(server)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("partial frame decoded into a message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadMessage still blocked on a partial frame after 5s")
	}
}

// TestReadMessageIdleLinkHasNoDeadline pins the other half of the bargain:
// the deadline arms per frame, not per connection, so a link that is merely
// quiet between frames — longer than frameReadTimeout — still delivers the
// next frame intact.
func TestReadMessageIdleLinkHasNoDeadline(t *testing.T) {
	old := frameReadTimeout
	frameReadTimeout = 100 * time.Millisecond
	defer func() { frameReadTimeout = old }()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	msg := core.Message{Type: core.MsgPing, From: 3, Seq: 9}
	go func() {
		_ = WriteMessage(client, msg)
		time.Sleep(4 * frameReadTimeout) // idle gap well past the deadline
		_ = WriteMessage(client, msg)
	}()
	for i := 0; i < 2; i++ {
		got, err := ReadMessage(server)
		if err != nil {
			t.Fatalf("frame %d after idle gap: %v", i, err)
		}
		if got.Type != core.MsgPing || got.From != 3 {
			t.Fatalf("frame %d decoded wrong: %+v", i, got)
		}
	}
}
