package transport

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/smartgrid/aria/internal/core"
)

// frame wraps payload in the codec's 4-byte big-endian length prefix.
func frame(payload []byte) []byte {
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	return append(header[:], payload...)
}

// FuzzReadMessage drives the wire codec with arbitrary frames: whatever the
// bytes, ReadMessage must either return a structurally valid message or an
// error — never a half-decoded message, a panic, or an unbounded allocation.
func FuzzReadMessage(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	valid := core.Message{
		Type: core.MsgAssign,
		From: 7,
		Job:  liveJob(rng, 1000),
		Via:  3,
	}
	var good bytes.Buffer
	if err := WriteMessage(&good, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// Truncated frame: the header promises more bytes than follow.
	f.Add(good.Bytes()[:good.Len()-5])
	// Oversized length prefix beyond maxWireMessage.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, '{', '}'})
	// Zero-length frame.
	f.Add([]byte{0, 0, 0, 0})
	// Valid JSON framing but invalid UTF-8 payload bytes.
	f.Add(frame([]byte("{\"type\":4,\"from\":\xff\xfe}")))
	// Valid JSON that fails message validation.
	f.Add(frame([]byte(`{"type":99}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Success implies structural validity and a round-trippable value.
		if verr := m.Validate(); verr != nil {
			t.Fatalf("ReadMessage returned invalid message %+v: %v", m, verr)
		}
		var buf bytes.Buffer
		if werr := WriteMessage(&buf, m); werr != nil {
			t.Fatalf("decoded message does not re-encode: %v", werr)
		}
	})
}

// TestReadMessageRejectsInvalidUTF8 pins the explicit frame-boundary check:
// json.Unmarshal alone would silently mangle the bytes instead of erroring.
func TestReadMessageRejectsInvalidUTF8(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	valid := core.Message{Type: core.MsgAssign, From: 1, Job: liveJob(rng, 1000)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, valid); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[4:]
	// Corrupt a byte inside a JSON string into an invalid UTF-8 sequence.
	idx := bytes.IndexByte(payload, '"')
	if idx < 0 {
		t.Fatal("no string in encoded message")
	}
	corrupted := append([]byte(nil), payload...)
	corrupted[idx+1] = 0xff
	if _, err := ReadMessage(bytes.NewReader(frame(corrupted))); err == nil {
		t.Fatal("ReadMessage accepted a frame with invalid UTF-8")
	}
}

// TestReadMessageTruncatedFrame pins the short-read error path.
func TestReadMessageTruncatedFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	valid := core.Message{Type: core.MsgAssign, From: 1, Job: liveJob(rng, 1000)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, valid); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 8; cut++ {
		short := buf.Bytes()[:buf.Len()-cut]
		if _, err := ReadMessage(bytes.NewReader(short)); err == nil {
			t.Fatalf("ReadMessage accepted a frame truncated by %d bytes", cut)
		}
	}
}
