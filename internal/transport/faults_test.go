package transport

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
)

// faultSimPair builds a two-node sim cluster with a fault model installed.
func faultSimPair(t *testing.T, cfg core.Config, obs core.Observer, fcfg faults.Config) (*SimCluster, *faults.LinkModel) {
	t.Helper()
	engine := sim.NewEngine(9)
	graph := overlay.NewGraph()
	graph.AddNode(0)
	graph.AddNode(1)
	graph.AddLink(0, 1)
	c := NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	lm, err := faults.NewLinkModel(fcfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaults(lm)
	for id := overlay.NodeID(0); id < 2; id++ {
		if _, err := c.AddNode(id, liveProfile(), sched.FCFS, cfg, obs, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	c.StartAll()
	return c, lm
}

func TestSimClusterTotalLossBlocksDelivery(t *testing.T) {
	completions := 0
	obs := &funcObserver{onCompleted: func(overlay.NodeID, *job.Job) { completions++ }}
	cfg := liveConfig()
	cfg.MaxRequestRetries = 1
	c, lm := faultSimPair(t, cfg, obs, faults.Config{DropProb: 0.999999999})

	rng := rand.New(rand.NewSource(21))
	p := liveJob(rng, 10*time.Millisecond)
	// The submitter could host the job itself without touching the
	// network, so demand more memory than either node has: discovery must
	// go over the (fully lossy) wire and can never gather an ACCEPT.
	p.Req.MinMemoryGB = liveProfile().MemoryGB + 1
	n0, _ := c.Node(0)
	if err := n0.Submit(p); err == nil {
		c.Engine().Run(time.Hour)
	}
	if completions != 0 {
		t.Fatal("job completed across a network that drops everything")
	}
	st := lm.Stats()
	if st.Dropped == 0 || st.Dropped != st.Sent {
		t.Fatalf("stats = %+v, want every send dropped", st)
	}
}

func TestSimClusterDuplicatesAreAbsorbed(t *testing.T) {
	var starts, completions int
	obs := &funcObserver{onCompleted: func(overlay.NodeID, *job.Job) { completions++ }}
	obs.onStarted = func() { starts++ }
	cfg := liveConfig()
	cfg.InformJobs = 0 // keep the message flow minimal
	c, lm := faultSimPair(t, cfg, obs, faults.Config{DupProb: 0.999999999})

	rng := rand.New(rand.NewSource(22))
	p := liveJob(rng, 10*time.Millisecond)
	n0, _ := c.Node(0)
	if err := n0.Submit(p); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(time.Hour)
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1 despite duplication", completions)
	}
	if starts != 1 {
		t.Fatalf("starts = %d, want exactly 1 despite duplication", starts)
	}
	st := lm.Stats()
	if st.Duplicated == 0 || st.Duplicated != st.Sent {
		t.Fatalf("stats = %+v, want every send duplicated", st)
	}
}

func TestSimClusterJitterDelaysButDelivers(t *testing.T) {
	completions := 0
	obs := &funcObserver{onCompleted: func(overlay.NodeID, *job.Job) { completions++ }}
	cfg := liveConfig()
	c, lm := faultSimPair(t, cfg, obs, faults.Config{MaxExtraDelay: 40 * time.Millisecond})

	rng := rand.New(rand.NewSource(23))
	p := liveJob(rng, 10*time.Millisecond)
	n0, _ := c.Node(0)
	if err := n0.Submit(p); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(time.Hour)
	if completions != 1 {
		t.Fatalf("completions = %d, want 1 under pure jitter", completions)
	}
	if st := lm.Stats(); st.Lost() != 0 {
		t.Fatalf("stats = %+v, want zero loss under pure jitter", st)
	}
}

func TestInprocClusterFaultsDropEverything(t *testing.T) {
	c := NewInprocCluster(5, nil)
	defer c.Close()
	lm, err := faults.NewLinkModel(faults.Config{DropProb: 0.999999999}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaults(lm)

	var delivered atomic.Int32
	obs := &funcObserver{onCompleted: func(overlay.NodeID, *job.Job) { delivered.Add(1) }}
	cfg := liveConfig()
	cfg.MaxRequestRetries = 1
	cfg.RetryBackoff = 20 * time.Millisecond
	for id := overlay.NodeID(0); id < 2; id++ {
		if _, err := c.AddNode(id, liveProfile(), sched.FCFS, cfg, obs, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	c.StartAll()

	rng := rand.New(rand.NewSource(32))
	p := liveJob(rng, 5*time.Millisecond)
	p.Req.MinMemoryGB = liveProfile().MemoryGB + 1 // force network discovery
	n0, _ := c.Node(0)
	_ = n0.Submit(p)
	time.Sleep(300 * time.Millisecond)
	if got := delivered.Load(); got != 0 {
		t.Fatalf("completions = %d across a fully lossy live network", got)
	}
	if st := lm.Stats(); st.Sent > 0 && st.Dropped != st.Sent {
		t.Fatalf("stats = %+v, want every send dropped", st)
	}
}
