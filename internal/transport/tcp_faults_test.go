package transport

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// frameSink accepts TCP connections and pushes every decoded protocol
// frame onto a channel, standing in for a peer node.
func frameSink(t *testing.T) (addr string, got <-chan core.Message) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan core.Message, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					m, err := ReadMessage(conn)
					if err != nil {
						return
					}
					ch <- m
				}
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String(), ch
}

// TestTCPFaultInjection drives the wire transport's fault layer directly:
// a one-way partition must silently drop outbound frames (no breaker
// trips, no liveness reports), a slowdown window must delay them, and
// clearing the model must restore clean immediate delivery.
func TestTCPFaultInjection(t *testing.T) {
	addr, got := frameSink(t)
	tn, err := ListenTCP(TCPConfig{
		ID: 1, Listen: "127.0.0.1:0",
		Peers:     map[overlay.NodeID]string{2: addr},
		Neighbors: []overlay.NodeID{2},
		Seed:      7,
	}, liveProfile(), sched.FCFS, liveConfig(), nil, job.DefaultARTModel())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tn.Close() }()

	waitFrame := func(within time.Duration) (core.Message, bool) {
		select {
		case m := <-got:
			return m, true
		case <-time.After(within):
			return core.Message{}, false
		}
	}

	// Clean path first: frames flow.
	tn.env.Send(2, core.Message{Type: core.MsgPing, From: 1})
	if _, ok := waitFrame(2 * time.Second); !ok {
		t.Fatal("frame lost without any fault model installed")
	}

	// One-way partition: node 2 is deaf for the next hour of process
	// time, so everything we send it vanishes silently.
	lm, err := faults.NewLinkModel(faults.Config{
		Partitions: []faults.Partition{{
			End: time.Hour, Isolated: []overlay.NodeID{2}, OneWay: true,
		}},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tn.SetFaults(lm)
	tn.env.Send(2, core.Message{Type: core.MsgPing, From: 1})
	if m, ok := waitFrame(300 * time.Millisecond); ok {
		t.Fatalf("partitioned send delivered %v", m.Type)
	}
	if s := lm.Stats(); s.PartitionDropped != 1 {
		t.Fatalf("stats %+v, want 1 partition drop", s)
	}
	// Injected drops are loss, not peer failure: the breaker must stay
	// closed so the first frame after heal flows without a cooldown.
	if br := tn.env.breakerFor(2); !br.Allow(tn.env.Now()) {
		t.Fatal("injected drop opened the circuit breaker")
	}

	// Slowdown window: frames arrive, but not before the extra delay.
	const extra = 200 * time.Millisecond
	lm, err = faults.NewLinkModel(faults.Config{
		Slowdowns: []faults.Slowdown{{
			End: time.Hour, Nodes: []overlay.NodeID{2}, ExtraDelay: extra,
		}},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tn.SetFaults(lm)
	start := time.Now()
	tn.env.Send(2, core.Message{Type: core.MsgPing, From: 1})
	if _, ok := waitFrame(5 * time.Second); !ok {
		t.Fatal("slowed frame never arrived")
	}
	if took := time.Since(start); took < extra {
		t.Fatalf("slowed frame arrived in %v, want at least %v", took, extra)
	}

	// Clearing the model restores clean delivery.
	tn.SetFaults(nil)
	tn.env.Send(2, core.Message{Type: core.MsgPing, From: 1})
	if _, ok := waitFrame(2 * time.Second); !ok {
		t.Fatal("frame lost after clearing the fault model")
	}
}
