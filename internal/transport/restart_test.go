package transport

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
)

// twoNodeSim builds a started two-node simulated cluster, optionally with
// journaling enabled.
func twoNodeSim(t *testing.T, journal bool) *SimCluster {
	t.Helper()
	engine := sim.NewEngine(17)
	graph := overlay.NewGraph()
	graph.AddNode(0)
	graph.AddNode(1)
	graph.AddLink(0, 1)
	c := NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	if journal {
		c.EnableJournaling()
	}
	for id := overlay.NodeID(0); id < 2; id++ {
		if _, err := c.AddNode(id, liveProfile(), sched.FCFS, liveConfig(), nil, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	c.StartAll()
	return c
}

// TestSimClusterRestartRecoversWork pins the fail-recover path end to end at
// the transport layer: a node holding an accepted job crashes, restarts, and
// resumes the job from its journal.
func TestSimClusterRestartRecoversWork(t *testing.T) {
	c := twoNodeSim(t, true)
	rng := rand.New(rand.NewSource(3))
	p := liveJob(rng, time.Hour)

	n1, _ := c.Node(1)
	n1.HandleMessage(core.Message{Type: core.MsgAssign, From: 0, Via: 0, Job: p})
	if uuid, ok := n1.Running(); !ok || uuid != p.UUID {
		t.Fatalf("job not running before crash: %v %v", uuid, ok)
	}

	n1.Kill()
	n2, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if uuid, ok := n2.Running(); !ok || uuid != p.UUID {
		t.Fatalf("restarted node did not resume the journaled job: %v %v", uuid, ok)
	}
	if !n2.Alive() {
		t.Fatal("restarted node not alive")
	}
}

// TestSimClusterRestartAmnesiac pins the fail-stop control: without
// journaling the replacement comes back empty.
func TestSimClusterRestartAmnesiac(t *testing.T) {
	c := twoNodeSim(t, false)
	rng := rand.New(rand.NewSource(3))
	p := liveJob(rng, time.Hour)

	n1, _ := c.Node(1)
	n1.HandleMessage(core.Message{Type: core.MsgAssign, From: 0, Via: 0, Job: p})
	n1.Kill()
	n2, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n2.Running(); ok {
		t.Fatal("amnesiac restart resumed a job it cannot remember")
	}
	if n2.QueueLen() != 0 {
		t.Fatalf("amnesiac restart queue length %d, want 0", n2.QueueLen())
	}
}

// TestSimClusterRestartErrors pins the guard rails: restarting a live node,
// a never-added ID, or a node excised from the graph must all fail.
func TestSimClusterRestartErrors(t *testing.T) {
	c := twoNodeSim(t, true)
	if _, err := c.Restart(1); err == nil {
		t.Fatal("restarting a live node succeeded")
	}
	if _, err := c.Restart(42); err == nil {
		t.Fatal("restarting an unknown node succeeded")
	}
	n1, _ := c.Node(1)
	n1.Kill()
	c.Graph().RemoveNode(1)
	if _, err := c.Restart(1); err == nil {
		t.Fatal("restarting an excised node succeeded")
	}
}

// TestInprocClusterRestartRecoversWork exercises the same crash–recover
// cycle on the live in-process transport.
func TestInprocClusterRestartRecoversWork(t *testing.T) {
	c := NewInprocCluster(5, nil)
	c.EnableJournaling()
	for id := overlay.NodeID(0); id < 2; id++ {
		if _, err := c.AddNode(id, liveProfile(), sched.FCFS, liveConfig(), nil, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	c.StartAll()
	defer c.Close()

	rng := rand.New(rand.NewSource(7))
	p := liveJob(rng, time.Hour)
	n1, _ := c.Node(1)
	n1.HandleMessage(core.Message{Type: core.MsgAssign, From: 0, Via: 0, Job: p})
	if uuid, ok := n1.Running(); !ok || uuid != p.UUID {
		t.Fatalf("job not running before crash: %v %v", uuid, ok)
	}

	n1.Kill()
	n2, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if uuid, ok := n2.Running(); !ok || uuid != p.UUID {
		t.Fatalf("restarted node did not resume the journaled job: %v %v", uuid, ok)
	}
}
