package transport

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/overlay"
)

// TestBreakerStateMachine walks the full closed -> open -> half-open cycle
// with an injected clock: trips at the threshold, fast-fails through the
// cooldown, admits exactly one probe, and resolves the probe's outcome in
// both directions.
func TestBreakerStateMachine(t *testing.T) {
	const cooldown = 10 * time.Second
	b := newBreaker(3, cooldown)

	if got := b.State(); got != breakerClosed {
		t.Fatalf("new breaker state = %v, want closed", got)
	}
	// Failures below the threshold keep passing sends.
	b.Failure(0)
	b.Failure(time.Second)
	if !b.Allow(time.Second) {
		t.Fatal("breaker opened below the failure threshold")
	}
	// A success clears the consecutive count: two more failures must not
	// trip a threshold of three.
	b.Success()
	b.Failure(2 * time.Second)
	b.Failure(3 * time.Second)
	if got := b.State(); got != breakerClosed {
		t.Fatalf("state after success+2 failures = %v, want closed", got)
	}
	// The third consecutive failure opens the circuit.
	b.Failure(4 * time.Second)
	if got := b.State(); got != breakerOpen {
		t.Fatalf("state at threshold = %v, want open", got)
	}
	if b.Allow(4*time.Second + cooldown - time.Millisecond) {
		t.Fatal("open breaker admitted a send inside the cooldown")
	}
	// First call past the deadline becomes the half-open probe; racing
	// calls during the probe are still refused.
	if !b.Allow(4*time.Second + cooldown) {
		t.Fatal("cooldown expiry did not admit a probe")
	}
	if got := b.State(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow(5*time.Second + cooldown) {
		t.Fatal("second send admitted while a probe is in flight")
	}
	// A failed probe re-opens for a fresh cooldown.
	b.Failure(20 * time.Second)
	if got := b.State(); got != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Allow(20*time.Second + cooldown/2) {
		t.Fatal("re-opened breaker admitted a send inside the new cooldown")
	}
	// A successful probe closes the circuit and resets the count.
	if !b.Allow(20*time.Second + cooldown) {
		t.Fatal("second cooldown expiry did not admit a probe")
	}
	b.Success()
	if got := b.State(); got != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow(21*time.Second + cooldown) {
		t.Fatal("closed breaker refused a send")
	}
}

// TestDialBackoffCapped pins the dial backoff ladder: doubling from the
// base, clamped at the cap, and immune to shift overflow however large the
// attempt number grows.
func TestDialBackoffCapped(t *testing.T) {
	want := tcpDialBackoff
	for attempt := 1; attempt < 64; attempt++ {
		got := dialBackoff(attempt)
		if got != want {
			t.Fatalf("dialBackoff(%d) = %v, want %v", attempt, got, want)
		}
		if want < tcpDialBackoffCap {
			want *= 2
			if want > tcpDialBackoffCap {
				want = tcpDialBackoffCap
			}
		}
	}
	for _, attempt := range []int{100, 1 << 20, 1 << 40} {
		if got := dialBackoff(attempt); got != tcpDialBackoffCap {
			t.Fatalf("dialBackoff(%d) = %v, want cap %v", attempt, got, tcpDialBackoffCap)
		}
	}
	if got := dialBackoff(0); got != tcpDialBackoff {
		t.Fatalf("dialBackoff(0) = %v, want base %v", got, tcpDialBackoff)
	}
}

// TestTCPBreakerOpensAndRecovers drives the live Send path against a dead
// address: consecutive failures must trip the peer's breaker, an open
// breaker must fast-fail without re-reporting to the liveness detector, and
// once the peer binds, the cooldown probe must deliver and close the
// circuit.
func TestTCPBreakerOpensAndRecovers(t *testing.T) {
	// Reserve an address, then free it: dials are refused instantly.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	var unreachable atomic.Int32
	env := &tcpEnv{
		start:     time.Now(),
		id:        1,
		peers:     map[overlay.NodeID]string{2: addr},
		neighbors: []overlay.NodeID{2},
		rng:       rand.New(rand.NewSource(7)),
		jrng:      rand.New(rand.NewSource(8)),
		conns:     make(map[overlay.NodeID]*peerConn),
	}
	env.onUnreachable = func(overlay.NodeID) { unreachable.Add(1) }
	defer env.closeConns()

	// Install a breaker with a test-scale cooldown in place of the default.
	br := newBreaker(2, 200*time.Millisecond)
	env.mu.Lock()
	env.breakers = map[overlay.NodeID]*breaker{2: br}
	env.mu.Unlock()

	rng := rand.New(rand.NewSource(9))
	msg := core.Message{
		Type: core.MsgNotify, From: 1,
		Job: liveJob(rng, time.Minute), Notify: core.NotifyQueued,
	}

	// Two refused sends trip the threshold; each one reports unreachable.
	env.Send(2, msg)
	env.Send(2, msg)
	waitUntil(t, 10*time.Second, "breaker never opened", func() bool {
		return br.State() == breakerOpen && unreachable.Load() == 2
	})

	// While open (and inside the cooldown), sends drop without dialing and
	// without re-reporting.
	env.Send(2, msg)
	time.Sleep(50 * time.Millisecond)
	if got := br.State(); got != breakerOpen {
		t.Fatalf("state after fast-failed send = %v, want open", got)
	}
	if got := unreachable.Load(); got != 2 {
		t.Fatalf("fast-failed send re-reported unreachable (%d reports)", got)
	}

	// Bind the peer; once the cooldown lapses a probe send must get
	// through and close the circuit.
	recv := make(chan core.Message, 4)
	peer := startRawPeer(t, addr, recv)
	defer peer.stop()
	deadline := time.Now().Add(10 * time.Second)
	for br.State() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the peer came back")
		}
		env.Send(2, msg)
		time.Sleep(50 * time.Millisecond)
	}
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery after the breaker closed")
	}
}

// waitUntil polls cond until it holds or the deadline lapses.
func waitUntil(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestBreakerAdmitsExactlyOneHalfOpenProbe(t *testing.T) {
	// Many senders race Allow at the instant the cooldown expires; the
	// half-open contract is that exactly ONE is admitted as the probe and
	// the rest keep fast-failing until the probe's outcome is known.
	br := newBreaker(1, 50*time.Millisecond)
	br.Failure(0) // trip open at t=0

	const senders = 64
	now := 60 * time.Millisecond // past the cooldown deadline
	var admitted int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if br.Allow(now) {
				atomic.AddInt32(&admitted, 1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := atomic.LoadInt32(&admitted); got != 1 {
		t.Fatalf("%d probes admitted at cooldown expiry, want exactly 1", got)
	}
	if s := br.State(); s != breakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", s)
	}

	// While the probe is in flight every further sender still fast-fails.
	for i := 0; i < 8; i++ {
		if br.Allow(now + time.Duration(i)*time.Millisecond) {
			t.Fatal("sender admitted while the half-open probe was in flight")
		}
	}

	// A failed probe re-opens: the next wave at the NEXT cooldown expiry
	// again admits exactly one.
	br.Failure(now)
	if br.Allow(now + 10*time.Millisecond) {
		t.Fatal("sender admitted during the re-opened cooldown")
	}
	later := now + 70*time.Millisecond
	admitted = 0
	var wg2 sync.WaitGroup
	start2 := make(chan struct{})
	for i := 0; i < senders; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			<-start2
			if br.Allow(later) {
				atomic.AddInt32(&admitted, 1)
			}
		}()
	}
	close(start2)
	wg2.Wait()
	if got := atomic.LoadInt32(&admitted); got != 1 {
		t.Fatalf("%d probes admitted after re-open cooldown, want exactly 1", got)
	}

	// A successful probe closes the circuit for everyone.
	br.Success()
	if !br.Allow(later+time.Millisecond) || br.State() != breakerClosed {
		t.Fatal("breaker did not close after a successful probe")
	}
}
