package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
)

func liveProfile() resource.Profile {
	return resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 16, DiskGB: 16, PerfIndex: 1.5,
	}
}

// liveConfig shrinks protocol timings to wall-clock test scale.
func liveConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.AcceptTimeout = 150 * time.Millisecond
	cfg.InformInterval = 200 * time.Millisecond
	cfg.RescheduleThreshold = time.Millisecond
	cfg.RetryBackoff = 100 * time.Millisecond
	return cfg
}

func liveJob(rng *rand.Rand, ert time.Duration) job.Profile {
	return job.Profile{
		UUID: job.NewUUID(rng),
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   ert,
		Class: job.ClassBatch,
	}
}

// completionWaiter observes completions and lets tests block on them.
type completionWaiter struct {
	core.NopObserver

	mu   sync.Mutex
	done map[job.UUID]chan struct{}
}

func newCompletionWaiter() *completionWaiter {
	return &completionWaiter{done: make(map[job.UUID]chan struct{})}
}

func (w *completionWaiter) channel(uuid job.UUID) chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, ok := w.done[uuid]
	if !ok {
		ch = make(chan struct{})
		w.done[uuid] = ch
	}
	return ch
}

func (w *completionWaiter) JobCompleted(_ time.Duration, _ overlay.NodeID, j *job.Job) {
	close(w.channel(j.UUID))
}

func (w *completionWaiter) wait(t *testing.T, uuid job.UUID, timeout time.Duration) {
	t.Helper()
	select {
	case <-w.channel(uuid):
	case <-time.After(timeout):
		t.Fatalf("job %s did not complete within %v", uuid.Short(), timeout)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := core.Message{
		Type: core.MsgRequest, From: 3, Job: liveJob(rng, time.Hour),
		TTL: 8, Fanout: 4, Seq: 7, Via: 2,
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip\n give %+v\n got  %+v", m, got)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	// Oversized frame header.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("accepted oversized frame")
	}
	// Valid frame with invalid message.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{}")
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("accepted structurally invalid message")
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10})
	buf.WriteString("abc")
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("accepted truncated frame")
	}
}

func TestInprocEndToEnd(t *testing.T) {
	cluster := NewInprocCluster(1, overlay.FixedLatency(time.Millisecond))
	defer cluster.Close()
	waiter := newCompletionWaiter()
	cfg := liveConfig()
	art := job.ARTModel{Mode: job.DriftNone}
	const n = 5
	for i := overlay.NodeID(0); i < n; i++ {
		if _, err := cluster.AddNode(i, liveProfile(), sched.FCFS, cfg, waiter, art); err != nil {
			t.Fatal(err)
		}
	}
	for i := overlay.NodeID(0); i < n; i++ {
		for k := i + 1; k < n; k++ {
			if err := cluster.Connect(i, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	cluster.StartAll()

	rng := rand.New(rand.NewSource(2))
	node, ok := cluster.Node(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	var uuids []job.UUID
	for i := 0; i < 4; i++ {
		p := liveJob(rng, 50*time.Millisecond)
		uuids = append(uuids, p.UUID)
		if err := node.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, uuid := range uuids {
		waiter.wait(t, uuid, 10*time.Second)
	}
}

func TestInprocReschedulingLive(t *testing.T) {
	cluster := NewInprocCluster(3, nil)
	defer cluster.Close()
	waiter := newCompletionWaiter()
	cfg := liveConfig()
	art := job.ARTModel{Mode: job.DriftNone}
	// One matching node, one bystander.
	if _, err := cluster.AddNode(0, liveProfile(), sched.FCFS, cfg, waiter, art); err != nil {
		t.Fatal(err)
	}
	bystander := liveProfile()
	bystander.Arch = resource.ArchPOWER
	if _, err := cluster.AddNode(1, bystander, sched.FCFS, cfg, waiter, art); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	cluster.StartAll()

	rng := rand.New(rand.NewSource(4))
	node, _ := cluster.Node(0)
	var uuids []job.UUID
	for i := 0; i < 5; i++ {
		p := liveJob(rng, 300*time.Millisecond)
		uuids = append(uuids, p.UUID)
		if err := node.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	// A second matching node joins while jobs queue; INFORM floods must
	// pull work over to it live.
	time.Sleep(250 * time.Millisecond)
	late, err := cluster.AddNode(2, liveProfile(), sched.FCFS, cfg, waiter, art)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Connect(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Connect(2, 1); err != nil {
		t.Fatal(err)
	}
	late.Start()
	for _, uuid := range uuids {
		waiter.wait(t, uuid, 15*time.Second)
	}
}

func TestInprocDuplicateNode(t *testing.T) {
	cluster := NewInprocCluster(1, nil)
	defer cluster.Close()
	if _, err := cluster.AddNode(0, liveProfile(), sched.FCFS, liveConfig(), nil, job.DefaultARTModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.AddNode(0, liveProfile(), sched.FCFS, liveConfig(), nil, job.DefaultARTModel()); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if err := cluster.Connect(0, 99); err == nil {
		t.Fatal("Connect accepted unknown node")
	}
}

func TestTCPConfigValidate(t *testing.T) {
	good := TCPConfig{
		ID: 1, Listen: "127.0.0.1:0",
		Peers:     map[overlay.NodeID]string{2: "127.0.0.1:1"},
		Neighbors: []overlay.NodeID{2},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*TCPConfig)
	}{
		{"no listen", func(c *TCPConfig) { c.Listen = "" }},
		{"no peers", func(c *TCPConfig) { c.Peers = nil }},
		{"no neighbors", func(c *TCPConfig) { c.Neighbors = nil }},
		{"neighbor without address", func(c *TCPConfig) { c.Neighbors = []overlay.NodeID{9} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bad := good
			tt.mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("Validate accepted bad config")
			}
		})
	}
}

func TestTCPEndToEnd(t *testing.T) {
	waiter := newCompletionWaiter()
	cfg := liveConfig()
	art := job.ARTModel{Mode: job.DriftNone}

	// Bind three listeners on ephemeral ports first, then exchange the
	// discovered addresses.
	const n = 3
	nodes := make([]*TCPNode, n)
	addrs := make(map[overlay.NodeID]string, n)
	for i := 0; i < n; i++ {
		tn, err := ListenTCP(TCPConfig{
			ID:     overlay.NodeID(i),
			Listen: "127.0.0.1:0",
			// Temporary self-referential wiring; fixed below.
			Peers:     map[overlay.NodeID]string{overlay.NodeID((i + 1) % n): "127.0.0.1:1"},
			Neighbors: []overlay.NodeID{overlay.NodeID((i + 1) % n)},
			Seed:      int64(i + 1),
		}, liveProfile(), sched.FCFS, cfg, waiter, art)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = tn.Close() }()
		nodes[i] = tn
		addrs[overlay.NodeID(i)] = tn.Addr()
	}
	// Rewire full peer maps and all-to-all neighborhoods now that the
	// real addresses are known.
	for i, tn := range nodes {
		env := tn.env
		env.mu.Lock()
		env.peers = make(map[overlay.NodeID]string, n)
		for id, addr := range addrs {
			env.peers[id] = addr
		}
		var nbs []overlay.NodeID
		for k := 0; k < n; k++ {
			if k != i {
				nbs = append(nbs, overlay.NodeID(k))
			}
		}
		env.neighbors = nbs
		env.mu.Unlock()
		tn.Node().Start()
	}

	rng := rand.New(rand.NewSource(9))
	var uuids []job.UUID
	for i := 0; i < 3; i++ {
		p := liveJob(rng, 40*time.Millisecond)
		uuids = append(uuids, p.UUID)
		if err := nodes[0].Node().Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, uuid := range uuids {
		waiter.wait(t, uuid, 15*time.Second)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	tn, err := ListenTCP(TCPConfig{
		ID: 1, Listen: "127.0.0.1:0",
		Peers:     map[overlay.NodeID]string{2: "127.0.0.1:1"},
		Neighbors: []overlay.NodeID{2},
	}, liveProfile(), sched.FCFS, liveConfig(), nil, job.DefaultARTModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	if tn.Node().Alive() {
		t.Fatal("node alive after Close")
	}
}

func TestSimClusterEquivalence(t *testing.T) {
	// The same workload through the sim transport and the inproc
	// transport must complete the same job set on the same node
	// (modulo timing): protocol behaviour is transport-independent.
	rng := rand.New(rand.NewSource(31))
	p := liveJob(rng, 30*time.Millisecond)

	// Sim run.
	engine := simEngineForTest()
	graph := overlay.NewGraph()
	graph.AddNode(0)
	graph.AddNode(1)
	graph.AddLink(0, 1)
	sc := NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	simDone := make(map[job.UUID]overlay.NodeID)
	simObs := &funcObserver{onCompleted: func(node overlay.NodeID, j *job.Job) {
		simDone[j.UUID] = node
	}}
	fast, slow := liveProfile(), liveProfile()
	fast.PerfIndex = 1.9
	slow.PerfIndex = 1.0
	if _, err := sc.AddNode(0, slow, sched.FCFS, liveConfig(), simObs, job.ARTModel{Mode: job.DriftNone}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.AddNode(1, fast, sched.FCFS, liveConfig(), simObs, job.ARTModel{Mode: job.DriftNone}); err != nil {
		t.Fatal(err)
	}
	sc.StartAll()
	n0, _ := sc.Node(0)
	if err := n0.Submit(p); err != nil {
		t.Fatal(err)
	}
	engine.Run(time.Hour)
	if simDone[p.UUID] != 1 {
		t.Fatalf("sim run placed job on %v, want fastest node 1", simDone[p.UUID])
	}

	// Live run with the same topology and profiles.
	live := NewInprocCluster(1, overlay.FixedLatency(time.Millisecond))
	defer live.Close()
	waiter := newCompletionWaiter()
	var liveNode overlay.NodeID = -1
	var mu sync.Mutex
	obs := &funcObserver{onCompleted: func(node overlay.NodeID, j *job.Job) {
		mu.Lock()
		liveNode = node
		mu.Unlock()
		waiter.JobCompleted(0, node, j)
	}}
	if _, err := live.AddNode(0, slow, sched.FCFS, liveConfig(), obs, job.ARTModel{Mode: job.DriftNone}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.AddNode(1, fast, sched.FCFS, liveConfig(), obs, job.ARTModel{Mode: job.DriftNone}); err != nil {
		t.Fatal(err)
	}
	if err := live.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	live.StartAll()
	p2 := p
	p2.UUID = job.NewUUID(rng)
	ln, _ := live.Node(0)
	if err := ln.Submit(p2); err != nil {
		t.Fatal(err)
	}
	waiter.wait(t, p2.UUID, 10*time.Second)
	mu.Lock()
	defer mu.Unlock()
	if liveNode != 1 {
		t.Fatalf("live run placed job on %v, want fastest node 1", liveNode)
	}
}

// funcObserver adapts lifecycle callbacks to core.Observer.
type funcObserver struct {
	core.NopObserver

	onCompleted func(node overlay.NodeID, j *job.Job)
	onStarted   func()
}

func (f *funcObserver) JobCompleted(_ time.Duration, node overlay.NodeID, j *job.Job) {
	if f.onCompleted != nil {
		f.onCompleted(node, j)
	}
}

func (f *funcObserver) JobStarted(time.Duration, overlay.NodeID, job.UUID) {
	if f.onStarted != nil {
		f.onStarted()
	}
}

func simEngineForTest() *sim.Engine {
	return sim.NewEngine(77)
}

func TestSimClusterAccessors(t *testing.T) {
	engine := sim.NewEngine(1)
	graph := overlay.NewGraph()
	graph.AddNode(0)
	c := NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	if c.Engine() != engine || c.Graph() != graph {
		t.Fatal("accessors returned wrong objects")
	}
	if c.IdleCount() != 0 {
		t.Fatal("empty cluster idle count wrong")
	}
	if _, err := c.AddNode(0, liveProfile(), sched.FCFS, liveConfig(), nil, job.DefaultARTModel()); err != nil {
		t.Fatal(err)
	}
	if c.IdleCount() != 1 {
		t.Fatal("one idle node expected")
	}
	hits := 0
	c.SetTraffic(func(_ time.Duration, _, _ overlay.NodeID, _ *core.Message) { hits++ })
	n, _ := c.Node(0)
	rng := rand.New(rand.NewSource(1))
	if err := n.Submit(liveJob(rng, time.Hour)); err != nil {
		t.Fatal(err)
	}
	engine.Run(time.Minute)
	_ = hits // node has no neighbors: zero sends is fine, hook must not crash
}

func TestTCPSendToUnknownPeerDropped(t *testing.T) {
	// A node whose peer map lacks an address must drop sends silently
	// (the protocol's retries cover it).
	waiter := newCompletionWaiter()
	tn, err := ListenTCP(TCPConfig{
		ID: 1, Listen: "127.0.0.1:0",
		Peers:     map[overlay.NodeID]string{2: "127.0.0.1:1"}, // port 1: dial fails
		Neighbors: []overlay.NodeID{2},
		Seed:      1,
	}, liveProfile(), sched.FCFS, liveConfig(), waiter, job.ARTModel{Mode: job.DriftNone})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tn.Close() }()
	tn.Node().Start()
	rng := rand.New(rand.NewSource(5))
	// The node itself matches, so the job self-assigns and completes even
	// though every outbound send fails.
	p := liveJob(rng, 20*time.Millisecond)
	if err := tn.Node().Submit(p); err != nil {
		t.Fatal(err)
	}
	waiter.wait(t, p.UUID, 10*time.Second)
}

func TestWriteMessageRejectsOversized(t *testing.T) {
	huge := core.Message{
		Type: core.MsgRequest,
		Job: job.Profile{
			UUID: job.UUID(strings.Repeat("ab", 16)),
		},
	}
	// Inflate via a giant string field is not possible on the struct, so
	// exercise the frame-size guard through ReadMessage instead (covered
	// in TestCodecRejectsGarbage) and assert WriteMessage handles writer
	// errors.
	if err := WriteMessage(failWriter{}, huge); err == nil {
		t.Fatal("WriteMessage ignored writer error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }
