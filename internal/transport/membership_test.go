package transport

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/trace"
)

// memberEvent is one recorded membership transition.
type memberEvent struct {
	at         time.Duration
	kind       string // "suspect", "refute", "dead", "repair"
	node, peer overlay.NodeID
}

// memberRecorder captures membership-plane callbacks for assertions.
type memberRecorder struct {
	core.NopObserver

	events []memberEvent
}

func (m *memberRecorder) PeerSuspected(at time.Duration, node, peer overlay.NodeID) {
	m.events = append(m.events, memberEvent{at, "suspect", node, peer})
}

func (m *memberRecorder) PeerRefuted(at time.Duration, node, peer overlay.NodeID) {
	m.events = append(m.events, memberEvent{at, "refute", node, peer})
}

func (m *memberRecorder) PeerDead(at time.Duration, node, peer overlay.NodeID) {
	m.events = append(m.events, memberEvent{at, "dead", node, peer})
}

func (m *memberRecorder) LinkRepaired(at time.Duration, node, dead, replacement overlay.NodeID) {
	m.events = append(m.events, memberEvent{at, "repair", node, replacement})
}

func (m *memberRecorder) FloodEscalated(time.Duration, overlay.NodeID, job.UUID, int, int) {}

// membershipConfig arms the liveness detector on top of the live test config.
func membershipConfig(probe, timeout, suspect time.Duration) core.Config {
	cfg := liveConfig()
	cfg.ProbeInterval = probe
	cfg.ProbeTimeout = timeout
	cfg.SuspectTimeout = suspect
	return cfg
}

// ringCluster builds an n-node ring with membership armed.
func ringCluster(t *testing.T, n int, cfg core.Config, obs core.Observer) *SimCluster {
	t.Helper()
	engine := sim.NewEngine(31)
	graph := overlay.NewGraph()
	for i := 0; i < n; i++ {
		graph.AddNode(overlay.NodeID(i))
	}
	for i := 0; i < n; i++ {
		graph.AddLink(overlay.NodeID(i), overlay.NodeID((i+1)%n))
	}
	c := NewSimCluster(engine, graph, overlay.FixedLatency(100*time.Millisecond))
	for i := 0; i < n; i++ {
		if _, err := c.AddNode(overlay.NodeID(i), liveProfile(), sched.FCFS, cfg, obs, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	c.StartAll()
	return c
}

// TestMembershipNoFalseDeadUnderJitter pins the detector's safety margin:
// under the fault plane's maximum jitter (2s per copy, the iLossy setting)
// with the default timeouts, late PONGs may raise suspicion but must always
// refute it before the suspect window closes — no live neighbor is ever
// declared dead.
func TestMembershipNoFalseDeadUnderJitter(t *testing.T) {
	rec := &memberRecorder{}
	cfg := core.DefaultConfig()
	cfg.ProbeInterval = core.DefaultProbeInterval
	cfg.ProbeTimeout = core.DefaultProbeTimeout
	cfg.SuspectTimeout = core.DefaultSuspectTimeout
	c := ringCluster(t, 8, cfg, rec)

	lm, err := faults.NewLinkModel(faults.Config{MaxExtraDelay: 2 * time.Second}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaults(lm)
	c.Engine().Run(30 * time.Minute)

	suspects := 0
	for _, ev := range rec.events {
		switch ev.kind {
		case "dead":
			t.Errorf("node %v declared live peer %v dead at %v", ev.node, ev.peer, ev.at)
		case "suspect":
			suspects++
		}
	}
	// Worst-case round trip (0.2s latency + 2·2s jitter) exceeds the 3s
	// probe timeout, so the jitter must actually have produced suspicion
	// for the zero-dead assertion to mean anything.
	if suspects == 0 {
		t.Fatal("max jitter never raised a suspicion; the test exercises nothing")
	}
}

// TestMembershipDetectionBound is the detector timing table test: a killed
// neighbor is confirmed dead by every surviving neighbor within two probe
// intervals, across timeout configurations (each satisfying the design rule
// ProbeTimeout + SuspectTimeout <= ProbeInterval).
func TestMembershipDetectionBound(t *testing.T) {
	tests := []struct {
		name                     string
		probe, timeout, suspect  time.Duration
	}{
		{"defaults", core.DefaultProbeInterval, core.DefaultProbeTimeout, core.DefaultSuspectTimeout},
		{"fast", time.Second, 300 * time.Millisecond, 600 * time.Millisecond},
		{"slow", 30 * time.Second, 5 * time.Second, 20 * time.Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := &memberRecorder{}
			cfg := membershipConfig(tt.probe, tt.timeout, tt.suspect)
			// A pair: each node's single neighbor is probed every tick,
			// the setting the two-interval bound is stated for.
			engine := sim.NewEngine(13)
			graph := overlay.NewGraph()
			graph.AddNode(0)
			graph.AddNode(1)
			graph.AddLink(0, 1)
			c := NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
			for id := overlay.NodeID(0); id < 2; id++ {
				if _, err := c.AddNode(id, liveProfile(), sched.FCFS, cfg, rec, job.ARTModel{Mode: job.DriftNone}); err != nil {
					t.Fatal(err)
				}
			}
			c.StartAll()

			killAt := 6 * tt.probe
			engine.ScheduleAt(killAt, func() {
				n1, _ := c.Node(1)
				n1.Kill()
			})
			engine.Run(killAt + 4*tt.probe)

			var deadAt time.Duration
			for _, ev := range rec.events {
				if ev.kind == "dead" && ev.node == 0 && ev.peer == 1 {
					deadAt = ev.at
					break
				}
			}
			if deadAt == 0 {
				t.Fatalf("node 0 never declared killed neighbor dead (events: %+v)", rec.events)
			}
			if bound := killAt + 2*tt.probe; deadAt > bound {
				t.Fatalf("detected at %v, bound %v (kill at %v, 2x interval %v)", deadAt, bound, killAt, tt.probe)
			}
		})
	}
}

// TestMembershipRepairReconnectsNeighborOfNeighbor drives the full overlay
// repair path: on a line 0-1-2, node 1's death partitions the ends; peer
// gossip has taught 0 and 2 each other's existence through 1, so both prune
// the dead link and reconnect to each other.
func TestMembershipRepairReconnectsNeighborOfNeighbor(t *testing.T) {
	rec := &memberRecorder{}
	cfg := membershipConfig(time.Second, 300*time.Millisecond, 600*time.Millisecond)
	cfg.MaxDegree = 4

	engine := sim.NewEngine(17)
	graph := overlay.NewGraph()
	for i := 0; i < 3; i++ {
		graph.AddNode(overlay.NodeID(i))
	}
	graph.AddLink(0, 1)
	graph.AddLink(1, 2)
	c := NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	for i := 0; i < 3; i++ {
		if _, err := c.AddNode(overlay.NodeID(i), liveProfile(), sched.FCFS, cfg, rec, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	c.StartAll()

	// Give gossip a few rounds to spread neighbor lists, then kill the cut
	// vertex.
	engine.ScheduleAt(5*time.Second, func() {
		n1, _ := c.Node(1)
		n1.Kill()
	})
	engine.Run(15 * time.Second)

	if graph.HasLink(0, 1) || graph.HasLink(1, 2) {
		t.Fatalf("dead links not pruned: 0-1=%v 1-2=%v", graph.HasLink(0, 1), graph.HasLink(1, 2))
	}
	if !graph.HasLink(0, 2) {
		t.Fatal("overlay not repaired: survivors 0 and 2 are not connected")
	}
	repairs := 0
	for _, ev := range rec.events {
		if ev.kind == "repair" {
			repairs++
		}
	}
	if repairs == 0 {
		t.Fatal("repair happened in the graph but was never observed")
	}
}

// TestInitiatorKilledMidCollect kills an initiator between its REQUEST flood
// and the collect-window decision. The causal trace must report the job as
// lost with the initiator — never double-assigned and never started.
func TestInitiatorKilledMidCollect(t *testing.T) {
	collector := trace.NewCollector()
	cfg := liveConfig() // AcceptTimeout 150ms

	engine := sim.NewEngine(23)
	graph := overlay.NewGraph()
	for i := 0; i < 4; i++ {
		graph.AddNode(overlay.NodeID(i))
		for k := 0; k < i; k++ {
			graph.AddLink(overlay.NodeID(i), overlay.NodeID(k))
		}
	}
	c := NewSimCluster(engine, graph, overlay.FixedLatency(time.Millisecond))
	for i := 0; i < 4; i++ {
		if _, err := c.AddNode(overlay.NodeID(i), liveProfile(), sched.FCFS, cfg, collector, job.ARTModel{Mode: job.DriftNone}); err != nil {
			t.Fatal(err)
		}
	}
	c.StartAll()

	rng := rand.New(rand.NewSource(29))
	p := liveJob(rng, 10*time.Millisecond)
	n0, _ := c.Node(0)
	if err := n0.Submit(p); err != nil {
		t.Fatal(err)
	}
	// The flood is out instantly; offers return after ~2ms; the decision
	// falls at AcceptTimeout. Kill the initiator in between.
	engine.ScheduleAt(cfg.AcceptTimeout/2, func() { n0.Kill() })
	engine.Run(time.Minute)

	events := collector.Events()
	var assigns, starts, losses int
	for _, ev := range events {
		if ev.UUID != p.UUID {
			continue
		}
		switch ev.Kind {
		case core.SpanAssign:
			assigns++
		case core.SpanStart:
			starts++
		case core.SpanLost:
			losses++
		}
	}
	if assigns != 0 || starts != 0 {
		t.Fatalf("dead initiator still delegated: %d assigns, %d starts", assigns, starts)
	}
	if losses != 1 {
		t.Fatalf("losses = %d, want exactly 1 (the killed discovery round)", losses)
	}

	// The strict checker agrees: the job is reported lost (submitted,
	// never started), with no duplicate-execution complaint.
	rep := trace.Check(events, trace.Opts{Protocol: cfg})
	lost := false
	for _, v := range rep.Violations {
		if v.UUID != p.UUID {
			continue
		}
		switch v.Invariant {
		case "exactly-one-start":
			lost = true
		default:
			t.Errorf("unexpected violation: %v", v)
		}
	}
	if !lost {
		t.Fatalf("checker did not report the job lost; violations: %v", rep.Violations)
	}
}
