package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/wal"
)

// InprocCluster runs protocol nodes in one process under real time:
// deliveries and timers use the Go runtime, so nodes interact concurrently
// exactly as separate processes would. It demonstrates that the protocol
// engine is not simulator-bound and backs the live examples.
type InprocCluster struct {
	start   time.Time
	latency overlay.LatencyModel

	mu     sync.RWMutex
	graph  *overlay.Graph
	nodes  map[overlay.NodeID]*core.Node
	seed   int64
	faults *faults.LinkModel

	// specs remembers construction parameters for Restart; journals holds
	// each node's durable store once journaling is enabled; restarts
	// counts reboots per node, stamped on the replacement as its directory
	// incarnation.
	specs    map[overlay.NodeID]nodeSpec
	journals map[overlay.NodeID]*wal.Journal
	restarts map[overlay.NodeID]uint64
}

// NewInprocCluster creates an empty live cluster over a (possibly zero)
// latency model; nil latency means immediate delivery.
func NewInprocCluster(seed int64, latency overlay.LatencyModel) *InprocCluster {
	return &InprocCluster{
		start:   time.Now(),
		latency: latency,
		graph:   overlay.NewGraph(),
		nodes:    make(map[overlay.NodeID]*core.Node),
		seed:     seed,
		specs:    make(map[overlay.NodeID]nodeSpec),
		restarts: make(map[overlay.NodeID]uint64),
	}
}

// EnableJournaling attaches an in-memory write-ahead journal to every node
// added from now on, making crashes recoverable via Restart.
func (c *InprocCluster) EnableJournaling() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journals == nil {
		c.journals = make(map[overlay.NodeID]*wal.Journal)
	}
}

// AddNode creates and registers a live node. Links are added separately via
// Connect.
func (c *InprocCluster) AddNode(
	id overlay.NodeID,
	profile resource.Profile,
	policy sched.Policy,
	cfg core.Config,
	obs core.Observer,
	art job.ARTModel,
) (*core.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.nodes[id]; dup {
		return nil, fmt.Errorf("add node: %v already registered", id)
	}
	c.graph.AddNode(id)
	env := &inprocEnv{
		cluster: c,
		id:      id,
		rng:     rand.New(rand.NewSource(c.seed + int64(id)*7919)),
	}
	n, err := core.NewNode(id, profile, policy, env, cfg, obs, art)
	if err != nil {
		return nil, err
	}
	if c.journals != nil {
		j := wal.New(&wal.MemStore{}, wal.Options{})
		c.journals[id] = j
		n.AttachJournal(j)
	}
	c.nodes[id] = n
	c.specs[id] = nodeSpec{profile: profile, policy: policy, cfg: cfg, obs: obs, art: art}
	return n, nil
}

// Restart replaces a killed node with a fresh one on the same address,
// replaying its journal when journaling is enabled (amnesiac otherwise).
// The replacement is started before being returned.
func (c *InprocCluster) Restart(id overlay.NodeID) (*core.Node, error) {
	c.mu.Lock()
	spec, ok := c.specs[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("restart: %v was never added", id)
	}
	if !c.graph.HasNode(id) {
		c.mu.Unlock()
		return nil, fmt.Errorf("restart: %v no longer in overlay graph", id)
	}
	if old, ok := c.nodes[id]; ok && old.Alive() {
		c.mu.Unlock()
		return nil, fmt.Errorf("restart: %v is still alive", id)
	}
	env := &inprocEnv{
		cluster: c,
		id:      id,
		rng:     rand.New(rand.NewSource(c.seed + int64(id)*7919 + 104729)),
	}
	n, err := core.NewNode(id, spec.profile, spec.policy, env, spec.cfg, spec.obs, spec.art)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	j := c.journals[id]
	c.restarts[id]++
	n.SetIncarnation(c.restarts[id])
	// Register before recovering so recovery-time sends that loop back
	// (e.g. a NOTIFY to a local initiator) reach the new node; inbound
	// deliveries serialize on the node lock either way.
	c.nodes[id] = n
	c.mu.Unlock()
	if j != nil {
		n.AttachJournal(j)
		if _, err := n.Recover(); err != nil {
			return nil, err
		}
	}
	n.Start()
	return n, nil
}

// SetFaults installs a link fault model consulted on every transmission;
// nil restores perfect delivery. The LinkModel serializes its own draws, so
// one model can serve the whole concurrent cluster.
func (c *InprocCluster) SetFaults(lm *faults.LinkModel) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = lm
}

// linkFaults reads the installed fault model under the cluster lock.
func (c *InprocCluster) linkFaults() *faults.LinkModel {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.faults
}

// Connect links two registered nodes in the overlay.
func (c *InprocCluster) Connect(a, b overlay.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.graph.HasNode(a) || !c.graph.HasNode(b) {
		return fmt.Errorf("connect %v-%v: unknown node", a, b)
	}
	c.graph.AddLink(a, b)
	return nil
}

// Node returns the registered node with the given ID.
func (c *InprocCluster) Node(id overlay.NodeID) (*core.Node, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nodes[id]
	return n, ok
}

// Nodes snapshots all registered nodes.
func (c *InprocCluster) Nodes() []*core.Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*core.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	return out
}

// StartAll starts every registered node.
func (c *InprocCluster) StartAll() {
	for _, n := range c.Nodes() {
		n.Start()
	}
}

// Close kills every node, cancelling their timers; in-flight deliveries
// drain harmlessly against dead nodes.
func (c *InprocCluster) Close() {
	for _, n := range c.Nodes() {
		n.Kill()
	}
}

// inprocEnv adapts the live cluster to core.Env for one node. The random
// source is per-node and only touched under the owning node's lock.
type inprocEnv struct {
	cluster *InprocCluster
	id      overlay.NodeID
	rng     *rand.Rand
}

var _ core.Env = (*inprocEnv)(nil)

func (e *inprocEnv) Now() time.Duration {
	return time.Since(e.cluster.start)
}

func (e *inprocEnv) Schedule(delay time.Duration, fn func()) core.Cancel {
	t := time.AfterFunc(delay, fn)
	return t.Stop
}

func (e *inprocEnv) Send(to overlay.NodeID, m core.Message) {
	var delay time.Duration
	if e.cluster.latency != nil {
		delay = e.cluster.latency.Delay(e.id, to)
	}
	deliver := func() {
		if dest, ok := e.cluster.Node(to); ok {
			dest.HandleMessage(m)
		}
	}
	extras := []time.Duration{0}
	if lm := e.cluster.linkFaults(); lm != nil {
		extras = lm.Plan(e.Now(), e.id, to).ExtraDelays
	}
	for _, extra := range extras {
		if delay+extra <= 0 {
			// Still asynchronous: Env.Send must never call back into the
			// sender's lock synchronously.
			go deliver()
			continue
		}
		time.AfterFunc(delay+extra, deliver)
	}
}

func (e *inprocEnv) Neighbors() []overlay.NodeID {
	e.cluster.mu.RLock()
	defer e.cluster.mu.RUnlock()
	return e.cluster.graph.Neighbors(e.id)
}

func (e *inprocEnv) Rand() *rand.Rand {
	return e.rng
}

var _ core.MembershipEnv = (*inprocEnv)(nil)

// PruneLink implements core.MembershipEnv.
func (e *inprocEnv) PruneLink(peer overlay.NodeID) {
	e.cluster.mu.Lock()
	defer e.cluster.mu.Unlock()
	e.cluster.graph.RemoveLink(e.id, peer)
}

// Reconnect implements core.MembershipEnv.
func (e *inprocEnv) Reconnect(peer overlay.NodeID, maxDegree int) bool {
	e.cluster.mu.Lock()
	defer e.cluster.mu.Unlock()
	if !e.cluster.graph.HasNode(peer) {
		return false
	}
	return e.cluster.graph.AddLinkCapped(e.id, peer, maxDegree)
}
