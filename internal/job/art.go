package job

import (
	"fmt"
	"math/rand"
	"time"
)

// DriftMode selects how the Actual Running Time deviates from the estimate.
type DriftMode int

// Drift modes from §IV-D of the paper.
const (
	// DriftSymmetric draws the drift uniformly in [-ε·ERT, +ε·ERT]; the
	// baseline scenarios use ε = 0.1, the Accuracy25 ones ε = 0.25.
	DriftSymmetric DriftMode = iota + 1

	// DriftOptimistic takes the absolute value of the symmetric drift, so
	// the estimate is always lower than the actual time (AccuracyBad).
	DriftOptimistic

	// DriftNone makes the actual time match the estimate exactly
	// (Precise).
	DriftNone
)

// String names the mode.
func (m DriftMode) String() string {
	switch m {
	case DriftSymmetric:
		return "symmetric"
	case DriftOptimistic:
		return "optimistic"
	case DriftNone:
		return "none"
	default:
		return fmt.Sprintf("DriftMode(%d)", int(m))
	}
}

// ARTModel computes Actual Running Times from estimates. Per the paper,
//
//	ART(j, ε) = ERTp(j) + drift(j, ε)
//	drift(j, ε) = U[-1,1] · ERT(j) · ε
//
// where ERTp is the estimate scaled by the executing node's performance
// index and ERT the baseline estimate.
type ARTModel struct {
	Mode    DriftMode
	Epsilon float64
}

// DefaultARTModel matches the paper's baseline: symmetric ±10 % error.
func DefaultARTModel() ARTModel {
	return ARTModel{Mode: DriftSymmetric, Epsilon: 0.1}
}

// Validate reports the first structural problem with the model.
func (m ARTModel) Validate() error {
	switch m.Mode {
	case DriftSymmetric, DriftOptimistic:
		if m.Epsilon < 0 || m.Epsilon > 1 {
			return fmt.Errorf("epsilon %v outside [0,1]", m.Epsilon)
		}
	case DriftNone:
		// Epsilon ignored.
	default:
		return fmt.Errorf("invalid drift mode %d", int(m.Mode))
	}
	return nil
}

// ART draws the actual running time for a job with baseline estimate ert
// executing on a node where the scaled estimate is ertp. The result is
// clamped to be strictly positive.
func (m ARTModel) ART(ert, ertp time.Duration, rng *rand.Rand) time.Duration {
	var drift time.Duration
	switch m.Mode {
	case DriftNone:
		return ertp
	case DriftSymmetric:
		u := 2*rng.Float64() - 1 // U[-1,1]
		drift = time.Duration(u * float64(ert) * m.Epsilon)
	case DriftOptimistic:
		u := 2*rng.Float64() - 1
		d := u * float64(ert) * m.Epsilon
		if d < 0 {
			d = -d
		}
		drift = time.Duration(d)
	}
	art := ertp + drift
	if art < time.Millisecond {
		art = time.Millisecond
	}
	return art
}
