package job

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/smartgrid/aria/internal/resource"
)

func validReq() resource.Requirements {
	return resource.Requirements{
		Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 2, MinDiskGB: 2,
	}
}

func batchProfile(rng *rand.Rand) Profile {
	return Profile{
		UUID:  NewUUID(rng),
		Req:   validReq(),
		ERT:   2 * time.Hour,
		Class: ClassBatch,
	}
}

func TestUUIDProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[UUID]bool)
	for i := 0; i < 1000; i++ {
		u := NewUUID(rng)
		if !u.Valid() {
			t.Fatalf("generated invalid UUID %q", u)
		}
		if seen[u] {
			t.Fatalf("duplicate UUID %q after %d draws", u, i)
		}
		seen[u] = true
	}
}

func TestUUIDValidRejects(t *testing.T) {
	tests := []struct {
		give UUID
		want bool
	}{
		{"", false},
		{"abc", false},
		{"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", false},
		{"0123456789abcdef0123456789abcdef", true},
	}
	for _, tt := range tests {
		if got := tt.give.Valid(); got != tt.want {
			t.Errorf("UUID(%q).Valid() = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestUUIDShort(t *testing.T) {
	u := UUID("0123456789abcdef0123456789abcdef")
	if u.Short() != "01234567" {
		t.Fatalf("Short() = %q", u.Short())
	}
	if UUID("ab").Short() != "ab" {
		t.Fatal("Short() on tiny uuid should return it unchanged")
	}
}

func TestUUIDDeterminism(t *testing.T) {
	a := NewUUID(rand.New(rand.NewSource(9)))
	b := NewUUID(rand.New(rand.NewSource(9)))
	if a != b {
		t.Fatalf("same seed produced different UUIDs %q %q", a, b)
	}
}

func TestProfileValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := batchProfile(rng)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"bad uuid", func(p *Profile) { p.UUID = "nope" }},
		{"zero ert", func(p *Profile) { p.ERT = 0 }},
		{"bad class", func(p *Profile) { p.Class = 0 }},
		{"deadline class without deadline", func(p *Profile) { p.Class = ClassDeadline; p.Deadline = 0 }},
		{"batch with deadline", func(p *Profile) { p.Deadline = time.Hour }},
		{"bad requirements", func(p *Profile) { p.Req.MinMemoryGB = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bad := batchProfile(rng)
			tt.mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", bad)
			}
		})
	}
}

func TestERTOn(t *testing.T) {
	p := Profile{ERT: 2 * time.Hour}
	if got := p.ERTOn(2); got != time.Hour {
		t.Fatalf("ERTOn(2) = %v, want 1h", got)
	}
	if got := p.ERTOn(1); got != 2*time.Hour {
		t.Fatalf("ERTOn(1) = %v, want 2h", got)
	}
	if got := p.ERTOn(0); got != 2*time.Hour {
		t.Fatalf("ERTOn(0) = %v, want fallback to ERT", got)
	}
}

func TestJobLifecycleAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := batchProfile(rng)
	p.SubmittedAt = 10 * time.Minute
	j := New(p)
	if j.State != StateSubmitted {
		t.Fatalf("new job state %v", j.State)
	}
	if j.WaitingTime() != 0 || j.ExecutionTime() != 0 || j.CompletionTime() != 0 {
		t.Fatal("incomplete job should report zero durations")
	}
	j.State = StateRunning
	j.StartedAt = 30 * time.Minute
	if j.WaitingTime() != 20*time.Minute {
		t.Fatalf("WaitingTime() = %v, want 20m", j.WaitingTime())
	}
	j.State = StateCompleted
	j.CompletedAt = 90 * time.Minute
	if j.ExecutionTime() != time.Hour {
		t.Fatalf("ExecutionTime() = %v, want 1h", j.ExecutionTime())
	}
	if j.CompletionTime() != 80*time.Minute {
		t.Fatalf("CompletionTime() = %v, want 80m", j.CompletionTime())
	}
}

func TestDeadlineAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := batchProfile(rng)
	p.Class = ClassDeadline
	p.Deadline = 2 * time.Hour
	j := New(p)
	j.State = StateCompleted
	j.StartedAt = 30 * time.Minute
	j.CompletedAt = 90 * time.Minute
	if j.MissedDeadline() {
		t.Fatal("job completed before deadline reported as missed")
	}
	if j.Lateness() != 30*time.Minute {
		t.Fatalf("Lateness() = %v, want 30m", j.Lateness())
	}
	j.CompletedAt = 3 * time.Hour
	if !j.MissedDeadline() {
		t.Fatal("late job not reported as missed")
	}
	if j.Lateness() != -time.Hour {
		t.Fatalf("Lateness() = %v, want -1h", j.Lateness())
	}
}

func TestARTModelValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    ARTModel
		wantErr bool
	}{
		{"default", DefaultARTModel(), false},
		{"precise", ARTModel{Mode: DriftNone}, false},
		{"optimistic", ARTModel{Mode: DriftOptimistic, Epsilon: 0.1}, false},
		{"negative epsilon", ARTModel{Mode: DriftSymmetric, Epsilon: -0.1}, true},
		{"huge epsilon", ARTModel{Mode: DriftSymmetric, Epsilon: 1.5}, true},
		{"bad mode", ARTModel{Mode: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestARTPrecise(t *testing.T) {
	m := ARTModel{Mode: DriftNone}
	rng := rand.New(rand.NewSource(5))
	if got := m.ART(2*time.Hour, 90*time.Minute, rng); got != 90*time.Minute {
		t.Fatalf("precise ART = %v, want exactly ERTp", got)
	}
}

func TestARTSymmetricBounds(t *testing.T) {
	m := ARTModel{Mode: DriftSymmetric, Epsilon: 0.25}
	rng := rand.New(rand.NewSource(6))
	ert := 2 * time.Hour
	ertp := 90 * time.Minute
	lo := ertp - time.Duration(0.25*float64(ert))
	hi := ertp + time.Duration(0.25*float64(ert))
	sawBelow, sawAbove := false, false
	for i := 0; i < 5000; i++ {
		art := m.ART(ert, ertp, rng)
		if art < lo || art > hi {
			t.Fatalf("ART %v outside [%v, %v]", art, lo, hi)
		}
		if art < ertp {
			sawBelow = true
		}
		if art > ertp {
			sawAbove = true
		}
	}
	if !sawBelow || !sawAbove {
		t.Fatal("symmetric drift never produced both signs")
	}
}

func TestARTOptimisticNeverBelowEstimate(t *testing.T) {
	m := ARTModel{Mode: DriftOptimistic, Epsilon: 0.1}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		if art := m.ART(2*time.Hour, 90*time.Minute, rng); art < 90*time.Minute {
			t.Fatalf("optimistic ART %v below estimate", art)
		}
	}
}

func TestARTClampPositive(t *testing.T) {
	m := ARTModel{Mode: DriftSymmetric, Epsilon: 1.0}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		if art := m.ART(time.Hour, time.Millisecond, rng); art <= 0 {
			t.Fatalf("ART %v not positive", art)
		}
	}
}

// Property: symmetric ART is always within ±ε·ERT of ERTp (modulo the
// positive clamp), for random inputs.
func TestPropertyARTWithinDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(ertMinutes, ertpMinutes uint16, epsPct uint8) bool {
		ert := time.Duration(int(ertMinutes)%480+60) * time.Minute
		ertp := time.Duration(int(ertpMinutes)%480+30) * time.Minute
		eps := float64(epsPct%101) / 100
		m := ARTModel{Mode: DriftSymmetric, Epsilon: eps}
		art := m.ART(ert, ertp, rng)
		maxDrift := time.Duration(eps * float64(ert))
		return art >= ertp-maxDrift-time.Millisecond && art <= ertp+maxDrift+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	tests := []struct {
		give fmt.Stringer
		want string
	}{
		{ClassBatch, "batch"},
		{ClassDeadline, "deadline"},
		{Class(9), "Class(9)"},
		{StateSubmitted, "submitted"},
		{StateQueued, "queued"},
		{StateRunning, "running"},
		{StateCompleted, "completed"},
		{StateFailed, "failed"},
		{State(9), "State(9)"},
		{DriftSymmetric, "symmetric"},
		{DriftOptimistic, "optimistic"},
		{DriftNone, "none"},
		{DriftMode(9), "DriftMode(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
