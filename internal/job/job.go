// Package job models grid jobs: identity, resource requirements, running
// time estimates, deadlines, and lifecycle state.
//
// A job travels across the grid as a Profile embedded in ARiA protocol
// messages; the executing node additionally tracks lifecycle timestamps on a
// Job. Times are virtual durations measured from the start of the scenario
// (or process, for live deployments).
package job

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"time"

	"github.com/smartgrid/aria/internal/resource"
)

// UUID identifies a job uniquely across the whole grid.
type UUID string

// NewUUID derives a 128-bit identifier from rng, rendered as 32 hex digits.
// Using the caller's source keeps simulations deterministic; live
// deployments should seed rng from crypto-grade entropy.
func NewUUID(rng *rand.Rand) UUID {
	var b [16]byte
	for i := 0; i < len(b); i += 4 {
		v := rng.Uint32()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
	}
	return UUID(hex.EncodeToString(b[:]))
}

// Valid reports whether u is a well-formed job identifier.
func (u UUID) Valid() bool {
	if len(u) != 32 {
		return false
	}
	_, err := hex.DecodeString(string(u))
	return err == nil
}

// Short returns an abbreviated form for logs.
func (u UUID) Short() string {
	if len(u) >= 8 {
		return string(u[:8])
	}
	return string(u)
}

// Class partitions jobs (and local schedulers) into batch and deadline
// domains; the paper assumes offers from the two domains are never mixed,
// since their cost functions are not comparable.
type Class int

// Job classes.
const (
	ClassBatch Class = iota + 1
	ClassDeadline
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassBatch:
		return "batch"
	case ClassDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile is the wire-visible description of a job: everything a remote
// node needs to decide whether it can host the job and at what cost.
type Profile struct {
	UUID UUID                  `json:"uuid"`
	Req  resource.Requirements `json:"req"`

	// ERT is the Estimated job Running Time on the grid-wide baseline
	// hardware; a node with performance index p expects to run the job in
	// ERT/p.
	ERT time.Duration `json:"ert"`

	Class Class `json:"class"`

	// Deadline is the absolute completion deadline for deadline-class
	// jobs; zero for batch jobs.
	Deadline time.Duration `json:"deadline,omitempty"`

	// SubmittedAt records when the job entered the grid, for accounting.
	SubmittedAt time.Duration `json:"submittedAt"`

	// Priority orders jobs under priority-based local policies (higher
	// runs first); ignored by the paper's evaluated policies.
	Priority int `json:"priority,omitempty"`

	// KnownART, when positive, pins the job's actual running time on
	// baseline hardware instead of drawing it from an ARTModel. It is a
	// simulation-harness field for replaying recorded workload traces
	// (SWF), where real runtimes are known; live deployments leave it
	// zero.
	KnownART time.Duration `json:"knownART,omitempty"`

	// EarliestStart is an advance reservation: the job may not begin
	// executing before this absolute time (zero = no reservation).
	// Advance reservation is on the paper's future-work policy list;
	// local schedulers honor it and may backfill around reserved jobs.
	EarliestStart time.Duration `json:"earliestStart,omitempty"`
}

// Validate reports the first structural problem with the profile.
func (p Profile) Validate() error {
	switch {
	case !p.UUID.Valid():
		return fmt.Errorf("invalid job UUID %q", p.UUID)
	case p.ERT <= 0:
		return fmt.Errorf("non-positive ERT %v", p.ERT)
	case p.Class != ClassBatch && p.Class != ClassDeadline:
		return fmt.Errorf("invalid class %d", int(p.Class))
	case p.Class == ClassDeadline && p.Deadline <= 0:
		return fmt.Errorf("deadline job without deadline")
	case p.Class == ClassBatch && p.Deadline != 0:
		return fmt.Errorf("batch job with deadline %v", p.Deadline)
	}
	return p.Req.Validate()
}

// ERTOn scales the baseline estimate to a node with performance index p.
func (p Profile) ERTOn(perfIndex float64) time.Duration {
	if perfIndex <= 0 {
		return p.ERT
	}
	return time.Duration(float64(p.ERT) / perfIndex)
}

// State tracks a job through its grid lifecycle.
type State int

// Lifecycle states, in rough chronological order.
const (
	StateSubmitted State = iota + 1 // accepted by an initiator, discovery running
	StateQueued                     // sitting in an assignee's scheduling queue
	StateRunning                    // executing; no longer eligible for rescheduling
	StateCompleted                  // finished execution
	StateFailed                     // abandoned (no candidate found, or assignee lost)
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateSubmitted:
		return "submitted"
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Job is the runtime record a node keeps for a job in its care.
type Job struct {
	Profile

	State State

	// EnqueuedAt is when the current assignee queued the job (reset on
	// reassignment).
	EnqueuedAt time.Duration

	// StartedAt and CompletedAt bracket execution; zero until reached.
	StartedAt   time.Duration
	CompletedAt time.Duration

	// Reassignments counts how many times the job moved between
	// assignees after the initial assignment.
	Reassignments int
}

// New wraps a profile in a runtime record in the submitted state.
func New(p Profile) *Job {
	return &Job{Profile: p, State: StateSubmitted}
}

// WaitingTime is the interval between grid submission and execution start;
// it is only meaningful once the job has started.
func (j *Job) WaitingTime() time.Duration {
	if j.StartedAt == 0 && j.State != StateRunning && j.State != StateCompleted {
		return 0
	}
	return j.StartedAt - j.SubmittedAt
}

// ExecutionTime is the measured run length; zero until completion.
func (j *Job) ExecutionTime() time.Duration {
	if j.State != StateCompleted {
		return 0
	}
	return j.CompletedAt - j.StartedAt
}

// CompletionTime is the full submission-to-completion latency; zero until
// completion.
func (j *Job) CompletionTime() time.Duration {
	if j.State != StateCompleted {
		return 0
	}
	return j.CompletedAt - j.SubmittedAt
}

// Lateness is deadline minus completion: positive when the job met its
// deadline with room to spare, negative when it missed. Only meaningful for
// completed deadline-class jobs.
func (j *Job) Lateness() time.Duration {
	return j.Deadline - j.CompletedAt
}

// MissedDeadline reports whether a completed deadline-class job finished
// past its deadline.
func (j *Job) MissedDeadline() bool {
	return j.Class == ClassDeadline && j.State == StateCompleted && j.CompletedAt > j.Deadline
}
