package metrics

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/stats"
)

// Result condenses one simulation run into the quantities the paper's
// figures report.
type Result struct {
	Scenario string
	Seed     int64
	Nodes    int
	Horizon  time.Duration
	BinWidth time.Duration

	Submitted   int
	Completed   int
	Failed      int
	Assignments int
	Reschedules int

	// DuplicateStarts counts extra executions of the same job (multi-
	// assign copies racing onto idle nodes, or a failsafe resubmission
	// racing a slow-but-alive assignee). Zero under plain ARiA.
	DuplicateStarts int

	AvgWaiting    time.Duration
	AvgExecution  time.Duration
	AvgCompletion time.Duration

	// Completion-time distribution beyond the mean (the paper reports
	// means; tails matter for QoS).
	CompletionP50 time.Duration
	CompletionP95 time.Duration
	CompletionP99 time.Duration
	CompletionMax time.Duration

	DeadlineJobs    int
	MissedDeadlines int
	// AvgLateness is the mean slack (deadline − completion) over jobs
	// that met their deadline.
	AvgLateness time.Duration
	// AvgMissedTime is the mean overrun (completion − deadline) over jobs
	// that missed.
	AvgMissedTime time.Duration

	// CompletedSeries holds cumulative completed-job counts at each bin
	// edge (index i ⇒ time i×BinWidth).
	CompletedSeries []int

	// IdleSeries is the sampled idle-node series.
	IdleSeries []IdleSample

	Traffic      map[core.MsgType]Traffic
	TotalBytes   int64
	BytesPerNode float64
	// BandwidthBPS is the average per-node bandwidth in bits per second
	// over the horizon.
	BandwidthBPS float64

	// LoadJainIndex is Jain's fairness index of per-node busy time
	// (execution seconds) across all nodes: 1 means perfectly even
	// load, 1/n means one node did everything. A quantitative companion
	// to the paper's idle-node load-balancing figures.
	LoadJainIndex float64

	// Faults accounts for the network abuse injected by the fault plane
	// and the delivery hardening that absorbed it. All zero on runs
	// without fault injection.
	Faults FaultCounters

	// Membership accounts for the liveness detector and overlay repair.
	// All zero on runs without the membership plane.
	Membership MembershipCounters

	// SubmissionsLost counts workload submissions dropped because churn
	// left no living initiator to accept them; these jobs never entered
	// the protocol and are excluded from Submitted.
	SubmissionsLost int

	// Recovery accounts for crash restarts and journal replay. All zero
	// on runs without Churn.Restart.
	Recovery RecoveryCounters

	// Directory accounts for the gossip-fed resource directory and the
	// directed-versus-flood discovery split. All zero on runs without
	// directed discovery.
	Directory DirectoryCounters

	// Overload accounts for the overload-control plane: BUSY shedding,
	// shed re-dispatches, and admission-control rejections. All zero on
	// runs without queue bounds.
	Overload OverloadCounters

	// SharedState accounts for the optimistic-commit scheduler arm:
	// commits, typed conflicts, and flood fallbacks. All zero on runs
	// without the shared-state plane.
	SharedState SharedStateCounters

	// MsgsPerJob is per-message-type transmissions divided by completed
	// jobs, making Traffic comparable across scenarios of different job
	// counts; nil when no job completed.
	MsgsPerJob map[core.MsgType]float64

	// Spans counts trace-plane events per kind; nil unless the run was
	// traced (scenario.Config.Trace).
	Spans map[core.SpanKind]int
}

// SpanTotal sums the per-kind trace event counts.
func (r *Result) SpanTotal() int {
	total := 0
	for _, c := range r.Spans {
		total += c
	}
	return total
}

// FaultCounters summarizes injected link faults and handshake recoveries.
type FaultCounters struct {
	// Dropped is the number of transmissions the fault plane lost,
	// including PartitionDropped cuts.
	Dropped int
	// PartitionDropped counts losses due to timed network partitions.
	PartitionDropped int
	// Duplicated counts transmissions delivered more than once.
	Duplicated int
	// Retried counts ASSIGN retransmissions by the acknowledgement
	// handshake.
	Retried int
	// Recovered counts assignments saved after loss: acknowledged on a
	// retransmission, or re-homed by the fallback path.
	Recovered int
}

// Any reports whether any fault or recovery was recorded.
func (f FaultCounters) Any() bool {
	return f.Dropped != 0 || f.Duplicated != 0 || f.Retried != 0 || f.Recovered != 0
}

// MembershipCounters summarizes the liveness detector's verdicts and the
// overlay repairs and flood escalations they triggered.
type MembershipCounters struct {
	// Suspected counts alive → suspect transitions; Refuted counts
	// suspicions lifted by a timely PING/PONG.
	Suspected int
	Refuted   int
	// Dead counts terminal dead verdicts (one per node-neighbor pair).
	Dead int
	// Repaired counts neighbor-of-neighbor reconnections after dead-link
	// pruning.
	Repaired int
	// ReFloods counts zero-offer REQUEST rounds re-flooded with an
	// escalated TTL.
	ReFloods int
}

// Any reports whether any membership event was recorded.
func (m MembershipCounters) Any() bool {
	return m.Suspected != 0 || m.Refuted != 0 || m.Dead != 0 || m.Repaired != 0 || m.ReFloods != 0
}

// RecoveryCounters summarizes the fail-recover plane: crash restarts and
// what journal replay brought back.
type RecoveryCounters struct {
	// Restarts counts nodes brought back after a crash (journaled or
	// amnesiac — the harness counts both so the variants compare fairly).
	Restarts int
	// JobsRecovered counts job-state entries rebuilt from journals:
	// re-enqueued jobs, re-armed watchdogs, re-opened ASSIGN handshakes.
	JobsRecovered int
	// ReplayRecords counts journal records folded during recoveries.
	ReplayRecords int
	// MaxSnapshotAge is the worst snapshot lag seen at a recovery (how
	// much journal tail a crash forced a node to replay).
	MaxSnapshotAge time.Duration
}

// Any reports whether any restart or recovery was recorded.
func (c RecoveryCounters) Any() bool {
	return c.Restarts != 0 || c.JobsRecovered != 0 || c.ReplayRecords != 0
}

// DirectoryCounters summarizes the directed-discovery plane: how often the
// gossip-fed cache steered discovery, how often it had nothing, and how the
// flood fallback backstopped starved rounds.
type DirectoryCounters struct {
	// Hits counts discovery rounds that went directed; Probes the total
	// TTL-0 targeted REQUESTs those rounds sent (each one message on the
	// wire, versus a flood's cascade).
	Hits   int
	Probes int
	// Misses counts rounds that found no cached satisfying candidate and
	// flooded directly.
	Misses int
	// Fallbacks counts directed rounds that starved (fewer than
	// MinDirectedOffers ACCEPTs) and escalated to the flood.
	Fallbacks int
	// Evictions counts cache evictions by reason (the directory.Evict*
	// constants: capacity, stale, suspect, dead, unreachable).
	Evictions map[string]int
}

// Any reports whether any directory activity was recorded.
func (d DirectoryCounters) Any() bool {
	return d.Hits != 0 || d.Misses != 0 || d.Fallbacks != 0 || d.Probes != 0 || len(d.Evictions) != 0
}

// EvictionTotal sums evictions across reasons.
func (d DirectoryCounters) EvictionTotal() int {
	total := 0
	for _, c := range d.Evictions {
		total += c
	}
	return total
}

// OverloadCounters summarizes the overload-control plane: provider-side
// BUSY shedding, the sender-side re-dispatches that re-homed shed work, and
// admission-control pushback at the front door.
type OverloadCounters struct {
	// RequestsShed counts matching REQUESTs a saturated provider declined
	// to offer on (advisory BUSY); AssignsShed counts incoming ASSIGNs
	// refused with a shed BUSY.
	RequestsShed int
	AssignsShed  int
	// Reflooded and Reenqueued split shed re-dispatches by path: a fresh
	// REQUEST flood at the initiator versus a local re-enqueue at a
	// rescheduling assignee. Their sum matching AssignsShed (less losses)
	// is the shed-ASSIGN invariant in counter form.
	Reflooded  int
	Reenqueued int
	// PeersBusy counts BUSY replies received (directory demotions).
	PeersBusy int
	// SubmitRejections counts Submit calls bounced by admission control;
	// SubmissionsShed counts workload submissions rejected at every
	// redrawn portal (never entered the protocol, excluded from
	// Submitted).
	SubmitRejections int
	SubmissionsShed  int
}

// Any reports whether any overload-control event was recorded.
func (o OverloadCounters) Any() bool {
	return o.RequestsShed != 0 || o.AssignsShed != 0 || o.Reflooded != 0 ||
		o.Reenqueued != 0 || o.PeersBusy != 0 || o.SubmitRejections != 0 || o.SubmissionsShed != 0
}

// SharedStateCounters summarizes the shared-state optimistic scheduler
// arm: how often initiators committed against the cached view, how those
// commits resolved, and how often the view was abandoned for the flood.
type SharedStateCounters struct {
	// Commits counts COMMIT messages sent; Granted counts the ones a
	// provider accepted. GrantAttempts sums the per-round attempt counts
	// over granted rounds (GrantAttempts/Granted is the mean commits a
	// successful placement took).
	Commits       int
	Granted       int
	GrantAttempts int
	// Conflicts counts failed commit attempts by reason: the ConflictKind
	// strings (busy, stale, lost) plus "timeout" for silent providers.
	Conflicts map[string]int
	// Fallbacks counts rounds that exhausted K failed commits (or ran out
	// of viewed candidates) and escalated to the classic flood.
	Fallbacks int
}

// Any reports whether any shared-state activity was recorded.
func (s SharedStateCounters) Any() bool {
	return s.Commits != 0 || s.Granted != 0 || s.Fallbacks != 0 || len(s.Conflicts) != 0
}

// ConflictTotal sums failed commit attempts across reasons.
func (s SharedStateCounters) ConflictTotal() int {
	total := 0
	for _, c := range s.Conflicts {
		total += c
	}
	return total
}

// ConflictRate is failed commit attempts per COMMIT sent (0 when none were).
func (s SharedStateCounters) ConflictRate() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.ConflictTotal()) / float64(s.Commits)
}

// IdleSeriesInts extracts the idle counts from the sampled idle series.
func (r *Result) IdleSeriesInts() []int {
	out := make([]int, len(r.IdleSeries))
	for i, s := range r.IdleSeries {
		out[i] = s.Idle
	}
	return out
}

// Result snapshots the recorder into a Result. horizon and binWidth shape
// the completed-jobs series; nodes scales the traffic averages.
func (r *Recorder) Result(scenario string, seed int64, nodes int, horizon, binWidth time.Duration) *Result {
	r.mu.Lock()
	defer r.mu.Unlock()

	res := &Result{
		Scenario:    scenario,
		Seed:        seed,
		Nodes:       nodes,
		Horizon:     horizon,
		BinWidth:    binWidth,
		Submitted:   len(r.submitted),
		Completed:   len(r.outcomes),
		Failed:      r.failed,
		Assignments: r.assignments,
		Reschedules: r.reschedules,
		Traffic:     make(map[core.MsgType]Traffic, len(r.traffic)),
	}
	for _, count := range r.starts {
		if count > 1 {
			res.DuplicateStarts += count - 1
		}
	}
	res.Faults = FaultCounters{
		Dropped:          r.linkFaults.Lost(),
		PartitionDropped: r.linkFaults.PartitionDropped,
		Duplicated:       r.linkFaults.Duplicated,
		Retried:          r.assignRetries,
		Recovered:        r.assignRecoveries,
	}
	res.Membership = MembershipCounters{
		Suspected: r.peersSuspected,
		Refuted:   r.peersRefuted,
		Dead:      r.peersDead,
		Repaired:  r.linksRepaired,
		ReFloods:  r.floodsEscalated,
	}
	res.SubmissionsLost = r.submissionsLost
	res.Directory = DirectoryCounters{
		Hits:      r.dirHits,
		Probes:    r.dirProbes,
		Misses:    r.dirMisses,
		Fallbacks: r.dirFallbacks,
	}
	if len(r.dirEvictions) > 0 {
		res.Directory.Evictions = make(map[string]int, len(r.dirEvictions))
		for reason, c := range r.dirEvictions {
			res.Directory.Evictions[reason] = c
		}
	}
	res.Overload = OverloadCounters{
		RequestsShed:     r.requestsShed,
		AssignsShed:      r.assignsShed,
		Reflooded:        r.shedsReflooded,
		Reenqueued:       r.shedsReenqueued,
		PeersBusy:        r.peersBusy,
		SubmitRejections: r.submitRejects,
		SubmissionsShed:  r.submissionsShed,
	}
	res.SharedState = SharedStateCounters{
		Commits:       r.commitsSent,
		Granted:       r.commitsGranted,
		GrantAttempts: r.commitGrantAttempts,
		Fallbacks:     r.commitFallbacks,
	}
	if len(r.commitConflicts) > 0 {
		res.SharedState.Conflicts = make(map[string]int, len(r.commitConflicts))
		for reason, c := range r.commitConflicts {
			res.SharedState.Conflicts[reason] = c
		}
	}
	res.Recovery = RecoveryCounters{
		Restarts:       r.restarts,
		JobsRecovered:  r.jobsRecovered,
		ReplayRecords:  r.replayRecords,
		MaxSnapshotAge: r.maxSnapshotAge,
	}
	if len(r.spans) > 0 {
		res.Spans = make(map[core.SpanKind]int, len(r.spans))
		for k, c := range r.spans {
			res.Spans[k] = c
		}
	}

	var waits, execs, comps []time.Duration
	var lateness, missedTime []time.Duration
	for _, o := range r.outcomes {
		waits = append(waits, o.Waiting)
		execs = append(execs, o.Execution)
		comps = append(comps, o.Completion)
		if o.Class == job.ClassDeadline {
			res.DeadlineJobs++
			if o.MissedDeadline() {
				res.MissedDeadlines++
				missedTime = append(missedTime, o.CompletedAt-o.Deadline)
			} else {
				lateness = append(lateness, o.Deadline-o.CompletedAt)
			}
		}
	}
	res.AvgWaiting = stats.MeanDuration(waits)
	res.AvgExecution = stats.MeanDuration(execs)
	res.AvgCompletion = stats.MeanDuration(comps)
	res.AvgLateness = stats.MeanDuration(lateness)
	res.AvgMissedTime = stats.MeanDuration(missedTime)
	if len(comps) > 0 {
		compSecs := stats.DurationsToSeconds(comps)
		res.CompletionP50 = stats.SecondsToDuration(stats.Percentile(compSecs, 50))
		res.CompletionP95 = stats.SecondsToDuration(stats.Percentile(compSecs, 95))
		res.CompletionP99 = stats.SecondsToDuration(stats.Percentile(compSecs, 99))
		res.CompletionMax = stats.SecondsToDuration(stats.Max(compSecs))
	}

	if binWidth > 0 && horizon > 0 {
		bins := int(horizon/binWidth) + 1
		counts := make([]int, bins)
		for _, o := range r.outcomes {
			idx := int(o.CompletedAt / binWidth)
			if idx < 0 {
				idx = 0
			}
			if idx >= bins {
				idx = bins - 1
			}
			counts[idx]++
		}
		series := make([]int, bins)
		running := 0
		for i, c := range counts {
			running += c
			series[i] = running
		}
		res.CompletedSeries = series
	}

	res.IdleSeries = append([]IdleSample(nil), r.idle...)

	for typ := range r.traffic {
		t := r.traffic[typ]
		if t.Count == 0 {
			continue
		}
		res.Traffic[core.MsgType(typ)] = t
		res.TotalBytes += t.Bytes
	}
	if res.Completed > 0 {
		res.MsgsPerJob = make(map[core.MsgType]float64, len(res.Traffic))
		for typ, t := range res.Traffic {
			res.MsgsPerJob[typ] = float64(t.Count) / float64(res.Completed)
		}
	}
	if nodes > 0 {
		res.BytesPerNode = float64(res.TotalBytes) / float64(nodes)
		if horizon > 0 {
			res.BandwidthBPS = res.BytesPerNode * 8 / horizon.Seconds()
		}
	}

	if nodes > 0 && len(r.outcomes) > 0 {
		// Accumulate per node in completion order, then sum in sorted node
		// order: float addition is not associative, so map-iteration order
		// would make same-seed runs diverge in the last bits.
		busy := make(map[overlay.NodeID]float64)
		for _, uuid := range r.order {
			o := r.outcomes[uuid]
			busy[o.Node] += o.Execution.Seconds()
		}
		ids := make([]overlay.NodeID, 0, len(busy))
		for id := range busy {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
		var sum, sumSq float64
		for _, id := range ids {
			b := busy[id]
			sum += b
			sumSq += b * b
		}
		if sumSq > 0 {
			res.LoadJainIndex = sum * sum / (float64(nodes) * sumSq)
		}
	}
	return res
}

// ParallelRuns executes run(0..runs-1) on up to GOMAXPROCS workers and
// returns the results in run order. Each repetition must be fully
// independent (its own engine and random state), which every runner in
// this repository guarantees.
func ParallelRuns(runs int, run func(int) (*Result, error)) ([]*Result, error) {
	if runs < 1 {
		return nil, fmt.Errorf("runs %d must be positive", runs)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	var (
		results = make([]*Result, runs)
		errs    = make([]error, runs)
		next    atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= runs {
					return
				}
				results[i], errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Aggregate summarizes the same scenario across repeated runs.
type Aggregate struct {
	Scenario string
	Runs     int

	Completed       stats.Summary
	Failed          stats.Summary
	Reschedules     stats.Summary
	AvgWaitingSec   stats.Summary
	AvgExecutionSec stats.Summary
	// AvgCompletionSec summarizes per-run mean completion times, seconds.
	AvgCompletionSec stats.Summary
	MissedDeadlines  stats.Summary
	AvgLatenessSec   stats.Summary
	AvgMissedSec     stats.Summary
	TotalBytes       stats.Summary
	BytesPerNode     stats.Summary
	BandwidthBPS     stats.Summary
	LoadJainIndex    stats.Summary
	DuplicateStarts  stats.Summary

	// Fault plane and delivery hardening summaries (zero without faults).
	FaultsDropped    stats.Summary
	FaultsDuplicated stats.Summary
	AssignRetries    stats.Summary
	AssignRecoveries stats.Summary

	// Membership plane summaries (zero without the liveness detector).
	PeersSuspected  stats.Summary
	PeersDead       stats.Summary
	LinksRepaired   stats.Summary
	ReFloods        stats.Summary
	SubmissionsLost stats.Summary

	// Recovery plane summaries (zero without Churn.Restart).
	Restarts      stats.Summary
	JobsRecovered stats.Summary
	ReplayRecords stats.Summary

	// Directory plane summaries (zero without directed discovery).
	DirectoryHits      stats.Summary
	DirectoryMisses    stats.Summary
	DirectoryFallbacks stats.Summary
	DirectedProbes     stats.Summary
	DirectoryEvictions stats.Summary

	// Overload plane summaries (zero without queue bounds).
	RequestsShed     stats.Summary
	AssignsShed      stats.Summary
	ShedRedispatches stats.Summary
	SubmitRejections stats.Summary
	SubmissionsShed  stats.Summary
	CompletionP99Sec stats.Summary

	// Shared-state plane summaries (zero without the optimistic-commit arm).
	CommitsSent     stats.Summary
	CommitsGranted  stats.Summary
	CommitConflicts stats.Summary
	CommitFallbacks stats.Summary
	// ConflictRate summarizes per-run failed commits per COMMIT sent.
	ConflictRate stats.Summary

	// TrafficBytes summarizes per-type byte counts across runs.
	TrafficBytes map[core.MsgType]stats.Summary

	// TrafficMsgsPerJob summarizes per-type transmissions per completed
	// job across runs (the job-count-normalized view of TrafficBytes).
	TrafficMsgsPerJob map[core.MsgType]stats.Summary

	// CompletedSeries and IdleSeries are pointwise means across runs.
	CompletedSeries []float64
	IdleSeries      []float64

	// BinWidth is carried over from the underlying results.
	BinWidth time.Duration
}

// NewAggregate combines per-run results (all from the same scenario).
// It returns nil when results is empty.
func NewAggregate(results []*Result) *Aggregate {
	if len(results) == 0 {
		return nil
	}
	agg := &Aggregate{
		Scenario:          results[0].Scenario,
		Runs:              len(results),
		BinWidth:          results[0].BinWidth,
		TrafficBytes:      make(map[core.MsgType]stats.Summary),
		TrafficMsgsPerJob: make(map[core.MsgType]stats.Summary),
	}
	collect := func(f func(*Result) float64) stats.Summary {
		xs := make([]float64, len(results))
		for i, r := range results {
			xs[i] = f(r)
		}
		return stats.Summarize(xs)
	}
	agg.Completed = collect(func(r *Result) float64 { return float64(r.Completed) })
	agg.Failed = collect(func(r *Result) float64 { return float64(r.Failed) })
	agg.Reschedules = collect(func(r *Result) float64 { return float64(r.Reschedules) })
	agg.AvgWaitingSec = collect(func(r *Result) float64 { return r.AvgWaiting.Seconds() })
	agg.AvgExecutionSec = collect(func(r *Result) float64 { return r.AvgExecution.Seconds() })
	agg.AvgCompletionSec = collect(func(r *Result) float64 { return r.AvgCompletion.Seconds() })
	agg.MissedDeadlines = collect(func(r *Result) float64 { return float64(r.MissedDeadlines) })
	agg.AvgLatenessSec = collect(func(r *Result) float64 { return r.AvgLateness.Seconds() })
	agg.AvgMissedSec = collect(func(r *Result) float64 { return r.AvgMissedTime.Seconds() })
	agg.TotalBytes = collect(func(r *Result) float64 { return float64(r.TotalBytes) })
	agg.BytesPerNode = collect(func(r *Result) float64 { return r.BytesPerNode })
	agg.BandwidthBPS = collect(func(r *Result) float64 { return r.BandwidthBPS })
	agg.LoadJainIndex = collect(func(r *Result) float64 { return r.LoadJainIndex })
	agg.DuplicateStarts = collect(func(r *Result) float64 { return float64(r.DuplicateStarts) })
	agg.FaultsDropped = collect(func(r *Result) float64 { return float64(r.Faults.Dropped) })
	agg.FaultsDuplicated = collect(func(r *Result) float64 { return float64(r.Faults.Duplicated) })
	agg.AssignRetries = collect(func(r *Result) float64 { return float64(r.Faults.Retried) })
	agg.AssignRecoveries = collect(func(r *Result) float64 { return float64(r.Faults.Recovered) })
	agg.PeersSuspected = collect(func(r *Result) float64 { return float64(r.Membership.Suspected) })
	agg.PeersDead = collect(func(r *Result) float64 { return float64(r.Membership.Dead) })
	agg.LinksRepaired = collect(func(r *Result) float64 { return float64(r.Membership.Repaired) })
	agg.ReFloods = collect(func(r *Result) float64 { return float64(r.Membership.ReFloods) })
	agg.SubmissionsLost = collect(func(r *Result) float64 { return float64(r.SubmissionsLost) })
	agg.Restarts = collect(func(r *Result) float64 { return float64(r.Recovery.Restarts) })
	agg.JobsRecovered = collect(func(r *Result) float64 { return float64(r.Recovery.JobsRecovered) })
	agg.ReplayRecords = collect(func(r *Result) float64 { return float64(r.Recovery.ReplayRecords) })
	agg.DirectoryHits = collect(func(r *Result) float64 { return float64(r.Directory.Hits) })
	agg.DirectoryMisses = collect(func(r *Result) float64 { return float64(r.Directory.Misses) })
	agg.DirectoryFallbacks = collect(func(r *Result) float64 { return float64(r.Directory.Fallbacks) })
	agg.DirectedProbes = collect(func(r *Result) float64 { return float64(r.Directory.Probes) })
	agg.DirectoryEvictions = collect(func(r *Result) float64 { return float64(r.Directory.EvictionTotal()) })
	agg.RequestsShed = collect(func(r *Result) float64 { return float64(r.Overload.RequestsShed) })
	agg.AssignsShed = collect(func(r *Result) float64 { return float64(r.Overload.AssignsShed) })
	agg.ShedRedispatches = collect(func(r *Result) float64 { return float64(r.Overload.Reflooded + r.Overload.Reenqueued) })
	agg.SubmitRejections = collect(func(r *Result) float64 { return float64(r.Overload.SubmitRejections) })
	agg.SubmissionsShed = collect(func(r *Result) float64 { return float64(r.Overload.SubmissionsShed) })
	agg.CompletionP99Sec = collect(func(r *Result) float64 { return r.CompletionP99.Seconds() })
	agg.CommitsSent = collect(func(r *Result) float64 { return float64(r.SharedState.Commits) })
	agg.CommitsGranted = collect(func(r *Result) float64 { return float64(r.SharedState.Granted) })
	agg.CommitConflicts = collect(func(r *Result) float64 { return float64(r.SharedState.ConflictTotal()) })
	agg.CommitFallbacks = collect(func(r *Result) float64 { return float64(r.SharedState.Fallbacks) })
	agg.ConflictRate = collect(func(r *Result) float64 { return r.SharedState.ConflictRate() })

	for _, typ := range []core.MsgType{core.MsgRequest, core.MsgAccept, core.MsgInform, core.MsgAssign, core.MsgNotify, core.MsgCancel, core.MsgAssignAck, core.MsgPing, core.MsgPong, core.MsgBusy, core.MsgCommit, core.MsgConflict} {
		xs := make([]float64, len(results))
		perJob := make([]float64, len(results))
		seen := false
		for i, r := range results {
			if t, ok := r.Traffic[typ]; ok {
				xs[i] = float64(t.Bytes)
				perJob[i] = r.MsgsPerJob[typ]
				seen = true
			}
		}
		if seen {
			agg.TrafficBytes[typ] = stats.Summarize(xs)
			agg.TrafficMsgsPerJob[typ] = stats.Summarize(perJob)
		}
	}

	completed := make([][]float64, len(results))
	idle := make([][]float64, len(results))
	for i, r := range results {
		cs := make([]float64, len(r.CompletedSeries))
		for k, v := range r.CompletedSeries {
			cs[k] = float64(v)
		}
		completed[i] = cs
		is := make([]float64, len(r.IdleSeries))
		for k, v := range r.IdleSeries {
			is[k] = float64(v.Idle)
		}
		idle[i] = is
	}
	agg.CompletedSeries = stats.MeanSeries(completed)
	agg.IdleSeries = stats.MeanSeries(idle)
	return agg
}
