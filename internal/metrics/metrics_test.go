package metrics

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

func completedJob(rng *rand.Rand, submitted, started, completed time.Duration) *job.Job {
	j := job.New(job.Profile{
		UUID: job.NewUUID(rng),
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:         time.Hour,
		Class:       job.ClassBatch,
		SubmittedAt: submitted,
	})
	j.State = job.StateCompleted
	j.StartedAt = started
	j.CompletedAt = completed
	return j
}

func deadlineOutcome(rng *rand.Rand, deadline, completed time.Duration) *job.Job {
	j := completedJob(rng, 0, time.Hour, completed)
	j.Class = job.ClassDeadline
	j.Deadline = deadline
	return j
}

func TestRecorderCompletionAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRecorder()
	j1 := completedJob(rng, 0, time.Hour, 2*time.Hour)           // wait 1h exec 1h comp 2h
	j2 := completedJob(rng, time.Hour, 4*time.Hour, 6*time.Hour) // wait 3h exec 2h comp 5h
	r.JobSubmitted(0, 1, j1.Profile)
	r.JobSubmitted(time.Hour, 2, j2.Profile)
	r.JobCompleted(2*time.Hour, 5, j1)
	r.JobCompleted(6*time.Hour, 6, j2)
	res := r.Result("test", 1, 10, 10*time.Hour, time.Hour)
	if res.Submitted != 2 || res.Completed != 2 {
		t.Fatalf("submitted/completed = %d/%d", res.Submitted, res.Completed)
	}
	if res.AvgWaiting != 2*time.Hour {
		t.Fatalf("AvgWaiting = %v, want 2h", res.AvgWaiting)
	}
	if res.AvgExecution != 90*time.Minute {
		t.Fatalf("AvgExecution = %v, want 1h30m", res.AvgExecution)
	}
	if res.AvgCompletion != 3*time.Hour+30*time.Minute {
		t.Fatalf("AvgCompletion = %v, want 3h30m", res.AvgCompletion)
	}
}

func TestRecorderCompletionIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewRecorder()
	j := completedJob(rng, 0, time.Hour, 2*time.Hour)
	r.JobCompleted(2*time.Hour, 1, j)
	dup := *j
	dup.CompletedAt = 9 * time.Hour
	r.JobCompleted(9*time.Hour, 2, &dup)
	res := r.Result("test", 1, 10, 10*time.Hour, time.Hour)
	if res.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (idempotent)", res.Completed)
	}
	if got := r.Outcomes()[0].CompletedAt; got != 2*time.Hour {
		t.Fatalf("first completion should win, got %v", got)
	}
}

func TestRecorderCompletedSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRecorder()
	r.JobCompleted(0, 1, completedJob(rng, 0, 0, 30*time.Minute))
	r.JobCompleted(0, 1, completedJob(rng, 0, 0, 90*time.Minute))
	r.JobCompleted(0, 1, completedJob(rng, 0, 0, 100*time.Minute))
	res := r.Result("test", 1, 10, 3*time.Hour, time.Hour)
	// Bins: [0,1h)→1, [1h,2h)→2 more, [2h,3h]→0. Cumulative: 1,3,3,3.
	want := []int{1, 3, 3, 3}
	if len(res.CompletedSeries) != len(want) {
		t.Fatalf("series len %d, want %d", len(res.CompletedSeries), len(want))
	}
	for i, w := range want {
		if res.CompletedSeries[i] != w {
			t.Fatalf("series = %v, want %v", res.CompletedSeries, want)
		}
	}
}

func TestRecorderDeadlineMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := NewRecorder()
	r.JobCompleted(0, 1, deadlineOutcome(rng, 5*time.Hour, 3*time.Hour)) // met, slack 2h
	r.JobCompleted(0, 1, deadlineOutcome(rng, 5*time.Hour, 4*time.Hour)) // met, slack 1h
	r.JobCompleted(0, 1, deadlineOutcome(rng, 2*time.Hour, 5*time.Hour)) // missed by 3h
	res := r.Result("test", 1, 10, 10*time.Hour, time.Hour)
	if res.DeadlineJobs != 3 || res.MissedDeadlines != 1 {
		t.Fatalf("deadline jobs/missed = %d/%d", res.DeadlineJobs, res.MissedDeadlines)
	}
	if res.AvgLateness != 90*time.Minute {
		t.Fatalf("AvgLateness = %v, want 1h30m", res.AvgLateness)
	}
	if res.AvgMissedTime != 3*time.Hour {
		t.Fatalf("AvgMissedTime = %v, want 3h", res.AvgMissedTime)
	}
}

func TestRecorderTraffic(t *testing.T) {
	r := NewRecorder()
	rng := rand.New(rand.NewSource(5))
	p := completedJob(rng, 0, 0, time.Hour).Profile
	r.OnMessage(0, 1, 2, &core.Message{Type: core.MsgRequest, Job: p})
	r.OnMessage(0, 1, 2, &core.Message{Type: core.MsgRequest, Job: p})
	r.OnMessage(0, 2, 1, &core.Message{Type: core.MsgAccept, Job: p})
	res := r.Result("test", 1, 4, time.Hour, time.Minute)
	if res.Traffic[core.MsgRequest].Count != 2 || res.Traffic[core.MsgRequest].Bytes != 2048 {
		t.Fatalf("request traffic %+v", res.Traffic[core.MsgRequest])
	}
	if res.Traffic[core.MsgAccept].Bytes != 128 {
		t.Fatalf("accept traffic %+v", res.Traffic[core.MsgAccept])
	}
	if res.TotalBytes != 2176 {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
	if res.BytesPerNode != 544 {
		t.Fatalf("BytesPerNode = %v", res.BytesPerNode)
	}
	wantBW := 544.0 * 8 / 3600
	if diff := res.BandwidthBPS - wantBW; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("BandwidthBPS = %v, want %v", res.BandwidthBPS, wantBW)
	}
}

func TestRecorderIdleAndFailures(t *testing.T) {
	r := NewRecorder()
	r.AddIdleSample(time.Minute, 9, 10)
	r.AddIdleSample(2*time.Minute, 8, 10)
	r.JobFailed(0, 1, job.UUID("x"), "no candidate")
	res := r.Result("test", 1, 10, time.Hour, time.Minute)
	if len(res.IdleSeries) != 2 || res.IdleSeries[1].Idle != 8 {
		t.Fatalf("idle series %+v", res.IdleSeries)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d", res.Failed)
	}
}

func TestRecorderReschedules(t *testing.T) {
	r := NewRecorder()
	r.JobAssigned(0, "a", 1, 2, 10, false)
	r.JobAssigned(0, "a", 2, 3, 5, true)
	r.JobAssigned(0, "a", 3, 4, 2, true)
	res := r.Result("test", 1, 10, time.Hour, time.Minute)
	if res.Assignments != 3 || res.Reschedules != 2 {
		t.Fatalf("assignments/reschedules = %d/%d", res.Assignments, res.Reschedules)
	}
}

func TestNewAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mk := func(completion time.Duration) *Result {
		r := NewRecorder()
		j := completedJob(rng, 0, 0, completion)
		r.JobSubmitted(0, 1, j.Profile)
		r.JobCompleted(completion, 1, j)
		r.AddIdleSample(time.Minute, 5, 10)
		r.OnMessage(0, 1, 2, &core.Message{Type: core.MsgInform, Job: j.Profile})
		return r.Result("agg", 1, 10, 4*time.Hour, time.Hour)
	}
	agg := NewAggregate([]*Result{mk(2 * time.Hour), mk(4 * time.Hour)})
	if agg == nil || agg.Runs != 2 {
		t.Fatalf("aggregate %+v", agg)
	}
	if agg.AvgCompletionSec.Mean != (3 * time.Hour).Seconds() {
		t.Fatalf("mean completion %v", agg.AvgCompletionSec.Mean)
	}
	if agg.Completed.Mean != 1 {
		t.Fatalf("mean completed %v", agg.Completed.Mean)
	}
	if len(agg.CompletedSeries) == 0 || len(agg.IdleSeries) == 0 {
		t.Fatal("aggregate series missing")
	}
	if _, ok := agg.TrafficBytes[core.MsgInform]; !ok {
		t.Fatal("aggregate traffic missing INFORM")
	}
	if NewAggregate(nil) != nil {
		t.Fatal("NewAggregate(nil) should be nil")
	}
}

func TestDuplicateStartsAccounting(t *testing.T) {
	r := NewRecorder()
	r.JobStarted(0, 1, "a")
	r.JobStarted(0, 2, "a") // duplicate copy
	r.JobStarted(0, 3, "a") // another duplicate
	r.JobStarted(0, 1, "b")
	res := r.Result("t", 1, 4, time.Hour, time.Minute)
	if res.DuplicateStarts != 2 {
		t.Fatalf("DuplicateStarts = %d, want 2", res.DuplicateStarts)
	}
}

func TestJainIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := NewRecorder()
	// Two nodes doing equal work out of 2 total nodes → J = 1.
	a := completedJob(rng, 0, 0, time.Hour)
	b := completedJob(rng, 0, 0, time.Hour)
	r.JobCompleted(0, 1, a)
	r.JobCompleted(0, 2, b)
	res := r.Result("t", 1, 2, time.Hour, time.Minute)
	if res.LoadJainIndex < 0.999 || res.LoadJainIndex > 1.001 {
		t.Fatalf("Jain = %v, want 1 for perfectly even load", res.LoadJainIndex)
	}
	// One node doing everything out of 4 → J = 1/4.
	r2 := NewRecorder()
	r2.JobCompleted(0, 1, completedJob(rng, 0, 0, time.Hour))
	r2.JobCompleted(0, 1, completedJob(rng, 0, 0, time.Hour))
	res2 := r2.Result("t", 1, 4, time.Hour, time.Minute)
	if res2.LoadJainIndex < 0.249 || res2.LoadJainIndex > 0.251 {
		t.Fatalf("Jain = %v, want 0.25 for one-of-four hot spot", res2.LoadJainIndex)
	}
}
