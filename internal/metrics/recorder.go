// Package metrics collects the evaluation measurements the paper reports:
// completed jobs over time, completion-time breakdowns, idle-node series,
// deadline performance, and per-message-type network traffic.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// Traffic accumulates transmissions of one message type.
type Traffic struct {
	Count int64
	Bytes int64
}

// IdleSample is one point of the idle-node time series.
type IdleSample struct {
	At    time.Duration
	Idle  int
	Nodes int
}

// JobOutcome is the final accounting record of one completed job.
type JobOutcome struct {
	UUID          job.UUID
	Class         job.Class
	Node          overlay.NodeID
	SubmittedAt   time.Duration
	StartedAt     time.Duration
	CompletedAt   time.Duration
	Deadline      time.Duration
	EarliestStart time.Duration
	Waiting       time.Duration
	Execution     time.Duration
	Completion    time.Duration
}

// MissedDeadline reports whether the job finished past its deadline.
func (o JobOutcome) MissedDeadline() bool {
	return o.Class == job.ClassDeadline && o.CompletedAt > o.Deadline
}

// Recorder implements core.Observer and accumulates a full run's events.
// It is safe for concurrent use so the same recorder works under live
// transports.
//
// Completions are idempotent per job UUID: should a failsafe resubmission
// ever race a surviving assignee, only the first completion counts.
type Recorder struct {
	mu          sync.Mutex
	submitted   map[job.UUID]time.Duration
	assignments int
	reschedules int
	starts      map[job.UUID]int
	outcomes    map[job.UUID]JobOutcome
	order       []job.UUID
	failed      int
	idle        []IdleSample

	// traffic is indexed by MsgType (types are small consecutive ints);
	// a fixed array keeps the per-message hot path free of map probes.
	traffic [int(core.MsgConflict) + 1]Traffic

	assignRetries    int
	assignRecoveries int
	linkFaults       faults.Stats

	// Membership plane counters (liveness detector + overlay repair).
	peersSuspected  int
	peersRefuted    int
	peersDead       int
	linksRepaired   int
	floodsEscalated int

	// submissionsLost counts workload submissions that found no living
	// initiator (churn killed the drawn nodes); they never entered the
	// protocol and are invisible to every other counter.
	submissionsLost int

	// Recovery plane counters (write-ahead journal + crash restart).
	restarts       int
	jobsRecovered  int
	replayRecords  int
	maxSnapshotAge time.Duration

	// Directory plane counters (gossip-fed cache + directed discovery).
	// Probes are counted at the initiator — on the wire a directed REQUEST
	// is indistinguishable from a flood copy, so the traffic split between
	// directed and flooded discovery is measured at the source.
	dirHits      int
	dirMisses    int
	dirFallbacks int
	dirProbes    int
	dirEvictions map[string]int

	// Overload plane counters (bounded queues + BUSY shedding + admission
	// control). submissionsShed counts workload submissions bounced by
	// admission control at every redrawn portal — like submissionsLost,
	// they never entered the protocol.
	requestsShed    int
	assignsShed     int
	shedsReflooded  int
	shedsReenqueued int
	peersBusy       int
	submitRejects   int
	submissionsShed int

	// Shared-state plane counters (optimistic commits + conflict retries).
	commitsSent         int
	commitConflicts     map[string]int
	commitsGranted      int
	commitGrantAttempts int
	commitFallbacks     int

	// Per-kind trace-plane counters; populated only when nodes run with a
	// trace observer (the recorder rides an eventlog.Tee next to a
	// trace.Collector).
	spans map[core.SpanKind]int
}

var (
	_ core.Observer            = (*Recorder)(nil)
	_ core.DeliveryObserver    = (*Recorder)(nil)
	_ core.TraceObserver       = (*Recorder)(nil)
	_ core.MembershipObserver  = (*Recorder)(nil)
	_ core.RecoveryObserver    = (*Recorder)(nil)
	_ core.DirectoryObserver   = (*Recorder)(nil)
	_ core.OverloadObserver    = (*Recorder)(nil)
	_ core.SharedStateObserver = (*Recorder)(nil)
)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		submitted: make(map[job.UUID]time.Duration),
		starts:    make(map[job.UUID]int),
		outcomes:  make(map[job.UUID]JobOutcome),
		spans:     make(map[core.SpanKind]int),

		dirEvictions:    make(map[string]int),
		commitConflicts: make(map[string]int),
	}
}

// JobSubmitted implements core.Observer.
func (r *Recorder) JobSubmitted(at time.Duration, _ overlay.NodeID, p job.Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.submitted[p.UUID]; !dup {
		r.submitted[p.UUID] = at
	}
}

// JobAssigned implements core.Observer.
func (r *Recorder) JobAssigned(_ time.Duration, _ job.UUID, _, _ overlay.NodeID, _ sched.Cost, rescheduled bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assignments++
	if rescheduled {
		r.reschedules++
	}
}

// JobStarted implements core.Observer.
func (r *Recorder) JobStarted(_ time.Duration, _ overlay.NodeID, uuid job.UUID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts[uuid]++
}

// JobCompleted implements core.Observer.
func (r *Recorder) JobCompleted(_ time.Duration, node overlay.NodeID, j *job.Job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.outcomes[j.UUID]; dup {
		return
	}
	r.outcomes[j.UUID] = JobOutcome{
		UUID:          j.UUID,
		Class:         j.Class,
		Node:          node,
		SubmittedAt:   j.SubmittedAt,
		StartedAt:     j.StartedAt,
		CompletedAt:   j.CompletedAt,
		Deadline:      j.Deadline,
		EarliestStart: j.EarliestStart,
		Waiting:       j.WaitingTime(),
		Execution:     j.ExecutionTime(),
		Completion:    j.CompletionTime(),
	}
	r.order = append(r.order, j.UUID)
}

// JobFailed implements core.Observer.
func (r *Recorder) JobFailed(time.Duration, overlay.NodeID, job.UUID, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failed++
}

// AssignRetried implements core.DeliveryObserver.
func (r *Recorder) AssignRetried(time.Duration, overlay.NodeID, job.UUID, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assignRetries++
}

// AssignRecovered implements core.DeliveryObserver.
func (r *Recorder) AssignRecovered(time.Duration, overlay.NodeID, job.UUID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assignRecoveries++
}

// TraceSpan implements core.TraceObserver, counting span events per kind.
// The full event stream is retained by a trace.Collector, not here.
func (r *Recorder) TraceSpan(ev core.TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans[ev.Kind]++
}

// PeerSuspected implements core.MembershipObserver.
func (r *Recorder) PeerSuspected(time.Duration, overlay.NodeID, overlay.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peersSuspected++
}

// PeerRefuted implements core.MembershipObserver.
func (r *Recorder) PeerRefuted(time.Duration, overlay.NodeID, overlay.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peersRefuted++
}

// PeerDead implements core.MembershipObserver.
func (r *Recorder) PeerDead(time.Duration, overlay.NodeID, overlay.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peersDead++
}

// LinkRepaired implements core.MembershipObserver.
func (r *Recorder) LinkRepaired(time.Duration, overlay.NodeID, overlay.NodeID, overlay.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.linksRepaired++
}

// FloodEscalated implements core.MembershipObserver.
func (r *Recorder) FloodEscalated(time.Duration, overlay.NodeID, job.UUID, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.floodsEscalated++
}

// NodeRestarted records one node coming back after a crash (whether or not
// it had a journal to recover from; the harness calls this, since an
// amnesiac restart is invisible to the protocol).
func (r *Recorder) NodeRestarted() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.restarts++
}

// NodeRecovered implements core.RecoveryObserver: one journaled node rebuilt
// its scheduler state after a restart.
func (r *Recorder) NodeRecovered(_ time.Duration, _ overlay.NodeID, jobsRecovered, replayRecords int, snapshotAge time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobsRecovered += jobsRecovered
	r.replayRecords += replayRecords
	if snapshotAge > r.maxSnapshotAge {
		r.maxSnapshotAge = snapshotAge
	}
}

// DirectoryHit implements core.DirectoryObserver: one discovery round went
// directed, sending probes targeted REQUESTs instead of a flood.
func (r *Recorder) DirectoryHit(_ time.Duration, _ overlay.NodeID, _ job.UUID, probes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dirHits++
	r.dirProbes += probes
}

// DirectoryMiss implements core.DirectoryObserver: the cache held no
// satisfying candidate and discovery flooded directly.
func (r *Recorder) DirectoryMiss(time.Duration, overlay.NodeID, job.UUID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dirMisses++
}

// DirectoryFallback implements core.DirectoryObserver: a directed round
// starved and escalated to the classic flood.
func (r *Recorder) DirectoryFallback(time.Duration, overlay.NodeID, job.UUID, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dirFallbacks++
}

// DirectoryEvicted implements core.DirectoryObserver, counting cache
// evictions by reason (capacity, stale, suspect, dead, unreachable).
func (r *Recorder) DirectoryEvicted(_ time.Duration, _, _ overlay.NodeID, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dirEvictions[reason]++
}

// RequestShed implements core.OverloadObserver: a saturated provider
// declined to offer on a matching REQUEST.
func (r *Recorder) RequestShed(time.Duration, overlay.NodeID, job.UUID, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requestsShed++
}

// AssignShed implements core.OverloadObserver: a saturated provider refused
// an incoming ASSIGN with a BUSY reply.
func (r *Recorder) AssignShed(time.Duration, overlay.NodeID, job.UUID, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assignsShed++
}

// ShedRedispatched implements core.OverloadObserver: the sender of a shed
// ASSIGN re-homed the job.
func (r *Recorder) ShedRedispatched(_ time.Duration, _ overlay.NodeID, _ job.UUID, reflooded bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reflooded {
		r.shedsReflooded++
	} else {
		r.shedsReenqueued++
	}
}

// PeerBusy implements core.OverloadObserver: a node learned a peer is
// saturated from a BUSY reply.
func (r *Recorder) PeerBusy(time.Duration, overlay.NodeID, overlay.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peersBusy++
}

// SubmitRejected implements core.OverloadObserver: admission control bounced
// a local Submit.
func (r *Recorder) SubmitRejected(time.Duration, overlay.NodeID, job.UUID, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submitRejects++
}

// CommitSent implements core.SharedStateObserver: an initiator committed a
// job optimistically against its cached cluster view.
func (r *Recorder) CommitSent(time.Duration, overlay.NodeID, job.UUID, overlay.NodeID, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commitsSent++
}

// CommitConflict implements core.SharedStateObserver, counting failed
// commit attempts by reason (busy, stale, lost, timeout).
func (r *Recorder) CommitConflict(_ time.Duration, _ overlay.NodeID, _ job.UUID, _ overlay.NodeID, reason string, _ int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commitConflicts[reason]++
}

// CommitGranted implements core.SharedStateObserver: a provider accepted
// the commit after the given number of attempts.
func (r *Recorder) CommitGranted(_ time.Duration, _ overlay.NodeID, _ job.UUID, _ overlay.NodeID, attempts int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commitsGranted++
	r.commitGrantAttempts += attempts
}

// CommitFallback implements core.SharedStateObserver: K failed commits
// exhausted the cached view and discovery escalated to the flood.
func (r *Recorder) CommitFallback(time.Duration, overlay.NodeID, job.UUID, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commitFallbacks++
}

// SubmissionShed records one workload submission that admission control
// bounced at every redrawn portal; like a lost submission it never entered
// the protocol.
func (r *Recorder) SubmissionShed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submissionsShed++
}

// SubmissionLost records one workload submission that found no living
// initiator and was dropped before entering the protocol.
func (r *Recorder) SubmissionLost() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submissionsLost++
}

// SetLinkFaults stores the fault plane's final transmission statistics so
// the run's result reports how much network abuse was absorbed.
func (r *Recorder) SetLinkFaults(st faults.Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.linkFaults = st
}

// OnMessage records one message transmission; wire it as the cluster's
// traffic hook.
func (r *Recorder) OnMessage(_ time.Duration, _, _ overlay.NodeID, m *core.Message) {
	if int(m.Type) >= len(r.traffic) || m.Type < 0 {
		return
	}
	// Atomic adds, not the recorder mutex: this is the per-message hot
	// path and the counters commute.
	t := &r.traffic[m.Type]
	atomic.AddInt64(&t.Count, 1)
	atomic.AddInt64(&t.Bytes, int64(m.WireSize()))
}

// AddIdleSample appends one idle-node sample.
func (r *Recorder) AddIdleSample(at time.Duration, idle, nodes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.idle = append(r.idle, IdleSample{At: at, Idle: idle, Nodes: nodes})
}

// Outcomes returns completed-job records in completion order — canonically
// by (completion time, UUID), not raw callback arrival order, which under a
// sharded kernel may interleave nondeterministically across shard workers
// within one epoch window.
func (r *Recorder) Outcomes() []JobOutcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobOutcome, 0, len(r.order))
	for _, uuid := range r.order {
		out = append(out, r.outcomes[uuid])
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].CompletedAt != out[k].CompletedAt {
			return out[i].CompletedAt < out[k].CompletedAt
		}
		return out[i].UUID < out[k].UUID
	})
	return out
}
