package swf_test

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/smartgrid/aria/internal/swf"
)

// Parse reads Standard Workload Format: header directives on ';' lines,
// then one job per line with 18 whitespace-separated fields.
func ExampleParse() {
	const trace = `; Version: 2.2
; MaxProcs: 64
1 0   10 3600 4 -1 -1 4 7200 -1 1 3 1 -1 1 1 -1 -1
2 120 -1 1800 1 -1 -1 1 3600 -1 1 5 1 -1 1 1 -1 -1
`
	t, err := swf.Parse(strings.NewReader(trace))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	fmt.Printf("jobs: %d, max procs: %d, span: %v\n", len(t.Jobs), t.MaxProcs(), t.Span())
	first := t.Jobs[0]
	fmt.Printf("job 1: submit %v, ran %v, requested %v\n", first.Submit, first.Run, first.ReqTime)
	// Output:
	// jobs: 2, max procs: 64, span: 2m0s
	// job 1: submit 0s, ran 1h0m0s, requested 2h0m0s
}

// Convert maps trace records to submittable ARiA jobs: the requested time
// becomes the estimate and the recorded runtime pins the actual execution
// length.
func ExampleConvert() {
	const trace = `; Version: 2.2
1 0 10 3600 4 -1 -1 4 7200 -1 1 3 1 -1 1 1 -1 -1
`
	t, _ := swf.Parse(strings.NewReader(trace))
	jobs, err := swf.Convert(t, rand.New(rand.NewSource(1)), swf.ConvertOptions{})
	if err != nil {
		fmt.Println("convert:", err)
		return
	}
	j := jobs[0]
	fmt.Printf("ert %v, recorded runtime %v, class %v\n", j.ERT, j.KnownART, j.Class)
	// Output:
	// ert 2h0m0s, recorded runtime 1h0m0s, class batch
}
