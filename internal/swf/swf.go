// Package swf reads workload traces in the Standard Workload Format used
// by the Parallel Workloads Archive and most grid workload collections.
// The paper's future work (§VI) calls for "full-scale evaluation with real
// grid workload traces"; this package replays such traces through the ARiA
// scenarios: submit instants and requested times come from the trace, the
// recorded actual runtime pins each job's execution length, and the fields
// grids do not record (architecture, OS) are synthesized from the paper's
// population distributions.
//
// Format reference: Feitelson et al., "Standard Workload Format", version
// 2.2 — one job per line, 18 whitespace-separated fields, comments and
// header directives prefixed with ';'.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Field indices of the 18 SWF columns (0-based).
const (
	fieldJobNumber = iota
	fieldSubmitTime
	fieldWaitTime
	fieldRunTime
	fieldAllocProcs
	fieldAvgCPUTime
	fieldUsedMemory
	fieldReqProcs
	fieldReqTime
	fieldReqMemory
	fieldStatus
	fieldUserID
	fieldGroupID
	fieldExecutable
	fieldQueue
	fieldPartition
	fieldPrecedingJob
	fieldThinkTime

	numFields
)

// Job is one SWF record. Durations are relative to the trace start; -1
// sentinel values from the format are mapped to zero/absent.
type Job struct {
	Number   int
	Submit   time.Duration
	Wait     time.Duration
	Run      time.Duration
	Procs    int
	ReqProcs int
	ReqTime  time.Duration
	ReqMemKB int64
	Status   int
	UserID   int
	QueueID  int
}

// Completed reports whether the job ran to completion (status 1) or the
// trace did not record a status (-1, common in grid traces).
func (j Job) Completed() bool {
	return j.Status == 1 || j.Status == -1
}

// Trace is a parsed SWF file.
type Trace struct {
	// Header holds the ';'-prefixed header directives (key → value).
	Header map[string]string

	// Jobs holds the records in file order.
	Jobs []Job
}

// MaxProcs returns the MaxProcs header value, or 0 when absent.
func (t *Trace) MaxProcs() int {
	v, err := strconv.Atoi(strings.TrimSpace(t.Header["MaxProcs"]))
	if err != nil {
		return 0
	}
	return v
}

// Span is the interval between the first and last submission.
func (t *Trace) Span() time.Duration {
	if len(t.Jobs) == 0 {
		return 0
	}
	first, last := t.Jobs[0].Submit, t.Jobs[0].Submit
	for _, j := range t.Jobs[1:] {
		if j.Submit < first {
			first = j.Submit
		}
		if j.Submit > last {
			last = j.Submit
		}
	}
	return last - first
}

// Parse reads an SWF stream. Malformed lines abort with a line-numbered
// error; unknown header directives are preserved verbatim.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{Header: make(map[string]string)}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, ";"):
			parseHeader(t.Header, line)
			continue
		}
		j, err := parseJob(line)
		if err != nil {
			return nil, fmt.Errorf("swf line %d: %w", lineNo, err)
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("swf read: %w", err)
	}
	if len(t.Jobs) == 0 {
		return nil, fmt.Errorf("swf contains no job records")
	}
	return t, nil
}

func parseHeader(header map[string]string, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	if i := strings.Index(body, ":"); i > 0 {
		key := strings.TrimSpace(body[:i])
		header[key] = strings.TrimSpace(body[i+1:])
	}
}

func parseJob(line string) (Job, error) {
	fields := strings.Fields(line)
	if len(fields) < numFields {
		return Job{}, fmt.Errorf("%d fields, want %d", len(fields), numFields)
	}
	get := func(i int) (int64, error) {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("field %d %q: %w", i+1, fields[i], err)
		}
		return v, nil
	}
	var (
		j    Job
		err  error
		read = func(i int) int64 {
			if err != nil {
				return 0
			}
			var v int64
			v, err = get(i)
			return v
		}
	)
	num := read(fieldJobNumber)
	submit := read(fieldSubmitTime)
	wait := read(fieldWaitTime)
	run := read(fieldRunTime)
	procs := read(fieldAllocProcs)
	reqProcs := read(fieldReqProcs)
	reqTime := read(fieldReqTime)
	reqMem := read(fieldReqMemory)
	status := read(fieldStatus)
	user := read(fieldUserID)
	queue := read(fieldQueue)
	if err != nil {
		return Job{}, err
	}
	if submit < 0 {
		return Job{}, fmt.Errorf("negative submit time %d", submit)
	}
	j = Job{
		Number:   int(num),
		Submit:   time.Duration(submit) * time.Second,
		Wait:     clampSeconds(wait),
		Run:      clampSeconds(run),
		Procs:    clampInt(procs),
		ReqProcs: clampInt(reqProcs),
		ReqTime:  clampSeconds(reqTime),
		ReqMemKB: clampI64(reqMem),
		Status:   int(status),
		UserID:   clampInt(user),
		QueueID:  clampInt(queue),
	}
	return j, nil
}

func clampSeconds(v int64) time.Duration {
	if v < 0 {
		return 0
	}
	return time.Duration(v) * time.Second
}

func clampInt(v int64) int {
	if v < 0 {
		return 0
	}
	return int(v)
}

func clampI64(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}
