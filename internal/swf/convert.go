package swf

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

// ConvertOptions tune the mapping from SWF records to ARiA job profiles.
type ConvertOptions struct {
	// MaxJobs truncates the trace (0 = all jobs).
	MaxJobs int

	// TimeScale compresses (<1) or stretches (>1) submit instants; 0
	// means 1. Recorded runtimes are scaled identically so the load
	// level is preserved.
	TimeScale float64

	// SkipIncomplete drops jobs whose recorded status marks them
	// cancelled or failed.
	SkipIncomplete bool

	// Hosts, when non-empty, restricts synthesized requirements to ones
	// at least one host satisfies (mirrors the scenario generator).
	Hosts []resource.Profile

	// Deadline, when set, makes every job deadline-class with the given
	// mean slack past its expected completion (drawn like the scenario
	// generator's).
	Deadline time.Duration
}

// Convert maps a parsed trace to submittable ARiA job profiles, sorted by
// submission time. Architecture/OS requirements — which SWF does not
// record — are synthesized from the paper's population distributions using
// rng; requested time becomes the ERT (clamped to the paper's [1h, 4h]
// envelope after scaling is NOT applied — traces keep their native
// durations); the recorded runtime pins the actual execution length via
// job.Profile.KnownART.
func Convert(t *Trace, rng *rand.Rand, opts ConvertOptions) ([]job.Profile, error) {
	if t == nil || len(t.Jobs) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	scale := opts.TimeScale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, fmt.Errorf("negative time scale %v", scale)
	}
	sampler := resource.NewSampler(rng)

	records := make([]Job, len(t.Jobs))
	copy(records, t.Jobs)
	sort.SliceStable(records, func(i, k int) bool { return records[i].Submit < records[k].Submit })

	var out []job.Profile
	for _, rec := range records {
		if opts.MaxJobs > 0 && len(out) >= opts.MaxJobs {
			break
		}
		if opts.SkipIncomplete && !rec.Completed() {
			continue
		}
		ert := rec.ReqTime
		if ert <= 0 {
			ert = rec.Run
		}
		if ert <= 0 {
			continue // unusable record
		}
		req := sampler.Requirements()
		if len(opts.Hosts) > 0 {
			for !satisfiable(req, opts.Hosts) {
				req = sampler.Requirements()
			}
		}
		// SWF requested memory is per-processor KB; snap it onto the
		// resource model's GB ladder when present.
		if rec.ReqMemKB > 0 {
			req.MinMemoryGB = snapGB(rec.ReqMemKB)
		}
		submit := time.Duration(float64(rec.Submit) * scale)
		known := rec.Run
		if known <= 0 {
			known = ert
		}
		p := job.Profile{
			UUID:        job.NewUUID(rng),
			Req:         req,
			ERT:         ert,
			Class:       job.ClassBatch,
			SubmittedAt: submit,
			KnownART:    known,
		}
		if opts.Deadline > 0 {
			p.Class = job.ClassDeadline
			slackSigma := time.Duration(float64(opts.Deadline) * 0.5)
			slack := opts.Deadline + time.Duration(rng.NormFloat64()*float64(slackSigma))
			if min := time.Duration(float64(opts.Deadline) * 0.4); slack < min {
				slack = min
			}
			p.Deadline = submit + ert + slack
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("trace job %d: %w", rec.Number, err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no usable jobs in trace")
	}
	return out, nil
}

func satisfiable(req resource.Requirements, hosts []resource.Profile) bool {
	for _, h := range hosts {
		if h.Satisfies(req) {
			return true
		}
	}
	return false
}

// snapGB maps a KB request onto the closest admissible size at or above it
// (capping at the largest size so trace jobs stay schedulable).
func snapGB(kb int64) int {
	gb := int((kb + (1 << 20) - 1) / (1 << 20))
	sizes := resource.SizesGB
	for _, s := range sizes {
		if gb <= s {
			return s
		}
	}
	return sizes[len(sizes)-1]
}
