package swf

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

func loadSample(t *testing.T) *Trace {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "sample.swf"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}()
	trace, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestParseSample(t *testing.T) {
	trace := loadSample(t)
	if len(trace.Jobs) != 40 {
		t.Fatalf("jobs = %d, want 40", len(trace.Jobs))
	}
	if trace.Header["Version"] != "2.2" {
		t.Fatalf("Version header = %q", trace.Header["Version"])
	}
	if trace.MaxProcs() != 128 {
		t.Fatalf("MaxProcs = %d", trace.MaxProcs())
	}
	if trace.Span() <= 0 {
		t.Fatal("trace span not positive")
	}
	for _, j := range trace.Jobs {
		if j.Submit < 0 || j.Run < 0 || j.ReqTime < 0 {
			t.Fatalf("negative durations in %+v", j)
		}
	}
}

func TestParseHeaderDirectives(t *testing.T) {
	in := `; Version: 2.2
; MaxNodes: 64
;Comment without colon is kept out
1 10 0 100 1 -1 -1 1 200 -1 1 1 1 -1 1 1 -1 -1
`
	trace, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Header["MaxNodes"] != "64" {
		t.Fatalf("MaxNodes = %q", trace.Header["MaxNodes"])
	}
	j := trace.Jobs[0]
	if j.Submit != 10*time.Second || j.Run != 100*time.Second || j.ReqTime != 200*time.Second {
		t.Fatalf("parsed job %+v", j)
	}
}

func TestParseNegativeSentinels(t *testing.T) {
	in := "5 60 -1 -1 -1 -1 -1 -1 300 -1 -1 -1 -1 -1 -1 -1 -1 -1\n"
	trace, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	j := trace.Jobs[0]
	if j.Run != 0 || j.Wait != 0 || j.ReqMemKB != 0 {
		t.Fatalf("sentinels not clamped: %+v", j)
	}
	if j.Status != -1 || !j.Completed() {
		t.Fatalf("status handling wrong: %+v", j)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"empty", ""},
		{"only comments", "; Version: 2.2\n"},
		{"short line", "1 2 3\n"},
		{"non-numeric", "x 10 0 100 1 -1 -1 1 200 -1 1 1 1 -1 1 1 -1 -1\n"},
		{"negative submit", "1 -10 0 100 1 -1 -1 1 200 -1 1 1 1 -1 1 1 -1 -1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.give)); err == nil {
				t.Fatal("Parse accepted bad input")
			}
		})
	}
}

func TestConvertBasics(t *testing.T) {
	trace := loadSample(t)
	rng := rand.New(rand.NewSource(1))
	jobs, err := Convert(trace, rng, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 40 {
		t.Fatalf("converted %d jobs, want 40", len(jobs))
	}
	var prev time.Duration
	for _, p := range jobs {
		if err := p.Validate(); err != nil {
			t.Fatalf("converted job invalid: %v", err)
		}
		if p.SubmittedAt < prev {
			t.Fatal("jobs not sorted by submission")
		}
		prev = p.SubmittedAt
		if p.KnownART <= 0 {
			t.Fatalf("KnownART missing on %+v", p)
		}
	}
}

func TestConvertMaxJobsAndSkip(t *testing.T) {
	trace := loadSample(t)
	rng := rand.New(rand.NewSource(2))
	jobs, err := Convert(trace, rng, ConvertOptions{MaxJobs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Fatalf("MaxJobs ignored: %d", len(jobs))
	}
	all, err := Convert(trace, rand.New(rand.NewSource(2)), ConvertOptions{SkipIncomplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) >= 40 {
		t.Fatalf("SkipIncomplete dropped nothing (%d jobs, sample has failures)", len(all))
	}
}

func TestConvertTimeScale(t *testing.T) {
	trace := loadSample(t)
	full, err := Convert(trace, rand.New(rand.NewSource(3)), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Convert(trace, rand.New(rand.NewSource(3)), ConvertOptions{TimeScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	lastFull := full[len(full)-1].SubmittedAt
	lastHalf := half[len(half)-1].SubmittedAt
	if lastHalf*2 != lastFull {
		t.Fatalf("time scale wrong: %v vs %v", lastHalf, lastFull)
	}
	if _, err := Convert(trace, rand.New(rand.NewSource(3)), ConvertOptions{TimeScale: -1}); err == nil {
		t.Fatal("negative time scale accepted")
	}
}

func TestConvertHostsConstraint(t *testing.T) {
	trace := loadSample(t)
	host := resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 16, DiskGB: 16, PerfIndex: 1.5,
	}
	jobs, err := Convert(trace, rand.New(rand.NewSource(4)), ConvertOptions{
		Hosts: []resource.Profile{host},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range jobs {
		if !host.Satisfies(p.Req) {
			t.Fatalf("unsatisfiable trace job %v", p.Req)
		}
	}
}

func TestConvertDeadline(t *testing.T) {
	trace := loadSample(t)
	jobs, err := Convert(trace, rand.New(rand.NewSource(5)), ConvertOptions{
		Deadline: 4 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range jobs {
		if p.Class != job.ClassDeadline || p.Deadline <= p.SubmittedAt+p.ERT {
			t.Fatalf("deadline conversion wrong: %+v", p)
		}
	}
}

func TestConvertEmpty(t *testing.T) {
	if _, err := Convert(nil, rand.New(rand.NewSource(1)), ConvertOptions{}); err == nil {
		t.Fatal("Convert accepted nil trace")
	}
}

func TestSnapGB(t *testing.T) {
	tests := []struct {
		kb   int64
		want int
	}{
		{1, 1},
		{1 << 20, 1},    // exactly 1 GB
		{1<<20 + 1, 2},  // just over 1 GB
		{3 << 20, 4},    // 3 GB → 4
		{100 << 20, 16}, // capped
	}
	for _, tt := range tests {
		if got := snapGB(tt.kb); got != tt.want {
			t.Errorf("snapGB(%d) = %d, want %d", tt.kb, got, tt.want)
		}
	}
}
