package scenario

import (
	"bytes"
	"runtime"
	"testing"

	"github.com/smartgrid/aria/internal/sim"
)

// shardLogRun executes one scenario on the sharded kernel and returns the
// kernel's serialized execution log plus the completion count.
func shardLogRun(t *testing.T, c Config, shards, procs int) ([]byte, int) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	c.Shards = shards
	c.ShardLog = true
	d, err := Prepare(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.ScheduleSubmissions(ARiASubmit)
	res := d.Finish()
	sh, ok := d.Engine.(*sim.Sharded)
	if !ok {
		t.Fatal("deployment did not use the sharded kernel")
	}
	return sh.EventLogBytes(), res.Completed
}

// TestShardedScenarioDeterminism is the protocol-level determinism
// property: for every scenario family in the catalog subset below, the
// sharded kernel's event-log stream is byte-identical for the same seed
// under shards ∈ {1, 4, 16} × GOMAXPROCS ∈ {1, 4}.
//
// The subset deliberately excludes churn scenarios: overlay surgery from
// the global lane between windows is deterministic, but kill/restart also
// prunes links while probe traffic is in flight, and the catalog churn
// configs additionally consult the coordinator RNG in ways that are only
// canonical per-kernel, not per-shard-count. Churn coverage under the
// sharded kernel lives in the race stress test instead.
func TestShardedScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism matrix is not short")
	}
	scenarios := []string{
		"iMixed",         // flood discovery + rescheduling
		"iMixed-sites10", // site latency model: site-keyed shard assignment
		"iLossy",         // fault plane: keyed drop/duplication/jitter draws
		"iDirected",      // directory gossip + directed probes
	}
	type cell struct{ shards, procs int }
	matrix := []cell{{1, 1}, {4, 1}, {16, 1}, {1, 4}, {4, 4}, {16, 4}}
	for _, name := range scenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			c := smallScenario(t, name)
			ref, refCompleted := shardLogRun(t, c, matrix[0].shards, matrix[0].procs)
			if len(ref) == 0 {
				t.Fatal("reference run produced an empty event log")
			}
			if refCompleted == 0 {
				t.Fatal("reference run completed no jobs")
			}
			for _, m := range matrix[1:] {
				got, completed := shardLogRun(t, c, m.shards, m.procs)
				if completed != refCompleted {
					t.Errorf("shards=%d procs=%d completed %d jobs, reference %d",
						m.shards, m.procs, completed, refCompleted)
				}
				if !bytes.Equal(ref, got) {
					t.Errorf("shards=%d procs=%d: event log diverged from shards=1 reference (%d vs %d bytes)",
						m.shards, m.procs, len(got), len(ref))
				}
			}
		})
	}
}

// TestShardedSeedSensitivity guards the oracle itself: different seeds must
// yield different logs, or byte-equality above would be vacuous.
func TestShardedSeedSensitivity(t *testing.T) {
	c := smallScenario(t, "iMixed")
	c.Shards = 4
	c.ShardLog = true
	logs := make([][]byte, 2)
	for i := range logs {
		d, err := Prepare(c, i) // run index varies the seed
		if err != nil {
			t.Fatal(err)
		}
		d.ScheduleSubmissions(ARiASubmit)
		d.Finish()
		logs[i] = d.Engine.(*sim.Sharded).EventLogBytes()
	}
	if bytes.Equal(logs[0], logs[1]) {
		t.Fatal("different run seeds produced identical event logs")
	}
}

// TestShardedMatchesOwnReplay: same seed, same configuration, run twice —
// the most basic reproducibility contract, checked for a non-trivial shard
// count with workers enabled.
func TestShardedMatchesOwnReplay(t *testing.T) {
	c := smallScenario(t, "iLossy")
	a, ca := shardLogRun(t, c, 8, 4)
	b, cb := shardLogRun(t, c, 8, 4)
	if ca != cb || !bytes.Equal(a, b) {
		t.Fatalf("replay diverged: completed %d vs %d, log %d vs %d bytes", ca, cb, len(a), len(b))
	}
}

// TestShardedReplayMatchesLegacyOutcomeShape: the sharded kernel is a
// different execution model, so event interleavings legitimately differ
// from the legacy engine — but the protocol outcome must stay healthy.
// Completion parity within a small tolerance is the cross-engine sanity
// bound (exact equality is not expected: per-lane RNG streams differ from
// the legacy global stream by design).
func TestShardedReplayMatchesLegacyOutcomeShape(t *testing.T) {
	c := smallScenario(t, "iMixed")
	legacy, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Shards = 4
	sharded, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Completed == 0 || sharded.Completed == 0 {
		t.Fatalf("empty runs: legacy %d, sharded %d", legacy.Completed, sharded.Completed)
	}
	diff := legacy.Completed - sharded.Completed
	if diff < 0 {
		diff = -diff
	}
	if tol := legacy.Submitted / 10; diff > tol {
		t.Fatalf("completion gap %d exceeds tolerance %d (legacy %d/%d, sharded %d/%d)",
			diff, tol, legacy.Completed, legacy.Submitted, sharded.Completed, sharded.Submitted)
	}
}
