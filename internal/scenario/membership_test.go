package scenario

import (
	"testing"
	"time"
)

// membershipOff strips the liveness detector and flood recovery from a
// config, leaving everything else (churn, corpses, faults) identical.
func membershipOff(c Config) Config {
	c.Name = c.Name + "-noheal"
	c.Protocol.ProbeInterval = 0
	c.Protocol.ProbeTimeout = 0
	c.Protocol.SuspectTimeout = 0
	c.Protocol.MaxDegree = 0
	c.Protocol.ReFloodTTLStep = 0
	return c
}

// TestChurnHealMembershipIsLoadBearing is the PR's acceptance gate: with
// corpses left in the overlay, the membership-enabled run must complete
// strictly more jobs than an identical run with the detector disabled, at
// every seed. Without repair, corpses keep soaking up floods and ASSIGNs;
// with it, dead links are pruned and discovery re-floods route around them.
func TestChurnHealMembershipIsLoadBearing(t *testing.T) {
	c := smallScenario(t, "iChurnHeal")
	// The catalog kills 50 of 1000 at full scale; at 30 nodes that would
	// depopulate the grid. Kill 10, starting after the scaled submission
	// burst is underway.
	c.Churn.Kills = 10
	c.Churn.Start = 2 * time.Minute
	c.Churn.Interval = 1 * time.Minute

	for _, seed := range []int{0, 1, 2} {
		healed, err := Run(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		bare, err := Run(membershipOff(c), seed)
		if err != nil {
			t.Fatal(err)
		}
		if healed.Completed <= bare.Completed {
			t.Errorf("seed %d: membership on completed %d, off completed %d; want strictly more",
				seed, healed.Completed, bare.Completed)
		}
		if !healed.Membership.Any() {
			t.Errorf("seed %d: membership run recorded no detector activity", seed)
		}
		if bare.Membership.Any() {
			t.Errorf("seed %d: disabled run recorded detector activity: %+v", seed, bare.Membership)
		}
	}
}

// TestChurnHealDetectorCounters pins that the detector's work surfaces in
// the metrics result: corpses produce suspicions, dead verdicts, and link
// repairs that the report layer aggregates.
func TestChurnHealDetectorCounters(t *testing.T) {
	c := smallScenario(t, "iChurnHeal")
	c.Churn.Kills = 10
	c.Churn.Start = 2 * time.Minute
	c.Churn.Interval = 1 * time.Minute

	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Membership.Suspected == 0 {
		t.Error("no suspicions despite 10 corpses")
	}
	if res.Membership.Dead == 0 {
		t.Error("no dead verdicts despite 10 corpses")
	}
	if res.Membership.Repaired == 0 {
		t.Error("no link repairs despite pruned corpses")
	}
}

// TestSubmissionLostRecorded pins satellite 1: when every redraw of the
// submission portal hits a corpse, the submission is counted as lost
// instead of panicking or silently vanishing.
func TestSubmissionLostRecorded(t *testing.T) {
	c := smallScenario(t, "iChurnHeal")
	d, err := Prepare(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the entire grid, then submit: all 10 redraws must hit corpses.
	for _, n := range d.Cluster.Nodes() {
		n.Kill()
	}
	ARiASubmit(d, 0, d.Gen.Next(0))
	res := d.Finish()
	if res.SubmissionsLost != 1 {
		t.Fatalf("SubmissionsLost = %d, want 1", res.SubmissionsLost)
	}
}

// TestChurnWithoutCorpsesStillRedraws guards the redraw bound: under
// classic churn (corpses removed from the graph but Node objects still
// registered in the cluster), a submission draw that hits a dead node
// retries a bounded number of times and then records the loss — the loop
// cannot spin forever.
func TestChurnWithoutCorpsesStillRedraws(t *testing.T) {
	c := smallScenario(t, "iChurn")
	d, err := Prepare(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range d.Cluster.Nodes() {
		n.Kill()
	}
	done := make(chan struct{})
	go func() {
		ARiASubmit(d, 0, d.Gen.Next(0))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ARiASubmit did not return: redraw loop unbounded")
	}
	if got := d.Recorder.Result("x", 0, 1, time.Hour, time.Minute).SubmissionsLost; got != 1 {
		t.Fatalf("SubmissionsLost = %d, want 1", got)
	}
}
