package scenario

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
)

// overloadOff strips the overload-control plane from a config, leaving
// everything else (workload, churn, retry budget) identical — the
// unbounded-queue control arm. The name is deliberately kept: runSeed hashes
// it, and the two arms must draw the same topology, profiles, and workload.
func overloadOff(c Config) Config {
	c.Protocol.MaxQueuedJobs = 0
	c.Protocol.MaxPendingSubmits = 0
	c.Protocol.RetryBackoffCap = 0
	return c
}

// overloadSmall scales iOverload (or iOverloadChurn) down for test runs and
// tightens it past the small grid's saturation point: a 2-deep run queue
// against a 1-second submission burst guarantees contention deep enough to
// shed ASSIGNs, not just advisory-BUSY REQUESTs.
func overloadSmall(t *testing.T, name string) Config {
	t.Helper()
	sc := smallScenario(t, name)
	sc.Submission.Interval = time.Second
	sc.Protocol.MaxQueuedJobs = 2
	return sc
}

// TestOverloadShedsAndDrains pins the plane's liveness property: driving the
// small grid far past saturation sheds load — it never loses it. Every
// admitted job still completes once the backlog drains.
func TestOverloadShedsAndDrains(t *testing.T) {
	c := overloadSmall(t, "iOverload")
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d (failed %d): shedding lost jobs", res.Completed, res.Submitted, res.Failed)
	}
	if !res.Overload.Any() {
		t.Fatal("a 2-deep queue under a 1s burst recorded no overload activity")
	}
	if res.Overload.RequestsShed == 0 {
		t.Fatal("no advisory BUSY on REQUESTs despite saturation")
	}
	if res.Overload.AssignsShed == 0 {
		t.Fatal("no ASSIGN was shed despite contention past the queue bound")
	}
	if got := res.Overload.Reflooded + res.Overload.Reenqueued; got < res.Overload.AssignsShed {
		t.Fatalf("re-dispatches %d < sheds %d: a shed ASSIGN was orphaned", got, res.Overload.AssignsShed)
	}
	if res.Traffic[core.MsgBusy].Count == 0 {
		t.Fatal("BUSY transmissions missing from the traffic accounting")
	}
}

// TestOverloadTracedInvariants audits the shed machinery against the trace
// checker: every shed ASSIGN must be answered with BUSY and re-dispatched
// (the shed-assign invariant), on top of the standard protocol invariants.
func TestOverloadTracedInvariants(t *testing.T) {
	c := overloadSmall(t, "iOverload")
	res, rep, err := RunTraced(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d invariant violation(s)", len(rep.Violations))
	}
	if rep.ByKind[core.SpanBusy] == 0 {
		t.Fatal("trace retained no BUSY spans")
	}
	if rep.ByKind[core.SpanShed] == 0 {
		t.Fatal("trace retained no shed re-dispatch spans")
	}
	if res.Completed != res.Submitted {
		t.Fatalf("traced run lost jobs: %d of %d", res.Completed, res.Submitted)
	}
}

// TestOverloadChurnTracedInvariants runs the combined saturation+crash
// scenario under the checker: kills land right on the held backlog, so shed
// BUSYs race dying senders. Churn relaxes completeness and the busy-answered
// half of the shed invariant (a sender may die before the BUSY lands), but
// every traced shed span must still have its re-dispatch child.
func TestOverloadChurnTracedInvariants(t *testing.T) {
	c := overloadSmall(t, "iOverloadChurn")
	c.Churn = &Churn{Kills: 10, Start: 25 * time.Minute, Interval: time.Minute}
	res, rep, err := RunTraced(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d invariant violation(s)", len(rep.Violations))
	}
	if !res.Overload.Any() {
		t.Fatal("no overload activity despite saturation")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed under churn")
	}
}

// TestOverloadControlBeatsUnbounded is the PR's acceptance gate: under a
// submission burst far past saturation (150 jobs in 15 seconds against 50
// nodes — every discovery window overlaps dozens of others), the
// overload-control arm must complete strictly more jobs within a fixed
// evaluation horizon than the identical unbounded-queue control, at every
// seed, while keeping p99 completion time no worse. The mechanism under
// test: overlapping discoveries all herd toward the momentarily-cheapest
// provider before its queue reflects their assignments. The unbounded arm
// freezes that herd into deep straggler queues whose tail outlives the
// horizon while shallow nodes idle; the bounded arm sheds the pile-up with
// BUSY, and the re-dispatches pour the backlog onto whichever node frees up
// next. Rescheduling is off in both arms so queue bounds are the only
// balancing force in play, and the retry budget is patient enough that no
// shed job ever exhausts it.
func TestOverloadControlBeatsUnbounded(t *testing.T) {
	base, err := ByName("iOverload")
	if err != nil {
		t.Fatal(err)
	}
	c := base.Scaled(0.1) // 50 nodes
	c.Protocol.MaxQueuedJobs = 4
	c.Submission.Count = 150
	c.Submission.Interval = 100 * time.Millisecond
	c.Protocol.MaxRequestRetries = 3000
	c.Protocol.RetryBackoffCap = time.Minute
	c.Protocol.InformJobs = 0
	c.Horizon = c.Submission.End() + 15*time.Hour
	for _, seed := range []int{0, 1, 2} {
		shed, err := Run(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		control, err := Run(overloadOff(c), seed)
		if err != nil {
			t.Fatal(err)
		}
		if shed.Completed <= control.Completed {
			t.Errorf("seed %d: shedding completed %d, unbounded control %d; want strictly more",
				seed, shed.Completed, control.Completed)
		}
		if shed.Failed != 0 {
			t.Errorf("seed %d: shedding arm failed %d jobs; the retry budget must outlast the drain", seed, shed.Failed)
		}
		if shed.CompletionP99 > control.CompletionP99 {
			t.Errorf("seed %d: shedding p99 %v exceeds unbounded control p99 %v",
				seed, shed.CompletionP99, control.CompletionP99)
		}
		if !shed.Overload.Any() {
			t.Errorf("seed %d: shedding arm recorded no overload activity", seed)
		}
		if control.Overload.RequestsShed+control.Overload.AssignsShed != 0 {
			t.Errorf("seed %d: control arm shed load: %+v", seed, control.Overload)
		}
		t.Logf("seed %d: shed %d/%d failed=%d p50=%v p99=%v max=%v | control %d/%d failed=%d p50=%v p99=%v max=%v",
			seed, shed.Completed, shed.Submitted, shed.Failed, shed.CompletionP50, shed.CompletionP99, shed.CompletionMax,
			control.Completed, control.Submitted, control.Failed, control.CompletionP50, control.CompletionP99, control.CompletionMax)
	}
}
