package scenario

import (
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/trace"
)

// TraceOpts derives the invariant-checker relaxations a scenario legitimately
// needs. Clean single-assignment runs are checked at full strictness; the
// documented extensions relax exactly the invariants they are designed to
// bend:
//
//   - MultiAssign intentionally starts several copies of one job, and churn
//     or link faults can double-start via failsafe resubmission races.
//   - Churn and link faults can strand jobs (killed assignee, partitioned
//     initiator), so completeness is not guaranteed.
//   - Link loss without the AssignAck handshake can orphan an ASSIGN (the
//     message vanishes and nothing retries), which is precisely the failure
//     mode the handshake extension exists to close.
func (c Config) TraceOpts() trace.Opts {
	opts := trace.Opts{Protocol: c.Protocol}
	if c.Protocol.MultiAssign > 1 || c.Churn != nil || c.Faults != nil {
		opts.AllowDuplicateStarts = true
	}
	if c.Churn != nil || c.Faults != nil {
		opts.AllowIncomplete = true
	}
	if c.Faults != nil && !c.Protocol.AssignAck {
		opts.AllowLoss = true
	}
	return opts
}

// RunTraced executes one repetition with the trace plane armed and audits
// the retained event stream against the protocol invariants. The metrics are
// identical to an untraced Run of the same scenario and repetition: tracing
// consumes no randomness and adds no messages.
func RunTraced(c Config, run int) (*metrics.Result, trace.Report, error) {
	c.Trace = true
	d, err := Prepare(c, run)
	if err != nil {
		return nil, trace.Report{}, err
	}
	d.ScheduleSubmissions(ARiASubmit)
	res := d.Finish()
	rep := trace.Check(d.Trace.Events(), c.TraceOpts())
	return res, rep, nil
}
