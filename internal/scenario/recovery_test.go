package scenario

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
)

// smallCrashRestart scales a crash-restart scenario the same way the
// membership tests do (30 nodes, 60 jobs, 10 kills), but times the kills
// inside the submission burst (20m–25m at the 5s interval) so crashed nodes
// hold queued and running work worth recovering. The 5s restart delay from
// the catalog is preserved — it must stay under the suspect window so
// revenants refute suspicion.
func smallCrashRestart(t *testing.T, name string) Config {
	t.Helper()
	c := smallScenario(t, name)
	c.Churn.Kills = 10
	c.Churn.Start = 22 * time.Minute
	c.Churn.Interval = 30 * time.Second
	return c
}

// amnesiac strips the journal from a config, leaving churn, restarts, and
// everything else identical: the fail-stop control arm of extension G.
func amnesiac(c Config) Config {
	c.Name = c.Name + "-amnesiac"
	c.Journal = false
	return c
}

// TestCrashRestartJournalIsLoadBearing is the PR's acceptance gate: under
// crash–restart churn, journaled nodes must complete strictly more jobs
// than amnesiac ones at every seed. An amnesiac restart forgets queued and
// running work — self-initiated jobs die with it, and delegated ones limp
// back only through watchdog resubmissions; replaying the journal recovers
// them all directly.
func TestCrashRestartJournalIsLoadBearing(t *testing.T) {
	c := smallCrashRestart(t, "iCrashRestart")
	for _, seed := range []int{0, 1, 2} {
		journaled, err := Run(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		bare, err := Run(amnesiac(c), seed)
		if err != nil {
			t.Fatal(err)
		}
		if journaled.Completed <= bare.Completed {
			t.Errorf("seed %d: journaled completed %d, amnesiac completed %d; want strictly more",
				seed, journaled.Completed, bare.Completed)
		}
		if !journaled.Recovery.Any() {
			t.Errorf("seed %d: journaled run recorded no recovery activity", seed)
		}
		if journaled.Recovery.JobsRecovered == 0 {
			t.Errorf("seed %d: journaled run recovered no jobs across %d restarts",
				seed, journaled.Recovery.Restarts)
		}
		if bare.Recovery.JobsRecovered != 0 || bare.Recovery.ReplayRecords != 0 {
			t.Errorf("seed %d: amnesiac run recovered state: %+v", seed, bare.Recovery)
		}
		if bare.Recovery.Restarts == 0 {
			t.Errorf("seed %d: amnesiac run recorded no restarts", seed)
		}
	}
}

// TestCrashRestartTraceInvariants runs the journaled scenario with the trace
// plane armed and holds it to the full invariant set, including the
// recovery-specific ones: every replayed span links into the pre-crash
// causal tree, no recovered job re-floods over a live ASSIGN, and replay
// never re-executes work a node already ran (zero double executions).
func TestCrashRestartTraceInvariants(t *testing.T) {
	c := smallCrashRestart(t, "iCrashRestart")
	res, rep, err := RunTraced(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.ByKind[core.SpanRestart] == 0 {
		t.Error("no restart spans traced despite journaled churn")
	}
	if rep.ByKind[core.SpanRecovered] == 0 {
		t.Error("no recovered spans traced despite journaled churn")
	}
	if res.Recovery.JobsRecovered == 0 {
		t.Error("traced run recovered no jobs")
	}
}

// TestLossyCrashRestartUnderFire composes crash–restart with lossy links
// and the membership plane (satellite: recovery under fire). Restarted
// nodes come back while peers are actively suspecting them: re-admission
// must happen (suspicions refuted), recovered state must flow (jobs
// recovered, INFORM re-announcements traced), and the full invariant set
// must hold.
func TestLossyCrashRestartUnderFire(t *testing.T) {
	c := smallCrashRestart(t, "iLossyCrashRestart")
	res, rep, err := RunTraced(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if res.Recovery.JobsRecovered == 0 {
		t.Error("no jobs recovered under fire")
	}
	if !res.Membership.Any() {
		t.Error("membership plane recorded no activity")
	}
	if res.Membership.Suspected == 0 {
		t.Error("no suspicions despite crashes and loss")
	}
	if res.Membership.Refuted == 0 {
		t.Error("no refutations: restarted nodes were never re-admitted")
	}
}

// TestCrashRestartScenariosInCatalog pins that the three extension
// scenarios resolve by name with the intended journal/restart settings.
func TestCrashRestartScenariosInCatalog(t *testing.T) {
	for _, tt := range []struct {
		name    string
		journal bool
		lossy   bool
	}{
		{"iCrashRestart", true, false},
		{"iCrashRestart-amnesiac", false, false},
		{"iLossyCrashRestart", true, true},
	} {
		c, err := ByName(tt.name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Journal != tt.journal {
			t.Errorf("%s: Journal = %v, want %v", tt.name, c.Journal, tt.journal)
		}
		if c.Churn == nil || c.Churn.Restart != 5*time.Second {
			t.Errorf("%s: missing 5s restart churn", tt.name)
		}
		if (c.Faults != nil) != tt.lossy {
			t.Errorf("%s: faults = %v, want lossy %v", tt.name, c.Faults, tt.lossy)
		}
		suspectWindow := c.Protocol.ProbeInterval + c.Protocol.ProbeTimeout + c.Protocol.SuspectTimeout
		if c.Churn.Restart >= suspectWindow {
			t.Errorf("%s: restart delay %v not under suspect window %v", tt.name, c.Churn.Restart, suspectWindow)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", tt.name, err)
		}
	}
}
