package scenario

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/faults"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/trace"
	"github.com/smartgrid/aria/internal/transport"
	"github.com/smartgrid/aria/internal/workload"
)

// runSeed derives the seed of one repetition from the scenario identity, so
// every scenario/run pair is reproducible in isolation.
func runSeed(c Config, run int) int64 {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s/%d/%d", c.Name, c.Seed, run)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Deployment is a fully wired scenario instance: overlay, cluster, metrics,
// workload generator, expansion plan, and idle sampling — everything except
// the submission policy, which the caller chooses (ARiA protocol submission
// or one of the baseline meta-schedulers).
type Deployment struct {
	Config   Config
	Seed     int64
	Engine   sim.Kernel
	Cluster  *transport.SimCluster
	Recorder *metrics.Recorder
	Builder  *overlay.Blatant
	Gen      *workload.JobGen

	// Faults is the installed link fault model, nil on clean runs.
	Faults *faults.LinkModel

	// Trace is the retained trace-plane event stream; nil unless
	// Config.Trace is set.
	Trace *trace.Collector

	// Profiles holds the hardware profile of every initial node, in
	// graph node order (useful for satisfiability-constrained external
	// workloads such as trace replays).
	Profiles []resource.Profile

	subRng *rand.Rand
}

// SubmitFunc injects one job into the deployment at its submission instant.
type SubmitFunc func(d *Deployment, at time.Duration, p job.Profile)

// ARiASubmit is the paper's submission model: the job lands on a uniformly
// random node, which becomes its ARiA initiator. Under churn, users would
// retry a dead portal, and under admission control a bounced portal; a
// handful of redraws models that.
func ARiASubmit(d *Deployment, _ time.Duration, p job.Profile) {
	var err error
	for tries := 0; tries < 10; tries++ {
		target := d.RandomNode()
		if !target.Alive() {
			err = fmt.Errorf("node %v is dead", target.ID())
			continue
		}
		if err = target.Submit(p); err == nil {
			return
		}
		if !errors.Is(err, core.ErrOverloaded) {
			break
		}
	}
	switch {
	case errors.Is(err, core.ErrOverloaded):
		// Every redrawn portal pushed back: admission control shed the
		// submission before it entered the protocol.
		d.Recorder.SubmissionShed()
	case d.Config.Churn != nil:
		// Every redraw hit a corpse: the submission is lost. Record it
		// so completion counts can be reconciled against submissions.
		d.Recorder.SubmissionLost()
	default:
		// Without churn or admission control a submission can never fail;
		// an error here is a harness bug.
		panic(fmt.Sprintf("scenario %s: submit: %v", d.Config.Name, err))
	}
}

// Prepare builds a deployment for one repetition: overlay, nodes, workload
// generator, expansion events, and idle sampling are all armed; submissions
// are not yet scheduled.
func Prepare(c Config, run int) (*Deployment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	seed := runSeed(c, run)
	setupRng := rand.New(rand.NewSource(seed))

	var (
		builder *overlay.Blatant
		graph   *overlay.Graph
		err     error
	)
	if c.Topology == 0 || c.Topology == overlay.TopologyBlatant {
		builder, err = overlay.Build(c.Nodes, c.Overlay, setupRng)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", c.Name, err)
		}
		graph = builder.Graph()
	} else {
		meanDegree := c.TopologyMeanDegree
		if meanDegree == 0 {
			meanDegree = 4
		}
		graph, err = overlay.BuildTopology(c.Topology, c.Nodes, meanDegree, c.Overlay, setupRng)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", c.Name, err)
		}
	}

	var latency overlay.LatencyModel = overlay.DefaultLatency(uint64(seed))
	var sites *overlay.SiteLatency
	if c.Sites > 0 {
		sites, err = overlay.NewSiteLatency(c.Sites, uint64(seed))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", c.Name, err)
		}
		latency = sites
	}
	var engine sim.Kernel = sim.NewEngine(seed + 1)
	if c.Shards > 0 {
		// Epoch windows sized to the latency floor keep cross-lane
		// delivery times exact; site-based shard assignment keeps
		// LAN-adjacent lanes on one heap (locality only — event order
		// is lane-defined and shard-independent).
		opts := sim.ShardedOptions{
			Shards:         c.Shards,
			LanePendingCap: c.ShardCap,
			EventLog:       c.ShardLog,
		}
		if m, ok := latency.(overlay.MinDelayer); ok {
			opts.Epoch = m.MinDelay()
		}
		if sites != nil {
			shards := c.Shards
			opts.Assign = func(l sim.Lane) int {
				return sites.Site(overlay.NodeID(l)) % shards
			}
		}
		engine = sim.NewSharded(seed+1, opts)
	}
	cluster := transport.NewSimCluster(engine, graph, latency)
	if c.Journal {
		cluster.EnableJournaling()
	}
	rec := metrics.NewRecorder()
	cluster.SetTraffic(rec.OnMessage)

	// The recorder always counts span events per kind (cheap); retaining
	// the full stream for causal trees and invariant checking is opt-in.
	var obs core.Observer = rec
	var collector *trace.Collector
	if c.Trace {
		collector = trace.NewCollector()
		obs = eventlog.Tee{rec, collector}
	}

	sampler := resource.NewSampler(setupRng)
	var hostProfiles []resource.Profile
	for _, id := range graph.Nodes() {
		profile := sampler.Profile()
		policy := c.Policies[setupRng.Intn(len(c.Policies))]
		if _, err := cluster.AddNode(id, profile, policy, c.Protocol, obs, c.ART); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", c.Name, err)
		}
		hostProfiles = append(hostProfiles, profile)
	}
	cluster.StartAll()

	gen, err := workload.NewJobGen(rand.New(rand.NewSource(seed+2)), c.Class)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	if c.Class == job.ClassDeadline && c.DeadlineSlack > 0 {
		gen.DeadlineSlack = c.DeadlineSlack
	}
	if c.EnsureSatisfiable {
		gen.Hosts = hostProfiles
	}
	gen.ReservationFraction = c.ReservationFraction
	gen.ReservationLead = c.ReservationLead

	d := &Deployment{
		Config:   c,
		Seed:     seed,
		Engine:   engine,
		Cluster:  cluster,
		Recorder: rec,
		Builder:  builder,
		Gen:      gen,
		Profiles: hostProfiles,
		Trace:    collector,
		subRng:   rand.New(rand.NewSource(seed + 3)),
	}

	// Link fault plane. All fault draws come from a dedicated seeded
	// source (seed+4) so a faulty run stays bit-reproducible and fault
	// draws never perturb the other random streams.
	if f := c.Faults; f != nil {
		fcfg := faults.Config{
			DropProb:      f.DropProb,
			DupProb:       f.DupProb,
			MaxExtraDelay: f.MaxExtraDelay,
		}
		// Each window type draws its own shuffled node subset from the
		// setup stream, so adding a window never reshuffles another's.
		drawSubset := func(fraction float64) []overlay.NodeID {
			ids := append([]overlay.NodeID(nil), graph.Nodes()...)
			setupRng.Shuffle(len(ids), func(i, k int) { ids[i], ids[k] = ids[k], ids[i] })
			cut := int(float64(len(ids)) * fraction)
			if cut < 1 {
				cut = 1
			}
			return ids[:cut]
		}
		if p := f.Partition; p != nil {
			fcfg.Partitions = []faults.Partition{{
				Start:    p.Start,
				End:      p.Start + p.Duration,
				Isolated: drawSubset(p.Fraction),
				OneWay:   p.OneWay,
			}}
		}
		if s := f.Slowdown; s != nil {
			fcfg.Slowdowns = []faults.Slowdown{{
				Start:      s.Start,
				End:        s.Start + s.Duration,
				Nodes:      drawSubset(s.Fraction),
				ExtraDelay: s.ExtraDelay,
			}}
		}
		if s := f.Stall; s != nil {
			fcfg.Stalls = []faults.Stall{{
				Start: s.Start,
				End:   s.Start + s.Duration,
				Nodes: drawSubset(s.Fraction),
			}}
		}
		lm, err := faults.NewLinkModel(fcfg, rand.New(rand.NewSource(seed+4)))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", c.Name, err)
		}
		// The sharded kernel's transport draws keyed (order-independent)
		// fault outcomes from this seed instead of the sequential source.
		lm.SetKeySeed(uint64(seed + 4))
		cluster.SetFaults(lm)
		d.Faults = lm
	}

	// Overlay expansion.
	if e := c.Expanding; e != nil {
		for k := 0; k < e.ExtraNodes; k++ {
			at := e.Start + time.Duration(k)*e.Interval
			engine.ScheduleAt(at, func() {
				id := builder.Join()
				profile := sampler.Profile()
				policy := c.Policies[setupRng.Intn(len(c.Policies))]
				n, err := cluster.AddNode(id, profile, policy, c.Protocol, obs, c.ART)
				if err != nil {
					panic(fmt.Sprintf("scenario %s: join: %v", c.Name, err))
				}
				n.Start()
				// Let the swarm manager keep the growing topology
				// within its envelope.
				builder.Round()
			})
		}
	}

	// Node-failure injection.
	if ch := c.Churn; ch != nil {
		for k := 0; k < ch.Kills; k++ {
			at := ch.Start + time.Duration(k)*ch.Interval
			engine.ScheduleAt(at, func() {
				nodes := cluster.Nodes()
				// Kill a uniformly random still-alive node; the swarm
				// manager heals the overlay around the corpse.
				for tries := 0; tries < 20; tries++ {
					victim := nodes[engine.Rand().Intn(len(nodes))]
					if !victim.Alive() {
						continue
					}
					victim.Kill()
					if !ch.LeaveCorpses {
						graph.RemoveNode(victim.ID())
						if builder != nil {
							builder.Round()
						}
					}
					if ch.Restart > 0 {
						// Fail-recover: the node reboots after the restart
						// delay — journaled nodes replay their WAL, bare
						// ones come back amnesiac. The restart is counted
						// in both variants so report extension G compares
						// like with like.
						vid := victim.ID()
						engine.Schedule(ch.Restart, func() {
							if !graph.HasNode(vid) {
								return // excised while down
							}
							if _, err := cluster.Restart(vid); err != nil {
								panic(fmt.Sprintf("scenario %s: restart %v: %v", c.Name, vid, err))
							}
							rec.NodeRestarted()
						})
					}
					return
				}
			})
		}
	}

	// Runtime overlay self-maintenance (BLATANT-S runs its ants
	// continuously; a periodic round keeps the topology within its
	// envelope as the network evolves).
	if c.MaintenanceInterval > 0 && builder != nil {
		sim.NewTicker(engine, c.MaintenanceInterval, 0, func() {
			builder.Round()
		})
	}

	// Idle-node sampling at the reporting cadence.
	sim.NewTicker(engine, c.SampleInterval, 0, func() {
		rec.AddIdleSample(engine.Now(), cluster.IdleCount(), graph.NumNodes())
	})

	return d, nil
}

// RandomNode draws a uniformly random registered node (the draw consumes
// the deployment's submission random stream).
func (d *Deployment) RandomNode() *core.Node {
	nodes := d.Cluster.Nodes()
	return nodes[d.subRng.Intn(len(nodes))]
}

// ScheduleSubmissions arms every submission instant of the scenario's plan,
// generating the job and invoking submit at that virtual time.
func (d *Deployment) ScheduleSubmissions(submit SubmitFunc) {
	for _, at := range d.Config.Submission.Times() {
		at := at
		d.Engine.ScheduleAt(at, func() {
			submit(d, at, d.Gen.Next(at))
		})
	}
}

// Finish runs the simulation to the horizon and snapshots the metrics,
// releasing the sharded kernel's workers if it uses any.
func (d *Deployment) Finish() *metrics.Result {
	d.Engine.Run(d.Config.Horizon)
	if sh, ok := d.Engine.(*sim.Sharded); ok {
		sh.Close()
	}
	if d.Faults != nil {
		d.Recorder.SetLinkFaults(d.Faults.Stats())
	}
	return d.Recorder.Result(
		d.Config.Name, d.Seed, d.Cluster.Graph().NumNodes(),
		d.Config.Horizon, d.Config.SampleInterval,
	)
}

// Run executes one repetition of the scenario under the ARiA protocol and
// returns its metrics.
func Run(c Config, run int) (*metrics.Result, error) {
	d, err := Prepare(c, run)
	if err != nil {
		return nil, err
	}
	d.ScheduleSubmissions(ARiASubmit)
	return d.Finish(), nil
}

// RunN executes runs repetitions and aggregates them. Repetitions are
// fully independent (own engine, RNGs, and overlay), so they run on
// parallel workers; results stay in run order and each run remains
// bit-reproducible in isolation.
func RunN(c Config, runs int) (*metrics.Aggregate, []*metrics.Result, error) {
	results, err := metrics.ParallelRuns(runs, func(run int) (*metrics.Result, error) {
		return Run(c, run)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	return metrics.NewAggregate(results), results, nil
}
