package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/smartgrid/aria/internal/swf"
)

// SyntheticTrace builds a deterministic SWF-shaped workload of n jobs:
// submissions uniform over the first hour, runtimes of 10-60 minutes with
// generous requested-time headroom. The same (n, seed) always yields the
// same trace — the scale benchmarks and determinism tests replay it so
// their workloads are comparable across engines and shard counts.
func SyntheticTrace(n int, seed int64) *swf.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &swf.Trace{}
	for i := 0; i < n; i++ {
		tr.Jobs = append(tr.Jobs, swf.Job{
			Number:  i + 1,
			Submit:  time.Duration(rng.Intn(3600)) * time.Second,
			Run:     time.Duration(600+rng.Intn(3000)) * time.Second,
			ReqTime: time.Duration(3600+rng.Intn(7200)) * time.Second,
			Status:  1,
		})
	}
	return tr
}

// ReplaySWF converts tr against the deployment's host profiles and arms one
// submission event per runnable job (the ARiASubmit path: a uniformly random
// living initiator). Returns the number of jobs scheduled. Call between
// Prepare and Finish.
func ReplaySWF(d *Deployment, tr *swf.Trace) (int, error) {
	jobs, err := swf.Convert(tr, rand.New(rand.NewSource(d.Seed+11)), swf.ConvertOptions{
		Hosts: d.Profiles,
	})
	if err != nil {
		return 0, fmt.Errorf("replay %s: %w", d.Config.Name, err)
	}
	for _, p := range jobs {
		p := p
		d.Engine.ScheduleAt(p.SubmittedAt, func() { ARiASubmit(d, p.SubmittedAt, p) })
	}
	return len(jobs), nil
}
